// Package repro reproduces "A Demand based Algorithm for Rapid Updating of
// Replicas" (Acosta-Elías & Navarro-Moldes, ICDCSW 2002) as a complete Go
// library: the fast-consistency anti-entropy protocol, the weak-consistency
// baseline it improves on, the BRITE-like topology and demand substrates its
// evaluation needs, a Monte-Carlo simulator reproducing every figure and
// table, and a live goroutine runtime running the same replica state
// machine over real message passing.
//
// Layout:
//
//	internal/core        high-level API: build a System, Simulate it, or
//	                     run it as a live Cluster
//	internal/node        the replica protocol state machine (paper §2.1)
//	internal/policy      partner selection: random / demand-static /
//	                     demand-dynamic / ablation baselines
//	internal/vclock      timestamps and summary vectors
//	internal/wlog        write logs with Bayou-style truncation
//	internal/wal         durable persistence plane: segmented on-disk
//	                     write-ahead log + snapshots behind wlog, with
//	                     group fsync, watermark compaction and
//	                     torn-tail-tolerant recovery
//	internal/store       convergent replicated KV store
//	internal/topology    line/ring/grid/BA/Waxman generators, power laws
//	internal/demand      demand fields (static, valleys, dynamic) + tables
//	internal/sim         discrete-event engine (the NS-2 stand-in)
//	internal/mc          Monte-Carlo session-level simulator (§5)
//	internal/island      §6 islands, leader election, overlay
//	internal/runtime     goroutine-per-replica live cluster with a
//	                     concurrent client plane (see below)
//	internal/transport   in-memory (faults) + TCP transports; TCP sends
//	                     coalesce through per-peer writer goroutines
//	internal/shard       consistent-hash router over per-shard clusters:
//	                     one keyspace partitioned across many replica
//	                     groups, with live shard add/remove and handoff
//	internal/workload    closed-loop load generator (Zipf/uniform keys,
//	                     read/write mix, latency percentiles)
//	internal/chaos       seeded deterministic fault-schedule engine:
//	                     scripted or generated partitions, crashes,
//	                     loss/latency ramps, demand flips and reshards
//	                     against live clusters, with invariant checkers
//	                     (durability, monotonicity, convergence, demand
//	                     ordering); seed alone reproduces schedule and
//	                     verdict
//	internal/experiment  every figure/table as runnable code
//
// Entry points:
//
//	cmd/experiments      regenerate all paper figures and tables
//	cmd/fastsim          run a single configurable simulation
//	cmd/topogen          generate/inspect topologies and power-law fits
//	cmd/livedemo         drive a live cluster from the terminal
//	cmd/loadgen          drive a sharded deployment under load and report
//	                     ops/sec plus p50/p99 latency
//	cmd/chaoscheck       run seeded fault scenarios against live clusters
//	                     and check the protocol's invariants (CI's
//	                     chaos-smoke tier; failures replay from the seed)
//	examples/...         quickstart and scenario walk-throughs
//
// # Concurrent client plane
//
// The live runtime separates the client-facing Read/Write plane from the
// replication machinery, so client throughput scales with cores instead of
// serialising on per-replica locks:
//
//   - Reads are lock-free with respect to the replica: Cluster.Read loads
//     an atomically published store pointer (nil while the replica is
//     dead), records the demand meter via CAS on packed float bits, and
//     reads the store — which is hash-striped into independently locked
//     segments with per-segment read counters — without ever touching the
//     replica mutex.
//
//   - Writes group-commit: concurrent Cluster.Write calls park in a
//     per-replica write-combining queue; the first writer becomes the
//     commit leader and folds the whole batch into the node under ONE
//     replica-lock acquisition (node.ClientWriteBatch → wlog.AppendBatch,
//     one log lock and one value arena per batch), emitting ONE merged
//     fast-offer fan-out per batch. A batch is semantically identical to
//     the same writes issued back-to-back.
//
//   - The write log stores entries in fixed-size chunks, so sustained
//     write streams never pay growslice doubling or giant-array GC scans,
//     and truncation drops whole chunks without copying survivors.
//
//   - Over TCP, each peer connection has a dedicated writer goroutine
//     draining a bounded send queue through a bufio.Writer with
//     flush-on-idle: bursts of envelopes (session batches, group-commit
//     fan-outs) share flushes and syscalls; a full queue blocks the sender
//     briefly (bounded backpressure) and then drops like a lossy link —
//     unbounded blocking would deadlock two replicas flooding each other —
//     and the shard router inherits all of the above.
//
// # Durable persistence plane
//
// With runtime.WithDurability(dir) (or shard.Config.DataDir) each replica
// keeps a segmented on-disk write-ahead log plus a snapshot file under
// dir/n<id> (internal/wal):
//
//   - Every mutation of the write log and store is journaled in order
//     through the node.Journal hook. Client writes become durable before
//     they become visible: the group-commit leader fsyncs the whole batch
//     (ONE fsync per batch) while still holding the replica lock, before
//     any ack and before any anti-entropy session can serve the entries.
//
//   - Peer-learned entries ride the WAL buffer and sync with the next
//     batch or the periodic maintenance tick; losing that tail in a crash
//     is safe (anti-entropy re-fetches it).
//
//   - Snapshots roll on a byte watermark and compact sealed segments;
//     the persisted snapshot also pins the in-memory log's truncation
//     floor (wlog.LimitTruncation), so compaction can never drop entries
//     the disk cannot reproduce.
//
//   - Kill abandons the WAL unflushed (a SIGKILL simulation);
//     Cluster.RestartFromDisk replays snapshot + surviving records —
//     tolerating torn tails — and the replica rejoins propagation without
//     a full peer bootstrap. Cold construction over an existing data dir
//     recovers the same way. The chaos scenario "crash-recover-disk"
//     verifies acked writes survive with zero at-risk classifications.
//
// ARCHITECTURE.md walks the full write/read paths and the recovery story.
//
// The benchmarks in bench_test.go regenerate each experiment at reduced
// scale under `go test -bench`; cmd/experiments runs them at paper scale.
// The client-plane benchmarks (clientplane_bench_test.go) measure this
// surface under -cpu 4,8 parallelism; BenchmarkDurableGroupCommit prices
// the fsync-before-ack write path.
package repro
