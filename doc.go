// Package repro reproduces "A Demand based Algorithm for Rapid Updating of
// Replicas" (Acosta-Elías & Navarro-Moldes, ICDCSW 2002) as a complete Go
// library: the fast-consistency anti-entropy protocol, the weak-consistency
// baseline it improves on, the BRITE-like topology and demand substrates its
// evaluation needs, a Monte-Carlo simulator reproducing every figure and
// table, and a live goroutine runtime running the same replica state
// machine over real message passing.
//
// Layout:
//
//	internal/core        high-level API: build a System, Simulate it, or
//	                     run it as a live Cluster
//	internal/node        the replica protocol state machine (paper §2.1)
//	internal/policy      partner selection: random / demand-static /
//	                     demand-dynamic / ablation baselines
//	internal/vclock      timestamps and summary vectors
//	internal/wlog        write logs with Bayou-style truncation
//	internal/store       convergent replicated KV store
//	internal/topology    line/ring/grid/BA/Waxman generators, power laws
//	internal/demand      demand fields (static, valleys, dynamic) + tables
//	internal/sim         discrete-event engine (the NS-2 stand-in)
//	internal/mc          Monte-Carlo session-level simulator (§5)
//	internal/island      §6 islands, leader election, overlay
//	internal/runtime     goroutine-per-replica live cluster
//	internal/transport   in-memory (faults) + TCP transports
//	internal/shard       consistent-hash router over per-shard clusters:
//	                     one keyspace partitioned across many replica
//	                     groups, with live shard add/remove and handoff
//	internal/workload    closed-loop load generator (Zipf/uniform keys,
//	                     read/write mix, latency percentiles)
//	internal/chaos       seeded deterministic fault-schedule engine:
//	                     scripted or generated partitions, crashes,
//	                     loss/latency ramps, demand flips and reshards
//	                     against live clusters, with invariant checkers
//	                     (durability, monotonicity, convergence, demand
//	                     ordering); seed alone reproduces schedule and
//	                     verdict
//	internal/experiment  every figure/table as runnable code
//
// Entry points:
//
//	cmd/experiments      regenerate all paper figures and tables
//	cmd/fastsim          run a single configurable simulation
//	cmd/topogen          generate/inspect topologies and power-law fits
//	cmd/livedemo         drive a live cluster from the terminal
//	cmd/loadgen          drive a sharded deployment under load and report
//	                     ops/sec plus p50/p99 latency
//	cmd/chaoscheck       run seeded fault scenarios against live clusters
//	                     and check the protocol's invariants (CI's
//	                     chaos-smoke tier; failures replay from the seed)
//	examples/...         quickstart and scenario walk-throughs
//
// The benchmarks in bench_test.go regenerate each experiment at reduced
// scale under `go test -bench`; cmd/experiments runs them at paper scale.
package repro
