// Command mdcheck is the repository's markdown link checker: it verifies
// that every relative link in the given markdown files points at a file
// (or directory) that exists, and that every intra-document anchor
// (#heading) resolves to a heading in the target document. External links
// (http/https/mailto) are intentionally not fetched — CI must not depend
// on the network — only their syntax is accepted.
//
// Usage:
//
//	go run ./scripts/mdcheck README.md ARCHITECTURE.md ...
//
// Exit status 1 lists every broken link with file and line.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target); images share the
// syntax with a leading ! and are checked identically.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings; the anchor derives from the text.
var headingRe = regexp.MustCompile("^#{1,6}\\s+(.*)$")

// fenceRe matches code-fence delimiters; links inside fences are examples,
// not navigation, and are skipped.
var fenceRe = regexp.MustCompile("^(```|~~~)")

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck <file.md> [file.md ...]")
		os.Exit(2)
	}
	broken := 0
	for _, path := range os.Args[1:] {
		broken += checkFile(path)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkFile reports the number of broken links in one markdown file.
func checkFile(path string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	broken := 0
	inFence := false
	for i, line := range strings.Split(string(raw), "\n") {
		if fenceRe.MatchString(strings.TrimSpace(line)) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if err := checkTarget(path, target); err != nil {
				fmt.Fprintf(os.Stderr, "%s:%d: %s — %v\n", path, i+1, target, err)
				broken++
			}
		}
	}
	return broken
}

// checkTarget validates one link target relative to the file that holds it.
func checkTarget(from, target string) error {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return nil // external: syntax only, never fetched
	}
	file, anchor, _ := strings.Cut(target, "#")
	resolved := from
	if file != "" {
		resolved = filepath.Join(filepath.Dir(from), file)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Errorf("target does not exist")
		}
	}
	if anchor == "" {
		return nil
	}
	if !strings.HasSuffix(resolved, ".md") {
		return nil // anchors into non-markdown are out of scope
	}
	ok, err := hasAnchor(resolved, anchor)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("no heading for anchor #%s", anchor)
	}
	return nil
}

// hasAnchor reports whether the markdown file has a heading whose GitHub
// anchor equals anchor.
func hasAnchor(path, anchor string) (bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	inFence := false
	for _, line := range strings.Split(string(raw), "\n") {
		if fenceRe.MatchString(strings.TrimSpace(line)) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headingRe.FindStringSubmatch(line); m != nil {
			if slugify(m[1]) == strings.ToLower(anchor) {
				return true, nil
			}
		}
	}
	return false, nil
}

// slugify approximates GitHub's heading-to-anchor rule: lowercase, spaces
// to hyphens, punctuation dropped (backticks included).
func slugify(heading string) string {
	heading = strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_',
			'a' <= r && r <= 'z',
			'0' <= r && r <= '9',
			r > 127: // unicode letters survive
			b.WriteRune(r)
		}
	}
	return b.String()
}
