package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snap builds a one-run-per-benchmark snapshot from name -> metrics.
func snap(benches map[string]map[string]float64) *Snapshot {
	s := &Snapshot{}
	// Deterministic order is irrelevant to gate (it sorts), so a plain
	// range is fine.
	for name, metrics := range benches {
		s.Benchmarks = append(s.Benchmarks, &Benchmark{
			Name: name,
			Runs: []Run{{Iterations: 100, Metrics: metrics}},
		})
	}
	return s
}

func mustParseTol(t *testing.T, spec string) tolerances {
	t.Helper()
	tol, err := parseTolerances(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tol
}

// TestGateFailsOnSeededRegression is the CI contract demanded by the
// issue: a seeded throughput regression beyond tolerance must fail the
// gate. Baseline 100k ops/s, current 40k (60% worse), tolerance 50%.
func TestGateFailsOnSeededRegression(t *testing.T) {
	baseline := snap(map[string]map[string]float64{
		"DurableGroupCommit-8": {"ops/sec": 100_000, "ns/op": 10_000},
	})
	current := snap(map[string]map[string]float64{
		"DurableGroupCommit-8": {"ops/sec": 40_000, "ns/op": 25_000},
	})
	verdicts := gate(baseline, current, mustParseTol(t, "default=0.5"))
	if len(verdicts) != 1 {
		t.Fatalf("got %d verdicts, want 1", len(verdicts))
	}
	v := verdicts[0]
	if !v.Failed {
		t.Fatalf("60%% regression passed a 50%% tolerance gate: %+v", v)
	}
	if v.Metric != "ops/sec" {
		t.Fatalf("gate compared %s, want ops/sec", v.Metric)
	}
	if v.WorseBy < 0.59 || v.WorseBy > 0.61 {
		t.Fatalf("WorseBy = %v, want ~0.6", v.WorseBy)
	}
}

// TestGatePassesWithinTolerance pins the complement: a regression inside
// the tolerance band, and an improvement, both pass.
func TestGatePassesWithinTolerance(t *testing.T) {
	baseline := snap(map[string]map[string]float64{
		"DurableGroupCommit-8": {"ops/sec": 100_000},
		"SummaryMerge":         {"ns/op": 1_000},
	})
	current := snap(map[string]map[string]float64{
		"DurableGroupCommit-8": {"ops/sec": 70_000}, // 30% worse, tolerated
		"SummaryMerge":         {"ns/op": 900},      // improved
	})
	for _, v := range gate(baseline, current, mustParseTol(t, "default=0.5")) {
		if v.Failed {
			t.Fatalf("in-tolerance benchmark failed the gate: %+v", v)
		}
	}
}

// TestGatePerBenchmarkTolerance pins that a named tolerance overrides the
// default: the same 30% regression passes at default=0.5 but fails the
// headline benchmark's own 0.2.
func TestGatePerBenchmarkTolerance(t *testing.T) {
	baseline := snap(map[string]map[string]float64{
		"DurableGroupCommit-8":  {"ops/sec": 100_000},
		"GroupCommitThroughput": {"ops/sec": 100_000},
	})
	current := snap(map[string]map[string]float64{
		"DurableGroupCommit-8":  {"ops/sec": 70_000},
		"GroupCommitThroughput": {"ops/sec": 70_000},
	})
	verdicts := gate(baseline, current, mustParseTol(t, "default=0.5,DurableGroupCommit=0.2"))
	byName := make(map[string]verdict)
	for _, v := range verdicts {
		byName[v.Name] = v
	}
	if !byName["DurableGroupCommit"].Failed {
		t.Fatal("30% regression passed the headline's 20% tolerance")
	}
	if byName["GroupCommitThroughput"].Failed {
		t.Fatal("30% regression failed the 50% default tolerance")
	}
}

// TestGateMatchesAcrossCPUSuffixes pins cross-machine matching: a baseline
// frozen at -cpu 8 gates a run at -cpu 4 (and the best variant wins when a
// snapshot carries several).
func TestGateMatchesAcrossCPUSuffixes(t *testing.T) {
	baseline := snap(map[string]map[string]float64{
		"DurableGroupCommit-8": {"ops/sec": 100_000},
	})
	current := &Snapshot{Benchmarks: []*Benchmark{
		{Name: "DurableGroupCommit-4", Runs: []Run{{Metrics: map[string]float64{"ops/sec": 60_000}}}},
		{Name: "DurableGroupCommit-2", Runs: []Run{{Metrics: map[string]float64{"ops/sec": 90_000}}}},
	}}
	verdicts := gate(baseline, current, mustParseTol(t, "default=0.3"))
	if len(verdicts) != 1 {
		t.Fatalf("suffixed variants did not merge: %d verdicts", len(verdicts))
	}
	if v := verdicts[0]; v.Failed || v.Current != 90_000 {
		t.Fatalf("best variant not selected: %+v", v)
	}
}

// TestGateFailsOnMissingBenchmark pins that deleting a gated benchmark is
// itself a failure, not a silent pass.
func TestGateFailsOnMissingBenchmark(t *testing.T) {
	baseline := snap(map[string]map[string]float64{
		"DurableGroupCommit-8": {"ops/sec": 100_000},
	})
	current := snap(map[string]map[string]float64{
		"SomethingElse": {"ns/op": 1},
	})
	verdicts := gate(baseline, current, mustParseTol(t, ""))
	if len(verdicts) != 1 || !verdicts[0].Failed || !verdicts[0].Missing {
		t.Fatalf("missing benchmark did not fail the gate: %+v", verdicts)
	}
}

// TestGateNsPerOpFallback pins the latency comparison for benchmarks that
// never report ops/sec: higher ns/op is worse.
func TestGateNsPerOpFallback(t *testing.T) {
	baseline := snap(map[string]map[string]float64{"SummaryMerge": {"ns/op": 1_000}})
	worse := snap(map[string]map[string]float64{"SummaryMerge": {"ns/op": 4_000}})
	verdicts := gate(baseline, worse, mustParseTol(t, "default=0.5"))
	if len(verdicts) != 1 || !verdicts[0].Failed {
		t.Fatalf("4x ns/op regression passed: %+v", verdicts)
	}
	if verdicts[0].Metric != "ns/op" {
		t.Fatalf("compared %s, want ns/op", verdicts[0].Metric)
	}
}

func TestParseTolerances(t *testing.T) {
	tol, err := parseTolerances("default=0.4,DurableGroupCommit-8=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if tol.def != 0.4 {
		t.Fatalf("default = %v, want 0.4", tol.def)
	}
	// Suffix-stripped on parse, so specs may name either form.
	if got := tol.forBench("DurableGroupCommit"); got != 0.2 {
		t.Fatalf("DurableGroupCommit tolerance = %v, want 0.2", got)
	}
	if got := tol.forBench("Other"); got != 0.4 {
		t.Fatalf("fallback tolerance = %v, want 0.4", got)
	}
	for _, bad := range []string{"default", "x=1.5", "x=-0.1", "x=nope"} {
		if _, err := parseTolerances(bad); err == nil {
			t.Fatalf("parseTolerances(%q) accepted invalid input", bad)
		}
	}
}

// TestLatestBaseline pins numeric (not lexical) discovery and exclusion of
// the current snapshot.
func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_4.json", "BENCH_9.json", "BENCH_10.json", "notes.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestBaseline(dir, filepath.Join(dir, "BENCH_10.json"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_9.json" {
		t.Fatalf("latestBaseline = %s, want BENCH_9.json (numeric order, current excluded)", got)
	}
	if _, err := latestBaseline(t.TempDir(), ""); err == nil {
		t.Fatal("empty dir produced a baseline")
	}
}

// TestRunEndToEnd drives the command through run(): exit 1 with a seeded
// regression, exit 0 once the regression is repaired, auto-discovered
// baseline either way.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, s *Snapshot) string {
		t.Helper()
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	write("BENCH_7.json", snap(map[string]map[string]float64{
		"DurableGroupCommit-8": {"ops/sec": 100_000},
	}))
	bad := write("BENCH_8.json", snap(map[string]map[string]float64{
		"DurableGroupCommit-8": {"ops/sec": 10_000},
	}))

	var out bytes.Buffer
	code, err := run([]string{"-dir", dir, "-current", bad, "-tolerance", "default=0.5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit = %d on a 90%% regression, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("report does not mark the failure:\n%s", out.String())
	}

	good := write("BENCH_8.json", snap(map[string]map[string]float64{
		"DurableGroupCommit-8": {"ops/sec": 500_000},
	}))
	out.Reset()
	code, err = run([]string{"-dir", dir, "-current", good, "-tolerance", "default=0.5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d on an improvement, want 0\n%s", code, out.String())
	}
}
