// Command benchgate enforces the repo's perf trajectory: it compares a
// fresh benchjson snapshot against a frozen BENCH_<pr>.json baseline and
// fails (exit 1) when any baseline benchmark regressed beyond its
// tolerance — CI's regression gate, turning the committed snapshots from
// passive artifacts into an enforced floor.
//
// Usage:
//
//	go run ./scripts/benchgate -current bench-results/<run>.json
//	go run ./scripts/benchgate -baseline BENCH_7.json -current BENCH_8.json \
//	    -tolerance 'default=0.5,DurableGroupCommit=0.4'
//
// With -baseline omitted, the gate picks the highest-numbered
// BENCH_<n>.json in -dir (default ".") that is not the -current file.
//
// Comparison semantics, chosen to survive cross-machine noise:
//
//   - Benchmark names are matched with their -<GOMAXPROCS> suffix stripped
//     ("DurableGroupCommit-8" and "DurableGroupCommit-4" are the same
//     benchmark), so a baseline frozen at -cpu 8 gates a CI runner with
//     fewer cores.
//   - Each side is reduced to its best run: highest ops/sec when the
//     benchmark reports that metric, otherwise lowest ns/op. Best-vs-best
//     compares machine capability, not scheduler luck.
//   - A benchmark fails when it is worse than the baseline's best by more
//     than its tolerance fraction (0.4 = up to 40% worse is tolerated), or
//     when it vanished from the current run entirely — a silently deleted
//     headline benchmark must not pass the gate.
//
// Tolerances are deliberately generous: the gate exists to catch
// order-of-magnitude cliffs (an accidental inline fsync, a lock reheld),
// not single-digit noise between runner generations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Run mirrors scripts/benchjson: one benchmark execution.
type Run struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Benchmark mirrors scripts/benchjson: the runs of one printed name.
type Benchmark struct {
	Name string `json:"name"`
	Runs []Run  `json:"runs"`
}

// Snapshot mirrors scripts/benchjson: the BENCH_<pr>.json layout.
type Snapshot struct {
	Commit     string       `json:"commit,omitempty"`
	Date       string       `json:"date"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

// cpuSuffix matches the -<GOMAXPROCS> suffix go test appends to benchmark
// names (absent when GOMAXPROCS is 1).
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// baseName strips the GOMAXPROCS suffix so snapshots taken at different
// -cpu values compare benchmark-to-benchmark.
func baseName(name string) string {
	return cpuSuffix.ReplaceAllString(name, "")
}

// best reduces a snapshot to each benchmark's best observed performance,
// keyed by suffix-stripped name: the highest ops/sec (preferred when any
// run reports it) and the lowest ns/op.
type best struct {
	opsPerSec float64 // 0 = never reported
	nsPerOp   float64 // 0 = never reported
}

func reduce(s *Snapshot) map[string]best {
	out := make(map[string]best)
	for _, b := range s.Benchmarks {
		key := baseName(b.Name)
		cur := out[key]
		for _, r := range b.Runs {
			if v, ok := r.Metrics["ops/sec"]; ok && v > cur.opsPerSec {
				cur.opsPerSec = v
			}
			if v, ok := r.Metrics["ns/op"]; ok && v > 0 && (cur.nsPerOp == 0 || v < cur.nsPerOp) {
				cur.nsPerOp = v
			}
		}
		out[key] = cur
	}
	return out
}

// tolerances maps suffix-stripped benchmark names to their allowed
// fractional regression; def applies to names without an entry.
type tolerances struct {
	def   float64
	byKey map[string]float64
}

func (t tolerances) forBench(name string) float64 {
	if v, ok := t.byKey[name]; ok {
		return v
	}
	return t.def
}

// parseTolerances parses 'default=0.5,Name=0.4,...'. Every value must be a
// fraction in [0,1).
func parseTolerances(spec string) (tolerances, error) {
	t := tolerances{def: 0.5, byKey: make(map[string]float64)}
	if spec == "" {
		return t, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return t, fmt.Errorf("benchgate: tolerance %q is not name=fraction", part)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f >= 1 {
			return t, fmt.Errorf("benchgate: tolerance %q needs a fraction in [0,1)", part)
		}
		if k == "default" {
			t.def = f
		} else {
			t.byKey[baseName(k)] = f
		}
	}
	return t, nil
}

// verdict is one benchmark's gate outcome.
type verdict struct {
	Name      string
	Metric    string  // "ops/sec" or "ns/op"
	Baseline  float64 // best baseline value
	Current   float64 // best current value (0 when missing)
	WorseBy   float64 // fractional regression (negative = improved)
	Tolerance float64
	Failed    bool
	Missing   bool
}

// gate compares current against baseline benchmark-by-benchmark. Only
// benchmarks present in the baseline are gated (new benchmarks have no
// floor yet); a baseline benchmark missing from current fails.
func gate(baseline, current *Snapshot, tol tolerances) []verdict {
	base := reduce(baseline)
	cur := reduce(current)
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []verdict
	for _, name := range names {
		b, c := base[name], cur[name]
		v := verdict{Name: name, Tolerance: tol.forBench(name)}
		switch {
		case c.opsPerSec == 0 && c.nsPerOp == 0:
			v.Missing, v.Failed = true, true
			if b.opsPerSec > 0 {
				v.Metric, v.Baseline = "ops/sec", b.opsPerSec
			} else {
				v.Metric, v.Baseline = "ns/op", b.nsPerOp
			}
		case b.opsPerSec > 0 && c.opsPerSec > 0:
			// Throughput: higher is better.
			v.Metric, v.Baseline, v.Current = "ops/sec", b.opsPerSec, c.opsPerSec
			v.WorseBy = 1 - c.opsPerSec/b.opsPerSec
		case b.nsPerOp > 0 && c.nsPerOp > 0:
			// Latency: lower is better.
			v.Metric, v.Baseline, v.Current = "ns/op", b.nsPerOp, c.nsPerOp
			v.WorseBy = 1 - b.nsPerOp/c.nsPerOp
		default:
			// Metric shape changed (ops/sec appeared or vanished); fall back
			// to whatever both sides still share — ns/op is always printed.
			v.Metric, v.Baseline, v.Current = "ns/op", b.nsPerOp, c.nsPerOp
			if b.nsPerOp > 0 && c.nsPerOp > 0 {
				v.WorseBy = 1 - b.nsPerOp/c.nsPerOp
			}
		}
		if !v.Missing && v.WorseBy > v.Tolerance {
			v.Failed = true
		}
		out = append(out, v)
	}
	return out
}

// benchNumber extracts <n> from a BENCH_<n>.json basename, or -1.
var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

func benchNumber(path string) int {
	m := benchFile.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return -1
	}
	n, _ := strconv.Atoi(m[1])
	return n
}

// latestBaseline finds the highest-numbered BENCH_<n>.json under dir,
// skipping the current snapshot's own path (numeric order, so BENCH_10
// beats BENCH_9).
func latestBaseline(dir, current string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	bestN, bestPath := -1, ""
	curAbs, _ := filepath.Abs(current)
	for _, e := range entries {
		n := benchNumber(e.Name())
		if n < 0 {
			continue
		}
		p := filepath.Join(dir, e.Name())
		if abs, _ := filepath.Abs(p); abs == curAbs {
			continue
		}
		if n > bestN {
			bestN, bestPath = n, p
		}
	}
	if bestPath == "" {
		return "", fmt.Errorf("benchgate: no BENCH_<n>.json baseline in %s", dir)
	}
	return bestPath, nil
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return &s, nil
}

// report renders the verdicts and returns whether any failed.
func report(w io.Writer, baselinePath, currentPath string, verdicts []verdict) bool {
	fmt.Fprintf(w, "benchgate: %s vs baseline %s\n", currentPath, baselinePath)
	failed := false
	for _, v := range verdicts {
		status := "ok"
		switch {
		case v.Missing:
			status, failed = "FAIL (missing from current run)", true
		case v.Failed:
			status, failed = "FAIL", true
		}
		if v.Missing {
			fmt.Fprintf(w, "  %-28s %10.4g %-8s -> (absent)            tol %.0f%%  %s\n",
				v.Name, v.Baseline, v.Metric, v.Tolerance*100, status)
			continue
		}
		fmt.Fprintf(w, "  %-28s %10.4g %-8s -> %10.4g  worse-by %6.1f%%  tol %.0f%%  %s\n",
			v.Name, v.Baseline, v.Metric, v.Current, v.WorseBy*100, v.Tolerance*100, status)
	}
	return failed
}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		baseline  = fs.String("baseline", "", "baseline snapshot (default: highest-numbered BENCH_<n>.json in -dir, excluding -current)")
		current   = fs.String("current", "", "fresh benchjson snapshot to gate (required)")
		dir       = fs.String("dir", ".", "directory searched for the baseline when -baseline is empty")
		tolerance = fs.String("tolerance", "", "per-benchmark regression tolerances: 'default=0.5,Name=0.4'")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *current == "" {
		return 2, fmt.Errorf("-current is required")
	}
	tol, err := parseTolerances(*tolerance)
	if err != nil {
		return 2, err
	}
	basePath := *baseline
	if basePath == "" {
		if basePath, err = latestBaseline(*dir, *current); err != nil {
			return 2, err
		}
	}
	baseSnap, err := readSnapshot(basePath)
	if err != nil {
		return 2, err
	}
	curSnap, err := readSnapshot(*current)
	if err != nil {
		return 2, err
	}
	if report(w, basePath, *current, gate(baseSnap, curSnap, tol)) {
		return 1, nil
	}
	return 0, nil
}
