// Command doccheck fails when a package exports an undocumented
// identifier: every exported type, function, method, const and var in the
// packages given as arguments must carry a doc comment. It is the
// vet-level documentation gate CI runs over internal/wal (and any other
// package held to the same bar).
//
// Usage:
//
//	go run ./scripts/doccheck ./internal/wal [./internal/... ]
//
// Exit status 1 lists every undocumented exported identifier.
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [package-dir ...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir reports the number of undocumented exported identifiers in the
// package at dir (test files excluded).
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !isTestFile(fi.Name())
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		// doc.New mutates the AST; it is only read here.
		d := doc.New(pkg, dir, 0)
		report := func(kind, name string, hasDoc bool) {
			if !hasDoc && ast.IsExported(name) {
				fmt.Fprintf(os.Stderr, "%s: %s %s is exported but undocumented\n", dir, kind, name)
				bad++
			}
		}
		if d.Doc == "" {
			fmt.Fprintf(os.Stderr, "%s: package %s has no package comment\n", dir, d.Name)
			bad++
		}
		for _, f := range d.Funcs {
			report("func", f.Name, f.Doc != "")
		}
		for _, t := range d.Types {
			report("type", t.Name, t.Doc != "")
			for _, f := range t.Funcs {
				report("func", f.Name, f.Doc != "")
			}
			for _, m := range t.Methods {
				report("method", t.Name+"."+m.Name, m.Doc != "")
			}
			bad += checkValues(dir, t.Consts)
			bad += checkValues(dir, t.Vars)
			// Exported fields of exported structs need comments too.
			bad += checkFields(dir, t)
		}
		bad += checkValues(dir, d.Consts)
		bad += checkValues(dir, d.Vars)
	}
	return bad
}

// checkValues requires a doc comment on each value group declaring an
// exported name (a group comment covers the whole group).
func checkValues(dir string, values []*doc.Value) int {
	bad := 0
	for _, v := range values {
		if v.Doc != "" {
			continue
		}
		for _, name := range v.Names {
			if ast.IsExported(name) {
				fmt.Fprintf(os.Stderr, "%s: value %s is exported but undocumented\n", dir, name)
				bad++
				break
			}
		}
	}
	return bad
}

// checkFields requires a doc or line comment on every exported field of an
// exported struct type.
func checkFields(dir string, t *doc.Type) int {
	bad := 0
	for _, spec := range t.Decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok || !ast.IsExported(ts.Name.Name) {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			if field.Doc != nil || field.Comment != nil {
				continue
			}
			for _, name := range field.Names {
				if ast.IsExported(name.Name) {
					fmt.Fprintf(os.Stderr, "%s: field %s.%s is exported but undocumented\n",
						dir, ts.Name.Name, name.Name)
					bad++
				}
			}
		}
	}
	return bad
}

// isTestFile reports whether name is a _test.go file.
func isTestFile(name string) bool {
	return len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
