// Command promcheck scrapes a Prometheus text-exposition endpoint and fails
// unless the payload is well-formed and carries the required metric
// families. It is the CI gate behind the observability plane's /metrics
// endpoint: a malformed exposition line, a family whose samples precede its
// TYPE header, or a missing required family all exit non-zero.
//
// Usage:
//
//	go run ./scripts/promcheck -url http://127.0.0.1:9090/metrics \
//	    -require repro_prop_lag_seconds,repro_commit_batch_size
//
// The scrape retries (default 40 x 250ms) so CI can launch the serving
// process and promcheck concurrently. Exit status: 0 ok, 1 validation or
// fetch failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func main() {
	var (
		url      = flag.String("url", "", "metrics endpoint to scrape (required)")
		require  = flag.String("require", "", "comma-separated metric families that must be present with at least one sample")
		retries  = flag.Int("retries", 40, "fetch attempts before giving up")
		interval = flag.Duration("interval", 250*time.Millisecond, "delay between fetch attempts")
	)
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "usage: promcheck -url <metrics-url> [-require fam1,fam2,...]")
		os.Exit(2)
	}

	body, ctype, err := fetch(*url, *retries, *interval)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
		os.Exit(1)
	}
	bad := 0
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		fmt.Fprintf(os.Stderr, "promcheck: unexpected Content-Type %q (want text/plain; version=0.0.4)\n", ctype)
		bad++
	}
	families, errs := validate(body)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "promcheck: %s\n", e)
	}
	bad += len(errs)
	if *require != "" {
		for _, fam := range strings.Split(*require, ",") {
			fam = strings.TrimSpace(fam)
			if fam == "" {
				continue
			}
			if families[fam] == 0 {
				fmt.Fprintf(os.Stderr, "promcheck: required family %s missing (or has no samples)\n", fam)
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "promcheck: FAIL — %d problem(s) at %s\n", bad, *url)
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok — %d families, all required present at %s\n", len(families), *url)
}

// fetch GETs url, retrying on connection errors so the target process may
// still be starting; a non-200 status is terminal.
func fetch(url string, retries int, interval time.Duration) (string, string, error) {
	var lastErr error
	for i := 0; i < retries; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return "", "", fmt.Errorf("GET %s: status %s", url, resp.Status)
		}
		return string(body), resp.Header.Get("Content-Type"), nil
	}
	return "", "", fmt.Errorf("GET %s: no response after %d attempts: %v", url, retries, lastErr)
}

// validate checks text-format 0.0.4 well-formedness line by line and
// returns the per-family sample counts keyed by declared family name.
// Histogram families also count their _bucket/_sum/_count series.
func validate(body string) (map[string]int, []string) {
	families := make(map[string]int) // TYPE-declared name -> sample count
	types := make(map[string]string) // family -> prom type
	var errs []string
	lineNo := 0
	for _, line := range strings.Split(body, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) == 0 || !metricName.MatchString(parts[0]) {
				errs = append(errs, fmt.Sprintf("line %d: malformed HELP: %s", lineNo, line))
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !metricName.MatchString(parts[0]) ||
				!validPromType(parts[1]) {
				errs = append(errs, fmt.Sprintf("line %d: malformed TYPE: %s", lineNo, line))
				continue
			}
			if _, dup := types[parts[0]]; dup {
				errs = append(errs, fmt.Sprintf("line %d: duplicate TYPE for %s", lineNo, parts[0]))
			}
			types[parts[0]] = parts[1]
			families[parts[0]] += 0
		case strings.HasPrefix(line, "#"):
			// Free-form comment: legal, ignored.
		default:
			fam, err := checkSample(line)
			if err != nil {
				errs = append(errs, fmt.Sprintf("line %d: %v", lineNo, err))
				continue
			}
			base := baseFamily(fam, types)
			if base == "" {
				errs = append(errs, fmt.Sprintf("line %d: sample %s precedes its TYPE header", lineNo, fam))
				continue
			}
			families[base]++
		}
	}
	return families, errs
}

// validPromType reports whether t is a legal exposition metric type.
func validPromType(t string) bool {
	switch t {
	case "counter", "gauge", "histogram", "summary", "untyped":
		return true
	}
	return false
}

// baseFamily resolves a sample name to its declared family, accepting the
// _bucket/_sum/_count suffixes of histogram and summary families.
func baseFamily(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t := types[base]; t == "histogram" || t == "summary" {
			return base
		}
	}
	return ""
}

// checkSample validates one sample line and returns its metric name.
func checkSample(line string) (string, error) {
	rest := line
	name := rest
	if i := strings.IndexAny(rest, "{ "); i >= 0 {
		name = rest[:i]
		rest = rest[i:]
	} else {
		return "", fmt.Errorf("sample without value: %s", line)
	}
	if !metricName.MatchString(name) {
		return "", fmt.Errorf("bad metric name in sample: %s", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return "", fmt.Errorf("unterminated label set: %s", line)
		}
		if err := checkLabels(rest[1:end]); err != nil {
			return "", fmt.Errorf("%v in sample: %s", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("want 'value [timestamp]' after name: %s", line)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return "", fmt.Errorf("bad sample value %q: %s", fields[0], line)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("bad timestamp %q: %s", fields[1], line)
		}
	}
	return name, nil
}

// checkLabels validates the inside of a {...} label set: comma-separated
// name="escaped value" pairs.
func checkLabels(s string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq <= 0 || !metricName.MatchString(s[:eq]) {
			return fmt.Errorf("bad label name")
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("label value not quoted")
		}
		s = s[1:]
		// Scan to the closing quote, honouring backslash escapes.
		closed := false
		for i := 0; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				s = s[i+1:]
				closed = true
				break
			}
		}
		if !closed {
			return fmt.Errorf("unterminated label value")
		}
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if len(s) > 0 {
			return fmt.Errorf("junk after label value")
		}
	}
	return nil
}
