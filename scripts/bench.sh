#!/usr/bin/env bash
# bench.sh — run the headline micro-benchmarks and save benchstat-comparable
# output, so the repo accumulates a perf trajectory across commits.
#
# Usage:
#   scripts/bench.sh                 # default benches, 5 runs each
#   BENCH='SummaryMerge' scripts/bench.sh
#   COUNT=10 OUTDIR=/tmp/bench scripts/bench.sh
#
# Each invocation writes bench-results/<commit>-<timestamp>.txt. Compare two
# runs with:
#   benchstat bench-results/<old>.txt bench-results/<new>.txt
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCH="${BENCH:-SingleTrialFast50|ShardedThroughput4}"
OUTDIR="${OUTDIR:-bench-results}"

mkdir -p "$OUTDIR"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
out="$OUTDIR/${commit}-$(date -u +%Y%m%dT%H%M%SZ).txt"

go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . | tee "$out"

echo
echo "wrote $out"
echo "compare against an older run with: benchstat <old>.txt $out"
