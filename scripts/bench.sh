#!/usr/bin/env bash
# bench.sh — run the headline micro-benchmarks and save benchstat-comparable
# output plus a machine-readable JSON snapshot, so the repo accumulates a
# perf trajectory across commits.
#
# Usage:
#   scripts/bench.sh                 # default benches, 5 runs each
#   BENCH='SummaryMerge' scripts/bench.sh
#   COUNT=10 OUTDIR=/tmp/bench scripts/bench.sh
#   CPU=8 PR=4 scripts/bench.sh     # pin -cpu and also write BENCH_4.json
#
# Each invocation writes bench-results/<commit>-<timestamp>.txt (benchstat
# input) and the matching .json (see scripts/benchjson). With PR=<n> set,
# the JSON is also copied to BENCH_<n>.json at the repo root — the frozen
# snapshot committed with that PR. Compare two text runs with:
#   benchstat bench-results/<old>.txt bench-results/<new>.txt
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCH="${BENCH:-SingleTrialFast50|ShardedThroughput4|ClientPlaneReadParallel|SessionRead|GroupCommitThroughput|DurableGroupCommit|TCPClientPlane|GoodputUnderOverload}"
OUTDIR="${OUTDIR:-bench-results}"
CPU="${CPU:-}"

mkdir -p "$OUTDIR"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
out="$OUTDIR/${commit}-$(date -u +%Y%m%dT%H%M%SZ).txt"

args=(-run '^$' -bench "$BENCH" -benchmem -count "$COUNT")
if [ -n "$CPU" ]; then
  args+=(-cpu "$CPU")
fi
go test "${args[@]}" . | tee "$out"

go run ./scripts/benchjson -commit "$commit" < "$out" > "${out%.txt}.json"
echo
echo "wrote $out"
echo "wrote ${out%.txt}.json"
if [ -n "${PR:-}" ]; then
  cp "${out%.txt}.json" "BENCH_${PR}.json"
  echo "wrote BENCH_${PR}.json"
fi
echo "compare against an older run with: benchstat <old>.txt $out"
