// Command benchjson converts `go test -bench` output into a JSON snapshot,
// so the repo's perf trajectory is machine-readable across PRs: each
// BENCH_<pr>.json at the repo root is one frozen measurement, and CI
// archives one per commit next to the benchstat-comparable text.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./scripts/benchjson -commit abc123 > BENCH_4.json
//
// The text form stays the benchstat input; the JSON form is for dashboards
// and scripted regression gates (jq '.benchmarks[] | select(.name | ...)').
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Run is one benchmark execution: the iteration count plus every reported
// metric (ns/op, B/op, allocs/op, and custom b.ReportMetric units).
type Run struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Benchmark groups the runs of one benchmark name (as printed, including
// the -cpu suffix, so GOMAXPROCS variants stay distinct).
type Benchmark struct {
	Name string `json:"name"`
	Runs []Run  `json:"runs"`
}

// Snapshot is the file layout of BENCH_<pr>.json.
type Snapshot struct {
	Commit     string       `json:"commit,omitempty"`
	Date       string       `json:"date"`
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

func main() {
	commit := flag.String("commit", "", "commit hash recorded in the snapshot")
	flag.Parse()

	snap := &Snapshot{
		Commit: *commit,
		Date:   time.Now().UTC().Format(time.RFC3339),
	}
	byName := make(map[string]*Benchmark)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name iterations (value unit)+
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		run := Run{Iterations: iters, Metrics: make(map[string]float64, (len(fields)-2)/2)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			run.Metrics[fields[i+1]] = v
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name}
			byName[name] = b
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
		b.Runs = append(b.Runs, run)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}
