package main

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRunAllVariantsSmall(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nodes", "20", "-trials", "30"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fast-consistency", "weak-consistency", "demand-ordered-only", "fast-push-only", "diameter"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSelectedVariant(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nodes", "15", "-trials", "20", "-variant", "weak", "-topology", "ring"}, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "fast-consistency") {
		t.Error("unselected variant present in output")
	}
	if !strings.Contains(b.String(), "weak-consistency") {
		t.Error("selected variant missing from output")
	}
}

func TestBuildTopologyAllKinds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, kind := range []string{"ba", "line", "ring", "grid", "torus", "star", "tree", "waxman", "gnp"} {
		g, err := buildTopology(kind, 16, 2, r)
		if err != nil {
			t.Errorf("buildTopology(%q): %v", kind, err)
			continue
		}
		if g.N() == 0 {
			t.Errorf("buildTopology(%q) produced empty graph", kind)
		}
	}
	if _, err := buildTopology("bogus", 10, 2, r); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestBuildFieldAllKinds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g, err := buildTopology("grid", 16, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"uniform", "zipf", "valley", "flat"} {
		f, err := buildField(kind, g, r)
		if err != nil {
			t.Errorf("buildField(%q): %v", kind, err)
			continue
		}
		if f.At(0, 0) < 0 {
			t.Errorf("buildField(%q) negative demand", kind)
		}
	}
	if _, err := buildField("bogus", g, r); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestParseVariants(t *testing.T) {
	vs, err := parseVariants("fast, weak")
	if err != nil || len(vs) != 2 {
		t.Errorf("parseVariants = (%v, %v)", vs, err)
	}
	if _, err := parseVariants("bogus"); err == nil {
		t.Error("unknown variant accepted")
	}
	all, err := parseVariants("all")
	if err != nil || len(all) != 4 {
		t.Errorf("parseVariants(all) = (%v, %v)", all, err)
	}
}
