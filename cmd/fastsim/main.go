// Command fastsim runs one configurable Monte-Carlo study of the
// fast-consistency algorithm against its baselines.
//
// Usage:
//
//	fastsim -nodes 50 -topology ba -demand uniform -trials 1000 [-variant all]
//
// Topologies: ba (Barabási–Albert / BRITE-like), line, ring, grid, torus,
// star, tree, waxman, gnp. Demand fields: uniform, zipf, valley, flat.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/metrics"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fastsim:", err)
		os.Exit(1)
	}
}

func buildTopology(kind string, n, m int, r *rand.Rand) (*topology.Graph, error) {
	switch kind {
	case "ba":
		return topology.BarabasiAlbert(n, m, r), nil
	case "line":
		return topology.Line(n), nil
	case "ring":
		return topology.Ring(n), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return topology.Grid(side, side), nil
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		return topology.Torus(side, side), nil
	case "star":
		return topology.Star(n), nil
	case "tree":
		return topology.RandomTree(n, r), nil
	case "waxman":
		return topology.Waxman(n, 0.4, 0.2, r), nil
	case "gnp":
		return topology.ErdosRenyi(n, 4/float64(n), r), nil
	case "transit-stub":
		transit := n / 7
		if transit < 2 {
			transit = 2
		}
		return topology.TransitStub(topology.TransitStubConfig{
			TransitDomains:      2,
			TransitSize:         (transit + 1) / 2,
			StubsPerTransitNode: 2,
			StubSize:            3,
			ExtraTransitEdges:   2,
		}, r), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}

func buildField(kind string, g *topology.Graph, r *rand.Rand) (demand.Field, error) {
	n := g.N()
	switch kind {
	case "uniform":
		return demand.Uniform(n, 1, 101, r), nil
	case "zipf":
		return demand.Zipf(n, 1, 100, r), nil
	case "valley":
		return demand.NewValleyField(g, 1, []demand.Valley{
			{Center: topology.Point{X: 0.5, Y: 0.5}, Peak: 100, Sigma: 0.2},
		}), nil
	case "flat":
		f := make(demand.Static, n)
		for i := range f {
			f[i] = 10
		}
		return f, nil
	default:
		return nil, fmt.Errorf("unknown demand field %q", kind)
	}
}

func parseVariants(s string) ([]core.Variant, error) {
	if s == "all" {
		return []core.Variant{core.FastConsistency, core.WeakConsistency,
			core.DemandOrderedOnly, core.FastPushOnly}, nil
	}
	byName := map[string]core.Variant{
		"fast":    core.FastConsistency,
		"weak":    core.WeakConsistency,
		"ordered": core.DemandOrderedOnly,
		"push":    core.FastPushOnly,
	}
	var out []core.Variant
	for _, name := range strings.Split(s, ",") {
		v, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown variant %q (fast, weak, ordered, push, all)", name)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fastsim", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 50, "number of replicas")
		topoKind = fs.String("topology", "ba", "topology: ba|line|ring|grid|torus|star|tree|waxman|gnp")
		m        = fs.Int("m", 2, "edges per new node (ba only)")
		field    = fs.String("demand", "uniform", "demand field: uniform|zipf|valley|flat")
		variants = fs.String("variant", "all", "variants: fast,weak,ordered,push or all")
		trials   = fs.Int("trials", 1000, "Monte-Carlo trials")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := rand.New(rand.NewSource(*seed))
	g, err := buildTopology(*topoKind, *nodes, *m, r)
	if err != nil {
		return err
	}
	f, err := buildField(*field, g, r)
	if err != nil {
		return err
	}
	vs, err := parseVariants(*variants)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "topology: %v  diameter=%d  avg-path=%.2f\n", g, g.Diameter(), g.AvgPathLength())
	fmt.Fprintf(out, "demand: %s  trials: %d  seed: %d\n\n", *field, *trials, *seed)

	tab := metrics.NewTable("variant", "mean sessions (all)", "mean (high demand)", "p95", "max", "trials ok")
	for _, v := range vs {
		sys, err := core.NewSystem(g, f, v)
		if err != nil {
			return err
		}
		rep := sys.Simulate(*trials, *seed)
		tab.AddRow(v.String(), rep.MeanSessionsAll, rep.MeanSessionsHighDemand,
			rep.P95SessionsAll, rep.Aggregate.TimeAll.Max(), rep.Trials)
	}
	return tab.Render(out)
}
