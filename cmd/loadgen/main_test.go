package main

import (
	"strings"
	"testing"
)

func TestRunSmallShardedLoad(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-shards", "2", "-nodes-per-shard", "4",
		"-ops", "1500", "-workers", "4", "-keys", "256",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"2 shard(s) x 4 replicas",
		"throughput (ops/sec)",
		"read p50 (ms)",
		"write p99 (ms)",
		"converged",
		"shard0: digest",
		"shard1: digest",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleShard(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-shards", "1", "-nodes-per-shard", "6",
		"-ops", "800", "-workers", "4", "-dist", "uniform", "-routing", "random",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1 shard(s) x 6 replicas") {
		t.Errorf("unexpected output:\n%s", b.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-shards", "0"},
		{"-dist", "bogus"},
		{"-routing", "bogus"},
	} {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
