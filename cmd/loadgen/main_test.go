package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallShardedLoad(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-shards", "2", "-nodes-per-shard", "4",
		"-ops", "1500", "-workers", "4", "-keys", "256",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"2 shard(s) x 4 replicas",
		"throughput (ops/sec)",
		"read p50 (ms)",
		"write p99 (ms)",
		"converged",
		"shard0: digest",
		"shard1: digest",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleShard(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-shards", "1", "-nodes-per-shard", "6",
		"-ops", "800", "-workers", "4", "-dist", "uniform", "-routing", "random",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1 shard(s) x 6 replicas") {
		t.Errorf("unexpected output:\n%s", b.String())
	}
}

func TestRunConsistencyMix(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-shards", "2", "-nodes-per-shard", "4",
		"-ops", "1500", "-workers", "4", "-keys", "256",
		"-session-reads", "0.3", "-bounded-reads", "0.1", "-strong-reads", "0.05",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The mix banner and the per-level percentile split both render — the
	// lumped-aggregate rows alone are the regression this guards against.
	for _, want := range []string{
		"consistency mix: 30% session",
		"read p50 (ms)",
		"eventual p50 (ms)",
		"session p50 (ms)",
		"session p99 (ms)",
		"converged",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "errors                1") {
		t.Errorf("mixed run errored:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-shards", "0"},
		{"-dist", "bogus"},
		{"-routing", "bogus"},
		{"-session-reads", "1.5"},
		{"-bounded-reads", "-0.1"},
		{"-session-reads", "0.6", "-strong-reads", "0.6"},
	} {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunObservedLoad(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-shards", "1", "-nodes-per-shard", "4",
		"-ops", "1500", "-workers", "4", "-keys", "128",
		"-obs-addr", "127.0.0.1:0", "-report", "1ms",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "observability: http://127.0.0.1:") {
		t.Errorf("output missing observability banner:\n%s", out)
	}
	// With a 1ms interval the run is guaranteed to span at least one tick.
	if !strings.Contains(out, "ops/s") {
		t.Errorf("output missing periodic report lines:\n%s", out)
	}
	if !strings.Contains(out, "throughput (ops/sec)") {
		t.Errorf("final summary missing after reports:\n%s", out)
	}
}

func TestRunReportWithoutServer(t *testing.T) {
	// -report alone still needs a registry (for prop-lag quantiles) but no
	// listener; the run must work without -obs-addr.
	var b strings.Builder
	err := run([]string{
		"-shards", "1", "-nodes-per-shard", "4",
		"-ops", "800", "-workers", "4", "-report", "1ms",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "observability: http://") {
		t.Errorf("server banner printed without -obs-addr:\n%s", out)
	}
	if !strings.Contains(out, "ops/s") {
		t.Errorf("output missing periodic report lines:\n%s", out)
	}
}

func TestRunDurableLoad(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	err := run([]string{
		"-shards", "2", "-nodes-per-shard", "4",
		"-ops", "800", "-workers", "4", "-keys", "128",
		"-data-dir", dir,
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "durability: on") {
		t.Errorf("output missing durability banner:\n%s", b.String())
	}
	// The WAL directories exist per shard per replica.
	for _, p := range []string{"shard0/n0", "shard1/n3"} {
		if _, err := os.Stat(filepath.Join(dir, p)); err != nil {
			t.Errorf("expected WAL dir %s: %v", p, err)
		}
	}
}
