// Command loadgen measures what the sharded subsystem buys: it builds a
// consistent-hash router over N fast-consistency shard groups carved from
// one shared topology, drives it with a closed-loop read/write workload,
// and reports throughput plus latency percentiles — then waits for every
// shard to converge and verifies per-shard store digests agree.
//
// Compare shard counts at equal total replica count:
//
//	go run ./cmd/loadgen -shards 4 -nodes-per-shard 8 -ops 50000
//	go run ./cmd/loadgen -shards 1 -nodes-per-shard 32 -ops 50000
//
// The single group pays the full per-write propagation cost (every write
// floods all 32 replicas) while the sharded deployment floods only the
// owning 8, so the 4-shard run sustains measurably higher throughput.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/topology"
	"repro/internal/wal"
	"repro/internal/workload"

	"repro/internal/demand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		shards        = fs.Int("shards", 4, "number of shard groups")
		nodesPerShard = fs.Int("nodes-per-shard", 8, "replicas per shard group")
		ops           = fs.Int("ops", 50000, "total operations")
		workers       = fs.Int("workers", 16, "closed-loop client workers")
		readFrac      = fs.Float64("read-frac", 0.9, "fraction of ops that are reads")
		keys          = fs.Int("keys", 2048, "keyspace size")
		dist          = fs.String("dist", "zipf", "key popularity: zipf | uniform")
		zipfS         = fs.Float64("zipf-s", 1.2, "zipf exponent (>1)")
		valueBytes    = fs.Int("value-bytes", 64, "write payload size")
		routing       = fs.String("routing", "lowest", "replica routing: lowest | highest | random")
		session       = fs.Duration("session", 25*time.Millisecond, "mean anti-entropy session interval")
		advert        = fs.Duration("advert", 10*time.Millisecond, "demand advertisement interval")
		seed          = fs.Int64("seed", 1, "deterministic seed")
		timeout       = fs.Duration("timeout", 2*time.Minute, "post-load convergence timeout")
		dataDir       = fs.String("data-dir", "", "enable the durable persistence plane: per-shard WALs under this directory (writes fsync before ack)")
		fsyncCoalesce = fs.Duration("fsync-coalesce", 0, "with -data-dir: fsync-coalescing window for the pipelined sync stage (0 = sync as soon as the disk is free)")
		preallocate   = fs.Bool("wal-preallocate", true, "with -data-dir: preallocate WAL segments to their full size at creation")
		odsync        = fs.Bool("odsync", false, "with -data-dir: open WAL segments O_DSYNC so every write is synchronous (the coalescing window is then moot)")
		obsAddr       = fs.String("obs-addr", "", "serve /metrics, /statusz, /tracez and /debug/pprof on this address (e.g. :9090; empty disables)")
		report        = fs.Duration("report", 0, "print a one-line throughput/propagation summary at this interval (0 disables)")
		openLoop      = fs.Bool("open-loop", false, "open-loop arrivals: ops are due on a fixed schedule regardless of how the target copes, and latency is measured from the scheduled arrival (coordinated-omission corrected)")
		arrivalRate   = fs.Float64("arrival-rate", 1000, "with -open-loop: offered load in ops/sec across all workers")
		retryBudget   = fs.Int("retry-budget", 0, "retries allowed per op after the target sheds it under overload or when a leveled read cannot be served fresh in time (0 disables; non-retryable errors never retry)")
		sessReads     = fs.Float64("session-reads", 0, "fraction of reads at session level (read-your-writes + monotonic reads; each worker drives its own session)")
		boundReads    = fs.Float64("bounded-reads", 0, "fraction of reads at bounded-staleness level (served only within -max-lag writes of the session's watermark)")
		strongReads   = fs.Float64("strong-reads", 0, "fraction of reads at strong level (converged read of the touched key)")
		maxLag        = fs.Uint64("max-lag", 64, "staleness bound for bounded-level reads, in writes behind the session watermark")
		freshWait     = fs.Duration("fresh-deadline", 0, "deadline for a leveled read's freshness wait before it sheds not-fresh (0 = the runtime default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards <= 0 || *nodesPerShard <= 0 {
		return fmt.Errorf("need positive -shards and -nodes-per-shard")
	}
	if *sessReads < 0 || *boundReads < 0 || *strongReads < 0 ||
		*sessReads+*boundReads+*strongReads > 1 {
		return fmt.Errorf("-session-reads, -bounded-reads and -strong-reads must be non-negative fractions summing to at most 1")
	}
	var keyDist workload.KeyDist
	switch *dist {
	case "zipf":
		keyDist = workload.Zipf
	case "uniform":
		keyDist = workload.Uniform
	default:
		return fmt.Errorf("unknown -dist %q", *dist)
	}
	var route shard.RoutePolicy
	switch *routing {
	case "lowest":
		route = shard.RouteLowestDemand
	case "highest":
		route = shard.RouteHighestDemand
	case "random":
		route = shard.RouteRandom
	default:
		return fmt.Errorf("unknown -routing %q", *routing)
	}

	// One shared substrate for every shard count, so comparisons across
	// -shards hold total replica count and demand distribution fixed.
	total := *shards * *nodesPerShard
	rng := rand.New(rand.NewSource(*seed))
	graph := topology.BarabasiAlbert(total, 2, rng)
	field := demand.Uniform(total, 1, 101, rng)
	sys, err := core.NewSystem(graph, field, core.FastConsistency)
	if err != nil {
		return err
	}
	// The observability plane is opt-in: a registry exists only when a flag
	// needs it (-obs-addr to serve it, -report to read propagation lag).
	var reg *obs.Registry
	if *obsAddr != "" || *report > 0 {
		reg = obs.NewRegistry()
	}
	// Determinism comes from Config.Seed, which derives distinct per-group
	// replica seeds; a blanket runtime.WithSeed here would be overridden.
	rtOpts := []runtime.Option{
		runtime.WithSessionInterval(*session),
		runtime.WithAdvertInterval(*advert),
	}
	if *dataDir != "" {
		rtOpts = append(rtOpts, runtime.WithDurabilityTuning(wal.Options{
			Preallocate:    *preallocate,
			CoalesceWindow: *fsyncCoalesce,
			ODSync:         *odsync,
		}))
	}
	router, err := core.Sharded(sys, *shards,
		shard.Config{Routing: route, Seed: *seed, DataDir: *dataDir, Obs: reg},
		rtOpts...,
	)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sharded keyspace: %d shard(s) x %d replicas over %v (routing %v)\n",
		*shards, *nodesPerShard, graph, route)
	if *dataDir != "" {
		fmt.Fprintf(w, "durability: on — per-shard WALs under %s, writes fsync before ack\n", *dataDir)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := router.Start(ctx); err != nil {
		return err
	}
	defer router.Stop()

	if *obsAddr != "" {
		srv, err := obs.NewServer(*obsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		srv.SetStatus(func() any {
			return map[string]any{
				"shards":           *shards,
				"nodes_per_shard":  *nodesPerShard,
				"routing":          route.String(),
				"durable":          *dataDir != "",
				"ops_acked_so_far": reg.Total("repro_client_writes_acked_total"),
			}
		})
		fmt.Fprintf(w, "observability: http://%s/metrics (plus /statusz, /tracez, /debug/pprof)\n", srv.Addr())
	}

	cfg := workload.Config{
		Workers:      *workers,
		Ops:          *ops,
		ReadFraction: *readFrac,
		Keys:         *keys,
		Dist:         keyDist,
		ZipfS:        *zipfS,
		ValueBytes:   *valueBytes,
		Seed:         *seed,
		OpenLoop:     *openLoop,
		ArrivalRate:  *arrivalRate,
		RetryBudget:  *retryBudget,
		SessionReads: *sessReads,
		BoundedReads: *boundReads,
		StrongReads:  *strongReads,
	}
	leveled := *sessReads > 0 || *boundReads > 0 || *strongReads > 0
	var prog *workload.Progress
	if *report > 0 {
		prog = &workload.Progress{}
		cfg.Progress = prog
	}
	if *openLoop {
		fmt.Fprintf(w, "load: %d ops open-loop at %.0f ops/s, %d workers, %.0f%% reads, %d keys (%v), retry budget %d\n\n",
			cfg.Ops, cfg.ArrivalRate, cfg.Workers, cfg.ReadFraction*100, cfg.Keys, keyDist, cfg.RetryBudget)
	} else {
		fmt.Fprintf(w, "load: %d ops, %d workers, %.0f%% reads, %d keys (%v)\n\n",
			cfg.Ops, cfg.Workers, cfg.ReadFraction*100, cfg.Keys, keyDist)
	}
	var target workload.Target = shard.Target{Router: router}
	if leveled {
		fmt.Fprintf(w, "consistency mix: %.0f%% session / %.0f%% bounded (max lag %d) / %.0f%% strong reads, remainder eventual\n\n",
			*sessReads*100, *boundReads*100, *maxLag, *strongReads*100)
		target = sessionTarget{router: router, maxLag: *maxLag, deadline: *freshWait}
	}
	res := runLoad(ctx, w, cfg, target, prog, reg, *report)

	tab := metrics.NewTable("metric", "value")
	tab.AddRow("ops completed", res.Ops)
	tab.AddRow("reads / writes", fmt.Sprintf("%d / %d", res.Reads, res.Writes))
	tab.AddRow("errors", res.Errors)
	if res.Sheds > 0 || res.Retries > 0 {
		tab.AddRow("sheds / retries", fmt.Sprintf("%d / %d", res.Sheds, res.Retries))
	}
	tab.AddRow("elapsed", res.Elapsed.Round(time.Millisecond).String())
	tab.AddRow("throughput (ops/sec)", res.OpsPerSec())
	tab.AddRow("read p50 (ms)", res.ReadLatency.Median())
	tab.AddRow("read p99 (ms)", res.ReadLatency.Percentile(99))
	if leveled {
		// Per-level percentiles: a session read that waits for coverage and
		// an eventual read that serves immediately are different operations;
		// lumping them smears the mix's latency story.
		for lvl := 0; lvl < workload.NumLevels; lvl++ {
			s := res.ReadLatencyAt(workload.Level(lvl))
			if s.N() == 0 {
				continue
			}
			tab.AddRow(fmt.Sprintf("  %s p50 (ms)", workload.Level(lvl)), s.Median())
			tab.AddRow(fmt.Sprintf("  %s p99 (ms)", workload.Level(lvl)), s.Percentile(99))
		}
	}
	tab.AddRow("write p50 (ms)", res.WriteLatency.Median())
	tab.AddRow("write p99 (ms)", res.WriteLatency.Percentile(99))
	if err := tab.Render(w); err != nil {
		return err
	}

	convCtx, convCancel := context.WithTimeout(ctx, *timeout)
	defer convCancel()
	convStart := time.Now()
	if !router.WaitConverged(convCtx) {
		return fmt.Errorf("shards did not converge within %v of load end", *timeout)
	}
	fmt.Fprintf(w, "\nall %d shard(s) converged %v after load end\n",
		*shards, time.Since(convStart).Round(time.Millisecond))
	for _, name := range router.Shards() {
		g, _ := router.Group(name)
		digest, ok := g.Digest()
		if !ok {
			return fmt.Errorf("%s: replicas converged but store digests disagree", name)
		}
		st := g.Stats()
		fmt.Fprintf(w, "  %s: digest %016x, %d sessions, %d fast gains\n",
			name, digest, st.SessionsInitiated, st.FastEntriesGained)
	}
	return nil
}

// runLoad drives the workload, printing a one-line summary every interval
// when interval > 0: ops completed in the interval, the interval rate, and
// the cumulative propagation-lag quantiles from the registry.
func runLoad(ctx context.Context, w io.Writer, cfg workload.Config, target workload.Target, prog *workload.Progress, reg *obs.Registry, interval time.Duration) workload.Result {
	if interval <= 0 {
		return workload.Run(ctx, cfg, target)
	}
	done := make(chan workload.Result, 1)
	go func() { done <- workload.Run(ctx, cfg, target) }()

	tick := time.NewTicker(interval)
	defer tick.Stop()
	start := time.Now()
	var lastOps int64
	lastT := start
	for {
		select {
		case res := <-done:
			fmt.Fprintln(w)
			return res
		case now := <-tick.C:
			reads, writes := prog.Reads.Load(), prog.Writes.Load()
			errs := prog.Errors.Load()
			ops := reads + writes
			rate := float64(ops-lastOps) / now.Sub(lastT).Seconds()
			line := fmt.Sprintf("[%5.1fs] %8.0f ops/s  (%d reads, %d writes, %d errs total)",
				now.Sub(start).Seconds(), rate, reads, writes, errs)
			if lag := propLag(reg); lag.Count > 0 {
				line += fmt.Sprintf("  prop lag p50=%.2fms p99=%.2fms max=%.2fms",
					lag.Quantile(0.50)*1e3, lag.Quantile(0.99)*1e3, lag.Max*1e3)
			}
			fmt.Fprintln(w, line)
			lastOps, lastT = ops, now
		}
	}
}

// sessionTarget adapts the router as a workload.SessionTarget: each worker
// asking for leveled reads drives its own router session, with the bounded
// staleness and freshness deadline taken from the flags.
type sessionTarget struct {
	router   *shard.Router
	maxLag   uint64
	deadline time.Duration
}

func (t sessionTarget) Write(key string, value []byte) error {
	_, err := t.router.Write(key, value)
	return err
}

func (t sessionTarget) Read(key string) ([]byte, bool, error) { return t.router.Read(key) }

func (t sessionTarget) NewSession() workload.Session {
	s := t.router.NewSession()
	s.MaxLag = t.maxLag
	s.Deadline = t.deadline
	return routerSession{s: s}
}

// routerSession maps the workload's consistency levels onto the runtime's.
type routerSession struct{ s *shard.Session }

func (rs routerSession) Write(key string, value []byte) error {
	_, err := rs.s.Write(key, value)
	return err
}

func (rs routerSession) Read(key string, lvl workload.Level) ([]byte, bool, error) {
	rl := runtime.LevelEventual
	switch lvl {
	case workload.LevelSession:
		rl = runtime.LevelSession
	case workload.LevelBounded:
		rl = runtime.LevelBounded
	case workload.LevelStrong:
		rl = runtime.LevelStrong
	}
	return rs.s.ReadLevel(key, rl)
}

// propLag merges the propagation-lag histograms of every shard into one
// cluster-wide snapshot.
func propLag(reg *obs.Registry) obs.HistSnapshot {
	var merged obs.HistSnapshot
	for _, h := range reg.Histograms("repro_prop_lag_seconds") {
		merged.Merge(h.Snapshot())
	}
	return merged
}
