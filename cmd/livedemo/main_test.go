package main

import (
	"strings"
	"testing"
)

func TestLivedemoSmallCluster(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-nodes", "8", "-session", "15ms", "-timeout", "20s"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"cluster: 8 replicas", "write", "arrival order", "converged replicas: 8/8"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLivedemoWeakVariant(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nodes", "6", "-weak", "-session", "15ms", "-timeout", "20s"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "weak-consistency") {
		t.Error("weak variant not reflected in output")
	}
}

func TestLivedemoBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-not-a-flag"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}
