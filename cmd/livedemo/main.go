// Command livedemo runs a live fast-consistency cluster — one goroutine per
// replica over an in-memory network — injects a write at the lowest-demand
// replica, and prints, replica by replica, when the update arrived and how,
// demonstrating the demand-ordered propagation on real concurrency.
//
// Usage:
//
//	livedemo [-nodes 24] [-seed 1] [-weak] [-session 40ms]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "livedemo:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("livedemo", flag.ContinueOnError)
	var (
		nodes   = fs.Int("nodes", 24, "number of replicas")
		seed    = fs.Int64("seed", 1, "random seed")
		weak    = fs.Bool("weak", false, "run the weak-consistency baseline instead")
		session = fs.Duration("session", 40*time.Millisecond, "mean anti-entropy interval")
		timeout = fs.Duration("timeout", 30*time.Second, "convergence timeout")
		obsAddr = fs.String("obs-addr", "", "serve /metrics, /statusz and /debug/pprof on this address (empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := rand.New(rand.NewSource(*seed))
	g := topology.BarabasiAlbert(*nodes, 2, r)
	field := demand.Uniform(*nodes, 1, 101, r)
	variant := core.FastConsistency
	if *weak {
		variant = core.WeakConsistency
	}
	sys, err := core.NewSystem(g, field, variant)
	if err != nil {
		return err
	}

	copts := []runtime.Option{
		runtime.WithSeed(*seed),
		runtime.WithSessionInterval(*session),
		runtime.WithAdvertInterval(*session / 8),
	}
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		copts = append(copts, runtime.WithObs(obs.NewClusterObs(reg, *nodes)))
		srv, err := obs.NewServer(*obsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "observability: http://%s/metrics\n", srv.Addr())
	}
	cluster := sys.Cluster(copts...)
	if err := cluster.Start(context.Background()); err != nil {
		return err
	}
	defer cluster.Stop()

	fmt.Fprintf(out, "cluster: %d replicas on %v (%v), session interval %v\n",
		*nodes, g, variant, *session)
	time.Sleep(*session / 4) // let demand adverts seed the tables

	ranked := demand.Rank(field, *nodes, 0)
	origin := ranked[len(ranked)-1] // coldest replica: hardest direction
	ts, err := cluster.Write(origin, "news", []byte("update-1"))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "write %v injected at %v (demand %.1f, lowest)\n\n", ts, origin, field.At(origin, 0))

	watch := cluster.Watch(ts)
	select {
	case <-watch.Done():
	case <-time.After(*timeout):
		fmt.Fprintln(out, "warning: timed out before full convergence")
	}

	times := watch.Times()
	type row struct {
		id      runtime.NodeID
		demand  float64
		arrival time.Duration
	}
	rows := make([]row, 0, len(times))
	for id, d := range times {
		rows = append(rows, row{id: id, demand: field.At(id, 0), arrival: d})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].arrival < rows[j].arrival })

	tab := metrics.NewTable("arrival order", "replica", "demand", "ms after write", "fast gains")
	for i, rw := range rows {
		st := cluster.Stats(rw.id)
		tab.AddRow(i, rw.id.String(), rw.demand,
			float64(rw.arrival.Microseconds())/1000, st.FastEntriesGained)
	}
	if err := tab.Render(out); err != nil {
		return err
	}

	// Demand-vs-arrival correlation: mean arrival of hot vs cold halves.
	hot, cold := metrics.NewSample(len(rows)/2), metrics.NewSample(len(rows)/2)
	for rank, id := range ranked {
		if d, ok := times[id]; ok {
			if rank < len(ranked)/2 {
				hot.Add(d.Seconds() * 1000)
			} else {
				cold.Add(d.Seconds() * 1000)
			}
		}
	}
	fmt.Fprintf(out, "\nhot half mean arrival: %.1f ms   cold half: %.1f ms\n", hot.Mean(), cold.Mean())
	fmt.Fprintf(out, "converged replicas: %d/%d\n", len(times), *nodes)
	return nil
}
