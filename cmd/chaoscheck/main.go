// Command chaoscheck runs seeded, reproducible chaos scenarios against a
// live cluster (or shard router) and verifies the invariants the protocol
// promises: acknowledged writes survive and converge after faults heal,
// store versions never regress, fault-free settling converges, and
// high-demand replicas reach consistency first.
//
// The event schedule and the verdict are deterministic functions of
// (scenario, seed, scale): run the same invocation twice and the output is
// byte-identical. To replay a CI failure locally, copy the seed from the
// logged schedule header:
//
//	go run ./cmd/chaoscheck -scenario split-brain -seed 42
//	go run ./cmd/chaoscheck -scenario crash-recover-disk      # durable: SIGKILL + recover from WAL
//	go run ./cmd/chaoscheck -random -seed 7 -shards 3
//	go run ./cmd/chaoscheck -random -seed 7 -durable          # random schedule over on-disk WALs
//	go run ./cmd/chaoscheck -quick           # the CI smoke tier: 4 scenarios, <2min
//	go run ./cmd/chaoscheck -quick-disk      # the storage-fault smoke tier: slow/dying/full disks + power cuts
//	go run ./cmd/chaoscheck -quick-overload  # the overload smoke tier: flash crowds shed by the admission plane
//	go run ./cmd/chaoscheck -quick-sessions  # the consistency smoke tier: session guarantees under partition, crash-recovery and floods
//
// Durable scenarios run every replica over a segmented on-disk WAL
// (internal/wal); -data-dir pins the WAL root to a directory you can
// inspect afterwards (default: a fresh temp dir, removed after the run).
//
// Wall-clock measurements (settle times, probe arrival means, op counts)
// are not part of the verdict; print them with -v.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaoscheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("chaoscheck", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		scenario = fs.String("scenario", "", "built-in scenario name (see -list)")
		seed     = fs.Int64("seed", 1, "deterministic seed (schedule + verdict reproduce from it)")
		scale    = fs.Float64("scale", 1, "stretch factor on every event offset")
		random   = fs.Bool("random", false, "generate a random scenario from -seed instead of a built-in")
		nodes    = fs.Int("nodes", 8, "replicas per cluster for -random")
		shards   = fs.Int("shards", 1, "shard groups for -random (>1 adds reshard events)")
		duration = fs.Duration("duration", 4*time.Second, "schedule span for -random")
		durable  = fs.Bool("durable", false, "for -random: run with on-disk WALs; crashed replicas recover from disk")
		dataDir  = fs.String("data-dir", "", "root directory for durable replicas' WALs (default: a fresh temp dir per run, removed afterwards)")
		quick    = fs.Bool("quick", false, "CI smoke tier: split-brain, rolling-restart, flaky-network and crash-recover-disk at half scale, fixed seeds")
		quickDsk = fs.Bool("quick-disk", false, "CI storage-fault smoke tier: slow-disk, dying-disk, disk-full, power-cut-matrix and power-cut-pipeline at half scale, fixed seeds")
		quickOvl = fs.Bool("quick-overload", false, "CI overload smoke tier: flash-crowd, hot-shard-skew and slow-disk-backlog at half scale, fixed seeds")
		quickSes = fs.Bool("quick-sessions", false, "CI consistency smoke tier: the session-armed scenarios (split-brain, crash-recover-disk, flash-crowd) at half scale, fixed seeds")
		list     = fs.Bool("list", false, "list built-in scenarios and exit")
		verbose  = fs.Bool("v", false, "print wall-clock observations alongside the verdict")
		timeout  = fs.Duration("timeout", 5*time.Minute, "hard cap per scenario run")
		obsAddr  = fs.String("obs-addr", "", "serve /metrics, /statusz and /debug/pprof on this address while scenarios run; also enables the metrics-consistency check")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *list {
		for _, name := range chaos.Names() {
			fmt.Fprintf(w, "%-20s %s\n", name, chaos.Describe(name))
		}
		return 0, nil
	}

	var scenarios []chaos.Scenario
	switch {
	case *quick:
		for i, name := range []string{"split-brain", "rolling-restart", "flaky-network", "crash-recover-disk"} {
			sc, err := chaos.Named(name, 42+int64(i), 0.5)
			if err != nil {
				return 2, err
			}
			scenarios = append(scenarios, sc)
		}
	case *quickDsk:
		for i, name := range []string{"slow-disk", "dying-disk", "disk-full", "power-cut-matrix", "power-cut-pipeline"} {
			sc, err := chaos.Named(name, 42+int64(i), 0.5)
			if err != nil {
				return 2, err
			}
			scenarios = append(scenarios, sc)
		}
	case *quickOvl:
		for i, name := range []string{"flash-crowd", "hot-shard-skew", "slow-disk-backlog"} {
			sc, err := chaos.Named(name, 42+int64(i), 0.5)
			if err != nil {
				return 2, err
			}
			scenarios = append(scenarios, sc)
		}
	case *quickSes:
		for i, name := range []string{"split-brain", "crash-recover-disk", "flash-crowd"} {
			sc, err := chaos.Named(name, 42+int64(i), 0.5)
			if err != nil {
				return 2, err
			}
			scenarios = append(scenarios, sc)
		}
	case *random:
		scenarios = append(scenarios, chaos.Generate(*seed, chaos.GenConfig{
			Nodes:    *nodes,
			Shards:   *shards,
			Duration: time.Duration(float64(*duration) * *scale),
			Durable:  *durable,
		}))
	case *scenario != "":
		sc, err := chaos.Named(*scenario, *seed, *scale)
		if err != nil {
			return 2, err
		}
		scenarios = append(scenarios, sc)
	default:
		return 2, fmt.Errorf("pick one of -scenario, -random, -quick, -quick-disk, -quick-overload, -quick-sessions or -list")
	}
	if *dataDir != "" {
		for i := range scenarios {
			if scenarios[i].Durable {
				scenarios[i].DataDir = *dataDir
			}
		}
	}

	// One server outlives the scenario loop; each scenario gets a fresh
	// registry swapped in so families never mix across runs. The registry
	// also arms the engine's metrics-consistency check.
	var srv *obs.Server
	if *obsAddr != "" {
		var err error
		if srv, err = obs.NewServer(*obsAddr, obs.NewRegistry()); err != nil {
			return 2, err
		}
		defer srv.Close()
		fmt.Fprintf(w, "observability: http://%s/metrics\n\n", srv.Addr())
	}

	failed := 0
	for i, sc := range scenarios {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if srv != nil {
			sc.Obs = obs.NewRegistry()
			srv.SetRegistry(sc.Obs)
			name := sc.Name
			srv.SetStatus(func() any { return map[string]any{"scenario": name} })
		}
		fmt.Fprint(w, sc.Schedule())
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		rep, err := chaos.Run(ctx, sc)
		cancel()
		if err != nil {
			return 2, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		fmt.Fprint(w, rep.Verdict())
		if *verbose {
			fmt.Fprint(w, rep.Observations())
		}
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		return 1, nil
	}
	return 0, nil
}
