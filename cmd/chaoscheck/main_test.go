package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/chaos"
)

func TestListScenarios(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-list"}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("run -list: code=%d err=%v", code, err)
	}
	for _, name := range chaos.Names() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, buf.String())
		}
	}
}

func TestFlagValidation(t *testing.T) {
	if _, err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("no mode selected should error")
	}
	if _, err := run([]string{"-scenario", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown scenario should error")
	}
	if code, err := run([]string{"-bogus-flag"}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Errorf("bad flag: code=%d err=%v", code, err)
	}
}

// TestScenarioRunReproducible runs one short scenario twice through the CLI
// surface: the full output (schedule + verdict) must be byte-identical and
// report success — the contract CI failure replays depend on.
func TestScenarioRunReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos run in -short mode")
	}
	args := []string{"-scenario", "split-brain", "-seed", "5", "-scale", "0.25"}
	outputs := make([]string, 2)
	for i := range outputs {
		var buf bytes.Buffer
		code, err := run(args, &buf)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if code != 0 {
			t.Fatalf("run %d failed invariants:\n%s", i, buf.String())
		}
		outputs[i] = buf.String()
	}
	if outputs[0] != outputs[1] {
		t.Errorf("same invocation produced different output:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
	if !strings.Contains(outputs[0], "verdict: PASS") {
		t.Errorf("output missing pass verdict:\n%s", outputs[0])
	}
}
