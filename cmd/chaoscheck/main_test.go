package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/chaos"
)

func TestListScenarios(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-list"}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("run -list: code=%d err=%v", code, err)
	}
	for _, name := range chaos.Names() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, buf.String())
		}
	}
}

func TestFlagValidation(t *testing.T) {
	if _, err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("no mode selected should error")
	}
	if _, err := run([]string{"-scenario", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown scenario should error")
	}
	if code, err := run([]string{"-bogus-flag"}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Errorf("bad flag: code=%d err=%v", code, err)
	}
}

// TestScenarioRunReproducible runs one short scenario twice through the CLI
// surface: the full output (schedule + verdict) must be byte-identical and
// report success — the contract CI failure replays depend on.
func TestScenarioRunReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos run in -short mode")
	}
	args := []string{"-scenario", "split-brain", "-seed", "5", "-scale", "0.25"}
	outputs := make([]string, 2)
	for i := range outputs {
		var buf bytes.Buffer
		code, err := run(args, &buf)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if code != 0 {
			t.Fatalf("run %d failed invariants:\n%s", i, buf.String())
		}
		outputs[i] = buf.String()
	}
	if outputs[0] != outputs[1] {
		t.Errorf("same invocation produced different output:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
	if !strings.Contains(outputs[0], "verdict: PASS") {
		t.Errorf("output missing pass verdict:\n%s", outputs[0])
	}
	// split-brain is session-armed: the freshness contract's gate is part
	// of the verdict (the -quick-sessions tier runs on this).
	if !strings.Contains(outputs[0], "final/session-guarantees") {
		t.Errorf("output missing session gate:\n%s", outputs[0])
	}
}

// TestCrashRecoverDiskCLI drives the durable scenario through the CLI with
// a pinned data dir and checks the no-at-risk invariant is part of the
// verdict.
func TestCrashRecoverDiskCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos run in -short mode")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	code, err := run([]string{
		"-scenario", "crash-recover-disk", "-seed", "5", "-scale", "0.3",
		"-data-dir", dir,
	}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"durable=true", "restart-disk", "final/no-at-risk", "final/session-guarantees", "verdict: PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The pinned data dir was used (and survives the run for inspection).
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Errorf("pinned -data-dir unused: %v entries=%d", err, len(entries))
	}
}
