package main

import (
	"os"
	"strings"
	"testing"
)

func TestTopogenBA(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-topology", "ba", "-nodes", "60"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"ba(n=60,m=2)", "connected", "true", "rank-degree power law", "hop-pairs power law"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTopogenEdgesAndHist(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-topology", "ring", "-nodes", "6", "-edges", "-hist"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "degree histogram") {
		t.Error("missing histogram section")
	}
	if !strings.Contains(out, "n0 n1") {
		t.Error("missing edge list")
	}
}

func TestTopogenAllKinds(t *testing.T) {
	for _, kind := range []string{"line", "grid", "torus", "star", "tree", "waxman", "gnp"} {
		var b strings.Builder
		if err := run([]string{"-topology", kind, "-nodes", "16"}, &b); err != nil {
			t.Errorf("run(%q): %v", kind, err)
		}
	}
}

func TestTopogenUnknownKind(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-topology", "bogus"}, &b); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestTopogenTransitStubAndDOT(t *testing.T) {
	dot := t.TempDir() + "/g.dot"
	var b strings.Builder
	if err := run([]string{"-topology", "transit-stub", "-nodes", "40", "-dot", dot}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "transit-stub(") {
		t.Error("missing transit-stub name in output")
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph ") || !strings.Contains(string(data), " -- ") {
		t.Errorf("DOT file malformed:\n%s", data[:min(200, len(data))])
	}
}
