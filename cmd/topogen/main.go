// Command topogen generates and inspects the topologies the simulations run
// on, verifying the Internet power laws the paper's §5 requires of them.
//
// Usage:
//
//	topogen -topology ba -nodes 100 [-m 2] [-seed 1] [-edges] [-hist]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"repro/internal/metrics"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		kind      = fs.String("topology", "ba", "topology: ba|line|ring|grid|torus|star|tree|waxman|gnp|transit-stub")
		nodes     = fs.Int("nodes", 100, "number of nodes")
		m         = fs.Int("m", 2, "edges per new node (ba)")
		seed      = fs.Int64("seed", 1, "random seed")
		showEdges = fs.Bool("edges", false, "print the edge list")
		showHist  = fs.Bool("hist", false, "print the degree histogram")
		dotOut    = fs.String("dot", "", "write the graph in Graphviz DOT format to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := rand.New(rand.NewSource(*seed))
	var g *topology.Graph
	switch *kind {
	case "ba":
		g = topology.BarabasiAlbert(*nodes, *m, r)
	case "line":
		g = topology.Line(*nodes)
	case "ring":
		g = topology.Ring(*nodes)
	case "grid":
		side := int(math.Round(math.Sqrt(float64(*nodes))))
		g = topology.Grid(side, side)
	case "torus":
		side := int(math.Round(math.Sqrt(float64(*nodes))))
		g = topology.Torus(side, side)
	case "star":
		g = topology.Star(*nodes)
	case "tree":
		g = topology.RandomTree(*nodes, r)
	case "waxman":
		g = topology.Waxman(*nodes, 0.4, 0.2, r)
	case "gnp":
		g = topology.ErdosRenyi(*nodes, 4/float64(*nodes), r)
	case "transit-stub":
		// Scale the two-level hierarchy to roughly the requested size:
		// n ≈ transit + transit·stubs·stubSize with 3-node stub domains.
		transit := *nodes / 7
		if transit < 2 {
			transit = 2
		}
		g = topology.TransitStub(topology.TransitStubConfig{
			TransitDomains:      2,
			TransitSize:         (transit + 1) / 2,
			StubsPerTransitNode: 2,
			StubSize:            3,
			ExtraTransitEdges:   2,
		}, r)
	default:
		return fmt.Errorf("unknown topology %q", *kind)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("generated graph invalid: %w", err)
	}

	tab := metrics.NewTable("property", "value")
	tab.AddRow("name", g.Name())
	tab.AddRow("nodes", g.N())
	tab.AddRow("edges", g.M())
	tab.AddRow("connected", fmt.Sprintf("%t", g.IsConnected()))
	tab.AddRow("diameter", g.Diameter())
	tab.AddRow("avg path length", g.AvgPathLength())
	tab.AddRow("clustering coeff", g.ClusteringCoefficient())
	tab.AddRow("rank-degree power law", topology.RankDegreeFit(g).String())
	tab.AddRow("degree-frequency power law", topology.DegreeFrequencyFit(g).String())
	tab.AddRow("hop-pairs power law", topology.HopPairsFit(g).String())
	if err := tab.Render(out); err != nil {
		return err
	}

	if *showHist {
		fmt.Fprintln(out, "\ndegree histogram:")
		hist := metrics.NewTable("degree", "nodes")
		for d, count := range g.DegreeHistogram() {
			if count > 0 {
				hist.AddRow(d, count)
			}
		}
		if err := hist.Render(out); err != nil {
			return err
		}
	}
	if *showEdges {
		fmt.Fprintln(out, "\nedges:")
		for _, e := range g.Edges() {
			fmt.Fprintf(out, "%v %v\n", e[0], e[1])
		}
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *dotOut, err)
		}
		if err := g.WriteDOT(f); err != nil {
			f.Close()
			return fmt.Errorf("writing DOT: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nDOT written to %s\n", *dotOut)
	}
	return nil
}
