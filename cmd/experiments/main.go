// Command experiments regenerates every table and figure of the paper's
// evaluation (plus the extension experiments in DESIGN.md).
//
// Usage:
//
//	experiments [-run fig5,fig6] [-trials 10000] [-seed 1] [-list]
//
// With no -run it executes every registered experiment at the given scale.
// Output is the plain-text tables EXPERIMENTS.md embeds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runList  = fs.String("run", "", "comma-separated experiment ids (default: all)")
		trials   = fs.Int("trials", 10000, "Monte-Carlo trials per configuration (paper: 10000)")
		seed     = fs.Int64("seed", 1, "base random seed")
		highFrac = fs.Float64("high", 0.2, "fraction of replicas counted as high-demand")
		list     = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var selected []experiment.Experiment
	if *runList == "" {
		selected = experiment.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiment.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(experiment.Names(), ", "))
			}
			selected = append(selected, e)
		}
	}

	params := experiment.Params{Trials: *trials, Seed: *seed, HighFrac: *highFrac}
	for _, e := range selected {
		start := time.Now()
		fmt.Fprintf(out, "running %s (%s)...\n", e.ID, e.Title)
		res := e.Run(params)
		if err := res.Render(out); err != nil {
			return fmt.Errorf("rendering %s: %w", e.ID, err)
		}
		fmt.Fprintf(out, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
