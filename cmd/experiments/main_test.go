package main

import (
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "uniform", "diameter", "islands", "ablation", "worstcase", "live", "staleness", "truncation", "partition"} {
		if !strings.Contains(b.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-run", "fig3", "-trials", "50"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig3", "worst case", "optimal case", "completed in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-run", "fig3, fig4", "-trials", "20"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "B-C'") {
		t.Error("fig4 output missing from combined run")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-run", "nonsense"}, &b)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v, want unknown-experiment error", err)
	}
}

func TestBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Error("bad flag should return an error")
	}
}
