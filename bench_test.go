// Per-figure benchmark harness: one benchmark per table/figure of the
// paper's evaluation (and per extension experiment). Each benchmark runs a
// reduced-scale version of the corresponding experiment and reports the
// headline quantities as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every result's *shape* quickly; cmd/experiments runs the same
// code at the paper's 10,000-trial scale.
package repro_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/experiment"
	"repro/internal/island"
	"repro/internal/mc"
	"repro/internal/policy"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/topology"
	"repro/internal/workload"
)

// benchParams returns the reduced trial count used by Monte-Carlo benches.
func benchParams() experiment.Params {
	return experiment.Params{Trials: 40, Seed: 1, HighFrac: 0.2}
}

// BenchmarkFig3WorstOptimal regenerates Fig. 3 (requests satisfied with
// consistent content for worst/optimal/fast session orders).
func BenchmarkFig3WorstOptimal(b *testing.B) {
	var worst1, optimal1 float64
	for i := 0; i < b.N; i++ {
		worst, optimal, fast := experiment.Fig3Curves()
		worst1, optimal1 = worst[1], optimal[1]
		if fast[0] != 14 {
			b.Fatalf("fast curve broken: %v", fast)
		}
	}
	b.ReportMetric(worst1, "worst-t1-requests")
	b.ReportMetric(optimal1, "optimal-t1-requests")
}

// BenchmarkFig4Dynamic regenerates the §4 dynamic-demand schedule table.
func BenchmarkFig4Dynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, dynamic := experiment.Fig4Schedules()
		if dynamic[1] != "B-C'" {
			b.Fatalf("dynamic schedule broken: %v", dynamic)
		}
	}
}

// benchCDF runs the Fig. 5/6 workload at n nodes and reports the three
// headline means as metrics.
func benchCDF(b *testing.B, n int) {
	b.Helper()
	var weakAll, fastAll, fastHigh float64
	for i := 0; i < b.N; i++ {
		weakAll, fastAll, fastHigh = experiment.CDFMeans(benchParams(), n)
	}
	b.ReportMetric(weakAll, "weak-sessions-all")
	b.ReportMetric(fastAll, "fast-sessions-all")
	b.ReportMetric(fastHigh, "fast-sessions-high")
}

// BenchmarkFig5_50Nodes regenerates Fig. 5 (paper: weak 6.15, fast 3.93,
// high-demand ~1).
func BenchmarkFig5_50Nodes(b *testing.B) { benchCDF(b, 50) }

// BenchmarkFig6_100Nodes regenerates Fig. 6 (paper: weak 6.98, fast 4.78,
// high-demand ~1).
func BenchmarkFig6_100Nodes(b *testing.B) { benchCDF(b, 100) }

// BenchmarkUniformTopologies regenerates the §5 uniform-topology claim on a
// representative ring.
func BenchmarkUniformTopologies(b *testing.B) {
	g := topology.Ring(30)
	r := rand.New(rand.NewSource(2))
	field := demand.Uniform(30, 1, 101, r)
	var fastMean float64
	for i := 0; i < b.N; i++ {
		cfg := mc.NewConfig(g, field, policy.NewDynamicOrdered)
		cfg.FastPush = true
		cfg.Horizon = 2000
		agg := mc.RunMany(cfg, 20, int64(i), 0.2)
		fastMean = agg.TimeAll.Mean()
	}
	b.ReportMetric(fastMean, "fast-sessions-ring30")
}

// BenchmarkDiameterScaling regenerates the §5 doubling observation
// (50 → 100 nodes) and reports the growth ratio (paper: 6.15→6.98, 1.135x).
func BenchmarkDiameterScaling(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(3))
		g50 := topology.BarabasiAlbert(50, 2, r)
		g100 := topology.BarabasiAlbert(100, 2, r)
		f50 := demand.Uniform(50, 1, 101, r)
		f100 := demand.Uniform(100, 1, 101, r)
		w50 := mc.RunMany(mc.NewConfig(g50, f50, policy.NewRandom), 30, 10, 0.2)
		w100 := mc.RunMany(mc.NewConfig(g100, f100, policy.NewRandom), 30, 10, 0.2)
		ratio = w100.TimeAll.Mean() / w50.TimeAll.Mean()
	}
	b.ReportMetric(ratio, "weak-doubling-growth")
}

// BenchmarkIslands regenerates the §6 leader-overlay comparison and reports
// the far valley's speedup factor.
func BenchmarkIslands(b *testing.B) {
	var plain, overlay float64
	for i := 0; i < b.N; i++ {
		plain, overlay = experiment.IslandGap(experiment.Params{Trials: 15, Seed: 5, HighFrac: 0.2})
	}
	b.ReportMetric(plain, "far-valley-plain")
	b.ReportMetric(overlay, "far-valley-overlay")
}

// BenchmarkAblation regenerates the E8 optimisation decomposition.
func BenchmarkAblation(b *testing.B) {
	var weak, fast float64
	for i := 0; i < b.N; i++ {
		var ordered, push float64
		weak, ordered, push, fast = experiment.AblationMeans(benchParams())
		_, _ = ordered, push
	}
	b.ReportMetric(weak, "weak-sessions")
	b.ReportMetric(fast, "fast-sessions")
}

// BenchmarkWorstCase regenerates the §8 equal-demand degeneracy check.
func BenchmarkWorstCase(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	g := topology.BarabasiAlbert(40, 2, r)
	flat := make(demand.Static, 40)
	for i := range flat {
		flat[i] = 10
	}
	var weakMean, fastMean float64
	for i := 0; i < b.N; i++ {
		weak := mc.RunMany(mc.NewConfig(g, flat, policy.NewRandom), 30, 11, 0.2)
		fastCfg := mc.NewConfig(g, flat, policy.NewDynamicOrdered)
		fastCfg.FastPush = true
		fast := mc.RunMany(fastCfg, 30, 11, 0.2)
		weakMean, fastMean = weak.TimeAll.Mean(), fast.TimeAll.Mean()
	}
	b.ReportMetric(weakMean, "weak-sessions")
	b.ReportMetric(fastMean, "fast-sessions")
}

// BenchmarkLiveCluster measures wall-clock convergence of a 16-replica live
// cluster after a single write (E10).
func BenchmarkLiveCluster(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	g := topology.BarabasiAlbert(16, 2, r)
	field := demand.Uniform(16, 1, 101, r)
	sys, err := core.NewSystem(g, field, core.FastConsistency)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cluster := sys.Cluster()
		if err := cluster.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		if _, err := cluster.Write(0, "bench", []byte("v")); err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if !cluster.WaitConverged(ctx) {
			cancel()
			cluster.Stop()
			b.Fatal("cluster did not converge")
		}
		cancel()
		cluster.Stop()
	}
}

// BenchmarkPartition regenerates the E13 segmentation experiment: the
// network is bisected for 5 sessions after the write, then healed; the
// metric is the far side's convergence time under fast consistency.
func BenchmarkPartition(b *testing.B) {
	r := rand.New(rand.NewSource(29))
	g := topology.BarabasiAlbert(40, 2, r)
	field := demand.Uniform(40, 1, 101, r)
	dist := g.BFS(0)
	side := make([]int, g.N())
	for i, d := range dist {
		if d > 2 {
			side[i] = 1
		}
	}
	var farSide []mc.NodeID
	for i, s := range side {
		if s == 1 {
			farSide = append(farSide, mc.NodeID(i))
		}
	}
	var farMean float64
	for i := 0; i < b.N; i++ {
		cfg := mc.NewConfig(g, field, policy.NewDynamicOrdered)
		cfg.FastPush = true
		cfg.Origin = 0
		cfg.LinkFilter = func(from, to mc.NodeID, t float64) bool {
			return t >= 5 || side[from] == side[to]
		}
		s := 0.0
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			res := mc.RunTrial(cfg, int64(trial))
			s += res.TimeOver(farSide)
		}
		farMean = s / trials
	}
	b.ReportMetric(farMean, "far-side-sessions")
}

// BenchmarkStaleness regenerates the E11 steady-state staleness comparison
// and reports the read-weighted lag under fast consistency.
func BenchmarkStaleness(b *testing.B) {
	r := rand.New(rand.NewSource(19))
	g := topology.BarabasiAlbert(30, 2, r)
	field := demand.Uniform(30, 1, 101, r)
	var lag float64
	for i := 0; i < b.N; i++ {
		cfg := mc.SteadyConfig{
			Config:    mc.NewConfig(g, field, policy.NewDynamicOrdered),
			WriteRate: 1,
			ReadScale: 0.02,
			Duration:  30,
			Warmup:    5,
		}
		cfg.FastPush = true
		lag = mc.RunSteady(cfg, int64(i)).MeanLag
	}
	b.ReportMetric(lag, "fast-mean-lag")
}

// BenchmarkTruncation regenerates the E12 truncation trade-off and reports
// the snapshot count forced by keep-last-1 retention.
func BenchmarkTruncation(b *testing.B) {
	r := rand.New(rand.NewSource(23))
	g := topology.BarabasiAlbert(30, 2, r)
	field := demand.Uniform(30, 1, 101, r)
	var snapshots float64
	for i := 0; i < b.N; i++ {
		cfg := mc.SteadyConfig{
			Config:           mc.NewConfig(g, field, policy.NewDynamicOrdered),
			WriteRate:        2,
			ReadScale:        0.02,
			Duration:         30,
			Warmup:           5,
			TruncateKeep:     1,
			TruncateInterval: 1,
		}
		cfg.FastPush = true
		snapshots = float64(mc.RunSteady(cfg, int64(i)).Snapshots)
	}
	b.ReportMetric(snapshots, "snapshots-forced")
}

// BenchmarkSingleTrialFast50 is the inner-loop cost of one Monte-Carlo
// trial at Fig. 5 scale (50 nodes, fast consistency).
func BenchmarkSingleTrialFast50(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	g := topology.BarabasiAlbert(50, 2, r)
	field := demand.Uniform(50, 1, 101, r)
	cfg := mc.NewConfig(g, field, policy.NewDynamicOrdered)
	cfg.FastPush = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.RunTrial(cfg, int64(i))
	}
}

// BenchmarkIslandDetect is the cost of §6 island detection on a 400-node
// power-law graph.
func BenchmarkIslandDetect(b *testing.B) {
	r := rand.New(rand.NewSource(17))
	g := topology.BarabasiAlbert(400, 2, r)
	field := demand.Uniform(400, 1, 101, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		island.Detect(g, field, 0, island.Threshold{Percentile: 80})
	}
}

// benchShardedThroughput drives the consistent-hash router end-to-end: b.N
// closed-loop ops against nShards groups carved from one 16-replica
// substrate, then waits for every shard to converge. Comparing the
// shards=4 and shards=1 rows shows what partitioning the keyspace buys at
// fixed total replica count.
func benchShardedThroughput(b *testing.B, nShards int) {
	b.Helper()
	r := rand.New(rand.NewSource(31))
	g := topology.BarabasiAlbert(16, 2, r)
	field := demand.Uniform(16, 1, 101, r)
	sys, err := core.NewSystem(g, field, core.FastConsistency)
	if err != nil {
		b.Fatal(err)
	}
	router, err := core.Sharded(sys, nShards, shard.Config{Seed: 31},
		runtime.WithSessionInterval(10*time.Millisecond),
		runtime.WithAdvertInterval(5*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	if err := router.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer router.Stop()

	cfg := workload.Config{Workers: 8, Ops: b.N, ReadFraction: 0.9, Keys: 1024, Seed: 31}
	b.ResetTimer()
	res := workload.Run(context.Background(), cfg, shard.Target{Router: router})
	b.StopTimer()
	if res.Errors > 0 {
		b.Fatalf("%d ops failed", res.Errors)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if !router.WaitConverged(ctx) {
		b.Fatal("shards did not converge after load")
	}
	for _, name := range router.Shards() {
		grp, _ := router.Group(name)
		if _, ok := grp.Digest(); !ok {
			b.Fatalf("%s: store digests disagree after convergence", name)
		}
	}
	b.ReportMetric(res.OpsPerSec(), "ops/sec")
	b.ReportMetric(res.ReadLatency.Percentile(99), "read-p99-ms")
}

// BenchmarkShardedThroughput4 is the sharded deployment: 4 groups x 4
// replicas behind the consistent-hash router.
func BenchmarkShardedThroughput4(b *testing.B) { benchShardedThroughput(b, 4) }

// BenchmarkShardedThroughput1 is the unsharded control at the same total
// replica count: 1 group x 16 replicas behind the same router surface.
func BenchmarkShardedThroughput1(b *testing.B) { benchShardedThroughput(b, 1) }
