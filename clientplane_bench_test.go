// Client-plane benchmarks: the live Read/Write surface a replica serves to
// its clients, measured under parallelism (-cpu 4,8). These are the paper's
// deployment story — "clients will be able to contact the nearest replica" —
// so the numbers that matter are concurrent ops/sec against one replica
// group, not protocol-internal microcosts.
//
// BenchmarkClientPlaneReadParallel pins the lock-free read path: many client
// goroutines reading across all replicas of one group.
//
// BenchmarkGroupCommitThroughput pins the write-combining path: many client
// goroutines writing through a single replica, where concurrent writes fold
// into one lock acquisition and one merged fast-offer fan-out per batch.
//
// BenchmarkTCPClientPlane runs the same closed-loop client mix against a
// cluster whose replication runs over real TCP sockets, so the coalescing
// peer writer is on the measured path.
package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/runtime"
	"repro/internal/topology"
	"repro/internal/workload"
)

// startBenchCluster builds and starts a live memory-transport cluster with
// session timing slowed enough that anti-entropy background traffic does not
// dominate the client-plane measurement.
func startBenchCluster(b *testing.B, n int, extra ...runtime.Option) *runtime.Cluster {
	b.Helper()
	r := rand.New(rand.NewSource(47))
	g := topology.BarabasiAlbert(n, 2, r)
	field := demand.Uniform(n, 1, 101, r)
	opts := append([]runtime.Option{
		runtime.WithSeed(47),
		runtime.WithSessionInterval(20 * time.Millisecond),
		runtime.WithAdvertInterval(10 * time.Millisecond)}, extra...)
	cluster := runtime.New(g, field, opts...)
	if err := cluster.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.Stop)
	return cluster
}

// preloadKeys writes nKeys through replica 0 and waits for the group to
// converge, so every replica serves every key during the read phase.
func preloadKeys(b *testing.B, cluster *runtime.Cluster, nKeys int) []string {
	b.Helper()
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%04d", i)
		if _, err := cluster.Write(0, keys[i], []byte("client-plane-payload")); err != nil {
			b.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !cluster.WaitConverged(ctx) {
		b.Fatal("cluster did not converge after preload")
	}
	return keys
}

// BenchmarkClientPlaneReadParallel measures concurrent client reads spread
// across every replica of an 8-replica group. Run with -cpu 4,8 to see
// scaling; the read path must not contend on any per-replica lock.
func BenchmarkClientPlaneReadParallel(b *testing.B) {
	cluster := startBenchCluster(b, 8)
	keys := preloadKeys(b, cluster, 512)
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		id := runtime.NodeID(next.Add(1)) % runtime.NodeID(cluster.N())
		i := int(next.Add(1))
		for pb.Next() {
			key := keys[i%len(keys)]
			i++
			if _, _, err := cluster.Read(id, key); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/sec")
}

// BenchmarkSessionRead pins the token-covered session-read fast path: each
// client goroutine reads at one replica carrying a session token that
// replica already covers (the warm read merges the replica's applied
// watermark into it and pins the token's snapshot cache), so every
// measured read is the plain read plus one atomic watermark load and a
// pointer compare. The contract: zero allocations and per-op cost within
// 10% of BenchmarkClientPlaneReadParallel — session guarantees are free
// until a replica actually lags.
func BenchmarkSessionRead(b *testing.B) {
	cluster := startBenchCluster(b, 8)
	keys := preloadKeys(b, cluster, 512)
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		id := runtime.NodeID(next.Add(1)) % runtime.NodeID(cluster.N())
		i := int(next.Add(1))
		tok := &runtime.Token{}
		opt := &runtime.LeveledRead{Level: runtime.LevelSession, Token: tok}
		if _, _, err := cluster.ReadLeveled(id, keys[0], opt); err != nil {
			b.Fatal(err)
		}
		for pb.Next() {
			key := keys[i%len(keys)]
			i++
			if _, _, err := cluster.ReadLeveled(id, key, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/sec")
}

// BenchmarkGroupCommitThroughput measures concurrent client writes funnelled
// through one replica of a 4-replica group — the worst case for the old
// lock-per-write path and the best case for write combining.
func BenchmarkGroupCommitThroughput(b *testing.B) {
	cluster := startBenchCluster(b, 4)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("gc-key-%04d", i)
	}
	var next atomic.Int64
	value := []byte("group-commit-payload")
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 1_000_003
		for pb.Next() {
			key := keys[i%len(keys)]
			i++
			if _, err := cluster.Write(0, key, value); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/sec")
	b.StopTimer()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !cluster.WaitConverged(ctx) {
		b.Fatal("cluster did not converge after writes")
	}
}

// BenchmarkDurableGroupCommit is BenchmarkGroupCommitThroughput with the
// durable persistence plane on, measuring the pipelined commit protocol:
// batches append and publish under the replica lock, fsyncs retire in the
// WAL's background sync stage, and acks release in batch order once their
// covering sync completes. The gap to BenchmarkGroupCommitThroughput is
// the price of crash-surviving acks.
//
// Every client is closed-loop (its next write waits on its last ack), so
// the pipeline only fills when enough clients are outstanding; parallelism
// 8 runs 8×GOMAXPROCS clients — 64 at -cpu 8 — the load level where the
// fsync, not the replica lock, must be the only bottleneck.
func BenchmarkDurableGroupCommit(b *testing.B) {
	cluster := startBenchCluster(b, 4, runtime.WithDurability(b.TempDir()))
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("gc-key-%04d", i)
	}
	var next atomic.Int64
	value := []byte("group-commit-payload")
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 1_000_003
		for pb.Next() {
			key := keys[i%len(keys)]
			i++
			if _, err := cluster.Write(0, key, value); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "ops/sec")
	b.StopTimer()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !cluster.WaitConverged(ctx) {
		b.Fatal("cluster did not converge after writes")
	}
}

// clusterTarget adapts a single live cluster to the workload driver,
// spreading ops across replicas round-robin (the "nearest replica" of the
// paper, with clients evenly distributed).
type clusterTarget struct {
	cluster *runtime.Cluster
	next    atomic.Int64
}

func (t *clusterTarget) pick() runtime.NodeID {
	return runtime.NodeID(t.next.Add(1)) % runtime.NodeID(t.cluster.N())
}

func (t *clusterTarget) Write(key string, value []byte) error {
	_, err := t.cluster.Write(t.pick(), key, value)
	return err
}

func (t *clusterTarget) Read(key string) ([]byte, bool, error) {
	return t.cluster.Read(t.pick(), key)
}

// BenchmarkTCPClientPlane drives the standard closed-loop client mix (8
// workers, 90% reads) against a 4-replica cluster replicating over real TCP
// sockets on the loopback, so frame encoding, the peer send path, and kernel
// syscalls are all on the measured path.
func BenchmarkTCPClientPlane(b *testing.B) {
	r := rand.New(rand.NewSource(53))
	g := topology.Ring(4)
	field := demand.Uniform(4, 1, 101, r)
	cluster, err := runtime.NewTCP(g, field, "127.0.0.1",
		runtime.WithSeed(53),
		runtime.WithSessionInterval(20*time.Millisecond),
		runtime.WithAdvertInterval(10*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	if err := cluster.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.Stop)
	target := &clusterTarget{cluster: cluster}
	cfg := workload.Config{Workers: 8, Ops: b.N, ReadFraction: 0.9, Keys: 1024, Seed: 53}
	b.ResetTimer()
	res := workload.Run(context.Background(), cfg, target)
	b.StopTimer()
	if res.Errors > 0 {
		b.Fatalf("%d ops failed", res.Errors)
	}
	b.ReportMetric(res.OpsPerSec(), "ops/sec")
	b.ReportMetric(res.ReadLatency.Percentile(99), "read-p99-ms")
}

// BenchmarkGoodputUnderOverload is the overload-robustness headline: a
// durable 4-replica group with the admission plane armed, offered an
// open-loop write flood at 2x its own measured saturation rate. The
// reported ops/sec is GOODPUT — writes acked per wall-clock second while
// the controller sheds the excess — and goodput-ratio is goodput over the
// saturation rate measured untimed just before. A graceful server holds
// the ratio near 1 (capacity is spent on admitted work, not on queueing
// collapse); the regression gate watches ops/sec like every other bench.
func BenchmarkGoodputUnderOverload(b *testing.B) {
	cluster := startBenchCluster(b, 4,
		runtime.WithDurability(b.TempDir()),
		runtime.WithAdmission(runtime.AdmissionConfig{
			MaxQueueDepth: 32,
			Target:        2 * time.Millisecond,
			Interval:      25 * time.Millisecond,
			WriteDeadline: 75 * time.Millisecond,
		}))
	target := &clusterTarget{cluster: cluster}

	// Untimed saturation probe: closed-loop all-write traffic measures the
	// durable write capacity of this host, so the timed flood below is
	// calibrated overload (2x capacity), not a magic constant.
	probe := workload.Run(context.Background(), workload.Config{
		Workers: 64, Ops: 8000, ReadFraction: 0, Keys: 1024, Seed: 59,
		RetryBudget: 3,
	}, target)
	saturation := float64(probe.Writes) / probe.Elapsed.Seconds()
	if saturation <= 0 {
		b.Fatal("saturation probe measured zero write capacity")
	}

	b.ReportAllocs()
	b.ResetTimer()
	res := workload.Run(context.Background(), workload.Config{
		Workers: 64, Ops: b.N, ReadFraction: 0, Keys: 1024, Seed: 61,
		OpenLoop: true, ArrivalRate: 2 * saturation, RetryBudget: 1,
	}, target)
	b.StopTimer()
	goodput := float64(res.Writes) / res.Elapsed.Seconds()
	b.ReportMetric(goodput, "ops/sec")
	b.ReportMetric(goodput/saturation, "goodput-ratio")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !cluster.WaitConverged(ctx) {
		b.Fatal("cluster did not converge after the flood")
	}
}
