// Package vclock implements the logical-time machinery of Golding's
// timestamped anti-entropy protocol: per-write timestamps and per-replica
// summary vectors.
//
// A Timestamp names a single write uniquely by its origin replica and a
// per-origin sequence number. A Summary is the "summary vector" exchanged at
// the start of an anti-entropy session: for every origin replica it records
// the highest contiguous sequence number seen, so two replicas can compute
// exactly the set of writes each is missing.
//
// # Dense representation
//
// NodeIDs are small dense integers assigned by the topology (0, 1, 2, …), so
// a Summary stores its vector as a []uint64 indexed directly by NodeID rather
// than as a map. This makes Covers a bounds-checked array load, Merge and
// Compare single linear scans with no hashing or map iteration, Clone one
// slice copy, and Origins a scan that needs no sort — exactly the dense
// vector representation Golding's timestamped anti-entropy and Bayou's log
// truncation assume. The cost is that the vector's length is the highest
// origin id observed plus one; with dense ids that is within a constant
// factor of the population. Sparse or negative NodeIDs are outside the
// representation's contract: Observe panics on a negative origin.
package vclock

import (
	"fmt"
	"strings"
)

// NodeID identifies a replica. IDs are small dense integers assigned by the
// topology, which keeps summary vectors compact and comparisons cheap.
type NodeID int32

// String returns a short human-readable form such as "n7".
func (id NodeID) String() string { return fmt.Sprintf("n%d", int32(id)) }

// Timestamp uniquely identifies one write: the Seq-th write accepted at
// replica Node. Seq starts at 1; the zero Timestamp is not a valid write id.
type Timestamp struct {
	Node NodeID
	Seq  uint64
}

// IsZero reports whether ts is the zero value (no write).
func (ts Timestamp) IsZero() bool { return ts == Timestamp{} }

// String returns a form such as "n3:17".
func (ts Timestamp) String() string { return fmt.Sprintf("%v:%d", ts.Node, ts.Seq) }

// Compare orders timestamps first by origin, then by sequence. It induces an
// arbitrary but deterministic total order used for tie-breaking; it is not a
// happens-before order.
func (ts Timestamp) Compare(other Timestamp) int {
	switch {
	case ts.Node < other.Node:
		return -1
	case ts.Node > other.Node:
		return 1
	case ts.Seq < other.Seq:
		return -1
	case ts.Seq > other.Seq:
		return 1
	}
	return 0
}

// Ordering is the result of comparing two summary vectors.
type Ordering int

// Possible results of Summary.Compare.
const (
	Equal Ordering = iota + 1
	Before
	After
	Concurrent
)

// String returns the name of the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// Summary is a summary vector: for each origin replica, the highest sequence
// number such that all writes from that origin up to and including it have
// been received. The zero value is an empty summary ready to use.
//
// Summary is not safe for concurrent use; callers synchronise.
type Summary struct {
	// seq[n] is the highest contiguous sequence seen from origin n; entries
	// past the slice end are implicitly 0. Trailing zeros may be present
	// (e.g. after observing origin 7 before origin 3).
	seq []uint64
	// origins counts the non-zero entries of seq, so Len is O(1).
	origins int
}

// NewSummary returns an empty summary vector.
func NewSummary() *Summary { return &Summary{} }

// Get returns the highest contiguous sequence number seen from node, or 0.
func (s *Summary) Get(node NodeID) uint64 {
	if s == nil || node < 0 || int(node) >= len(s.seq) {
		return 0
	}
	return s.seq[node]
}

// Covers reports whether the summary already accounts for ts, i.e. whether a
// replica holding this summary has received the write named by ts.
func (s *Summary) Covers(ts Timestamp) bool {
	if ts.IsZero() {
		return true
	}
	return s.Get(ts.Node) >= ts.Seq
}

// grow extends the dense vector so index node is addressable. Spare capacity
// doubles so observing origins in ascending order stays amortised O(1); the
// region between the old and new length is zero because the backing array is
// allocated zeroed and never shrunk.
func (s *Summary) grow(node NodeID) {
	need := int(node) + 1
	if need <= len(s.seq) {
		return
	}
	if need <= cap(s.seq) {
		s.seq = s.seq[:need]
		return
	}
	newCap := 2 * cap(s.seq)
	if newCap < need {
		newCap = need
	}
	grown := make([]uint64, need, newCap)
	copy(grown, s.seq)
	s.seq = grown
}

// set stores seq for node, maintaining the non-zero-entry count. seq must be
// >= the current value (summaries only advance).
func (s *Summary) set(node NodeID, seq uint64) {
	if node < 0 {
		panic(fmt.Sprintf("vclock: negative origin %v breaks the dense-vector contract", node))
	}
	s.grow(node)
	if s.seq[node] == 0 && seq > 0 {
		s.origins++
	}
	s.seq[node] = seq
}

// Observe records receipt of the write named by ts. Writes from one origin
// must be observed in sequence order (the write log guarantees this); Observe
// panics on a gap because a gap would silently corrupt the "contiguous
// prefix" invariant every other method relies on.
func (s *Summary) Observe(ts Timestamp) {
	if ts.IsZero() {
		return
	}
	cur := s.Get(ts.Node)
	switch {
	case ts.Seq <= cur:
		return // duplicate delivery; already covered
	case ts.Seq != cur+1:
		panic(fmt.Sprintf("vclock: out-of-order observe %v after seq %d", ts, cur))
	}
	s.set(ts.Node, ts.Seq)
}

// Advance raises the vector for node to at least seq, skipping any
// intermediate sequences. It is the non-contiguous counterpart of Observe,
// used when adopting a full-state snapshot whose intervening writes arrive
// out-of-log; every sequence at or below seq is then covered by fiat.
func (s *Summary) Advance(node NodeID, seq uint64) {
	if seq == 0 || seq <= s.Get(node) {
		return
	}
	s.set(node, seq)
}

// Next returns the timestamp the given origin should assign to its next
// local write, based on this summary.
func (s *Summary) Next(node NodeID) Timestamp {
	return Timestamp{Node: node, Seq: s.Get(node) + 1}
}

// Merge folds other into s, taking the element-wise maximum. Merging is the
// commutative, associative, idempotent join of the summary lattice.
func (s *Summary) Merge(other *Summary) {
	if other == nil || len(other.seq) == 0 {
		return
	}
	if n := len(other.seq); n > len(s.seq) {
		s.grow(NodeID(n - 1))
	}
	for node, seq := range other.seq {
		if seq > s.seq[node] {
			if s.seq[node] == 0 {
				s.origins++
			}
			s.seq[node] = seq
		}
	}
}

// Compare returns the lattice order between s and other: Equal, Before
// (s strictly dominated), After (s strictly dominates), or Concurrent.
func (s *Summary) Compare(other *Summary) Ordering {
	var a, b []uint64
	if s != nil {
		a = s.seq
	}
	if other != nil {
		b = other.seq
	}
	// One pass over the longer vector; the shorter reads as implicit zeros.
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	sLess, oLess := false, false
	for i := 0; i < n; i++ {
		var av, bv uint64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		switch {
		case av < bv:
			sLess = true
		case av > bv:
			oLess = true
		}
		if sLess && oLess {
			return Concurrent
		}
	}
	switch {
	case sLess:
		return Before
	case oLess:
		return After
	}
	return Equal
}

// Dominates reports whether s covers every write that other covers.
func (s *Summary) Dominates(other *Summary) bool {
	ord := s.Compare(other)
	return ord == Equal || ord == After
}

// LagBehind returns the number of writes other covers that s does not:
// the sum over every origin of max(0, other[origin] - s[origin]). Zero
// means s dominates other. It allocates nothing — the consistency plane's
// freshness probes call it on every covered session read.
func (s *Summary) LagBehind(other *Summary) uint64 {
	if other == nil || len(other.seq) == 0 {
		return 0
	}
	var a []uint64
	if s != nil {
		a = s.seq
	}
	var lag uint64
	for i, ov := range other.seq {
		var av uint64
		if i < len(a) {
			av = a[i]
		}
		if ov > av {
			lag += ov - av
		}
	}
	return lag
}

// LagDelta returns, in one pass, the number of writes other covers that s
// does not (the LagBehind count) and whether s covers any write other does
// not — i.e. whether merging s into other would advance other. The
// consistency plane's covered-read probe uses it to skip the token merge in
// the steady state where the token already dominates the replica's
// watermark.
func (s *Summary) LagDelta(other *Summary) (lag uint64, gains bool) {
	var a, b []uint64
	if s != nil {
		a = s.seq
	}
	if other != nil {
		b = other.seq
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		var av, bv uint64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		if bv > av {
			lag += bv - av
		} else if av > bv {
			gains = true
		}
	}
	return lag, gains
}

// Clone returns an independent deep copy of s.
func (s *Summary) Clone() *Summary {
	c := NewSummary()
	if s == nil || len(s.seq) == 0 {
		return c
	}
	c.seq = make([]uint64, len(s.seq))
	copy(c.seq, s.seq)
	c.origins = s.origins
	return c
}

// Len returns the number of origins with at least one observed write.
func (s *Summary) Len() int {
	if s == nil {
		return 0
	}
	return s.origins
}

// Origins returns the origins with at least one observed write, ascending.
// The dense layout yields them in order with no sort.
func (s *Summary) Origins() []NodeID {
	if s == nil || s.origins == 0 {
		return nil
	}
	nodes := make([]NodeID, 0, s.origins)
	for node, seq := range s.seq {
		if seq > 0 {
			nodes = append(nodes, NodeID(node))
		}
	}
	return nodes
}

// ForEach calls fn for every origin with at least one observed write, in
// ascending origin order, without allocating. fn must not mutate s.
func (s *Summary) ForEach(fn func(node NodeID, seq uint64)) {
	if s == nil {
		return
	}
	for node, seq := range s.seq {
		if seq > 0 {
			fn(NodeID(node), seq)
		}
	}
}

// Total returns the total number of writes covered across all origins. It is
// the anti-entropy progress metric: Total is monotone non-decreasing and two
// replicas are mutually consistent exactly when their summaries are Equal.
func (s *Summary) Total() uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for _, seq := range s.seq {
		total += seq
	}
	return total
}

// Pairs returns the vector as an (origin, highest-seq) map copy, for
// serialisation.
func (s *Summary) Pairs() map[NodeID]uint64 {
	out := make(map[NodeID]uint64, s.Len())
	s.ForEach(func(node NodeID, seq uint64) { out[node] = seq })
	return out
}

// FromPairs reconstructs a summary from serialised (origin, highest-seq)
// pairs. Zero sequences are dropped.
func FromPairs(pairs map[NodeID]uint64) *Summary {
	s := NewSummary()
	for node, seq := range pairs {
		s.Advance(node, seq)
	}
	return s
}

// String renders the vector as "{n0:3 n2:1}" with origins in ascending order.
func (s *Summary) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(node NodeID, seq uint64) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%v:%d", node, seq)
	})
	b.WriteByte('}')
	return b.String()
}
