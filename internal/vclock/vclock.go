// Package vclock implements the logical-time machinery of Golding's
// timestamped anti-entropy protocol: per-write timestamps and per-replica
// summary vectors.
//
// A Timestamp names a single write uniquely by its origin replica and a
// per-origin sequence number. A Summary is the "summary vector" exchanged at
// the start of an anti-entropy session: for every origin replica it records
// the highest contiguous sequence number seen, so two replicas can compute
// exactly the set of writes each is missing.
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a replica. IDs are small dense integers assigned by the
// topology, which keeps summary vectors compact and comparisons cheap.
type NodeID int32

// String returns a short human-readable form such as "n7".
func (id NodeID) String() string { return fmt.Sprintf("n%d", int32(id)) }

// Timestamp uniquely identifies one write: the Seq-th write accepted at
// replica Node. Seq starts at 1; the zero Timestamp is not a valid write id.
type Timestamp struct {
	Node NodeID
	Seq  uint64
}

// IsZero reports whether ts is the zero value (no write).
func (ts Timestamp) IsZero() bool { return ts == Timestamp{} }

// String returns a form such as "n3:17".
func (ts Timestamp) String() string { return fmt.Sprintf("%v:%d", ts.Node, ts.Seq) }

// Compare orders timestamps first by origin, then by sequence. It induces an
// arbitrary but deterministic total order used for tie-breaking; it is not a
// happens-before order.
func (ts Timestamp) Compare(other Timestamp) int {
	switch {
	case ts.Node < other.Node:
		return -1
	case ts.Node > other.Node:
		return 1
	case ts.Seq < other.Seq:
		return -1
	case ts.Seq > other.Seq:
		return 1
	}
	return 0
}

// Ordering is the result of comparing two summary vectors.
type Ordering int

// Possible results of Summary.Compare.
const (
	Equal Ordering = iota + 1
	Before
	After
	Concurrent
)

// String returns the name of the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// Summary is a summary vector: for each origin replica, the highest sequence
// number such that all writes from that origin up to and including it have
// been received. The zero value is an empty summary ready to use.
//
// Summary is not safe for concurrent use; callers synchronise.
type Summary struct {
	seq map[NodeID]uint64
}

// NewSummary returns an empty summary vector.
func NewSummary() *Summary { return &Summary{} }

// Get returns the highest contiguous sequence number seen from node, or 0.
func (s *Summary) Get(node NodeID) uint64 {
	if s == nil || s.seq == nil {
		return 0
	}
	return s.seq[node]
}

// Covers reports whether the summary already accounts for ts, i.e. whether a
// replica holding this summary has received the write named by ts.
func (s *Summary) Covers(ts Timestamp) bool {
	if ts.IsZero() {
		return true
	}
	return s.Get(ts.Node) >= ts.Seq
}

// Observe records receipt of the write named by ts. Writes from one origin
// must be observed in sequence order (the write log guarantees this); Observe
// panics on a gap because a gap would silently corrupt the "contiguous
// prefix" invariant every other method relies on.
func (s *Summary) Observe(ts Timestamp) {
	if ts.IsZero() {
		return
	}
	cur := s.Get(ts.Node)
	switch {
	case ts.Seq <= cur:
		return // duplicate delivery; already covered
	case ts.Seq != cur+1:
		panic(fmt.Sprintf("vclock: out-of-order observe %v after seq %d", ts, cur))
	}
	if s.seq == nil {
		s.seq = make(map[NodeID]uint64)
	}
	s.seq[ts.Node] = ts.Seq
}

// Next returns the timestamp the given origin should assign to its next
// local write, based on this summary.
func (s *Summary) Next(node NodeID) Timestamp {
	return Timestamp{Node: node, Seq: s.Get(node) + 1}
}

// Merge folds other into s, taking the element-wise maximum. Merging is the
// commutative, associative, idempotent join of the summary lattice.
func (s *Summary) Merge(other *Summary) {
	if other == nil {
		return
	}
	for node, seq := range other.seq {
		if seq > s.Get(node) {
			if s.seq == nil {
				s.seq = make(map[NodeID]uint64)
			}
			s.seq[node] = seq
		}
	}
}

// Compare returns the lattice order between s and other: Equal, Before
// (s strictly dominated), After (s strictly dominates), or Concurrent.
func (s *Summary) Compare(other *Summary) Ordering {
	sLess, oLess := false, false
	for node, seq := range s.all() {
		switch o := other.Get(node); {
		case seq < o:
			sLess = true
		case seq > o:
			oLess = true
		}
		_ = node
	}
	for node, seq := range other.all() {
		if s.Get(node) < seq {
			sLess = true
		}
	}
	switch {
	case sLess && oLess:
		return Concurrent
	case sLess:
		return Before
	case oLess:
		return After
	}
	return Equal
}

// Dominates reports whether s covers every write that other covers.
func (s *Summary) Dominates(other *Summary) bool {
	ord := s.Compare(other)
	return ord == Equal || ord == After
}

// Clone returns an independent deep copy of s.
func (s *Summary) Clone() *Summary {
	c := NewSummary()
	if len(s.all()) == 0 {
		return c
	}
	c.seq = make(map[NodeID]uint64, len(s.seq))
	for node, seq := range s.seq {
		c.seq[node] = seq
	}
	return c
}

// Len returns the number of origins with at least one observed write.
func (s *Summary) Len() int { return len(s.all()) }

// Origins returns the origins with at least one observed write, ascending.
func (s *Summary) Origins() []NodeID {
	nodes := make([]NodeID, 0, len(s.all()))
	for node := range s.all() {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// Total returns the total number of writes covered across all origins. It is
// the anti-entropy progress metric: Total is monotone non-decreasing and two
// replicas are mutually consistent exactly when their summaries are Equal.
func (s *Summary) Total() uint64 {
	var total uint64
	for _, seq := range s.all() {
		total += seq
	}
	return total
}

// Pairs returns the vector as an (origin, highest-seq) map copy, for
// serialisation.
func (s *Summary) Pairs() map[NodeID]uint64 {
	out := make(map[NodeID]uint64, len(s.all()))
	for node, seq := range s.all() {
		out[node] = seq
	}
	return out
}

// FromPairs reconstructs a summary from serialised (origin, highest-seq)
// pairs. Zero sequences are dropped.
func FromPairs(pairs map[NodeID]uint64) *Summary {
	s := NewSummary()
	for node, seq := range pairs {
		if seq == 0 {
			continue
		}
		if s.seq == nil {
			s.seq = make(map[NodeID]uint64, len(pairs))
		}
		s.seq[node] = seq
	}
	return s
}

// String renders the vector as "{n0:3 n2:1}" with origins in ascending order.
func (s *Summary) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, node := range s.Origins() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v:%d", node, s.seq[node])
	}
	b.WriteByte('}')
	return b.String()
}

func (s *Summary) all() map[NodeID]uint64 {
	if s == nil {
		return nil
	}
	return s.seq
}
