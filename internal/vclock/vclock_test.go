package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimestampIsZero(t *testing.T) {
	if !(Timestamp{}).IsZero() {
		t.Error("zero Timestamp should report IsZero")
	}
	if (Timestamp{Node: 1, Seq: 1}).IsZero() {
		t.Error("non-zero Timestamp should not report IsZero")
	}
}

func TestTimestampCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Timestamp
		want int
	}{
		{"equal", Timestamp{1, 5}, Timestamp{1, 5}, 0},
		{"lower node", Timestamp{1, 9}, Timestamp{2, 1}, -1},
		{"higher node", Timestamp{3, 1}, Timestamp{2, 9}, 1},
		{"same node lower seq", Timestamp{2, 1}, Timestamp{2, 2}, -1},
		{"same node higher seq", Timestamp{2, 3}, Timestamp{2, 2}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Compare(tt.a); got != -tt.want {
				t.Errorf("Compare(%v, %v) = %d, want %d", tt.b, tt.a, got, -tt.want)
			}
		})
	}
}

func TestTimestampString(t *testing.T) {
	ts := Timestamp{Node: 3, Seq: 17}
	if got, want := ts.String(), "n3:17"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSummaryZeroValueUsable(t *testing.T) {
	var s Summary
	if got := s.Get(4); got != 0 {
		t.Errorf("Get on zero Summary = %d, want 0", got)
	}
	if s.Covers(Timestamp{Node: 1, Seq: 1}) {
		t.Error("zero Summary should not cover any write")
	}
	s.Observe(Timestamp{Node: 1, Seq: 1})
	if !s.Covers(Timestamp{Node: 1, Seq: 1}) {
		t.Error("Summary should cover an observed write")
	}
}

func TestSummaryObserveSequence(t *testing.T) {
	s := NewSummary()
	for seq := uint64(1); seq <= 10; seq++ {
		s.Observe(Timestamp{Node: 2, Seq: seq})
	}
	if got := s.Get(2); got != 10 {
		t.Errorf("Get(2) = %d, want 10", got)
	}
	// Duplicates are ignored.
	s.Observe(Timestamp{Node: 2, Seq: 7})
	if got := s.Get(2); got != 10 {
		t.Errorf("after duplicate observe Get(2) = %d, want 10", got)
	}
	// Zero timestamps are ignored.
	s.Observe(Timestamp{})
	if got := s.Len(); got != 1 {
		t.Errorf("Len() = %d, want 1", got)
	}
}

func TestSummaryObserveGapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Observe with a sequence gap should panic")
		}
	}()
	s := NewSummary()
	s.Observe(Timestamp{Node: 1, Seq: 2})
}

func TestSummaryNext(t *testing.T) {
	s := NewSummary()
	if got, want := s.Next(5), (Timestamp{Node: 5, Seq: 1}); got != want {
		t.Errorf("Next(5) = %v, want %v", got, want)
	}
	s.Observe(Timestamp{Node: 5, Seq: 1})
	s.Observe(Timestamp{Node: 5, Seq: 2})
	if got, want := s.Next(5), (Timestamp{Node: 5, Seq: 3}); got != want {
		t.Errorf("Next(5) = %v, want %v", got, want)
	}
}

func TestSummaryCovers(t *testing.T) {
	s := NewSummary()
	s.Observe(Timestamp{Node: 1, Seq: 1})
	s.Observe(Timestamp{Node: 1, Seq: 2})
	tests := []struct {
		ts   Timestamp
		want bool
	}{
		{Timestamp{}, true}, // zero timestamp is vacuously covered
		{Timestamp{Node: 1, Seq: 1}, true},
		{Timestamp{Node: 1, Seq: 2}, true},
		{Timestamp{Node: 1, Seq: 3}, false},
		{Timestamp{Node: 2, Seq: 1}, false},
	}
	for _, tt := range tests {
		if got := s.Covers(tt.ts); got != tt.want {
			t.Errorf("Covers(%v) = %t, want %t", tt.ts, got, tt.want)
		}
	}
}

func TestSummaryMerge(t *testing.T) {
	a := NewSummary()
	a.Observe(Timestamp{Node: 1, Seq: 1})
	a.Observe(Timestamp{Node: 1, Seq: 2})
	b := NewSummary()
	b.Observe(Timestamp{Node: 1, Seq: 1})
	b.Observe(Timestamp{Node: 2, Seq: 1})

	a.Merge(b)
	if got := a.Get(1); got != 2 {
		t.Errorf("after merge Get(1) = %d, want 2", got)
	}
	if got := a.Get(2); got != 1 {
		t.Errorf("after merge Get(2) = %d, want 1", got)
	}
	a.Merge(nil) // merging nil is a no-op
	if got := a.Total(); got != 3 {
		t.Errorf("Total() = %d, want 3", got)
	}
}

func TestSummaryCompare(t *testing.T) {
	mk := func(pairs ...uint64) *Summary {
		s := NewSummary()
		for i := 0; i+1 < len(pairs); i += 2 {
			for seq := uint64(1); seq <= pairs[i+1]; seq++ {
				s.Observe(Timestamp{Node: NodeID(pairs[i]), Seq: seq})
			}
		}
		return s
	}
	tests := []struct {
		name string
		a, b *Summary
		want Ordering
	}{
		{"both empty", mk(), mk(), Equal},
		{"equal", mk(1, 2, 2, 3), mk(1, 2, 2, 3), Equal},
		{"before", mk(1, 1), mk(1, 2), Before},
		{"after", mk(1, 3), mk(1, 2), After},
		{"missing origin before", mk(1, 2), mk(1, 2, 2, 1), Before},
		{"concurrent", mk(1, 2), mk(2, 2), Concurrent},
		{"concurrent mixed", mk(1, 3, 2, 1), mk(1, 1, 2, 3), Concurrent},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("Compare = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSummaryCompareSymmetry(t *testing.T) {
	a := NewSummary()
	a.Observe(Timestamp{Node: 1, Seq: 1})
	b := NewSummary()
	b.Observe(Timestamp{Node: 1, Seq: 1})
	b.Observe(Timestamp{Node: 1, Seq: 2})
	if a.Compare(b) != Before || b.Compare(a) != After {
		t.Errorf("Compare not antisymmetric: %v / %v", a.Compare(b), b.Compare(a))
	}
	if a.Dominates(b) {
		t.Error("a should not dominate b")
	}
	if !b.Dominates(a) {
		t.Error("b should dominate a")
	}
}

func TestSummaryClone(t *testing.T) {
	a := NewSummary()
	a.Observe(Timestamp{Node: 1, Seq: 1})
	c := a.Clone()
	c.Observe(Timestamp{Node: 1, Seq: 2})
	if a.Get(1) != 1 {
		t.Error("mutating clone affected original")
	}
	if c.Get(1) != 2 {
		t.Error("clone did not accept new observation")
	}
	empty := NewSummary().Clone()
	if empty.Len() != 0 {
		t.Error("clone of empty summary should be empty")
	}
}

func TestSummaryOriginsSorted(t *testing.T) {
	s := NewSummary()
	for _, n := range []NodeID{9, 2, 5} {
		s.Observe(Timestamp{Node: n, Seq: 1})
	}
	got := s.Origins()
	want := []NodeID{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Origins() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Origins() = %v, want %v", got, want)
		}
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSummary()
	s.Observe(Timestamp{Node: 2, Seq: 1})
	s.Observe(Timestamp{Node: 0, Seq: 1})
	s.Observe(Timestamp{Node: 0, Seq: 2})
	if got, want := s.String(), "{n0:2 n2:1}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestOrderingString(t *testing.T) {
	names := map[Ordering]string{
		Equal:       "equal",
		Before:      "before",
		After:       "after",
		Concurrent:  "concurrent",
		Ordering(0): "Ordering(0)",
	}
	for o, want := range names {
		if got := o.String(); got != want {
			t.Errorf("Ordering(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

// randomSummary builds a random summary with origins < nodes and per-origin
// sequence counts < maxSeq.
func randomSummary(r *rand.Rand, nodes, maxSeq int) *Summary {
	s := NewSummary()
	for n := 0; n < nodes; n++ {
		count := r.Intn(maxSeq)
		for seq := 1; seq <= count; seq++ {
			s.Observe(Timestamp{Node: NodeID(n), Seq: uint64(seq)})
		}
	}
	return s
}

func TestSummaryMergeProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}

	// Commutativity: a ⊔ b == b ⊔ a.
	commutative := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSummary(r, 6, 8), randomSummary(r, 6, 8)
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		return ab.Compare(ba) == Equal
	}
	if err := quick.Check(commutative, cfg); err != nil {
		t.Errorf("merge not commutative: %v", err)
	}

	// Associativity: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
	associative := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomSummary(r, 5, 6), randomSummary(r, 5, 6), randomSummary(r, 5, 6)
		left := a.Clone()
		left.Merge(b)
		left.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		right := a.Clone()
		right.Merge(bc)
		return left.Compare(right) == Equal
	}
	if err := quick.Check(associative, cfg); err != nil {
		t.Errorf("merge not associative: %v", err)
	}

	// Idempotence: a ⊔ a == a.
	idempotent := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSummary(r, 6, 8)
		aa := a.Clone()
		aa.Merge(a)
		return aa.Compare(a) == Equal
	}
	if err := quick.Check(idempotent, cfg); err != nil {
		t.Errorf("merge not idempotent: %v", err)
	}

	// Merge dominates both inputs (it is an upper bound).
	upperBound := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSummary(r, 6, 8), randomSummary(r, 6, 8)
		m := a.Clone()
		m.Merge(b)
		return m.Dominates(a) && m.Dominates(b)
	}
	if err := quick.Check(upperBound, cfg); err != nil {
		t.Errorf("merge not an upper bound: %v", err)
	}
}

func TestSummaryTotalMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSummary()
		prev := s.Total()
		for i := 0; i < 50; i++ {
			node := NodeID(r.Intn(5))
			s.Observe(s.Next(node))
			if got := s.Total(); got < prev {
				return false
			} else {
				prev = got
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("Total not monotone under Observe: %v", err)
	}
}

func TestSummaryCoversAfterMerge(t *testing.T) {
	// Anything covered by either input is covered by the merge.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSummary(r, 6, 8), randomSummary(r, 6, 8)
		m := a.Clone()
		m.Merge(b)
		for n := NodeID(0); n < 6; n++ {
			for seq := uint64(1); seq <= 8; seq++ {
				ts := Timestamp{Node: n, Seq: seq}
				if (a.Covers(ts) || b.Covers(ts)) && !m.Covers(ts) {
					return false
				}
				if m.Covers(ts) && !a.Covers(ts) && !b.Covers(ts) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("merge coverage property violated: %v", err)
	}
}

func TestSummaryAdvance(t *testing.T) {
	s := NewSummary()
	s.Advance(3, 10) // non-contiguous jump is the point of Advance
	if got := s.Get(3); got != 10 {
		t.Errorf("Get(3) = %d, want 10", got)
	}
	s.Advance(3, 5) // regressions are ignored
	if got := s.Get(3); got != 10 {
		t.Errorf("after lower Advance Get(3) = %d, want 10", got)
	}
	s.Advance(3, 0) // zero is a no-op, not an origin
	s.Advance(5, 0)
	if got := s.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
	// Observe continues from the advanced head.
	s.Observe(Timestamp{Node: 3, Seq: 11})
	if got := s.Get(3); got != 11 {
		t.Errorf("Observe after Advance Get(3) = %d, want 11", got)
	}
}

func TestSummaryDenseOutOfOrderOrigins(t *testing.T) {
	// Observing a high origin first then a lower one must work: the dense
	// vector grows to the highest id and lower slots fill in later.
	s := NewSummary()
	s.Observe(Timestamp{Node: 7, Seq: 1})
	s.Observe(Timestamp{Node: 3, Seq: 1})
	s.Observe(Timestamp{Node: 3, Seq: 2})
	if got := s.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	if s.Get(3) != 2 || s.Get(7) != 1 {
		t.Errorf("Get(3)=%d Get(7)=%d, want 2 and 1", s.Get(3), s.Get(7))
	}
	// Origins between observed ids read as zero and are not origins.
	if s.Get(5) != 0 {
		t.Errorf("Get(5) = %d, want 0", s.Get(5))
	}
	got := s.Origins()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("Origins = %v, want [3 7]", got)
	}
}

func TestSummaryForEachAscending(t *testing.T) {
	s := NewSummary()
	s.Advance(9, 4)
	s.Advance(0, 1)
	s.Advance(4, 2)
	var nodes []NodeID
	var seqs []uint64
	s.ForEach(func(node NodeID, seq uint64) {
		nodes = append(nodes, node)
		seqs = append(seqs, seq)
	})
	wantNodes := []NodeID{0, 4, 9}
	wantSeqs := []uint64{1, 2, 4}
	if len(nodes) != 3 {
		t.Fatalf("ForEach visited %v", nodes)
	}
	for i := range wantNodes {
		if nodes[i] != wantNodes[i] || seqs[i] != wantSeqs[i] {
			t.Fatalf("ForEach visited (%v, %v), want (%v, %v)", nodes, seqs, wantNodes, wantSeqs)
		}
	}
	NewSummary().ForEach(func(NodeID, uint64) { t.Error("empty summary visited a pair") })
}

func TestSummaryNegativeOriginPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Observe with a negative origin should panic (dense contract)")
		}
	}()
	s := NewSummary()
	s.Observe(Timestamp{Node: -1, Seq: 1})
}

func TestSummaryGetNegativeOrigin(t *testing.T) {
	s := NewSummary()
	s.Advance(2, 5)
	if got := s.Get(-3); got != 0 {
		t.Errorf("Get(-3) = %d, want 0", got)
	}
	if s.Covers(Timestamp{Node: -3, Seq: 1}) {
		t.Error("negative origin should not be covered")
	}
}

// TestSummaryHotPathAllocs is the allocation-regression guard for the dense
// representation: the per-message summary operations must not allocate.
func TestSummaryHotPathAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randomSummary(r, 50, 20)
	b := randomSummary(r, 50, 20)
	a.Merge(b) // pre-grow a so the measured Merge needs no growth
	ts := Timestamp{Node: 25, Seq: 1}

	if avg := testing.AllocsPerRun(100, func() { _ = a.Covers(ts) }); avg != 0 {
		t.Errorf("Covers allocates %v per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { _ = a.Get(25) }); avg != 0 {
		t.Errorf("Get allocates %v per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { _ = a.Compare(b) }); avg != 0 {
		t.Errorf("Compare allocates %v per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { _ = a.Total() }); avg != 0 {
		t.Errorf("Total allocates %v per run, want 0", avg)
	}
	// Merge into an equal-length vector needs no growth and no allocation.
	if avg := testing.AllocsPerRun(100, func() { a.Merge(b) }); avg != 0 {
		t.Errorf("Merge allocates %v per run, want 0", avg)
	}
}

func BenchmarkSummaryObserve(b *testing.B) {
	s := NewSummary()
	node := NodeID(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(s.Next(node))
	}
}

func BenchmarkSummaryMerge(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomSummary(r, 100, 50)
	c := randomSummary(r, 100, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.Clone()
		m.Merge(c)
	}
}

func BenchmarkSummaryCompare(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomSummary(r, 100, 50)
	c := randomSummary(r, 100, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Compare(c)
	}
}
