package vclock

import "testing"

func TestLagBehind(t *testing.T) {
	a := NewSummary()
	a.Advance(0, 5)
	a.Advance(1, 3)

	b := NewSummary()
	b.Advance(0, 7) // a lags 2 here
	b.Advance(2, 4) // a lags 4 here (unknown origin)

	if got := a.LagBehind(b); got != 6 {
		t.Errorf("a.LagBehind(b) = %d, want 6", got)
	}
	// b does not lag a on origins 0 and 2; it lags 3 on origin 1.
	if got := b.LagBehind(a); got != 3 {
		t.Errorf("b.LagBehind(a) = %d, want 3", got)
	}
	// Self-lag is always zero, and zero lag coincides with dominance.
	if got := a.LagBehind(a); got != 0 {
		t.Errorf("a.LagBehind(a) = %d, want 0", got)
	}
	m := a.Clone()
	m.Merge(b)
	if got := m.LagBehind(a); got != 0 {
		t.Errorf("merged.LagBehind(a) = %d, want 0", got)
	}
	if got := m.LagBehind(b); got != 0 {
		t.Errorf("merged.LagBehind(b) = %d, want 0", got)
	}
	if !m.Dominates(a) || !m.Dominates(b) {
		t.Error("merged summary should dominate both inputs")
	}
}

func TestLagBehindNilAndEmpty(t *testing.T) {
	a := NewSummary()
	a.Advance(0, 5)

	if got := a.LagBehind(nil); got != 0 {
		t.Errorf("lag behind nil = %d, want 0", got)
	}
	if got := a.LagBehind(NewSummary()); got != 0 {
		t.Errorf("lag behind empty = %d, want 0", got)
	}
	var zero *Summary
	if got := zero.LagBehind(a); got != 5 {
		t.Errorf("nil receiver lag = %d, want 5", got)
	}
	var zv Summary
	if got := zv.LagBehind(a); got != 5 {
		t.Errorf("zero-value receiver lag = %d, want 5", got)
	}
}

// TestLagDelta pins the fused covered-read probe: the lag half must agree
// with LagBehind on every vector pair, and the gains half must be true
// exactly when merging the receiver into the argument would advance it.
func TestLagDelta(t *testing.T) {
	a := NewSummary()
	a.Advance(0, 5)
	a.Advance(1, 3)

	b := NewSummary()
	b.Advance(0, 7)
	b.Advance(2, 4)

	cases := []struct {
		name     string
		s, other *Summary
		lag      uint64
		gains    bool
	}{
		{"concurrent", a, b, 6, true},
		{"concurrent-flipped", b, a, 3, true},
		{"self", a, a, 0, false},
		{"vs-nil", a, nil, 0, true},
		{"nil-receiver", nil, a, 8, false},
		{"vs-empty", a, NewSummary(), 0, true},
	}
	m := a.Clone()
	m.Merge(b)
	cases = append(cases,
		struct {
			name     string
			s, other *Summary
			lag      uint64
			gains    bool
		}{"dominating", m, a, 0, true},
		struct {
			name     string
			s, other *Summary
			lag      uint64
			gains    bool
		}{"dominated", a, m, 6, false},
	)
	for _, tc := range cases {
		lag, gains := tc.s.LagDelta(tc.other)
		if lag != tc.lag || gains != tc.gains {
			t.Errorf("%s: LagDelta = (%d, %v), want (%d, %v)", tc.name, lag, gains, tc.lag, tc.gains)
		}
		if want := tc.s.LagBehind(tc.other); lag != want {
			t.Errorf("%s: LagDelta lag %d disagrees with LagBehind %d", tc.name, lag, want)
		}
	}
	// Steady-state contract: once the token dominates the watermark, gains
	// is false and the covered probe skips the merge entirely.
	tok := m.Clone()
	if _, gains := a.LagDelta(tok); gains {
		t.Error("dominating token reported merge gains")
	}
}

func TestLagBehindNoAlloc(t *testing.T) {
	a := NewSummary()
	b := NewSummary()
	for i := 0; i < 32; i++ {
		a.Advance(NodeID(i), uint64(i+1))
		b.Advance(NodeID(i), uint64(2*i+1))
	}
	if avg := testing.AllocsPerRun(100, func() { _ = a.LagBehind(b) }); avg != 0 {
		t.Errorf("LagBehind allocates %v per run, want 0", avg)
	}
}
