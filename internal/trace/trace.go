// Package trace provides lightweight structured event tracing for protocol
// debugging: a bounded in-memory ring of events with levels and per-node
// attribution, cheap enough to leave compiled into the runtime.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/vclock"
)

// Level classifies events.
type Level int

// Levels in increasing severity.
const (
	LevelDebug Level = iota + 1
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Event is one trace record.
type Event struct {
	At    time.Time
	Level Level
	Node  vclock.NodeID
	Msg   string
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("%s %-5s %v %s", e.At.Format("15:04:05.000"), e.Level, e.Node, e.Msg)
}

// Ring is a bounded trace buffer. Oldest events are overwritten when full.
// Ring is safe for concurrent use. A nil *Ring discards all events, so
// components can hold an optional tracer without nil checks.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	full   bool
	min    Level
	count  uint64
	// overwrites counts events silently dropped by ring wraparound: once
	// the ring is full, every Emit evicts the oldest retained event.
	overwrites uint64
}

// NewRing creates a ring holding up to capacity events at or above min.
func NewRing(capacity int, min Level) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: non-positive capacity %d", capacity))
	}
	return &Ring{events: make([]Event, capacity), min: min}
}

// Emit records an event if its level passes the filter.
func (r *Ring) Emit(level Level, node vclock.NodeID, format string, args ...any) {
	if r == nil || level < r.min {
		return
	}
	ev := Event{At: time.Now(), Level: level, Node: node, Msg: fmt.Sprintf(format, args...)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		r.overwrites++
	}
	r.events[r.next] = ev
	r.next++
	r.count++
	if r.next == len(r.events) {
		r.next = 0
		r.full = true
	}
}

// Debugf emits at LevelDebug.
func (r *Ring) Debugf(node vclock.NodeID, format string, args ...any) {
	r.Emit(LevelDebug, node, format, args...)
}

// Infof emits at LevelInfo.
func (r *Ring) Infof(node vclock.NodeID, format string, args ...any) {
	r.Emit(LevelInfo, node, format, args...)
}

// Warnf emits at LevelWarn.
func (r *Ring) Warnf(node vclock.NodeID, format string, args ...any) {
	r.Emit(LevelWarn, node, format, args...)
}

// Errorf emits at LevelError.
func (r *Ring) Errorf(node vclock.NodeID, format string, args ...any) {
	r.Emit(LevelError, node, format, args...)
}

// Count returns the total number of events recorded (including overwritten).
func (r *Ring) Count() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Overwrites returns how many events were silently dropped to ring
// wraparound — a nonzero value means Snapshot/Dump show a truncated
// history and the ring should be sized up (or the level filter raised).
func (r *Ring) Overwrites() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.overwrites
}

// Snapshot returns retained events oldest-first.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump writes retained events to w, oldest first.
func (r *Ring) Dump(w io.Writer) error {
	for _, ev := range r.Snapshot() {
		if _, err := fmt.Fprintln(w, ev); err != nil {
			return err
		}
	}
	return nil
}
