package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestEmitAndSnapshot(t *testing.T) {
	r := NewRing(10, LevelDebug)
	r.Infof(1, "hello %d", 42)
	r.Debugf(2, "debug")
	events := r.Snapshot()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Msg != "hello 42" || events[0].Node != 1 || events[0].Level != LevelInfo {
		t.Errorf("event = %+v", events[0])
	}
	if r.Count() != 2 {
		t.Errorf("Count = %d, want 2", r.Count())
	}
}

func TestLevelFilter(t *testing.T) {
	r := NewRing(10, LevelWarn)
	r.Debugf(1, "dropped")
	r.Infof(1, "dropped")
	r.Warnf(1, "kept")
	r.Errorf(1, "kept")
	if got := len(r.Snapshot()); got != 2 {
		t.Errorf("retained %d events, want 2", got)
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	r := NewRing(3, LevelDebug)
	for i := 0; i < 5; i++ {
		r.Infof(0, "event-%d", i)
	}
	events := r.Snapshot()
	if len(events) != 3 {
		t.Fatalf("retained %d, want 3", len(events))
	}
	want := []string{"event-2", "event-3", "event-4"}
	for i, w := range want {
		if events[i].Msg != w {
			t.Errorf("events[%d] = %q, want %q", i, events[i].Msg, w)
		}
	}
	if r.Count() != 5 {
		t.Errorf("Count = %d, want 5", r.Count())
	}
}

func TestOverwritesCountsEvictions(t *testing.T) {
	r := NewRing(3, LevelDebug)
	for i := 0; i < 2; i++ {
		r.Infof(0, "fits-%d", i)
	}
	if r.Overwrites() != 0 {
		t.Errorf("Overwrites before wrap = %d, want 0", r.Overwrites())
	}
	for i := 0; i < 5; i++ {
		r.Infof(0, "wraps-%d", i)
	}
	// 7 emitted into 3 slots: 4 evicted.
	if r.Overwrites() != 4 {
		t.Errorf("Overwrites = %d, want 4", r.Overwrites())
	}
	// Filtered events never enter the ring, so they cannot overwrite.
	f := NewRing(1, LevelWarn)
	f.Infof(0, "filtered")
	f.Infof(0, "filtered")
	if f.Overwrites() != 0 {
		t.Errorf("filtered events counted as overwrites: %d", f.Overwrites())
	}
}

func TestNilRingDiscards(t *testing.T) {
	var r *Ring
	r.Infof(1, "into the void") // must not panic
	if r.Count() != 0 {
		t.Error("nil ring should count 0")
	}
	if r.Overwrites() != 0 {
		t.Error("nil ring should report 0 overwrites")
	}
	if r.Snapshot() != nil {
		t.Error("nil ring snapshot should be nil")
	}
}

func TestDump(t *testing.T) {
	r := NewRing(4, LevelDebug)
	r.Warnf(3, "watch out")
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "WARN") || !strings.Contains(out, "n3") || !strings.Contains(out, "watch out") {
		t.Errorf("dump = %q", out)
	}
}

func TestLevelString(t *testing.T) {
	want := map[Level]string{
		LevelDebug: "DEBUG", LevelInfo: "INFO", LevelWarn: "WARN",
		LevelError: "ERROR", Level(9): "Level(9)",
	}
	for l, name := range want {
		if got := l.String(); got != name {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, name)
		}
	}
}

func TestNewRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) should panic")
		}
	}()
	NewRing(0, LevelDebug)
}

func TestConcurrentEmit(t *testing.T) {
	r := NewRing(64, LevelDebug)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Infof(1, "msg %d-%d", i, j)
				r.Snapshot()
			}
		}(i)
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Errorf("Count = %d, want 800", r.Count())
	}
}
