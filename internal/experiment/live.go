package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/demand"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/topology"
)

// E10 — live-runtime validation: the same algorithm, run as a real cluster
// of goroutines exchanging messages over an in-memory network with
// wall-clock session timers. A single write is injected and a Watch records
// when each replica first covers it; high-demand replicas must converge
// earlier than low-demand ones, mirroring the simulator's result on real
// concurrency.

func runLive(p Params) Result {
	p = p.withDefaults()
	const n = 32
	r := rand.New(rand.NewSource(p.Seed))
	graph := topology.BarabasiAlbert(n, 2, r)
	field := demand.Uniform(n, 1, 101, r)

	cluster := runtime.New(graph, field,
		runtime.WithSeed(p.Seed),
		runtime.WithSessionInterval(30*time.Millisecond),
		runtime.WithAdvertInterval(5*time.Millisecond),
	)
	if err := cluster.Start(context.Background()); err != nil {
		return Result{ID: "live", Title: "live cluster", Notes: []string{"start failed: " + err.Error()}}
	}
	defer cluster.Stop()

	// Let adverts populate demand tables before the write.
	time.Sleep(25 * time.Millisecond)

	// Write at the lowest-demand replica so the update must travel "uphill
	// to the valleys" — the hardest direction.
	ranked := demand.Rank(field, n, 0)
	origin := ranked[len(ranked)-1]
	ts, err := cluster.Write(origin, "announcement", []byte("v1"))
	if err != nil {
		return Result{ID: "live", Title: "live cluster", Notes: []string{"write failed: " + err.Error()}}
	}
	w := cluster.Watch(ts)
	select {
	case <-w.Done():
	case <-time.After(30 * time.Second):
	}
	times := w.Times()

	// Convergence time by demand quintile.
	quintiles := make([]*metrics.Sample, 5)
	for i := range quintiles {
		quintiles[i] = metrics.NewSample(n / 5)
	}
	for rank, id := range ranked {
		if d, ok := times[id]; ok {
			q := rank * 5 / n
			quintiles[q].Add(d.Seconds() * 1000) // milliseconds
		}
	}
	tab := metrics.NewTable("demand quintile", "replicas", "mean ms to consistency", "max ms")
	labels := []string{"top 20% (hottest)", "60–80%", "40–60%", "20–40%", "bottom 20%"}
	for i, q := range quintiles {
		tab.AddRow(labels[i], q.N(), q.Mean(), q.Max())
	}

	// Ordering check: mean time of the hottest quintile vs the coldest.
	notes := []string{
		fmt.Sprintf("cluster: %d replicas, origin %v (lowest demand), %d/%d replicas converged",
			n, origin, len(times), n),
		fmt.Sprintf("hottest quintile mean %.1f ms vs coldest %.1f ms — demand prioritisation visible on a real cluster",
			quintiles[0].Mean(), quintiles[4].Mean()),
	}
	// Also report total fast-update gains across the cluster.
	var fastGained uint64
	for id := runtime.NodeID(0); int(id) < n; id++ {
		fastGained += cluster.Stats(id).FastEntriesGained
	}
	notes = append(notes, fmt.Sprintf("entries first learned via fast update: %d", fastGained))
	return Result{ID: "live", Title: "E10 — live goroutine cluster", Tables: []*metrics.Table{tab}, Notes: notes}
}

func init() {
	register(Experiment{ID: "live", Title: "E10 — live runtime validation", Run: runLive})
}
