package experiment

import (
	"math/rand"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

// E8 — ablation of the two optimisations §2 names explicitly: "(1)
// neighbours are elected orderly by demand instead of random order, and (2)
// messages are immediately propagated to the neighbour with highest demand".
// Each arm toggles one mechanism so their individual contributions are
// visible, plus two extension arms (gradient-only push, fan-out 2).

type ablationArm struct {
	name         string
	policy       policy.Factory
	fastPush     bool
	fanOut       int
	gradientOnly bool
}

func ablationArms() []ablationArm {
	return []ablationArm{
		{name: "weak (random, no push)", policy: policy.NewRandom},
		{name: "ordered only (opt 1)", policy: policy.NewDynamicOrdered},
		{name: "push only (opt 2)", policy: policy.NewRandom, fastPush: true},
		{name: "fast consistency (1+2)", policy: policy.NewDynamicOrdered, fastPush: true},
		{name: "static ordered + push", policy: policy.NewStaticOrdered, fastPush: true},
		{name: "fast, gradient-only push", policy: policy.NewDynamicOrdered, fastPush: true, gradientOnly: true},
		{name: "fast, fan-out 2", policy: policy.NewDynamicOrdered, fastPush: true, fanOut: 2},
		{name: "round-robin, no push", policy: policy.NewRoundRobin},
	}
}

func runAblation(p Params) Result {
	p = p.withDefaults()
	trials := p.Trials
	if trials > 3000 {
		trials = 3000
	}
	r := rand.New(rand.NewSource(p.Seed))
	graph := topology.BarabasiAlbert(50, 2, r)
	field := demand.Uniform(50, 1, 101, r)

	tab := metrics.NewTable("arm", "mean all", "mean high-demand", "p95 all", "mean sessions used")
	for _, arm := range ablationArms() {
		cfg := mc.NewConfig(graph, field, arm.policy)
		cfg.FastPush = arm.fastPush
		cfg.FanOut = arm.fanOut
		cfg.GradientOnly = arm.gradientOnly
		agg := mc.RunMany(cfg, trials, p.Seed+42, p.HighFrac)
		tab.AddRow(arm.name, agg.TimeAll.Mean(), agg.TimeHigh.Mean(),
			agg.TimeAll.Percentile(95), agg.Sessions.Mean())
	}
	notes := []string{
		"opt 1 (demand ordering) mostly helps the high-demand column; opt 2 (fast push) dominates the all-replica column",
		"the combination reproduces the paper's fast consistency line; each alone is strictly weaker",
		"fan-out 2 trades extra messages for little latency once chains already flood the valleys",
	}
	return Result{ID: "ablation", Title: "Ablation of the two §2 optimisations", Tables: []*metrics.Table{tab}, Notes: notes}
}

// AblationMeans runs a reduced ablation for tests: mean TimeAll for weak,
// ordered-only, push-only, and full fast.
func AblationMeans(p Params) (weak, ordered, push, fast float64) {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed))
	graph := topology.BarabasiAlbert(40, 2, r)
	field := demand.Uniform(40, 1, 101, r)
	run := func(f policy.Factory, pushOn bool) float64 {
		cfg := mc.NewConfig(graph, field, f)
		cfg.FastPush = pushOn
		return mc.RunMany(cfg, p.Trials, p.Seed+7, p.HighFrac).TimeAll.Mean()
	}
	return run(policy.NewRandom, false),
		run(policy.NewDynamicOrdered, false),
		run(policy.NewRandom, true),
		run(policy.NewDynamicOrdered, true)
}

func init() {
	register(Experiment{ID: "ablation", Title: "E8 — optimisation ablation", Run: runAblation})
}
