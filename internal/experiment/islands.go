package experiment

import (
	"fmt"

	"repro/internal/island"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

// §6 — complex demand distributions. Two high-demand valleys at opposite
// corners of a grid, separated by a low-demand interior. Under plain fast
// consistency, a write in one valley floods it quickly but crosses the
// interior slowly, leaving the far valley stale — the "islands" effect.
// Interconnecting island leaders (the §6 proposal) collapses the gap.

func runIslands(p Params) Result {
	p = p.withDefaults()
	trials := p.Trials
	if trials > 2000 {
		trials = 2000
	}
	graph := topology.Grid(10, 10)
	field := island.TwoValleyField(graph, 1, 100, 0.12)

	islands := island.Detect(graph, field, 0, island.Threshold{Percentile: 85})
	overlay := island.Overlay(graph, islands)

	islTab := metrics.NewTable("island", "members", "leader", "leader demand")
	for i, isl := range islands {
		islTab.AddRow(i, len(isl.Members), isl.Leader.String(), field.At(isl.Leader, 0))
	}

	// Write origin fixed inside the first valley (node 0 sits at the hot
	// corner); measure convergence of the far valley's members.
	farSubset := func(isls []island.Island) []mc.NodeID {
		if len(isls) < 2 {
			return nil
		}
		// The far valley is the island whose leader is farthest (in hops)
		// from node 0.
		dist := graph.BFS(0)
		best, bestD := 0, -1
		for i, isl := range isls {
			if d := dist[isl.Leader]; d > bestD {
				best, bestD = i, d
			}
		}
		return isls[best].Members
	}
	far := farSubset(islands)

	run := func(g *topology.Graph) (all, farTimes *metrics.Sample) {
		cfg := mc.NewConfig(g, field, policy.NewDynamicOrdered)
		cfg.FastPush = true
		cfg.Origin = 0
		all = metrics.NewSample(trials)
		farTimes = metrics.NewSample(trials)
		for trial := 0; trial < trials; trial++ {
			res := mc.RunTrial(cfg, p.Seed+int64(trial))
			if res.Completed {
				all.Add(res.TimeAll())
				farTimes.Add(res.TimeOver(far))
			}
		}
		return all, farTimes
	}
	basePlain, farPlain := run(graph)
	baseOver, farOver := run(overlay)

	cmpTab := metrics.NewTable("metric", "plain fast consistency", "with island overlay")
	cmpTab.AddRow("mean sessions, all replicas", basePlain.Mean(), baseOver.Mean())
	cmpTab.AddRow("mean sessions, far valley", farPlain.Mean(), farOver.Mean())
	cmpTab.AddRow("p95 sessions, far valley", farPlain.Percentile(95), farOver.Percentile(95))

	// Characterise the islands empirically: staleness clusters at a 1.5
	// session cutoff for one representative trial.
	cfg := mc.NewConfig(graph, field, policy.NewDynamicOrdered)
	cfg.FastPush = true
	cfg.Origin = 0
	res := mc.RunTrial(cfg, p.Seed)
	clusters := island.StalenessClusters(graph, res.Times, 1.5)
	clTab := metrics.NewTable("fresh cluster (t <= 1.5 sessions)", "size")
	for i, cl := range clusters {
		clTab.AddRow(i, len(cl))
	}

	notes := []string{
		fmt.Sprintf("detected %d demand islands on the two-valley grid", len(islands)),
		fmt.Sprintf("far-valley mean improves %.2f -> %.2f sessions with the leader overlay (%.1f%% faster)",
			farPlain.Mean(), farOver.Mean(), 100*(1-farOver.Mean()/farPlain.Mean())),
		"paper §6: interconnected island leaders 'help to ensure that all updates will reach very fast to any region with high demand'",
	}
	return Result{ID: "islands", Title: "§6 — islands of consistency and leader overlay", Tables: []*metrics.Table{islTab, cmpTab, clTab}, Notes: notes}
}

// IslandGap runs a reduced islands comparison for tests: it returns the far
// valley's mean convergence time without and with the overlay.
func IslandGap(p Params) (plain, withOverlay float64) {
	p = p.withDefaults()
	graph := topology.Grid(8, 8)
	field := island.TwoValleyField(graph, 1, 100, 0.12)
	islands := island.Detect(graph, field, 0, island.Threshold{Percentile: 85})
	overlay := island.Overlay(graph, islands)
	dist := graph.BFS(0)
	var far []mc.NodeID
	bestD := -1
	for _, isl := range islands {
		if d := dist[isl.Leader]; d > bestD {
			bestD = d
			far = isl.Members
		}
	}
	measure := func(g *topology.Graph) float64 {
		cfg := mc.NewConfig(g, field, policy.NewDynamicOrdered)
		cfg.FastPush = true
		cfg.Origin = 0
		s := metrics.NewSample(p.Trials)
		for trial := 0; trial < p.Trials; trial++ {
			res := mc.RunTrial(cfg, p.Seed+int64(trial))
			if res.Completed {
				s.Add(res.TimeOver(far))
			}
		}
		return s.Mean()
	}
	return measure(graph), measure(overlay)
}

func init() {
	register(Experiment{ID: "islands", Title: "§6 — islands and leader interconnection", Run: runIslands})
}
