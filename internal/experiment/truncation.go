package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

// E12 (extension) — write-log truncation policies. The paper's related-work
// section walks through Bayou's truncation trade-off: "Truncating the
// write-log very aggressively can give rise to very long anti-entropy
// sessions among some servers due to the need to transfer complete
// databases." This experiment sweeps how many entries per origin each
// replica retains and measures the consequences under a continuous
// workload: storage saved, snapshot (full-state) transfers forced, and the
// staleness clients see.

func runTruncation(p Params) Result {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed))
	graph := topology.BarabasiAlbert(40, 2, r)
	field := demand.Uniform(40, 1, 101, r)

	duration := 150.0
	if p.Trials < 1000 {
		duration = 50
	}

	keeps := []int{0, 64, 8, 2, 1} // 0 = never truncate
	tab := metrics.NewTable("retained entries/origin", "snapshots sent",
		"entries truncated", "mean lag (writes)", "fresh-read fraction")
	var baseline, aggressive mc.SteadyResult
	for i, keep := range keeps {
		cfg := mc.SteadyConfig{
			Config:           mc.NewConfig(graph, field, policy.NewDynamicOrdered),
			WriteRate:        2,
			ReadScale:        0.02,
			Duration:         duration,
			Warmup:           5,
			TruncateKeep:     keep,
			TruncateInterval: 1,
		}
		cfg.FastPush = true
		res := mc.RunSteady(cfg, p.Seed+11)
		label := fmt.Sprintf("%d", keep)
		if keep == 0 {
			label = "unbounded"
		}
		tab.AddRow(label, int(res.Snapshots), int(res.Truncated), res.MeanLag, res.FreshFrac)
		if i == 0 {
			baseline = res
		}
		if keep == 1 {
			aggressive = res
		}
	}

	notes := []string{
		fmt.Sprintf("keeping only 1 entry/origin forces %d full-state snapshot transfers where the unbounded log needs %d",
			aggressive.Snapshots, baseline.Snapshots),
		fmt.Sprintf("client-visible staleness stays close (lag %.2f vs %.2f): snapshots recover correctness, at session-size cost",
			aggressive.MeanLag, baseline.MeanLag),
		"paper §7 (Bayou discussion): aggressive truncation trades storage for 'very long anti-entropy sessions ... complete databases' — measured here as snapshot counts",
	}
	return Result{ID: "truncation", Title: "E12 — write-log truncation policies", Tables: []*metrics.Table{tab}, Notes: notes}
}

func init() {
	register(Experiment{ID: "truncation", Title: "E12 — log truncation trade-off", Run: runTruncation})
}
