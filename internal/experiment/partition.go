package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

// E13 (extension) — segmentation tolerance. The paper's introduction lists,
// among the reasons for replication, the need "to tolerate failure in the
// links, and also to withstand segmentation". This experiment cuts the
// network in half for the first HealTime sessions after a write, then heals
// it, and measures how quickly each algorithm delivers the write to the far
// side once connectivity returns. Weak consistency's guarantee survives
// partitions by construction; the question is whether demand prioritisation
// keeps its edge through one.

// bisect splits the graph into two halves by BFS layer parity around node
// 0, returning each node's side. Cross-side messages are dropped during the
// partition window.
func bisect(g *topology.Graph) []int {
	dist := g.BFS(0)
	// Side 0: the BFS-nearest half of nodes; side 1: the rest.
	type nd struct {
		id topology.NodeID
		d  int
	}
	nodes := make([]nd, g.N())
	for i := range nodes {
		nodes[i] = nd{topology.NodeID(i), dist[i]}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].d != nodes[j].d {
			return nodes[i].d < nodes[j].d
		}
		return nodes[i].id < nodes[j].id
	})
	side := make([]int, g.N())
	for rank, n := range nodes {
		if rank >= g.N()/2 {
			side[n.id] = 1
		}
	}
	return side
}

func runPartition(p Params) Result {
	p = p.withDefaults()
	trials := p.Trials
	if trials > 3000 {
		trials = 3000
	}
	const healTime = 5.0
	r := rand.New(rand.NewSource(p.Seed))
	graph := topology.BarabasiAlbert(50, 2, r)
	field := demand.Uniform(50, 1, 101, r)
	side := bisect(graph)
	var farSide []mc.NodeID
	for i, s := range side {
		if s == 1 {
			farSide = append(farSide, mc.NodeID(i))
		}
	}

	arms := []struct {
		name    string
		factory policy.Factory
		push    bool
	}{
		{"weak (random)", policy.NewRandom, false},
		{"fast consistency", policy.NewDynamicOrdered, true},
	}
	tab := metrics.NewTable("arm", "partitioned: mean all", "partitioned: mean far side",
		"healed baseline: mean all")
	var notes []string
	for _, arm := range arms {
		healthy := mc.NewConfig(graph, field, arm.factory)
		healthy.FastPush = arm.push
		healthy.Origin = 0

		cut := mc.NewConfig(graph, field, arm.factory)
		cut.FastPush = arm.push
		cut.Origin = 0
		cut.LinkFilter = func(from, to mc.NodeID, t float64) bool {
			return t >= healTime || side[from] == side[to]
		}

		all := metrics.NewSample(trials)
		far := metrics.NewSample(trials)
		base := metrics.NewSample(trials)
		for trial := 0; trial < trials; trial++ {
			res := mc.RunTrial(cut, p.Seed+int64(trial))
			if res.Completed {
				all.Add(res.TimeAll())
				far.Add(res.TimeOver(farSide))
			}
			if hres := mc.RunTrial(healthy, p.Seed+int64(trial)); hres.Completed {
				base.Add(hres.TimeAll())
			}
		}
		tab.AddRow(arm.name, all.Mean(), far.Mean(), base.Mean())
		notes = append(notes, fmt.Sprintf(
			"%s: far side converges %.2f sessions after healing at t=%.0f (%.2f absolute)",
			arm.name, far.Mean()-healTime, healTime, far.Mean()))
	}
	notes = append(notes,
		"anti-entropy makes both algorithms partition-tolerant: convergence resumes immediately on heal",
		"fast consistency retains its advantage through the partition — the chains re-fire from the first post-heal exchange")
	return Result{ID: "partition", Title: "E13 — segmentation tolerance", Tables: []*metrics.Table{tab}, Notes: notes}
}

func init() {
	register(Experiment{ID: "partition", Title: "E13 — partition and heal", Run: runPartition})
}
