package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/demand"
	"repro/internal/metrics"
)

// Figure 3 — "Number of requests satisfied with consistent content as time
// goes on", for the §2 example: replicas A..E with demands 4, 6, 3, 8, 7;
// replica B holds the update and runs one session per time unit with a
// neighbour order that is either the paper's worst case (B-C, B-A, B-E,
// B-D), its optimal case (B-D, B-E, B-A, B-C), a random order (the weak
// consistency baseline averaged over permutations), or fast consistency
// (demand order plus the immediate fast push, which makes D consistent at
// time ~0, before any session).

// Replica indices follow the paper's table: A=0 (demand 4), B=1 (6),
// C=2 (3), D=3 (8), E=4 (7).
const fig3B = 1 // index of replica B

// fig3Curve returns the cumulative consistent demand served at the end of
// each period 0..4, given B's session order (indices into the demand table)
// and the set of replicas consistent before any session runs.
func fig3Curve(field demand.Static, order []int, preConsistent []int) []float64 {
	consistent := make([]bool, len(field))
	for _, i := range preConsistent {
		consistent[i] = true
	}
	served := func() float64 {
		var s float64
		for i, ok := range consistent {
			if ok {
				s += field[i]
			}
		}
		return s
	}
	curve := []float64{served()} // time 0: before any session
	for _, partner := range order {
		consistent[partner] = true
		curve = append(curve, served())
	}
	return curve
}

func runFig3(p Params) Result {
	p = p.withDefaults()
	field := demand.Fig2Demands()

	worst := fig3Curve(field, []int{2, 0, 4, 3}, []int{fig3B})   // B-C, B-A, B-E, B-D
	optimal := fig3Curve(field, []int{3, 4, 0, 2}, []int{fig3B}) // B-D, B-E, B-A, B-C
	// Fast consistency: the fast-update chain makes D consistent at t≈0
	// (link delay), then sessions proceed in demand order D, E, A, C; the
	// session with D moves nothing.
	fast := fig3Curve(field, []int{3, 4, 0, 2}, []int{fig3B, 3})

	// Random (weak baseline): average the curve over permutations.
	trials := p.Trials
	if trials > 2000 {
		trials = 2000 // 24 permutations; 2000 draws is plenty
	}
	r := rand.New(rand.NewSource(p.Seed))
	randomAvg := make([]float64, 5)
	for trial := 0; trial < trials; trial++ {
		perm := r.Perm(4)
		order := make([]int, 4)
		for i, pi := range perm {
			order[i] = []int{0, 2, 3, 4}[pi] // neighbours A, C, D, E
		}
		for i, v := range fig3Curve(field, order, []int{fig3B}) {
			randomAvg[i] += v
		}
	}
	for i := range randomAvg {
		randomAvg[i] /= float64(trials)
	}

	tab := metrics.NewTable("sessions", "worst case", "optimal case", "random (weak)", "fast consistency")
	for t := 0; t <= 4; t++ {
		tab.AddRow(t, worst[t], optimal[t], randomAvg[t], fast[t])
	}

	notes := []string{
		fmt.Sprintf("paper: worst case serves 9 after session 1 (B:6+C:3); measured %.0f", worst[1]),
		fmt.Sprintf("paper: best case serves 14 after session 1 (B:6+D:8); measured %.0f", optimal[1]),
		fmt.Sprintf("paper: fast consistency 'works even better than the optimal case'; measured %.0f consistent demand at time 0 vs optimal %.0f", fast[0], optimal[0]),
		"all curves converge to 28 (total demand) after session 4, as in Fig. 3",
	}
	return Result{ID: "fig3", Title: "Requests satisfied with consistent content (worst/optimal/random/fast)", Tables: []*metrics.Table{tab}, Notes: notes}
}

// Fig3Curves exposes the deterministic curves for tests and benches.
func Fig3Curves() (worst, optimal, fast []float64) {
	field := demand.Fig2Demands()
	return fig3Curve(field, []int{2, 0, 4, 3}, []int{fig3B}),
		fig3Curve(field, []int{3, 4, 0, 2}, []int{fig3B}),
		fig3Curve(field, []int{3, 4, 0, 2}, []int{fig3B, 3})
}

func init() {
	register(Experiment{ID: "fig3", Title: "Fig. 3 — consistent-content requests vs sessions", Run: runFig3})
}
