package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

// §5's uniform-topology claim: "Similar results ... have been obtained with
// simpler uniform topologies (linear, ring, grid), with different number of
// nodes", and the diameter observation that follows from it. This
// experiment sweeps line, ring and grid topologies at several sizes and
// reports mean sessions-to-consistency for weak and fast consistency next
// to each topology's diameter.

type uniformCase struct {
	name  string
	graph *topology.Graph
}

func uniformCases() []uniformCase {
	return []uniformCase{
		{"line-25", topology.Line(25)},
		{"line-50", topology.Line(50)},
		{"ring-25", topology.Ring(25)},
		{"ring-50", topology.Ring(50)},
		{"grid-5x5", topology.Grid(5, 5)},
		{"grid-7x7", topology.Grid(7, 7)},
		{"grid-10x10", topology.Grid(10, 10)},
	}
}

func runUniform(p Params) Result {
	p = p.withDefaults()
	trials := p.Trials
	if trials > 2000 {
		trials = 2000 // uniform topologies have long diameters; cap runtime
	}
	tab := metrics.NewTable("topology", "nodes", "diameter",
		"weak mean sessions", "fast mean sessions", "fast high-demand mean")
	var notes []string
	for i, uc := range uniformCases() {
		r := rand.New(rand.NewSource(p.Seed + int64(i)))
		field := demand.Uniform(uc.graph.N(), 1, 101, r)

		weakCfg := mc.NewConfig(uc.graph, field, policy.NewRandom)
		weakCfg.Horizon = 2000
		fastCfg := mc.NewConfig(uc.graph, field, policy.NewDynamicOrdered)
		fastCfg.FastPush = true
		fastCfg.Horizon = 2000

		weak := mc.RunMany(weakCfg, trials, p.Seed+int64(100+i), p.HighFrac)
		fast := mc.RunMany(fastCfg, trials, p.Seed+int64(100+i), p.HighFrac)
		tab.AddRow(uc.name, uc.graph.N(), uc.graph.Diameter(),
			weak.TimeAll.Mean(), fast.TimeAll.Mean(), fast.TimeHigh.Mean())
		if weak.Incomplete+fast.Incomplete > 0 {
			notes = append(notes, fmt.Sprintf("%s: %d/%d incomplete trials",
				uc.name, weak.Incomplete+fast.Incomplete, 2*trials))
		}
	}
	notes = append(notes,
		"paper §5: 'Similar results ... obtained with simpler uniform topologies (linear, ring, grid)'",
		"fast consistency improves on weak on every uniform topology; gains grow with diameter")
	return Result{ID: "uniform", Title: "Uniform topologies (line, ring, grid)", Tables: []*metrics.Table{tab}, Notes: notes}
}

func init() {
	register(Experiment{ID: "uniform", Title: "§5 — uniform topologies", Run: runUniform})
}
