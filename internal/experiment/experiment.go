// Package experiment maps every table and figure in the paper's evaluation
// (and the extension experiments DESIGN.md commits to) onto runnable,
// seeded, deterministic code. Each experiment produces rendered tables plus
// notes comparing measured values against the numbers the paper reports.
//
// The cmd/experiments binary runs them from the command line; bench_test.go
// at the repository root runs reduced-scale versions under `go test -bench`.
package experiment

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/metrics"
)

// Params tunes experiment scale. Zero values select paper-scale defaults.
type Params struct {
	// Trials is the Monte-Carlo repetition count (paper: 10,000).
	Trials int
	// Seed bases all randomness; a given (Seed, Trials) is bit-reproducible.
	Seed int64
	// HighFrac defines the "replicas with most demand" subset (default 0.2).
	HighFrac float64
}

func (p Params) withDefaults() Params {
	if p.Trials <= 0 {
		p.Trials = 10000
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.HighFrac <= 0 || p.HighFrac > 1 {
		p.HighFrac = 0.2
	}
	return p
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	// Blocks carries preformatted output (ASCII plots) rendered verbatim
	// between the tables and the notes.
	Blocks []string
	// Notes carries paper-vs-measured commentary, one line each.
	Notes []string
}

// Render writes the result in the format EXPERIMENTS.md embeds.
func (r Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, tab := range r.Tables {
		if err := tab.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, block := range r.Blocks {
		if _, err := fmt.Fprintln(w, block); err != nil {
			return err
		}
	}
	for _, note := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Experiment is one registered paper artefact.
type Experiment struct {
	// ID is the short name used by -run (e.g. "fig5").
	ID string
	// Title describes the paper artefact.
	Title string
	// Run executes the experiment.
	Run func(Params) Result
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Names returns the registered ids, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for _, e := range registry {
		names = append(names, e.ID)
	}
	sort.Strings(names)
	return names
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
