package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

// E9 — the paper's §8 worst case: "when all the replicas possess the same
// demand; in such a situation the algorithm behaves like a normal weak
// consistency algorithm." With a flat demand field, demand ordering
// degenerates to a deterministic cycle and fast-push chains die after one
// hop, so fast consistency must not be *worse* than weak — and, as measured
// here, the residual mechanisms (cycling coverage, the single free push
// hop) still leave it somewhat ahead, which we report as a refinement of
// the paper's claim.

func runWorstCase(p Params) Result {
	p = p.withDefaults()
	trials := p.Trials
	if trials > 4000 {
		trials = 4000
	}
	r := rand.New(rand.NewSource(p.Seed))
	graph := topology.BarabasiAlbert(50, 2, r)
	flat := make(demand.Static, 50)
	for i := range flat {
		flat[i] = 10
	}

	arms := []struct {
		name   string
		policy policy.Factory
		push   bool
	}{
		{"weak (random)", policy.NewRandom, false},
		{"fast, full (ordered+push)", policy.NewDynamicOrdered, true},
		{"fast, ordered only", policy.NewDynamicOrdered, false},
		{"fast, push only", policy.NewRandom, true},
	}
	tab := metrics.NewTable("arm", "mean all", "p95 all", "max all")
	means := make([]float64, len(arms))
	for i, arm := range arms {
		cfg := mc.NewConfig(graph, flat, arm.policy)
		cfg.FastPush = arm.push
		agg := mc.RunMany(cfg, trials, p.Seed+9, p.HighFrac)
		tab.AddRow(arm.name, agg.TimeAll.Mean(), agg.TimeAll.Percentile(95), agg.TimeAll.Max())
		means[i] = agg.TimeAll.Mean()
	}
	notes := []string{
		fmt.Sprintf("paper §8 predicts fast ~= weak under equal demand; measured weak %.3f vs fast %.3f", means[0], means[1]),
		"measured refinement: deterministic cycling avoids the random policy's repeated-partner waste, and the single push hop still helps — so 'no worse than weak' holds with margin",
	}
	return Result{ID: "worstcase", Title: "§8 worst case — equal demand everywhere", Tables: []*metrics.Table{tab}, Notes: notes}
}

func init() {
	register(Experiment{ID: "worstcase", Title: "§8 — equal-demand worst case", Run: runWorstCase})
}
