package experiment

import (
	"strings"
	"testing"
)

// small returns reduced-scale params so the suite stays fast; the full
// paper-scale run happens via cmd/experiments.
func small() Params { return Params{Trials: 60, Seed: 3, HighFrac: 0.2} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3", "fig4", "fig5", "fig6", "uniform", "diameter", "islands", "ablation", "worstcase", "live", "staleness", "truncation", "partition"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID of unknown id should report false")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Trials != 10000 || p.Seed != 1 || p.HighFrac != 0.2 {
		t.Errorf("defaults = %+v", p)
	}
	p = Params{Trials: 5, Seed: 9, HighFrac: 0.5}.withDefaults()
	if p.Trials != 5 || p.Seed != 9 || p.HighFrac != 0.5 {
		t.Errorf("explicit params overridden: %+v", p)
	}
	if got := (Params{HighFrac: 2}).withDefaults().HighFrac; got != 0.2 {
		t.Errorf("HighFrac > 1 should default to 0.2, got %g", got)
	}
}

func TestFig3CurvesMatchPaper(t *testing.T) {
	worst, optimal, fast := Fig3Curves()
	// Paper: worst case serves 9 after session 1 (B:6 + C:3).
	if worst[1] != 9 {
		t.Errorf("worst[1] = %g, want 9", worst[1])
	}
	// Paper: best case serves 14 after session 1 (B:6 + D:8).
	if optimal[1] != 14 {
		t.Errorf("optimal[1] = %g, want 14", optimal[1])
	}
	// All curves end at total demand 4+6+3+8+7 = 28.
	for name, c := range map[string][]float64{"worst": worst, "optimal": optimal, "fast": fast} {
		if c[4] != 28 {
			t.Errorf("%s[4] = %g, want 28", name, c[4])
		}
	}
	// Fast is "even better than the optimal case": D is consistent at t=0.
	if fast[0] != 14 || optimal[0] != 6 {
		t.Errorf("fast[0]=%g optimal[0]=%g, want 14 and 6", fast[0], optimal[0])
	}
	// Monotone non-decreasing curves.
	for name, c := range map[string][]float64{"worst": worst, "optimal": optimal, "fast": fast} {
		for i := 1; i < len(c); i++ {
			if c[i] < c[i-1] {
				t.Errorf("%s curve decreases at %d: %v", name, i, c)
			}
		}
	}
}

func TestFig3Run(t *testing.T) {
	res := runFig3(small())
	if len(res.Tables) != 1 || len(res.Notes) == 0 {
		t.Fatalf("unexpected result shape: %d tables, %d notes", len(res.Tables), len(res.Notes))
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3", "worst case", "fast consistency", "28"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("rendered fig3 missing %q", want)
		}
	}
}

func TestFig4SchedulesMatchPaper(t *testing.T) {
	static, dynamic := Fig4Schedules()
	// Paper §4 table: dynamic sessions are B-D, B-C', B-A'.
	wantDyn := []string{"B-D", "B-C'", "B-A'"}
	for i, w := range wantDyn {
		if dynamic[i] != w {
			t.Errorf("dynamic[%d] = %q, want %q", i, dynamic[i], w)
		}
	}
	// Paper §3: the static algorithm follows the stale order D, A, C —
	// visiting the now-cold A' at time 2 and only reaching the now-hot C'
	// at time 3 (primes mark post-change demand, as in Fig. 4).
	wantStatic := []string{"B-D", "B-A'", "B-C'"}
	for i, w := range wantStatic {
		if static[i] != w {
			t.Errorf("static[%d] = %q, want %q", i, static[i], w)
		}
	}
}

func TestFig4Run(t *testing.T) {
	res := runFig4(small())
	if len(res.Tables) != 2 {
		t.Fatalf("fig4 tables = %d, want 2", len(res.Tables))
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "B-C'") {
		t.Error("fig4 output missing the B-C' session")
	}
}

func TestCDFMeansShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte-Carlo experiment in -short mode")
	}
	weakAll, fastAll, fastHigh := CDFMeans(small(), 50)
	t.Logf("fig5 @60 trials: weak=%.3f fast=%.3f high=%.3f", weakAll, fastAll, fastHigh)
	if !(fastHigh < fastAll && fastAll < weakAll) {
		t.Errorf("ordering violated: high=%.3f all=%.3f weak=%.3f", fastHigh, fastAll, weakAll)
	}
	if fastHigh > 2 {
		t.Errorf("high-demand mean %.3f, paper reports ~1", fastHigh)
	}
	if weakAll < 4 || weakAll > 10 {
		t.Errorf("weak mean %.3f far from paper's 6.15", weakAll)
	}
}

func TestFig5RunRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte-Carlo experiment in -short mode")
	}
	p := Params{Trials: 30, Seed: 5, HighFrac: 0.2}
	res := runCDFExperiment(p, 50)
	if res.ID != "fig5" {
		t.Errorf("ID = %q, want fig5", res.ID)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"weak consistency", "fast consistency", "consistency high demand", "6.1499"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 output missing %q", want)
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte-Carlo experiment in -short mode")
	}
	weak, ordered, push, fast := AblationMeans(Params{Trials: 80, Seed: 13, HighFrac: 0.2})
	t.Logf("ablation: weak=%.3f ordered=%.3f push=%.3f fast=%.3f", weak, ordered, push, fast)
	// Full fast must beat plain weak clearly.
	if fast >= weak {
		t.Errorf("fast (%.3f) not better than weak (%.3f)", fast, weak)
	}
	// Each single optimisation should not be worse than weak by more than
	// noise.
	if ordered > weak*1.25 {
		t.Errorf("ordered-only (%.3f) much worse than weak (%.3f)", ordered, weak)
	}
	if push > weak*1.25 {
		t.Errorf("push-only (%.3f) much worse than weak (%.3f)", push, weak)
	}
}

func TestIslandOverlayHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte-Carlo experiment in -short mode")
	}
	plain, overlay := IslandGap(Params{Trials: 40, Seed: 17, HighFrac: 0.2})
	t.Logf("islands: far valley plain=%.3f overlay=%.3f", plain, overlay)
	if overlay >= plain {
		t.Errorf("island overlay did not speed up the far valley: %.3f vs %.3f", overlay, plain)
	}
}

func TestWorstCaseRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte-Carlo experiment in -short mode")
	}
	res := runWorstCase(Params{Trials: 40, Seed: 19, HighFrac: 0.2})
	if len(res.Tables) != 1 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "weak (random)") {
		t.Error("worst-case output missing the weak arm")
	}
}

func TestLiveRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping live cluster experiment in -short mode")
	}
	res := runLive(Params{Trials: 1, Seed: 23, HighFrac: 0.2})
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "demand quintile") {
		t.Errorf("live output missing quintile table:\n%s", out)
	}
	if !strings.Contains(out, "32/32 replicas converged") {
		t.Logf("live cluster output (convergence may be partial on slow machines):\n%s", out)
	}
}

func TestUniformRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte-Carlo experiment in -short mode")
	}
	res := runUniform(Params{Trials: 15, Seed: 29, HighFrac: 0.2})
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"line-25", "ring-50", "grid-10x10", "diameter"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("uniform output missing %q", want)
		}
	}
}

func TestStalenessRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping steady-state experiment in -short mode")
	}
	res := runStaleness(Params{Trials: 50, Seed: 37, HighFrac: 0.2})
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"weak (random)", "fast consistency", "fresh-read fraction"} {
		if !strings.Contains(out, want) {
			t.Errorf("staleness output missing %q", want)
		}
	}
}

func TestDiameterRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte-Carlo experiment in -short mode")
	}
	res := runDiameter(Params{Trials: 15, Seed: 31, HighFrac: 0.2})
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"400", "node-doubling growth"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("diameter output missing %q", want)
		}
	}
}
