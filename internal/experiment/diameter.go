package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

// §5's scaling claim: "as the number of nodes doubles, the number of
// sessions required to propagate a change to all replicas does not grow as
// fast. It seems that the number of sessions required to reach a global
// consistent state is related to the diameter of the network." This
// experiment doubles n across power-law topologies and reports mean
// sessions next to diameter, plus the growth ratios.

func runDiameter(p Params) Result {
	p = p.withDefaults()
	trials := p.Trials
	if trials > 3000 {
		trials = 3000
	}
	sizes := []int{25, 50, 100, 200, 400}
	tab := metrics.NewTable("nodes", "diameter", "weak mean", "fast mean",
		"weak mean / diameter", "node-doubling growth (weak)")
	prevWeak := 0.0
	var notes []string
	for i, n := range sizes {
		r := rand.New(rand.NewSource(p.Seed + int64(i)))
		graph := topology.BarabasiAlbert(n, 2, r)
		field := demand.Uniform(n, 1, 101, r)

		weakCfg := mc.NewConfig(graph, field, policy.NewRandom)
		fastCfg := mc.NewConfig(graph, field, policy.NewDynamicOrdered)
		fastCfg.FastPush = true

		t := trials
		if n >= 200 {
			t = trials / 4 // keep large sizes tractable
			if t < 50 {
				t = 50
			}
		}
		weak := mc.RunMany(weakCfg, t, p.Seed+int64(200+i), p.HighFrac)
		fast := mc.RunMany(fastCfg, t, p.Seed+int64(200+i), p.HighFrac)

		growth := "-"
		if prevWeak > 0 {
			growth = fmt.Sprintf("%.3fx", weak.TimeAll.Mean()/prevWeak)
		}
		diam := graph.Diameter()
		tab.AddRow(n, diam, weak.TimeAll.Mean(), fast.TimeAll.Mean(),
			weak.TimeAll.Mean()/float64(diam), growth)
		prevWeak = weak.TimeAll.Mean()
	}
	notes = append(notes,
		"paper Figs. 5–6: 50→100 nodes grows weak mean only 6.15→6.98 (1.135x); the growth column should stay well below 2x per doubling",
		"the sessions/diameter column staying near-constant supports the paper's diameter hypothesis",
		"paper §5: with Internet diameter ~20, the result 'seems to be applicable to the whole Internet'")
	return Result{ID: "diameter", Title: "Diameter scaling under node doubling", Tables: []*metrics.Table{tab}, Notes: notes}
}

func init() {
	register(Experiment{ID: "diameter", Title: "§5 — sessions vs network diameter", Run: runDiameter})
}
