package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/demand"
	"repro/internal/metrics"
	"repro/internal/policy"
)

// Figure 4 and the §4 table — the dynamic-demand scenario. Replica B's
// neighbours are A (demand 2), C (0) and D (13) at t=1; by t=2 demand has
// moved: A falls to 0 (A') and C rises to 9 (C'). The static algorithm
// keeps following its t=1 table and visits D, A, C; the dynamic algorithm
// re-ranks the remaining neighbours each session and visits D, C', A' —
// exactly the session row of the paper's §4 table.

// fig4Schedule drives a selector through three sessions with the table
// refreshed from the field at each session time, returning partner names.
func fig4Schedule(sel policy.Selector, refresh bool) []string {
	field := demand.Fig4Field()
	names := map[policy.NodeID]string{0: "A", 2: "C", 3: "D"}
	neighbors := []policy.NodeID{0, 2, 3}
	table := demand.NewTable(neighbors)
	table.RefreshAll(field, 1)
	r := rand.New(rand.NewSource(1))

	var out []string
	for sessionTime := 1.0; sessionTime <= 3; sessionTime++ {
		if refresh {
			table.RefreshAll(field, sessionTime)
		}
		partner, ok := sel.Next(sessionTime, table, r)
		if !ok {
			out = append(out, "-")
			continue
		}
		name := names[partner]
		// The paper marks post-change replicas with a prime.
		if sessionTime >= 2 {
			if name == "A" && field.At(0, sessionTime) == 0 {
				name = "A'"
			}
			if name == "C" && field.At(2, sessionTime) == 9 {
				name = "C'"
			}
		}
		out = append(out, "B-"+name)
	}
	return out
}

func runFig4(_ Params) Result {
	staticSched := fig4Schedule(policy.NewStaticOrdered(1, nil), false)
	dynamicSched := fig4Schedule(policy.NewDynamicOrdered(1, nil), true)

	tab := metrics.NewTable("time", "static algorithm", "dynamic algorithm (§4)")
	for i := 0; i < 3; i++ {
		tab.AddRow(i+1, staticSched[i], dynamicSched[i])
	}

	// Demand served with fresh content after each session, using the demand
	// in force during the following period: the dynamic schedule reaches
	// the hot replica C' one session earlier.
	field := demand.Fig4Field()
	served := func(sched []string) []float64 {
		idx := map[string]demand.NodeID{"B-A": 0, "B-A'": 0, "B-C": 2, "B-C'": 2, "B-D": 3}
		consistent := map[demand.NodeID]bool{1: true}
		var out []float64
		for i, s := range sched {
			now := float64(i + 1)
			consistent[idx[s]] = true
			var sum float64
			for id := demand.NodeID(0); id < 4; id++ {
				if consistent[id] {
					sum += field.At(id, now)
				}
			}
			out = append(out, sum)
		}
		return out
	}
	sStatic, sDynamic := served(staticSched), served(dynamicSched)
	servedTab := metrics.NewTable("time", "static consistent demand", "dynamic consistent demand")
	for i := 0; i < 3; i++ {
		servedTab.AddRow(i+1, sStatic[i], sDynamic[i])
	}

	notes := []string{
		fmt.Sprintf("paper §4 table: sessions B-D, B-C', B-A'; dynamic measured: %v", dynamicSched),
		fmt.Sprintf("paper §3: static algorithm misdirects after the change; static measured: %v", staticSched),
		"the dynamic algorithm serves the flash-crowd replica C' at time 2; the static one only at time 3",
	}
	return Result{ID: "fig4", Title: "Dynamic demand: static vs dynamic neighbour schedules", Tables: []*metrics.Table{tab, servedTab}, Notes: notes}
}

// Fig4Schedules exposes the schedules for tests.
func Fig4Schedules() (static, dynamic []string) {
	return fig4Schedule(policy.NewStaticOrdered(1, nil), false),
		fig4Schedule(policy.NewDynamicOrdered(1, nil), true)
}

func init() {
	register(Experiment{ID: "fig4", Title: "Fig. 4 — dynamic demand schedule", Run: runFig4})
}
