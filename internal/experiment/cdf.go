package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

// Figures 5 and 6 — CDFs of the number of sessions needed to propagate a
// change, on BRITE-like power-law topologies with 50 and 100 replicas and
// uniformly random demand, over many repetitions of a single write at a
// random origin.
//
// Series reproduced:
//
//	weak consistency        — random partner selection, no fast push
//	fast consistency        — demand-ordered dynamic selection + fast push,
//	                          measured over ALL replicas
//	consistency high demand — the same fast algorithm measured over the
//	                          top-HighFrac demand replicas (reading (a) of
//	                          the paper's unlabeled series)
//	demand order only       — demand-ordered selection WITHOUT fast push
//	                          (reading (b); also the E8 ablation arm)
type cdfSeries struct {
	name   string
	sample *metrics.Sample
}

// runCDFExperiment executes the Fig. 5/6 methodology for n replicas.
func runCDFExperiment(p Params, n int) Result {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed))
	graph := topology.BarabasiAlbert(n, 2, r)
	field := demand.Uniform(n, 1, 101, r)

	weakCfg := mc.NewConfig(graph, field, policy.NewRandom)

	fastCfg := mc.NewConfig(graph, field, policy.NewDynamicOrdered)
	fastCfg.FastPush = true

	orderedCfg := mc.NewConfig(graph, field, policy.NewDynamicOrdered)

	weak := mc.RunMany(weakCfg, p.Trials, p.Seed, p.HighFrac)
	fast := mc.RunMany(fastCfg, p.Trials, p.Seed, p.HighFrac)
	ordered := mc.RunMany(orderedCfg, p.Trials, p.Seed, p.HighFrac)

	series := []cdfSeries{
		{"fast consistency", fast.TimeAll},
		{"consistency high demand", fast.TimeHigh},
		{"demand order only", ordered.TimeAll},
		{"weak consistency", weak.TimeAll},
	}

	// CDF table: sessions 0..11 in steps of 0.5, like the figures' x axis.
	header := []string{"sessions"}
	var cdfs []*metrics.CDF
	for _, s := range series {
		header = append(header, s.name)
		cdfs = append(cdfs, metrics.NewCDF(s.sample))
	}
	cdfTab := metrics.NewTable(header...)
	for x := 0.0; x <= 11.0001; x += 0.5 {
		row := []any{fmt.Sprintf("%.1f", x)}
		for _, c := range cdfs {
			row = append(row, c.At(x))
		}
		cdfTab.AddRow(row...)
	}

	meanTab := metrics.NewTable("series", "mean sessions", "p95", "max", "trials")
	for _, s := range series {
		meanTab.AddRow(s.name, s.sample.Mean(), s.sample.Percentile(95), s.sample.Max(), s.sample.N())
	}

	// ASCII rendition of the figure itself.
	plot := metrics.NewPlot(
		fmt.Sprintf("%d Nodes — cumulative probability vs sessions (cf. paper Fig. %d)",
			n, map[int]int{50: 5, 100: 6}[n]),
		"sessions", "cumulative probability", 66, 16)
	markers := []byte{'*', '^', '+', 'o'}
	for i, c := range cdfs {
		xs, ps := c.Series(11, 0.25)
		plot.AddSeries(series[i].name, markers[i%len(markers)], xs, ps)
	}
	var plotBuf strings.Builder
	if err := plot.Render(&plotBuf); err != nil {
		panic(err) // strings.Builder cannot fail
	}

	var paperWeak, paperFast float64
	switch n {
	case 50:
		paperWeak, paperFast = 6.1499, 3.9261
	case 100:
		paperWeak, paperFast = 6.982, 4.78117
	}
	notes := []string{
		fmt.Sprintf("topology: %v diameter=%d", graph, graph.Diameter()),
		fmt.Sprintf("paper: weak consistency mean %.4f sessions; measured %.4f", paperWeak, weak.TimeAll.Mean()),
		fmt.Sprintf("paper: fast consistency mean %.4f sessions (all replicas); measured %.4f", paperFast, fast.TimeAll.Mean()),
		fmt.Sprintf("paper: high-demand replicas consistent in ~1 session; measured %.4f", fast.TimeHigh.Mean()),
		fmt.Sprintf("high-demand speedup vs weak: %.1fx (paper: 'up to six times quicker')", weak.TimeHigh.Mean()/fast.TimeHigh.Mean()),
		fmt.Sprintf("incomplete trials: weak=%d fast=%d ordered=%d", weak.Incomplete, fast.Incomplete, ordered.Incomplete),
	}
	id := fmt.Sprintf("fig%d", map[int]int{50: 5, 100: 6}[n])
	if id == "fig0" {
		id = fmt.Sprintf("cdf%d", n)
	}
	return Result{
		ID:     id,
		Title:  fmt.Sprintf("CDF of sessions to consistency, %d nodes", n),
		Tables: []*metrics.Table{meanTab, cdfTab},
		Blocks: []string{plotBuf.String()},
		Notes:  notes,
	}
}

// CDFMeans runs the Fig. 5/6 workload and returns the headline means, for
// tests and benches: weak all, fast all, fast high-demand.
func CDFMeans(p Params, n int) (weakAll, fastAll, fastHigh float64) {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed))
	graph := topology.BarabasiAlbert(n, 2, r)
	field := demand.Uniform(n, 1, 101, r)
	weakCfg := mc.NewConfig(graph, field, policy.NewRandom)
	fastCfg := mc.NewConfig(graph, field, policy.NewDynamicOrdered)
	fastCfg.FastPush = true
	weak := mc.RunMany(weakCfg, p.Trials, p.Seed, p.HighFrac)
	fast := mc.RunMany(fastCfg, p.Trials, p.Seed, p.HighFrac)
	return weak.TimeAll.Mean(), fast.TimeAll.Mean(), fast.TimeHigh.Mean()
}

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Fig. 5 — CDF of sessions, 50 nodes",
		Run:   func(p Params) Result { return runCDFExperiment(p, 50) },
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Fig. 6 — CDF of sessions, 100 nodes",
		Run:   func(p Params) Result { return runCDFExperiment(p, 100) },
	})
}
