package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/topology"
)

// E11 (extension) — steady-state staleness under continuous writes. The
// paper measures a single write's propagation; its §6 reasons about the
// long run: "in the longer term those replicas with lower or reduced demand
// will tend to have less updated (i.e. stale) content". This experiment
// runs a continuous write/read workload and measures, per algorithm, the
// read-weighted staleness clients actually experience — the number of
// issued-but-not-yet-received writes at each read — split by demand class.

func runStaleness(p Params) Result {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed))
	graph := topology.BarabasiAlbert(50, 2, r)
	field := demand.Uniform(50, 1, 101, r)

	duration := 200.0
	if p.Trials < 1000 {
		duration = 60 // reduced-scale runs
	}

	arms := []struct {
		name    string
		factory policy.Factory
		push    bool
	}{
		{"weak (random)", policy.NewRandom, false},
		{"fast consistency", policy.NewDynamicOrdered, true},
		{"ordered only", policy.NewDynamicOrdered, false},
		{"push only", policy.NewRandom, true},
	}
	labels := make([]string, 0, len(arms))
	results := make([]mc.SteadyResult, 0, len(arms))
	for _, arm := range arms {
		cfg := mc.SteadyConfig{
			Config:    mc.NewConfig(graph, field, arm.factory),
			WriteRate: 1,
			ReadScale: 0.02,
			Duration:  duration,
			Warmup:    10,
		}
		cfg.FastPush = arm.push
		labels = append(labels, arm.name)
		results = append(results, mc.RunSteady(cfg, p.Seed+3))
	}
	tab := mc.SteadySamplesToTable(labels, results)

	weak, fast := results[0], results[1]
	notes := []string{
		fmt.Sprintf("read-weighted mean lag improves %.2f -> %.2f writes (%.0f%%) under fast consistency",
			weak.MeanLag, fast.MeanLag, 100*(1-fast.MeanLag/weak.MeanLag)),
		fmt.Sprintf("§6's asymmetry, measured: under fast consistency hot replicas lag %.2f vs cold %.2f",
			fast.HighLag, fast.LowLag),
		"weak consistency treats all replicas alike, so its hot/cold lags are similar — demand-blindness wastes freshness where nobody reads",
	}
	return Result{ID: "staleness", Title: "E11 — steady-state staleness under continuous writes", Tables: []*metrics.Table{tab}, Notes: notes}
}

func init() {
	register(Experiment{ID: "staleness", Title: "E11 — steady-state staleness", Run: runStaleness})
}
