package metrics

import (
	"strings"
	"testing"
)

func TestPlotRenders(t *testing.T) {
	p := NewPlot("CDF of sessions", "sessions", "cumulative probability", 40, 10)
	p.AddSeries("fast", '*', []float64{0, 1, 2, 3}, []float64{0, 0.5, 0.9, 1})
	p.AddSeries("weak", 'o', []float64{0, 2, 4, 6}, []float64{0, 0.2, 0.6, 1})
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"CDF of sessions", "*", "o", "fast", "weak", "sessions", "cumulative probability", "6.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot output missing %q:\n%s", want, out)
		}
	}
	// Every data row is framed by pipes.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") && !strings.HasSuffix(strings.TrimSpace(line), "|") {
			t.Errorf("unframed data row: %q", line)
		}
	}
}

func TestPlotMarkerPlacement(t *testing.T) {
	p := NewPlot("", "x", "y", 11, 5)
	// A single point at the max of both axes lands in the top-right corner.
	p.AddSeries("s", '#', []float64{10}, []float64{1})
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(b.String(), "\n")
	top := lines[0]
	if !strings.HasSuffix(top, "#|") {
		t.Errorf("max point not in top-right corner: %q", top)
	}
}

func TestPlotSkipsNonFinite(t *testing.T) {
	p := NewPlot("", "x", "y", 12, 4)
	nan := 0.0
	nan = nan / nan
	p.AddSeries("s", '#', []float64{nan, 1}, []float64{0.5, nan})
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.Contains(line, "|") && strings.Contains(line, "#") {
			t.Errorf("non-finite point plotted: %q", line)
		}
	}
}

func TestPlotEmptySeriesSafe(t *testing.T) {
	p := NewPlot("empty", "x", "y", 12, 4)
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty") {
		t.Error("title missing")
	}
}

func TestPlotValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("tiny canvas accepted")
			}
		}()
		NewPlot("", "", "", 2, 2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched series accepted")
			}
		}()
		p := NewPlot("", "", "", 20, 5)
		p.AddSeries("bad", '#', []float64{1}, []float64{1, 2})
	}()
}
