package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	s := NewSample(4)
	s.AddAll([]float64{4, 1, 3, 2})
	if s.N() != 4 {
		t.Errorf("N = %d, want 4", s.N())
	}
	if got := s.Mean(); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %g, want 1", got)
	}
	if got := s.Max(); got != 4 {
		t.Errorf("Max = %g, want 4", got)
	}
	if got := s.Median(); got != 2.5 {
		t.Errorf("Median = %g, want 2.5", got)
	}
	// Std of {1,2,3,4} = sqrt(5/3).
	if got, want := s.Std(), math.Sqrt(5.0/3.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Std = %g, want %g", got, want)
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	for name, v := range map[string]float64{
		"Mean": s.Mean(), "Min": s.Min(), "Max": s.Max(), "P50": s.Percentile(50),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty sample = %g, want NaN", name, v)
		}
	}
	if s.String() != "sample{empty}" {
		t.Errorf("String = %q", s.String())
	}
	s.Add(7)
	if !math.IsNaN(s.Std()) {
		t.Error("Std of single observation should be NaN")
	}
	if s.Mean() != 7 || s.Median() != 7 {
		t.Error("single-observation stats wrong")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := NewSample(5)
	s.AddAll([]float64{10, 20, 30, 40, 50})
	tests := []struct {
		p, want float64
	}{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {-5, 10}, {110, 50},
		{12.5, 15}, // halfway between first two order stats
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
}

func TestSampleAddAfterSort(t *testing.T) {
	s := NewSample(0)
	s.Add(5)
	_ = s.Min() // forces sort
	s.Add(1)
	if got := s.Min(); got != 1 {
		t.Errorf("Min after post-sort Add = %g, want 1", got)
	}
}

func TestCDF(t *testing.T) {
	s := NewSample(4)
	s.AddAll([]float64{1, 2, 2, 4})
	c := NewCDF(s)
	tests := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3.99, 0.75}, {4, 1}, {9, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); got != tt.want {
			t.Errorf("At(%g) = %g, want %g", tt.x, got, tt.want)
		}
	}
	if !math.IsNaN(NewCDF(NewSample(0)).At(1)) {
		t.Error("empty CDF should be NaN")
	}
}

func TestCDFSeries(t *testing.T) {
	s := NewSample(2)
	s.AddAll([]float64{1, 3})
	c := NewCDF(s)
	xs, ps := c.Series(4, 1)
	if len(xs) != 5 {
		t.Fatalf("series length = %d, want 5", len(xs))
	}
	wantPs := []float64{0, 0.5, 0.5, 1, 1}
	for i := range wantPs {
		if ps[i] != wantPs[i] {
			t.Errorf("ps[%d] = %g, want %g", i, ps[i], wantPs[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Series with step 0 should panic")
		}
	}()
	c.Series(4, 0)
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSample(50)
		for i := 0; i < 50; i++ {
			s.Add(r.Float64() * 10)
		}
		c := NewCDF(s)
		prev := -1.0
		for x := 0.0; x < 11; x += 0.25 {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return c.At(11) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("CDF monotonicity violated: %v", err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Observe(v)
	}
	counts := h.Counts()
	if counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin 0 = %d, want 2", counts[0])
	}
	if counts[1] != 1 { // 2
		t.Errorf("bin 1 = %d, want 1", counts[1])
	}
	if counts[4] != 1 { // 9.99
		t.Errorf("bin 4 = %d, want 1", counts[4])
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("outliers = (%d, %d), want (1, 2)", under, over)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if got := h.BinLabel(0); got != "[0.00, 2.00)" {
		t.Errorf("BinLabel(0) = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with bad bounds should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestTableRender(t *testing.T) {
	tab := NewTable("algo", "mean")
	tab.AddRow("weak", 6.1499)
	tab.AddRow("fast", 3.9261)
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"algo", "mean", "----", "weak", "6.1499", "fast", "3.9261"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2.5000\nx,y\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSampleString(t *testing.T) {
	s := NewSample(3)
	s.AddAll([]float64{1, 2, 3})
	out := s.String()
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "mean=2.0000") {
		t.Errorf("String = %q", out)
	}
}

func BenchmarkSamplePercentile(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := NewSample(10000)
	for i := 0; i < 10000; i++ {
		s.Add(r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Percentile(95)
	}
}
