// Package metrics provides the statistics the paper's evaluation reports:
// sample summaries (means such as "3.9261 sessions"), empirical CDFs (the
// curves of Figs. 5 and 6), and fixed-width table/CSV rendering for the
// experiment harness.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Sample accumulates float64 observations. The zero value is ready to use.
// Sample is not safe for concurrent use.
type Sample struct {
	values []float64
	sorted bool
}

// NewSample returns a sample pre-sized for n observations.
func NewSample(n int) *Sample { return &Sample{values: make([]float64, 0, n)} }

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddAll records many observations.
func (s *Sample) AddAll(vs []float64) {
	s.values = append(s.values, vs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the sample mean (NaN when empty).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Std returns the sample standard deviation with Bessel's correction (NaN
// for fewer than two observations).
func (s *Sample) Std() float64 {
	if len(s.values) < 2 {
		return math.NaN()
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.values {
		ss += (v - mean) * (v - mean)
	}
	return math.Sqrt(ss / float64(len(s.values)-1))
}

// Min returns the smallest observation (NaN when empty).
func (s *Sample) Min() float64 {
	s.ensureSorted()
	if len(s.values) == 0 {
		return math.NaN()
	}
	return s.values[0]
}

// Max returns the largest observation (NaN when empty).
func (s *Sample) Max() float64 {
	s.ensureSorted()
	if len(s.values) == 0 {
		return math.NaN()
	}
	return s.values[len(s.values)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation between order statistics (NaN when empty).
func (s *Sample) Percentile(p float64) float64 {
	s.ensureSorted()
	n := len(s.values)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Values returns a sorted copy of the observations.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	return append([]float64(nil), s.values...)
}

// Merge folds another sample's observations into s (other is unchanged;
// nil is a no-op). Used to combine per-worker latency samples after a
// concurrent load run.
func (s *Sample) Merge(other *Sample) {
	if other == nil {
		return
	}
	s.values = append(s.values, other.values...)
	s.sorted = false
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// String summarises the sample.
func (s *Sample) String() string {
	if s.N() == 0 {
		return "sample{empty}"
	}
	return fmt.Sprintf("sample{n=%d mean=%.4f std=%.4f min=%.2f p50=%.2f p95=%.2f max=%.2f}",
		s.N(), s.Mean(), s.Std(), s.Min(), s.Median(), s.Percentile(95), s.Max())
}

// CDF is an empirical cumulative distribution function over recorded
// observations.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from a sample's observations.
func NewCDF(s *Sample) *CDF { return &CDF{sorted: s.Values()} }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Series evaluates the CDF at evenly spaced points from 0 to max step
// `step`, returning parallel xs and ps slices — the plotted form of the
// paper's Figs. 5–6 (x axis "Sessions", y axis "Cumulative Probability").
func (c *CDF) Series(max, step float64) (xs, ps []float64) {
	if step <= 0 {
		panic(fmt.Sprintf("metrics: non-positive CDF step %g", step))
	}
	for x := 0.0; x <= max+1e-9; x += step {
		xs = append(xs, x)
		ps = append(ps, c.At(x))
	}
	return xs, ps
}

// Histogram counts observations in fixed-width bins covering [lo, hi).
type Histogram struct {
	lo, width float64
	counts    []uint64
	under     uint64
	over      uint64
}

// NewHistogram builds a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: bad histogram bounds [%g,%g) bins=%d", lo, hi, bins))
	}
	return &Histogram{lo: lo, width: (hi - lo) / float64(bins), counts: make([]uint64, bins)}
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	idx := int(math.Floor((v - h.lo) / h.width))
	switch {
	case idx < 0:
		h.under++
	case idx >= len(h.counts):
		h.over++
	default:
		h.counts[idx]++
	}
}

// Counts returns the per-bin counts (shared slice; do not mutate).
func (h *Histogram) Counts() []uint64 { return h.counts }

// Outliers returns counts below and above the histogram range.
func (h *Histogram) Outliers() (under, over uint64) { return h.under, h.over }

// Total returns all observations including outliers.
func (h *Histogram) Total() uint64 {
	t := h.under + h.over
	for _, c := range h.counts {
		t += c
	}
	return t
}

// BinLabel returns a "[lo, hi)" label for bin i.
func (h *Histogram) BinLabel(i int) string {
	return fmt.Sprintf("[%.2f, %.2f)", h.lo+float64(i)*h.width, h.lo+float64(i+1)*h.width)
}

// Table renders aligned rows for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table using elastic tabs.
func (t *Table) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.header) > 0 {
		if _, err := fmt.Fprintln(tw, strings.Join(t.header, "\t")); err != nil {
			return err
		}
		underline := make([]string, len(t.header))
		for i, h := range t.header {
			underline[i] = strings.Repeat("-", len(h))
		}
		if _, err := fmt.Fprintln(tw, strings.Join(underline, "\t")); err != nil {
			return err
		}
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// RenderCSV writes the table as CSV (no quoting; cells must not contain
// commas, which experiment output never does).
func (t *Table) RenderCSV(w io.Writer) error {
	if len(t.header) > 0 {
		if _, err := fmt.Fprintln(w, strings.Join(t.header, ",")); err != nil {
			return err
		}
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
