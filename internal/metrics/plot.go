package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot renders one or more (x, y) series as an ASCII chart — enough to eyeball
// the CDF figures in a terminal without any plotting dependency.
type Plot struct {
	title      string
	xLabel     string
	yLabel     string
	width      int
	height     int
	xMax, yMax float64
	series     []plotSeries
}

type plotSeries struct {
	name   string
	marker byte
	xs, ys []float64
}

// NewPlot creates a plot with the given canvas size (columns × rows of the
// data area, excluding axes).
func NewPlot(title, xLabel, yLabel string, width, height int) *Plot {
	if width < 10 || height < 4 {
		panic(fmt.Sprintf("metrics: plot canvas too small (%dx%d)", width, height))
	}
	return &Plot{title: title, xLabel: xLabel, yLabel: yLabel, width: width, height: height}
}

// AddSeries registers a series drawn with the given marker character.
// Parallel xs/ys are required; non-finite points are skipped at render.
func (p *Plot) AddSeries(name string, marker byte, xs, ys []float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("metrics: series %q has %d xs but %d ys", name, len(xs), len(ys)))
	}
	for i := range xs {
		if isFinite(xs[i]) && xs[i] > p.xMax {
			p.xMax = xs[i]
		}
		if isFinite(ys[i]) && ys[i] > p.yMax {
			p.yMax = ys[i]
		}
	}
	p.series = append(p.series, plotSeries{
		name:   name,
		marker: marker,
		xs:     append([]float64(nil), xs...),
		ys:     append([]float64(nil), ys...),
	})
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Render writes the chart.
func (p *Plot) Render(w io.Writer) error {
	xMax, yMax := p.xMax, p.yMax
	if xMax <= 0 {
		xMax = 1
	}
	if yMax <= 0 {
		yMax = 1
	}
	grid := make([][]byte, p.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.width))
	}
	for _, s := range p.series {
		for i := range s.xs {
			if !isFinite(s.xs[i]) || !isFinite(s.ys[i]) {
				continue
			}
			col := int(math.Round(s.xs[i] / xMax * float64(p.width-1)))
			row := p.height - 1 - int(math.Round(s.ys[i]/yMax*float64(p.height-1)))
			if col < 0 || col >= p.width || row < 0 || row >= p.height {
				continue
			}
			grid[row][col] = s.marker
		}
	}

	if p.title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", p.title); err != nil {
			return err
		}
	}
	for r, rowBytes := range grid {
		yVal := yMax * float64(p.height-1-r) / float64(p.height-1)
		if _, err := fmt.Fprintf(w, "%7.2f |%s|\n", yVal, rowBytes); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "        +%s+\n", strings.Repeat("-", p.width)); err != nil {
		return err
	}
	// X-axis extremes.
	left := "0"
	right := fmt.Sprintf("%.1f %s", xMax, p.xLabel)
	pad := p.width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	if _, err := fmt.Fprintf(w, "         %s%s%s\n", left, strings.Repeat(" ", pad), right); err != nil {
		return err
	}
	// Legend.
	for _, s := range p.series {
		if _, err := fmt.Fprintf(w, "  %c  %s\n", s.marker, s.name); err != nil {
			return err
		}
	}
	if p.yLabel != "" {
		if _, err := fmt.Fprintf(w, "  (y: %s)\n", p.yLabel); err != nil {
			return err
		}
	}
	return nil
}
