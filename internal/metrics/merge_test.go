package metrics

import "testing"

func TestSampleMerge(t *testing.T) {
	a, b := NewSample(4), NewSample(4)
	a.AddAll([]float64{1, 3})
	b.AddAll([]float64{2, 4})
	a.Merge(b)
	if a.N() != 4 {
		t.Fatalf("merged N = %d, want 4", a.N())
	}
	if got := a.Mean(); got != 2.5 {
		t.Errorf("merged mean %f, want 2.5", got)
	}
	if got := a.Max(); got != 4 {
		t.Errorf("merged max %f, want 4", got)
	}
	// The source sample is unchanged, and a nil merge is a no-op.
	if b.N() != 2 {
		t.Errorf("source sample mutated: N = %d", b.N())
	}
	a.Merge(nil)
	if a.N() != 4 {
		t.Errorf("nil merge changed N to %d", a.N())
	}
}

func TestSampleMergeResortsLazily(t *testing.T) {
	a, b := NewSample(2), NewSample(2)
	a.Add(10)
	if a.Min() != 10 { // forces the sorted flag on
		t.Fatal("unexpected min")
	}
	b.Add(1)
	a.Merge(b)
	if got := a.Min(); got != 1 {
		t.Errorf("min after merge %f, want 1 (sorted flag not reset)", got)
	}
}
