// Package wal is the durable persistence plane: a segmented on-disk
// write-ahead log plus a snapshot file, kept per replica behind the
// in-memory write log (internal/wlog).
//
// Every record that enters a replica's write log — local client writes,
// entries gained through anti-entropy or fast push, and full-state
// adoptions (protocol snapshots, peer bootstraps, shard handoffs) — is
// appended to the active segment through a buffered writer. Appends do not
// sync; durability comes either from explicit Sync calls or, with
// StartPipeline, from the background sync stage: appends publish
// immediately, syncs retire outside the appenders' critical path, and
// WaitDurable reports when a record's covering sync has completed — the
// watermark the runtime's group-commit leader releases client acks
// against, in batch order. Entries learned from peers ride along in the
// buffer and reach disk with the next sync; losing them in a crash is safe
// because anti-entropy re-fetches them.
//
// # On-disk format
//
// A replica directory holds numbered segment files plus one snapshot file:
//
//	seg-<first-record-index>.wal   CRC32C-framed records, append-only
//	snapshot.wal                   latest snapshot (atomic tmp+rename)
//
// Every record is framed as
//
//	uint32 payload length | uint32 CRC32C(payload) | payload
//
// with fixed-width little-endian integers inside the payload. A torn tail —
// a frame cut short or failing its checksum, the normal result of a crash
// mid-write — ends recovery of that segment; everything before it replays.
//
// When the active segment exceeds Options.SegmentBytes it is sealed
// (flushed, synced, closed) and a fresh segment starts. Sealed segments are
// deleted by compaction once a snapshot covers them: SaveSnapshot records
// the log's record index at the moment the snapshot state was captured, and
// every sealed segment whose last record index is at or below that
// watermark is redundant with the snapshot and removed.
//
// # Recovery
//
// Open scans the directory and returns a Recovery: the snapshot image (if
// any) plus the surviving records in append order. The runtime replays it
// into a fresh replica — snapshot first (summary adoption + store merge),
// then records — rebuilding the summary vector, write log and store so the
// replica re-enters propagation without a full peer bootstrap.
//
// A Log is safe for concurrent use.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/wlog"
)

// Options tunes a Log. The zero value selects the defaults.
type Options struct {
	// SegmentBytes is the size at which the active segment is sealed and a
	// new one starts. Default 4 MiB.
	SegmentBytes int64
	// SnapshotBytes is how many appended bytes accumulate after the last
	// snapshot before SnapshotDue reports true (the runtime's cue to capture
	// replica state and call SaveSnapshot). Default 8 MiB.
	SnapshotBytes int64
	// FS is the filesystem the log runs on. Default vfs.OS; tests and chaos
	// scenarios inject a vfs.FaultFS to model slow, lying, and dying disks.
	FS vfs.FS
	// Preallocate extends each fresh segment to SegmentBytes up front (and
	// trims the unused tail when the segment seals). Appends then never grow
	// the file, so the sync stage's fdatasync skips the file-size metadata
	// update a growing file pays on every fsync. Recovery treats the
	// zero-filled tail as a torn end of log.
	Preallocate bool
	// CoalesceWindow is how long the pipelined sync stage waits after
	// noticing unsynced records before issuing the sync, so records appended
	// close together share one disk flush. Zero (the default) syncs as soon
	// as the previous sync completes — back-to-back batches still coalesce
	// behind the in-flight flush, with no added latency.
	CoalesceWindow time.Duration
	// ODSync opens segments with the platform's O_DSYNC flag where it
	// exists: every write reaches stable storage synchronously, making the
	// explicit sync at the durability point nearly free. A latency/bandwidth
	// trade — buffered spills block on the disk — kept for measurement.
	ODSync bool
	// OnSync, when non-nil, observes the duration of every disk-reaching
	// sync (explicit Sync calls and pipelined sync-stage flushes). Called
	// with the log's internal lock held, so it must be fast (a histogram
	// observation, not IO) and must not call back into the Log.
	OnSync func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotBytes <= 0 {
		o.SnapshotBytes = 8 << 20
	}
	if o.FS == nil {
		o.FS = vfs.OS
	}
	return o
}

// Step is one replayable recovery record: either a batch of write-log
// entries or a full-state adoption. Exactly one of the fields is set.
type Step struct {
	// Entries is a batch of write-log entries, in original append order.
	Entries []wlog.Entry
	// Adopt is a full-state adoption record.
	Adopt *Adopt
}

// Adopt is a persisted full-state transfer: a summary to adopt (nil for
// content-only absorptions such as shard handoffs), the store items it
// covers, and the Lamport clock floor to carry forward.
type Adopt struct {
	// Summary is the coverage to adopt, or nil for content-only records.
	Summary *vclock.Summary
	// Items is the store image accompanying the transfer.
	Items []store.Item
	// Clock is the Lamport clock floor after the adoption.
	Clock uint64
}

// Recovery is everything Open found on disk, in replay order: the snapshot
// image first (Snapshot nil when none was saved), then Steps.
type Recovery struct {
	// Snapshot is the persisted summary vector, or nil.
	Snapshot *vclock.Summary
	// Items is the persisted store image accompanying Snapshot.
	Items []store.Item
	// Clock is the persisted Lamport clock floor.
	Clock uint64
	// Steps are the surviving log records in append order.
	Steps []Step
}

// Empty reports whether the recovery carries no state at all (a fresh
// directory).
func (r *Recovery) Empty() bool {
	return r == nil || (r.Snapshot == nil && len(r.Items) == 0 && len(r.Steps) == 0)
}

// Stats is a point-in-time observation of a Log.
type Stats struct {
	// Segments is the number of live segment files (including the active
	// one).
	Segments int
	// DiskBytes is the total size of live segment files as appended (buffered
	// bytes included, snapshot file excluded).
	DiskBytes int64
	// Records is the total number of records ever appended (the record
	// index of the newest record).
	Records uint64
	// SnapshotRecords is the record index the latest snapshot covers.
	SnapshotRecords uint64
	// Syncs counts explicit Sync calls that reached the disk.
	Syncs uint64
	// SnapshotBytes is the total bytes written as snapshot images (frame
	// headers included) over the log's lifetime — the cost of the snapshot
	// cadence, distinct from DiskBytes which the rename overwrites.
	SnapshotBytes int64
	// DirSyncErrs counts directory-fsync failures on platforms that support
	// directory fsync. Non-zero means entry creation/rename durability is in
	// doubt — the log also fail-stops on the triggering operation.
	DirSyncErrs uint64
	// LastSync is how long the most recent disk-reaching Sync took — the
	// fsync stall signal a degrading disk shows first.
	LastSync time.Duration
	// DurableRecords is the index of the newest record covered by a
	// completed sync — the pipelined durability watermark. Records -
	// DurableRecords is the in-flight (appended, not yet durable) depth.
	DurableRecords uint64
	// PipelineSyncs counts syncs issued by the background sync stage
	// (StartPipeline), a subset of Syncs.
	PipelineSyncs uint64
}

// record kinds (payload first byte).
const (
	recEntry    = 1
	recAdopt    = 2
	recSnapshot = 3
)

const (
	segPrefix    = "seg-"
	segSuffix    = ".wal"
	snapshotName = "snapshot.wal"
	snapshotTmp  = "snapshot.tmp"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed or abandoned log.
var ErrClosed = errors.New("wal: log is closed")

// segmentInfo tracks one on-disk segment.
type segmentInfo struct {
	path     string
	firstRec uint64 // index of the segment's first record
	lastRec  uint64 // index of its last record (0 while empty)
	bytes    int64
}

// Log is a replica's durable write-ahead log. Use Open to create or recover
// one.
type Log struct {
	dir  string
	opts Options
	fs   vfs.FS

	mu        sync.Mutex
	active    vfs.File
	bw        *bufio.Writer
	activeSeg segmentInfo
	sealed    []segmentInfo
	// covered is the append-side dedupe filter: the highest sequence per
	// origin already written to disk (or buffered). Replayed or re-offered
	// entries at or below it are skipped, so recovery replays each write
	// once no matter how often layers above re-journal it.
	covered vclock.Summary
	// records indexes appended records; snapRec is the index the latest
	// snapshot covers (records at or below it are redundant with it).
	records       uint64
	snapRec       uint64
	bytesSinceSnp int64
	snapBytes     int64
	syncs         uint64
	dirSyncErrs   uint64
	lastSync      time.Duration
	// durable is the pipelined durability watermark: every record with
	// index <= durable is on stable storage. Advanced by completed syncs
	// (inline or pipelined); WaitDurable blocks on it.
	durable uint64
	// pipeSyncs counts syncs issued by the background sync stage.
	pipeSyncs uint64
	// dirty is set when a record is buffered into the active segment and
	// cleared when the segment is synced, so the periodic maintenance Sync
	// is a no-op on idle replicas instead of an fsync every tick.
	dirty  bool
	closed bool
	err    error // first unrecoverable IO error; sticky

	// pipelined is set by StartPipeline; syncerDone closes when the sync
	// stage goroutine exits. syncerIdle gates the per-append wakeup signal
	// so the hot path pays a futex only when the syncer is actually parked.
	pipelined  bool
	syncerIdle bool
	syncerDone chan struct{}
	// work wakes the sync stage when records need syncing; synced wakes
	// WaitDurable callers when the durability watermark advances (or the
	// log dies).
	work   sync.Cond
	synced sync.Cond

	scratch []byte // reusable record encode buffer
}

// Open creates (or reopens) the log in dir, replaying whatever state
// survives there. It returns the log ready for appends plus the Recovery to
// replay into the replica. A fresh directory yields an empty Recovery.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, fs: opts.FS}
	l.work.L = &l.mu
	l.synced.L = &l.mu
	rec := &Recovery{}

	if err := l.loadSnapshot(rec); err != nil {
		return nil, nil, err
	}
	if err := l.scanSegments(rec); err != nil {
		return nil, nil, err
	}
	if rec.Snapshot != nil {
		l.covered.Merge(rec.Snapshot)
	}
	for _, step := range rec.Steps {
		if step.Adopt != nil {
			l.covered.Merge(step.Adopt.Summary)
			continue
		}
		for _, e := range step.Entries {
			l.covered.Advance(e.TS.Node, e.TS.Seq)
		}
	}
	if err := l.openSegment(); err != nil {
		return nil, nil, err
	}
	// Everything recovery returned is on stable storage by definition.
	l.durable = l.records
	return l, rec, nil
}

// loadSnapshot reads snapshot.wal if present. A corrupt snapshot is
// ignored (recovery proceeds from segments alone) rather than fatal: the
// tmp+rename protocol makes corruption here mean outside interference, and
// the log's job is to salvage what it can.
func (l *Log) loadSnapshot(rec *Recovery) error {
	raw, err := l.fs.ReadFile(filepath.Join(l.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	payload, _, ok := readFrame(raw)
	if !ok || len(payload) == 0 || payload[0] != recSnapshot {
		return nil
	}
	body := payload[1:]
	snapRec, body, ok := getU64(body)
	if !ok {
		return nil
	}
	adopt, ok := decodeAdoptBody(body)
	if !ok {
		return nil
	}
	l.snapRec = snapRec
	l.records = snapRec
	rec.Snapshot = adopt.Summary
	rec.Items = adopt.Items
	rec.Clock = adopt.Clock
	return nil
}

// scanSegments replays every segment file in index order, appending
// surviving records to rec.Steps and restoring the record index.
func (l *Log) scanSegments(rec *Recovery) error {
	names, err := l.fs.Glob(filepath.Join(l.dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	type seg struct {
		path     string
		firstRec uint64
	}
	segs := make([]seg, 0, len(names))
	for _, path := range names {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), segPrefix), segSuffix)
		first, err := strconv.ParseUint(base, 16, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, seg{path: path, firstRec: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstRec < segs[j].firstRec })
	for _, s := range segs {
		raw, err := l.fs.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		info := segmentInfo{path: s.path, firstRec: s.firstRec, bytes: int64(len(raw))}
		idx := s.firstRec - 1
		for len(raw) > 0 {
			payload, rest, ok := readFrame(raw)
			if !ok {
				break // torn tail: everything before it replays
			}
			raw = rest
			idx++
			appendStep(rec, payload)
		}
		if idx < s.firstRec {
			// No surviving records (a crash right after rotation, or a
			// fully torn head). Delete rather than track: openSegment will
			// reuse this very filename for the new active segment, and a
			// stale sealed entry for the same path would later let
			// compaction unlink the LIVE segment — silently discarding
			// synced records.
			l.fs.Remove(s.path)
			continue
		}
		info.lastRec = idx
		if idx > l.records {
			l.records = idx
		}
		l.sealed = append(l.sealed, info)
	}
	return nil
}

// appendStep decodes one record payload into rec.Steps, coalescing runs of
// entry records into a single batch.
func appendStep(rec *Recovery, payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case recEntry:
		e, ok := decodeEntry(payload[1:])
		if !ok {
			return
		}
		if n := len(rec.Steps); n > 0 && rec.Steps[n-1].Adopt == nil {
			rec.Steps[n-1].Entries = append(rec.Steps[n-1].Entries, e)
			return
		}
		rec.Steps = append(rec.Steps, Step{Entries: []wlog.Entry{e}})
	case recAdopt:
		if adopt, ok := decodeAdoptBody(payload[1:]); ok {
			rec.Steps = append(rec.Steps, Step{Adopt: &adopt})
		}
	}
}

// openSegment starts a fresh active segment after the newest record.
// Recovery never appends to a possibly-torn tail; it always seals history
// and writes forward.
func (l *Log) openSegment() error {
	first := l.records + 1
	path := filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix))
	flag := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if l.opts.ODSync {
		flag |= vfs.ODSync
	}
	f, err := l.fs.OpenFile(path, flag, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if l.opts.Preallocate {
		// Extend to the full segment size now so appends never change the
		// file size and fdatasync skips the inode update. Recovery rejects
		// the zero-filled tail (a zero length field is never a record), and
		// seal trims it. Failure is not a durability problem — the segment
		// just grows the slow way — so it is deliberately not sticky.
		_ = l.fs.Truncate(path, l.opts.SegmentBytes)
	}
	l.active = f
	l.bw = bufio.NewWriterSize(f, 64<<10)
	l.activeSeg = segmentInfo{path: path, firstRec: first}
	return l.syncDirLocked()
}

// Append journals entries that just entered the replica's write log.
// Entries already covered by the on-disk state are skipped, so replays and
// duplicate deliveries are idempotent. Append buffers; call Sync to make
// the batch durable.
func (l *Log) Append(entries []wlog.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	for _, e := range entries {
		if e.TS.Seq <= l.covered.Get(e.TS.Node) {
			continue
		}
		l.scratch = encodeEntry(l.scratch[:0], e)
		if err := l.writeRecordLocked(l.scratch); err != nil {
			return err
		}
		l.covered.Advance(e.TS.Node, e.TS.Seq)
	}
	return nil
}

// AppendAdopt journals a full-state adoption: a protocol snapshot, a peer
// bootstrap, or a content-only absorption (summary nil, e.g. a shard
// handoff). Buffered like Append.
func (l *Log) AppendAdopt(summary *vclock.Summary, items []store.Item, clock uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	l.scratch = encodeAdoptBody(append(l.scratch[:0], recAdopt), summary, items, clock)
	if err := l.writeRecordLocked(l.scratch); err != nil {
		return err
	}
	l.covered.Merge(summary)
	return nil
}

// writeRecordLocked frames and buffers one record payload, rotating the
// active segment when it fills.
func (l *Log) writeRecordLocked(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.bw.Write(hdr[:]); err != nil {
		return l.fail(err)
	}
	if _, err := l.bw.Write(payload); err != nil {
		return l.fail(err)
	}
	l.records++
	l.activeSeg.lastRec = l.records
	n := int64(len(hdr) + len(payload))
	l.activeSeg.bytes += n
	l.bytesSinceSnp += n
	l.dirty = true
	if l.syncerIdle {
		l.syncerIdle = false
		l.work.Signal()
	}
	if l.activeSeg.bytes >= l.opts.SegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

// rotateLocked seals the active segment (flush + fsync + close) and starts
// a new one. Sealed segments are immutable and become eligible for
// compaction once a snapshot covers them.
func (l *Log) rotateLocked() error {
	if err := l.sealActiveLocked(); err != nil {
		return err
	}
	l.sealed = append(l.sealed, l.activeSeg)
	return l.errTo(l.openSegment())
}

// sealActiveLocked flushes and syncs the active segment and closes it.
// Sealing is a durability point for every record the segment holds, so the
// durable watermark advances through the segment's last record.
func (l *Log) sealActiveLocked() error {
	if err := l.bw.Flush(); err != nil {
		return l.fail(err)
	}
	if err := l.active.Sync(); err != nil {
		return l.fail(err)
	}
	if err := l.active.Close(); err != nil {
		return l.fail(err)
	}
	if l.opts.Preallocate {
		// Trim the preallocated zero tail so sealed segments hold exactly
		// their records. Best-effort: an untrimmed tail only wastes disk.
		_ = l.fs.Truncate(l.activeSeg.path, l.activeSeg.bytes)
	}
	l.dirty = false
	if l.activeSeg.lastRec > l.durable {
		l.durable = l.activeSeg.lastRec
		l.synced.Broadcast()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the active segment — the
// inline durability point. Callers that enabled the pipelined sync stage
// (StartPipeline) normally use WaitDurable instead; Sync remains for
// maintenance ticks and drivers without a pipeline. With nothing appended
// since the last sync it is a no-op, so periodic maintenance syncs cost
// nothing on idle replicas.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if !l.dirty {
		return nil
	}
	return l.syncLocked()
}

// syncLocked flushes and fsyncs the active segment under l.mu, advancing
// the durable watermark. The inline (non-pipelined) sync path.
func (l *Log) syncLocked() error {
	target := l.records
	start := time.Now()
	if err := l.bw.Flush(); err != nil {
		return l.fail(err)
	}
	if err := vfs.DataSync(l.active); err != nil {
		return l.fail(err)
	}
	l.finishSyncLocked(target, time.Since(start))
	return nil
}

// finishSyncLocked records a completed sync that covers every record up to
// target: stats, the durable watermark, and the waiter wakeup.
func (l *Log) finishSyncLocked(target uint64, took time.Duration) {
	l.lastSync = took
	l.dirty = l.records > target // bytes may have landed during an unlocked sync
	l.syncs++
	if target > l.durable {
		l.durable = target
		l.synced.Broadcast()
	}
	if l.opts.OnSync != nil {
		l.opts.OnSync(took)
	}
}

// Durable returns the durability watermark: the index of the newest record
// a completed sync covers. Records() - Durable() is the pipeline's
// in-flight depth.
func (l *Log) Durable() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Err returns the log's health: the sticky write error once one has fired,
// ErrClosed after Close or Abandon, nil while the log accepts appends. The
// group-commit leader checks it after journaling a batch — a dead log
// rejects appends without advancing Records, so the durability watermark
// the leader captured would be vacuously satisfied and WaitDurable alone
// would let an unjournaled batch ack.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	return nil
}

// WaitDurable blocks until every record with index <= rec is on stable
// storage, the log's sticky error fires, or the log closes. With the
// pipelined sync stage running the wait ends when a covering sync
// completes; without it, WaitDurable issues the sync inline. It returns
// nil even on a closed log when rec was already durable — an ack whose
// covering sync completed is valid no matter what happened afterwards.
func (l *Log) WaitDurable(rec uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if rec <= l.durable {
			return nil
		}
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		if !l.pipelined {
			if err := l.syncLocked(); err != nil {
				return err
			}
			continue
		}
		l.synced.Wait()
	}
}

// StartPipeline launches the background sync stage: a per-log goroutine
// that flushes and fsyncs newly appended records outside the appenders'
// critical path, advancing the durability watermark WaitDurable blocks on.
// This is the pipelined group-commit protocol's second stage — appends
// publish under the caller's locks, syncs retire in the background, and
// acks release in order as the watermark passes them. Idempotent; the
// goroutine exits when the log closes or its sticky error fires.
func (l *Log) StartPipeline() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pipelined || l.closed || l.err != nil {
		return
	}
	l.pipelined = true
	l.syncerDone = make(chan struct{})
	go l.syncLoop()
}

// syncLoop is the pipelined sync stage. Each round: wait for unsynced
// records, optionally linger CoalesceWindow so near-simultaneous appends
// share the flush, then flush under the lock and fsync OUTSIDE it — the
// one disk wait in the hot path, paid without blocking appenders — and
// advance the durable watermark. A segment sealed mid-fsync is already
// durable through its own seal sync, so losing that race is success.
func (l *Log) syncLoop() {
	defer close(l.syncerDone)
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		for !l.closed && l.err == nil && l.durable >= l.records && !l.dirty {
			l.syncerIdle = true
			l.work.Wait()
		}
		l.syncerIdle = false
		if l.closed || l.err != nil {
			return
		}
		if w := l.opts.CoalesceWindow; w > 0 {
			l.mu.Unlock()
			time.Sleep(w)
			l.mu.Lock()
			if l.closed || l.err != nil {
				return
			}
		}
		target := l.records
		seg := l.activeSeg.firstRec
		if err := l.bw.Flush(); err != nil {
			l.fail(err)
			l.synced.Broadcast()
			return
		}
		f := l.active
		start := time.Now()
		l.mu.Unlock()
		err := vfs.DataSync(f)
		took := time.Since(start)
		l.mu.Lock()
		if err != nil {
			if l.closed {
				// Close/Abandon raced the fsync; they own the verdict.
				return
			}
			if l.activeSeg.firstRec == seg && l.err == nil {
				l.fail(err)
				l.synced.Broadcast()
				return
			}
			// The segment rotated under the fsync: its seal already synced
			// every record we were covering, so the error is just a stale
			// handle. The seal advanced the watermark; fall through.
			continue
		}
		l.pipeSyncs++
		l.finishSyncLocked(target, took)
	}
}

// Records returns the index of the newest appended record. Capture it under
// the same lock as the replica state it describes, then pass it to
// SaveSnapshot so compaction knows which records the snapshot subsumes.
func (l *Log) Records() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// SnapshotDue reports whether enough log has accumulated since the last
// snapshot (Options.SnapshotBytes) that the owner should capture replica
// state and call SaveSnapshot.
func (l *Log) SnapshotDue() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.closed && l.err == nil && l.bytesSinceSnp >= l.opts.SnapshotBytes && l.records > l.snapRec
}

// SaveSnapshot persists a full replica image — summary vector, store items,
// Lamport clock — captured when the log's record index was upToRec, then
// compacts: sealed segments whose records the snapshot subsumes are
// deleted. The snapshot is written to a temporary file, synced, and renamed
// over the previous one, so a crash mid-save leaves the old snapshot
// intact.
func (l *Log) SaveSnapshot(upToRec uint64, summary *vclock.Summary, items []store.Item, clock uint64) error {
	payload := encodeAdoptBody(putU64(append([]byte(nil), recSnapshot), upToRec), summary, items, clock)
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if upToRec < l.snapRec {
		return nil // an older capture raced a newer snapshot; keep the newer
	}
	tmp := filepath.Join(l.dir, snapshotTmp)
	f, err := l.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return l.fail(err)
	}
	_, werr := f.Write(frame[:])
	if werr == nil {
		_, werr = f.Write(payload)
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return l.fail(werr)
	}
	if err := l.fs.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		return l.fail(err)
	}
	if err := l.syncDirLocked(); err != nil {
		return l.fail(err)
	}
	l.snapRec = upToRec
	l.bytesSinceSnp = 0
	l.snapBytes += int64(len(payload) + len(frame))
	l.compactLocked()
	return nil
}

// compactLocked deletes sealed segments fully covered by the snapshot
// watermark. The active segment is never deleted — the path comparison is
// defence in depth against any future bookkeeping bug that would let a
// sealed entry alias the live segment file.
func (l *Log) compactLocked() {
	kept := l.sealed[:0]
	for _, seg := range l.sealed {
		if seg.lastRec <= l.snapRec && seg.path != l.activeSeg.path {
			l.fs.Remove(seg.path)
			continue
		}
		kept = append(kept, seg)
	}
	l.sealed = kept
}

// Close flushes, syncs and closes the log — a clean shutdown. Records
// buffered but never synced become durable here. The pipelined sync stage
// (if running) is stopped and joined; WaitDurable callers wake with the
// final verdict.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.err != nil {
		l.active.Close()
		err = l.err
	} else if err = l.sealActiveLocked(); err == nil {
		// The final seal made everything durable.
		if l.records > l.durable {
			l.durable = l.records
		}
	}
	l.work.Broadcast()
	l.synced.Broadcast()
	done := l.syncerDone
	l.mu.Unlock()
	if done != nil {
		<-done
	}
	return err
}

// Abandon closes the log WITHOUT flushing its user-space buffer — the
// SIGKILL simulation. Records appended since the last Sync (or buffer
// spill) are lost, exactly as a process crash would lose them; records
// synced before the crash survive. The chaos harness uses this to give the
// acked-write durability invariant real teeth. The pipelined sync stage is
// joined; WaitDurable callers past the watermark get ErrClosed.
func (l *Log) Abandon() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.active.Close()
	l.work.Broadcast()
	l.synced.Broadcast()
	done := l.syncerDone
	l.mu.Unlock()
	if done != nil {
		<-done
	}
}

// Stats returns a point-in-time observation of the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Segments:        len(l.sealed),
		Records:         l.records,
		SnapshotRecords: l.snapRec,
		Syncs:           l.syncs,
		SnapshotBytes:   l.snapBytes,
		DirSyncErrs:     l.dirSyncErrs,
		LastSync:        l.lastSync,
		DurableRecords:  l.durable,
		PipelineSyncs:   l.pipeSyncs,
	}
	for _, seg := range l.sealed {
		s.DiskBytes += seg.bytes
	}
	if !l.closed {
		s.Segments++
		s.DiskBytes += l.activeSeg.bytes
	}
	return s
}

// fail records the first unrecoverable IO error and returns it; every later
// operation returns the same error (sticky failure, no partial-write
// guessing).
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = fmt.Errorf("wal: %w", err)
	}
	return l.err
}

// errTo adopts err as the sticky failure if it is non-nil.
func (l *Log) errTo(err error) error {
	if err != nil {
		return l.fail(err)
	}
	return nil
}

// syncDirLocked fsyncs the log directory so entry creation/rename/removal
// is durable. On platforms (or filesystems) without directory fsync there
// is nothing to do and nothing wrong; a real failure is counted and
// returned — silently continuing would let an acked snapshot rename or
// segment creation evaporate in a crash.
func (l *Log) syncDirLocked() error {
	err := l.fs.SyncDir(l.dir)
	if err == nil || errors.Is(err, vfs.ErrDirSyncUnsupported) {
		return nil
	}
	l.dirSyncErrs++
	return fmt.Errorf("wal: dir sync: %w", err)
}

// readFrame decodes one framed record from raw, returning the payload and
// the remaining bytes. ok is false on a torn or corrupt frame. There is
// deliberately no record-size cap: whatever size was written (and possibly
// acknowledged) must be readable back, or durable records would silently
// become "corruption" on recovery. The payload is a subslice of raw, so a
// corrupt length field costs no allocation — it either exceeds the file
// (torn tail) or fails the checksum.
func readFrame(raw []byte) (payload, rest []byte, ok bool) {
	if len(raw) < 8 {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(raw[0:4])
	crc := binary.LittleEndian.Uint32(raw[4:8])
	if n == 0 {
		// A real record payload is never empty (it always carries a kind
		// byte), but the zero-filled tail of a preallocated segment decodes
		// as length 0 with a "valid" CRC32C (the empty checksum is 0).
		// Reject it as the torn end of the log.
		return nil, nil, false
	}
	if uint64(n) > uint64(len(raw)-8) {
		return nil, nil, false
	}
	payload = raw[8 : 8+n]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, nil, false
	}
	return payload, raw[8+n:], true
}

// --- payload encoding (fixed-width little-endian) ---

func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func putU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func putBytes(b, v []byte) []byte {
	b = putU32(b, uint32(len(v)))
	return append(b, v...)
}

func getU32(b []byte) (uint32, []byte, bool) {
	if len(b) < 4 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint32(b), b[4:], true
}

func getU64(b []byte) (uint64, []byte, bool) {
	if len(b) < 8 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint64(b), b[8:], true
}

func getBytes(b []byte) ([]byte, []byte, bool) {
	n, b, ok := getU32(b)
	if !ok || uint64(n) > uint64(len(b)) {
		return nil, nil, false
	}
	return b[:n], b[n:], true
}

// encodeEntry appends an entry record payload (kind byte included) to b.
func encodeEntry(b []byte, e wlog.Entry) []byte {
	b = append(b, recEntry)
	b = putU32(b, uint32(e.TS.Node))
	b = putU64(b, e.TS.Seq)
	b = putU64(b, e.Clock)
	b = putBytes(b, []byte(e.Key))
	b = putBytes(b, e.Value)
	return b
}

// decodeEntry parses an entry record body (kind byte already consumed).
// The returned entry owns fresh copies of key and value.
func decodeEntry(b []byte) (wlog.Entry, bool) {
	var e wlog.Entry
	node, b, ok := getU32(b)
	if !ok {
		return e, false
	}
	seq, b, ok := getU64(b)
	if !ok {
		return e, false
	}
	clock, b, ok := getU64(b)
	if !ok {
		return e, false
	}
	key, b, ok := getBytes(b)
	if !ok {
		return e, false
	}
	val, _, ok := getBytes(b)
	if !ok {
		return e, false
	}
	e.TS = vclock.Timestamp{Node: vclock.NodeID(int32(node)), Seq: seq}
	e.Clock = clock
	e.Key = string(key)
	if len(val) > 0 {
		e.Value = append([]byte(nil), val...)
	}
	return e, true
}

// encodeAdoptBody appends an adoption body (clock, summary pairs, items) to
// b; the caller has already appended the kind byte (and, for snapshots, the
// record-index watermark).
func encodeAdoptBody(b []byte, summary *vclock.Summary, items []store.Item, clock uint64) []byte {
	b = putU64(b, clock)
	b = putU32(b, uint32(summary.Len()))
	summary.ForEach(func(node vclock.NodeID, seq uint64) {
		b = putU32(b, uint32(node))
		b = putU64(b, seq)
	})
	b = putU32(b, uint32(len(items)))
	for _, it := range items {
		b = putBytes(b, []byte(it.Key))
		b = putBytes(b, it.Value)
		b = putU32(b, uint32(it.TS.Node))
		b = putU64(b, it.TS.Seq)
		b = putU64(b, it.Clock)
	}
	return b
}

// decodeAdoptBody parses an adoption body. Summary is nil when the record
// carried no pairs (content-only absorption).
func decodeAdoptBody(b []byte) (Adopt, bool) {
	var a Adopt
	clock, b, ok := getU64(b)
	if !ok {
		return a, false
	}
	a.Clock = clock
	nPairs, b, ok := getU32(b)
	if !ok {
		return a, false
	}
	var sum *vclock.Summary
	for i := uint32(0); i < nPairs; i++ {
		var node uint32
		var seq uint64
		if node, b, ok = getU32(b); !ok {
			return a, false
		}
		if seq, b, ok = getU64(b); !ok {
			return a, false
		}
		if sum == nil {
			sum = vclock.NewSummary()
		}
		sum.Advance(vclock.NodeID(int32(node)), seq)
	}
	a.Summary = sum
	nItems, b, ok := getU32(b)
	if !ok {
		return a, false
	}
	if nItems > 0 {
		a.Items = make([]store.Item, 0, minU32(nItems, 4096))
	}
	for i := uint32(0); i < nItems; i++ {
		var it store.Item
		var key, val []byte
		var node uint32
		if key, b, ok = getBytes(b); !ok {
			return a, false
		}
		if val, b, ok = getBytes(b); !ok {
			return a, false
		}
		if node, b, ok = getU32(b); !ok {
			return a, false
		}
		if it.TS.Seq, b, ok = getU64(b); !ok {
			return a, false
		}
		if it.Clock, b, ok = getU64(b); !ok {
			return a, false
		}
		it.TS.Node = vclock.NodeID(int32(node))
		it.Key = string(key)
		if len(val) > 0 {
			it.Value = append([]byte(nil), val...)
		}
		a.Items = append(a.Items, it)
	}
	return a, true
}

// minU32 bounds a decoded count before it becomes an allocation size.
func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Remove deletes a replica's entire WAL directory on fsys — the state-loss
// path (an empty-state restart must not resurrect old disk state). Pass the
// same FS the log ran on so injected filesystems drop their tracking too.
func Remove(fsys vfs.FS, dir string) error {
	if fsys == nil {
		fsys = vfs.OS
	}
	return fsys.RemoveAll(dir)
}

var _ io.Closer = (*Log)(nil)
