package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wlog"
)

// TestTornTailEveryByteOffset is the torn-tail property test: a synced
// segment truncated at EVERY byte offset inside its final record must
// always recover to the longest valid prefix — exactly the preceding
// entries, never an error, never a phantom. Entry sizes are randomized
// from a seed so the frame boundaries land differently every schedule.
func TestTornTailEveryByteOffset(t *testing.T) {
	const numEntries = 40
	rng := rand.New(rand.NewSource(99))
	entries := make([]wlog.Entry, numEntries)
	for i := range entries {
		val := make([]byte, 1+rng.Intn(400))
		rng.Read(val)
		e := wlog.Entry{Key: fmt.Sprintf("key-%03d", i), Value: val, Clock: uint64(i + 1)}
		e.TS.Node = 2
		e.TS.Seq = uint64(i + 1)
		entries[i] = e
	}

	// Write the schedule into a single synced segment.
	src := t.TempDir()
	l, _, err := Open(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entries); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // seals: flush + fsync
		t.Fatal(err)
	}
	segPath := filepath.Join(src, fmt.Sprintf("%s%016x%s", segPrefix, 1, segSuffix))
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	// Locate the final frame by walking the intact segment.
	frameStart := make([]int, 0, numEntries)
	rest := raw
	for len(rest) > 0 {
		frameStart = append(frameStart, len(raw)-len(rest))
		_, next, ok := readFrame(rest)
		if !ok {
			t.Fatalf("intact segment has a bad frame at offset %d", len(raw)-len(rest))
		}
		rest = next
	}
	if len(frameStart) != numEntries {
		t.Fatalf("segment holds %d frames, want %d", len(frameStart), numEntries)
	}
	last := frameStart[numEntries-1]

	// Every byte offset of the final record: from "frame fully gone" up to
	// "one byte short of complete".
	for cut := last; cut < len(raw); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segPath)), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: recovery errored: %v", cut, err)
		}
		var got []wlog.Entry
		for _, step := range rec.Steps {
			got = append(got, step.Entries...)
		}
		if len(got) != numEntries-1 {
			t.Fatalf("cut at %d: recovered %d entries, want %d (longest valid prefix)",
				cut, len(got), numEntries-1)
		}
		for i, g := range got {
			w := entries[i]
			if g.TS != w.TS || g.Key != w.Key || string(g.Value) != string(w.Value) {
				t.Fatalf("cut at %d: entry %d corrupt: got ts=%v key=%q", cut, i, g.TS, g.Key)
			}
		}
		l2.Close()
	}
}
