package wal

import (
	"errors"
	"syscall"
	"testing"

	"repro/internal/vfs"
	"repro/internal/wlog"
)

// TestDirSyncErrorCountedAndReturned pins the syncDir contract: a real
// directory-fsync failure is counted in Stats and returned (sticky), not
// silently swallowed — an unsynced rename is a snapshot that may not exist
// after a crash.
func TestDirSyncErrorCountedAndReturned(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.OS, 3)
	l, _, err := Open(t.TempDir(), Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]wlog.Entry{entry(1, 1, "k", "v", 1)}); err != nil {
		t.Fatal(err)
	}
	ffs.FailNextDirSyncs("", 1)
	err = l.SaveSnapshot(l.Records(), nil, nil, 1)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("SaveSnapshot swallowed the dir-sync failure: %v", err)
	}
	if got := l.Stats().DirSyncErrs; got != 1 {
		t.Fatalf("DirSyncErrs = %d, want 1", got)
	}
	// The failure is sticky: durability state is in doubt, nothing more may
	// be acked through this log.
	if err := l.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("log kept going after a dir-sync failure: %v", err)
	}
}

// TestDirSyncUnsupportedIsNotAnError pins the other half: platforms whose
// filesystems reject directory fsync (ErrDirSyncUnsupported) are a no-op,
// not a failure and not a counted error.
func TestDirSyncUnsupportedIsNotAnError(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{FS: unsupportedDirSyncFS{vfs.OS}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]wlog.Entry{entry(1, 1, "k", "v", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.SaveSnapshot(l.Records(), nil, nil, 1); err != nil {
		t.Fatalf("unsupported dir sync treated as failure: %v", err)
	}
	if got := l.Stats().DirSyncErrs; got != 0 {
		t.Fatalf("DirSyncErrs = %d, want 0", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// unsupportedDirSyncFS mimics a filesystem without directory fsync.
type unsupportedDirSyncFS struct{ vfs.FS }

func (unsupportedDirSyncFS) SyncDir(string) error { return vfs.ErrDirSyncUnsupported }
