package wal

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/vfs"
	"repro/internal/wlog"
)

// Tests for the pipelined sync stage: StartPipeline / WaitDurable /
// Durable semantics, segment preallocation recovery, and a crash-point
// sweep of the pipelined path mirroring the inline checker.

func TestPipelineWaitDurable(t *testing.T) {
	l, rec, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatal("fresh dir recovered state")
	}
	l.StartPipeline()
	for i := 1; i <= 10; i++ {
		if err := l.Append([]wlog.Entry{entry(1, uint64(i), fmt.Sprintf("k%d", i), "v", uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	target := l.Records()
	if target != 10 {
		t.Fatalf("Records = %d, want 10", target)
	}
	if err := l.WaitDurable(target); err != nil {
		t.Fatal(err)
	}
	if d := l.Durable(); d < target {
		t.Fatalf("Durable = %d after WaitDurable(%d)", d, target)
	}
	st := l.Stats()
	if st.DurableRecords < 10 {
		t.Fatalf("Stats.DurableRecords = %d, want >= 10", st.DurableRecords)
	}
	if st.PipelineSyncs == 0 {
		t.Fatal("Stats.PipelineSyncs = 0 — the sync stage never retired a sync")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The records must actually be on disk.
	_, rec2, err := Open(l.dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(collectEntries(rec2)); got != 10 {
		t.Fatalf("recovered %d entries, want 10", got)
	}
}

// TestWaitDurableInlineFallback pins that WaitDurable works without
// StartPipeline: it issues the covering sync itself.
func TestWaitDurableInlineFallback(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]wlog.Entry{entry(1, 1, "a", "1", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(l.Records()); err != nil {
		t.Fatal(err)
	}
	if l.Durable() != l.Records() {
		t.Fatalf("Durable = %d, Records = %d", l.Durable(), l.Records())
	}
}

// TestPipelineStickyErrorFailsWaiters pins the fail-stop half of the
// protocol: once the sync stage hits a disk error, WaitDurable fails for
// every uncovered record — but still succeeds for records a completed
// sync already covers (an ack whose covering sync completed stays valid).
func TestPipelineStickyErrorFailsWaiters(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.OS, 21)
	l, _, err := Open(t.TempDir(), Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	l.StartPipeline()
	if err := l.Append([]wlog.Entry{entry(1, 1, "good", "v", 1)}); err != nil {
		t.Fatal(err)
	}
	covered := l.Records()
	if err := l.WaitDurable(covered); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncs("")
	if err := l.Append([]wlog.Entry{entry(1, 2, "doomed", "v", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(l.Records()); err == nil {
		t.Fatal("WaitDurable succeeded although the covering sync failed")
	}
	if err := l.WaitDurable(covered); err != nil {
		t.Fatalf("already-durable record invalidated by a later sync failure: %v", err)
	}
	l.Abandon()
	if err := l.WaitDurable(covered); err != nil {
		t.Fatalf("already-durable record invalidated by Abandon: %v", err)
	}
}

// TestWaitDurableAfterAbandon pins that Abandon fails uncovered waiters
// instead of leaving them parked.
func TestWaitDurableAfterAbandon(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.StartPipeline()
	// Stall the pipeline by abandoning before any sync can be guaranteed;
	// a waiter arriving afterwards must fail fast, not hang.
	l.Abandon()
	if err := l.Append([]wlog.Entry{entry(1, 1, "late", "v", 1)}); err == nil {
		t.Fatal("Append succeeded on an abandoned log")
	}
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(l.Records() + 1) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("WaitDurable(uncovered) returned nil on an abandoned log")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurable hung on an abandoned log")
	}
}

// TestPreallocatedSegmentRecovery pins recovery over preallocated
// segments: the zero-filled tail beyond the written bytes must read as a
// clean end of log (CRC32C of an empty payload is 0, so a length-0 frame
// would otherwise parse as an endless run of valid empty records), across
// segment rotation and an unclean shutdown.
func TestPreallocatedSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Preallocate: true, SegmentBytes: 8 << 10}
	l, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	l.StartPipeline()
	const n = 64 // ~300B per entry: spans several 8 KiB segments
	for i := 1; i <= n; i++ {
		e := entry(1, uint64(i), fmt.Sprintf("key%04d", i), string(make([]byte, 256)), uint64(i))
		if err := l.Append([]wlog.Entry{e}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitDurable(l.Records()); err != nil {
		t.Fatal(err)
	}
	// Unclean shutdown: the active segment keeps its preallocated tail.
	l.Abandon()

	l2, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("recovery over preallocated segments: %v", err)
	}
	defer l2.Close()
	got := collectEntries(rec)
	if len(got) != n {
		t.Fatalf("recovered %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		if e.TS.Seq != uint64(i+1) {
			t.Fatalf("entry %d out of order: seq %d", i, e.TS.Seq)
		}
	}
}

// TestCrashPointEveryPipelinedBoundary is the crash-point checker run
// against the pipelined path with preallocated segments: acks are
// WaitDurable returns instead of inline Sync calls, power cuts strike
// after every acked boundary, and recovery must still yield an exact
// prefix of the append order covering every acked write. The inline
// checker (crashpoint_test.go) stays byte-identical to the seed; this one
// proves the new write path meets the same contract.
func TestCrashPointEveryPipelinedBoundary(t *testing.T) {
	const numAppends = 400
	sc := buildCrashSchedule(11, numAppends)
	const segBytes = 64 << 10
	var totalDropped int64
	root := t.TempDir()
	for b := 0; b < len(sc.batches); b++ {
		b := b
		t.Run(fmt.Sprintf("boundary-%03d", b), func(t *testing.T) {
			ffs := vfs.NewFaultFS(vfs.OS, int64(3000+b))
			dir := filepath.Join(root, fmt.Sprintf("cut%03d", b))
			opts := Options{SegmentBytes: segBytes, FS: ffs, Preallocate: true}
			l, rec, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !rec.Empty() {
				t.Fatal("fresh dir not empty")
			}
			l.StartPipeline()
			for i := 0; i <= b; i++ {
				if err := l.Append(sc.batches[i]); err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
			}
			// The ack for boundary b: every record through it is covered by
			// a completed pipelined sync.
			if err := l.WaitDurable(l.Records()); err != nil {
				t.Fatalf("WaitDurable at boundary %d: %v", b, err)
			}
			// The disk stops syncing: tail batches may still be written (the
			// background sync stage flushes them) but can never become
			// durable — at-risk bytes by construction. Appends start failing
			// once the sync stage's sticky error fires; how much tail landed
			// is injector timing, which the prefix assertions absorb.
			ffs.FailSyncs("")
			for i := b + 1; i < len(sc.batches); i++ {
				if err := l.Append(sc.batches[i]); err != nil {
					break
				}
			}
			synced := sc.appendsThrough(b)

			l.Abandon()
			_, dropped := ffs.Cut("")
			totalDropped += dropped
			ffs.Heal("") // the replacement disk syncs again

			l2, rec2, err := Open(dir, opts)
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer l2.Close()
			var got []wlog.Entry
			for _, step := range rec2.Steps {
				if step.Adopt != nil {
					t.Fatal("phantom adopt record recovered")
				}
				got = append(got, step.Entries...)
			}
			if len(got) < synced {
				t.Fatalf("AT-RISK ACKED WRITES: recovered %d entries, %d were acked", len(got), synced)
			}
			if len(got) > numAppends {
				t.Fatalf("recovered %d entries, schedule only had %d", len(got), numAppends)
			}
			want := sc.entries(len(got))
			for i := range got {
				w, g := want[i], got[i]
				if g.TS != w.TS || g.Key != w.Key || g.Clock != w.Clock || string(g.Value) != string(w.Value) {
					t.Fatalf("recovered entry %d diverges: got ts=%v key=%q, want ts=%v key=%q",
						i, g.TS, g.Key, w.TS, w.Key)
				}
			}
		})
	}
	if totalDropped == 0 {
		t.Fatal("no cut dropped any bytes — the harness has lost its teeth")
	}
	t.Logf("cuts dropped %d bytes total", totalDropped)
}

// TestPipelineCoalesceWindow pins that a coalescing window delays but
// never starves durability, and that back-to-back appends inside the
// window share syncs.
func TestPipelineCoalesceWindow(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{CoalesceWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.StartPipeline()
	for i := 1; i <= 20; i++ {
		if err := l.Append([]wlog.Entry{entry(1, uint64(i), fmt.Sprintf("k%d", i), "v", uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitDurable(l.Records()); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Syncs >= 20 {
		t.Fatalf("20 appends inside a coalescing window cost %d syncs — nothing coalesced", st.Syncs)
	}
}
