package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/wlog"
)

func entry(node int32, seq uint64, key, val string, clock uint64) wlog.Entry {
	return wlog.Entry{
		TS:    vclock.Timestamp{Node: vclock.NodeID(node), Seq: seq},
		Key:   key,
		Value: []byte(val),
		Clock: clock,
	}
}

// collectEntries flattens a recovery's entry steps.
func collectEntries(rec *Recovery) []wlog.Entry {
	var out []wlog.Entry
	for _, s := range rec.Steps {
		out = append(out, s.Entries...)
	}
	return out
}

func TestAppendSyncReopen(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	want := []wlog.Entry{
		entry(0, 1, "a", "1", 1),
		entry(0, 2, "b", "2", 2),
		entry(3, 1, "c", "3", 5),
	}
	if err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collectEntries(rec2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].TS != want[i].TS || got[i].Key != want[i].Key ||
			string(got[i].Value) != string(want[i].Value) || got[i].Clock != want[i].Clock {
			t.Fatalf("entry %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAppendDeduplicates(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := entry(1, 1, "k", "v", 1)
	if err := l.Append([]wlog.Entry{e}); err != nil {
		t.Fatal(err)
	}
	// Same entry again (a replayed offer) must not duplicate on disk.
	if err := l.Append([]wlog.Entry{e}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := collectEntries(rec); len(got) != 1 {
		t.Fatalf("recovered %d entries, want 1 (dedupe)", len(got))
	}
}

func TestAbandonLosesUnsyncedKeepsSynced(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	durable := entry(0, 1, "durable", "yes", 1)
	if err := l.Append([]wlog.Entry{durable}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Buffered but never synced: the SIGKILL victim.
	if err := l.Append([]wlog.Entry{entry(0, 2, "volatile", "no", 2)}); err != nil {
		t.Fatal(err)
	}
	l.Abandon()

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectEntries(rec)
	if len(got) != 1 || got[0].Key != "durable" {
		t.Fatalf("recovered %v, want exactly the synced entry", got)
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]wlog.Entry{entry(0, 1, "ok", "1", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage half-frame to the segment: a crash mid-write.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) == 0 {
		t.Fatal("no segment written")
	}
	f, err := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var torn [8]byte
	binary.LittleEndian.PutUint32(torn[0:4], 100) // claims 100 bytes, delivers none
	f.Write(torn[:])
	f.Close()

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectEntries(rec)
	if len(got) != 1 || got[0].Key != "ok" {
		t.Fatalf("recovered %v, want the intact prefix", got)
	}
}

func TestCorruptRecordEndsSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]wlog.Entry{entry(0, 1, "a", "1", 1), entry(0, 2, "b", "2", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit of the second record: its CRC must reject it.
	n := binary.LittleEndian.Uint32(raw[0:4])
	second := 8 + int(n)
	raw[second+8] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectEntries(rec)
	if len(got) != 1 || got[0].Key != "a" {
		t.Fatalf("recovered %v, want only the record before the corruption", got)
	}
}

func TestRotationAndStats(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if err := l.Append([]wlog.Entry{entry(0, i, "key", "0123456789abcdef", i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("got %d segments, want rotation to have produced several", st.Segments)
	}
	if st.Records != 20 {
		t.Fatalf("got %d records, want 20", st.Records)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if got := collectEntries(rec); len(got) != 20 {
		t.Fatalf("recovered %d entries across segments, want 20", len(got))
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	sum := vclock.NewSummary()
	for i := uint64(1); i <= 20; i++ {
		e := entry(0, i, "key", "0123456789abcdef", i)
		if err := l.Append([]wlog.Entry{e}); err != nil {
			t.Fatal(err)
		}
		sum.Advance(0, i)
	}
	before := l.Stats()
	items := []store.Item{{Key: "key", Value: []byte("0123456789abcdef"),
		TS: vclock.Timestamp{Node: 0, Seq: 20}, Clock: 20}}
	if err := l.SaveSnapshot(l.Records(), sum, items, 20); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("compaction kept %d segments (was %d)", after.Segments, before.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery now comes from the snapshot; entries are deduped against it.
	_, rec, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || rec.Snapshot.Get(0) != 20 {
		t.Fatalf("snapshot summary not recovered: %v", rec.Snapshot)
	}
	if len(rec.Items) != 1 || rec.Items[0].Key != "key" {
		t.Fatalf("snapshot items not recovered: %v", rec.Items)
	}
	if rec.Clock != 20 {
		t.Fatalf("clock %d, want 20", rec.Clock)
	}
}

func TestAdoptRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := vclock.NewSummary()
	sum.Advance(2, 7)
	items := []store.Item{
		{Key: "x", Value: []byte("vx"), TS: vclock.Timestamp{Node: 2, Seq: 7}, Clock: 9},
		{Key: "y", Value: nil, TS: vclock.Timestamp{Node: 1, Seq: 3}, Clock: 4},
	}
	if err := l.AppendAdopt(sum, items, 9); err != nil {
		t.Fatal(err)
	}
	// Content-only absorption: nil summary.
	if err := l.AppendAdopt(nil, items[:1], 11); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(rec.Steps))
	}
	a := rec.Steps[0].Adopt
	if a == nil || a.Summary.Get(2) != 7 || len(a.Items) != 2 || a.Clock != 9 {
		t.Fatalf("adopt step mangled: %+v", a)
	}
	if a.Items[0].Key != "x" || string(a.Items[0].Value) != "vx" || a.Items[0].Clock != 9 {
		t.Fatalf("adopt item mangled: %+v", a.Items[0])
	}
	b := rec.Steps[1].Adopt
	if b == nil || b.Summary != nil || len(b.Items) != 1 || b.Clock != 11 {
		t.Fatalf("content-only adopt mangled: %+v", b)
	}
}

func TestEntriesAfterAdoptSurvive(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := vclock.NewSummary()
	sum.Advance(0, 5)
	if err := l.AppendAdopt(sum, nil, 5); err != nil {
		t.Fatal(err)
	}
	// Appends below the adopted coverage are deduped; above it, retained.
	if err := l.Append([]wlog.Entry{entry(0, 4, "old", "x", 4), entry(0, 6, "new", "y", 6)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectEntries(rec)
	if len(got) != 1 || got[0].Key != "new" {
		t.Fatalf("recovered %v, want only the entry above adopted coverage", got)
	}
}

func TestClosedOperationsFail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]wlog.Entry{entry(0, 1, "k", "v", 1)}); err != ErrClosed {
		t.Fatalf("Append on closed log: %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync on closed log: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestSnapshotDue(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SnapshotBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.SnapshotDue() {
		t.Fatal("fresh log reports snapshot due")
	}
	for i := uint64(1); i <= 4; i++ {
		if err := l.Append([]wlog.Entry{entry(0, i, "key", "0123456789abcdef", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !l.SnapshotDue() {
		t.Fatal("snapshot not due after exceeding SnapshotBytes")
	}
	sum := vclock.NewSummary()
	sum.Advance(0, 4)
	if err := l.SaveSnapshot(l.Records(), sum, nil, 4); err != nil {
		t.Fatal(err)
	}
	if l.SnapshotDue() {
		t.Fatal("snapshot still due right after SaveSnapshot")
	}
}

func TestStaleSnapshotCaptureIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	sum := vclock.NewSummary()
	sum.Advance(0, 2)
	if err := l.Append([]wlog.Entry{entry(0, 1, "a", "1", 1), entry(0, 2, "b", "2", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := l.SaveSnapshot(l.Records(), sum, nil, 2); err != nil {
		t.Fatal(err)
	}
	older := vclock.NewSummary()
	older.Advance(0, 1)
	// A capture from before the saved snapshot must not regress the
	// watermark.
	if err := l.SaveSnapshot(1, older, nil, 1); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.SnapshotRecords != 2 {
		t.Fatalf("snapshot watermark regressed to %d", st.SnapshotRecords)
	}
}

func TestRemove(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "n0")
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]wlog.Entry{entry(0, 1, "k", "v", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Remove(nil, dir); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("state survived Remove: %+v", rec)
	}
}

// TestCrashAfterRotationKeepsSyncedRecords reproduces the empty-segment
// filename-reuse hazard: a crash right after a rotation leaves a
// zero-record segment whose name the next incarnation reuses for its
// active segment. Recovery must not keep a stale sealed entry for that
// path, or a later snapshot compaction unlinks the LIVE segment and
// silently discards synced (acknowledged) records.
func TestCrashAfterRotationKeepsSyncedRecords(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes 1: every record seals its segment, so the active
	// segment is always freshly rotated and empty.
	l, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]wlog.Entry{entry(0, 1, "a", "1", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Abandon() // crash with an empty just-rotated active segment on disk

	l2, rec, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := collectEntries(rec); len(got) != 1 {
		t.Fatalf("recovered %d entries, want 1", len(got))
	}
	// Write and sync a record, snapshot the OLD coverage (so compaction
	// runs), then write another.
	if err := l2.Append([]wlog.Entry{entry(0, 2, "b", "2", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	old := vclock.NewSummary()
	old.Advance(0, 1)
	if err := l2.SaveSnapshot(1, old, nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]wlog.Entry{entry(0, 3, "c", "3", 3)}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	l2.Abandon()

	_, rec3, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqs := map[uint64]bool{}
	if rec3.Snapshot != nil {
		rec3.Snapshot.ForEach(func(n vclock.NodeID, s uint64) {
			for i := uint64(1); i <= s; i++ {
				seqs[i] = true
			}
		})
	}
	for _, e := range collectEntries(rec3) {
		seqs[e.TS.Seq] = true
	}
	for want := uint64(1); want <= 3; want++ {
		if !seqs[want] {
			t.Fatalf("synced (acked) record seq %d lost after crash recovery", want)
		}
	}
}

// TestSyncIdleIsNoOp pins the maintenance-tick economics: Sync with
// nothing appended since the last sync must not touch the disk.
func TestSyncIdleIsNoOp(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]wlog.Entry{entry(0, 1, "k", "v", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Stats().Syncs; got != 1 {
		t.Fatalf("idle syncs hit the disk: %d real syncs, want 1", got)
	}
	// New appends re-arm the durability point.
	if err := l.Append([]wlog.Entry{entry(0, 2, "k", "v2", 2)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Syncs; got != 2 {
		t.Fatalf("dirty sync skipped: %d real syncs, want 2", got)
	}
}
