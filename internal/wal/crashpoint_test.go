package wal

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
	"repro/internal/wlog"
)

// This file is the exhaustive crash-point checker: it records an append
// schedule of over a thousand writes, then — for EVERY sync boundary in
// that schedule — replays the schedule up to the boundary on a fresh
// FaultFS, appends the next batch unsynced, cuts power (an injector-chosen
// suffix of the unsynced bytes evaporates, possibly mid-record), and
// asserts recovery returns an exact prefix of the append order that covers
// every synced ("acked") write. One violation in either direction is fatal:
// a lost synced write breaks the durability contract behind every client
// ack, and a recovered phantom or reordering breaks replay idempotence.

// crashSchedule is a recorded append schedule: batches of entries with a
// sync boundary after each batch. Built deterministically from a seed so
// every crash point replays byte-identical history.
type crashSchedule struct {
	batches [][]wlog.Entry
}

// buildCrashSchedule records numAppends single-origin entries carved into
// variable-size batches (batch length cycles through a coprime-ish pattern
// so boundaries land at many different byte offsets), each batch followed
// by a sync boundary. Values are 200–400 bytes so batches overflow the
// WAL's 64 KiB buffer at irregular points and a cut always has real
// unsynced bytes to bite.
func buildCrashSchedule(seed int64, numAppends int) crashSchedule {
	rng := rand.New(rand.NewSource(seed))
	var sc crashSchedule
	var batch []wlog.Entry
	seq, size := uint64(0), 0
	for int(seq) < numAppends {
		seq++
		val := make([]byte, 200+rng.Intn(201))
		rng.Read(val)
		e := wlog.Entry{Key: fmt.Sprintf("k%05d", seq), Value: val, Clock: seq}
		e.TS.Node = 1
		e.TS.Seq = seq
		batch = append(batch, e)
		if size = (size + 1) % 13; len(batch) > size {
			sc.batches = append(sc.batches, batch)
			batch = nil
		}
	}
	if len(batch) > 0 {
		sc.batches = append(sc.batches, batch)
	}
	return sc
}

// appendsThrough counts scheduled entries in batches [0, b].
func (sc crashSchedule) appendsThrough(b int) int {
	n := 0
	for i := 0; i <= b; i++ {
		n += len(sc.batches[i])
	}
	return n
}

// entries flattens the first n scheduled entries.
func (sc crashSchedule) entries(n int) []wlog.Entry {
	out := make([]wlog.Entry, 0, n)
	for _, b := range sc.batches {
		for _, e := range b {
			if len(out) == n {
				return out
			}
			out = append(out, e)
		}
	}
	return out
}

// TestCrashPointEverySyncBoundary is the exhaustive checker. For a
// >=1000-append schedule it cuts power at every one of its sync
// boundaries and proves recovery yields the exact synced prefix — zero
// at-risk acked writes, zero phantoms, zero reordering.
func TestCrashPointEverySyncBoundary(t *testing.T) {
	const numAppends = 1100
	sc := buildCrashSchedule(7, numAppends)
	if got := sc.appendsThrough(len(sc.batches) - 1); got != numAppends {
		t.Fatalf("schedule holds %d appends, want %d", got, numAppends)
	}
	t.Logf("schedule: %d appends, %d sync boundaries", numAppends, len(sc.batches))

	// Segments (256 KiB) deliberately outgrow the WAL's 64 KiB write buffer:
	// within a segment the buffer auto-flushes unsynced bytes to the
	// filesystem, so the cut has a real torn tail to bite, at arbitrary —
	// often mid-record — byte offsets.
	const segBytes = 256 << 10
	var totalDropped int64
	root := t.TempDir()
	for b := 0; b < len(sc.batches); b++ {
		b := b
		t.Run(fmt.Sprintf("boundary-%03d", b), func(t *testing.T) {
			ffs := vfs.NewFaultFS(vfs.OS, int64(1000+b))
			dir := filepath.Join(root, fmt.Sprintf("cut%03d", b))
			l, rec, err := Open(dir, Options{SegmentBytes: segBytes, FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			if !rec.Empty() {
				t.Fatal("fresh dir not empty")
			}
			// Replay the recorded schedule through boundary b: every batch
			// appended, every boundary at or before b synced ("acked").
			for i := 0; i <= b; i++ {
				if err := l.Append(sc.batches[i]); err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
				if err := l.Sync(); err != nil {
					t.Fatalf("sync %d: %v", i, err)
				}
			}
			// Every remaining batch lands in the buffer/page cache, never
			// synced: at-risk by construction, fair game for the cut.
			for i := b + 1; i < len(sc.batches); i++ {
				if err := l.Append(sc.batches[i]); err != nil {
					t.Fatalf("unsynced tail: %v", err)
				}
			}
			synced := sc.appendsThrough(b)

			// Power fails: the process image vanishes (Abandon) and an
			// injector-chosen suffix of unsynced bytes never hit the platter.
			l.Abandon()
			_, dropped := ffs.Cut("")
			totalDropped += dropped

			l2, rec2, err := Open(dir, Options{SegmentBytes: segBytes, FS: ffs})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer l2.Close()
			var got []wlog.Entry
			for _, step := range rec2.Steps {
				if step.Adopt != nil {
					t.Fatal("phantom adopt record recovered")
				}
				got = append(got, step.Entries...)
			}
			if len(got) < synced {
				t.Fatalf("AT-RISK ACKED WRITES: recovered %d entries, %d were synced", len(got), synced)
			}
			if len(got) > numAppends {
				t.Fatalf("recovered %d entries, schedule only had %d", len(got), numAppends)
			}
			want := sc.entries(len(got))
			for i := range got {
				w, g := want[i], got[i]
				if g.TS != w.TS || g.Key != w.Key || g.Clock != w.Clock || string(g.Value) != string(w.Value) {
					t.Fatalf("recovered entry %d diverges from append order: got ts=%v key=%q, want ts=%v key=%q",
						i, g.TS, g.Key, w.TS, w.Key)
				}
			}
		})
	}
	// Sanity: a checker whose cuts never destroy anything proves nothing.
	if totalDropped == 0 {
		t.Fatal("no cut dropped any bytes — the harness has lost its teeth")
	}
	t.Logf("cuts dropped %d bytes total", totalDropped)
}
