package workload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeSessionTarget is a fakeTarget that opens sessions whose leveled
// reads carry a per-level artificial delay — the fixture for the
// per-level latency split.
type fakeSessionTarget struct {
	mu    sync.Mutex
	kv    map[string][]byte
	delay [NumLevels]time.Duration

	sessions int
	reads    [NumLevels]int
	writes   int
}

func newFakeSessionTarget() *fakeSessionTarget {
	return &fakeSessionTarget{kv: make(map[string][]byte)}
}

func (f *fakeSessionTarget) Write(key string, value []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.kv[key] = append([]byte(nil), value...)
	f.writes++
	return nil
}

func (f *fakeSessionTarget) Read(key string) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads[LevelEventual]++
	v, ok := f.kv[key]
	return v, ok, nil
}

func (f *fakeSessionTarget) NewSession() Session {
	f.mu.Lock()
	f.sessions++
	f.mu.Unlock()
	return &fakeSession{t: f}
}

type fakeSession struct{ t *fakeSessionTarget }

func (s *fakeSession) Write(key string, value []byte) error {
	return s.t.Write(key, value)
}

func (s *fakeSession) Read(key string, lvl Level) ([]byte, bool, error) {
	s.t.mu.Lock()
	d := s.t.delay[lvl]
	s.t.reads[lvl]++
	v, ok := s.t.kv[key]
	s.t.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return v, ok, nil
}

func TestLeveledMixSplitsAcrossLevels(t *testing.T) {
	target := newFakeSessionTarget()
	res := Run(context.Background(), Config{
		Workers: 4, Ops: 2000, ReadFraction: 0.8, Seed: 5,
		SessionReads: 0.3, BoundedReads: 0.2, StrongReads: 0.1,
	}, target)

	if target.sessions != 4 {
		t.Fatalf("opened %d sessions, want one per worker (4)", target.sessions)
	}
	total := 0
	for lvl := 0; lvl < NumLevels; lvl++ {
		total += res.ReadsByLevel[lvl]
		if res.ReadsByLevel[lvl] == 0 {
			t.Errorf("level %v issued zero reads", Level(lvl))
		}
		if got := res.ReadLatencyAt(Level(lvl)).N(); got != res.ReadsByLevel[lvl] {
			t.Errorf("level %v: %d latency samples for %d reads", Level(lvl), got, res.ReadsByLevel[lvl])
		}
	}
	if total != res.Reads {
		t.Errorf("per-level reads sum to %d, want Reads=%d", total, res.Reads)
	}
	// The mix roughly follows the configured fractions (generous bounds —
	// the draw is per-op random).
	frac := float64(res.ReadsByLevel[LevelSession]) / float64(res.Reads)
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("session read fraction %.2f far from configured 0.3", frac)
	}
}

// TestReadPercentilesSplitPerLevel is the regression test for the
// read-percentile lumping fix: a mixed run whose session reads are slow
// must show that slowness in the session sample, not smeared into the
// eventual sample.
func TestReadPercentilesSplitPerLevel(t *testing.T) {
	target := newFakeSessionTarget()
	target.delay[LevelSession] = 3 * time.Millisecond
	res := Run(context.Background(), Config{
		Workers: 4, Ops: 800, ReadFraction: 0.9, Seed: 7,
		SessionReads: 0.5,
	}, target)

	sess := res.ReadLatencyAt(LevelSession)
	ev := res.ReadLatencyAt(LevelEventual)
	if sess.N() == 0 || ev.N() == 0 {
		t.Fatalf("mixed run issued (%d session, %d eventual) reads", sess.N(), ev.N())
	}
	if sess.Median() < 2.5 {
		t.Errorf("session median %.3fms does not reflect the 3ms wait", sess.Median())
	}
	if ev.Median() > 1.0 {
		t.Errorf("eventual median %.3fms polluted by session waits", ev.Median())
	}
	// The aggregate lumps both — precisely why the split exists.
	if agg := res.ReadLatency.N(); agg != sess.N()+ev.N() {
		t.Errorf("aggregate holds %d samples, want %d", agg, sess.N()+ev.N())
	}
}

func TestLeveledMixDegradesWithoutSessions(t *testing.T) {
	// A plain Target cannot open sessions: the leveled fractions must
	// silently degrade to eventual reads, not fail.
	target := newFakeTarget()
	res := Run(context.Background(), Config{
		Workers: 2, Ops: 400, ReadFraction: 0.5, Seed: 9,
		SessionReads: 0.5, StrongReads: 0.5,
	}, target)
	if res.Errors != 0 {
		t.Fatalf("degraded run errored %d times", res.Errors)
	}
	if res.ReadsByLevel[LevelEventual] != res.Reads {
		t.Errorf("degraded run issued non-eventual reads: %v", res.ReadsByLevel)
	}
}

func TestProgressCountsReadsByLevel(t *testing.T) {
	target := newFakeSessionTarget()
	var prog Progress
	res := Run(context.Background(), Config{
		Workers: 2, Ops: 600, ReadFraction: 0.8, Seed: 11,
		SessionReads: 0.4, Progress: &prog,
	}, target)

	var sum int64
	for lvl := 0; lvl < NumLevels; lvl++ {
		got := prog.ReadsByLevel[lvl].Load()
		if int(got) != res.ReadsByLevel[lvl] {
			t.Errorf("level %v: progress %d != result %d", Level(lvl), got, res.ReadsByLevel[lvl])
		}
		sum += got
	}
	if sum != prog.Reads.Load() {
		t.Errorf("per-level progress sums to %d, want Reads=%d", sum, prog.Reads.Load())
	}
}

// notFreshFake sheds leveled reads with a hinted rejection until a retry
// arrives, proving read retries flow through the same budget as write
// sheds.
type notFreshFake struct {
	fakeSessionTarget
	mu      sync.Mutex
	pending map[string]int
}

type hintedErr struct{ after time.Duration }

func (e *hintedErr) Error() string                 { return "not fresh" }
func (e *hintedErr) RetryAfterHint() time.Duration { return e.after }

func (f *notFreshFake) NewSession() Session { return &notFreshSession{t: f} }

type notFreshSession struct{ t *notFreshFake }

func (s *notFreshSession) Write(key string, value []byte) error {
	return s.t.fakeSessionTarget.Write(key, value)
}

func (s *notFreshSession) Read(key string, lvl Level) ([]byte, bool, error) {
	s.t.mu.Lock()
	if s.t.pending == nil {
		s.t.pending = make(map[string]int)
	}
	first := s.t.pending[key] == 0
	s.t.pending[key]++
	s.t.mu.Unlock()
	if first && lvl == LevelSession {
		return nil, false, &hintedErr{after: time.Millisecond}
	}
	return s.t.fakeSessionTarget.Read(key)
}

func TestNotFreshReadsRetry(t *testing.T) {
	target := &notFreshFake{fakeSessionTarget: *newFakeSessionTarget()}
	res := Run(context.Background(), Config{
		Workers: 1, Ops: 50, ReadFraction: 1, Keys: 8, Seed: 13,
		SessionReads: 1, RetryBudget: 2, RetryBase: time.Millisecond,
	}, target)
	if res.Sheds == 0 || res.Retries == 0 {
		t.Fatalf("hinted read rejections produced (%d sheds, %d retries), want both > 0", res.Sheds, res.Retries)
	}
	if res.Errors != 0 {
		t.Errorf("retryable sheds leaked %d errors", res.Errors)
	}
	_ = errors.Is // keep the import pattern uniform with workload_test.go
}
