// Package workload drives a replicated keyspace with synthetic client
// traffic and measures what the ROADMAP's production framing cares about:
// throughput and tail latency. The default generator is closed-loop — a
// fixed pool of workers each issue one op, wait for it, record its
// latency, and issue the next — so measured latency includes every
// queueing effect the serving path has, and offered load adapts to what
// the target sustains.
//
// Closed-loop load can never demonstrate overload: when the target slows,
// the workers slow with it, so offered load self-throttles to capacity.
// Config.OpenLoop switches to open-loop arrivals — ops are due on a fixed
// schedule (ArrivalRate per second) regardless of how the target is
// coping, and a worker that falls behind issues late ops back-to-back
// rather than silently thinning the schedule. Latency is then measured
// from each op's *scheduled* arrival, so queueing delay the target caused
// is charged to it (the standard correction for coordinated omission).
//
// Config.RetryBudget adds a client-side retry policy: ops the target shed
// (rejections exposing a RetryAfterHint, e.g. the runtime's ErrOverload)
// are retried with jittered exponential backoff — floored at the server's
// hint — up to the budget. Failures without a hint (dead replica,
// fail-stop) are never retried: the server said gone, not busy.
//
// Key popularity follows either a uniform or a Zipf distribution; the Zipf
// default mirrors the paper's demand model (a few very hot items, a long
// cold tail), so shard routers see realistically skewed per-shard load.
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Target is anything that serves the keyspace's read and write ops —
// a shard router, a single live cluster behind an adapter, or a fake.
type Target interface {
	Write(key string, value []byte) error
	Read(key string) ([]byte, bool, error)
}

// Level names the consistency level of one read, mirroring the runtime's
// levels without importing them (the workload package stays structurally
// decoupled from any particular target).
type Level int

const (
	// LevelEventual is a plain read of whatever the replica has.
	LevelEventual Level = iota
	// LevelSession demands read-your-writes + monotonic reads.
	LevelSession
	// LevelBounded demands bounded staleness.
	LevelBounded
	// LevelStrong demands a converged read of the key.
	LevelStrong
	// NumLevels sizes per-level arrays.
	NumLevels = int(LevelStrong) + 1
)

// String names the level the way flags and result tables spell it.
func (l Level) String() string {
	switch l {
	case LevelEventual:
		return "eventual"
	case LevelSession:
		return "session"
	case LevelBounded:
		return "bounded"
	case LevelStrong:
		return "strong"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Session is one logical client's sessioned view of a target: writes feed
// the session's freshness floor and reads enforce a consistency level
// against it. Implementations are used by a single worker goroutine at a
// time.
type Session interface {
	Write(key string, value []byte) error
	Read(key string, level Level) ([]byte, bool, error)
}

// SessionTarget is a Target that can open per-client sessions. When the
// config asks for a leveled read mix and the target implements this
// (structurally — shard routers and cluster adapters do), every worker
// drives its own session; otherwise leveled fractions silently degrade to
// eventual reads.
type SessionTarget interface {
	Target
	NewSession() Session
}

// KeyDist selects the key-popularity distribution.
type KeyDist int

const (
	// Zipf popularity (skewed; exponent Config.ZipfS). The default.
	Zipf KeyDist = iota
	// Uniform popularity.
	Uniform
)

// String names the distribution.
func (d KeyDist) String() string {
	switch d {
	case Zipf:
		return "zipf"
	case Uniform:
		return "uniform"
	}
	return fmt.Sprintf("KeyDist(%d)", int(d))
}

// Config parametrises one load run. Run fills every unset field with the
// listed default (a zero-value Config runs a write-only workload — set
// ReadFraction negative to get the read-heavy default mix).
type Config struct {
	// Workers is the closed-loop concurrency (default 8).
	Workers int
	// Ops is the total operation count across workers (default 10000).
	Ops int
	// ReadFraction in [0,1] is the probability an op is a read; 0 is a
	// valid write-only mix. Negative (or >1) selects the default 0.9, a
	// read-heavy serving mix.
	ReadFraction float64
	// Keys is the keyspace size (default 1024).
	Keys int
	// Dist picks key popularity (default Zipf).
	Dist KeyDist
	// ZipfS is the Zipf exponent, > 1 (default 1.2).
	ZipfS float64
	// ValueBytes sizes write payloads (default 64).
	ValueBytes int
	// Seed makes the op stream deterministic (default 1).
	Seed int64
	// OpenLoop switches from closed-loop to open-loop arrivals: ops are due
	// on a fixed schedule of ArrivalRate per second, shared across workers,
	// and latency is measured from the scheduled arrival rather than the
	// moment a worker got around to issuing — so queueing delay caused by a
	// slow target is charged to the target (coordinated-omission
	// correction). Workers that fall behind issue late ops back-to-back
	// until they catch up; the schedule never thins.
	OpenLoop bool
	// ArrivalRate is the open-loop offered load in ops/sec (default 1000;
	// ignored unless OpenLoop).
	ArrivalRate float64
	// RetryBudget is the number of times one op may be retried after the
	// target sheds it (a rejection exposing a RetryAfterHint, e.g. the
	// runtime's ErrOverload). 0 — the default — disables retries; errors
	// without a hint are never retried regardless.
	RetryBudget int
	// RetryBase is the first retry's backoff; later attempts double it,
	// each with ±50% jitter, and the server's retry-after hint acts as a
	// floor (default 2ms).
	RetryBase time.Duration
	// SessionReads, BoundedReads and StrongReads split the read mix by
	// consistency level: each is the fraction of *reads* issued at that
	// level, the remainder staying eventual. They only take effect against
	// a SessionTarget; fractions summing past 1 are scaled down
	// proportionally.
	SessionReads, BoundedReads, StrongReads float64
	// Progress, when non-nil, receives live op counts as workers complete
	// operations — the hook periodic reporters read mid-run, when Result is
	// not available yet.
	Progress *Progress
}

// Progress is a live, concurrently updated view of a running workload: op
// counts advance as workers complete operations. Readers use the atomic
// fields directly; deltas between reads give interval rates.
type Progress struct {
	// Reads and Writes count completed (successful) ops. Reads totals
	// every level; ReadsByLevel carries the split.
	Reads, Writes atomic.Int64
	// ReadsByLevel counts completed reads per consistency level, indexed
	// by Level. The sum always equals Reads.
	ReadsByLevel [NumLevels]atomic.Int64
	// Errors counts ops the target rejected.
	Errors atomic.Int64
	// Sheds counts rejections that carried a retry-after hint (the target
	// shed the op under overload — or, for leveled reads, could not reach
	// the required freshness in time); every shed also counts as an error
	// unless a retry later succeeded. Retries counts retry attempts issued.
	Sheds, Retries atomic.Int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Ops <= 0 {
		c.Ops = 10000
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		c.ReadFraction = 0.9
	}
	if c.Keys <= 0 {
		c.Keys = 1024
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = 1000
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 2 * time.Millisecond
	}
	if c.SessionReads < 0 {
		c.SessionReads = 0
	}
	if c.BoundedReads < 0 {
		c.BoundedReads = 0
	}
	if c.StrongReads < 0 {
		c.StrongReads = 0
	}
	if sum := c.SessionReads + c.BoundedReads + c.StrongReads; sum > 1 {
		c.SessionReads /= sum
		c.BoundedReads /= sum
		c.StrongReads /= sum
	}
	return c
}

// leveled reports whether the config asks for any non-eventual reads.
func (c Config) leveled() bool {
	return c.SessionReads > 0 || c.BoundedReads > 0 || c.StrongReads > 0
}

// pickLevel draws one read's consistency level from the configured mix.
func (c Config) pickLevel(rng *rand.Rand) Level {
	u := rng.Float64()
	if u < c.SessionReads {
		return LevelSession
	}
	if u < c.SessionReads+c.BoundedReads {
		return LevelBounded
	}
	if u < c.SessionReads+c.BoundedReads+c.StrongReads {
		return LevelStrong
	}
	return LevelEventual
}

// Result summarises one load run.
type Result struct {
	// Ops completed (reads + writes); may stop short of Config.Ops when
	// the context expires mid-run.
	Ops, Reads, Writes int
	// Errors counts ops the target rejected.
	Errors int
	// Sheds counts rejections carrying a retry-after hint; Retries counts
	// retry attempts issued under Config.RetryBudget.
	Sheds, Retries int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// ReadLatency and WriteLatency hold per-op latencies in milliseconds.
	// ReadLatency aggregates every consistency level — comparable across
	// runs only when the level mix is fixed; use ReadLatencyAt for the
	// per-level view (a session read that waited for coverage is a
	// different operation than an eventual read, and lumping them hides
	// both tails).
	ReadLatency, WriteLatency *metrics.Sample
	// ReadLatencyByLevel splits read latency by consistency level, indexed
	// by Level. Levels never issued hold empty samples.
	ReadLatencyByLevel [NumLevels]*metrics.Sample
	// ReadsByLevel counts completed reads per level; the sum equals Reads.
	ReadsByLevel [NumLevels]int
}

// ReadLatencyAt returns the latency sample of one consistency level.
func (r Result) ReadLatencyAt(lvl Level) *metrics.Sample {
	return r.ReadLatencyByLevel[lvl]
}

// OpsPerSec returns completed-op throughput.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf(
		"workload{ops=%d (%dr/%dw) errs=%d elapsed=%v %.0f ops/s read p50=%.3fms p99=%.3fms write p50=%.3fms p99=%.3fms}",
		r.Ops, r.Reads, r.Writes, r.Errors, r.Elapsed.Round(time.Millisecond), r.OpsPerSec(),
		r.ReadLatency.Median(), r.ReadLatency.Percentile(99),
		r.WriteLatency.Median(), r.WriteLatency.Percentile(99))
}

// Key formats the i-th key of the keyspace; exported so callers can preload
// or verify the same keys the generator touches.
func Key(i int) string { return fmt.Sprintf("key-%06d", i) }

// keyTable materialises the keyspace once per run, so workers index a
// shared read-only slice instead of formatting a key per op — key
// formatting is measurable driver overhead at millions of ops/sec, and it
// would otherwise pollute the target's measured latency.
func keyTable(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = Key(i)
	}
	return keys
}

// Run drives the target with cfg's op mix until the op budget is spent or
// ctx expires, whichever comes first.
func Run(ctx context.Context, cfg Config, target Target) Result {
	cfg = cfg.withDefaults()

	keys := keyTable(cfg.Keys)
	var issued atomic.Int64
	var wg sync.WaitGroup
	results := make([]workerResult, cfg.Workers)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runWorker(ctx, cfg, target, int64(w), keys, &issued, start)
		}(w)
	}
	wg.Wait()

	out := Result{
		Elapsed:      time.Since(start),
		ReadLatency:  metrics.NewSample(cfg.Ops),
		WriteLatency: metrics.NewSample(cfg.Ops),
	}
	for lvl := range out.ReadLatencyByLevel {
		out.ReadLatencyByLevel[lvl] = metrics.NewSample(cfg.Ops)
	}
	for _, r := range results {
		out.Reads += r.reads
		out.Writes += r.writes
		out.Errors += r.errors
		out.Sheds += r.sheds
		out.Retries += r.retries
		out.ReadLatency.Merge(r.readLat)
		out.WriteLatency.Merge(r.writeLat)
		for lvl, s := range r.readLatLvl {
			if s != nil {
				out.ReadLatencyByLevel[lvl].Merge(s)
			}
			out.ReadsByLevel[lvl] += r.readsLvl[lvl]
		}
	}
	out.Ops = out.Reads + out.Writes
	return out
}

type workerResult struct {
	reads, writes, errors int
	sheds, retries        int
	readLat, writeLat     *metrics.Sample
	readLatLvl            [NumLevels]*metrics.Sample
	readsLvl              [NumLevels]int
}

// retryHinter matches rejections whose source suggests when to retry —
// structurally, so the workload package needs no dependency on the runtime
// that produces them (runtime.OverloadError implements it).
type retryHinter interface {
	RetryAfterHint() time.Duration
	error
}

// shedHint reports whether err is a shed (overload rejection) and the
// server's suggested wait when it is.
func shedHint(err error) (time.Duration, bool) {
	var h retryHinter
	if errors.As(err, &h) {
		return h.RetryAfterHint(), true
	}
	return 0, false
}

// opRetrying issues one op, retrying shed rejections (any error exposing a
// RetryAfterHint — overload sheds and not-fresh reads alike) with jittered
// exponential backoff floored at the server's hint, up to cfg.RetryBudget
// attempts. It returns the final error and the shed/retry counts the
// attempt sequence produced.
func opRetrying(ctx context.Context, cfg Config, rng *rand.Rand, op func() error) (err error, sheds, retries int) {
	backoff := cfg.RetryBase
	for attempt := 0; ; attempt++ {
		err = op()
		hint, shed := (time.Duration)(0), false
		if err != nil {
			hint, shed = shedHint(err)
		}
		if err == nil || !shed {
			return err, sheds, retries
		}
		sheds++
		if attempt >= cfg.RetryBudget {
			return err, sheds, retries
		}
		wait := backoff
		if hint > wait {
			wait = hint
		}
		// ±50% jitter so synchronized shed victims don't re-arrive as a
		// thundering herd exactly one backoff later.
		wait = wait/2 + time.Duration(rng.Int63n(int64(wait)))
		backoff *= 2
		retries++
		select {
		case <-ctx.Done():
			return err, sheds, retries
		case <-time.After(wait):
		}
	}
}

// runWorker is one client goroutine: draw a key, issue the op, wait,
// record, repeat until the shared budget is gone. Closed-loop workers
// issue back-to-back; open-loop workers pace each op to its slot on the
// shared arrival schedule and measure latency from that scheduled arrival.
func runWorker(ctx context.Context, cfg Config, target Target, id int64, keys []string, issued *atomic.Int64, start time.Time) workerResult {
	rng := rand.New(rand.NewSource(cfg.Seed + id*6364136223846793005))
	var zipf *rand.Zipf
	if cfg.Dist == Zipf {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	}
	value := make([]byte, cfg.ValueBytes)
	rng.Read(value)
	interval := time.Duration(0)
	if cfg.OpenLoop {
		interval = time.Duration(float64(time.Second) / cfg.ArrivalRate)
	}

	res := workerResult{
		readLat:  metrics.NewSample(cfg.Ops / cfg.Workers),
		writeLat: metrics.NewSample(cfg.Ops / cfg.Workers),
	}
	// Each worker is one logical client: when the config asks for leveled
	// reads and the target can open sessions, the worker's whole op stream
	// (writes included — read-your-writes needs the writes on the token)
	// flows through its own session.
	var sess Session
	if cfg.leveled() {
		if st, ok := target.(SessionTarget); ok {
			sess = st.NewSession()
		}
	}
	for lvl := range res.readLatLvl {
		res.readLatLvl[lvl] = metrics.NewSample(cfg.Ops / cfg.Workers)
	}
	for {
		slot := issued.Add(1) - 1
		if slot >= int64(cfg.Ops) {
			break
		}
		if ctx.Err() != nil {
			break
		}
		begin := time.Now()
		if cfg.OpenLoop {
			// The op is due at its slot on the global schedule. Early:
			// sleep until due. Late: issue immediately — the op still
			// carries its scheduled arrival as the latency origin, so time
			// spent stuck behind a slow target counts against the target.
			due := start.Add(time.Duration(slot) * interval)
			if wait := due.Sub(begin); wait > 0 {
				select {
				case <-ctx.Done():
					return res
				case <-time.After(wait):
				}
			}
			begin = due
		}
		var k int
		if zipf != nil {
			k = int(zipf.Uint64())
		} else {
			k = rng.Intn(cfg.Keys)
		}
		key := keys[k]
		if rng.Float64() < cfg.ReadFraction {
			lvl := LevelEventual
			if sess != nil {
				lvl = cfg.pickLevel(rng)
			}
			read := func() error {
				var err error
				if sess != nil {
					_, _, err = sess.Read(key, lvl)
				} else {
					_, _, err = target.Read(key)
				}
				return err
			}
			err, sheds, retries := opRetrying(ctx, cfg, rng, read)
			res.sheds += sheds
			res.retries += retries
			if cfg.Progress != nil {
				cfg.Progress.Sheds.Add(int64(sheds))
				cfg.Progress.Retries.Add(int64(retries))
			}
			if err != nil {
				res.errors++
				if cfg.Progress != nil {
					cfg.Progress.Errors.Add(1)
				}
				continue
			}
			ms := float64(time.Since(begin)) / float64(time.Millisecond)
			res.readLat.Add(ms)
			res.readLatLvl[lvl].Add(ms)
			res.reads++
			res.readsLvl[lvl]++
			if cfg.Progress != nil {
				cfg.Progress.Reads.Add(1)
				cfg.Progress.ReadsByLevel[lvl].Add(1)
			}
		} else {
			write := func() error {
				if sess != nil {
					return sess.Write(key, value)
				}
				return target.Write(key, value)
			}
			err, sheds, retries := opRetrying(ctx, cfg, rng, write)
			res.sheds += sheds
			res.retries += retries
			if cfg.Progress != nil {
				cfg.Progress.Sheds.Add(int64(sheds))
				cfg.Progress.Retries.Add(int64(retries))
			}
			if err != nil {
				res.errors++
				if cfg.Progress != nil {
					cfg.Progress.Errors.Add(1)
				}
				continue
			}
			res.writeLat.Add(float64(time.Since(begin)) / float64(time.Millisecond))
			res.writes++
			if cfg.Progress != nil {
				cfg.Progress.Writes.Add(1)
			}
		}
	}
	return res
}
