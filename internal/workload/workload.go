// Package workload drives a replicated keyspace with synthetic client
// traffic and measures what the ROADMAP's production framing cares about:
// throughput and tail latency. The generator is closed-loop — a fixed pool
// of workers each issue one op, wait for it, record its latency, and issue
// the next — so measured latency includes every queueing effect the serving
// path has, and offered load adapts to what the target sustains.
//
// Key popularity follows either a uniform or a Zipf distribution; the Zipf
// default mirrors the paper's demand model (a few very hot items, a long
// cold tail), so shard routers see realistically skewed per-shard load.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Target is anything that serves the keyspace's read and write ops —
// a shard router, a single live cluster behind an adapter, or a fake.
type Target interface {
	Write(key string, value []byte) error
	Read(key string) ([]byte, bool, error)
}

// KeyDist selects the key-popularity distribution.
type KeyDist int

const (
	// Zipf popularity (skewed; exponent Config.ZipfS). The default.
	Zipf KeyDist = iota
	// Uniform popularity.
	Uniform
)

// String names the distribution.
func (d KeyDist) String() string {
	switch d {
	case Zipf:
		return "zipf"
	case Uniform:
		return "uniform"
	}
	return fmt.Sprintf("KeyDist(%d)", int(d))
}

// Config parametrises one load run. Run fills every unset field with the
// listed default (a zero-value Config runs a write-only workload — set
// ReadFraction negative to get the read-heavy default mix).
type Config struct {
	// Workers is the closed-loop concurrency (default 8).
	Workers int
	// Ops is the total operation count across workers (default 10000).
	Ops int
	// ReadFraction in [0,1] is the probability an op is a read; 0 is a
	// valid write-only mix. Negative (or >1) selects the default 0.9, a
	// read-heavy serving mix.
	ReadFraction float64
	// Keys is the keyspace size (default 1024).
	Keys int
	// Dist picks key popularity (default Zipf).
	Dist KeyDist
	// ZipfS is the Zipf exponent, > 1 (default 1.2).
	ZipfS float64
	// ValueBytes sizes write payloads (default 64).
	ValueBytes int
	// Seed makes the op stream deterministic (default 1).
	Seed int64
	// Progress, when non-nil, receives live op counts as workers complete
	// operations — the hook periodic reporters read mid-run, when Result is
	// not available yet.
	Progress *Progress
}

// Progress is a live, concurrently updated view of a running workload: op
// counts advance as workers complete operations. Readers use the atomic
// fields directly; deltas between reads give interval rates.
type Progress struct {
	// Reads and Writes count completed (successful) ops.
	Reads, Writes atomic.Int64
	// Errors counts ops the target rejected.
	Errors atomic.Int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Ops <= 0 {
		c.Ops = 10000
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		c.ReadFraction = 0.9
	}
	if c.Keys <= 0 {
		c.Keys = 1024
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result summarises one load run.
type Result struct {
	// Ops completed (reads + writes); may stop short of Config.Ops when
	// the context expires mid-run.
	Ops, Reads, Writes int
	// Errors counts ops the target rejected.
	Errors int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// ReadLatency and WriteLatency hold per-op latencies in milliseconds.
	ReadLatency, WriteLatency *metrics.Sample
}

// OpsPerSec returns completed-op throughput.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf(
		"workload{ops=%d (%dr/%dw) errs=%d elapsed=%v %.0f ops/s read p50=%.3fms p99=%.3fms write p50=%.3fms p99=%.3fms}",
		r.Ops, r.Reads, r.Writes, r.Errors, r.Elapsed.Round(time.Millisecond), r.OpsPerSec(),
		r.ReadLatency.Median(), r.ReadLatency.Percentile(99),
		r.WriteLatency.Median(), r.WriteLatency.Percentile(99))
}

// Key formats the i-th key of the keyspace; exported so callers can preload
// or verify the same keys the generator touches.
func Key(i int) string { return fmt.Sprintf("key-%06d", i) }

// keyTable materialises the keyspace once per run, so workers index a
// shared read-only slice instead of formatting a key per op — key
// formatting is measurable driver overhead at millions of ops/sec, and it
// would otherwise pollute the target's measured latency.
func keyTable(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = Key(i)
	}
	return keys
}

// Run drives the target with cfg's op mix until the op budget is spent or
// ctx expires, whichever comes first.
func Run(ctx context.Context, cfg Config, target Target) Result {
	cfg = cfg.withDefaults()

	keys := keyTable(cfg.Keys)
	var issued atomic.Int64
	var wg sync.WaitGroup
	results := make([]workerResult, cfg.Workers)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runWorker(ctx, cfg, target, int64(w), keys, &issued)
		}(w)
	}
	wg.Wait()

	out := Result{
		Elapsed:      time.Since(start),
		ReadLatency:  metrics.NewSample(cfg.Ops),
		WriteLatency: metrics.NewSample(cfg.Ops),
	}
	for _, r := range results {
		out.Reads += r.reads
		out.Writes += r.writes
		out.Errors += r.errors
		out.ReadLatency.Merge(r.readLat)
		out.WriteLatency.Merge(r.writeLat)
	}
	out.Ops = out.Reads + out.Writes
	return out
}

type workerResult struct {
	reads, writes, errors int
	readLat, writeLat     *metrics.Sample
}

// runWorker is one closed-loop client: draw a key, issue the op, wait,
// record, repeat until the shared budget is gone.
func runWorker(ctx context.Context, cfg Config, target Target, id int64, keys []string, issued *atomic.Int64) workerResult {
	rng := rand.New(rand.NewSource(cfg.Seed + id*6364136223846793005))
	var zipf *rand.Zipf
	if cfg.Dist == Zipf {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	}
	value := make([]byte, cfg.ValueBytes)
	rng.Read(value)

	res := workerResult{
		readLat:  metrics.NewSample(cfg.Ops / cfg.Workers),
		writeLat: metrics.NewSample(cfg.Ops / cfg.Workers),
	}
	for issued.Add(1) <= int64(cfg.Ops) {
		if ctx.Err() != nil {
			break
		}
		var k int
		if zipf != nil {
			k = int(zipf.Uint64())
		} else {
			k = rng.Intn(cfg.Keys)
		}
		key := keys[k]
		begin := time.Now()
		if rng.Float64() < cfg.ReadFraction {
			if _, _, err := target.Read(key); err != nil {
				res.errors++
				if cfg.Progress != nil {
					cfg.Progress.Errors.Add(1)
				}
				continue
			}
			res.readLat.Add(float64(time.Since(begin)) / float64(time.Millisecond))
			res.reads++
			if cfg.Progress != nil {
				cfg.Progress.Reads.Add(1)
			}
		} else {
			if err := target.Write(key, value); err != nil {
				res.errors++
				if cfg.Progress != nil {
					cfg.Progress.Errors.Add(1)
				}
				continue
			}
			res.writeLat.Add(float64(time.Since(begin)) / float64(time.Millisecond))
			res.writes++
			if cfg.Progress != nil {
				cfg.Progress.Writes.Add(1)
			}
		}
	}
	return res
}
