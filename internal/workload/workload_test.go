package workload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeTarget is an in-memory keyspace recording which keys were touched.
type fakeTarget struct {
	mu     sync.Mutex
	kv     map[string][]byte
	writes int
	reads  int
	fail   bool
}

func newFakeTarget() *fakeTarget { return &fakeTarget{kv: make(map[string][]byte)} }

func (f *fakeTarget) Write(key string, value []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errors.New("injected failure")
	}
	f.kv[key] = append([]byte(nil), value...)
	f.writes++
	return nil
}

func (f *fakeTarget) Read(key string) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return nil, false, errors.New("injected failure")
	}
	f.reads++
	v, ok := f.kv[key]
	return v, ok, nil
}

func TestRunCompletesOpBudget(t *testing.T) {
	target := newFakeTarget()
	cfg := Config{Workers: 4, Ops: 2000, ReadFraction: 0.75, Keys: 128, Seed: 42}
	res := Run(context.Background(), cfg, target)
	if res.Ops != 2000 {
		t.Fatalf("completed %d ops, want 2000", res.Ops)
	}
	if res.Ops != res.Reads+res.Writes {
		t.Fatalf("ops %d != reads %d + writes %d", res.Ops, res.Reads, res.Writes)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %d", res.Errors)
	}
	// The read mix should be near the configured fraction.
	frac := float64(res.Reads) / float64(res.Ops)
	if frac < 0.65 || frac > 0.85 {
		t.Errorf("read fraction %.3f far from configured 0.75", frac)
	}
	if res.ReadLatency.N() != res.Reads || res.WriteLatency.N() != res.Writes {
		t.Errorf("latency sample sizes (%d, %d) don't match op counts (%d, %d)",
			res.ReadLatency.N(), res.WriteLatency.N(), res.Reads, res.Writes)
	}
	if res.OpsPerSec() <= 0 {
		t.Errorf("non-positive throughput %f", res.OpsPerSec())
	}
	if p50, p99 := res.WriteLatency.Median(), res.WriteLatency.Percentile(99); p99 < p50 {
		t.Errorf("p99 %.4f below p50 %.4f", p99, p50)
	}
	if target.writes != res.Writes {
		t.Errorf("target saw %d writes, result says %d", target.writes, res.Writes)
	}
}

func TestRunZipfSkewsKeys(t *testing.T) {
	target := newFakeTarget()
	cfg := Config{Workers: 2, Ops: 4000, ReadFraction: 0, Keys: 512, Dist: Zipf, ZipfS: 1.4, Seed: 7}
	res := Run(context.Background(), cfg, target)
	if res.Writes != 4000 {
		t.Fatalf("writes %d, want 4000", res.Writes)
	}
	// Zipf concentrates mass on low key indices: far fewer distinct keys
	// than ops, and the hottest key must exist.
	if len(target.kv) >= 400 {
		t.Errorf("zipf touched %d distinct keys out of 512 — not skewed", len(target.kv))
	}
	if _, ok := target.kv[Key(0)]; !ok {
		t.Error("hottest zipf key never written")
	}
}

func TestRunUniformSpreadsKeys(t *testing.T) {
	target := newFakeTarget()
	cfg := Config{Workers: 2, Ops: 4000, ReadFraction: 0, Keys: 256, Dist: Uniform, Seed: 7}
	Run(context.Background(), cfg, target)
	if len(target.kv) < 200 {
		t.Errorf("uniform touched only %d distinct keys out of 256", len(target.kv))
	}
}

func TestRunDeterministicOpStream(t *testing.T) {
	a, b := newFakeTarget(), newFakeTarget()
	cfg := Config{Workers: 1, Ops: 500, ReadFraction: 0.5, Keys: 64, Seed: 99}
	ra := Run(context.Background(), cfg, a)
	rb := Run(context.Background(), cfg, b)
	if ra.Reads != rb.Reads || ra.Writes != rb.Writes {
		t.Errorf("same seed produced different mixes: (%d,%d) vs (%d,%d)",
			ra.Reads, ra.Writes, rb.Reads, rb.Writes)
	}
	if len(a.kv) != len(b.kv) {
		t.Errorf("same seed touched different key sets: %d vs %d", len(a.kv), len(b.kv))
	}
}

func TestRunCountsErrors(t *testing.T) {
	target := newFakeTarget()
	target.fail = true
	res := Run(context.Background(), Config{Workers: 2, Ops: 100, Seed: 1}, target)
	if res.Errors != 100 {
		t.Errorf("errors %d, want all 100", res.Errors)
	}
	if res.Ops != 0 {
		t.Errorf("ops %d, want 0 when every op fails", res.Ops)
	}
}

func TestRunHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Run(ctx, Config{Workers: 2, Ops: 1 << 30, Seed: 1}, newFakeTarget())
	if res.Ops > 2 {
		t.Errorf("cancelled run still completed %d ops", res.Ops)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers <= 0 || c.Ops <= 0 || c.Keys <= 0 || c.ValueBytes <= 0 || c.ZipfS <= 1 {
		t.Errorf("defaults incomplete: %+v", c)
	}
	if c.ReadFraction != 0 {
		t.Errorf("zero read fraction overridden to %f; 0 means write-only", c.ReadFraction)
	}
	if d := (Config{ReadFraction: -1}).withDefaults(); d.ReadFraction != 0.9 {
		t.Errorf("negative read fraction defaulted to %f, want 0.9", d.ReadFraction)
	}
}

func TestKeyDistString(t *testing.T) {
	if Zipf.String() != "zipf" || Uniform.String() != "uniform" {
		t.Error("KeyDist names wrong")
	}
	if KeyDist(9).String() == "" {
		t.Error("unknown KeyDist has empty name")
	}
}

func TestResultString(t *testing.T) {
	res := Run(context.Background(), Config{Workers: 1, Ops: 50, Seed: 1}, newFakeTarget())
	if s := res.String(); s == "" {
		t.Error("empty result string")
	}
	if res.Elapsed <= 0 || res.Elapsed > time.Minute {
		t.Errorf("implausible elapsed %v", res.Elapsed)
	}
}

// shedTarget rejects the first budget-1 attempts of every write with an
// overload error carrying a retry-after hint, then admits. Reads always
// succeed.
type shedTarget struct {
	mu       sync.Mutex
	rejects  int // writes still to reject, counted down across ops
	hint     time.Duration
	attempts int
	admitted int
}

type fakeOverload struct{ hint time.Duration }

func (e *fakeOverload) Error() string                 { return "overloaded" }
func (e *fakeOverload) RetryAfterHint() time.Duration { return e.hint }

func (s *shedTarget) Write(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts++
	if s.rejects > 0 {
		s.rejects--
		return &fakeOverload{hint: s.hint}
	}
	s.admitted++
	return nil
}

func (s *shedTarget) Read(key string) ([]byte, bool, error) { return nil, false, nil }

// TestOpenLoopPacing checks the open-loop schedule: ops are due at a
// fixed rate regardless of worker count, so the run's elapsed time is
// pinned by the arrival schedule, not by how fast the target answers.
func TestOpenLoopPacing(t *testing.T) {
	target := newFakeTarget()
	cfg := Config{
		Workers: 8, Ops: 200, ReadFraction: 0.5, Keys: 64, Seed: 7,
		OpenLoop: true, ArrivalRate: 1000, // 200 ops at 1k/s = 200ms
	}
	start := time.Now()
	res := Run(context.Background(), cfg, target)
	elapsed := time.Since(start)
	if res.Ops != 200 {
		t.Fatalf("completed %d ops, want 200", res.Ops)
	}
	if elapsed < 150*time.Millisecond {
		t.Errorf("open-loop run finished in %v; the 200ms arrival schedule was not honoured", elapsed)
	}
	if res.Errors != 0 || res.Sheds != 0 || res.Retries != 0 {
		t.Errorf("clean target produced errors=%d sheds=%d retries=%d", res.Errors, res.Sheds, res.Retries)
	}
}

// TestOpenLoopDeterministicOpStream pins the open-loop key/op sequence to
// the seed: pacing changes timing, never the operation stream.
func TestOpenLoopDeterministicOpStream(t *testing.T) {
	run := func() (int, int) {
		target := newFakeTarget()
		res := Run(context.Background(), Config{
			Workers: 1, Ops: 300, ReadFraction: 0.5, Keys: 32, Seed: 9,
			OpenLoop: true, ArrivalRate: 1e6,
		}, target)
		return res.Reads, res.Writes
	}
	r1, w1 := run()
	r2, w2 := run()
	if r1 != r2 || w1 != w2 {
		t.Fatalf("two open-loop runs with one seed diverged: %d/%d vs %d/%d reads/writes", r1, w1, r2, w2)
	}
}

// TestRetryBudgetRecovers checks the retry policy end to end: a shed
// write with budget left is retried after the server's hint and counts as
// one completed op (not an error) once admitted, with sheds and retries
// both reported.
func TestRetryBudgetRecovers(t *testing.T) {
	target := &shedTarget{rejects: 1, hint: time.Millisecond}
	cfg := Config{Workers: 1, Ops: 10, ReadFraction: 0, Keys: 8, Seed: 3, RetryBudget: 2}
	res := Run(context.Background(), cfg, target)
	if res.Errors != 0 {
		t.Fatalf("retried writes still surfaced %d errors", res.Errors)
	}
	if res.Writes != 10 {
		t.Fatalf("completed %d writes, want 10", res.Writes)
	}
	if res.Sheds != 1 || res.Retries != 1 {
		t.Errorf("sheds=%d retries=%d, want 1/1 — one rejection, one successful retry", res.Sheds, res.Retries)
	}
	if target.admitted != 10 {
		t.Errorf("target admitted %d writes, want 10", target.admitted)
	}
}

// TestRetryBudgetExhausted counts a write that stays shed past its budget
// as one error, with every attempt recorded as a shed.
func TestRetryBudgetExhausted(t *testing.T) {
	target := &shedTarget{rejects: 1 << 30, hint: time.Microsecond}
	cfg := Config{Workers: 1, Ops: 5, ReadFraction: 0, Keys: 8, Seed: 3, RetryBudget: 2}
	res := Run(context.Background(), cfg, target)
	if res.Errors != 5 {
		t.Fatalf("got %d errors, want all 5 writes to fail after budget exhaustion", res.Errors)
	}
	if res.Sheds != 15 {
		t.Errorf("sheds=%d, want 15 (3 attempts per write, all shed)", res.Sheds)
	}
	if res.Retries != 10 {
		t.Errorf("retries=%d, want 10 (2 retries per write)", res.Retries)
	}
}

// TestNonOverloadErrorsNeverRetry pins the policy's scope: only errors
// carrying a retry-after hint are retried; a plain failure is terminal
// even with budget available.
func TestNonOverloadErrorsNeverRetry(t *testing.T) {
	target := newFakeTarget()
	target.fail = true
	cfg := Config{Workers: 1, Ops: 5, ReadFraction: 0, Keys: 8, Seed: 3, RetryBudget: 5}
	res := Run(context.Background(), cfg, target)
	if res.Errors != 5 {
		t.Fatalf("got %d errors, want 5", res.Errors)
	}
	if res.Sheds != 0 || res.Retries != 0 {
		t.Errorf("plain failures recorded sheds=%d retries=%d, want 0/0", res.Sheds, res.Retries)
	}
	if target.writes != 0 {
		t.Errorf("failing target admitted %d writes", target.writes)
	}
}
