package node

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

// allocNode builds a minimal replica for allocation-regression tests.
func allocNode(id NodeID, neighbors []NodeID) *Node {
	return New(Config{
		ID:        id,
		Neighbors: neighbors,
		Selector:  policy.NewRandom(id, neighbors),
		FastPush:  true,
		Demand:    func(float64) float64 { return 1 },
	})
}

// TestHandleDemandAdvertAllocs guards the cheapest, most frequent protocol
// message: a demand advertisement must be absorbed without allocating.
func TestHandleDemandAdvertAllocs(t *testing.T) {
	n := allocNode(1, []NodeID{0, 2})
	env := protocol.Envelope{From: 2, To: 1, Msg: protocol.DemandAdvert{Demand: 3}}
	n.HandleMessage(0, env) // warm the table row
	if avg := testing.AllocsPerRun(100, func() { n.HandleMessage(1, env) }); avg != 0 {
		t.Errorf("HandleMessage(DemandAdvert) allocates %v per run, want 0", avg)
	}
}

// TestCoversAllocs guards the per-delivery convergence probe of the
// Monte-Carlo inner loop.
func TestCoversAllocs(t *testing.T) {
	n := allocNode(1, []NodeID{0})
	e, _ := n.ClientWrite(0, "k", []byte("v"))
	if avg := testing.AllocsPerRun(100, func() { _ = n.Covers(e.TS) }); avg != 0 {
		t.Errorf("Covers allocates %v per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { _ = n.SummaryTotal() }); avg != 0 {
		t.Errorf("SummaryTotal allocates %v per run, want 0", avg)
	}
}

// TestDeclinedFastOfferAllocs guards the fast-update NO path: an offer whose
// ids are all covered produces one reply envelope and nothing else; the
// wanted-subset scan must not allocate.
func TestDeclinedFastOfferAllocs(t *testing.T) {
	n := allocNode(1, []NodeID{0, 2})
	e, _ := n.ClientWrite(0, "k", []byte("v"))
	ids := []vclock.Timestamp{e.TS}
	env := protocol.Envelope{From: 2, To: 1, Msg: protocol.FastOffer{IDs: ids, Demand: 2}}
	n.HandleMessage(0, env)
	avg := testing.AllocsPerRun(100, func() { n.HandleMessage(1, env) })
	// Two allocations are inherent to the API: the returned envelope slice
	// and boxing the FastReply into the Message interface. Anything beyond
	// those is a regression (e.g. a wanted-subset slice for an empty subset).
	if avg > 2 {
		t.Errorf("HandleMessage(declined FastOffer) allocates %v per run, want <= 2", avg)
	}
}
