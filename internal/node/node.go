// Package node implements the replica state machine of the fast-consistency
// protocol — the paper's §2.1 algorithm, both parts:
//
//	Part 1 (weak consistency with demand-ordered selection): at each session
//	time the replica picks a partner via its policy.Selector and runs the
//	summary-vector anti-entropy exchange of steps 1–12.
//
//	Part 2 (fast update): whenever the replica acquires writes it did not
//	have — from a local client or from any protocol exchange — it
//	immediately offers them (ids only) to its highest-demand neighbour(s),
//	steps 13–18, producing the valley-flooding chains of §2.
//
// The node is transport-agnostic ("sans I/O"): every input is an explicit
// method call carrying the current time, and every output is a slice of
// protocol.Envelope for the caller to deliver. The Monte-Carlo simulator
// (internal/mc) drives nodes under a discrete-event clock; the live runtime
// (internal/runtime) drives the same code with goroutines and real
// transports. Node methods are not safe for concurrent use; each driver
// serialises access.
package node

import (
	"fmt"
	"math/rand"

	"repro/internal/demand"
	"repro/internal/policy"
	"repro/internal/protocol"
	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/wlog"
)

// NodeID aliases the replica identifier.
type NodeID = vclock.NodeID

// Config parametrises a replica.
type Config struct {
	// ID is this replica's identity.
	ID NodeID
	// Neighbors are the replicas this node may hold sessions with.
	Neighbors []NodeID
	// Selector picks anti-entropy partners. Required.
	Selector policy.Selector
	// FastPush enables the §2.1 part-two fast-update chains.
	FastPush bool
	// FanOut is how many distinct highest-demand neighbours each fast
	// offer targets. The paper pushes to one; values > 1 are an extension
	// evaluated in the ablation experiments. Defaults to 1.
	FanOut int
	// GradientOnly, when set, suppresses fast offers to neighbours whose
	// recorded demand does not exceed this node's own demand — a strict
	// "downhill only" variant used in ablations. The paper's algorithm is
	// unconditional (GradientOnly = false).
	GradientOnly bool
	// Demand reports this node's own demand at a given time (requests per
	// unit time from local clients). Required.
	Demand func(now float64) float64
	// MaxBatch bounds entries per UpdateBatch; 0 means unlimited. Large
	// sessions split across batches, with Final set on the last.
	MaxBatch int
	// Journal, when non-nil, receives every state mutation for durable
	// storage (see the Journal interface). Drivers that recover a replica
	// from disk leave this nil, replay, then call AttachJournal, so replay
	// never re-journals itself.
	Journal Journal
	// Observer, when non-nil, receives replication lifecycle events for
	// measurement (see the Observer interface). Unlike Journal it is safe
	// to pass at construction even for recovered replicas: the recovery
	// paths (Bootstrap, Replay) never fire it.
	Observer Observer
}

// Journal is the durability hook: a sink that persists every mutation of
// the replica's write log and store, in the order the replica applies them.
// The node invokes it under whatever synchronisation the driver already
// holds for the node itself (node methods are single-threaded per replica),
// so implementations see mutations in a total order. Implementations buffer
// internally; the driver decides when the journal must reach stable storage
// (e.g. the runtime fsyncs once per group-committed client batch, before
// acknowledging it).
type Journal interface {
	// JournalEntries records entries that just entered the write log, in
	// insertion order: local client writes and entries gained from peers.
	JournalEntries(entries []wlog.Entry)
	// JournalAdopt records a full-state adoption: a protocol snapshot or
	// peer bootstrap (summary non-nil) or a content-only absorption such as
	// a shard handoff (summary nil). clock is the replica's Lamport clock
	// after the adoption.
	JournalAdopt(summary *vclock.Summary, items []store.Item, clock uint64)
}

// Observer is the measurement hook: it sees entries the moment they enter
// the write log through live traffic — local client writes when committed,
// remote entries when absorbed — so an observability layer can stamp
// writes at their origin and measure propagation lag at every replica. The
// node invokes it under the driver's existing synchronisation (node
// methods are single-threaded per replica); implementations must be cheap
// and must not call back into the node. Recovery paths (Bootstrap, Replay)
// and content-level absorption (AbsorbItems) never fire it: replayed
// entries are old news, and handoff items carry no per-entry identity.
type Observer interface {
	// ObserveCommitted reports local client writes that just committed, in
	// log order.
	ObserveCommitted(entries []wlog.Entry)
	// ObserveAbsorbed reports entries just gained from peers (anti-entropy
	// batches, fast-update payloads, never duplicates), in log order.
	ObserveAbsorbed(entries []wlog.Entry)
}

// Stats counts protocol activity for one replica.
type Stats struct {
	SessionsInitiated  uint64
	SessionsReceived   uint64
	EntriesSent        uint64
	EntriesReceived    uint64
	FastOffersSent     uint64
	FastOffersReceived uint64
	FastOffersAccepted uint64 // offers we answered YES to
	FastOffersDeclined uint64 // offers we answered NO to
	FastEntriesSent    uint64
	FastEntriesGained  uint64 // entries first learned through fast update
	GapDrops           uint64 // fast-payload entries dropped for gaps
	AdvertsSent        uint64
	MessagesHandled    uint64
	SnapshotsSent      uint64 // full-state transfers sent (truncation recovery)
	SnapshotsReceived  uint64
	ClientWrites       uint64 // local client writes committed
	EntriesAbsorbed    uint64 // entries gained from peers (new, non-duplicate)
	DuplicateDrops     uint64 // received entries already covered (re-delivery)
}

// Node is one replica.
type Node struct {
	cfg      Config
	log      *wlog.Log
	st       *store.Store
	table    *demand.Table
	selector policy.Selector
	journal  Journal
	observer Observer
	lamport  uint64

	nextSession uint64
	// initiated tracks sessions this node started: sessionID -> partner.
	initiated map[uint64]NodeID
	// accepted tracks sessions this node is responding to.
	accepted map[uint64]NodeID

	// offerSkip is the reusable fast-offer exclusion buffer; node methods
	// are single-threaded per replica, so one buffer per node suffices.
	offerSkip []NodeID
	// writeScratch is the reusable group-commit staging buffer (same
	// single-threaded argument).
	writeScratch []wlog.LocalWrite

	stats Stats
}

// New builds a replica from cfg.
func New(cfg Config) *Node {
	if cfg.Selector == nil {
		panic("node: Config.Selector is required")
	}
	if cfg.Demand == nil {
		panic("node: Config.Demand is required")
	}
	if cfg.FanOut <= 0 {
		cfg.FanOut = 1
	}
	return &Node{
		cfg:       cfg,
		log:       wlog.New(),
		st:        store.New(),
		table:     demand.NewTable(cfg.Neighbors),
		selector:  cfg.Selector,
		journal:   cfg.Journal,
		observer:  cfg.Observer,
		initiated: make(map[uint64]NodeID),
		accepted:  make(map[uint64]NodeID),
	}
}

// AttachJournal installs (or replaces) the durability hook after
// construction. Drivers recovering a replica from disk build the node with
// a nil journal, Replay the recovered state, and attach the journal only
// then — replayed mutations are already on disk and must not re-journal.
func (n *Node) AttachJournal(j Journal) { n.journal = j }

// ID returns the replica's identity.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Summary returns a copy of the replica's summary vector.
func (n *Node) Summary() *vclock.Summary { return n.log.Summary() }

// SummaryTotal returns the number of writes the replica covers, without
// cloning the summary vector.
func (n *Node) SummaryTotal() uint64 { return n.log.SummaryTotal() }

// CompareSummary returns the lattice order between the replica's summary and
// other, without cloning the vector.
func (n *Node) CompareSummary(other *vclock.Summary) vclock.Ordering {
	return n.log.CompareSummary(other)
}

// Covers reports whether the replica has received the write named by ts.
func (n *Node) Covers(ts vclock.Timestamp) bool { return n.log.Covers(ts) }

// Clock returns the replica's Lamport clock — the incarnation counter a
// restart must carry forward so the reused identity never reissues
// timestamps.
func (n *Node) Clock() uint64 { return n.lamport }

// Bootstrap seeds a freshly created replica from a consistent state image
// (summary plus the store contents it covers) before the replica serves
// traffic — crash recovery from peers, the content-level analogue of
// onSnapshot. The summary is adopted into the write log (the covered ranges
// are marked truncated locally, so partners that need them entry-wise fall
// back to full-state transfer), the items merge via LWW, and the Lamport
// clock advances past every imported write and minClock.
//
// Callers must fold the replica's own pre-crash write head into snap:
// without it, a reused identity restarts its sequence numbers from the
// adopted coverage and reissues timestamps its peers treat as duplicates —
// new writes silently dropped, old writes masked forever.
func (n *Node) Bootstrap(snap *vclock.Summary, items []store.Item, minClock uint64) {
	n.log.Adopt(snap)
	n.st.ApplySnapshot(items)
	for _, item := range items {
		if item.Clock > n.lamport {
			n.lamport = item.Clock
		}
	}
	if minClock > n.lamport {
		n.lamport = minClock
	}
	if n.journal != nil {
		n.journal.JournalAdopt(snap, items, n.lamport)
	}
}

// Store exposes the replica's content store (for client reads).
func (n *Node) Store() *store.Store { return n.st }

// Log exposes the replica's write log (read-only use).
func (n *Node) Log() *wlog.Log { return n.log }

// Table exposes the neighbour demand table.
func (n *Node) Table() *demand.Table { return n.table }

// Stats returns a snapshot of the protocol counters.
func (n *Node) Stats() Stats { return n.stats }

// OwnDemand returns the node's demand at time now.
func (n *Node) OwnDemand(now float64) float64 { return n.cfg.Demand(now) }

// noteDemand folds a piggybacked demand advertisement into the table.
func (n *Node) noteDemand(from NodeID, d, now float64) {
	n.table.Update(from, d, now)
}

// ClientWrite accepts a local client write (the paper's "write operation in
// a server", §2), appends it to the log, applies it to the store, and — with
// FastPush — immediately offers it to the highest-demand neighbour(s).
func (n *Node) ClientWrite(now float64, key string, value []byte) (wlog.Entry, []protocol.Envelope) {
	n.lamport++
	e := n.log.Append(n.cfg.ID, key, value, n.lamport)
	n.st.Apply(e)
	if n.journal != nil {
		n.journal.JournalEntries([]wlog.Entry{e})
	}
	n.stats.ClientWrites++
	if n.observer != nil {
		n.observer.ObserveCommitted([]wlog.Entry{e})
	}
	out := n.fastOffers(now, []wlog.Entry{e}, 0, n.cfg.ID)
	return e, out
}

// WriteOp is one client write queued for a group commit.
type WriteOp struct {
	Key   string
	Value []byte
}

// ClientWriteBatch folds a batch of concurrent local client writes into the
// node in one step: sequence numbers and Lamport clocks are assigned in
// batch order, the write log takes its lock once for the whole batch, and —
// with FastPush — the batch triggers a single merged fast-offer fan-out
// carrying every new id, instead of one offer chain per write. It returns
// the committed entries in input order plus the outbound envelopes.
//
// Semantically a batch is indistinguishable from calling ClientWrite once
// per op in the same order; it only amortises the locking and fan-out.
func (n *Node) ClientWriteBatch(now float64, ops []WriteOp) ([]wlog.Entry, []protocol.Envelope) {
	if len(ops) == 0 {
		return nil, nil
	}
	writes := n.writeScratch[:0]
	for _, op := range ops {
		n.lamport++
		writes = append(writes, wlog.LocalWrite{Key: op.Key, Value: op.Value, Clock: n.lamport})
	}
	entries := n.log.AppendBatch(n.cfg.ID, writes)
	// AppendBatch copied the values; drop the caller's buffers so the
	// retained scratch never pins client memory.
	for i := range writes {
		writes[i].Value = nil
	}
	n.writeScratch = writes[:0]
	for _, e := range entries {
		n.st.Apply(e)
	}
	if n.journal != nil {
		n.journal.JournalEntries(entries)
	}
	n.stats.ClientWrites += uint64(len(entries))
	if n.observer != nil {
		n.observer.ObserveCommitted(entries)
	}
	out := n.fastOffers(now, entries, 0, n.cfg.ID)
	return entries, out
}

// StartSession begins an anti-entropy session with the partner chosen by the
// policy (steps 1–2). It returns the outbound request, or nil when no
// partner is eligible.
func (n *Node) StartSession(now float64, r *rand.Rand) []protocol.Envelope {
	partner, ok := n.selector.Next(now, n.table, r)
	if !ok {
		return nil
	}
	n.nextSession++
	id := uint64(n.cfg.ID)<<32 | n.nextSession
	n.initiated[id] = partner
	n.stats.SessionsInitiated++
	return []protocol.Envelope{{
		From: n.cfg.ID,
		To:   partner,
		Msg:  protocol.SessionRequest{SessionID: id, Demand: n.OwnDemand(now)},
	}}
}

// AdvertiseDemand emits the periodic §4 demand advertisement to every
// neighbour.
func (n *Node) AdvertiseDemand(now float64) []protocol.Envelope {
	out := make([]protocol.Envelope, 0, len(n.cfg.Neighbors))
	d := n.OwnDemand(now)
	for _, nb := range n.cfg.Neighbors {
		out = append(out, protocol.Envelope{
			From: n.cfg.ID,
			To:   nb,
			Msg:  protocol.DemandAdvert{Demand: d},
		})
	}
	n.stats.AdvertsSent += uint64(len(out))
	return out
}

// HandleMessage processes one inbound envelope and returns the outbound
// envelopes it generates.
func (n *Node) HandleMessage(now float64, env protocol.Envelope) []protocol.Envelope {
	if env.To != n.cfg.ID {
		panic(fmt.Sprintf("node %v: misrouted envelope %v", n.cfg.ID, env))
	}
	n.stats.MessagesHandled++
	switch m := env.Msg.(type) {
	case protocol.SessionRequest:
		return n.onSessionRequest(now, env.From, m)
	case protocol.SummaryMsg:
		return n.onSummary(now, env.From, m)
	case protocol.UpdateBatch:
		return n.onUpdateBatch(now, env.From, m)
	case protocol.FastOffer:
		return n.onFastOffer(now, env.From, m)
	case protocol.FastReply:
		return n.onFastReply(now, env.From, m)
	case protocol.FastPayload:
		return n.onFastPayload(now, env.From, m)
	case protocol.DemandAdvert:
		n.noteDemand(env.From, m.Demand, now)
		return nil
	case protocol.Snapshot:
		return n.onSnapshot(now, env.From, m)
	default:
		panic(fmt.Sprintf("node %v: unknown message %T", n.cfg.ID, env.Msg))
	}
}

// onSessionRequest is step 3–4: the responder sends its summary vector.
func (n *Node) onSessionRequest(now float64, from NodeID, m protocol.SessionRequest) []protocol.Envelope {
	n.noteDemand(from, m.Demand, now)
	n.accepted[m.SessionID] = from
	n.stats.SessionsReceived++
	return []protocol.Envelope{{
		From: n.cfg.ID,
		To:   from,
		Msg: protocol.SummaryMsg{
			SessionID: m.SessionID,
			Summary:   n.log.Summary(),
			Demand:    n.OwnDemand(now),
		},
	}}
}

// onSummary handles a partner's summary vector.
//
// Initiator path (steps 5–8): on the responder's summary, send back our own
// summary plus every entry the responder is missing.
//
// Responder path (steps 9–11): on the initiator's summary, send every entry
// the initiator is missing; this completes the responder's half.
func (n *Node) onSummary(now float64, from NodeID, m protocol.SummaryMsg) []protocol.Envelope {
	n.noteDemand(from, m.Demand, now)
	var out []protocol.Envelope
	if partner, ok := n.initiated[m.SessionID]; ok && partner == from {
		out = append(out, protocol.Envelope{
			From: n.cfg.ID,
			To:   from,
			Msg: protocol.SummaryMsg{
				SessionID: m.SessionID,
				Summary:   n.log.Summary(),
				Demand:    n.OwnDemand(now),
			},
		})
	}
	out = append(out, n.batchesFor(now, from, m.SessionID, m.Summary)...)
	return out
}

// batchesFor builds the UpdateBatch messages carrying what partner lacks,
// or a full-state Snapshot when log truncation has discarded entries the
// partner still needs (the Bayou recovery path).
func (n *Node) batchesFor(now float64, partner NodeID, sessionID uint64, theirs *vclock.Summary) []protocol.Envelope {
	missing, err := n.log.MissingGiven(theirs)
	if err != nil {
		n.stats.SnapshotsSent++
		return []protocol.Envelope{{
			From: n.cfg.ID,
			To:   partner,
			Msg: protocol.Snapshot{
				SessionID: sessionID,
				Summary:   n.log.Summary(),
				Items:     n.st.Snapshot(),
				Demand:    n.OwnDemand(now),
			},
		}}
	}
	n.stats.EntriesSent += uint64(len(missing))
	d := n.OwnDemand(now)
	batch := n.cfg.MaxBatch
	if batch <= 0 || batch > len(missing) {
		if len(missing) == 0 {
			return []protocol.Envelope{{
				From: n.cfg.ID,
				To:   partner,
				Msg:  protocol.UpdateBatch{SessionID: sessionID, Final: true, Demand: d},
			}}
		}
		batch = len(missing)
	}
	var out []protocol.Envelope
	for off := 0; off < len(missing); off += batch {
		end := off + batch
		if end > len(missing) {
			end = len(missing)
		}
		out = append(out, protocol.Envelope{
			From: n.cfg.ID,
			To:   partner,
			Msg: protocol.UpdateBatch{
				SessionID: sessionID,
				Entries:   missing[off:end],
				Final:     end == len(missing),
				Demand:    d,
			},
		})
	}
	return out
}

// onUpdateBatch is step 12: apply the entries the partner sent; on the final
// batch, close the session. Newly gained entries trigger fast offers.
func (n *Node) onUpdateBatch(now float64, from NodeID, m protocol.UpdateBatch) []protocol.Envelope {
	n.noteDemand(from, m.Demand, now)
	gained := n.absorb(m.Entries)
	n.stats.EntriesReceived += uint64(len(m.Entries))
	if m.Final {
		delete(n.initiated, m.SessionID)
		delete(n.accepted, m.SessionID)
	}
	return n.fastOffers(now, gained, 0, from)
}

// absorb applies entries to the log and store, returning those that were
// actually new. Entries are applied in (origin, seq) order so batches never
// self-gap; MissingGiven already guarantees that order, so the common case
// skips the sort and hands the batch straight to the log under one lock.
func (n *Node) absorb(entries []wlog.Entry) []wlog.Entry {
	if len(entries) == 0 {
		return nil
	}
	if !wlog.Sorted(entries) {
		sorted := append([]wlog.Entry(nil), entries...)
		wlog.SortByTS(sorted)
		entries = sorted
	}
	gained, gaps := n.log.AddBatch(entries)
	n.stats.GapDrops += uint64(gaps)
	n.stats.EntriesAbsorbed += uint64(len(gained))
	n.stats.DuplicateDrops += uint64(len(entries) - len(gained) - gaps)
	for _, e := range gained {
		if e.Clock > n.lamport {
			n.lamport = e.Clock
		}
		n.st.Apply(e)
	}
	if n.journal != nil && len(gained) > 0 {
		n.journal.JournalEntries(gained)
	}
	if n.observer != nil && len(gained) > 0 {
		n.observer.ObserveAbsorbed(gained)
	}
	return gained
}

// Replay folds recovered write-log entries into the replica — the disk
// recovery path. Unlike absorb it triggers no fast offers (the entries are
// old news to the network) and, because drivers attach the journal only
// after replay, nothing is re-journaled. Entries are applied in (origin,
// seq) order; those already covered are skipped. It returns how many
// entries were new.
func (n *Node) Replay(entries []wlog.Entry) int {
	if len(entries) == 0 {
		return 0
	}
	if !wlog.Sorted(entries) {
		sorted := append([]wlog.Entry(nil), entries...)
		wlog.SortByTS(sorted)
		entries = sorted
	}
	gained, _ := n.log.AddBatch(entries)
	for _, e := range gained {
		if e.Clock > n.lamport {
			n.lamport = e.Clock
		}
		n.st.Apply(e)
	}
	return len(gained)
}

// fastOffers implements step 13: offer newly gained writes (ids only) to the
// FanOut highest-demand neighbours, excluding the replica they came from.
func (n *Node) fastOffers(now float64, gained []wlog.Entry, hops uint32, source NodeID) []protocol.Envelope {
	if !n.cfg.FastPush || len(gained) == 0 {
		return nil
	}
	ids := make([]vclock.Timestamp, len(gained))
	for i, e := range gained {
		ids[i] = e.TS
	}
	skip := append(n.offerSkip[:0], source, n.cfg.ID)
	own := n.OwnDemand(now)
	var out []protocol.Envelope
	for i := 0; i < n.cfg.FanOut; i++ {
		best, ok := n.table.BestExcept(skip)
		if !ok {
			break
		}
		skip = append(skip, best.Node)
		if n.cfg.GradientOnly && best.Demand <= own {
			continue
		}
		out = append(out, protocol.Envelope{
			From: n.cfg.ID,
			To:   best.Node,
			Msg:  protocol.FastOffer{IDs: ids, Demand: own, Hops: hops},
		})
		n.stats.FastOffersSent++
	}
	n.offerSkip = skip
	return out
}

// onFastOffer is steps 14–15: answer YES with the subset of offered ids we
// still need, or NO when we have them all.
func (n *Node) onFastOffer(now float64, from NodeID, m protocol.FastOffer) []protocol.Envelope {
	n.noteDemand(from, m.Demand, now)
	n.stats.FastOffersReceived++
	var wanted []vclock.Timestamp
	for _, ts := range m.IDs {
		if !n.log.Covers(ts) {
			wanted = append(wanted, ts)
		}
	}
	reply := protocol.FastReply{
		Accept: len(wanted) > 0,
		Wanted: wanted,
		Demand: n.OwnDemand(now),
		Hops:   m.Hops,
	}
	if reply.Accept {
		n.stats.FastOffersAccepted++
	} else {
		n.stats.FastOffersDeclined++
	}
	return []protocol.Envelope{{From: n.cfg.ID, To: from, Msg: reply}}
}

// onFastReply is steps 16–18: on YES, send the wanted entries; on NO, send
// nothing.
func (n *Node) onFastReply(now float64, from NodeID, m protocol.FastReply) []protocol.Envelope {
	n.noteDemand(from, m.Demand, now)
	if !m.Accept || len(m.Wanted) == 0 {
		return nil
	}
	entries := make([]wlog.Entry, 0, len(m.Wanted))
	for _, ts := range m.Wanted {
		if e, ok := n.log.Get(ts); ok {
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		return nil
	}
	n.stats.FastEntriesSent += uint64(len(entries))
	return []protocol.Envelope{{
		From: n.cfg.ID,
		To:   from,
		Msg:  protocol.FastPayload{Entries: entries, Demand: n.OwnDemand(now), Hops: m.Hops},
	}}
}

// onFastPayload applies fast-update entries and continues the chain (§2:
// "if the neighbour selected has another neighbour with even greater demand
// the process will be repeated") with an incremented hop count.
func (n *Node) onFastPayload(now float64, from NodeID, m protocol.FastPayload) []protocol.Envelope {
	n.noteDemand(from, m.Demand, now)
	gained := n.absorb(m.Entries)
	n.stats.FastEntriesGained += uint64(len(gained))
	return n.fastOffers(now, gained, m.Hops+1, from)
}

// onSnapshot adopts a full-state transfer: the summary is folded into the
// write log (marking the skipped ranges as truncated locally too) and the
// store image merges via normal LWW. Snapshot adoption closes the session
// and does not start fast-update chains — the receiver was so far behind
// that entry-level ids are no longer meaningful; its next sessions
// propagate onward.
func (n *Node) onSnapshot(now float64, from NodeID, m protocol.Snapshot) []protocol.Envelope {
	n.noteDemand(from, m.Demand, now)
	n.stats.SnapshotsReceived++
	n.log.Adopt(m.Summary)
	n.st.ApplySnapshot(m.Items)
	for _, item := range m.Items {
		if item.Clock > n.lamport {
			n.lamport = item.Clock
		}
	}
	if n.journal != nil {
		n.journal.JournalAdopt(m.Summary, m.Items, n.lamport)
	}
	delete(n.initiated, m.SessionID)
	delete(n.accepted, m.SessionID)
	return nil
}

// AbsorbItems merges a content-level store image (e.g. a shard handoff)
// via normal LWW resolution and advances the Lamport clock past every
// imported write, so subsequent local client writes supersede imported
// versions. Unlike onSnapshot this is not a protocol exchange: the write
// log and summary are untouched, because the imported items are content
// from a *different* replica group whose entry ids are meaningless here.
func (n *Node) AbsorbItems(items []store.Item) {
	n.st.ApplySnapshot(items)
	for _, item := range items {
		if item.Clock > n.lamport {
			n.lamport = item.Clock
		}
	}
	if n.journal != nil {
		n.journal.JournalAdopt(nil, items, n.lamport)
	}
}

// OpenSessions returns how many sessions the node is currently tracking (as
// initiator or responder); it should return to 0 when the network quiesces.
func (n *Node) OpenSessions() int { return len(n.initiated) + len(n.accepted) }
