package node

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/policy"
	"repro/internal/protocol"
)

func testNode(id NodeID, neighbors []NodeID) *Node {
	return New(Config{
		ID:        id,
		Neighbors: neighbors,
		Selector:  policy.NewDynamicOrdered(id, neighbors),
		FastPush:  true,
		Demand:    func(float64) float64 { return 1 },
	})
}

// TestClientWriteBatchEquivalence commits the same ops through ClientWrite
// one-by-one on one node and through ClientWriteBatch on another: entries
// (timestamps, clocks, content), store state and summaries must be
// identical — a batch is semantically invisible.
func TestClientWriteBatchEquivalence(t *testing.T) {
	nbrs := []NodeID{1, 2}
	serial := testNode(0, nbrs)
	batched := testNode(0, nbrs)
	// Teach both nodes the same neighbour demands so fast offers match.
	for _, n := range []*Node{serial, batched} {
		n.noteDemand(1, 5, 0)
		n.noteDemand(2, 9, 0)
	}

	ops := make([]WriteOp, 16)
	for i := range ops {
		ops[i] = WriteOp{Key: fmt.Sprintf("k%02d", i%5), Value: []byte(fmt.Sprintf("v%d", i))}
	}

	var serialEntries []struct {
		ts    string
		clock uint64
	}
	for _, op := range ops {
		e, _ := serial.ClientWrite(0, op.Key, op.Value)
		serialEntries = append(serialEntries, struct {
			ts    string
			clock uint64
		}{e.TS.String(), e.Clock})
	}

	entries, out := batched.ClientWriteBatch(0, ops)
	if len(entries) != len(ops) {
		t.Fatalf("batch returned %d entries, want %d", len(entries), len(ops))
	}
	for i, e := range entries {
		if e.TS.String() != serialEntries[i].ts || e.Clock != serialEntries[i].clock {
			t.Errorf("entry %d: batch (%v, clock %d) != serial (%s, clock %d)",
				i, e.TS, e.Clock, serialEntries[i].ts, serialEntries[i].clock)
		}
		if e.Key != ops[i].Key || !bytes.Equal(e.Value, ops[i].Value) {
			t.Errorf("entry %d: content %s=%q, want %s=%q", i, e.Key, e.Value, ops[i].Key, ops[i].Value)
		}
	}
	if got, want := batched.Summary().String(), serial.Summary().String(); got != want {
		t.Errorf("summaries differ: batch %s, serial %s", got, want)
	}
	if got, want := batched.Store().Digest(), serial.Store().Digest(); got != want {
		t.Errorf("store digests differ: batch %x, serial %x", got, want)
	}
	if batched.Clock() != serial.Clock() {
		t.Errorf("lamport clocks differ: batch %d, serial %d", batched.Clock(), serial.Clock())
	}

	// The batch must fan out ONE merged offer (to the same best-demand
	// neighbour the serial path chose) carrying every new id.
	if len(out) != 1 {
		t.Fatalf("batch emitted %d envelopes, want 1 merged fast offer", len(out))
	}
	offer, ok := out[0].Msg.(protocol.FastOffer)
	if !ok {
		t.Fatalf("batch emitted %T, want FastOffer", out[0].Msg)
	}
	if out[0].To != 2 {
		t.Errorf("offer sent to %v, want highest-demand neighbour 2", out[0].To)
	}
	if len(offer.IDs) != len(ops) {
		t.Errorf("offer carries %d ids, want %d", len(offer.IDs), len(ops))
	}
	if got, want := batched.Stats().FastOffersSent, uint64(1); got != want {
		t.Errorf("FastOffersSent = %d, want %d", got, want)
	}
}

// TestClientWriteBatchEmpty checks the zero-op edge.
func TestClientWriteBatchEmpty(t *testing.T) {
	n := testNode(0, []NodeID{1})
	entries, out := n.ClientWriteBatch(0, nil)
	if entries != nil || out != nil {
		t.Fatalf("empty batch produced %v, %v", entries, out)
	}
	if n.Clock() != 0 {
		t.Fatalf("empty batch advanced the clock to %d", n.Clock())
	}
}

// TestClientWriteBatchValueOwnership ensures batched values are copied: the
// caller may reuse its buffer after the call (same contract as ClientWrite).
func TestClientWriteBatchValueOwnership(t *testing.T) {
	n := testNode(0, []NodeID{1})
	buf := []byte("original")
	entries, _ := n.ClientWriteBatch(0, []WriteOp{{Key: "k", Value: buf}})
	copy(buf, "CLOBBER!")
	if got, _ := n.Store().Get("k"); string(got) != "original" {
		t.Fatalf("store value %q mutated by caller buffer reuse", got)
	}
	if string(entries[0].Value) != "original" {
		t.Fatalf("entry value %q mutated by caller buffer reuse", entries[0].Value)
	}
}
