package node

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/demand"
	"repro/internal/policy"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

// TestRandomScheduleConvergenceProperty drives a random cluster through a
// random interleaving of client writes, anti-entropy sessions and message
// deliveries (with random reordering), then closes with enough deterministic
// session sweeps for anti-entropy to finish. Invariants checked:
//
//  1. no panics anywhere in the protocol;
//  2. every replica ends with an identical summary vector;
//  3. every replica's store digest is identical (CRDT-style convergence);
//  4. per-replica summary totals never decrease (monotonicity).
func TestRandomScheduleConvergenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(5)

		// Random connected graph: a random tree plus a few extra edges.
		adj := make(map[NodeID][]NodeID, n)
		addEdge := func(a, b NodeID) {
			for _, x := range adj[a] {
				if x == b {
					return
				}
			}
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		for i := 1; i < n; i++ {
			addEdge(NodeID(i), NodeID(r.Intn(i)))
		}
		for e := 0; e < n/2; e++ {
			a, b := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if a != b {
				addEdge(a, b)
			}
		}

		field := make(demand.Static, n)
		for i := range field {
			field[i] = float64(1 + r.Intn(100))
		}
		factories := []policy.Factory{
			policy.NewRandom, policy.NewDynamicOrdered, policy.NewStaticOrdered,
		}
		nodes := make(map[NodeID]*Node, n)
		for id, nbrs := range adj {
			id := id
			nodes[id] = New(Config{
				ID:        id,
				Neighbors: nbrs,
				Selector:  factories[r.Intn(len(factories))](id, nbrs),
				FastPush:  r.Intn(2) == 0,
				FanOut:    1 + r.Intn(2),
				Demand:    func(now float64) float64 { return field.At(id, now) },
			})
			nodes[id].Table().RefreshAll(field, 0)
		}

		var queue []protocol.Envelope
		prevTotals := make(map[NodeID]uint64, n)
		deliverOne := func(now float64) bool {
			if len(queue) == 0 {
				return false
			}
			// Random delivery order models network reordering.
			idx := r.Intn(len(queue))
			env := queue[idx]
			queue = append(queue[:idx], queue[idx+1:]...)
			out := nodes[env.To].HandleMessage(now, env)
			queue = append(queue, out...)
			total := nodes[env.To].Summary().Total()
			if total < prevTotals[env.To] {
				return false // monotonicity violated
			}
			prevTotals[env.To] = total
			return true
		}

		// Phase 1: random chaos.
		now := 0.0
		for step := 0; step < 300; step++ {
			now += 0.01
			switch r.Intn(3) {
			case 0:
				id := NodeID(r.Intn(n))
				_, out := nodes[id].ClientWrite(now, fmt.Sprintf("k%d", r.Intn(5)), []byte{byte(step)})
				queue = append(queue, out...)
			case 1:
				id := NodeID(r.Intn(n))
				queue = append(queue, nodes[id].StartSession(now, r)...)
			case 2:
				deliverOne(now)
			}
		}
		// Drain in-flight messages.
		for len(queue) > 0 {
			now += 0.01
			deliverOne(now)
		}
		// Phase 2: deterministic anti-entropy sweeps until quiescent
		// convergence. Each sweep: every node sessions with every
		// neighbour once, then the queue drains fully.
		for sweep := 0; sweep < 2*n; sweep++ {
			for id := NodeID(0); int(id) < n; id++ {
				for range adj[id] {
					now += 0.01
					queue = append(queue, nodes[id].StartSession(now, r)...)
				}
			}
			for len(queue) > 0 {
				now += 0.01
				if !deliverOne(now) && len(queue) > 0 {
					return false
				}
			}
		}

		// Convergence: all summaries equal, all digests equal.
		ref := nodes[0].Summary()
		refDigest := nodes[0].Store().Digest()
		for id := NodeID(1); int(id) < n; id++ {
			if nodes[id].Summary().Compare(ref) != vclock.Equal {
				return false
			}
			if nodes[id].Store().Digest() != refDigest {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("random-schedule convergence property failed: %v", err)
	}
}

// TestDuplicateDeliveryIsIdempotent replays every message twice; duplicate
// suppression in the log must make the outcome identical.
func TestDuplicateDeliveryIsIdempotent(t *testing.T) {
	field := demand.Static{3, 7}
	mk := func() (*Node, *Node) {
		a := New(Config{ID: 0, Neighbors: []NodeID{1},
			Selector: policy.NewRandom(0, []NodeID{1}),
			Demand:   func(now float64) float64 { return field.At(0, now) }})
		b := New(Config{ID: 1, Neighbors: []NodeID{0},
			Selector: policy.NewRandom(1, []NodeID{0}),
			Demand:   func(now float64) float64 { return field.At(1, now) }})
		return a, b
	}
	run := func(duplicate bool) uint64 {
		a, b := mk()
		for i := 0; i < 4; i++ {
			a.ClientWrite(0, "k", []byte{byte(i)})
		}
		nodes := map[NodeID]*Node{0: a, 1: b}
		queue := a.StartSession(1, rand.New(rand.NewSource(1)))
		for len(queue) > 0 {
			env := queue[0]
			queue = queue[1:]
			out := nodes[env.To].HandleMessage(1, env)
			if duplicate {
				// Replay the same envelope; outputs of the replay are
				// discarded (they would be duplicates of duplicates).
				nodes[env.To].HandleMessage(1, env)
			}
			queue = append(queue, out...)
		}
		return b.Summary().Total()
	}
	if run(false) != run(true) {
		t.Error("duplicate delivery changed the outcome")
	}
}
