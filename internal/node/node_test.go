package node

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/policy"
	"repro/internal/protocol"
	"repro/internal/vclock"
	"repro/internal/wlog"
)

// cluster is a tiny synchronous test harness: a set of nodes and a FIFO
// message queue pumped to quiescence.
type cluster struct {
	nodes map[NodeID]*Node
	queue []protocol.Envelope
	now   float64
	r     *rand.Rand
}

func newCluster(field demand.Field, fastPush bool, adj map[NodeID][]NodeID, factory policy.Factory) *cluster {
	c := &cluster{nodes: make(map[NodeID]*Node), r: rand.New(rand.NewSource(1))}
	for id, nbrs := range adj {
		id := id
		c.nodes[id] = New(Config{
			ID:        id,
			Neighbors: nbrs,
			Selector:  factory(id, nbrs),
			FastPush:  fastPush,
			Demand:    func(now float64) float64 { return field.At(id, now) },
		})
	}
	return c
}

func (c *cluster) refreshTables(field demand.Field) {
	for _, n := range c.nodes {
		n.Table().RefreshAll(field, c.now)
	}
}

func (c *cluster) send(envs []protocol.Envelope) { c.queue = append(c.queue, envs...) }

// pump delivers queued messages until quiet, returning messages delivered.
func (c *cluster) pump(t *testing.T) int {
	t.Helper()
	delivered := 0
	for len(c.queue) > 0 {
		env := c.queue[0]
		c.queue = c.queue[1:]
		dst, ok := c.nodes[env.To]
		if !ok {
			t.Fatalf("message to unknown node: %v", env)
		}
		c.send(dst.HandleMessage(c.now, env))
		delivered++
		if delivered > 100000 {
			t.Fatal("pump did not quiesce — message loop?")
		}
	}
	return delivered
}

func lineAdj(n int) map[NodeID][]NodeID {
	adj := make(map[NodeID][]NodeID, n)
	for i := 0; i < n; i++ {
		var nbrs []NodeID
		if i > 0 {
			nbrs = append(nbrs, NodeID(i-1))
		}
		if i+1 < n {
			nbrs = append(nbrs, NodeID(i+1))
		}
		adj[NodeID(i)] = nbrs
	}
	return adj
}

func TestNewValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New without Selector should panic")
			}
		}()
		New(Config{Demand: func(float64) float64 { return 0 }})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New without Demand should panic")
			}
		}()
		New(Config{Selector: policy.NewRandom(0, nil)})
	}()
}

func TestClientWriteAppliesLocally(t *testing.T) {
	c := newCluster(demand.Static{1, 2}, false, lineAdj(2), policy.NewRandom)
	n0 := c.nodes[0]
	e, out := n0.ClientWrite(0, "k", []byte("v"))
	if len(out) != 0 {
		t.Errorf("without FastPush, ClientWrite emitted %d messages", len(out))
	}
	if e.TS != (vclock.Timestamp{Node: 0, Seq: 1}) {
		t.Errorf("entry TS = %v", e.TS)
	}
	if !n0.Covers(e.TS) {
		t.Error("writer does not cover its own write")
	}
	if v, ok := n0.Store().Get("k"); !ok || string(v) != "v" {
		t.Errorf("store content = (%q, %t)", v, ok)
	}
}

func TestSessionConvergesTwoNodes(t *testing.T) {
	c := newCluster(demand.Static{1, 2}, false, lineAdj(2), policy.NewRandom)
	a, b := c.nodes[0], c.nodes[1]
	a.ClientWrite(0, "x", []byte("1"))
	b.ClientWrite(0, "y", []byte("2"))
	b.ClientWrite(0, "y2", []byte("3"))

	c.send(a.StartSession(1, c.r))
	c.pump(t)

	if a.Summary().Compare(b.Summary()) != vclock.Equal {
		t.Fatalf("summaries differ after session: %v vs %v", a.Summary(), b.Summary())
	}
	if a.Store().Digest() != b.Store().Digest() {
		t.Error("stores differ after session")
	}
	if a.OpenSessions() != 0 || b.OpenSessions() != 0 {
		t.Errorf("open sessions after quiesce: %d / %d", a.OpenSessions(), b.OpenSessions())
	}
	st := a.Stats()
	if st.SessionsInitiated != 1 || st.EntriesReceived != 2 {
		t.Errorf("initiator stats = %+v", st)
	}
	if bs := b.Stats(); bs.SessionsReceived != 1 || bs.EntriesReceived != 1 {
		t.Errorf("responder stats = %+v", bs)
	}
}

func TestSessionBidirectional(t *testing.T) {
	// Both partners must end with the union (step 12: B receives from E and
	// E receives from B in the same session).
	c := newCluster(demand.Static{1, 1}, false, lineAdj(2), policy.NewRandom)
	a, b := c.nodes[0], c.nodes[1]
	for i := 0; i < 5; i++ {
		a.ClientWrite(0, "a", []byte{byte(i)})
		b.ClientWrite(0, "b", []byte{byte(i)})
	}
	c.send(b.StartSession(1, c.r))
	c.pump(t)
	if a.Log().Len() != 10 || b.Log().Len() != 10 {
		t.Errorf("log lengths = %d / %d, want 10 / 10", a.Log().Len(), b.Log().Len())
	}
}

func TestRepeatSessionSendsNothing(t *testing.T) {
	c := newCluster(demand.Static{1, 1}, false, lineAdj(2), policy.NewRandom)
	a := c.nodes[0]
	a.ClientWrite(0, "k", []byte("v"))
	c.send(a.StartSession(1, c.r))
	c.pump(t)
	sent := a.Stats().EntriesSent
	// Second session: already consistent, zero entries move.
	c.send(a.StartSession(2, c.r))
	c.pump(t)
	if got := a.Stats().EntriesSent; got != sent {
		t.Errorf("second session sent %d extra entries, want 0", got-sent)
	}
}

func TestFastUpdateChainFloodsValley(t *testing.T) {
	// Line 0-1-2-3-4 with demand increasing toward node 4 (the valley).
	// A write at node 0, followed by one session 0-1, must reach node 4
	// through the fast-update chain alone — no further sessions.
	field := demand.Static{1, 2, 3, 4, 5}
	c := newCluster(field, true, lineAdj(5), policy.NewDynamicOrdered)
	c.refreshTables(field)

	e, out := c.nodes[0].ClientWrite(0, "k", []byte("v"))
	c.send(out) // fast offer to node 1 (its only higher-demand neighbour)
	c.pump(t)

	for id := NodeID(1); id <= 4; id++ {
		if !c.nodes[id].Covers(e.TS) {
			t.Errorf("node %v missed the fast-update chain", id)
		}
	}
	// The chain visited nodes in order; hops grew along it.
	if got := c.nodes[4].Stats().FastEntriesGained; got != 1 {
		t.Errorf("valley node gained %d fast entries, want 1", got)
	}
	if declined := c.nodes[0].Stats().FastOffersDeclined; declined != 0 {
		t.Errorf("origin declined %d offers unexpectedly", declined)
	}
}

func TestFastOfferDeclinedWhenCovered(t *testing.T) {
	field := demand.Static{1, 2}
	c := newCluster(field, true, lineAdj(2), policy.NewDynamicOrdered)
	c.refreshTables(field)
	a, b := c.nodes[0], c.nodes[1]

	e, out := a.ClientWrite(0, "k", []byte("v"))
	c.send(out)
	c.pump(t)
	if !b.Covers(e.TS) {
		t.Fatal("fast update did not reach node 1")
	}
	// Offer the same id again: B must answer NO and A must send nothing.
	replies := b.HandleMessage(1, protocol.Envelope{
		From: 0, To: 1,
		Msg: protocol.FastOffer{IDs: []vclock.Timestamp{e.TS}},
	})
	if len(replies) != 1 {
		t.Fatalf("expected 1 reply, got %d", len(replies))
	}
	reply, ok := replies[0].Msg.(protocol.FastReply)
	if !ok || reply.Accept {
		t.Errorf("reply = %+v, want Accept=false", replies[0].Msg)
	}
	if out := a.HandleMessage(1, replies[0]); len(out) != 0 {
		t.Errorf("NO reply produced %d messages, want 0", len(out))
	}
	if b.Stats().FastOffersDeclined != 1 {
		t.Errorf("declined = %d, want 1", b.Stats().FastOffersDeclined)
	}
}

func TestFastReplyPartialSubset(t *testing.T) {
	// B already has one of two offered writes; it must request only the
	// missing one.
	field := demand.Static{1, 2}
	c := newCluster(field, false, lineAdj(2), policy.NewRandom)
	a, b := c.nodes[0], c.nodes[1]
	e1, _ := a.ClientWrite(0, "k1", []byte("1"))
	// Sync e1 to B via a session.
	c.send(a.StartSession(1, c.r))
	c.pump(t)
	e2, _ := a.ClientWrite(2, "k2", []byte("2"))

	replies := b.HandleMessage(3, protocol.Envelope{
		From: 0, To: 1,
		Msg: protocol.FastOffer{IDs: []vclock.Timestamp{e1.TS, e2.TS}},
	})
	reply := replies[0].Msg.(protocol.FastReply)
	if !reply.Accept || len(reply.Wanted) != 1 || reply.Wanted[0] != e2.TS {
		t.Errorf("reply = %+v, want exactly [%v] wanted", reply, e2.TS)
	}
}

func TestFastPayloadGapDropped(t *testing.T) {
	// A payload whose entry has a missing predecessor must be dropped and
	// counted, not crash or corrupt the log.
	field := demand.Static{1, 2}
	c := newCluster(field, true, lineAdj(2), policy.NewDynamicOrdered)
	b := c.nodes[1]
	out := b.HandleMessage(0, protocol.Envelope{
		From: 0, To: 1,
		Msg: protocol.FastPayload{Entries: wlogEntry("k", 0, 3)},
	})
	if len(out) != 0 {
		t.Errorf("gapped payload produced %d messages", len(out))
	}
	if b.Stats().GapDrops != 1 {
		t.Errorf("GapDrops = %d, want 1", b.Stats().GapDrops)
	}
	if b.Log().Len() != 0 {
		t.Error("gapped entry entered the log")
	}
}

func TestDemandPiggybackRefreshesTable(t *testing.T) {
	field := demand.Static{5, 9}
	c := newCluster(field, false, lineAdj(2), policy.NewRandom)
	a, b := c.nodes[0], c.nodes[1]
	if a.Table().Demand(1) != 0 {
		t.Fatal("table should start at zero demand")
	}
	c.send(b.StartSession(1, c.r))
	c.pump(t)
	// A received B's request (demand 9); B received A's summary (demand 5).
	if got := a.Table().Demand(1); got != 9 {
		t.Errorf("A's table demand for B = %g, want 9", got)
	}
	if got := b.Table().Demand(0); got != 5 {
		t.Errorf("B's table demand for A = %g, want 5", got)
	}
}

func TestAdvertiseDemand(t *testing.T) {
	field := demand.Static{5, 9, 3}
	c := newCluster(field, false, lineAdj(3), policy.NewRandom)
	mid := c.nodes[1]
	out := mid.AdvertiseDemand(4)
	if len(out) != 2 {
		t.Fatalf("adverts = %d, want 2", len(out))
	}
	for _, env := range out {
		if adv, ok := env.Msg.(protocol.DemandAdvert); !ok || adv.Demand != 9 {
			t.Errorf("advert = %+v", env.Msg)
		}
	}
	c.send(out)
	c.pump(t)
	if got := c.nodes[0].Table().Demand(1); got != 9 {
		t.Errorf("neighbour table demand = %g, want 9", got)
	}
	if mid.Stats().AdvertsSent != 2 {
		t.Errorf("AdvertsSent = %d, want 2", mid.Stats().AdvertsSent)
	}
}

func TestGradientOnlySuppressesUphillOffers(t *testing.T) {
	field := demand.Static{9, 2} // node 0 has higher demand than neighbour
	n := New(Config{
		ID:           0,
		Neighbors:    []NodeID{1},
		Selector:     policy.NewDynamicOrdered(0, []NodeID{1}),
		FastPush:     true,
		GradientOnly: true,
		Demand:       func(now float64) float64 { return field.At(0, now) },
	})
	n.Table().RefreshAll(field, 0)
	_, out := n.ClientWrite(0, "k", []byte("v"))
	if len(out) != 0 {
		t.Errorf("gradient-only node offered uphill: %v", out)
	}
	if n.Stats().FastOffersSent != 0 {
		t.Error("FastOffersSent should be 0")
	}
}

func TestFanOutTargetsMultipleNeighbors(t *testing.T) {
	field := demand.Static{1, 5, 4, 3}
	star := map[NodeID][]NodeID{
		0: {1, 2, 3}, 1: {0}, 2: {0}, 3: {0},
	}
	c := newCluster(field, true, star, policy.NewDynamicOrdered)
	// Rebuild node 0 with FanOut 2.
	c.nodes[0] = New(Config{
		ID:        0,
		Neighbors: star[0],
		Selector:  policy.NewDynamicOrdered(0, star[0]),
		FastPush:  true,
		FanOut:    2,
		Demand:    func(now float64) float64 { return field.At(0, now) },
	})
	c.refreshTables(field)
	_, out := c.nodes[0].ClientWrite(0, "k", []byte("v"))
	if len(out) != 2 {
		t.Fatalf("fan-out 2 emitted %d offers, want 2", len(out))
	}
	// Offers go to the two highest-demand neighbours: 1 then 2.
	if out[0].To != 1 || out[1].To != 2 {
		t.Errorf("offer targets = %v, %v, want n1, n2", out[0].To, out[1].To)
	}
}

func TestMaxBatchSplitsWithFinalFlag(t *testing.T) {
	field := demand.Static{1, 1}
	a := New(Config{
		ID: 0, Neighbors: []NodeID{1},
		Selector: policy.NewRandom(0, []NodeID{1}),
		MaxBatch: 2,
		Demand:   func(float64) float64 { return 1 },
	})
	b := New(Config{
		ID: 1, Neighbors: []NodeID{0},
		Selector: policy.NewRandom(1, []NodeID{0}),
		Demand:   func(float64) float64 { return 1 },
	})
	_ = field
	for i := 0; i < 5; i++ {
		a.ClientWrite(0, "k", []byte{byte(i)})
	}
	// Simulate B's summary arriving at A within a session A initiated.
	req := a.StartSession(1, rand.New(rand.NewSource(1)))
	replies := b.HandleMessage(1, req[0])
	out := a.HandleMessage(1, replies[0])
	// out = [own summary, batch1(2), batch2(2), batch3(1, final)]
	var batches []protocol.UpdateBatch
	for _, env := range out {
		if ub, ok := env.Msg.(protocol.UpdateBatch); ok {
			batches = append(batches, ub)
		}
	}
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	if len(batches[0].Entries) != 2 || len(batches[2].Entries) != 1 {
		t.Errorf("batch sizes = %d,%d,%d", len(batches[0].Entries), len(batches[1].Entries), len(batches[2].Entries))
	}
	if batches[0].Final || batches[1].Final || !batches[2].Final {
		t.Errorf("final flags = %t,%t,%t, want f,f,t", batches[0].Final, batches[1].Final, batches[2].Final)
	}
}

func TestMisroutedEnvelopePanics(t *testing.T) {
	c := newCluster(demand.Static{1, 1}, false, lineAdj(2), policy.NewRandom)
	defer func() {
		if recover() == nil {
			t.Error("misrouted envelope should panic")
		}
	}()
	c.nodes[0].HandleMessage(0, protocol.Envelope{From: 1, To: 1, Msg: protocol.DemandAdvert{}})
}

func TestLamportClockAdvancesOnReceive(t *testing.T) {
	c := newCluster(demand.Static{1, 1}, false, lineAdj(2), policy.NewRandom)
	a, b := c.nodes[0], c.nodes[1]
	for i := 0; i < 5; i++ {
		a.ClientWrite(0, "k", []byte{byte(i)})
	}
	c.send(b.StartSession(1, c.r))
	c.pump(t)
	// B's next write must carry a clock above everything received, so it
	// wins LWW everywhere.
	e, _ := b.ClientWrite(2, "k", []byte("newest"))
	if e.Clock <= 5 {
		t.Errorf("clock after receive = %d, want > 5", e.Clock)
	}
	c.send(b.StartSession(3, c.r))
	c.pump(t)
	va, _ := a.Store().Get("k")
	if string(va) != "newest" {
		t.Errorf("A's value = %q, want newest", va)
	}
}

// wlogEntry builds a one-entry slice for payload tests.
func wlogEntry(key string, node NodeID, seq uint64) []wlog.Entry {
	return []wlog.Entry{{TS: vclock.Timestamp{Node: node, Seq: seq}, Key: key, Value: []byte("v"), Clock: 1}}
}

func TestSnapshotRecoversTruncatedPartner(t *testing.T) {
	// A writes many entries and truncates its log aggressively; a fresh
	// replica B then sessions with A. Entry replay is impossible
	// (ErrTruncated), so A must send a full-state Snapshot and B must end
	// up with identical content.
	c := newCluster(demand.Static{1, 1}, false, lineAdj(2), policy.NewRandom)
	a, b := c.nodes[0], c.nodes[1]
	for i := 0; i < 10; i++ {
		a.ClientWrite(0, fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Truncate everything A has (pretend the whole prefix is stable).
	a.Log().TruncateCovered(a.Summary())

	c.send(b.StartSession(1, c.r))
	c.pump(t)

	if a.Stats().SnapshotsSent != 1 {
		t.Errorf("SnapshotsSent = %d, want 1", a.Stats().SnapshotsSent)
	}
	if b.Stats().SnapshotsReceived != 1 {
		t.Errorf("SnapshotsReceived = %d, want 1", b.Stats().SnapshotsReceived)
	}
	if b.Summary().Compare(a.Summary()) != vclock.Equal {
		t.Errorf("summaries differ after snapshot: %v vs %v", b.Summary(), a.Summary())
	}
	if b.Store().Digest() != a.Store().Digest() {
		t.Error("stores differ after snapshot")
	}
	if b.OpenSessions() != 0 {
		t.Errorf("open sessions = %d after snapshot", b.OpenSessions())
	}
	// B can now serve onward sessions normally for post-snapshot writes.
	a.ClientWrite(2, "fresh", []byte("x"))
	c.send(b.StartSession(3, c.r))
	c.pump(t)
	if !b.Covers(vclock.Timestamp{Node: 0, Seq: 11}) {
		t.Error("post-snapshot write did not propagate")
	}
}

func TestSnapshotChainsAcrossReplicas(t *testing.T) {
	// Three replicas in a line; node 0 truncates, node 1 recovers via
	// snapshot, then node 2 recovers from node 1 (which now also has a
	// truncation floor) — the floor propagates consistently.
	c := newCluster(demand.Static{1, 1, 1}, false, lineAdj(3), policy.NewRoundRobin)
	n0, n1, n2 := c.nodes[0], c.nodes[1], c.nodes[2]
	for i := 0; i < 5; i++ {
		n0.ClientWrite(0, fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	n0.Log().TruncateCovered(n0.Summary())

	c.send(n1.StartSession(1, c.r)) // round-robin picks n0 first
	c.pump(t)
	if n1.Store().Digest() != n0.Store().Digest() {
		t.Fatal("n1 did not recover from n0's snapshot")
	}
	c.send(n2.StartSession(2, c.r)) // n2's only neighbour is n1
	c.pump(t)
	if n2.Store().Digest() != n0.Store().Digest() {
		t.Error("n2 did not recover through n1")
	}
	if n1.Stats().SnapshotsSent != 1 {
		t.Errorf("n1 SnapshotsSent = %d, want 1 (its floor forces a snapshot onward)", n1.Stats().SnapshotsSent)
	}
}
