package node

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/wlog"
)

// recJournal records every journal invocation for assertions.
type recJournal struct {
	entries []wlog.Entry
	adopts  int
}

func (j *recJournal) JournalEntries(entries []wlog.Entry) {
	j.entries = append(j.entries, entries...)
}

func (j *recJournal) JournalAdopt(*vclock.Summary, []store.Item, uint64) { j.adopts++ }

func journaledNode(id NodeID, j Journal) *Node {
	return New(Config{
		ID:        id,
		Neighbors: []NodeID{1 - id},
		Selector:  policy.NewRandom(id, []NodeID{1 - id}),
		Demand:    func(float64) float64 { return 1 },
		Journal:   j,
	})
}

func TestJournalSeesEveryMutationInOrder(t *testing.T) {
	j := &recJournal{}
	n := journaledNode(0, j)

	// Local single write and batch write.
	e1, _ := n.ClientWrite(0, "a", []byte("1"))
	batch, _ := n.ClientWriteBatch(0, []WriteOp{{Key: "b", Value: []byte("2")}, {Key: "c", Value: []byte("3")}})
	want := append([]wlog.Entry{e1}, batch...)
	if len(j.entries) != 3 {
		t.Fatalf("journaled %d entries, want 3", len(j.entries))
	}
	for i, e := range want {
		if j.entries[i].TS != e.TS || j.entries[i].Key != e.Key {
			t.Fatalf("journal order diverged at %d: %v vs %v", i, j.entries[i], e)
		}
	}

	// Remote absorption journals exactly the gained entries, skipping
	// duplicates.
	peer := journaledNode(1, nil)
	pe, _ := peer.ClientWrite(0, "remote", []byte("r"))
	gained := n.absorb([]wlog.Entry{pe})
	if len(gained) != 1 {
		t.Fatalf("absorb gained %d", len(gained))
	}
	if len(j.entries) != 4 || j.entries[3].TS != pe.TS {
		t.Fatalf("remote entry not journaled: %v", j.entries)
	}
	if n.absorb([]wlog.Entry{pe}); len(j.entries) != 4 {
		t.Fatal("duplicate absorption was re-journaled")
	}

	// Full-state adoption journals an adopt record.
	sum := vclock.NewSummary()
	sum.Advance(1, 5)
	n.Bootstrap(sum, nil, 9)
	if j.adopts != 1 {
		t.Fatalf("Bootstrap journaled %d adopts, want 1", j.adopts)
	}
	n.AbsorbItems([]store.Item{{Key: "h", Value: []byte("x"), TS: pe.TS, Clock: 1}})
	if j.adopts != 2 {
		t.Fatalf("AbsorbItems journaled %d adopts, want 2", j.adopts)
	}
}

func TestReplayDoesNotJournalOrOffer(t *testing.T) {
	j := &recJournal{}
	n := journaledNode(0, nil)

	src := journaledNode(1, nil)
	var entries []wlog.Entry
	for i := 0; i < 5; i++ {
		e, _ := src.ClientWrite(0, "k", []byte{byte(i)})
		entries = append(entries, e)
	}
	if got := n.Replay(entries); got != 5 {
		t.Fatalf("Replay gained %d, want 5", got)
	}
	// Journal attached after replay, as the recovery path does: nothing
	// from the replay may reach it.
	n.AttachJournal(j)
	if len(j.entries) != 0 || j.adopts != 0 {
		t.Fatal("replayed state leaked into the journal")
	}
	// Replayed entries are in the log and store.
	if !n.Covers(entries[4].TS) {
		t.Fatal("replayed entry not covered")
	}
	if v, ok := n.Store().Get("k"); !ok || v[0] != 4 {
		t.Fatalf("store after replay: %v %v", v, ok)
	}
	// Replay of already-covered entries is a no-op.
	if got := n.Replay(entries); got != 0 {
		t.Fatalf("duplicate replay gained %d", got)
	}
	// Post-attach writes journal normally.
	n.ClientWrite(0, "new", []byte("n"))
	if len(j.entries) != 1 {
		t.Fatalf("post-attach write journaled %d entries", len(j.entries))
	}
}
