package mc

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/demand"
	"repro/internal/policy"
	"repro/internal/topology"
)

func baConfig(n int, seed int64, fast bool) Config {
	r := rand.New(rand.NewSource(seed))
	g := topology.BarabasiAlbert(n, 2, r)
	field := demand.Uniform(n, 1, 101, r)
	var factory policy.Factory
	if fast {
		factory = policy.NewDynamicOrdered
	} else {
		factory = policy.NewRandom
	}
	cfg := NewConfig(g, field, factory)
	cfg.FastPush = fast
	return cfg
}

func TestRunTrialCompletes(t *testing.T) {
	cfg := baConfig(30, 1, false)
	res := RunTrial(cfg, 42)
	if !res.Completed {
		t.Fatal("weak-consistency trial did not converge")
	}
	for i, v := range res.Times {
		if math.IsInf(v, 1) {
			t.Errorf("node %d never converged", i)
		}
		if v < 0 {
			t.Errorf("node %d converged at negative time %g", i, v)
		}
	}
	if res.Times[res.Origin] != 0 {
		t.Errorf("origin time = %g, want 0", res.Times[res.Origin])
	}
	if res.Sessions == 0 || res.Messages == 0 {
		t.Errorf("no activity recorded: %+v", res)
	}
}

func TestRunTrialDeterministic(t *testing.T) {
	cfg := baConfig(25, 3, true)
	a := RunTrial(cfg, 7)
	b := RunTrial(cfg, 7)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different trial results")
	}
	c := RunTrial(cfg, 8)
	if reflect.DeepEqual(a.Times, c.Times) {
		t.Error("different seeds produced identical times (suspicious)")
	}
}

func TestTrialResultAccessors(t *testing.T) {
	res := TrialResult{Times: []float64{0, 2, 5, 1}}
	if got := res.TimeAll(); got != 5 {
		t.Errorf("TimeAll = %g, want 5", got)
	}
	if got := res.TimeOver([]NodeID{1, 3}); got != 2 {
		t.Errorf("TimeOver = %g, want 2", got)
	}
	if got := res.MeanTime(); got != 2 {
		t.Errorf("MeanTime = %g, want 2", got)
	}
	if !math.IsNaN((TrialResult{}).MeanTime()) {
		t.Error("MeanTime of empty result should be NaN")
	}
}

func TestFixedOrigin(t *testing.T) {
	cfg := baConfig(20, 5, false)
	cfg.Origin = 7
	for seed := int64(0); seed < 3; seed++ {
		if res := RunTrial(cfg, seed); res.Origin != 7 {
			t.Errorf("origin = %v, want n7", res.Origin)
		}
	}
}

func TestFastPushGainsEntries(t *testing.T) {
	cfg := baConfig(30, 9, true)
	res := RunTrial(cfg, 1)
	if res.FastGained == 0 {
		t.Error("fast trial recorded no fast-update gains")
	}
	weak := baConfig(30, 9, false)
	if res := RunTrial(weak, 1); res.FastGained != 0 {
		t.Error("weak trial recorded fast-update gains")
	}
}

// The headline reproduction check at reduced scale: on a 50-node power-law
// topology, fast consistency must (a) reach high-demand replicas in ~1
// session, and (b) reach all replicas faster than weak consistency.
func TestFastBeatsWeak50Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte-Carlo comparison in -short mode")
	}
	const trials = 150
	weak := RunMany(baConfig(50, 11, false), trials, 1000, 0.2)
	fast := RunMany(baConfig(50, 11, true), trials, 1000, 0.2)

	if weak.Incomplete > 0 || fast.Incomplete > 0 {
		t.Fatalf("incomplete trials: weak=%d fast=%d", weak.Incomplete, fast.Incomplete)
	}
	wAll, fAll := weak.TimeAll.Mean(), fast.TimeAll.Mean()
	fHigh := fast.TimeHigh.Mean()
	t.Logf("weak all=%.3f fast all=%.3f fast high=%.3f", wAll, fAll, fHigh)

	if fAll >= wAll {
		t.Errorf("fast TimeAll mean %.3f not better than weak %.3f", fAll, wAll)
	}
	if fHigh >= 2.0 {
		t.Errorf("fast high-demand mean %.3f sessions, paper reports ~1", fHigh)
	}
	if fHigh >= fAll {
		t.Errorf("high-demand subset (%.3f) should converge before all (%.3f)", fHigh, fAll)
	}
	// Paper: high-demand zones reach consistency "up to six times quicker";
	// require at least 2x at this reduced trial count.
	if ratio := weak.TimeHigh.Mean() / fHigh; ratio < 2 {
		t.Errorf("high-demand speedup = %.2fx, want >= 2x", ratio)
	}
}

// §8: "The worst case would be when all the replicas possess the same
// demand; in such a situation the algorithm behaves like a normal weak
// consistency algorithm." Equal demand must not make fast *worse* than weak
// beyond noise.
func TestEqualDemandDegeneratesToWeak(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte-Carlo comparison in -short mode")
	}
	r := rand.New(rand.NewSource(21))
	g := topology.BarabasiAlbert(40, 2, r)
	flat := make(demand.Static, 40)
	for i := range flat {
		flat[i] = 10
	}
	const trials = 100
	weakCfg := NewConfig(g, flat, policy.NewRandom)
	fastCfg := NewConfig(g, flat, policy.NewDynamicOrdered)
	// Note: FastPush stays on — with equal demand the chain dies after one
	// hop because every neighbour declines duplicates quickly.
	fastCfg.FastPush = true
	weak := RunMany(weakCfg, trials, 500, 0.2)
	fast := RunMany(fastCfg, trials, 500, 0.2)
	wAll, fAll := weak.TimeAll.Mean(), fast.TimeAll.Mean()
	t.Logf("equal demand: weak=%.3f fast=%.3f", wAll, fAll)
	// Allow generous tolerance: fast should be within [0.3x, 1.5x] of weak.
	if fAll > 1.5*wAll {
		t.Errorf("equal-demand fast (%.3f) much worse than weak (%.3f)", fAll, wAll)
	}
}

func TestRunManyAggregates(t *testing.T) {
	cfg := baConfig(15, 31, true)
	agg := RunMany(cfg, 20, 99, 0.2)
	if agg.Trials != 20 {
		t.Errorf("Trials = %d, want 20", agg.Trials)
	}
	if agg.TimeAll.N() != 20-agg.Incomplete {
		t.Errorf("TimeAll has %d samples, want %d", agg.TimeAll.N(), 20-agg.Incomplete)
	}
	if agg.NodeTimes.N() != (20-agg.Incomplete)*15 {
		t.Errorf("NodeTimes has %d samples", agg.NodeTimes.N())
	}
	// TimeHigh <= TimeAll per trial, so the means must respect that too.
	if agg.TimeHigh.Mean() > agg.TimeAll.Mean()+1e-9 {
		t.Errorf("TimeHigh mean %.3f exceeds TimeAll mean %.3f",
			agg.TimeHigh.Mean(), agg.TimeAll.Mean())
	}
}

func TestRunManyDeterministicAcrossParallelism(t *testing.T) {
	cfg := baConfig(12, 41, true)
	a := RunMany(cfg, 10, 7, 0.2)
	b := RunMany(cfg, 10, 7, 0.2)
	if a.TimeAll.Mean() != b.TimeAll.Mean() || a.Sessions.Mean() != b.Sessions.Mean() {
		t.Error("RunMany not deterministic across runs")
	}
}

func TestRunManyPanicsOnZeroTrials(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RunMany with 0 trials should panic")
		}
	}()
	RunMany(baConfig(10, 1, false), 0, 1, 0.2)
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RunTrial without Graph should panic")
		}
	}()
	RunTrial(Config{}, 1)
}

func TestHorizonAbortsDisconnected(t *testing.T) {
	// Two components: the write can never reach the other side; the trial
	// must abort at the horizon rather than hang.
	g := topology.New(4, "split")
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	cfg := NewConfig(g, demand.Static{1, 1, 1, 1}, policy.NewRandom)
	cfg.Horizon = 20
	cfg.Origin = 0
	res := RunTrial(cfg, 1)
	if res.Completed {
		t.Fatal("disconnected trial reported completion")
	}
	if !math.IsInf(res.Times[2], 1) || !math.IsInf(res.Times[3], 1) {
		t.Error("unreachable nodes should have +Inf times")
	}
	if math.IsInf(res.Times[1], 1) {
		t.Error("reachable node should have converged")
	}
}

func TestStaleTablesWithRefreshInterval(t *testing.T) {
	// With a large refresh interval the dynamic policy sees stale demand,
	// but the protocol must still converge (weak consistency guarantees
	// eventual delivery regardless of selection order).
	cfg := baConfig(20, 51, true)
	cfg.RefreshInterval = 5
	res := RunTrial(cfg, 3)
	if !res.Completed {
		t.Error("trial with stale tables did not converge")
	}
}

func BenchmarkTrialWeak50(b *testing.B) {
	cfg := baConfig(50, 1, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunTrial(cfg, int64(i))
	}
}

func BenchmarkTrialFast50(b *testing.B) {
	cfg := baConfig(50, 1, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunTrial(cfg, int64(i))
	}
}

func TestLinkFilterDropsMessages(t *testing.T) {
	// With every link filtered out, the write never leaves the origin and
	// the trial aborts at the horizon.
	cfg := baConfig(10, 61, false)
	cfg.Horizon = 15
	cfg.Origin = 0
	cfg.LinkFilter = func(from, to NodeID, t float64) bool { return false }
	res := RunTrial(cfg, 1)
	if res.Completed {
		t.Fatal("fully filtered trial reported completion")
	}
	for id := 1; id < 10; id++ {
		if !math.IsInf(res.Times[id], 1) {
			t.Fatalf("node %d received the write through a dead network", id)
		}
	}
}

func TestLinkFilterHealsPartition(t *testing.T) {
	// Messages blocked before t=3, allowed after: the system must converge
	// shortly after the heal.
	cfg := baConfig(15, 67, false)
	cfg.Origin = 0
	cfg.LinkFilter = func(from, to NodeID, tm float64) bool { return tm >= 3 }
	res := RunTrial(cfg, 2)
	if !res.Completed {
		t.Fatal("healed trial did not converge")
	}
	// Nobody but the origin can have the write before the heal.
	for id, tm := range res.Times {
		if NodeID(id) != res.Origin && tm < 3 {
			t.Errorf("node %d converged at %.2f, before the heal", id, tm)
		}
	}
}
