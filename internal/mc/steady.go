package mc

import (
	"math"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// SteadyConfig describes a continuous-workload simulation: writes keep
// arriving while clients keep reading, and we measure how stale the content
// each client sees is. This extends the paper's single-write methodology to
// the steady state its §6 reasons about ("in the longer term those replicas
// with lower or reduced demand will tend to have less updated (i.e. stale)
// content").
type SteadyConfig struct {
	// Config embeds the propagation setup (graph, field, policy, push...).
	Config
	// WriteRate is the system-wide Poisson rate of client writes per
	// session unit; each write lands on a uniformly random replica.
	WriteRate float64
	// ReadScale converts a replica's demand into its client read rate:
	// reads/session = demand * ReadScale. Demand is the paper's "requests
	// per unit of time", so ReadScale is just a units knob (default 0.05 to
	// keep event counts tractable).
	ReadScale float64
	// Duration is the simulated time to run (after Warmup).
	Duration float64
	// Warmup lets the system reach steady state before measurement starts.
	Warmup float64
	// TruncateKeep, when > 0, makes every replica aggressively truncate its
	// write log every TruncateInterval, keeping only the most recent
	// TruncateKeep entries per origin. Lagging partners then require
	// full-state snapshot transfers — the storage/session-size trade-off of
	// Bayou's log truncation (paper §7).
	TruncateKeep int
	// TruncateInterval is the truncation period in session units
	// (default 1 when TruncateKeep > 0).
	TruncateInterval float64
}

// SteadyResult reports steady-state staleness.
type SteadyResult struct {
	// Reads counts measured client reads.
	Reads uint64
	// MeanLag is the read-weighted mean number of globally issued writes a
	// replica had not yet received at the moment of a read — 0 means every
	// read saw fully consistent content.
	MeanLag float64
	// FreshFrac is the fraction of reads that saw every write issued at
	// least Grace sessions earlier (Grace fixed at 1).
	FreshFrac float64
	// PerNodeLag is each replica's mean lag (unweighted by reads).
	PerNodeLag []float64
	// HighLag / LowLag are read-weighted mean lags over the top-20% and
	// bottom-20% demand replicas.
	HighLag, LowLag float64
	// Writes counts writes issued during measurement.
	Writes uint64
	// Snapshots counts full-state transfers sent (nonzero only when
	// truncation outpaces some partner).
	Snapshots uint64
	// Truncated counts log entries discarded by truncation.
	Truncated uint64
}

// RunSteady executes a continuous-workload simulation.
func RunSteady(cfg SteadyConfig, seed int64) SteadyResult {
	cfg.applyDefaults()
	if cfg.WriteRate <= 0 {
		cfg.WriteRate = 1
	}
	if cfg.ReadScale <= 0 {
		cfg.ReadScale = 0.05
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 50
	}
	if cfg.Warmup < 0 {
		cfg.Warmup = 0
	}
	end := cfg.Warmup + cfg.Duration

	r := rand.New(rand.NewSource(seed))
	eng := sim.New()
	n := cfg.Graph.N()

	nodes := make([]*node.Node, n)
	for i := 0; i < n; i++ {
		id := NodeID(i)
		nbrs := cfg.Graph.NeighborsCopy(id)
		nodes[i] = node.New(node.Config{
			ID:           id,
			Neighbors:    nbrs,
			Selector:     cfg.Policy(id, nbrs),
			FastPush:     cfg.FastPush,
			FanOut:       cfg.FanOut,
			GradientOnly: cfg.GradientOnly,
			Demand:       func(now float64) float64 { return cfg.Field.At(id, now) },
		})
		nodes[i].Table().RefreshAll(cfg.Field, 0)
	}

	pipe := newDelivery(eng, cfg.LinkDelay, cfg.LinkFilter)
	send := pipe.send
	refresh := func(id NodeID) {
		if cfg.RefreshInterval == 0 {
			nodes[id].Table().RefreshAll(cfg.Field, eng.Now())
		}
	}
	pipe.deliver = func(env protocol.Envelope) {
		refresh(env.To)
		send(nodes[env.To].HandleMessage(eng.Now(), env))
	}

	// Sessions: one persistent tick closure per node, as in RunTrial.
	ticks := make([]func(), n)
	for i := 0; i < n; i++ {
		id := NodeID(i)
		ticks[i] = func() {
			if eng.Now() > end {
				return
			}
			refresh(id)
			send(nodes[id].StartSession(eng.Now(), r))
			eng.After(sim.ExpInterval(r, cfg.SessionMean), ticks[id])
		}
		eng.After(sim.ExpInterval(r, cfg.SessionMean), ticks[i])
	}

	// Periodic aggressive truncation (optional).
	res := SteadyResult{PerNodeLag: make([]float64, n)}
	if cfg.TruncateKeep > 0 {
		interval := cfg.TruncateInterval
		if interval <= 0 {
			interval = 1
		}
		var scheduleTruncate func(id NodeID)
		scheduleTruncate = func(id NodeID) {
			eng.After(interval, func() {
				if eng.Now() > end {
					return
				}
				res.Truncated += uint64(nodes[id].Log().TruncateKeepLast(cfg.TruncateKeep))
				scheduleTruncate(id)
			})
		}
		for i := 0; i < n; i++ {
			scheduleTruncate(NodeID(i))
		}
	}

	// Writes: Poisson(WriteRate), random origin. writeTimes tracks when
	// each global write was issued (for the Grace freshness check).
	var totalWrites uint64
	var writeTimes []float64
	var scheduleWrite func()
	scheduleWrite = func() {
		eng.After(sim.ExpInterval(r, 1/cfg.WriteRate), func() {
			if eng.Now() > end {
				return
			}
			origin := NodeID(r.Intn(n))
			refresh(origin)
			_, out := nodes[origin].ClientWrite(eng.Now(), "k", []byte{byte(totalWrites)})
			totalWrites++
			writeTimes = append(writeTimes, eng.Now())
			if eng.Now() >= cfg.Warmup {
				res.Writes++
			}
			send(out)
			scheduleWrite()
		})
	}
	scheduleWrite()

	// Reads: per node, Poisson(demand*ReadScale). A read's lag is the
	// number of issued writes the node has not received. The Grace check
	// ignores writes issued within the last 1 session (they cannot
	// reasonably have arrived anywhere yet).
	const grace = 1.0
	perNodeReads := make([]uint64, n)
	perNodeLagSum := make([]float64, n)
	var lagSum float64
	var freshReads uint64
	var scheduleRead func(id NodeID)
	scheduleRead = func(id NodeID) {
		d := cfg.Field.At(id, eng.Now())
		rate := d * cfg.ReadScale
		if rate <= 0 {
			// Zero-demand replicas never read; re-check later in case the
			// field is dynamic.
			eng.After(1, func() {
				if eng.Now() <= end {
					scheduleRead(id)
				}
			})
			return
		}
		eng.After(sim.ExpInterval(r, 1/rate), func() {
			if eng.Now() > end {
				return
			}
			if eng.Now() >= cfg.Warmup {
				covered := nodes[id].SummaryTotal()
				lag := float64(totalWrites) - float64(covered)
				if lag < 0 {
					lag = 0
				}
				res.Reads++
				perNodeReads[id]++
				perNodeLagSum[id] += lag
				lagSum += lag
				// Fresh if every write older than grace is covered.
				graceCut := eng.Now() - grace
				matured := uint64(0)
				for i := len(writeTimes) - 1; i >= 0; i-- {
					if writeTimes[i] <= graceCut {
						matured = uint64(i + 1)
						break
					}
				}
				if covered >= matured {
					freshReads++
				}
			}
			scheduleRead(id)
		})
	}
	for i := 0; i < n; i++ {
		scheduleRead(NodeID(i))
	}

	eng.RunUntil(end)

	if res.Reads > 0 {
		res.MeanLag = lagSum / float64(res.Reads)
		res.FreshFrac = float64(freshReads) / float64(res.Reads)
	} else {
		res.MeanLag = math.NaN()
		res.FreshFrac = math.NaN()
	}
	for i := 0; i < n; i++ {
		if perNodeReads[i] > 0 {
			res.PerNodeLag[i] = perNodeLagSum[i] / float64(perNodeReads[i])
		}
	}

	// Read-weighted lag over the demand extremes.
	rank := make([]int, n)
	for i := range rank {
		rank[i] = i
	}
	// Sort indexes by demand descending (insertion sort; n is small).
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			di := cfg.Field.At(NodeID(rank[j]), 0)
			dj := cfg.Field.At(NodeID(rank[j-1]), 0)
			if di > dj {
				rank[j], rank[j-1] = rank[j-1], rank[j]
			} else {
				break
			}
		}
	}
	k := n / 5
	if k < 1 {
		k = 1
	}
	group := func(ids []int) float64 {
		var lag, reads float64
		for _, i := range ids {
			lag += perNodeLagSum[i]
			reads += float64(perNodeReads[i])
		}
		if reads == 0 {
			return math.NaN()
		}
		return lag / reads
	}
	res.HighLag = group(rank[:k])
	res.LowLag = group(rank[n-k:])
	for _, nd := range nodes {
		res.Snapshots += nd.Stats().SnapshotsSent
	}
	return res
}

// SteadySamplesToTable is a small helper for experiment output: renders a
// labelled staleness comparison.
func SteadySamplesToTable(labels []string, results []SteadyResult) *metrics.Table {
	tab := metrics.NewTable("configuration", "reads", "mean lag (writes)",
		"fresh-read fraction", "lag @ hottest 20%", "lag @ coldest 20%")
	for i, res := range results {
		tab.AddRow(labels[i], int(res.Reads), res.MeanLag, res.FreshFrac, res.HighLag, res.LowLag)
	}
	return tab
}
