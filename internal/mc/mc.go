// Package mc is the Monte-Carlo session-level simulator that reproduces the
// paper's §5 methodology: "The simulation begins by assuming a change on a
// randomly chosen replica, with the aim of measuring the number of sessions
// the algorithm uses to propagate this change, both in the replica with most
// demand and in those with less demand."
//
// Each trial builds one replica per graph node, schedules anti-entropy
// sessions per node at exponential intervals (mean = 1 "session time"),
// injects a single client write at a random origin at t = 0, and records,
// for every node, the simulated time at which it first covers that write.
// Fast-update chains travel at link-propagation delay (ε ≪ 1 session), so
// the paper's observation that high-demand replicas converge "on an average
// of 1 session" falls out of the mechanism rather than being baked in.
package mc

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/demand"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/vclock"
)

// NodeID aliases the replica identifier.
type NodeID = vclock.NodeID

// Config describes one simulated system.
type Config struct {
	// Graph is the replica interconnection topology. Required, connected.
	Graph *topology.Graph
	// Field gives each replica's demand over time. Required.
	Field demand.Field
	// Policy builds each node's partner selector. Required.
	Policy policy.Factory
	// FastPush enables the §2.1 part-two fast-update chains.
	FastPush bool
	// FanOut is the fast-offer fan-out (default 1, the paper's algorithm).
	FanOut int
	// GradientOnly restricts fast offers to strictly higher-demand
	// neighbours (ablation; default false = paper behaviour).
	GradientOnly bool
	// LinkDelay is the message propagation delay in session units
	// (default 0.01). The paper: "the time it takes for the message to
	// arrive ... is in fact the propagation delay associated to the link".
	LinkDelay float64
	// SessionMean is the mean inter-session interval per node (default 1;
	// this defines the "session" time unit of the figures).
	SessionMean float64
	// RefreshInterval controls demand-table freshness: 0 (default) models
	// the paper's assumption that "every node is periodically informed of
	// the demand of their neighbours" with negligible staleness (tables are
	// refreshed from ground truth before every use); a positive value
	// refreshes each node's table only at that period, exposing the
	// staleness the dynamic algorithm of §4 must tolerate.
	RefreshInterval float64
	// Horizon aborts a trial at this simulated time (default 200).
	Horizon float64
	// Origin, when >= 0, fixes the writing replica; -1 (default via
	// NewConfig) picks a random origin per trial, as in the paper.
	Origin int
	// LinkFilter, when non-nil, gates message delivery: a message from
	// `from` to `to` sent at time t is silently dropped unless the filter
	// returns true. It models partitions and lossy links — the paper's
	// introduction motivates replication partly by the need "to tolerate
	// failure in the links, and also to withstand segmentation".
	LinkFilter func(from, to NodeID, t float64) bool
}

// NewConfig returns a Config with the defaults described above.
func NewConfig(g *topology.Graph, f demand.Field, p policy.Factory) Config {
	return Config{
		Graph:       g,
		Field:       f,
		Policy:      p,
		LinkDelay:   0.01,
		SessionMean: 1,
		Horizon:     200,
		Origin:      -1,
	}
}

func (c *Config) applyDefaults() {
	if c.Graph == nil || c.Field == nil || c.Policy == nil {
		panic("mc: Config requires Graph, Field and Policy")
	}
	if c.LinkDelay <= 0 {
		c.LinkDelay = 0.01
	}
	if c.SessionMean <= 0 {
		c.SessionMean = 1
	}
	if c.Horizon <= 0 {
		c.Horizon = 200
	}
}

// TrialResult reports one trial.
type TrialResult struct {
	// Origin is the replica that accepted the write.
	Origin NodeID
	// Times[i] is the simulated time (session units) at which replica i
	// first covered the write; +Inf if the trial aborted first.
	Times []float64
	// Completed reports whether every replica converged before Horizon.
	Completed bool
	// Sessions counts anti-entropy sessions initiated system-wide until
	// completion (or abort).
	Sessions uint64
	// Messages counts protocol envelopes delivered.
	Messages uint64
	// FastGained counts entries first learned via fast update across nodes.
	FastGained uint64
}

// TimeAll returns the time at which the last replica converged (the paper's
// "sessions to reach all replicas").
func (t TrialResult) TimeAll() float64 {
	worst := 0.0
	for _, v := range t.Times {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// TimeOver returns the worst convergence time over the given subset.
func (t TrialResult) TimeOver(subset []NodeID) float64 {
	worst := 0.0
	for _, id := range subset {
		if v := t.Times[id]; v > worst {
			worst = v
		}
	}
	return worst
}

// MeanTime returns the mean per-replica convergence time.
func (t TrialResult) MeanTime() float64 {
	if len(t.Times) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range t.Times {
		sum += v
	}
	return sum / float64(len(t.Times))
}

// delivery is the constant-delay FIFO message pipe shared by RunTrial and
// RunSteady. Because every envelope travels for the same LinkDelay,
// envelopes become due in exactly the order they were sent, so one
// recurring drain event delivers them all instead of one closure-capturing
// event per envelope — keeping the per-message cost of the simulator's
// inner loop allocation-free.
type delivery struct {
	eng     *sim.Engine
	delay   float64
	filter  func(from, to NodeID, t float64) bool
	deliver func(protocol.Envelope)

	queue   []timedEnv
	qhead   int
	pending bool
	drainFn func() // pre-bound drain method value, reused across schedules
}

type timedEnv struct {
	due float64
	env protocol.Envelope
}

// newDelivery builds a pipe; the caller assigns deliver before first use.
func newDelivery(eng *sim.Engine, delay float64, filter func(from, to NodeID, t float64) bool) *delivery {
	d := &delivery{eng: eng, delay: delay, filter: filter}
	d.drainFn = d.drain
	return d
}

// send enqueues envelopes for delivery after the link delay.
func (d *delivery) send(envs []protocol.Envelope) {
	for _, env := range envs {
		if d.filter != nil && !d.filter(env.From, env.To, d.eng.Now()) {
			continue // dropped by partition/loss model
		}
		d.queue = append(d.queue, timedEnv{due: d.eng.Now() + d.delay, env: env})
	}
	d.schedule()
}

func (d *delivery) schedule() {
	if d.pending || d.qhead >= len(d.queue) {
		return
	}
	d.pending = true
	d.eng.At(d.queue[d.qhead].due, d.drainFn)
}

func (d *delivery) drain() {
	d.pending = false
	for d.qhead < len(d.queue) && d.queue[d.qhead].due <= d.eng.Now() {
		env := d.queue[d.qhead].env
		d.queue[d.qhead] = timedEnv{}
		d.qhead++
		d.deliver(env)
	}
	if d.qhead >= len(d.queue) {
		d.queue = d.queue[:0]
		d.qhead = 0
		return
	}
	// Compact the consumed prefix once it dominates the slice, so queue
	// memory tracks messages in flight rather than messages ever sent.
	if d.qhead > 64 && d.qhead > len(d.queue)/2 {
		n := copy(d.queue, d.queue[d.qhead:])
		d.queue = d.queue[:n]
		d.qhead = 0
	}
	d.schedule()
}

// RunTrial executes one trial with the given seed.
func RunTrial(cfg Config, seed int64) TrialResult {
	cfg.applyDefaults()
	r := rand.New(rand.NewSource(seed))
	eng := sim.New()
	n := cfg.Graph.N()

	nodes := make([]*node.Node, n)
	for i := 0; i < n; i++ {
		id := NodeID(i)
		nbrs := cfg.Graph.NeighborsCopy(id)
		nodes[i] = node.New(node.Config{
			ID:           id,
			Neighbors:    nbrs,
			Selector:     cfg.Policy(id, nbrs),
			FastPush:     cfg.FastPush,
			FanOut:       cfg.FanOut,
			GradientOnly: cfg.GradientOnly,
			Demand: func(now float64) float64 {
				return cfg.Field.At(id, now)
			},
		})
	}

	res := TrialResult{Times: make([]float64, n)}
	for i := range res.Times {
		res.Times[i] = math.Inf(1)
	}
	remaining := n
	done := func() bool { return remaining == 0 }
	record := func(id NodeID, ref vclock.Timestamp) {
		if math.IsInf(res.Times[id], 1) && nodes[id].Covers(ref) {
			res.Times[id] = eng.Now()
			remaining--
		}
	}

	refresh := func(id NodeID) {
		if cfg.RefreshInterval == 0 {
			nodes[id].Table().RefreshAll(cfg.Field, eng.Now())
		}
	}
	// Initial table fill so demand-ordered policies have data from t=0.
	for i := 0; i < n; i++ {
		nodes[i].Table().RefreshAll(cfg.Field, 0)
	}
	if cfg.RefreshInterval > 0 {
		var scheduleRefresh func(id NodeID)
		scheduleRefresh = func(id NodeID) {
			eng.After(cfg.RefreshInterval, func() {
				nodes[id].Table().RefreshAll(cfg.Field, eng.Now())
				if eng.Now() < cfg.Horizon && !done() {
					scheduleRefresh(id)
				}
			})
		}
		for i := 0; i < n; i++ {
			scheduleRefresh(NodeID(i))
		}
	}

	// The write whose propagation we measure.
	origin := NodeID(r.Intn(n))
	if cfg.Origin >= 0 {
		origin = NodeID(cfg.Origin)
	}

	var ref vclock.Timestamp
	pipe := newDelivery(eng, cfg.LinkDelay, cfg.LinkFilter)
	send := pipe.send
	pipe.deliver = func(env protocol.Envelope) {
		dst := nodes[env.To]
		refresh(env.To)
		out := dst.HandleMessage(eng.Now(), env)
		res.Messages++
		record(env.To, ref)
		send(out)
	}

	// One persistent tick closure per node, re-armed after every session, so
	// session scheduling does not allocate a fresh closure per event.
	ticks := make([]func(), n)
	for i := 0; i < n; i++ {
		id := NodeID(i)
		ticks[i] = func() {
			if done() || eng.Now() > cfg.Horizon {
				return
			}
			refresh(id)
			out := nodes[id].StartSession(eng.Now(), r)
			if len(out) > 0 {
				res.Sessions++
			}
			send(out)
			eng.After(sim.ExpInterval(r, cfg.SessionMean), ticks[id])
		}
		eng.After(sim.ExpInterval(r, cfg.SessionMean), ticks[i])
	}

	// Inject the write at t=0 (before any session fires).
	refresh(origin)
	entry, out := nodes[origin].ClientWrite(0, "change", []byte("payload"))
	ref = entry.TS
	res.Origin = origin
	record(origin, ref)
	send(out)

	eng.Run()

	res.Completed = done()
	for _, nd := range nodes {
		res.FastGained += nd.Stats().FastEntriesGained
	}
	return res
}

// Aggregate pools trial results into the samples the figures plot.
type Aggregate struct {
	// TimeAll: per-trial time until every replica converged (the paper's
	// "reach all replicas" series).
	TimeAll *metrics.Sample
	// TimeHigh: per-trial time until the high-demand subset (top HighFrac
	// of demand at t=0) converged — the paper's "replicas with most demand".
	TimeHigh *metrics.Sample
	// NodeTimes pools each replica's individual convergence time across all
	// trials (useful for per-replica CDFs).
	NodeTimes *metrics.Sample
	// Sessions pools system-wide session counts per trial.
	Sessions *metrics.Sample
	// Incomplete counts trials that hit the horizon before convergence.
	Incomplete int
	// Trials is the number of trials run.
	Trials int
}

// RunMany runs `trials` independent trials (seeds baseSeed, baseSeed+1, …)
// in parallel and aggregates. highFrac defines the high-demand subset (the
// experiments use 0.2).
func RunMany(cfg Config, trials int, baseSeed int64, highFrac float64) Aggregate {
	cfg.applyDefaults()
	if trials <= 0 {
		panic(fmt.Sprintf("mc: non-positive trial count %d", trials))
	}
	n := cfg.Graph.N()
	high := demand.TopFraction(cfg.Field, n, 0, highFrac)

	results := make([]TrialResult, trials)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				results[idx] = RunTrial(cfg, baseSeed+int64(idx))
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	agg := Aggregate{
		TimeAll:   metrics.NewSample(trials),
		TimeHigh:  metrics.NewSample(trials),
		NodeTimes: metrics.NewSample(trials * n),
		Sessions:  metrics.NewSample(trials),
		Trials:    trials,
	}
	for _, res := range results {
		if !res.Completed {
			agg.Incomplete++
			continue
		}
		agg.TimeAll.Add(res.TimeAll())
		agg.TimeHigh.Add(res.TimeOver(high))
		agg.NodeTimes.AddAll(res.Times)
		agg.Sessions.Add(float64(res.Sessions))
	}
	return agg
}
