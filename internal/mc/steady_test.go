package mc

import (
	"math"
	"testing"

	"repro/internal/demand"
	"repro/internal/policy"
	"repro/internal/topology"
)

func steadyConfig(fast bool) SteadyConfig {
	base := baConfig(30, 7, fast)
	return SteadyConfig{
		Config:    base,
		WriteRate: 1,
		ReadScale: 0.05,
		Duration:  30,
		Warmup:    5,
	}
}

func TestRunSteadyProducesReads(t *testing.T) {
	res := RunSteady(steadyConfig(true), 1)
	if res.Reads == 0 {
		t.Fatal("no reads measured")
	}
	if res.Writes == 0 {
		t.Fatal("no writes issued")
	}
	if math.IsNaN(res.MeanLag) || res.MeanLag < 0 {
		t.Errorf("MeanLag = %g", res.MeanLag)
	}
	if res.FreshFrac < 0 || res.FreshFrac > 1 {
		t.Errorf("FreshFrac = %g", res.FreshFrac)
	}
	if len(res.PerNodeLag) != 30 {
		t.Errorf("PerNodeLag size = %d", len(res.PerNodeLag))
	}
}

func TestRunSteadyDeterministic(t *testing.T) {
	a := RunSteady(steadyConfig(true), 5)
	b := RunSteady(steadyConfig(true), 5)
	if a.Reads != b.Reads || a.MeanLag != b.MeanLag || a.FreshFrac != b.FreshFrac {
		t.Error("RunSteady not deterministic for equal seeds")
	}
}

func TestSteadyFastBeatsWeakOnReadWeightedLag(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping steady-state comparison in -short mode")
	}
	fast := RunSteady(steadyConfig(true), 3)
	weak := RunSteady(steadyConfig(false), 3)
	t.Logf("fast: lag=%.3f fresh=%.3f high=%.3f low=%.3f",
		fast.MeanLag, fast.FreshFrac, fast.HighLag, fast.LowLag)
	t.Logf("weak: lag=%.3f fresh=%.3f high=%.3f low=%.3f",
		weak.MeanLag, weak.FreshFrac, weak.HighLag, weak.LowLag)
	// Read-weighted lag must improve: that is the whole point of demand
	// prioritisation (reads concentrate where lag is made small).
	if fast.MeanLag >= weak.MeanLag {
		t.Errorf("fast mean lag %.3f not below weak %.3f", fast.MeanLag, weak.MeanLag)
	}
	// The §6 asymmetry: under fast consistency, hot replicas lag less than
	// cold ones.
	if !(fast.HighLag < fast.LowLag) {
		t.Errorf("expected high-demand lag (%.3f) < low-demand lag (%.3f) under fast",
			fast.HighLag, fast.LowLag)
	}
}

func TestRunSteadyZeroDemandNodes(t *testing.T) {
	// Nodes with zero demand never read; the simulation must still run and
	// other nodes must still measure.
	g := topology.Line(4)
	field := demand.Static{0, 5, 0, 5}
	cfg := SteadyConfig{
		Config:    NewConfig(g, field, policy.NewDynamicOrdered),
		WriteRate: 1,
		ReadScale: 0.1,
		Duration:  20,
	}
	cfg.FastPush = true
	res := RunSteady(cfg, 2)
	if res.Reads == 0 {
		t.Error("no reads from the nonzero-demand nodes")
	}
	if res.PerNodeLag[0] != 0 {
		t.Errorf("zero-demand node lag = %g, want 0 (never read)", res.PerNodeLag[0])
	}
}

func BenchmarkRunSteady30(b *testing.B) {
	cfg := steadyConfig(true)
	cfg.Duration = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunSteady(cfg, int64(i))
	}
}
