package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/topology"
)

func testSystem(t *testing.T, v Variant) *System {
	t.Helper()
	r := rand.New(rand.NewSource(5))
	g := topology.BarabasiAlbert(30, 2, r)
	f := demand.Uniform(30, 1, 101, r)
	s, err := NewSystem(g, f, v)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	g := topology.Line(3)
	f := demand.Static{1, 2, 3}
	if _, err := NewSystem(nil, f, FastConsistency); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewSystem(g, nil, FastConsistency); err == nil {
		t.Error("nil field accepted")
	}
	split := topology.New(2, "split")
	if _, err := NewSystem(split, demand.Static{1, 1}, FastConsistency); err == nil {
		t.Error("disconnected graph accepted")
	}
	s, err := NewSystem(g, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Variant() != FastConsistency {
		t.Errorf("zero variant = %v, want FastConsistency default", s.Variant())
	}
	if s.Graph() != g {
		t.Error("Graph() did not return the configured topology")
	}
}

func TestVariantString(t *testing.T) {
	want := map[Variant]string{
		FastConsistency:   "fast-consistency",
		WeakConsistency:   "weak-consistency",
		DemandOrderedOnly: "demand-ordered-only",
		FastPushOnly:      "fast-push-only",
		Variant(0):        "Variant(0)",
	}
	for v, name := range want {
		if got := v.String(); got != name {
			t.Errorf("Variant(%d).String() = %q, want %q", int(v), got, name)
		}
	}
}

func TestSimulateReport(t *testing.T) {
	s := testSystem(t, FastConsistency)
	rep := s.Simulate(30, 7)
	if rep.Trials == 0 || rep.Attempted != 30 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MeanSessionsHighDemand > rep.MeanSessionsAll {
		t.Errorf("high-demand mean %.3f > all mean %.3f", rep.MeanSessionsHighDemand, rep.MeanSessionsAll)
	}
	if rep.P95SessionsAll < rep.MeanSessionsAll {
		t.Errorf("p95 %.3f below mean %.3f", rep.P95SessionsAll, rep.MeanSessionsAll)
	}
	if !strings.Contains(rep.String(), "fast-consistency") {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestSimulateDeterministic(t *testing.T) {
	s := testSystem(t, WeakConsistency)
	a := s.Simulate(10, 3)
	b := s.Simulate(10, 3)
	if a.MeanSessionsAll != b.MeanSessionsAll {
		t.Error("Simulate not deterministic for equal seeds")
	}
}

func TestSimulateOnce(t *testing.T) {
	s := testSystem(t, FastConsistency)
	res := s.SimulateOnce(11)
	if !res.Completed {
		t.Error("single trial did not complete")
	}
	if res.TimeAll() <= 0 {
		t.Error("TimeAll should be positive for a 30-node system")
	}
}

func TestCompareOrdersVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Monte-Carlo comparison in -short mode")
	}
	r := rand.New(rand.NewSource(9))
	g := topology.BarabasiAlbert(40, 2, r)
	f := demand.Uniform(40, 1, 101, r)
	reports, err := Compare(g, f, 60, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(reports))
	}
	fast := reports[FastConsistency]
	weak := reports[WeakConsistency]
	t.Logf("fast=%v | weak=%v", fast, weak)
	if fast.MeanSessionsAll >= weak.MeanSessionsAll {
		t.Errorf("fast (%.3f) not better than weak (%.3f)", fast.MeanSessionsAll, weak.MeanSessionsAll)
	}
	if fast.MeanSessionsHighDemand >= weak.MeanSessionsHighDemand {
		t.Error("fast should reach high-demand replicas sooner than weak")
	}
}

func TestClusterLifecycle(t *testing.T) {
	s := testSystem(t, FastConsistency)
	cluster := s.Cluster()
	if err := cluster.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ts, err := cluster.Write(0, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if !cluster.WaitConverged(ctx) {
		t.Fatal("core-built cluster did not converge")
	}
	if !cluster.Covers(5, ts) {
		t.Error("replica n5 missing the write")
	}
}
