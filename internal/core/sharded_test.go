package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/topology"
)

func TestShardedServesKeyspace(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g := topology.BarabasiAlbert(12, 2, r)
	f := demand.Uniform(12, 1, 101, r)
	sys, err := NewSystem(g, f, FastConsistency)
	if err != nil {
		t.Fatal(err)
	}
	router, err := Sharded(sys, 3, shard.Config{Seed: 6},
		runtime.WithSessionInterval(5*time.Millisecond),
		runtime.WithAdvertInterval(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer router.Stop()

	if got := len(router.Shards()); got != 3 {
		t.Fatalf("router has %d shards, want 3", got)
	}
	if router.N() != 12 {
		t.Fatalf("router.N = %d, want the system's 12 replicas", router.N())
	}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("k%02d", i)
		if _, err := router.Write(key, []byte(key)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !router.WaitConverged(ctx) {
		t.Fatal("sharded system did not converge")
	}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("k%02d", i)
		v, ok, err := router.Read(key)
		if err != nil || !ok || string(v) != key {
			t.Fatalf("Read(%s) = %q ok=%t err=%v", key, v, ok, err)
		}
	}
}

func TestShardedPropagatesVariant(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g := topology.BarabasiAlbert(8, 2, r)
	f := demand.Uniform(8, 1, 101, r)
	sys, err := NewSystem(g, f, WeakConsistency)
	if err != nil {
		t.Fatal(err)
	}
	router, err := Sharded(sys, 2, shard.Config{Seed: 8},
		runtime.WithSessionInterval(time.Hour),
		runtime.WithAdvertInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer router.Stop()
	// Weak consistency has no fast push: a write cannot propagate before
	// the (hour-long) first sessions, so the owning group stays behind.
	rc, err := router.Write("weak-key", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	g2, ok := router.Group(rc.Shard)
	if !ok {
		t.Fatal("owning group missing")
	}
	if g2.Converged() {
		t.Error("weak-consistency shard converged instantly — fast push leaked through the variant")
	}
}

func TestShardedErrors(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := topology.BarabasiAlbert(6, 2, r)
	f := demand.Uniform(6, 1, 101, r)
	sys, err := NewSystem(g, f, FastConsistency)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sharded(sys, 0, shard.Config{}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := Sharded(sys, 7, shard.Config{}); err == nil {
		t.Error("more shards than nodes accepted")
	}
}
