// Package core is the high-level entry point to the fast-consistency
// library: it assembles topology, demand model, selection policy and the
// replica protocol into a System that can be studied two ways —
//
//   - Simulate: Monte-Carlo measurement under the discrete-event engine,
//     reproducing the paper's session-count methodology; and
//   - Cluster: a live goroutine-per-replica deployment over in-memory
//     message passing.
//
// The zero configuration runs the paper's full fast-consistency algorithm
// (demand-ordered dynamic selection plus fast-update push); Variant selects
// the weak-consistency baseline or each optimisation in isolation.
package core

import (
	"fmt"

	"repro/internal/demand"
	"repro/internal/mc"
	"repro/internal/policy"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/topology"
	"repro/internal/vclock"
)

// NodeID identifies a replica.
type NodeID = vclock.NodeID

// Variant selects a consistency algorithm.
type Variant int

// Algorithm variants.
const (
	// FastConsistency is the paper's contribution: demand-ordered dynamic
	// partner selection plus fast-update push (§2.1 parts 1 and 2).
	FastConsistency Variant = iota + 1
	// WeakConsistency is the Golding baseline: uniform random partner
	// selection, no push.
	WeakConsistency
	// DemandOrderedOnly enables only optimisation 1 (ordered selection).
	DemandOrderedOnly
	// FastPushOnly enables only optimisation 2 (push on random selection).
	FastPushOnly
)

// String returns the variant name.
func (v Variant) String() string {
	switch v {
	case FastConsistency:
		return "fast-consistency"
	case WeakConsistency:
		return "weak-consistency"
	case DemandOrderedOnly:
		return "demand-ordered-only"
	case FastPushOnly:
		return "fast-push-only"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// factoryAndPush maps a variant onto its policy factory and push flag.
func (v Variant) factoryAndPush() (policy.Factory, bool) {
	switch v {
	case WeakConsistency:
		return policy.NewRandom, false
	case DemandOrderedOnly:
		return policy.NewDynamicOrdered, false
	case FastPushOnly:
		return policy.NewRandom, true
	default:
		return policy.NewDynamicOrdered, true
	}
}

// System is a configured replicated system.
type System struct {
	graph   *topology.Graph
	field   demand.Field
	variant Variant
}

// NewSystem builds a system over the given topology and demand field.
func NewSystem(g *topology.Graph, f demand.Field, v Variant) (*System, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	if f == nil {
		return nil, fmt.Errorf("core: nil demand field")
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("core: topology %v is not connected", g)
	}
	if v == 0 {
		v = FastConsistency
	}
	return &System{graph: g, field: f, variant: v}, nil
}

// Graph returns the system's topology.
func (s *System) Graph() *topology.Graph { return s.graph }

// Variant returns the configured algorithm.
func (s *System) Variant() Variant { return s.variant }

// Report summarises a simulation.
type Report struct {
	// Variant that produced the report.
	Variant Variant
	// Trials completed (and attempted).
	Trials, Attempted int
	// MeanSessionsAll is the mean number of sessions until every replica
	// held the write — the paper's headline metric.
	MeanSessionsAll float64
	// MeanSessionsHighDemand is the same over the top-20%-demand replicas.
	MeanSessionsHighDemand float64
	// P95SessionsAll is the 95th percentile over trials.
	P95SessionsAll float64
	// Aggregate retains the full samples for CDFs and further analysis.
	Aggregate mc.Aggregate
}

// String renders the headline numbers.
func (r Report) String() string {
	return fmt.Sprintf("%v: all=%.3f high-demand=%.3f p95=%.3f (trials=%d)",
		r.Variant, r.MeanSessionsAll, r.MeanSessionsHighDemand, r.P95SessionsAll, r.Trials)
}

// Simulate runs `trials` Monte-Carlo propagation trials (one random-origin
// write each) and reports session statistics. Results are deterministic in
// (system, trials, seed).
func (s *System) Simulate(trials int, seed int64) Report {
	factory, push := s.variant.factoryAndPush()
	cfg := mc.NewConfig(s.graph, s.field, factory)
	cfg.FastPush = push
	agg := mc.RunMany(cfg, trials, seed, 0.2)
	return Report{
		Variant:                s.variant,
		Trials:                 agg.Trials - agg.Incomplete,
		Attempted:              agg.Trials,
		MeanSessionsAll:        agg.TimeAll.Mean(),
		MeanSessionsHighDemand: agg.TimeHigh.Mean(),
		P95SessionsAll:         agg.TimeAll.Percentile(95),
		Aggregate:              agg,
	}
}

// SimulateOnce runs a single seeded trial and returns the raw result.
func (s *System) SimulateOnce(seed int64) mc.TrialResult {
	factory, push := s.variant.factoryAndPush()
	cfg := mc.NewConfig(s.graph, s.field, factory)
	cfg.FastPush = push
	return mc.RunTrial(cfg, seed)
}

// Cluster builds (without starting) a live goroutine cluster running this
// system's algorithm. Callers Start/Stop it and inject writes via the
// runtime API.
func (s *System) Cluster(opts ...runtime.Option) *runtime.Cluster {
	factory, push := s.variant.factoryAndPush()
	all := append([]runtime.Option{
		runtime.WithPolicy(factory),
		runtime.WithFastPush(push),
	}, opts...)
	return runtime.New(s.graph, s.field, all...)
}

// Sharded builds (without starting) a consistent-hash router over nShards
// replica groups carved from this system's topology and demand field, every
// group running the system's algorithm variant independently. The router
// serves the same Write/Read/Watch/Converged surface as a single Cluster
// but scales horizontally: each write floods only its owning shard. cfg
// tunes the ring and routing; opts apply to every group's cluster.
func Sharded(s *System, nShards int, cfg shard.Config, opts ...runtime.Option) (*shard.Router, error) {
	specs, err := shard.Carve(s.graph, s.field, nShards)
	if err != nil {
		return nil, err
	}
	factory, push := s.variant.factoryAndPush()
	cfg.RuntimeOptions = append(append([]runtime.Option{
		runtime.WithPolicy(factory),
		runtime.WithFastPush(push),
	}, cfg.RuntimeOptions...), opts...)
	return shard.NewRouter(specs, cfg)
}

// Compare runs the same workload under every variant and returns the
// reports keyed by variant, for quick side-by-side studies.
func Compare(g *topology.Graph, f demand.Field, trials int, seed int64) (map[Variant]Report, error) {
	out := make(map[Variant]Report, 4)
	for _, v := range []Variant{FastConsistency, WeakConsistency, DemandOrderedOnly, FastPushOnly} {
		sys, err := NewSystem(g, f, v)
		if err != nil {
			return nil, err
		}
		out[v] = sys.Simulate(trials, seed)
	}
	return out, nil
}
