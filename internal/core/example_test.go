package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/shard"
	"repro/internal/topology"
)

// ExampleSharded partitions one replicated system into a consistent-hash
// keyspace of independent shard groups and serves client traffic through
// the router.
func ExampleSharded() {
	rng := rand.New(rand.NewSource(1))
	graph := topology.BarabasiAlbert(8, 2, rng)
	field := demand.Uniform(8, 1, 101, rng)
	sys, err := core.NewSystem(graph, field, core.FastConsistency)
	if err != nil {
		panic(err)
	}
	// Two shard groups of four replicas each, carved from the one graph.
	router, err := core.Sharded(sys, 2, shard.Config{Seed: 1})
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := router.Start(ctx); err != nil {
		panic(err)
	}
	defer router.Stop()

	// Writes route to the owning group; the receipt names it.
	if _, err := router.Write("user:42", []byte("profile-v1")); err != nil {
		panic(err)
	}
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	converged := router.WaitConverged(wctx)

	v, ok, err := router.Read("user:42")
	if err != nil {
		panic(err)
	}
	fmt.Printf("shards=%d value=%s found=%v converged=%v\n",
		len(router.Shards()), v, ok, converged)
	// Output:
	// shards=2 value=profile-v1 found=true converged=true
}
