package policy

import (
	"math/rand"
	"testing"

	"repro/internal/demand"
)

func tableWith(demands map[NodeID]float64) *demand.Table {
	var ids []NodeID
	for n := range demands {
		ids = append(ids, n)
	}
	t := demand.NewTable(ids)
	for n, d := range demands {
		t.Update(n, d, 0)
	}
	return t
}

func TestRandomCoversAllNeighbors(t *testing.T) {
	sel := NewRandom(0, []NodeID{1, 2, 3})
	table := tableWith(map[NodeID]float64{1: 5, 2: 5, 3: 5})
	r := rand.New(rand.NewSource(1))
	seen := map[NodeID]int{}
	for i := 0; i < 3000; i++ {
		partner, ok := sel.Next(0, table, r)
		if !ok {
			t.Fatal("Next returned not ok")
		}
		seen[partner]++
	}
	for _, n := range []NodeID{1, 2, 3} {
		if seen[n] < 800 {
			t.Errorf("neighbour %v chosen %d/3000 times, want ~1000", n, seen[n])
		}
	}
}

func TestRandomSkipsUnreachable(t *testing.T) {
	sel := NewRandom(0, []NodeID{1, 2})
	table := tableWith(map[NodeID]float64{1: 5, 2: 5})
	table.MarkUnreachable(1, 0)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		partner, ok := sel.Next(0, table, r)
		if !ok || partner != 2 {
			t.Fatalf("Next = (%v, %t), want n2", partner, ok)
		}
	}
	table.MarkUnreachable(2, 0)
	if _, ok := sel.Next(0, table, r); ok {
		t.Error("Next with all unreachable should report not ok")
	}
}

func TestRandomNoNeighbors(t *testing.T) {
	sel := NewRandom(0, nil)
	if _, ok := sel.Next(0, demand.NewTable(nil), rand.New(rand.NewSource(1))); ok {
		t.Error("Next with no neighbours should report not ok")
	}
}

func TestStaticOrderedFollowsSnapshotOrder(t *testing.T) {
	// Paper §2 best case: B's neighbours D(8), E(7), A(4), C(3) must be
	// visited in exactly that order.
	sel := NewStaticOrdered(1, nil)
	table := tableWith(map[NodeID]float64{0: 4, 2: 3, 3: 8, 4: 7}) // A C D E
	r := rand.New(rand.NewSource(1))
	want := []NodeID{3, 4, 0, 2}
	for i, w := range want {
		got, ok := sel.Next(0, table, r)
		if !ok || got != w {
			t.Fatalf("pick %d = (%v, %t), want %v", i, got, ok, w)
		}
	}
	// Next cycle restarts from the (re-snapshotted) top.
	got, _ := sel.Next(0, table, r)
	if got != 3 {
		t.Errorf("cycle restart pick = %v, want n3", got)
	}
}

func TestStaticOrderedIgnoresMidCycleChanges(t *testing.T) {
	// §3: the static algorithm "would not contribute to carrying consistency
	// to the zones with greatest demand" when demand changes mid-cycle.
	sel := NewStaticOrdered(1, nil)
	table := tableWith(map[NodeID]float64{0: 2, 2: 0, 3: 13}) // A=2 C=0 D=13
	r := rand.New(rand.NewSource(1))
	first, _ := sel.Next(1, table, r)
	if first != 3 {
		t.Fatalf("first pick = %v, want D(n3)", first)
	}
	// Demand flips: A falls to 0, C rises to 9 — but the static queue
	// still visits A next.
	table.Update(0, 0, 2)
	table.Update(2, 9, 2)
	second, _ := sel.Next(2, table, r)
	if second != 0 {
		t.Errorf("static second pick = %v, want stale A(n0)", second)
	}
}

func TestDynamicOrderedFollowsCurrentDemand(t *testing.T) {
	// §4's table: sessions must be B-D, B-C', B-A'.
	sel := NewDynamicOrdered(1, nil)
	table := tableWith(map[NodeID]float64{0: 2, 2: 0, 3: 13})
	r := rand.New(rand.NewSource(1))
	first, _ := sel.Next(1, table, r)
	if first != 3 {
		t.Fatalf("t=1 pick = %v, want D(n3)", first)
	}
	table.Update(0, 0, 2) // A'
	table.Update(2, 9, 2) // C'
	second, _ := sel.Next(2, table, r)
	if second != 2 {
		t.Errorf("t=2 pick = %v, want C'(n2)", second)
	}
	third, _ := sel.Next(3, table, r)
	if third != 0 {
		t.Errorf("t=3 pick = %v, want A'(n0)", third)
	}
	// New cycle begins: highest demand again.
	fourth, _ := sel.Next(4, table, r)
	if fourth != 3 {
		t.Errorf("cycle restart = %v, want D(n3)", fourth)
	}
}

func TestDynamicOrderedEmptyTable(t *testing.T) {
	sel := NewDynamicOrdered(1, nil)
	if _, ok := sel.Next(0, demand.NewTable(nil), nil); ok {
		t.Error("Next on empty table should report not ok")
	}
}

func TestDynamicOrderedAllUnreachable(t *testing.T) {
	sel := NewDynamicOrdered(1, nil)
	table := tableWith(map[NodeID]float64{2: 5})
	// Visit n2 so visited is non-empty, then make everything unreachable.
	if got, ok := sel.Next(0, table, nil); !ok || got != 2 {
		t.Fatalf("first pick = (%v, %t)", got, ok)
	}
	table.MarkUnreachable(2, 1)
	if _, ok := sel.Next(1, table, nil); ok {
		t.Error("Next with all unreachable should report not ok")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	sel := NewRoundRobin(0, []NodeID{3, 1, 2})
	table := demand.NewTable(nil)
	want := []NodeID{1, 2, 3, 1, 2, 3}
	for i, w := range want {
		got, ok := sel.Next(0, table, nil)
		if !ok || got != w {
			t.Fatalf("pick %d = (%v, %t), want %v", i, got, ok, w)
		}
	}
	empty := NewRoundRobin(0, nil)
	if _, ok := empty.Next(0, table, nil); ok {
		t.Error("round robin with no neighbours should report not ok")
	}
}

func TestLeastRecentRotates(t *testing.T) {
	sel := NewLeastRecent(0, []NodeID{1, 2, 3})
	table := tableWith(map[NodeID]float64{1: 1, 2: 2, 3: 3})
	seen := map[NodeID]int{}
	for i := 0; i < 9; i++ {
		got, ok := sel.Next(float64(i), table, nil)
		if !ok {
			t.Fatal("Next not ok")
		}
		seen[got]++
	}
	for _, n := range []NodeID{1, 2, 3} {
		if seen[n] != 3 {
			t.Errorf("neighbour %v chosen %d times in 9 picks, want 3", n, seen[n])
		}
	}
}

func TestLeastRecentSkipsUnreachable(t *testing.T) {
	sel := NewLeastRecent(0, []NodeID{1, 2})
	table := tableWith(map[NodeID]float64{1: 1, 2: 2})
	table.MarkUnreachable(1, 0)
	got, ok := sel.Next(1, table, nil)
	if !ok || got != 2 {
		t.Errorf("Next = (%v, %t), want n2", got, ok)
	}
	table.MarkUnreachable(2, 2)
	if _, ok := sel.Next(3, table, nil); ok {
		t.Error("Next with all unreachable should report not ok")
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, name := range []string{"random", "demand-static", "demand-dynamic", "round-robin", "least-recent"} {
		factory, ok := reg[name]
		if !ok {
			t.Errorf("registry missing %q", name)
			continue
		}
		sel := factory(0, []NodeID{1})
		if sel.Name() != name {
			t.Errorf("factory %q built selector named %q", name, sel.Name())
		}
	}
}

// Property: demand-ordered selectors visit every reachable neighbour exactly
// once per cycle (no starvation, no repeats).
func TestOrderedCycleProperty(t *testing.T) {
	for _, mk := range []Factory{NewStaticOrdered, NewDynamicOrdered} {
		sel := mk(0, nil)
		demands := map[NodeID]float64{}
		r := rand.New(rand.NewSource(5))
		for n := NodeID(1); n <= 10; n++ {
			demands[n] = float64(r.Intn(100))
		}
		table := tableWith(demands)
		for cycle := 0; cycle < 3; cycle++ {
			seen := map[NodeID]bool{}
			for i := 0; i < 10; i++ {
				got, ok := sel.Next(float64(cycle*10+i), table, r)
				if !ok {
					t.Fatalf("%s: Next not ok", sel.Name())
				}
				if seen[got] {
					t.Fatalf("%s: neighbour %v visited twice in one cycle", sel.Name(), got)
				}
				seen[got] = true
			}
			if len(seen) != 10 {
				t.Fatalf("%s: cycle visited %d/10 neighbours", sel.Name(), len(seen))
			}
		}
	}
}
