// Package policy implements anti-entropy partner-selection policies: the
// paper's baseline (uniform random, Golding) and its contribution
// (demand-ordered selection, static §2.1 and dynamic §4), plus two extra
// policies (round-robin, least-recently-contacted) used as ablation
// baselines.
//
// A Selector is per-node state: demand-ordered policies keep a cursor over
// the current "cycle" of neighbours so that successive sessions visit every
// neighbour once, in demand order, before starting over (the B-D, B-E, B-A,
// B-C sequence of the paper's best-case example).
package policy

import (
	"math/rand"

	"repro/internal/demand"
	"repro/internal/vclock"
)

// NodeID aliases the replica identifier.
type NodeID = vclock.NodeID

// Selector chooses the partner for a node's next anti-entropy session.
// Selectors are not safe for concurrent use; each node owns one.
type Selector interface {
	// Next returns the chosen partner given the node's current neighbour
	// demand table at time now. ok is false when no neighbour is eligible.
	Next(now float64, table *demand.Table, r *rand.Rand) (partner NodeID, ok bool)
	// Name identifies the policy in experiment output.
	Name() string
}

// Factory builds a selector for a node; selectors carry per-node state.
type Factory func(self NodeID, neighbors []NodeID) Selector

// Random selects a uniformly random reachable neighbour — the weak
// consistency baseline: Golding "demonstrated that the neighbouring server's
// random choice has the best performance ... in a peer-to-peer network"
// (paper §1) when demand is ignored.
type Random struct {
	neighbors []NodeID
}

// NewRandom returns a Random selector over the given neighbours.
func NewRandom(_ NodeID, neighbors []NodeID) Selector {
	return &Random{neighbors: append([]NodeID(nil), neighbors...)}
}

// Next implements Selector.
func (p *Random) Next(_ float64, table *demand.Table, r *rand.Rand) (NodeID, bool) {
	eligible := p.neighbors[:0:0]
	for _, n := range p.neighbors {
		if e, ok := table.Get(n); !ok || e.Reachable {
			eligible = append(eligible, n)
		}
	}
	if len(eligible) == 0 {
		return 0, false
	}
	return eligible[r.Intn(len(eligible))], true
}

// Name implements Selector.
func (p *Random) Name() string { return "random" }

// StaticOrdered implements the paper's §2.1 part-one selection with a
// *static* view: at the start of each cycle it snapshots the neighbour order
// by demand and then follows that order even if demands change mid-cycle.
// This is the algorithm §3 shows failing under dynamic demand.
type StaticOrdered struct {
	queue []NodeID
}

// NewStaticOrdered returns a StaticOrdered selector.
func NewStaticOrdered(_ NodeID, _ []NodeID) Selector { return &StaticOrdered{} }

// Next implements Selector.
func (p *StaticOrdered) Next(_ float64, table *demand.Table, _ *rand.Rand) (NodeID, bool) {
	if len(p.queue) == 0 {
		ranked := table.ByDemand()
		p.queue = make([]NodeID, 0, len(ranked))
		for _, e := range ranked {
			p.queue = append(p.queue, e.Node)
		}
	}
	if len(p.queue) == 0 {
		return 0, false
	}
	partner := p.queue[0]
	p.queue = p.queue[1:]
	return partner, true
}

// Name implements Selector.
func (p *StaticOrdered) Name() string { return "demand-static" }

// DynamicOrdered implements the paper's §4 dynamic algorithm: within each
// cycle every neighbour is visited once, but each pick takes the
// highest-*current*-demand neighbour not yet visited this cycle, using the
// freshly refreshed table. In the Fig. 4 scenario this yields B-D, B-C',
// B-A' where the static policy would yield B-D, B-A, B-C.
type DynamicOrdered struct {
	visited map[NodeID]bool
}

// NewDynamicOrdered returns a DynamicOrdered selector.
func NewDynamicOrdered(_ NodeID, _ []NodeID) Selector {
	return &DynamicOrdered{visited: make(map[NodeID]bool)}
}

// Next implements Selector.
func (p *DynamicOrdered) Next(_ float64, table *demand.Table, _ *rand.Rand) (NodeID, bool) {
	best, ok := table.BestExcluding(p.visited)
	if !ok {
		// Cycle complete (or nothing reachable): start a new cycle.
		if len(p.visited) == 0 {
			return 0, false
		}
		clear(p.visited)
		best, ok = table.BestExcluding(p.visited)
		if !ok {
			return 0, false
		}
	}
	p.visited[best.Node] = true
	return best.Node, true
}

// Name implements Selector.
func (p *DynamicOrdered) Name() string { return "demand-dynamic" }

// RoundRobin cycles through neighbours in ascending id order, ignoring
// demand — an ablation baseline isolating "deterministic cycling" from
// "demand ordering".
type RoundRobin struct {
	neighbors []NodeID
	next      int
}

// NewRoundRobin returns a RoundRobin selector.
func NewRoundRobin(_ NodeID, neighbors []NodeID) Selector {
	sorted := append([]NodeID(nil), neighbors...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return &RoundRobin{neighbors: sorted}
}

// Next implements Selector.
func (p *RoundRobin) Next(_ float64, _ *demand.Table, _ *rand.Rand) (NodeID, bool) {
	if len(p.neighbors) == 0 {
		return 0, false
	}
	partner := p.neighbors[p.next%len(p.neighbors)]
	p.next++
	return partner, true
}

// Name implements Selector.
func (p *RoundRobin) Name() string { return "round-robin" }

// LeastRecent selects the reachable neighbour contacted longest ago,
// breaking ties by lower id — an anti-starvation baseline.
type LeastRecent struct {
	lastContact map[NodeID]float64
	neighbors   []NodeID
}

// NewLeastRecent returns a LeastRecent selector.
func NewLeastRecent(_ NodeID, neighbors []NodeID) Selector {
	return &LeastRecent{
		lastContact: make(map[NodeID]float64, len(neighbors)),
		neighbors:   append([]NodeID(nil), neighbors...),
	}
}

// Next implements Selector.
func (p *LeastRecent) Next(now float64, table *demand.Table, _ *rand.Rand) (NodeID, bool) {
	var best NodeID
	bestTime := 0.0
	found := false
	for _, n := range p.neighbors {
		if e, ok := table.Get(n); ok && !e.Reachable {
			continue
		}
		t := p.lastContact[n]
		if !found || t < bestTime || (t == bestTime && n < best) {
			best, bestTime, found = n, t, true
		}
	}
	if !found {
		return 0, false
	}
	p.lastContact[best] = now + 1 // strictly later than any real time seen
	return best, true
}

// Name implements Selector.
func (p *LeastRecent) Name() string { return "least-recent" }

// Registry maps policy names to factories, for CLI flag parsing.
func Registry() map[string]Factory {
	return map[string]Factory{
		"random":         NewRandom,
		"demand-static":  NewStaticOrdered,
		"demand-dynamic": NewDynamicOrdered,
		"round-robin":    NewRoundRobin,
		"least-recent":   NewLeastRecent,
	}
}

// Compile-time interface compliance checks.
var (
	_ Selector = (*Random)(nil)
	_ Selector = (*StaticOrdered)(nil)
	_ Selector = (*DynamicOrdered)(nil)
	_ Selector = (*RoundRobin)(nil)
	_ Selector = (*LeastRecent)(nil)
)
