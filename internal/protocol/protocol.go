// Package protocol defines the messages of the fast-consistency protocol
// and a compact binary wire codec for them.
//
// The message set follows the paper's §2.1 algorithm step by step:
//
//   - SessionRequest  — step 2: "E sends to B a message to request for
//     initiate a session".
//   - SummaryMsg      — steps 4/6: the partners exchange summary vectors.
//   - UpdateBatch     — steps 8/11: each side sends the entries the other
//     has not seen.
//   - FastOffer       — step 13: "a request for fast update ... has
//     information (id and timestamp) of new arrived messages"; note no
//     summary vectors are exchanged.
//   - FastReply       — step 15: YES (send them) or NO (already have them).
//     Our reply carries the precise subset wanted, a strict generalisation
//     that saves payload when the neighbour has some of the offered writes.
//   - FastPayload     — step 17: the update messages themselves.
//   - DemandAdvert    — §4: periodic advertisement of a replica's demand to
//     its neighbours, "in a way similar to IP routing algorithms".
//
// Every message carries the sender's current demand so tables refresh for
// free on any contact ("it requires few additional bytes in the exchange of
// messages between replicas", §8).
package protocol

import (
	"fmt"

	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/wlog"
)

// Type discriminates wire messages.
type Type uint8

// Message types. Values are wire-stable; do not reorder.
const (
	TypeSessionRequest Type = iota + 1
	TypeSummary
	TypeUpdateBatch
	TypeFastOffer
	TypeFastReply
	TypeFastPayload
	TypeDemandAdvert
	TypeSnapshot
)

// String returns the message type name.
func (t Type) String() string {
	switch t {
	case TypeSessionRequest:
		return "session-request"
	case TypeSummary:
		return "summary"
	case TypeUpdateBatch:
		return "update-batch"
	case TypeFastOffer:
		return "fast-offer"
	case TypeFastReply:
		return "fast-reply"
	case TypeFastPayload:
		return "fast-payload"
	case TypeDemandAdvert:
		return "demand-advert"
	case TypeSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Message is implemented by all protocol payloads.
type Message interface {
	MsgType() Type
}

// SessionRequest asks the receiver to begin an anti-entropy session.
type SessionRequest struct {
	// SessionID correlates the messages of one session.
	SessionID uint64
	// Demand is the initiator's current demand (piggybacked advertisement).
	Demand float64
}

// MsgType implements Message.
func (SessionRequest) MsgType() Type { return TypeSessionRequest }

// SummaryMsg carries a replica's summary vector during a session.
type SummaryMsg struct {
	SessionID uint64
	Summary   *vclock.Summary
	Demand    float64
}

// MsgType implements Message.
func (SummaryMsg) MsgType() Type { return TypeSummary }

// UpdateBatch carries entries the partner is missing. Final marks the last
// batch of a session (step 12's session completion).
type UpdateBatch struct {
	SessionID uint64
	Entries   []wlog.Entry
	Final     bool
	Demand    float64
}

// MsgType implements Message.
func (UpdateBatch) MsgType() Type { return TypeUpdateBatch }

// FastOffer announces newly arrived writes by id only (step 13).
type FastOffer struct {
	IDs    []vclock.Timestamp
	Demand float64
	// Hops counts fast-update chain hops for diagnostics; the chain of
	// §2 "floods the valleys" through successive highest-demand neighbours.
	Hops uint32
}

// MsgType implements Message.
func (FastOffer) MsgType() Type { return TypeFastOffer }

// FastReply answers a FastOffer. Accept=false means the receiver already has
// every offered write (paper's NO). Accept=true carries the subset still
// wanted (paper's YES; the paper requests all offered ids — a receiver that
// has none of them wants them all, which is the common case).
type FastReply struct {
	Accept bool
	Wanted []vclock.Timestamp
	Demand float64
	// Hops echoes the offer's hop count so the offering replica can stamp
	// the payload without per-offer state.
	Hops uint32
}

// MsgType implements Message.
func (FastReply) MsgType() Type { return TypeFastReply }

// FastPayload delivers the writes accepted by a FastReply (step 17).
type FastPayload struct {
	Entries []wlog.Entry
	Demand  float64
	Hops    uint32
}

// MsgType implements Message.
func (FastPayload) MsgType() Type { return TypeFastPayload }

// DemandAdvert is the periodic neighbour-table refresh of §4.
type DemandAdvert struct {
	Demand float64
}

// MsgType implements Message.
func (DemandAdvert) MsgType() Type { return TypeDemandAdvert }

// Snapshot is a full-state transfer: the sender's complete store image plus
// its summary vector. It is the recovery path when write-log truncation has
// discarded entries a partner still needs (the storage/session-length
// trade-off of Bayou's log truncation, paper §7) — the partner adopts the
// summary and merges the store image instead of replaying entries.
type Snapshot struct {
	SessionID uint64
	Summary   *vclock.Summary
	Items     []store.Item
	Demand    float64
}

// MsgType implements Message.
func (Snapshot) MsgType() Type { return TypeSnapshot }

// Envelope is a routed message.
type Envelope struct {
	From vclock.NodeID
	To   vclock.NodeID
	Msg  Message
}

// String renders the envelope for traces.
func (e Envelope) String() string {
	return fmt.Sprintf("%v->%v %v", e.From, e.To, e.Msg.MsgType())
}

// Compile-time interface compliance checks.
var (
	_ Message = SessionRequest{}
	_ Message = SummaryMsg{}
	_ Message = UpdateBatch{}
	_ Message = FastOffer{}
	_ Message = FastReply{}
	_ Message = FastPayload{}
	_ Message = DemandAdvert{}
	_ Message = Snapshot{}
)
