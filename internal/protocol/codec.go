package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/wlog"
)

// Wire format: every envelope is
//
//	version(1) type(1) from(varint-zigzag) to(varint-zigzag) body
//
// Integers are unsigned varints unless noted; node ids use zigzag varints so
// small ids stay single-byte. Strings and byte slices are length-prefixed.
// The stream framing (WriteEnvelope/ReadEnvelope) adds a uvarint total
// length so messages can be framed over TCP.

const (
	// Version is the wire protocol version byte.
	Version = 1
	// MaxEnvelopeSize bounds decoded envelopes to keep a malicious or
	// corrupt peer from forcing huge allocations.
	MaxEnvelopeSize = 16 << 20
	// maxBatchEntries bounds per-batch entry counts on decode.
	maxBatchEntries = 1 << 20
	// maxNodeID bounds decoded replica ids. NodeIDs are small dense
	// integers, and summary vectors are dense arrays indexed by id — an
	// unchecked hostile id would force a multi-gigabyte vector allocation.
	// 1<<16 replicas is far beyond any deployment here and caps a decoded
	// summary vector at 512 KiB.
	maxNodeID = 1 << 16
	// maxPooledBuf caps the capacity of buffers returned to the codec
	// pools, so one near-MaxEnvelopeSize message cannot pin megabytes of
	// scratch memory for the rest of the process lifetime.
	maxPooledBuf = 64 << 10
)

// Errors returned by the codec.
var (
	ErrBadVersion = errors.New("protocol: unsupported wire version")
	ErrBadType    = errors.New("protocol: unknown message type")
	ErrCorrupt    = errors.New("protocol: corrupt message")
	ErrTooLarge   = errors.New("protocol: message exceeds size limit")
)

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}
func (e *encoder) varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}
func (e *encoder) f64(v float64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) ts(t vclock.Timestamp) {
	e.varint(int64(t.Node))
	e.uvarint(t.Seq)
}
func (e *encoder) entry(en wlog.Entry) {
	e.ts(en.TS)
	e.str(en.Key)
	e.bytes(en.Value)
	e.uvarint(en.Clock)
}
func (e *encoder) summary(s *vclock.Summary) {
	// The dense vector iterates its origins in ascending order, so the wire
	// bytes are deterministic with no intermediate map or sort.
	e.uvarint(uint64(s.Len()))
	s.ForEach(func(node vclock.NodeID, seq uint64) {
		e.varint(int64(node))
		e.uvarint(seq)
	})
}

// encPool recycles encoder buffers across Marshal/WriteEnvelope calls; the
// protocol hot path would otherwise regrow a fresh buffer per message.
var encPool = sync.Pool{New: func() any { return &encoder{buf: make([]byte, 0, 512)} }}

// putEncoder returns e to the pool unless its buffer grew past maxPooledBuf
// (one oversized message must not pin a large buffer forever).
func putEncoder(e *encoder) {
	if cap(e.buf) <= maxPooledBuf {
		encPool.Put(e)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, d.off)
	}
}
func (d *decoder) u8() uint8 {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}
func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}
func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}
func (d *decoder) f64() float64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("f64")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}
func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("bytes length")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}
func (d *decoder) str() string { return string(d.bytes()) }
func (d *decoder) bool() bool  { return d.u8() != 0 }
func (d *decoder) nodeID() vclock.NodeID {
	node := d.varint()
	if node < 0 || node > maxNodeID {
		d.fail("node id out of range")
		return 0
	}
	return vclock.NodeID(node)
}
func (d *decoder) ts() vclock.Timestamp {
	node := d.nodeID()
	seq := d.uvarint()
	return vclock.Timestamp{Node: node, Seq: seq}
}
func (d *decoder) entry() wlog.Entry {
	return wlog.Entry{TS: d.ts(), Key: d.str(), Value: d.bytes(), Clock: d.uvarint()}
}
func (d *decoder) summary() *vclock.Summary {
	n := d.uvarint()
	if n > maxBatchEntries {
		d.fail("summary size")
		return nil
	}
	s := vclock.NewSummary()
	for i := uint64(0); i < n && d.err == nil; i++ {
		node := d.nodeID()
		seq := d.uvarint()
		if d.err == nil {
			s.Advance(node, seq)
		}
	}
	return s
}

// Marshal encodes an envelope to wire bytes. The returned slice is freshly
// allocated and owned by the caller; the scratch buffer used to build it is
// pooled. Writers on the hot path use WriteEnvelope, which skips the copy.
func Marshal(env Envelope) ([]byte, error) {
	e := encPool.Get().(*encoder)
	defer putEncoder(e)
	if err := e.envelope(env); err != nil {
		return nil, err
	}
	return append([]byte(nil), e.buf...), nil
}

// envelope resets e and encodes env into its buffer.
func (e *encoder) envelope(env Envelope) error {
	e.buf = e.buf[:0]
	e.u8(Version)
	e.u8(uint8(env.Msg.MsgType()))
	e.varint(int64(env.From))
	e.varint(int64(env.To))
	switch m := env.Msg.(type) {
	case SessionRequest:
		e.uvarint(m.SessionID)
		e.f64(m.Demand)
	case SummaryMsg:
		e.uvarint(m.SessionID)
		e.summary(m.Summary)
		e.f64(m.Demand)
	case UpdateBatch:
		e.uvarint(m.SessionID)
		e.uvarint(uint64(len(m.Entries)))
		for _, en := range m.Entries {
			e.entry(en)
		}
		e.bool(m.Final)
		e.f64(m.Demand)
	case FastOffer:
		e.uvarint(uint64(len(m.IDs)))
		for _, ts := range m.IDs {
			e.ts(ts)
		}
		e.f64(m.Demand)
		e.uvarint(uint64(m.Hops))
	case FastReply:
		e.bool(m.Accept)
		e.uvarint(uint64(len(m.Wanted)))
		for _, ts := range m.Wanted {
			e.ts(ts)
		}
		e.f64(m.Demand)
		e.uvarint(uint64(m.Hops))
	case FastPayload:
		e.uvarint(uint64(len(m.Entries)))
		for _, en := range m.Entries {
			e.entry(en)
		}
		e.f64(m.Demand)
		e.uvarint(uint64(m.Hops))
	case DemandAdvert:
		e.f64(m.Demand)
	case Snapshot:
		e.uvarint(m.SessionID)
		e.summary(m.Summary)
		e.uvarint(uint64(len(m.Items)))
		for _, item := range m.Items {
			e.str(item.Key)
			e.bytes(item.Value)
			e.ts(item.TS)
			e.uvarint(item.Clock)
		}
		e.f64(m.Demand)
	default:
		return fmt.Errorf("%w: %T", ErrBadType, env.Msg)
	}
	if len(e.buf) > MaxEnvelopeSize {
		return ErrTooLarge
	}
	return nil
}

// Unmarshal decodes wire bytes into an envelope.
func Unmarshal(buf []byte) (Envelope, error) {
	if len(buf) > MaxEnvelopeSize {
		return Envelope{}, ErrTooLarge
	}
	d := &decoder{buf: buf}
	if v := d.u8(); v != Version {
		if d.err != nil {
			return Envelope{}, d.err
		}
		return Envelope{}, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	typ := Type(d.u8())
	env := Envelope{
		From: vclock.NodeID(d.varint()),
		To:   vclock.NodeID(d.varint()),
	}
	switch typ {
	case TypeSessionRequest:
		env.Msg = SessionRequest{SessionID: d.uvarint(), Demand: d.f64()}
	case TypeSummary:
		env.Msg = SummaryMsg{SessionID: d.uvarint(), Summary: d.summary(), Demand: d.f64()}
	case TypeUpdateBatch:
		m := UpdateBatch{SessionID: d.uvarint()}
		n := d.uvarint()
		if n > maxBatchEntries {
			return Envelope{}, fmt.Errorf("%w: batch of %d entries", ErrTooLarge, n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			m.Entries = append(m.Entries, d.entry())
		}
		m.Final = d.bool()
		m.Demand = d.f64()
		env.Msg = m
	case TypeFastOffer:
		m := FastOffer{}
		n := d.uvarint()
		if n > maxBatchEntries {
			return Envelope{}, fmt.Errorf("%w: offer of %d ids", ErrTooLarge, n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			m.IDs = append(m.IDs, d.ts())
		}
		m.Demand = d.f64()
		m.Hops = uint32(d.uvarint())
		env.Msg = m
	case TypeFastReply:
		m := FastReply{Accept: d.bool()}
		n := d.uvarint()
		if n > maxBatchEntries {
			return Envelope{}, fmt.Errorf("%w: reply of %d ids", ErrTooLarge, n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			m.Wanted = append(m.Wanted, d.ts())
		}
		m.Demand = d.f64()
		m.Hops = uint32(d.uvarint())
		env.Msg = m
	case TypeFastPayload:
		m := FastPayload{}
		n := d.uvarint()
		if n > maxBatchEntries {
			return Envelope{}, fmt.Errorf("%w: payload of %d entries", ErrTooLarge, n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			m.Entries = append(m.Entries, d.entry())
		}
		m.Demand = d.f64()
		m.Hops = uint32(d.uvarint())
		env.Msg = m
	case TypeDemandAdvert:
		env.Msg = DemandAdvert{Demand: d.f64()}
	case TypeSnapshot:
		m := Snapshot{SessionID: d.uvarint(), Summary: d.summary()}
		n := d.uvarint()
		if n > maxBatchEntries {
			return Envelope{}, fmt.Errorf("%w: snapshot of %d items", ErrTooLarge, n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			m.Items = append(m.Items, store.Item{
				Key:   d.str(),
				Value: d.bytes(),
				TS:    d.ts(),
				Clock: d.uvarint(),
			})
		}
		m.Demand = d.f64()
		env.Msg = m
	default:
		return Envelope{}, fmt.Errorf("%w: %d", ErrBadType, uint8(typ))
	}
	if d.err != nil {
		return Envelope{}, d.err
	}
	if d.off != len(buf) {
		return Envelope{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf)-d.off)
	}
	return env, nil
}

// WriteEnvelope frames and writes an envelope to w: uvarint length followed
// by the Marshal bytes. The wire bytes are built in a pooled buffer, so the
// steady-state send path allocates nothing.
func WriteEnvelope(w io.Writer, env Envelope) error {
	e := encPool.Get().(*encoder)
	defer putEncoder(e)
	if err := e.envelope(env); err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(e.buf)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("protocol: writing frame header: %w", err)
	}
	if _, err := w.Write(e.buf); err != nil {
		return fmt.Errorf("protocol: writing frame body: %w", err)
	}
	return nil
}

// bodyPool recycles frame-body buffers across ReadEnvelope calls. Unmarshal
// copies every variable-length field out of the frame, so the buffer can be
// reused as soon as decoding finishes.
var bodyPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// ReadEnvelope reads one framed envelope from r.
func ReadEnvelope(r io.ByteReader) (Envelope, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return Envelope{}, err
	}
	if size > MaxEnvelopeSize {
		return Envelope{}, ErrTooLarge
	}
	bp := bodyPool.Get().(*[]byte)
	defer func() {
		if cap(*bp) <= maxPooledBuf {
			bodyPool.Put(bp)
		}
	}()
	if uint64(cap(*bp)) < size {
		*bp = make([]byte, size)
	}
	body := (*bp)[:size]
	if err := readFull(r, body); err != nil {
		// The length header was already consumed, so any EOF mid-frame —
		// including before the first body byte — is a truncated stream, not
		// an orderly close.
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Envelope{}, fmt.Errorf("protocol: reading frame body: %w", err)
	}
	return Unmarshal(body)
}

// readFull fills buf from r, using bulk reads when r is also an io.Reader
// (bufio.Reader is, on every transport in this repo).
func readFull(r io.ByteReader, buf []byte) error {
	if rr, ok := r.(io.Reader); ok {
		_, err := io.ReadFull(rr, buf)
		return err
	}
	for i := range buf {
		b, err := r.ReadByte()
		if err != nil {
			return err
		}
		buf[i] = b
	}
	return nil
}
