package protocol

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/wlog"
)

func ts(node, seq int) vclock.Timestamp {
	return vclock.Timestamp{Node: vclock.NodeID(node), Seq: uint64(seq)}
}

func sampleSummary() *vclock.Summary {
	s := vclock.NewSummary()
	s.Observe(ts(0, 1))
	s.Observe(ts(0, 2))
	s.Observe(ts(3, 1))
	return s
}

func sampleEntries() []wlog.Entry {
	return []wlog.Entry{
		{TS: ts(1, 1), Key: "alpha", Value: []byte("value-1"), Clock: 10},
		{TS: ts(2, 4), Key: "", Value: nil, Clock: 0},
		{TS: ts(1, 2), Key: "k", Value: []byte{0, 255, 127}, Clock: 999999},
	}
}

func allMessages() []Message {
	return []Message{
		SessionRequest{SessionID: 42, Demand: 13.5},
		SummaryMsg{SessionID: 42, Summary: sampleSummary(), Demand: 2},
		UpdateBatch{SessionID: 42, Entries: sampleEntries(), Final: true, Demand: 1},
		UpdateBatch{SessionID: 7, Entries: nil, Final: false, Demand: 0},
		FastOffer{IDs: []vclock.Timestamp{ts(1, 1), ts(2, 9)}, Demand: 8, Hops: 3},
		FastOffer{},
		FastReply{Accept: true, Wanted: []vclock.Timestamp{ts(1, 1)}, Demand: 4},
		FastReply{Accept: false},
		FastPayload{Entries: sampleEntries()[:1], Demand: 5, Hops: 1},
		DemandAdvert{Demand: 77.25},
		Snapshot{SessionID: 9, Summary: sampleSummary(), Items: []store.Item{
			{Key: "a", Value: []byte("v1"), TS: ts(1, 1), Clock: 3},
			{Key: "b", Value: nil, TS: ts(2, 4), Clock: 9},
		}, Demand: 1.5},
		Snapshot{Summary: sampleSummary()},
	}
}

func TestRoundTripAllMessageTypes(t *testing.T) {
	for _, msg := range allMessages() {
		msg := msg
		t.Run(msg.MsgType().String(), func(t *testing.T) {
			env := Envelope{From: 3, To: 9, Msg: msg}
			buf, err := Marshal(env)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			got, err := Unmarshal(buf)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if got.From != 3 || got.To != 9 {
				t.Errorf("routing = %v->%v, want n3->n9", got.From, got.To)
			}
			assertMessagesEqual(t, msg, got.Msg)
		})
	}
}

// assertMessagesEqual compares messages, treating nil and empty slices as
// equal and comparing summaries by lattice equality.
func assertMessagesEqual(t *testing.T, want, got Message) {
	t.Helper()
	if want.MsgType() != got.MsgType() {
		t.Fatalf("type = %v, want %v", got.MsgType(), want.MsgType())
	}
	if w, ok := want.(SummaryMsg); ok {
		g := got.(SummaryMsg)
		if w.SessionID != g.SessionID || w.Demand != g.Demand {
			t.Fatalf("summary fields: got %+v, want %+v", g, w)
		}
		if w.Summary.Compare(g.Summary) != vclock.Equal {
			t.Fatalf("summary vector: got %v, want %v", g.Summary, w.Summary)
		}
		return
	}
	if !reflect.DeepEqual(normalize(want), normalize(got)) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, want)
	}
}

// normalize maps empty slices to nil (including entry values) so DeepEqual
// ignores the distinction; the codec decodes zero-length values as nil.
func normalizeEntries(entries []wlog.Entry) []wlog.Entry {
	if len(entries) == 0 {
		return nil
	}
	out := make([]wlog.Entry, len(entries))
	for i, e := range entries {
		if len(e.Value) == 0 {
			e.Value = nil
		}
		out[i] = e
	}
	return out
}

func normalize(m Message) Message {
	switch v := m.(type) {
	case UpdateBatch:
		v.Entries = normalizeEntries(v.Entries)
		return v
	case FastOffer:
		if len(v.IDs) == 0 {
			v.IDs = nil
		}
		return v
	case FastReply:
		if len(v.Wanted) == 0 {
			v.Wanted = nil
		}
		return v
	case FastPayload:
		v.Entries = normalizeEntries(v.Entries)
		return v
	}
	return m
}

func TestMarshalDeterministic(t *testing.T) {
	env := Envelope{From: 1, To: 2, Msg: SummaryMsg{SessionID: 5, Summary: sampleSummary()}}
	a, err := Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Marshal is not deterministic for summaries")
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	good, err := Marshal(Envelope{From: 1, To: 2, Msg: DemandAdvert{Demand: 1}})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("empty", func(t *testing.T) {
		if _, err := Unmarshal(nil); err == nil {
			t.Error("empty input accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{99}, good[1:]...)
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("bad type", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[1] = 200
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadType) {
			t.Errorf("err = %v, want ErrBadType", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 2; cut < len(good); cut++ {
			if _, err := Unmarshal(good[:cut]); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 0xFF)
		if _, err := Unmarshal(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("oversized", func(t *testing.T) {
		if _, err := Unmarshal(make([]byte, MaxEnvelopeSize+1)); !errors.Is(err, ErrTooLarge) {
			t.Errorf("err = %v, want ErrTooLarge", err)
		}
	})
}

func TestUnmarshalRejectsHugeDeclaredLengths(t *testing.T) {
	// A batch header declaring 2^40 entries must be rejected before
	// allocating anything.
	e := &encoder{}
	e.u8(Version)
	e.u8(uint8(TypeUpdateBatch))
	e.varint(1)
	e.varint(2)
	e.uvarint(1)       // session
	e.uvarint(1 << 40) // entry count
	if _, err := Unmarshal(e.buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestUnmarshalRejectsHostileNodeIDs(t *testing.T) {
	// Summaries are dense vectors indexed by NodeID, so a decoded id must be
	// non-negative and bounded — otherwise a hostile peer could force a
	// multi-gigabyte allocation (or a panic) with a few bytes.
	t.Run("negative timestamp node", func(t *testing.T) {
		env := Envelope{From: 1, To: 2, Msg: FastOffer{
			IDs: []vclock.Timestamp{{Node: -5, Seq: 1}},
		}}
		buf, err := Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Unmarshal(buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("huge timestamp node", func(t *testing.T) {
		env := Envelope{From: 1, To: 2, Msg: FastOffer{
			IDs: []vclock.Timestamp{{Node: 1 << 25, Seq: 1}},
		}}
		buf, err := Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Unmarshal(buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("huge summary origin", func(t *testing.T) {
		e := &encoder{}
		e.u8(Version)
		e.u8(uint8(TypeSummary))
		e.varint(1)       // from
		e.varint(2)       // to
		e.uvarint(7)      // session
		e.uvarint(1)      // one pair
		e.varint(1 << 30) // hostile origin id
		e.uvarint(3)      // seq
		e.f64(1.25)       // demand
		if _, err := Unmarshal(e.buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestMarshalReturnsCallerOwnedBuffer(t *testing.T) {
	// Marshal builds in a pooled scratch buffer; the returned bytes must be
	// a private copy, unaffected by later Marshal/WriteEnvelope calls.
	env := Envelope{From: 1, To: 2, Msg: SummaryMsg{SessionID: 5, Summary: sampleSummary()}}
	first, err := Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), first...)
	for i := 0; i < 10; i++ {
		if _, err := Marshal(Envelope{From: 9, To: 8, Msg: DemandAdvert{Demand: float64(i)}}); err != nil {
			t.Fatal(err)
		}
		var sink bytes.Buffer
		if err := WriteEnvelope(&sink, Envelope{From: 3, To: 4, Msg: SessionRequest{SessionID: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(first, want) {
		t.Error("Marshal result was clobbered by later pooled encodes")
	}
}

func TestWriteEnvelopeMatchesMarshalFraming(t *testing.T) {
	for _, msg := range allMessages() {
		env := Envelope{From: 1, To: 2, Msg: msg}
		body, err := Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		var framed bytes.Buffer
		if err := WriteEnvelope(&framed, env); err != nil {
			t.Fatal(err)
		}
		var hdr [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hdr[:], uint64(len(body)))
		want := append(hdr[:n:n], body...)
		if !bytes.Equal(framed.Bytes(), want) {
			t.Errorf("%T: WriteEnvelope bytes differ from uvarint(len)+Marshal", msg)
		}
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	// The decoder must return errors, never panic, on arbitrary input.
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, r.Intn(64))
		r.Read(buf)
		_, _ = Unmarshal(buf) // must not panic
	}
	// Also flip bits of valid messages.
	for _, msg := range allMessages() {
		good, err := Marshal(Envelope{From: 1, To: 2, Msg: msg})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(good); i++ {
			for bit := 0; bit < 8; bit++ {
				bad := append([]byte(nil), good...)
				bad[i] ^= 1 << bit
				_, _ = Unmarshal(bad) // must not panic
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		entries := make([]wlog.Entry, r.Intn(5))
		for i := range entries {
			key := make([]byte, r.Intn(10))
			val := make([]byte, r.Intn(20))
			r.Read(key)
			r.Read(val)
			entries[i] = wlog.Entry{
				TS:    ts(r.Intn(100), 1+r.Intn(1000)),
				Key:   string(key),
				Value: val,
				Clock: uint64(r.Intn(1 << 30)),
			}
		}
		env := Envelope{
			From: vclock.NodeID(r.Intn(1000)),
			To:   vclock.NodeID(r.Intn(1000)),
			Msg:  UpdateBatch{SessionID: uint64(r.Intn(1 << 20)), Entries: entries, Final: r.Intn(2) == 0, Demand: r.Float64() * 100},
		}
		buf, err := Marshal(env)
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return got.From == env.From && got.To == env.To &&
			reflect.DeepEqual(normalize(env.Msg), normalize(got.Msg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("round-trip property: %v", err)
	}
}

func TestStreamFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := allMessages()
	for i, m := range msgs {
		env := Envelope{From: vclock.NodeID(i), To: vclock.NodeID(i + 1), Msg: m}
		if err := WriteEnvelope(&buf, env); err != nil {
			t.Fatalf("WriteEnvelope(%d): %v", i, err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range msgs {
		env, err := ReadEnvelope(r)
		if err != nil {
			t.Fatalf("ReadEnvelope(%d): %v", i, err)
		}
		if env.From != vclock.NodeID(i) {
			t.Errorf("frame %d From = %v, want n%d", i, env.From, i)
		}
		assertMessagesEqual(t, want, env.Msg)
	}
	if _, err := ReadEnvelope(r); err == nil {
		t.Error("ReadEnvelope past end should fail")
	}
}

func TestReadEnvelopeTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, Envelope{From: 1, To: 2, Msg: DemandAdvert{Demand: 5}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := bufio.NewReader(bytes.NewReader(full[:cut]))
		if _, err := ReadEnvelope(r); err == nil {
			t.Errorf("truncated stream at %d accepted", cut)
		}
	}
}

func TestTypeString(t *testing.T) {
	want := map[Type]string{
		TypeSessionRequest: "session-request",
		TypeSummary:        "summary",
		TypeUpdateBatch:    "update-batch",
		TypeFastOffer:      "fast-offer",
		TypeFastReply:      "fast-reply",
		TypeFastPayload:    "fast-payload",
		TypeDemandAdvert:   "demand-advert",
		Type(0):            "Type(0)",
	}
	for typ, name := range want {
		if got := typ.String(); got != name {
			t.Errorf("Type(%d).String() = %q, want %q", uint8(typ), got, name)
		}
	}
}

func TestEnvelopeString(t *testing.T) {
	env := Envelope{From: 1, To: 2, Msg: DemandAdvert{}}
	if got := env.String(); got != "n1->n2 demand-advert" {
		t.Errorf("String() = %q", got)
	}
}

func TestWireCompactness(t *testing.T) {
	// §8: "it requires few additional bytes in the exchange of messages".
	// A demand advert must stay under 24 bytes on the wire.
	buf, err := Marshal(Envelope{From: 5, To: 6, Msg: DemandAdvert{Demand: 123.456}})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > 24 {
		t.Errorf("demand advert wire size = %d bytes, want <= 24", len(buf))
	}
	// A fast offer of one id stays under 32 bytes.
	buf, err = Marshal(Envelope{From: 5, To: 6, Msg: FastOffer{IDs: []vclock.Timestamp{ts(3, 7)}, Demand: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > 32 {
		t.Errorf("single-id fast offer wire size = %d bytes, want <= 32", len(buf))
	}
}

func BenchmarkMarshalUpdateBatch(b *testing.B) {
	env := Envelope{From: 1, To: 2, Msg: UpdateBatch{SessionID: 1, Entries: sampleEntries(), Final: true}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalUpdateBatch(b *testing.B) {
	buf, err := Marshal(Envelope{From: 1, To: 2, Msg: UpdateBatch{SessionID: 1, Entries: sampleEntries(), Final: true}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
