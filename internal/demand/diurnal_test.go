package demand

import (
	"math"
	"testing"

	"repro/internal/topology"
)

func TestDiurnalBounds(t *testing.T) {
	base := Static{100}
	d := NewDiurnal(base, 24, 0.8, []float64{0})
	min, max := math.Inf(1), math.Inf(-1)
	for tm := 0.0; tm < 48; tm += 0.25 {
		v := d.At(0, tm)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	// Peak = base, trough = (1-depth)*base.
	if math.Abs(max-100) > 1 {
		t.Errorf("max = %g, want ~100", max)
	}
	if math.Abs(min-20) > 1 {
		t.Errorf("min = %g, want ~20", min)
	}
}

func TestDiurnalPeriodicity(t *testing.T) {
	d := NewDiurnal(Static{50}, 10, 0.5, []float64{0.25})
	for tm := 0.0; tm < 10; tm += 1.3 {
		if math.Abs(d.At(0, tm)-d.At(0, tm+10)) > 1e-9 {
			t.Fatalf("not periodic at t=%g", tm)
		}
	}
}

func TestDiurnalPhaseShift(t *testing.T) {
	// Two nodes half a cycle apart peak at opposite times.
	d := NewDiurnal(Static{10, 10}, 20, 1, []float64{0, 0.5})
	peak0Time, peak1Time := 0.0, 0.0
	best0, best1 := -1.0, -1.0
	for tm := 0.0; tm < 20; tm += 0.1 {
		if v := d.At(0, tm); v > best0 {
			best0, peak0Time = v, tm
		}
		if v := d.At(1, tm); v > best1 {
			best1, peak1Time = v, tm
		}
	}
	gap := math.Abs(peak0Time - peak1Time)
	if math.Abs(gap-10) > 0.5 {
		t.Errorf("peaks %g apart, want ~10 (half period)", gap)
	}
}

func TestDiurnalMissingPhaseDefaultsToZero(t *testing.T) {
	d := NewDiurnal(Static{10, 10}, 20, 0.5, []float64{0.3})
	// Node 1 has no phase entry: it uses 0, which differs from node 0.
	if d.At(1, 5) == d.At(0, 5) {
		t.Error("expected phase difference between configured and default nodes")
	}
	// Out-of-range node: zero base demand anyway.
	if d.At(99, 5) != 0 {
		t.Error("unknown node should have zero demand")
	}
}

func TestDiurnalValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero period": func() { NewDiurnal(Static{1}, 0, 0.5, nil) },
		"depth > 1":   func() { NewDiurnal(Static{1}, 10, 1.5, nil) },
		"depth < 0":   func() { NewDiurnal(Static{1}, 10, -0.1, nil) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestPhaseByLongitude(t *testing.T) {
	g := topology.Grid(2, 3) // x spans 0, 0.5, 1
	phases := PhaseByLongitude(g, 0.5)
	if len(phases) != 6 {
		t.Fatalf("got %d phases", len(phases))
	}
	if phases[0] != 0 {
		t.Errorf("west edge phase = %g, want 0", phases[0])
	}
	if math.Abs(phases[2]-0.5) > 1e-9 { // east edge of first row
		t.Errorf("east edge phase = %g, want 0.5", phases[2])
	}
	// Graph without positions: all zero.
	bare := topology.New(3, "bare")
	for _, p := range PhaseByLongitude(bare, 0.5) {
		if p != 0 {
			t.Error("bare graph phases should be zero")
		}
	}
}
