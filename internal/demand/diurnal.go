package demand

import (
	"fmt"
	"math"

	"repro/internal/topology"
)

// Diurnal modulates a base field with a sinusoidal day/night cycle, each
// node with its own phase — the geographic demand pattern of a worldwide
// replica set where "demand" follows local working hours. The paper's §1
// lists geographical distribution first among the factors that make some
// replicas more demanded than others.
//
// demand(n, t) = base(n, t) · (1 − Depth·(1 − sin(2π(t/Period + phase_n)))/2)
//
// so each node oscillates between full base demand (local noon) and
// (1 − Depth)·base (local night).
type Diurnal struct {
	base   Field
	period float64
	depth  float64
	phase  []float64
}

// NewDiurnal wraps base with a cycle of the given period (in session time
// units) and depth in [0, 1]; phase[n] in [0, 1) shifts node n's peak.
func NewDiurnal(base Field, period, depth float64, phase []float64) *Diurnal {
	if period <= 0 {
		panic(fmt.Sprintf("demand: non-positive diurnal period %g", period))
	}
	if depth < 0 || depth > 1 {
		panic(fmt.Sprintf("demand: diurnal depth %g outside [0,1]", depth))
	}
	return &Diurnal{
		base:   base,
		period: period,
		depth:  depth,
		phase:  append([]float64(nil), phase...),
	}
}

// At implements Field.
func (d *Diurnal) At(node NodeID, t float64) float64 {
	var ph float64
	if int(node) >= 0 && int(node) < len(d.phase) {
		ph = d.phase[node]
	}
	s := math.Sin(2 * math.Pi * (t/d.period + ph))
	factor := 1 - d.depth*(1-s)/2
	return d.base.At(node, t) * factor
}

// PhaseByLongitude derives per-node phases from the X coordinate of each
// node's position (graphs generated here place nodes in the unit square),
// mimicking time zones: nodes at x=0 and x=1 peak half a cycle apart when
// spread = 0.5.
func PhaseByLongitude(g *topology.Graph, spread float64) []float64 {
	phases := make([]float64, g.N())
	for i := range phases {
		if p, ok := g.Pos(NodeID(i)); ok {
			phases[i] = p.X * spread
		}
	}
	return phases
}
