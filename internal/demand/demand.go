// Package demand models client demand — the number of service requests per
// unit time each replica receives — which is the quantity the paper's fast
// consistency algorithm prioritises on.
//
// A Field maps (replica, simulated time) to a demand rate. Static fields
// capture the paper's §2 model ("demand conditions do not change with
// time"); dynamic fields capture §3 ("what happens if these conditions do
// change"). The package also implements the per-replica neighbour demand
// Table of §4, refreshed by periodic advertisements "in a way similar to IP
// routing algorithms".
package demand

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/topology"
	"repro/internal/vclock"
)

// NodeID aliases the replica identifier.
type NodeID = vclock.NodeID

// Field reports the demand of a node at simulated time t. Implementations
// must be deterministic: At(n, t) depends only on (n, t) and construction
// parameters, never on call order. Fields must be safe for concurrent
// readers.
type Field interface {
	At(node NodeID, t float64) float64
}

// Static is a time-invariant demand field backed by a slice indexed by node.
type Static []float64

// At implements Field. Nodes outside the slice have zero demand.
func (s Static) At(node NodeID, _ float64) float64 {
	if int(node) < 0 || int(node) >= len(s) {
		return 0
	}
	return s[node]
}

// Uniform returns a static field with every node's demand drawn uniformly
// from [lo, hi). This matches the paper's §5 setup: "assigning to each
// replica, also in a random way, their respective demands".
func Uniform(n int, lo, hi float64, r *rand.Rand) Static {
	if hi < lo {
		panic(fmt.Sprintf("demand: invalid range [%g, %g)", lo, hi))
	}
	f := make(Static, n)
	for i := range f {
		f[i] = lo + (hi-lo)*r.Float64()
	}
	return f
}

// Zipf returns a static field whose demands follow a Zipf-like distribution
// with exponent s over ranks 1..n, scaled so the maximum demand is max. Node
// ranks are assigned by a random permutation. Heavy-tailed demand is the
// realistic Internet case the paper's introduction motivates.
func Zipf(n int, s, max float64, r *rand.Rand) Static {
	if s <= 0 || max <= 0 {
		panic(fmt.Sprintf("demand: Zipf needs s > 0 and max > 0, got %g, %g", s, max))
	}
	f := make(Static, n)
	perm := r.Perm(n)
	for i, node := range perm {
		rank := float64(i + 1)
		f[node] = max / math.Pow(rank, s)
	}
	return f
}

// Fig2Demands returns the five-replica demand table of the paper's §2
// example: replicas A..E with request rates 4, 6, 3, 8, 7.
func Fig2Demands() Static { return Static{4, 6, 3, 8, 7} }

// Valley is one Gaussian demand basin for ValleyField: replicas near Center
// experience up to Peak extra requests per unit time, decaying with spatial
// distance at scale Sigma. Valleys realise the paper's Fig. 1 "hills and
// valleys" picture (valleys = areas of greater demand).
type Valley struct {
	Center topology.Point
	Peak   float64
	Sigma  float64
}

// ValleyField derives demand from node coordinates: a base level plus the
// sum of Gaussian valleys. Nodes must carry positions (all provided
// generators set them).
type ValleyField struct {
	graph   *topology.Graph
	base    float64
	valleys []Valley
}

// NewValleyField builds a spatial demand surface over g.
func NewValleyField(g *topology.Graph, base float64, valleys []Valley) *ValleyField {
	return &ValleyField{graph: g, base: base, valleys: append([]Valley(nil), valleys...)}
}

// At implements Field.
func (v *ValleyField) At(node NodeID, _ float64) float64 {
	p, ok := v.graph.Pos(node)
	if !ok {
		return v.base
	}
	d := v.base
	for _, val := range v.valleys {
		dist := p.Dist(val.Center)
		d += val.Peak * math.Exp(-dist*dist/(2*val.Sigma*val.Sigma))
	}
	return d
}

// StepChange is a dynamic field that switches between static snapshots at
// given times: demand is Snapshots[i] for t in [Times[i], Times[i+1]). It
// reproduces the paper's Fig. 4 scenario where demands change between
// session rounds.
type StepChange struct {
	times     []float64
	snapshots []Static
}

// NewStepChange builds a step-function field. times must be strictly
// increasing and start at 0, with one snapshot per time.
func NewStepChange(times []float64, snapshots []Static) *StepChange {
	if len(times) == 0 || len(times) != len(snapshots) {
		panic("demand: StepChange needs equal, non-empty times and snapshots")
	}
	if times[0] != 0 {
		panic("demand: StepChange times must start at 0")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			panic("demand: StepChange times must be strictly increasing")
		}
	}
	return &StepChange{
		times:     append([]float64(nil), times...),
		snapshots: append([]Static(nil), snapshots...),
	}
}

// At implements Field.
func (sc *StepChange) At(node NodeID, t float64) float64 {
	idx := sort.SearchFloat64s(sc.times, t)
	if idx == len(sc.times) || sc.times[idx] > t {
		idx--
	}
	if idx < 0 {
		idx = 0
	}
	return sc.snapshots[idx].At(node, t)
}

// Fig4Field returns the paper's §3–4 dynamic scenario: four replicas
// A(0), B(1), C(2), D(3). At t<2, demands are A=2, B=6, C=0, D=13; from t>=2
// replica A falls to 0 and replica C rises to 9 (A' and C' in Fig. 4).
func Fig4Field() *StepChange {
	return NewStepChange(
		[]float64{0, 2},
		[]Static{
			{2, 6, 0, 13},
			{0, 6, 9, 13},
		},
	)
}

// FlashCrowd is a dynamic field where a target node's demand is multiplied
// during a time window — the "flash crowd" pattern of Internet services.
type FlashCrowd struct {
	Base       Field
	Node       NodeID
	Start, End float64
	Factor     float64
}

// At implements Field.
func (f *FlashCrowd) At(node NodeID, t float64) float64 {
	d := f.Base.At(node, t)
	if node == f.Node && t >= f.Start && t < f.End {
		return d * f.Factor
	}
	return d
}

// RandomWalkField gives each node a demand trajectory that performs an
// independent bounded random walk, precomputed at construction so lookups
// are deterministic. Demand at time t is the value at step floor(t/dt),
// clamped to the last precomputed step.
type RandomWalkField struct {
	dt    float64
	steps [][]float64 // steps[k][node]
}

// NewRandomWalk precomputes a random-walk demand trajectory for n nodes over
// `steps` steps of length dt. Each step moves each node's demand by a
// uniform increment in [-vol, vol], reflected into [lo, hi].
func NewRandomWalk(n int, lo, hi, vol, dt float64, steps int, r *rand.Rand) *RandomWalkField {
	if steps < 1 || dt <= 0 || hi <= lo {
		panic("demand: NewRandomWalk needs steps >= 1, dt > 0, hi > lo")
	}
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = lo + (hi-lo)*r.Float64()
	}
	all := make([][]float64, steps)
	for k := 0; k < steps; k++ {
		snap := append([]float64(nil), cur...)
		all[k] = snap
		for i := range cur {
			cur[i] += (2*r.Float64() - 1) * vol
			// Reflect into [lo, hi].
			if cur[i] < lo {
				cur[i] = 2*lo - cur[i]
			}
			if cur[i] > hi {
				cur[i] = 2*hi - cur[i]
			}
			if cur[i] < lo {
				cur[i] = lo // degenerate volatility larger than range
			}
		}
	}
	return &RandomWalkField{dt: dt, steps: all}
}

// At implements Field.
func (w *RandomWalkField) At(node NodeID, t float64) float64 {
	if int(node) < 0 || int(node) >= len(w.steps[0]) {
		return 0
	}
	k := int(t / w.dt)
	if k < 0 {
		k = 0
	}
	if k >= len(w.steps) {
		k = len(w.steps) - 1
	}
	return w.steps[k][node]
}

// Snapshot evaluates field at time t for all n nodes.
func Snapshot(f Field, n int, t float64) Static {
	s := make(Static, n)
	for i := range s {
		s[i] = f.At(NodeID(i), t)
	}
	return s
}

// TopFraction returns the ceil(frac*n) nodes with highest demand at time t,
// ties broken by lower node id. This defines the "replicas with most demand"
// subset measured by the paper's Figs. 5–6 (we use the top 20 % by default
// in experiments).
func TopFraction(f Field, n int, t, frac float64) []NodeID {
	if frac <= 0 || n == 0 {
		return nil
	}
	if frac > 1 {
		frac = 1
	}
	k := int(math.Ceil(frac * float64(n)))
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		di, dj := f.At(nodes[i], t), f.At(nodes[j], t)
		if di != dj {
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
	return nodes[:k]
}

// Rank returns all n nodes ordered by descending demand at time t, ties
// broken by lower node id.
func Rank(f Field, n int, t float64) []NodeID {
	return TopFraction(f, n, t, 1)
}
