package demand

import (
	"sync"
	"testing"
)

func TestMutableSwapsFields(t *testing.T) {
	base := Static{1, 2, 3}
	m := NewMutable(base)
	if got := m.At(2, 0); got != 3 {
		t.Errorf("At(2) = %g, want 3", got)
	}
	m.Set(Static{9, 8, 7})
	if got := m.At(2, 0); got != 7 {
		t.Errorf("after Set, At(2) = %g, want 7", got)
	}
	if got := m.Current().At(0, 0); got != 9 {
		t.Errorf("Current().At(0) = %g, want 9", got)
	}
}

func TestMutableConcurrentAccess(t *testing.T) {
	m := NewMutable(Static{1, 2, 3})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				m.At(NodeID(j%3), float64(j))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 500; j++ {
			m.Set(Static{float64(j), 1, 2})
		}
	}()
	wg.Wait()
}

func TestInvert(t *testing.T) {
	s := Static{5, 15, 25, 85}
	inv := Invert(s)
	// max+min-d per node: order reverses, extremes swap.
	want := Static{85, 75, 65, 5}
	for i := range want {
		if inv[i] != want[i] {
			t.Errorf("Invert[%d] = %g, want %g", i, inv[i], want[i])
		}
	}
	// Involution up to the same extremes.
	back := Invert(inv)
	for i := range s {
		if back[i] != s[i] {
			t.Errorf("Invert(Invert)[%d] = %g, want %g", i, back[i], s[i])
		}
	}
	if got := Invert(Static{}); len(got) != 0 {
		t.Errorf("Invert(empty) = %v", got)
	}
}
