package demand

import "sync"

// Mutable wraps a Field and lets it be swapped atomically at runtime — the
// live-cluster analogue of §3's changing demand conditions. The chaos
// harness flips fields mid-run to test that the protocol re-adapts its
// propagation order to the new demand distribution.
//
// Mutable is safe for concurrent readers and swappers. At remains
// deterministic between swaps: it delegates to whichever field is current.
type Mutable struct {
	mu sync.RWMutex
	f  Field
}

// NewMutable wraps f.
func NewMutable(f Field) *Mutable {
	if f == nil {
		panic("demand: NewMutable(nil)")
	}
	return &Mutable{f: f}
}

// At implements Field by delegating to the current field.
func (m *Mutable) At(node NodeID, t float64) float64 {
	m.mu.RLock()
	f := m.f
	m.mu.RUnlock()
	return f.At(node, t)
}

// Set swaps the wrapped field.
func (m *Mutable) Set(f Field) {
	if f == nil {
		panic("demand: Mutable.Set(nil)")
	}
	m.mu.Lock()
	m.f = f
	m.mu.Unlock()
}

// Current returns the wrapped field.
func (m *Mutable) Current() Field {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.f
}

// Invert returns a static field with the demand order reversed: each node's
// demand becomes max+min-d, so the hottest replica becomes the coldest and
// vice versa. Inverting an empty field returns an empty field.
func Invert(s Static) Static {
	if len(s) == 0 {
		return Static{}
	}
	lo, hi := s[0], s[0]
	for _, d := range s[1:] {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	out := make(Static, len(s))
	for i, d := range s {
		out[i] = hi + lo - d
	}
	return out
}
