package demand

import (
	"sync"
	"testing"
)

func TestNewTable(t *testing.T) {
	tab := NewTable([]NodeID{1, 2, 3})
	if tab.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tab.Len())
	}
	e, ok := tab.Get(2)
	if !ok || !e.Reachable || e.Demand != 0 {
		t.Errorf("Get(2) = (%+v, %t)", e, ok)
	}
	if _, ok := tab.Get(9); ok {
		t.Error("Get of untracked neighbour should report false")
	}
}

func TestTableUpdateAndDemand(t *testing.T) {
	tab := NewTable([]NodeID{1})
	tab.Update(1, 42, 3.5)
	e, _ := tab.Get(1)
	if e.Demand != 42 || e.Updated != 3.5 || !e.Reachable {
		t.Errorf("entry after update = %+v", e)
	}
	if tab.Demand(1) != 42 {
		t.Errorf("Demand(1) = %g, want 42", tab.Demand(1))
	}
	if tab.Demand(99) != 0 {
		t.Errorf("Demand(unknown) = %g, want 0", tab.Demand(99))
	}
	// Unknown neighbours are added on update.
	tab.Update(7, 5, 4)
	if tab.Len() != 2 {
		t.Errorf("Len after new-neighbour update = %d, want 2", tab.Len())
	}
}

func TestTableByDemandOrder(t *testing.T) {
	// The paper's §4 example: neighbours D=13, A=2, C=0 must sort D, A, C.
	tab := NewTable([]NodeID{0, 2, 3}) // A=0, C=2, D=3
	tab.Update(3, 13, 1)
	tab.Update(0, 2, 1)
	tab.Update(2, 0, 1)
	ranked := tab.ByDemand()
	want := []NodeID{3, 0, 2}
	for i := range want {
		if ranked[i].Node != want[i] {
			t.Fatalf("ByDemand()[%d] = %v, want %v", i, ranked[i].Node, want[i])
		}
	}
}

func TestTableByDemandTieBreak(t *testing.T) {
	tab := NewTable([]NodeID{5, 2, 8})
	for _, n := range []NodeID{5, 2, 8} {
		tab.Update(n, 7, 0)
	}
	ranked := tab.ByDemand()
	if ranked[0].Node != 2 || ranked[1].Node != 5 || ranked[2].Node != 8 {
		t.Errorf("tie break order = %v %v %v, want n2 n5 n8",
			ranked[0].Node, ranked[1].Node, ranked[2].Node)
	}
}

func TestTableBest(t *testing.T) {
	tab := NewTable([]NodeID{1, 2})
	tab.Update(1, 3, 0)
	tab.Update(2, 9, 0)
	best, ok := tab.Best()
	if !ok || best.Node != 2 {
		t.Errorf("Best = (%+v, %t), want n2", best, ok)
	}
	empty := NewTable(nil)
	if _, ok := empty.Best(); ok {
		t.Error("Best of empty table should report false")
	}
}

func TestTableBestExcluding(t *testing.T) {
	tab := NewTable([]NodeID{1, 2, 3})
	tab.Update(1, 3, 0)
	tab.Update(2, 9, 0)
	tab.Update(3, 6, 0)
	got, ok := tab.BestExcluding(map[NodeID]bool{2: true})
	if !ok || got.Node != 3 {
		t.Errorf("BestExcluding({2}) = (%v, %t), want n3", got.Node, ok)
	}
	_, ok = tab.BestExcluding(map[NodeID]bool{1: true, 2: true, 3: true})
	if ok {
		t.Error("BestExcluding of everything should report false")
	}
}

func TestTableBestExcept(t *testing.T) {
	tb := NewTable([]NodeID{1, 2, 3, 4})
	tb.Update(1, 5, 0)
	tb.Update(2, 9, 0)
	tb.Update(3, 9, 0) // ties break toward the lower id
	tb.Update(4, 7, 0)

	if e, ok := tb.BestExcept(nil); !ok || e.Node != 2 {
		t.Errorf("BestExcept(nil) = (%v, %t), want n2", e.Node, ok)
	}
	if e, ok := tb.BestExcept([]NodeID{2}); !ok || e.Node != 3 {
		t.Errorf("BestExcept([2]) = (%v, %t), want n3", e.Node, ok)
	}
	if e, ok := tb.BestExcept([]NodeID{2, 3}); !ok || e.Node != 4 {
		t.Errorf("BestExcept([2 3]) = (%v, %t), want n4", e.Node, ok)
	}
	if _, ok := tb.BestExcept([]NodeID{1, 2, 3, 4}); ok {
		t.Error("BestExcept with everything excluded should report false")
	}
	tb.MarkUnreachable(2, 1)
	if e, ok := tb.BestExcept(nil); !ok || e.Node != 3 {
		t.Errorf("BestExcept skipping unreachable = (%v, %t), want n3", e.Node, ok)
	}
}

// TestBestExceptMatchesBestExcluding pins the single-pass selection to the
// sort-based semantics it replaced on the fast-offer hot path.
func TestBestExceptMatchesBestExcluding(t *testing.T) {
	tb := NewTable([]NodeID{0, 1, 2, 3, 4, 5})
	demands := []float64{3, 8, 8, 1, 8, 0}
	for n, d := range demands {
		tb.Update(NodeID(n), d, 0)
	}
	tb.MarkUnreachable(4, 1)
	for _, excl := range [][]NodeID{nil, {1}, {1, 2}, {1, 2, 0}, {0, 1, 2, 3, 5}} {
		skip := make(map[NodeID]bool, len(excl))
		for _, n := range excl {
			skip[n] = true
		}
		wantE, wantOK := tb.BestExcluding(skip)
		gotE, gotOK := tb.BestExcept(excl)
		if wantOK != gotOK || (wantOK && wantE.Node != gotE.Node) {
			t.Errorf("excluding %v: BestExcept = (%v, %t), BestExcluding = (%v, %t)",
				excl, gotE.Node, gotOK, wantE.Node, wantOK)
		}
	}
}

func TestBestExceptAllocs(t *testing.T) {
	tb := NewTable([]NodeID{0, 1, 2, 3})
	for n := 0; n < 4; n++ {
		tb.Update(NodeID(n), float64(n), 0)
	}
	excl := []NodeID{1, 2}
	if avg := testing.AllocsPerRun(100, func() { tb.BestExcept(excl) }); avg != 0 {
		t.Errorf("BestExcept allocates %v per run, want 0", avg)
	}
}

func TestTableUnreachable(t *testing.T) {
	tab := NewTable([]NodeID{1, 2})
	tab.Update(1, 10, 0)
	tab.Update(2, 20, 0)
	tab.MarkUnreachable(2, 1)
	// Unreachable neighbours are skipped by selection.
	best, ok := tab.Best()
	if !ok || best.Node != 1 {
		t.Errorf("Best after MarkUnreachable = (%v, %t), want n1", best.Node, ok)
	}
	if len(tab.ByDemand()) != 1 {
		t.Error("ByDemand should exclude unreachable neighbours")
	}
	// A later successful advertisement restores reachability.
	tab.Update(2, 20, 2)
	if best, _ := tab.Best(); best.Node != 2 {
		t.Error("Update should restore reachability")
	}
	// Marking an untracked node adds an unreachable entry.
	tab.MarkUnreachable(9, 3)
	if e, ok := tab.Get(9); !ok || e.Reachable {
		t.Errorf("MarkUnreachable on unknown = (%+v, %t)", e, ok)
	}
}

func TestTableStalestUpdate(t *testing.T) {
	tab := NewTable([]NodeID{1, 2})
	tab.Update(1, 5, 10)
	tab.Update(2, 5, 4)
	if got := tab.StalestUpdate(); got != 4 {
		t.Errorf("StalestUpdate = %g, want 4", got)
	}
	if got := NewTable(nil).StalestUpdate(); got != 0 {
		t.Errorf("StalestUpdate of empty = %g, want 0", got)
	}
}

func TestTableRefreshAll(t *testing.T) {
	tab := NewTable([]NodeID{0, 1, 2})
	tab.MarkUnreachable(1, 0)
	field := Static{10, 20, 30}
	tab.RefreshAll(field, 7)
	for n := NodeID(0); n < 3; n++ {
		e, _ := tab.Get(n)
		if e.Demand != field.At(n, 7) || e.Updated != 7 || !e.Reachable {
			t.Errorf("entry %v after RefreshAll = %+v", n, e)
		}
	}
}

func TestTableString(t *testing.T) {
	tab := NewTable([]NodeID{0, 3})
	tab.Update(3, 13, 1)
	tab.Update(0, 2, 1)
	if got := tab.String(); got != "[n3:13.0 n0:2.0]" {
		t.Errorf("String() = %q", got)
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tab := NewTable([]NodeID{0, 1, 2, 3})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tab.Update(NodeID(j%4), float64(j), float64(j))
				tab.ByDemand()
				tab.Best()
				tab.Demand(NodeID(j % 4))
			}
		}(i)
	}
	wg.Wait() // run with -race to verify safety
	if tab.Len() != 4 {
		t.Errorf("Len = %d, want 4", tab.Len())
	}
}
