package demand

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestStaticField(t *testing.T) {
	f := Static{1, 2, 3}
	if got := f.At(1, 0); got != 2 {
		t.Errorf("At(1) = %g, want 2", got)
	}
	if got := f.At(9, 0); got != 0 {
		t.Errorf("At(out of range) = %g, want 0", got)
	}
	if got := f.At(-1, 0); got != 0 {
		t.Errorf("At(negative) = %g, want 0", got)
	}
	// Time-invariance.
	if f.At(1, 0) != f.At(1, 1e9) {
		t.Error("Static field should not vary with time")
	}
}

func TestUniform(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := Uniform(100, 1, 101, r)
	for i, d := range f {
		if d < 1 || d >= 101 {
			t.Fatalf("demand[%d] = %g outside [1, 101)", i, d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Uniform with hi < lo should panic")
		}
	}()
	Uniform(10, 5, 1, r)
}

func TestZipf(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := Zipf(50, 1, 100, r)
	// Max demand is 100, min is 100/50.
	var max, min float64 = 0, math.Inf(1)
	for _, d := range f {
		if d > max {
			max = d
		}
		if d < min {
			min = d
		}
	}
	if max != 100 {
		t.Errorf("max demand = %g, want 100", max)
	}
	if math.Abs(min-2) > 1e-9 {
		t.Errorf("min demand = %g, want 2", min)
	}
	defer func() {
		if recover() == nil {
			t.Error("Zipf with s = 0 should panic")
		}
	}()
	Zipf(10, 0, 100, r)
}

func TestFig2Demands(t *testing.T) {
	f := Fig2Demands()
	// A=4 B=6 C=3 D=8 E=7 per the paper's table in §2.
	want := []float64{4, 6, 3, 8, 7}
	for i, w := range want {
		if f.At(NodeID(i), 0) != w {
			t.Errorf("replica %c demand = %g, want %g", 'A'+i, f.At(NodeID(i), 0), w)
		}
	}
}

func TestValleyField(t *testing.T) {
	g := topology.Grid(3, 3) // positions span the unit square
	f := NewValleyField(g, 1, []Valley{{Center: topology.Point{X: 0, Y: 0}, Peak: 10, Sigma: 0.3}})
	// Node 0 sits at (0,0): demand = base + peak.
	if got := f.At(0, 0); math.Abs(got-11) > 1e-9 {
		t.Errorf("At(valley center) = %g, want 11", got)
	}
	// Node 8 sits at (1,1): far from the valley, demand near base.
	if got := f.At(8, 0); got > 2 {
		t.Errorf("At(far corner) = %g, want near base 1", got)
	}
	// Demand decreases monotonically with distance from the valley.
	if !(f.At(0, 0) > f.At(4, 0) && f.At(4, 0) > f.At(8, 0)) {
		t.Error("valley demand should decay with distance")
	}
	// A node without a position gets base demand.
	bare := topology.New(2, "bare")
	fb := NewValleyField(bare, 3, nil)
	if got := fb.At(0, 0); got != 3 {
		t.Errorf("At(no position) = %g, want base 3", got)
	}
}

func TestStepChange(t *testing.T) {
	sc := NewStepChange(
		[]float64{0, 2, 5},
		[]Static{{1}, {2}, {3}},
	)
	tests := []struct {
		t    float64
		want float64
	}{
		{-1, 1}, {0, 1}, {1.9, 1}, {2, 2}, {4.9, 2}, {5, 3}, {100, 3},
	}
	for _, tt := range tests {
		if got := sc.At(0, tt.t); got != tt.want {
			t.Errorf("At(t=%g) = %g, want %g", tt.t, got, tt.want)
		}
	}
}

func TestStepChangeValidation(t *testing.T) {
	cases := []struct {
		name  string
		times []float64
		snaps []Static
	}{
		{"empty", nil, nil},
		{"mismatched", []float64{0}, []Static{{1}, {2}}},
		{"not starting at zero", []float64{1, 2}, []Static{{1}, {2}}},
		{"not increasing", []float64{0, 0}, []Static{{1}, {2}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewStepChange(c.times, c.snaps)
		})
	}
}

func TestFig4Field(t *testing.T) {
	f := Fig4Field()
	// t=1: A=2, B=6, C=0, D=13 (D has greatest demand).
	if got := f.At(3, 1); got != 13 {
		t.Errorf("D at t=1 = %g, want 13", got)
	}
	if got := f.At(0, 1); got != 2 {
		t.Errorf("A at t=1 = %g, want 2", got)
	}
	// t=2: A'=0, C'=9.
	if got := f.At(0, 2); got != 0 {
		t.Errorf("A' at t=2 = %g, want 0", got)
	}
	if got := f.At(2, 2); got != 9 {
		t.Errorf("C' at t=2 = %g, want 9", got)
	}
}

func TestFlashCrowd(t *testing.T) {
	f := &FlashCrowd{Base: Static{1, 1}, Node: 1, Start: 5, End: 10, Factor: 50}
	if got := f.At(1, 4); got != 1 {
		t.Errorf("before window = %g, want 1", got)
	}
	if got := f.At(1, 5); got != 50 {
		t.Errorf("in window = %g, want 50", got)
	}
	if got := f.At(1, 10); got != 1 {
		t.Errorf("at end = %g, want 1 (end exclusive)", got)
	}
	if got := f.At(0, 7); got != 1 {
		t.Errorf("other node = %g, want 1", got)
	}
}

func TestRandomWalkField(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	w := NewRandomWalk(10, 0, 100, 5, 1, 50, r)
	// Bounds hold at every step for every node.
	for k := 0; k < 50; k++ {
		for n := NodeID(0); n < 10; n++ {
			d := w.At(n, float64(k))
			if d < 0 || d > 100 {
				t.Fatalf("walk demand out of bounds: node %v t=%d d=%g", n, k, d)
			}
		}
	}
	// Clamping beyond the horizon and below zero.
	if w.At(0, 1e6) != w.At(0, 49) {
		t.Error("walk should clamp to last step")
	}
	if w.At(0, -5) != w.At(0, 0) {
		t.Error("walk should clamp negative times to step 0")
	}
	if w.At(99, 0) != 0 {
		t.Error("unknown node should have zero demand")
	}
	// Determinism: same lookup twice.
	if w.At(3, 7) != w.At(3, 7) {
		t.Error("walk lookups must be deterministic")
	}
}

func TestRandomWalkFieldActuallyMoves(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	w := NewRandomWalk(4, 0, 100, 10, 1, 30, r)
	moved := false
	for n := NodeID(0); n < 4; n++ {
		if w.At(n, 0) != w.At(n, 29) {
			moved = true
		}
	}
	if !moved {
		t.Error("random walk never moved any node's demand")
	}
}

func TestSnapshot(t *testing.T) {
	f := Static{5, 6, 7}
	s := Snapshot(f, 3, 0)
	if len(s) != 3 || s[0] != 5 || s[2] != 7 {
		t.Errorf("Snapshot = %v", s)
	}
}

func TestTopFraction(t *testing.T) {
	f := Static{10, 40, 20, 30}
	top := TopFraction(f, 4, 0, 0.5)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Errorf("TopFraction(0.5) = %v, want [n1 n3]", top)
	}
	if got := TopFraction(f, 4, 0, 0); got != nil {
		t.Errorf("TopFraction(0) = %v, want nil", got)
	}
	all := TopFraction(f, 4, 0, 2) // clamped to 1
	if len(all) != 4 {
		t.Errorf("TopFraction(2) len = %d, want 4", len(all))
	}
	// Ties break by node id.
	tied := Static{5, 5, 5}
	got := TopFraction(tied, 3, 0, 0.34)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("tied TopFraction = %v, want [n0 n1]", got)
	}
}

func TestRank(t *testing.T) {
	f := Static{1, 3, 2}
	ranked := Rank(f, 3, 0)
	want := []NodeID{1, 2, 0}
	for i := range want {
		if ranked[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", ranked, want)
		}
	}
}

// Property: TopFraction(k) nodes all have demand >= every excluded node.
func TestTopFractionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(50)
		field := Uniform(n, 0, 100, r)
		frac := 0.1 + 0.8*r.Float64()
		top := TopFraction(field, n, 0, frac)
		inTop := make(map[NodeID]bool, len(top))
		minTop := math.Inf(1)
		for _, u := range top {
			inTop[u] = true
			if d := field.At(u, 0); d < minTop {
				minTop = d
			}
		}
		for i := 0; i < n; i++ {
			if !inTop[NodeID(i)] && field.At(NodeID(i), 0) > minTop {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("TopFraction property violated: %v", err)
	}
}
