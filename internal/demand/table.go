package demand

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// TableEntry is one row of a replica's neighbour demand table (paper §4:
// "Each replica maintains a table with its neighbours' data ... an
// identifying name and its demand").
type TableEntry struct {
	Node    NodeID
	Demand  float64
	Updated float64 // simulated time of the last advertisement
	// Reachable records whether the last refresh succeeded; the paper notes
	// the refresh "as an added advantage, tells us if this replica is
	// available (link and server both working)".
	Reachable bool
}

// Table is a replica's view of its neighbours' demands, refreshed by
// demand advertisements. Table is safe for concurrent use.
type Table struct {
	mu      sync.RWMutex
	entries map[NodeID]TableEntry
}

// NewTable returns a table pre-populated with the given neighbours at zero
// demand, all initially reachable.
func NewTable(neighbors []NodeID) *Table {
	t := &Table{entries: make(map[NodeID]TableEntry, len(neighbors))}
	for _, n := range neighbors {
		t.entries[n] = TableEntry{Node: n, Reachable: true}
	}
	return t
}

// Update records an advertisement: neighbour node reported demand d at time
// now. Unknown neighbours are added (supports membership growth).
func (t *Table) Update(node NodeID, d, now float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[node] = TableEntry{Node: node, Demand: d, Updated: now, Reachable: true}
}

// MarkUnreachable flags a neighbour whose refresh failed.
func (t *Table) MarkUnreachable(node NodeID, now float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[node]
	if !ok {
		e = TableEntry{Node: node}
	}
	e.Reachable = false
	e.Updated = now
	t.entries[node] = e
}

// Get returns the entry for node.
func (t *Table) Get(node NodeID) (TableEntry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.entries[node]
	return e, ok
}

// Demand returns the recorded demand of node (0 if unknown).
func (t *Table) Demand(node NodeID) float64 {
	e, _ := t.Get(node)
	return e.Demand
}

// Len returns the number of neighbours tracked.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// ByDemand returns reachable neighbours in decreasing order of recorded
// demand, ties broken by lower node id — the selection order of the paper's
// §2.1 part one and the §4 table ("neighbours' vector arranged in
// decreasing order of demand").
func (t *Table) ByDemand() []TableEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]TableEntry, 0, len(t.entries))
	for _, e := range t.entries {
		if e.Reachable {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Demand != out[j].Demand {
			return out[i].Demand > out[j].Demand
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Best returns the reachable neighbour with highest recorded demand — the
// fast-update target of §2.1 step 13.
func (t *Table) Best() (TableEntry, bool) {
	ranked := t.ByDemand()
	if len(ranked) == 0 {
		return TableEntry{}, false
	}
	return ranked[0], true
}

// bestWhere returns the highest-demand reachable neighbour for which skip
// reports false, ties broken by lower node id — the selection order of
// ByDemand without sorting or materialising the ranked slice.
func (t *Table) bestWhere(skip func(NodeID) bool) (TableEntry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var best TableEntry
	found := false
	for _, e := range t.entries {
		if !e.Reachable || skip(e.Node) {
			continue
		}
		if !found || e.Demand > best.Demand ||
			(e.Demand == best.Demand && e.Node < best.Node) {
			best = e
			found = true
		}
	}
	return best, found
}

// BestExcluding returns the highest-demand reachable neighbour not in skip.
func (t *Table) BestExcluding(skip map[NodeID]bool) (TableEntry, bool) {
	return t.bestWhere(func(n NodeID) bool { return skip[n] })
}

// BestExcept returns the highest-demand reachable neighbour whose id is not
// in excluded. It allocates nothing — the fast-offer hot path calls it once
// per message with a reusable exclusion buffer.
func (t *Table) BestExcept(excluded []NodeID) (TableEntry, bool) {
	return t.bestWhere(func(n NodeID) bool {
		for _, x := range excluded {
			if n == x {
				return true
			}
		}
		return false
	})
}

// StalestUpdate returns the oldest Updated time across entries, i.e. how out
// of date the table may be. An empty table returns 0.
func (t *Table) StalestUpdate() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	first := true
	var oldest float64
	for _, e := range t.entries {
		if first || e.Updated < oldest {
			oldest = e.Updated
			first = false
		}
	}
	return oldest
}

// RefreshAll updates every tracked neighbour from the ground-truth field at
// time now. It models a complete round of demand advertisements.
func (t *Table) RefreshAll(f Field, now float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for node, e := range t.entries {
		e.Demand = f.At(node, now)
		e.Updated = now
		e.Reachable = true
		t.entries[node] = e
	}
}

// String renders the table rows in demand order, e.g. "[n3:13.0 n0:2.0]".
func (t *Table) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range t.ByDemand() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v:%.1f", e.Node, e.Demand)
	}
	b.WriteByte(']')
	return b.String()
}
