package runtime_test

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/demand"
	"repro/internal/runtime"
	"repro/internal/topology"
)

// ExampleCluster runs a live replica group end to end: write at one
// replica, watch the write propagate, read it back at another.
func ExampleCluster() {
	cluster := runtime.New(topology.Ring(4), demand.Static{5, 10, 15, 20},
		runtime.WithSeed(1),
		runtime.WithSessionInterval(10*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cluster.Start(ctx); err != nil {
		panic(err)
	}
	defer cluster.Stop()

	// A client write at replica 0 returns the write's timestamp.
	ts, err := cluster.Write(0, "greeting", []byte("hello"))
	if err != nil {
		panic(err)
	}
	// Watch blocks until every replica covers the write.
	w := cluster.Watch(ts)
	<-w.Done()

	// Any replica now serves it.
	v, ok, err := cluster.Read(3, "greeting")
	if err != nil {
		panic(err)
	}
	fmt.Printf("read at n3: %s (found=%v, id=%v)\n", v, ok, ts)
	// Output:
	// read at n3: hello (found=true, id=n0:1)
}

// ExampleWithDurability shows the durable persistence plane: a cluster
// writes, shuts down, and a brand-new cluster over the same data
// directory recovers the content from its on-disk WALs.
func ExampleWithDurability() {
	dir, err := os.MkdirTemp("", "repro-durable-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	build := func() *runtime.Cluster {
		return runtime.New(topology.Ring(3), demand.Static{1, 2, 3},
			runtime.WithSeed(1),
			runtime.WithDurability(dir))
	}

	first := build()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := first.Start(ctx); err != nil {
		panic(err)
	}
	// Acknowledged means fsynced: the ack returns only after the write's
	// group-committed batch is on disk.
	if _, err := first.Write(0, "durable-key", []byte("survives")); err != nil {
		panic(err)
	}
	first.Stop()

	// A fresh process over the same directory recovers at construction —
	// reads serve even before Start.
	second := build()
	defer second.Stop()
	v, ok, err := second.Read(0, "durable-key")
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovered: %s (found=%v)\n", v, ok)
	// Output:
	// recovered: survives (found=true)
}
