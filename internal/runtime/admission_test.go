package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// admissionCluster builds a client-plane cluster with the admission plane
// armed. Background anti-entropy is slowed so the write path dominates.
func admissionCluster(t *testing.T, n int, cfg AdmissionConfig) *Cluster {
	t.Helper()
	return startClientPlaneCluster(t, n, WithAdmission(cfg))
}

func TestAdmissionConfigNormalized(t *testing.T) {
	got := AdmissionConfig{}.normalized()
	if got.MaxQueueDepth != 4096 || got.Target != 5*time.Millisecond || got.Interval != 100*time.Millisecond {
		t.Errorf("zero config normalised to %+v, want defaults", got)
	}
	if off := (AdmissionConfig{Target: -1}).normalized(); off.Target != 0 {
		t.Errorf("negative Target normalised to %v, want 0 (controller off)", off.Target)
	}
	if d := (AdmissionConfig{WriteDeadline: -time.Second}).normalized(); d.WriteDeadline != 0 {
		t.Errorf("negative WriteDeadline normalised to %v, want 0", d.WriteDeadline)
	}
}

// TestObserveLatchesAndExits walks the controller through the CoDel state
// machine by hand: sojourn above target must persist a full interval
// before shedding engages, and a single observation back under target
// exits the overloaded state immediately.
func TestObserveLatchesAndExits(t *testing.T) {
	a := &admission{cfg: AdmissionConfig{Target: time.Millisecond, Interval: 10 * time.Millisecond}.normalized()}
	base := time.Now().UnixNano()
	ms := int64(time.Millisecond)

	a.observe(base, 5*time.Millisecond)
	if a.overloaded.Load() {
		t.Fatal("one observation above target latched overload; a full interval is required")
	}
	a.observe(base+5*ms, 5*time.Millisecond)
	if a.overloaded.Load() {
		t.Fatal("half an interval above target latched overload")
	}
	a.observe(base+11*ms, 5*time.Millisecond)
	if !a.overloaded.Load() {
		t.Fatal("a full interval of sojourn above target did not latch overload")
	}
	if !a.shouldShed(base + 11*ms) {
		t.Fatal("overloaded controller did not shed at its scheduled drop time")
	}
	a.observe(base+12*ms, 100*time.Microsecond)
	if a.overloaded.Load() {
		t.Fatal("an observation back under target did not exit the overloaded state")
	}
	if a.shouldShed(base + 13*ms) {
		t.Fatal("controller shed after exiting the overloaded state")
	}
}

// TestShedScheduleTightens checks the CoDel control law: while the
// overload persists, the gap between scheduled sheds shrinks as
// interval/sqrt(drops).
func TestShedScheduleTightens(t *testing.T) {
	a := &admission{cfg: AdmissionConfig{Target: time.Millisecond, Interval: 10 * time.Millisecond}.normalized()}
	base := time.Now().UnixNano()
	a.observe(base, 5*time.Millisecond)
	a.observe(base+int64(a.cfg.Interval), 5*time.Millisecond)
	if !a.overloaded.Load() {
		t.Fatal("controller did not latch")
	}
	now := base + int64(a.cfg.Interval)
	var gaps []int64
	for i := 0; i < 4; i++ {
		next := a.dropNext.Load()
		if !a.shouldShed(next) {
			t.Fatalf("shed %d refused at its own scheduled time", i)
		}
		gaps = append(gaps, a.dropNext.Load()-next)
		now = a.dropNext.Load()
	}
	_ = now
	for i := 1; i < len(gaps); i++ {
		if gaps[i] >= gaps[i-1] {
			t.Fatalf("drop gaps %v do not tighten; want strictly decreasing", gaps)
		}
	}
}

func TestRetryAfterClamped(t *testing.T) {
	a := &admission{}
	if got := a.retryAfter(); got != time.Millisecond {
		t.Errorf("retryAfter with no observation = %v, want the 1ms floor", got)
	}
	a.lastSojourn.Store(int64(10 * time.Second))
	if got := a.retryAfter(); got != time.Second {
		t.Errorf("retryAfter with a 10s sojourn = %v, want the 1s cap", got)
	}
	a.lastSojourn.Store(int64(25 * time.Millisecond))
	if got := a.retryAfter(); got != 25*time.Millisecond {
		t.Errorf("retryAfter = %v, want the observed 25ms sojourn", got)
	}
}

func TestOverloadErrorSemantics(t *testing.T) {
	err := error(&OverloadError{Replica: 3, Reason: ShedSojourn, RetryAfter: 7 * time.Millisecond})
	if !errors.Is(err, ErrOverload) {
		t.Fatal("OverloadError does not match ErrOverload under errors.Is")
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfterHint() != 7*time.Millisecond {
		t.Fatal("OverloadError lost its retry-after hint through errors.As")
	}
	wrapped := fmt.Errorf("write k: %w", err)
	if !errors.Is(wrapped, ErrOverload) {
		t.Fatal("wrapped OverloadError does not match ErrOverload")
	}
}

// TestAdmissionFastPathZeroAllocs pins the admission decision — the only
// cost unshedded traffic pays — at zero allocations: two atomic loads on
// the accept path, and the observe feedback is allocation-free too.
func TestAdmissionFastPathZeroAllocs(t *testing.T) {
	a := &admission{cfg: AdmissionConfig{}.normalized()}
	now := time.Now().UnixNano()
	if got := testing.AllocsPerRun(1000, func() {
		if a.shouldShed(now) {
			t.Fatal("healthy controller shed")
		}
		a.observe(now, 10*time.Microsecond)
	}); got != 0 {
		t.Errorf("admission fast path allocates %v objects per op, want 0", got)
	}
}

// TestQueueFullSheds drives the hard bound deterministically: the replica
// lock is held so the commit leader stalls mid-batch, writes park up to
// MaxQueueDepth, and the next arrival is shed with a queue-full rejection
// instead of parking unboundedly. Releasing the lock must then complete
// every parked write — a shed never blocks an admitted one.
func TestQueueFullSheds(t *testing.T) {
	const depth = 4
	c := admissionCluster(t, 3, AdmissionConfig{MaxQueueDepth: depth, Target: -1})
	r := c.replicas[0]

	r.mu.Lock()
	var leader sync.WaitGroup
	leader.Add(1)
	go func() {
		defer leader.Done()
		if _, err := c.Write(0, "leader", []byte("v")); err != nil {
			t.Errorf("leader write failed: %v", err)
		}
	}()
	// Wait for the leader to install itself and stall on the replica lock,
	// so every write below parks behind it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		r.wq.mu.Lock()
		installed := r.wq.leader
		r.wq.mu.Unlock()
		if installed {
			break
		}
		if time.Now().After(deadline) {
			r.mu.Unlock()
			t.Fatal("commit leader never installed")
		}
		time.Sleep(time.Millisecond)
	}
	var parked sync.WaitGroup
	for i := 0; i < depth; i++ {
		parked.Add(1)
		go func(i int) {
			defer parked.Done()
			if _, err := c.Write(0, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				t.Errorf("parked write %d failed: %v", i, err)
			}
		}(i)
	}
	for {
		if r.wq.depth() == depth {
			break
		}
		if time.Now().After(deadline) {
			r.mu.Unlock()
			t.Fatalf("queue depth %d, want %d parked writes", r.wq.depth(), depth)
		}
		time.Sleep(time.Millisecond)
	}

	_, err := c.Write(0, "overflow", []byte("v"))
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedQueueFull {
		r.mu.Unlock()
		t.Fatalf("write against a full queue returned %v, want a %s OverloadError", err, ShedQueueFull)
	}
	if oe.RetryAfter <= 0 {
		r.mu.Unlock()
		t.Fatal("queue-full rejection carries no retry-after hint")
	}
	r.mu.Unlock()
	leader.Wait()
	parked.Wait()

	h := c.Health(0)
	if h.Shed != 1 {
		t.Errorf("Health reports %d shed writes, want exactly the 1 overflow", h.Shed)
	}
}

// TestWriteDeadlineSheds parks writes past their deadline behind a
// stalled leader: on release, the leader must shed them with a deadline
// rejection before any reaches the node, while the in-flight batch that
// was already picked up commits normally.
func TestWriteDeadlineSheds(t *testing.T) {
	const deadline = 20 * time.Millisecond
	c := admissionCluster(t, 3, AdmissionConfig{Target: -1, WriteDeadline: deadline})
	r := c.replicas[0]

	r.mu.Lock()
	var leader sync.WaitGroup
	leader.Add(1)
	go func() {
		defer leader.Done()
		// Picked up before the stall: commits fine once the lock frees.
		if _, err := c.Write(0, "live", []byte("v")); err != nil {
			t.Errorf("in-flight write failed: %v", err)
		}
	}()
	wait := time.Now().Add(2 * time.Second)
	for {
		r.wq.mu.Lock()
		installed := r.wq.leader
		r.wq.mu.Unlock()
		if installed {
			break
		}
		if time.Now().After(wait) {
			r.mu.Unlock()
			t.Fatal("commit leader never installed")
		}
		time.Sleep(time.Millisecond)
	}
	errs := make(chan error, 1)
	go func() {
		_, err := c.Write(0, "expired", []byte("v"))
		errs <- err
	}()
	for {
		if r.wq.depth() == 1 {
			break
		}
		if time.Now().After(wait) {
			r.mu.Unlock()
			t.Fatal("write never parked")
		}
		time.Sleep(time.Millisecond)
	}
	// Hold the stall past the parked write's deadline, then release.
	time.Sleep(2 * deadline)
	r.mu.Unlock()
	leader.Wait()

	err := <-errs
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedDeadline {
		t.Fatalf("expired parked write returned %v, want a %s OverloadError", err, ShedDeadline)
	}
	if _, ok, _ := c.Read(0, "expired"); ok {
		t.Fatal("deadline-shed write is visible in the store — it reached the node despite the rejection")
	}
	if _, ok, _ := c.Read(0, "live"); !ok {
		t.Fatal("the in-flight write the stall delayed never committed")
	}
}

// TestShedHammer8Way hammers one replica from 8 goroutines with the
// controller pinned overloaded for the whole run: every write must either
// ack or return ErrOverload promptly — shed decisions under contention
// never wedge the queue, strand a writer, or block a committed batch's
// ack — and the totals must reconcile exactly. With -race this doubles as
// the data-race check on the controller's atomics against the write path.
func TestShedHammer8Way(t *testing.T) {
	c := admissionCluster(t, 3, AdmissionConfig{
		MaxQueueDepth: 8,
		Target:        time.Nanosecond, // any real sojourn is "above target"
		Interval:      time.Millisecond,
	})
	const workers, opsPer = 8, 300
	var acked, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				_, err := c.Write(0, fmt.Sprintf("w%d-%d", w, i), []byte("v"))
				switch {
				case err == nil:
					acked.Add(1)
				case errors.Is(err, ErrOverload):
					shed.Add(1)
				default:
					t.Errorf("write returned %v, want nil or ErrOverload", err)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("hammer wedged: writes neither acked nor shed")
	}
	if got := acked.Load() + shed.Load(); got != workers*opsPer {
		t.Fatalf("acked %d + shed %d = %d, want %d — writes vanished",
			acked.Load(), shed.Load(), got, workers*opsPer)
	}
	if acked.Load() == 0 {
		t.Error("every write shed; admitted traffic should still trickle through the drop schedule")
	}
	if shed.Load() == 0 {
		t.Error("nothing shed despite a controller pinned overloaded")
	}
	if want := c.replicas[0].adm.shedTotal(); int64(want) != shed.Load() {
		t.Errorf("replica counted %d sheds, clients observed %d", want, shed.Load())
	}
	// The replica must come out of the hammer fully serviceable.
	if _, err := c.Write(0, "after", []byte("v")); err != nil && !errors.Is(err, ErrOverload) {
		t.Fatalf("post-hammer write failed: %v", err)
	}
}

func TestFailStopReasonBuckets(t *testing.T) {
	if got := failStopReason(errors.New("write wal: input/output error")); got != "io-error" {
		t.Errorf("generic IO error bucketed as %q, want io-error", got)
	}
	fse := &FailStopError{Replica: 1, Reason: "disk-full", Cause: errors.New("no space")}
	if errors.Is(fse, ErrOverload) {
		t.Error("FailStopError matches ErrOverload; clients would retry a dead replica")
	}
}
