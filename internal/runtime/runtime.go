// Package runtime runs a live fast-consistency cluster: one goroutine per
// replica, real message passing, wall-clock session timers. It drives the
// same node state machine as the Monte-Carlo simulator, which is the
// repository's evidence that the algorithm is implementable as a service,
// not only as a simulation — the deployment the paper's introduction
// motivates ("clients will be able to contact the nearest replica").
//
// Replicas exchange envelopes over a transport.Memory network by default
// (microsecond "links"), or over TCP endpoints supplied by the caller.
//
// The client-facing Read/Write plane is concurrent (lock-free reads,
// group-committed writes; see doc.go at the repository root), and
// WithDurability adds the durable persistence plane: per-replica on-disk
// WALs with fsync-before-ack client writes and crash recovery via
// RestartFromDisk (see durability.go).
package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/demand"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/protocol"
	"repro/internal/store"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// NodeID aliases the replica identifier.
type NodeID = vclock.NodeID

// Option configures a Cluster.
type Option func(*options)

type options struct {
	sessionMean    time.Duration
	advertInterval time.Duration
	policy         policy.Factory
	fastPush       bool
	fanOut         int
	seed           int64
	tracer         *trace.Ring
	netCfg         transport.MemoryConfig
	measuredTau    time.Duration // > 0 enables measured demand
	durDir         string        // != "" enables the durable persistence plane
	walOpts        wal.Options
	walFS          vfs.FS          // nil = the real filesystem (vfs.OS)
	obs            *obs.ClusterObs // non-nil enables the observability plane
	admission      AdmissionConfig // always normalised; see WithAdmission
	tcpOpts        []transport.TCPOption
}

// walOptions is the effective WAL configuration: the tuned geometry plus
// the injected filesystem, if any. Every wal.Open in the runtime goes
// through this so fault-injected clusters never touch the real disk path,
// and every open WAL reports its sync latency into the observability
// plane's fsync histogram (inline syncs and pipelined sync-stage flushes
// alike).
func (o *options) walOptions() wal.Options {
	opts := o.walOpts
	if o.walFS != nil {
		opts.FS = o.walFS
	}
	if co := o.obs; co != nil {
		opts.OnSync = func(took time.Duration) {
			co.FsyncSeconds.Observe(took.Seconds())
		}
	}
	return opts
}

func defaultOptions() options {
	return options{
		sessionMean:    50 * time.Millisecond,
		advertInterval: 20 * time.Millisecond,
		policy:         policy.NewDynamicOrdered,
		fastPush:       true,
		fanOut:         1,
		seed:           1,
		// Durable clusters preallocate WAL segments by default so the
		// pipelined sync stage's fdatasync skips the per-sync inode size
		// update. WithDurabilityTuning replaces walOpts wholesale, so
		// explicit tuning retains full control (including turning it off).
		walOpts: wal.Options{Preallocate: true},
		// The combining queue is always bounded, but the sojourn
		// controller and write deadlines are opt-in (WithAdmission):
		// closed-loop callers cannot outrun the bound, so defaults shed
		// nothing.
		admission: AdmissionConfig{Target: -1}.normalized(),
	}
}

// WithTCPOptions forwards transport options (send-stall timeout, stall
// observer) to the TCP endpoints a NewTCP cluster listens on. Ignored by
// memory-backed clusters.
func WithTCPOptions(topts ...transport.TCPOption) Option {
	return func(o *options) { o.tcpOpts = append(o.tcpOpts, topts...) }
}

// WithSessionInterval sets the mean anti-entropy interval per replica
// (intervals are exponentially distributed around it).
func WithSessionInterval(d time.Duration) Option {
	return func(o *options) { o.sessionMean = d }
}

// WithAdvertInterval sets the demand-advertisement period (§4's routing-like
// refresh).
func WithAdvertInterval(d time.Duration) Option {
	return func(o *options) { o.advertInterval = d }
}

// WithPolicy selects the partner-selection policy (default demand-dynamic).
func WithPolicy(f policy.Factory) Option {
	return func(o *options) { o.policy = f }
}

// WithFastPush toggles the fast-update chains (default on).
func WithFastPush(enabled bool) Option {
	return func(o *options) { o.fastPush = enabled }
}

// WithFanOut sets the fast-offer fan-out (default 1).
func WithFanOut(n int) Option {
	return func(o *options) { o.fanOut = n }
}

// WithSeed seeds all per-replica RNGs deterministically.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithTrace attaches a trace ring.
func WithTrace(r *trace.Ring) Option {
	return func(o *options) { o.tracer = r }
}

// WithNetwork tunes the in-memory network (latency, loss).
func WithNetwork(cfg transport.MemoryConfig) Option {
	return func(o *options) { o.netCfg = cfg }
}

// WithMeasuredDemand makes replicas advertise demand measured from their
// actual client request stream (exponentially decayed requests/second with
// averaging window tau) instead of evaluating the configured demand field.
// The field is then used only by workload generators, matching the paper's
// §2 definition of demand as observed request rate.
func WithMeasuredDemand(tau time.Duration) Option {
	return func(o *options) { o.measuredTau = tau }
}

// Cluster is a running set of replicas.
type Cluster struct {
	opts  options
	graph *topology.Graph
	field demand.Field
	net   *transport.Memory

	replicas []*replica

	// absorbed accumulates every ApplySnapshot image (LWW-merged) so
	// restarted replicas can re-absorb content that no write log records.
	absorbed *store.Store

	// goodput meters acknowledged client writes per second cluster-wide
	// (exponentially decayed) for the observability plane's goodput
	// gauge. Nil when observability is off.
	goodput *demandMeter

	// initErr records a construction-time failure (e.g. an unreadable WAL
	// directory); Start surfaces it.
	initErr error

	mu      sync.Mutex
	watches []*Watch
	started bool
	stopped bool
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	start   time.Time

	// watchCount mirrors len(watches) so the per-write watch check is one
	// atomic load on the (common) zero-watch fast path, never Cluster.mu.
	watchCount atomic.Int32

	// fresh parks leveled reads waiting for a replica's applied coverage
	// to reach their session token (consistency.go). Like watches it has
	// an atomic zero-waiter fast path, so clusters that never issue
	// session reads pay one atomic load per signal point.
	fresh freshQueue
}

// New assembles a cluster over the graph with the given demand field. Call
// Start to launch it.
func New(g *topology.Graph, field demand.Field, opts ...Option) *Cluster {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	c := &Cluster{
		opts:     o,
		graph:    g,
		field:    field,
		net:      transport.NewMemory(o.netCfg),
		absorbed: store.New(),
	}
	if o.obs != nil {
		c.goodput = newDemandMeter(time.Second)
	}
	for i := 0; i < g.N(); i++ {
		id := NodeID(i)
		nbrs := g.NeighborsCopy(id)
		r := &replica{
			cluster: c,
			id:      id,
			rng:     rand.New(rand.NewSource(o.seed + int64(i)*7919)),
			ep:      c.net.Attach(id),
			adm:     admission{cfg: o.admission},
		}
		rec := c.openReplicaWAL(r, id)
		r.node = node.New(node.Config{
			ID:        id,
			Neighbors: nbrs,
			Selector:  o.policy(id, nbrs),
			FastPush:  o.fastPush,
			FanOut:    o.fanOut,
			Demand:    demandSource(&o, r, field, id),
			Observer:  nodeObserver(&o, id),
		})
		// A durable replica recovers its on-disk state (cold start) before
		// the store is published to the lock-free read path. The applied
		// watermark seeds from the recovered log for the same reason: a
		// leveled read must never observe coverage the store lacks.
		r.finishReplicaDurability(rec)
		r.applied.reset(r.node.Log())
		r.store.Store(r.node.Store())
		c.replicas = append(c.replicas, r)
	}
	c.registerObs()
	return c
}

// DataDir returns the durable persistence plane's base directory, or ""
// when durability is off.
func (c *Cluster) DataDir() string { return c.opts.durDir }

// demandSource returns the node's own-demand function: the configured field
// by default, or the replica's request meter under WithMeasuredDemand. The
// meter is created once per replica and survives restarts: the lock-free
// read path loads r.meter without holding the replica lock, so the field
// must never be rewritten after construction.
func demandSource(o *options, r *replica, field demand.Field, id NodeID) func(float64) float64 {
	if o.measuredTau <= 0 {
		return func(now float64) float64 { return field.At(id, now) }
	}
	if r.meter == nil {
		r.meter = newDemandMeter(o.measuredTau)
	}
	return func(float64) float64 { return r.meter.Rate(time.Now()) }
}

// N returns the number of replicas.
func (c *Cluster) N() int { return len(c.replicas) }

// Faults exposes the cluster network's fault-injection surface (partitions,
// loss, latency — see transport.Faults). It returns nil for TCP-backed
// clusters, whose faults live in the real network.
func (c *Cluster) Faults() transport.Faults {
	if c.net == nil {
		return nil
	}
	return c.net
}

// Start launches every replica goroutine. The cluster stops when ctx is
// cancelled or Stop is called.
func (c *Cluster) Start(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.initErr != nil {
		return c.initErr
	}
	if c.started {
		return errors.New("runtime: cluster already started")
	}
	c.started = true
	c.start = time.Now()
	c.ctx, c.cancel = context.WithCancel(ctx)
	for _, r := range c.replicas {
		if c.opts.durDir != "" {
			r.ackq.start(r)
		}
		r.spawn(c.ctx, &c.wg)
	}
	return nil
}

// Kill crashes replica id: its goroutine exits and its endpoint closes, so
// peers' sends fail and their demand tables mark it unreachable (§4's
// availability signal). The replica's state is discarded; use Restart to
// bring it back empty.
func (c *Cluster) Kill(id NodeID) error {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return fmt.Errorf("runtime: no replica %v", id)
	}
	c.mu.Lock()
	started, stopped := c.started, c.stopped
	c.mu.Unlock()
	if !started || stopped {
		return errors.New("runtime: cluster not running")
	}
	r := c.replicas[id]
	r.mu.Lock()
	if r.dead {
		r.mu.Unlock()
		return fmt.Errorf("runtime: replica %v already dead", id)
	}
	cancel, done := r.cancel, r.done
	r.mu.Unlock()
	cancel()
	<-done
	r.ep.Close()
	r.mu.Lock()
	r.dead = true
	// Retract the lock-free read path's store pointer: reads at a dead
	// replica must fail, and they never take the replica lock to find out.
	r.store.Store(nil)
	if r.wal != nil {
		// SIGKILL semantics: the WAL is abandoned without flushing, so
		// journaled-but-unsynced records die with the process image. Synced
		// records — every acknowledged client write — survive for
		// RestartFromDisk.
		r.wal.Abandon()
	}
	r.mu.Unlock()
	return nil
}

// Restart brings a killed replica back after *state loss*: a fresh node
// rejoins under the same identity, bootstrapped from the merged state of
// its live peers (crash recovery from backup) with its own pre-crash write
// head carried forward so the reused identity never reissues timestamps.
// Writes the crashed replica acknowledged but never replicated are gone —
// that is the state loss. Content previously handed in via ApplySnapshot is
// re-absorbed directly — it exists in no peer's write log, so the protocol
// could never replay it. Only memory-backed clusters support restart.
//
// Restarting with empty state while *other* replicas of the group are also
// down can strand their unique content: the rejoining replica adopts
// coverage past entries only the still-dead replicas hold, so those
// entries are never replayed to it. Restart one replica at a time (or use
// RestartPreserving) when overlapping failures matter.
func (c *Cluster) Restart(id NodeID) error { return c.restart(id, false) }

// RestartPreserving brings a killed replica back with its protocol state
// intact — write log, store and demand table survive, as if the process had
// restarted from durable storage. The replica reattaches to the network
// under the same identity and catches up on writes it missed through normal
// anti-entropy. Only memory-backed clusters support restart.
func (c *Cluster) RestartPreserving(id NodeID) error { return c.restart(id, true) }

func (c *Cluster) restart(id NodeID, preserve bool) error {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return fmt.Errorf("runtime: no replica %v", id)
	}
	if c.net == nil {
		return errors.New("runtime: restart unsupported on TCP clusters")
	}
	c.mu.Lock()
	started, stopped := c.started, c.stopped
	ctx := c.ctx
	c.mu.Unlock()
	if !started || stopped {
		return errors.New("runtime: cluster not running")
	}
	r := c.replicas[id]
	r.mu.Lock()
	alive := !r.dead
	r.mu.Unlock()
	if alive {
		return fmt.Errorf("runtime: replica %v is alive", id)
	}
	var bootSnap *vclock.Summary
	var bootItems []store.Item
	if !preserve {
		// Crash recovery bootstraps from the merged state of live peers (a
		// backup restore): the pointwise-max summary plus the LWW union of
		// their stores, each captured consistently under the peer's lock
		// and merged through a scratch store so near-identical peer images
		// collapse instead of accumulating n copies.
		bootSnap = vclock.NewSummary()
		merged := store.New()
		for _, peer := range c.replicas {
			if peer == r {
				continue
			}
			snap, items, ok := peer.exportState()
			if !ok {
				continue
			}
			bootSnap.Merge(snap)
			merged.ApplySnapshot(items)
		}
		bootItems = merged.Snapshot()
	}
	r.mu.Lock()
	if !r.dead {
		r.mu.Unlock()
		return fmt.Errorf("runtime: replica %v is alive", id)
	}
	// Durable replicas re-open their WAL for the new incarnation. An
	// empty-state restart is a genuine state loss, so the old disk state is
	// removed first; a preserving restart bridges RAM and disk with a
	// full-state record. The destructive disk work happens only after the
	// dead-check above, and under r.mu: a racing restart that loses must
	// never wipe the winner's live on-disk state. (The dead replica's own
	// WAL was abandoned by Kill, so nothing else writes these files.)
	var reopened *wal.Log
	if c.opts.durDir != "" {
		dir := walDir(c.opts.durDir, id)
		if !preserve {
			if err := wal.Remove(c.opts.walFS, dir); err != nil {
				r.mu.Unlock()
				return fmt.Errorf("runtime: replica %v state reset: %w", id, err)
			}
		}
		var err error
		reopened, _, err = wal.Open(dir, c.opts.walOptions())
		if err != nil {
			r.mu.Unlock()
			return fmt.Errorf("runtime: replica %v durability: %w", id, err)
		}
		reopened.StartPipeline()
	}
	if !preserve {
		// The identity's own write head and Lamport clock survive the
		// crash (the incarnation counter every real deployment persists):
		// without the floor, the reborn replica reissues timestamps its
		// peers already saw — its new writes are dropped as duplicates and
		// its advancing summary masks old entries it never recovered.
		ownHead := r.node.Summary().Get(id)
		minClock := r.node.Clock()
		nbrs := c.graph.NeighborsCopy(id)
		r.node = node.New(node.Config{
			ID:        id,
			Neighbors: nbrs,
			Selector:  c.opts.policy(id, nbrs),
			FastPush:  c.opts.fastPush,
			FanOut:    c.opts.fanOut,
			Demand:    demandSource(&c.opts, r, c.field, id),
			Observer:  nodeObserver(&c.opts, id),
		})
		if reopened != nil {
			// Attached before Bootstrap so the bootstrap image is journaled.
			r.node.AttachJournal(walJournal{reopened})
		}
		if ownHead > bootSnap.Get(id) {
			bootSnap.Advance(id, ownHead)
		}
		r.node.Bootstrap(bootSnap, bootItems, minClock)
		if items := c.absorbed.Snapshot(); len(items) > 0 {
			r.node.AbsorbItems(items)
		}
	} else if reopened != nil {
		// RAM state survived and is at least as fresh as the disk image
		// (which may have lost its buffered tail to Abandon); a full-state
		// record squashes the difference so recovery stays complete.
		r.node.AttachJournal(walJournal{reopened})
		_ = reopened.AppendAdopt(r.node.Summary(), r.node.Store().Snapshot(), r.node.Clock())
	}
	if reopened != nil {
		// The journaled full-state record carries the identity's own write
		// head; it must be on disk BEFORE the replica is published — a
		// crash (or Kill) right after publication would otherwise leave a
		// wiped directory whose next disk recovery reissues timestamps
		// peers already saw. The fsync happens under r.mu, like the
		// group-commit durability point, so nothing can observe the
		// replica between publication and durability.
		if err := reopened.Sync(); err != nil {
			r.mu.Unlock()
			reopened.Close()
			return fmt.Errorf("runtime: replica %v durability: %w", id, err)
		}
		r.wal = reopened
	}
	r.ep = c.net.Attach(id)
	r.dead = false
	// A restarted incarnation starts with a clean bill of health.
	r.failCause.Store(nil)
	// Re-seed the applied watermark from the new incarnation's log before
	// the store is published: the watermark must never overstate what this
	// store holds (the old incarnation's coverage may exceed it).
	r.applied.reset(r.node.Log())
	// Re-publish the (possibly fresh) store to the lock-free read path only
	// once the replica is consistent again.
	r.store.Store(r.node.Store())
	r.mu.Unlock()
	r.spawn(ctx, &c.wg)
	// Leveled reads parked on this replica may already be satisfied by the
	// bootstrap coverage.
	c.signalFresh(id)
	return nil
}

// Serving reports whether replica id currently accepts client-plane
// operations — lock-free, one atomic load (the exact signal Read uses).
// Unlike Alive it is also true before Start: a constructed replica already
// serves reads of absorbed content.
func (c *Cluster) Serving(id NodeID) bool {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return false
	}
	return c.replicas[id].store.Load() != nil
}

// Alive reports whether replica id is currently running.
func (c *Cluster) Alive(id NodeID) bool {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return false
	}
	r := c.replicas[id]
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.dead && r.done != nil
}

// TruncateLogs aggressively truncates every live replica's write log to the
// most recent keep entries per origin, returning the total discarded. It
// exists so operators (and tests) can exercise the snapshot-recovery path.
func (c *Cluster) TruncateLogs(keep int) int {
	total := 0
	for _, r := range c.replicas {
		r.mu.Lock()
		if !r.dead {
			total += r.node.Log().TruncateKeepLast(keep)
		}
		r.mu.Unlock()
	}
	return total
}

// Stop shuts the cluster down and waits for every replica goroutine to
// exit. Safe to call more than once.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if !c.started || c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	cancel := c.cancel
	c.mu.Unlock()
	cancel()
	c.wg.Wait()
	// Drain every ack worker before touching the WALs: pending releases
	// complete (their covering syncs retire in the WAL sync stage, which is
	// still running), so no client is left parked and no ack is dropped.
	for _, r := range c.replicas {
		r.ackq.stop()
	}
	// Clean shutdown flushes and closes every live WAL (abandoned WALs of
	// killed replicas are left as the crash left them).
	for _, r := range c.replicas {
		r.mu.Lock()
		w := r.wal
		r.mu.Unlock()
		if w != nil {
			_ = w.Close()
		}
	}
	if c.net != nil {
		c.net.Close()
		return
	}
	// TCP-backed clusters own their endpoints directly.
	for _, r := range c.replicas {
		_ = r.ep.Close()
	}
}

// now returns seconds since cluster start — the time base fed to demand
// fields and node logic.
func (c *Cluster) now() float64 { return time.Since(c.start).Seconds() }

// Write injects a client write at the given replica and returns the entry.
//
// Concurrent writes to one replica group-commit: they park in the replica's
// write-combining queue and a leader folds the whole batch into the node
// under one lock acquisition, with one merged fast-offer fan-out for the
// batch (see groupcommit.go). A batch behaves exactly like the same writes
// issued back-to-back; only the locking and fan-out are amortised.
//
// Writes may be shed by the admission plane (bounded queue, CoDel-style
// sojourn controller, per-write deadline — see admission.go): a shed
// write returns an *OverloadError matching ErrOverload, always BEFORE the
// write reaches the node or the WAL, so it is visibly rejected and never
// partially applied.
func (c *Cluster) Write(id NodeID, key string, value []byte) (vclock.Timestamp, error) {
	rec, err := c.WriteReceipted(id, key, value)
	return rec.TS, err
}

// WriteReceipted is Write returning the full version receipt — timestamp
// plus the Lamport clock the LWW resolution orders by. Session clients fold
// the receipt into their token; invariant checkers (the chaos session
// oracle) compare receipts against later reads.
func (c *Cluster) WriteReceipted(id NodeID, key string, value []byte) (WriteReceipt, error) {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return WriteReceipt{}, fmt.Errorf("runtime: no replica %v", id)
	}
	r := c.replicas[id]
	now := time.Now()
	if r.adm.shouldShed(now.UnixNano()) {
		return WriteReceipt{}, r.shed(ShedSojourn)
	}
	if r.meter != nil {
		r.meter.Record(now)
	}
	req := writeReqPool.Get().(*writeReq)
	req.key, req.value = key, value
	req.ts, req.clock, req.err = vclock.Timestamp{}, 0, nil
	req.arrival = now.UnixNano()
	req.deadline = 0
	if d := r.adm.cfg.WriteDeadline; d > 0 {
		req.deadline = req.arrival + int64(d)
	}
	leader, ok := r.wq.enqueue(req, r.adm.cfg.MaxQueueDepth)
	if !ok {
		req.key, req.value = "", nil
		writeReqPool.Put(req)
		return WriteReceipt{}, r.shed(ShedQueueFull)
	}
	if leader {
		r.commitLoop(c)
	}
	<-req.done
	rec, err := WriteReceipt{TS: req.ts, Clock: req.clock}, req.err
	req.key, req.value = "", nil
	writeReqPool.Put(req)
	return rec, err
}

// Read serves a client read at a replica. Reads at a killed replica fail —
// a crashed server cannot serve — matching Write. The returned slice is a
// read-only view of replicated content (store immutability contract);
// callers that need a mutable buffer copy it.
//
// The read path never acquires the replica lock: the store pointer is
// published atomically (nil while the replica is dead), the demand meter is
// atomic, and the store itself is hash-striped, so concurrent reads scale
// with cores instead of serialising per replica.
func (c *Cluster) Read(id NodeID, key string) ([]byte, bool, error) {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return nil, false, fmt.Errorf("runtime: no replica %v", id)
	}
	r := c.replicas[id]
	st := r.store.Load()
	if st == nil {
		return nil, false, r.deadError()
	}
	if r.meter != nil {
		r.meter.Record(time.Now())
	}
	v, ok := st.Get(key)
	return v, ok, nil
}

// Covers reports whether replica id has the write ts.
func (c *Cluster) Covers(id NodeID, ts vclock.Timestamp) bool {
	r := c.replicas[id]
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node.Covers(ts)
}

// Stats returns a replica's protocol counters.
func (c *Cluster) Stats(id NodeID) node.Stats {
	r := c.replicas[id]
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.node.Stats()
}

// Digest returns a replica's store digest.
func (c *Cluster) Digest(id NodeID) uint64 {
	r := c.replicas[id]
	r.mu.Lock()
	st := r.node.Store()
	r.mu.Unlock()
	return st.Digest()
}

// Snapshot exports replica id's full store contents — the unit of
// content-level transfer between replica groups (shard handoff). On a
// durable replica the export waits for the WAL watermark to cover the
// image first: handed-off content must never include a write whose
// covering sync could still fail.
func (c *Cluster) Snapshot(id NodeID) ([]store.Item, error) {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return nil, fmt.Errorf("runtime: no replica %v", id)
	}
	r := c.replicas[id]
	r.mu.Lock()
	st := r.node.Store()
	w := r.wal
	var rec uint64
	if w != nil {
		rec = w.Records()
	}
	r.mu.Unlock()
	if w != nil {
		if err := w.WaitDurable(rec); err != nil {
			return nil, fmt.Errorf("runtime: replica %v snapshot durability: %w", id, err)
		}
	}
	return st.Snapshot(), nil
}

// ApplySnapshot merges a content-level store image into every live replica
// via LWW resolution, advancing each replica's Lamport clock past the
// imported writes. It is how a shard router hands keys to this cluster:
// items carry their original versions, so converged content (and store
// digests) survive the move bit-for-bit. The image is also retained so
// replicas dead now (or killed later) re-absorb it on Restart — absorbed
// content lives in no peer's write log, so anti-entropy alone could never
// recover it.
func (c *Cluster) ApplySnapshot(items []store.Item) {
	c.absorbed.ApplySnapshot(items)
	for _, r := range c.replicas {
		r.mu.Lock()
		if !r.dead {
			r.node.AbsorbItems(items)
			if r.wal != nil {
				// Handoff content exists in no write log anywhere, so the
				// journaled absorption record is its only durable copy —
				// sync it now rather than waiting for the next batch.
				_ = r.wal.Sync()
			}
		}
		r.mu.Unlock()
	}
}

// Converged reports whether all *live* replicas hold equal summaries.
// Killed replicas are excluded: they are not part of the replica set until
// restarted.
func (c *Cluster) Converged() bool {
	var ref *vclock.Summary
	for _, r := range c.replicas {
		r.mu.Lock()
		if r.dead {
			r.mu.Unlock()
			continue
		}
		if ref == nil {
			// One clone establishes the reference; every other replica
			// compares against it in place, so the convergence poll does not
			// copy a summary per replica.
			ref = r.node.Summary()
			r.mu.Unlock()
			continue
		}
		ord := r.node.CompareSummary(ref)
		r.mu.Unlock()
		if ord != vclock.Equal {
			return false
		}
	}
	return true
}

// WaitConverged polls until all replicas converge or ctx expires.
func (c *Cluster) WaitConverged(ctx context.Context) bool {
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		if c.Converged() {
			return true
		}
		select {
		case <-ctx.Done():
			return c.Converged()
		case <-ticker.C:
		}
	}
}

// Watch observes the propagation of one write across the cluster.
type Watch struct {
	ts    vclock.Timestamp
	start time.Time

	mu        sync.Mutex
	times     map[NodeID]time.Duration
	remaining int
	done      chan struct{}
}

// Watch starts observing the write ts. Replicas already covering it are
// recorded at elapsed 0.
func (c *Cluster) Watch(ts vclock.Timestamp) *Watch {
	w := &Watch{
		ts:        ts,
		start:     time.Now(),
		times:     make(map[NodeID]time.Duration, len(c.replicas)),
		remaining: len(c.replicas),
		done:      make(chan struct{}),
	}
	c.mu.Lock()
	c.watches = append(c.watches, w)
	c.watchCount.Add(1)
	c.mu.Unlock()
	for i := range c.replicas {
		c.checkWatches(NodeID(i))
	}
	return w
}

// Done is closed when every replica covers the watched write.
func (w *Watch) Done() <-chan struct{} { return w.done }

// Unwatch removes a watch that will not be waited on (e.g. a timed-out
// probe), so completed-coverage checks stop paying for it. Recorded times
// remain readable; unwatching an already-completed watch is a no-op.
func (c *Cluster) Unwatch(w *Watch) { c.removeWatch(w) }

// removeWatch prunes w from the active list (watch completed or abandoned)
// and keeps the atomic fast-path count in sync.
func (c *Cluster) removeWatch(w *Watch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cw := range c.watches {
		if cw == w {
			c.watches = append(c.watches[:i], c.watches[i+1:]...)
			c.watchCount.Add(-1)
			return
		}
	}
}

// TimeOf returns when replica id first covered the write (elapsed since
// Watch creation).
func (w *Watch) TimeOf(id NodeID) (time.Duration, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	d, ok := w.times[id]
	return d, ok
}

// Times returns a copy of all recorded coverage times.
func (w *Watch) Times() map[NodeID]time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[NodeID]time.Duration, len(w.times))
	for id, d := range w.times {
		out[id] = d
	}
	return out
}

func (w *Watch) record(id NodeID) (complete bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.times[id]; ok {
		return false
	}
	w.times[id] = time.Since(w.start)
	w.remaining--
	if w.remaining == 0 {
		close(w.done)
		return true
	}
	return false
}

// checkWatches records coverage of all active watches for replica id, and
// doubles as the freshness signal point for leveled reads parked on the
// replica (every caller has just advanced the replica's applied coverage).
// The zero-watch, zero-waiter case — every client write, almost always —
// is two atomic loads, touching neither Cluster.mu nor the replica lock.
// When watches exist, the replica lock is taken once for the whole set
// (not once per watch), and completed watches are pruned eagerly so the
// active list never accumulates finished entries.
func (c *Cluster) checkWatches(id NodeID) {
	c.signalFresh(id)
	if c.watchCount.Load() == 0 {
		return
	}
	c.mu.Lock()
	watches := append([]*Watch(nil), c.watches...)
	c.mu.Unlock()
	if len(watches) == 0 {
		return
	}
	r := c.replicas[id]
	covered := watches[:0] // in-place filter of the private copy
	r.mu.Lock()
	for _, w := range watches {
		if r.node.Covers(w.ts) {
			covered = append(covered, w)
		}
	}
	r.mu.Unlock()
	for _, w := range covered {
		if w.record(id) {
			c.removeWatch(w)
		}
	}
}

// replica is one live node: goroutine, endpoint, RNG, and the shared state
// machine guarded by mu (the run loop and external API both touch it).
//
// The client plane bypasses mu: Read goes through the atomically published
// store pointer, Write through the combining queue (whose leader is the only
// writer that takes mu, once per batch), and the demand meter is recorded
// without any lock. meter is written only during construction and never
// rewritten, so the lock-free paths may load it freely.
type replica struct {
	cluster *Cluster
	// id is the replica's identity — immutable after construction, so
	// lock-free paths (admission shed errors, health probes) may read it
	// without touching r.node, whose pointer swaps on restart.
	id    NodeID
	node  *node.Node
	ep    transport.Endpoint
	rng   *rand.Rand
	meter *demandMeter // nil unless WithMeasuredDemand
	// adm is the overload-admission state (bounded queue + CoDel-style
	// controller; see admission.go). All-atomic: consulted by the write
	// fast path and fed by the commit leader, lock-free on both sides.
	adm admission
	// failCause records why the replica fail-stopped (nil otherwise), so
	// dead-replica error paths and health probes can report the reason
	// without the replica lock. Set by failStop, cleared by restart.
	failCause atomic.Pointer[failStopInfo]
	// wal is the durable persistence plane (nil unless WithDurability).
	// Journaling happens through the node's journal hook under mu; Sync is
	// internally locked, so the commit leader and the maintenance ticker
	// may sync concurrently. Swapped on restart under mu.
	wal *wal.Log
	mu  sync.Mutex

	// store is the lock-free read path's view of the node's content store:
	// nil while the replica is dead, swapped on restart. The store itself is
	// concurrency-safe (hash-striped); the pointer indirection is only so
	// Kill/Restart stay correct without Read taking mu.
	store atomic.Pointer[store.Store]

	// applied is the replica's applied-coverage watermark: the log summary
	// as of the last mutation whose store apply completed. Leveled reads
	// probe it instead of the live log because the node advances the log
	// summary BEFORE applying entries to the store — probing the log
	// directly would let a session read observe coverage whose values the
	// store does not hold yet. Published under r.mu at the end of every
	// mutating critical section, re-seeded on restart (see consistency.go).
	applied appliedMark

	// wq collects concurrent client writes for group commit; opsScratch is
	// the leader's reusable staging buffer (only the leader touches it, and
	// leadership is exclusive).
	wq         writeQueue
	opsScratch []node.WriteOp

	// ackq is the pipelined commit protocol's ordered ack-release stage
	// (durable clusters only; see ackrelease.go). Its worker runs from
	// Start to Stop; outside that window commits sync inline.
	ackq ackQueue

	// Lifecycle, guarded by mu: cancel/done belong to the current
	// incarnation's goroutine; dead marks a killed replica.
	cancel context.CancelFunc
	done   chan struct{}
	dead   bool
}

// exportState captures a consistent (summary, store image) pair from a
// live replica — the bootstrap source for a peer's crash recovery. It
// reports ok=false for dead replicas, and for durable replicas whose
// captured image cannot be made durable: the image may hold own-origin
// writes whose covering sync is still in flight, and handing those to a
// peer before they are on disk is exactly the leak the pipelined commit
// protocol gates everywhere else.
func (r *replica) exportState() (*vclock.Summary, []store.Item, bool) {
	r.mu.Lock()
	if r.dead {
		r.mu.Unlock()
		return nil, nil, false
	}
	sum, items := r.node.Summary(), r.node.Store().Snapshot()
	w := r.wal
	var rec uint64
	if w != nil {
		rec = w.Records()
	}
	r.mu.Unlock()
	if w != nil && w.WaitDurable(rec) != nil {
		return nil, nil, false
	}
	return sum, items, true
}

// spawn launches (or relaunches) the replica goroutine.
func (r *replica) spawn(parent context.Context, wg *sync.WaitGroup) {
	ctx, cancel := context.WithCancel(parent)
	done := make(chan struct{})
	r.mu.Lock()
	r.cancel = cancel
	r.done = done
	r.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		r.run(ctx)
	}()
}

func (r *replica) run(ctx context.Context) {
	c := r.cluster
	sessionTimer := time.NewTimer(r.expInterval())
	defer sessionTimer.Stop()
	advertTicker := time.NewTicker(c.opts.advertInterval)
	defer advertTicker.Stop()
	// Durable replicas run a variant loop with a WAL-maintenance ticker.
	// The split exists because selectgo scans every case on every inbound
	// envelope — the protocol hot path — and non-durable replicas must not
	// pay for a fifth case they can never take.
	if r.wal != nil {
		r.runDurable(ctx, sessionTimer, advertTicker)
		return
	}

	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-r.ep.Recv():
			if !ok {
				return
			}
			r.handle(env)
		case <-sessionTimer.C:
			r.session()
			sessionTimer.Reset(r.expInterval())
		case <-advertTicker.C:
			r.advertise()
		}
	}
}

// runDurable is the run loop of a durable replica: identical to run plus
// the periodic WAL maintenance tick (buffer sync, snapshot rollover).
func (r *replica) runDurable(ctx context.Context, sessionTimer *time.Timer, advertTicker *time.Ticker) {
	maint := time.NewTicker(walMaintenanceInterval)
	defer maint.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-r.ep.Recv():
			if !ok {
				return
			}
			r.handle(env)
		case <-sessionTimer.C:
			r.session()
			sessionTimer.Reset(r.expInterval())
		case <-advertTicker.C:
			r.advertise()
		case <-maint.C:
			r.walMaintain()
		}
	}
}

func (r *replica) expInterval() time.Duration {
	mean := float64(r.cluster.opts.sessionMean)
	r.mu.Lock()
	v := r.rng.ExpFloat64()
	r.mu.Unlock()
	d := time.Duration(v * mean)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// handle processes one inbound envelope per replica-lock acquisition. (A
// burst-draining variant that handled many queued envelopes under one lock
// was measured and rejected: it grows the run loop's lock hold time, which
// directly starves the group-commit leader contending for the same lock.)
func (r *replica) handle(env protocol.Envelope) {
	c := r.cluster
	r.mu.Lock()
	out := r.node.HandleMessage(c.now(), env)
	id := r.node.ID()
	// Every store apply the message triggered has completed; advance the
	// applied watermark before the lock drops so leveled reads can trust it.
	r.applied.publish(r.node.Log())
	var w *wal.Log
	var rec uint64
	if r.wal != nil && carriesEntries(out) {
		// Egress gate of the pipelined commit protocol: entry-carrying
		// envelopes must not escape before every record journaled so far is
		// on disk — with the inline-sync protocol the batch fsync under this
		// lock guaranteed that; with the pipeline, recently committed
		// batches may still be in flight. The watermark is captured under
		// the lock the entries were read under.
		w, rec = r.wal, r.wal.Records()
	}
	r.mu.Unlock()
	if w != nil {
		if err := w.WaitDurable(rec); err != nil {
			// The records behind these entries can never reach disk; the
			// ack worker (or maintenance tick) is fail-stopping the replica.
			// Dropping the envelopes keeps the unsyncable entries off the
			// network — the exact leak fail-stop exists to prevent.
			c.opts.tracer.Warnf(id, "dropped %d envelopes (durability gate): %v", len(out), err)
			return
		}
	}
	c.opts.tracer.Debugf(id, "handled %v (+%d out)", env, len(out))
	c.checkWatches(id)
	r.sendAll(out)
}

func (r *replica) session() {
	c := r.cluster
	r.mu.Lock()
	out := r.node.StartSession(c.now(), r.rng)
	r.mu.Unlock()
	if len(out) > 0 {
		c.opts.tracer.Debugf(r.node.ID(), "session with %v", out[0].To)
	}
	r.sendAll(out)
}

func (r *replica) advertise() {
	c := r.cluster
	r.mu.Lock()
	out := r.node.AdvertiseDemand(c.now())
	r.mu.Unlock()
	r.sendAll(out)
}

// sendAll transmits envelopes, marking unreachable peers in the demand
// table (the availability signal §4 calls "an added advantage"). It runs on
// the replica goroutine, where r.ep is stable.
func (r *replica) sendAll(envs []protocol.Envelope) { r.sendAllVia(r.ep, envs) }

// sendAllVia transmits envelopes through a specific endpoint — the commit
// leader captures the endpoint under the replica lock and sends outside it,
// so a concurrent restart swapping r.ep cannot race the send.
func (r *replica) sendAllVia(ep transport.Endpoint, envs []protocol.Envelope) {
	c := r.cluster
	for _, env := range envs {
		if err := ep.Send(env); err != nil {
			r.mu.Lock()
			r.node.Table().MarkUnreachable(env.To, c.now())
			r.mu.Unlock()
			c.opts.tracer.Warnf(env.From, "send to %v failed: %v", env.To, err)
		}
	}
}
