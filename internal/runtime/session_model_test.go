package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/store"
	"repro/internal/topology"
)

// This file is the session-guarantee property test: randomized
// multi-session histories against a live cluster, checked op-by-op against
// a reference model of what each session is allowed to observe.
//
// The model is the session-guarantee floor: per session and key, the
// version order (Lamport clock major, timestamp tiebreak — the store's LWW
// order) of the freshest version the session has written or read. A
// session-level read may serve any version at or above the floor, and must
// serve *something* for a key the session wrote (read-your-writes); a read
// below the floor, or a miss after a write, is a violation.
//
// Histories are seeded (deterministic op sequences; the interleaving with
// replication is live, but the assertions are timing-independent) and
// shrink on failure: the harness re-runs the same seed with a binary
// search over the op-count prefix and reports the minimal prefix that
// still violates.

// sessionModelOps is the op-sequence length of one full property run.
const sessionModelOps = 160

// modelVersion orders observed versions the way the store resolves LWW.
type modelVersion struct {
	clock uint64
	node  NodeID
	seq   uint64
}

func (v modelVersion) less(o modelVersion) bool {
	if v.clock != o.clock {
		return v.clock < o.clock
	}
	if v.node != o.node {
		return v.node < o.node
	}
	return v.seq < o.seq
}

// sessionFloor is one session's reference state for one key.
type sessionFloor struct {
	ver   modelVersion
	wrote bool // the session wrote the key: reads must find it
}

// runSessionHistory replays one seeded history of nops operations across
// nsessions concurrent-capable sessions on a live cluster, returning a
// description of the first session-guarantee violation ("" when clean).
func runSessionHistory(t *testing.T, seed int64, nops int) string {
	t.Helper()
	const nodes = 5
	const keys = 8
	const nsessions = 3
	g := topology.Ring(nodes)
	field := demand.Uniform(nodes, 1, 10, rand.New(rand.NewSource(seed)))
	c := startCluster(t, g, field, WithSeed(seed), WithSessionInterval(5*time.Millisecond))

	rng := rand.New(rand.NewSource(seed))
	sessions := make([]*Session, nsessions)
	floors := make([]map[string]*sessionFloor, nsessions)
	for i := range sessions {
		sessions[i] = c.NewSession()
		sessions[i].Deadline = 10 * time.Second
		floors[i] = make(map[string]*sessionFloor)
	}
	floor := func(si int, key string) *sessionFloor {
		f := floors[si][key]
		if f == nil {
			f = &sessionFloor{}
			floors[si][key] = f
		}
		return f
	}

	for op := 0; op < nops; op++ {
		si := rng.Intn(nsessions)
		s := sessions[si]
		id := NodeID(rng.Intn(nodes))
		key := fmt.Sprintf("k%d", rng.Intn(keys))
		if rng.Intn(100) < 40 { // write
			rec, err := s.Write(id, key, []byte(fmt.Sprintf("s%d-op%d", si, op)))
			if err != nil {
				return fmt.Sprintf("op %d: session %d write %s at %v failed: %v", op, si, key, id, err)
			}
			f := floor(si, key)
			wv := modelVersion{clock: rec.Clock, node: rec.TS.Node, seq: rec.TS.Seq}
			if f.ver.less(wv) {
				f.ver = wv
			}
			f.wrote = true
			continue
		}
		v, ok, err := s.Read(id, key)
		if err != nil {
			if errors.Is(err, ErrNotFresh) {
				// A healthy cluster with a 10s deadline should never shed;
				// treat it as a failure so stalls surface.
				return fmt.Sprintf("op %d: session %d read %s at %v shed not-fresh", op, si, key, id)
			}
			return fmt.Sprintf("op %d: session %d read %s at %v failed: %v", op, si, key, id, err)
		}
		f := floor(si, key)
		if !ok {
			if f.wrote {
				return fmt.Sprintf("op %d: session %d read %s at %v missed own write (read-your-writes violation)", op, si, key, id)
			}
			continue
		}
		rv := modelVersion{clock: v.Clock, node: v.TS.Node, seq: v.TS.Seq}
		if rv.less(f.ver) {
			return fmt.Sprintf("op %d: session %d read %s at %v regressed: saw (clock %d, %v) below floor (clock %d, n%d:%d) (monotonic-reads violation)",
				op, si, key, id, v.Clock, v.TS, f.ver.clock, f.ver.node, f.ver.seq)
		}
		if f.ver.less(rv) {
			f.ver = rv
		}
	}
	return ""
}

// shrinkSessionHistory binary-searches the smallest op-count prefix of a
// failing seed that still violates, so the failure report is minimal.
func shrinkSessionHistory(t *testing.T, seed int64, nops int) (int, string) {
	t.Helper()
	lo, hi := 1, nops // invariant: hi fails
	msg := ""
	for lo < hi {
		mid := (lo + hi) / 2
		if m := runSessionHistory(t, seed, mid); m != "" {
			hi, msg = mid, m
		} else {
			lo = mid + 1
		}
	}
	if msg == "" {
		msg = runSessionHistory(t, seed, hi)
	}
	return hi, msg
}

func TestSessionHistoryProperty(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			if msg := runSessionHistory(t, seed, sessionModelOps); msg != "" {
				n, minMsg := shrinkSessionHistory(t, seed, sessionModelOps)
				t.Fatalf("seed %d violates session guarantees (minimal prefix %d ops): %s", seed, n, minMsg)
			}
		})
	}
}

// TestSessionHistoryDetectsViolation sanity-checks the model itself: a
// deliberately broken client that drops its token between ops must trip
// the monotonic floor (otherwise the property test proves nothing).
func TestSessionHistoryDetectsViolation(t *testing.T) {
	// The floor logic is exercised directly: a read below an established
	// floor must compare as a regression.
	hi := modelVersion{clock: 9, node: 1, seq: 4}
	lo := modelVersion{clock: 3, node: 0, seq: 7}
	if !lo.less(hi) || hi.less(lo) {
		t.Fatal("model version order broken: clock must dominate")
	}
	tie1 := modelVersion{clock: 5, node: 2, seq: 1}
	tie2 := modelVersion{clock: 5, node: 2, seq: 3}
	if !tie1.less(tie2) {
		t.Fatal("model version order broken: timestamp tiebreak")
	}
	_ = store.Versioned{} // the model mirrors this type's LWW order
}
