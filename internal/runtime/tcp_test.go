package runtime

import (
	"context"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/topology"
)

func TestTCPClusterConverges(t *testing.T) {
	g := topology.Ring(5)
	field := demand.Static{1, 2, 3, 4, 5}
	c, err := NewTCP(g, field, "127.0.0.1",
		WithSeed(31),
		WithSessionInterval(25*time.Millisecond),
		WithAdvertInterval(10*time.Millisecond))
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ts, err := c.Write(0, "over-tcp", []byte("real sockets"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("TCP cluster did not converge")
	}
	for id := NodeID(0); id < 5; id++ {
		if !c.Covers(id, ts) {
			t.Errorf("replica %v missing the write over TCP", id)
		}
		v, ok, err := c.Read(id, "over-tcp")
		if err != nil || !ok || string(v) != "real sockets" {
			t.Errorf("Read(%v) = (%q, %t, %v)", id, v, ok, err)
		}
	}
}

func TestTCPClusterStopClosesEndpoints(t *testing.T) {
	g := topology.Line(3)
	c, err := NewTCP(g, demand.Static{1, 1, 1}, "127.0.0.1", WithSeed(37))
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Stop() // idempotent for TCP clusters too
}
