package runtime

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// This file implements the client-plane overload policy: a bounded
// write-combining queue plus a CoDel-style admission controller.
//
// Without a policy, a flash crowd (or a slow disk backing the WAL) turns
// the per-replica combining queue into unbounded growth: every parked
// write pins memory, sojourn time climbs without limit, and the replica
// eventually serves nobody. The controller keeps the replica useful under
// overload by shedding NEW writes instead — a shed write is rejected with
// a typed ErrOverload before it reaches the node or the WAL, so it is
// visibly failed (never silently lost) and the durability invariants are
// untouched: only acknowledged writes ever enter the write log.
//
// The controller is CoDel-shaped (Nichols & Jacobson): it watches
// sojourn time — how long the oldest request of each acked batch waited
// from arrival to ack, queue wait plus commit plus the covering fsync —
// rather than queue length, because length conflates a fast burst the
// group commit absorbs in one batch with a standing backlog the disk
// cannot drain. (The pipelined commit drains the combining queue at
// memory speed, so under overload the backlog stands between commit and
// durable ack; the ack point is the only place the real delay is
// visible.) Sojourn continuously above Target for a full
// Interval flips the replica into an overloaded state in which arrivals
// are shed on a schedule that tightens with each shed
// (interval/sqrt(drops), the CoDel control law); one batch observed back
// under Target exits the state. A hard queue bound backstops the
// controller: past MaxQueueDepth parked writes, arrivals shed
// unconditionally.
//
// All controller state is atomic. The accept fast path — the only path
// unshedded traffic ever sees — is two atomic loads and zero
// allocations; the shed paths allocate only the error they return.

// ShedReason values carried by OverloadError.Reason, one per admission
// decision point.
const (
	// ShedQueueFull: the combining queue hit MaxQueueDepth.
	ShedQueueFull = "queue-full"
	// ShedSojourn: the CoDel controller is shedding because queue sojourn
	// stayed above target.
	ShedSojourn = "sojourn"
	// ShedDeadline: the write's deadline expired while it was parked.
	ShedDeadline = "deadline"
)

// ErrOverload is the sentinel all admission-control rejections match:
// errors.Is(err, ErrOverload) reports whether a write was shed (and is
// worth retrying after a backoff) as opposed to failed (replica down).
var ErrOverload = errors.New("runtime: replica overloaded")

// OverloadError is the typed rejection a shed write receives. It matches
// ErrOverload under errors.Is and carries a retry-after hint derived from
// the queue's recently observed sojourn time, so clients can back off
// proportionally to the actual backlog instead of guessing.
type OverloadError struct {
	// Replica is the replica that shed the write.
	Replica NodeID
	// Reason is the admission decision: ShedQueueFull, ShedSojourn or
	// ShedDeadline.
	Reason string
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
}

// Error renders the rejection.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("runtime: replica %v overloaded (%s, retry after %v)",
		e.Replica, e.Reason, e.RetryAfter)
}

// Is matches ErrOverload, so errors.Is(err, ErrOverload) holds for every
// shed write.
func (e *OverloadError) Is(target error) bool { return target == ErrOverload }

// RetryAfterHint returns the server's backoff hint. It exists as a method
// (not just a field) so client-side packages can detect overload errors
// through a local one-method interface with errors.As, without importing
// this package.
func (e *OverloadError) RetryAfterHint() time.Duration { return e.RetryAfter }

// AdmissionConfig bounds a replica's write-combining queue and tunes the
// CoDel-style admission controller. The zero value (normalised by
// WithAdmission) enables the controller with its defaults; set Target
// negative for a bounded queue with the controller off.
type AdmissionConfig struct {
	// MaxQueueDepth is the hard bound on writes parked in the combining
	// queue; arrivals past it shed unconditionally. <= 0 selects 4096.
	MaxQueueDepth int
	// Target is the acceptable write sojourn time — arrival to durable
	// ack. Sojourn continuously above it for Interval engages shedding.
	// 0 selects 5ms; negative disables the sojourn controller entirely
	// (bound and deadline still apply).
	Target time.Duration
	// Interval is the controller's observation window: how long sojourn
	// must stay above Target before shedding starts, and the base period
	// of the shed schedule once it does. <= 0 selects 100ms.
	Interval time.Duration
	// WriteDeadline, when positive, stamps every write with
	// arrival+WriteDeadline; writes still parked past it are shed by the
	// commit leader before they reach the node or the WAL.
	WriteDeadline time.Duration
}

// normalized fills defaults and canonicalises "off" values.
func (cfg AdmissionConfig) normalized() AdmissionConfig {
	if cfg.MaxQueueDepth <= 0 {
		cfg.MaxQueueDepth = 4096
	}
	if cfg.Target == 0 {
		cfg.Target = 5 * time.Millisecond
	}
	if cfg.Target < 0 {
		cfg.Target = 0 // controller off
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.WriteDeadline < 0 {
		cfg.WriteDeadline = 0
	}
	return cfg
}

// WithAdmission enables the overload-admission plane with cfg (normalised
// per the field docs). Clusters built without this option still get a
// bounded combining queue (depth 4096) but no sojourn controller and no
// deadlines — closed-loop callers cannot outrun the bound, so the default
// behaviour of existing deployments is unchanged.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(o *options) { o.admission = cfg.normalized() }
}

// admission is one replica's controller state. Everything is atomic: the
// write path consults it lock-free before touching the queue, and the
// commit leader feeds observations back without extending its lock hold.
type admission struct {
	cfg AdmissionConfig

	// overloaded is the controller state: while set, arrivals shed on the
	// drop schedule below. Read by the write fast path and by the shard
	// router's health probe.
	overloaded atomic.Bool
	// firstAbove is when sojourn was first observed above target
	// (UnixNano), 0 while below. Sojourn must stay above target from
	// firstAbove through a full interval to engage shedding.
	firstAbove atomic.Int64
	// dropNext schedules the next shed (UnixNano) while overloaded;
	// dropCount escalates the schedule (interval/sqrt(count)).
	dropNext  atomic.Int64
	dropCount atomic.Int64
	// lastSojourn is the most recent observed batch sojourn in
	// nanoseconds — the basis of the retry-after hint.
	lastSojourn atomic.Int64

	// Shed totals by reason, kept independently of the observability
	// plane so health probes and tests see them on bare clusters.
	shedQueueFull atomic.Uint64
	shedSojourn   atomic.Uint64
	shedDeadline  atomic.Uint64
}

// shouldShed is the pre-enqueue admission decision for one arrival at
// time now (UnixNano). The not-overloaded fast path is one atomic load.
// While overloaded it sheds per the CoDel control law: one write at
// dropNext, then again interval/sqrt(drops) later, tightening as the
// overload persists. Concurrent arrivals racing one scheduled drop may
// shed more than one write; under a standing overload that only hastens
// relief, so the race is left benign rather than paid for with a lock.
func (a *admission) shouldShed(now int64) bool {
	if !a.overloaded.Load() {
		return false
	}
	next := a.dropNext.Load()
	if now < next {
		return false
	}
	n := a.dropCount.Add(1)
	a.dropNext.CompareAndSwap(next, now+int64(float64(a.cfg.Interval)/math.Sqrt(float64(n))))
	return true
}

// observe feeds one batch's sojourn (the oldest request's arrival-to-ack
// delay, measured at the ack point) into the controller. A single batch
// back under target exits the overloaded state: group commit acks in
// large batches, so one healthy release is strong evidence the standing
// backlog is gone.
func (a *admission) observe(now int64, sojourn time.Duration) {
	a.lastSojourn.Store(int64(sojourn))
	if a.cfg.Target <= 0 {
		return
	}
	if sojourn < a.cfg.Target {
		a.firstAbove.Store(0)
		if a.overloaded.Load() {
			a.overloaded.Store(false)
			a.dropCount.Store(0)
		}
		return
	}
	first := a.firstAbove.Load()
	if first == 0 {
		a.firstAbove.CompareAndSwap(0, now)
		return
	}
	if now-first >= int64(a.cfg.Interval) && !a.overloaded.Load() {
		a.dropCount.Store(1)
		a.dropNext.Store(now)
		a.overloaded.Store(true)
	}
}

// retryAfter derives the backoff hint from the last observed sojourn,
// clamped to [1ms, 1s]: the backlog's own drain time is the best
// available estimate of when capacity returns.
func (a *admission) retryAfter() time.Duration {
	d := time.Duration(a.lastSojourn.Load())
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// shedTotal sums shed writes across reasons.
func (a *admission) shedTotal() uint64 {
	return a.shedQueueFull.Load() + a.shedSojourn.Load() + a.shedDeadline.Load()
}

// shed records one shed write (reason counters plus the observability
// plane's counters when attached) and builds the client's rejection.
func (r *replica) shed(reason string) *OverloadError {
	a := &r.adm
	co := r.cluster.opts.obs
	switch reason {
	case ShedQueueFull:
		a.shedQueueFull.Add(1)
		if co != nil {
			co.ShedQueueFull.Inc()
		}
	case ShedSojourn:
		a.shedSojourn.Add(1)
		if co != nil {
			co.ShedSojourn.Inc()
		}
	case ShedDeadline:
		a.shedDeadline.Add(1)
		if co != nil {
			co.ShedDeadline.Inc()
		}
	}
	return &OverloadError{Replica: r.id, Reason: reason, RetryAfter: a.retryAfter()}
}

// FailStopError reports a client operation rejected because the replica
// fail-stopped: its WAL could no longer persist writes. Reason buckets
// the cause the same way the fail-stop metric does — "disk-full" (an
// operator can free space and restart) versus "io-error" (the disk is
// dying). Either way the replica is gone until restarted, so clients
// should reroute rather than retry — the opposite of an ErrOverload shed.
type FailStopError struct {
	// Replica is the fail-stopped replica.
	Replica NodeID
	// Reason is "disk-full" or "io-error".
	Reason string
	// Cause is the WAL error that forced the stop.
	Cause error
}

// Error renders the rejection.
func (e *FailStopError) Error() string {
	return fmt.Sprintf("runtime: replica %v fail-stopped (%s): %v", e.Replica, e.Reason, e.Cause)
}

// Unwrap exposes the WAL error, so errors.Is can still match the
// underlying cause (e.g. syscall.ENOSPC).
func (e *FailStopError) Unwrap() error { return e.Cause }

// failStopInfo is the lock-free record of why a replica fail-stopped,
// published by failStop and read by the dead-replica error paths and
// health probes without the replica lock.
type failStopInfo struct {
	reason string
	cause  error
}

// deadError describes why the replica no longer accepts client
// operations: the fail-stop cause when there is one, a plain down error
// after an administrative Kill.
func (r *replica) deadError() error {
	if fc := r.failCause.Load(); fc != nil {
		return &FailStopError{Replica: r.id, Reason: fc.reason, Cause: fc.cause}
	}
	return fmt.Errorf("runtime: replica %v is down", r.id)
}

// ReplicaHealth is a snapshot of one replica's client-plane health — the
// signal the shard router uses to route away from saturated or dead
// replicas. Every field is captured without the replica lock (the queue
// depth takes the queue mutex briefly, as the metrics poll does).
type ReplicaHealth struct {
	// Serving reports whether the replica accepts client operations.
	Serving bool
	// Overloaded reports whether the admission controller is currently
	// shedding.
	Overloaded bool
	// QueueDepth is the number of parked client writes.
	QueueDepth int
	// LastSojourn is the arrival-to-ack sojourn of the most recently
	// acked batch's oldest write.
	LastSojourn time.Duration
	// Shed is the total writes shed since construction, all reasons.
	Shed uint64
	// FailReason is the fail-stop bucket ("disk-full", "io-error") when
	// the replica fail-stopped, "" otherwise.
	FailReason string
}

// Overloaded reports whether replica id's admission controller is
// currently shedding — one atomic load, safe on any client path.
func (c *Cluster) Overloaded(id NodeID) bool {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return false
	}
	return c.replicas[id].adm.overloaded.Load()
}

// Health snapshots replica id's client-plane health.
func (c *Cluster) Health(id NodeID) ReplicaHealth {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return ReplicaHealth{}
	}
	r := c.replicas[id]
	h := ReplicaHealth{
		Serving:     r.store.Load() != nil,
		Overloaded:  r.adm.overloaded.Load(),
		QueueDepth:  r.wq.depth(),
		LastSojourn: time.Duration(r.adm.lastSojourn.Load()),
		Shed:        r.adm.shedTotal(),
	}
	if fc := r.failCause.Load(); fc != nil {
		h.FailReason = fc.reason
	}
	return h
}
