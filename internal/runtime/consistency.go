package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/wlog"
)

// This file implements the tunable consistency plane: per-op read levels
// on top of the eventual protocol, keyed by session tokens that carry
// summary-vector watermarks.
//
// A Token records, as a vclock.Summary, every write position the session
// has acknowledged (its own writes) or observed (its reads). Any replica
// can then serve the session's guarantees by waiting until its APPLIED
// coverage dominates the token:
//
//   - LevelSession (read-your-writes + monotonic reads): the replica must
//     cover the token exactly (lag 0); after the read, the replica's
//     coverage is folded back into the token so later reads — at any
//     replica — can never observe an older state.
//   - LevelBounded: the replica may lag the token by at most MaxLag writes
//     — the summary-distance staleness gate. Bounded reads do not fold
//     coverage back, so the token keeps tracking only what the session
//     actually acknowledged/observed.
//   - LevelStrong: the read first pins the freshest version of the key
//     across all live replicas (the LWW winner), waits until the serving
//     replica covers it, then reads — a converged read of that key as of
//     the call.
//
// Waits are deadline-bounded: a replica that cannot catch up in time sheds
// the read with a typed *NotFreshError matching ErrNotFresh and carrying a
// retry-after hint, the same structural shape as the admission plane's
// OverloadError, so client retry loops handle both identically.
//
// The covered fast path takes no lock at all and allocates nothing: one
// atomic store-pointer load, one atomic load of the replica's immutable
// applied-watermark snapshot (a pointer compare against the token's cache
// in the steady state, one summary pass plus token merge when coverage
// advanced), and a striped store read. Wait queues park OFF this path
// behind an atomic count, exactly like propagation watches, so plain
// eventual reads are untouched.

// Level selects the consistency guarantee of one leveled read.
type Level int

// The consistency levels a leveled read can request, weakest to
// strongest; NumLevels sizes per-level arrays.
const (
	// LevelEventual serves whatever the replica has — the plain read path
	// with a version receipt.
	LevelEventual Level = iota
	// LevelSession guarantees read-your-writes and monotonic reads with
	// respect to the supplied session token, waiting for coverage if the
	// replica lags it.
	LevelSession
	// LevelBounded serves the read only when the replica lags the token's
	// known head by at most MaxLag writes (summary distance).
	LevelBounded
	// LevelStrong serves a converged read of the touched key: the freshest
	// version acknowledged anywhere at call time is pinned, waited for,
	// then read. A strong read carrying a session token additionally
	// honors the token (strong subsumes session).
	LevelStrong
	// NumLevels is the number of consistency levels (for per-level arrays).
	NumLevels = int(LevelStrong) + 1
)

// String names the level the way flags and metrics spell it.
func (l Level) String() string {
	switch l {
	case LevelEventual:
		return "eventual"
	case LevelSession:
		return "session"
	case LevelBounded:
		return "bounded"
	case LevelStrong:
		return "strong"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel parses a level name as spelled by String (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "eventual":
		return LevelEventual, nil
	case "session":
		return LevelSession, nil
	case "bounded":
		return LevelBounded, nil
	case "strong":
		return LevelStrong, nil
	}
	return 0, fmt.Errorf("runtime: unknown consistency level %q", s)
}

// Token is a session's freshness watermark: a summary vector recording
// every write position the session has acknowledged or observed. The zero
// value is an empty token (covered by every replica). Tokens are NOT safe
// for concurrent use — a session is a single logical client; concurrent
// clients each carry their own.
type Token struct {
	sum vclock.Summary
	// covered caches the applied-watermark snapshot the token last merged
	// to (token == snapshot exactly), so the steady-state probe of a
	// session pinned to one replica is a single pointer compare. Snapshots
	// are immutable and any token growth clears the cache, so a hit can
	// never claim stale coverage.
	covered *vclock.Summary
}

// ObserveWrite folds an acknowledged write's position into the token.
func (t *Token) ObserveWrite(ts vclock.Timestamp) {
	if t.sum.Covers(ts) {
		return
	}
	t.covered = nil
	t.sum.Advance(ts.Node, ts.Seq)
}

// Covers reports whether the token already records the write ts.
func (t *Token) Covers(ts vclock.Timestamp) bool { return t.sum.Covers(ts) }

// Positions returns a copy of the token's watermark vector.
func (t *Token) Positions() *vclock.Summary { return t.sum.Clone() }

// Reset empties the token in place.
func (t *Token) Reset() { *t = Token{} }

// Clone returns an independent copy of the token.
func (t *Token) Clone() *Token {
	c := &Token{}
	c.sum.Merge(&t.sum)
	return c
}

// Equal reports whether two tokens record identical watermarks.
func (t *Token) Equal(other *Token) bool {
	return t.sum.Compare(&other.sum) == vclock.Equal
}

// String renders the token's watermarks.
func (t *Token) String() string { return t.sum.String() }

// tokenVersion tags the token wire encoding. Encoding: the version byte,
// a uvarint origin count, then per origin a uvarint (node, seq) pair in
// strictly ascending node order with seq > 0 — the canonical form
// UnmarshalBinary enforces, so encode/decode round-trips bit-exactly.
const tokenVersion = 1

// maxTokenOrigin bounds the node ids a decoded token may carry, so a
// hostile encoding cannot make the dense watermark vector allocate
// unboundedly.
const maxTokenOrigin = 1 << 20

// AppendBinary appends the token's wire encoding to dst and returns the
// extended slice.
func (t *Token) AppendBinary(dst []byte) []byte {
	dst = append(dst, tokenVersion)
	dst = binary.AppendUvarint(dst, uint64(t.sum.Len()))
	t.sum.ForEach(func(node vclock.NodeID, seq uint64) {
		dst = binary.AppendUvarint(dst, uint64(node))
		dst = binary.AppendUvarint(dst, seq)
	})
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Token) MarshalBinary() ([]byte, error) { return t.AppendBinary(nil), nil }

// readUvarint decodes one minimally-encoded uvarint from data, rejecting
// the redundant encodings binary.Uvarint accepts (so every token value has
// exactly one wire form and encodings compare byte-wise).
func readUvarint(data []byte) (v uint64, n int, err error) {
	v, n = binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, errors.New("runtime: truncated token varint")
	}
	if n > 1 && data[n-1] == 0 {
		return 0, 0, errors.New("runtime: non-minimal token varint")
	}
	return v, n, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// token's contents. It rejects anything but the canonical form AppendBinary
// produces: unknown versions, truncated or trailing bytes, non-minimal
// varints, out-of-order or duplicate origins, zero sequence numbers, and
// origins past maxTokenOrigin.
func (t *Token) UnmarshalBinary(data []byte) error {
	if len(data) == 0 {
		return errors.New("runtime: empty token encoding")
	}
	if data[0] != tokenVersion {
		return fmt.Errorf("runtime: unknown token version %d", data[0])
	}
	rest := data[1:]
	count, n, err := readUvarint(rest)
	if err != nil {
		return err
	}
	rest = rest[n:]
	if count > maxTokenOrigin {
		return fmt.Errorf("runtime: token origin count %d too large", count)
	}
	var tok Token
	prev := int64(-1)
	for i := uint64(0); i < count; i++ {
		node, n, err := readUvarint(rest)
		if err != nil {
			return err
		}
		rest = rest[n:]
		seq, n, err := readUvarint(rest)
		if err != nil {
			return err
		}
		rest = rest[n:]
		if node >= maxTokenOrigin {
			return fmt.Errorf("runtime: token origin %d too large", node)
		}
		if int64(node) <= prev {
			return fmt.Errorf("runtime: token origins out of order at %d", node)
		}
		if seq == 0 {
			return fmt.Errorf("runtime: token origin %d has zero sequence", node)
		}
		prev = int64(node)
		tok.sum.Advance(vclock.NodeID(node), seq)
	}
	if len(rest) != 0 {
		return fmt.Errorf("runtime: %d trailing bytes after token", len(rest))
	}
	*t = tok
	return nil
}

// ErrNotFresh is the sentinel every freshness-deadline rejection matches:
// errors.Is(err, ErrNotFresh) reports that the replica could not reach the
// read's required coverage in time (worth retrying, possibly elsewhere) as
// opposed to being down.
var ErrNotFresh = errors.New("runtime: replica not fresh enough")

// NotFreshError is the typed rejection a leveled read receives when its
// freshness wait deadlines. It matches ErrNotFresh under errors.Is and
// carries a retry-after hint derived from the anti-entropy cadence — the
// same structural shape as the admission plane's OverloadError, so client
// retry loops (workload.Run among them) handle both through one interface.
type NotFreshError struct {
	// Replica is the replica that could not serve the read.
	Replica NodeID
	// Level is the consistency level the read demanded.
	Level Level
	// Lag is how many writes the read's target covers that the replica had
	// not applied when the deadline lapsed.
	Lag uint64
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
}

// Error renders the rejection.
func (e *NotFreshError) Error() string {
	return fmt.Sprintf("runtime: replica %v not fresh enough for %v read (lag %d, retry after %v)",
		e.Replica, e.Level, e.Lag, e.RetryAfter)
}

// Is matches ErrNotFresh, so errors.Is(err, ErrNotFresh) holds for every
// freshness shed.
func (e *NotFreshError) Is(target error) bool { return target == ErrNotFresh }

// RetryAfterHint returns the server's backoff hint; the method (shared with
// OverloadError) lets client packages detect retryable sheds through a
// local one-method interface without importing this package.
func (e *NotFreshError) RetryAfterHint() time.Duration { return e.RetryAfter }

// DefaultFreshWait bounds a leveled read's freshness wait when
// LeveledRead.Deadline is zero. It is far past the propagation latency of
// a healthy cluster; reads that hit it are stalled by a partition, an
// overload, or a dead origin — exactly what ErrNotFresh reports.
const DefaultFreshWait = 2 * time.Second

// LeveledRead carries one read's consistency parameters. Reuse one value
// across reads (it is plain data) to keep the covered fast path free of
// per-call allocation.
type LeveledRead struct {
	// Level is the consistency guarantee to enforce.
	Level Level
	// Token is the session's watermark. nil degenerates session and
	// bounded reads to eventual (there is nothing to be consistent with).
	Token *Token
	// MaxLag is LevelBounded's staleness bound: the maximum number of
	// writes (summary distance) the replica may lag the token.
	MaxLag uint64
	// Deadline bounds the freshness wait; 0 selects DefaultFreshWait.
	Deadline time.Duration
}

// WriteReceipt is an acknowledged write's full version: the timestamp that
// names it in summary vectors and the Lamport clock the LWW resolution
// orders by.
type WriteReceipt struct {
	// TS is the write's (origin, sequence) position.
	TS vclock.Timestamp
	// Clock is the write's Lamport clock.
	Clock uint64
}

// WriteSession performs a client write and folds the acknowledged position
// into the session token, so subsequent session reads anywhere observe it.
// A nil token degrades to WriteReceipted.
func (c *Cluster) WriteSession(id NodeID, key string, value []byte, tok *Token) (WriteReceipt, error) {
	rec, err := c.WriteReceipted(id, key, value)
	if err == nil && tok != nil {
		tok.ObserveWrite(rec.TS)
	}
	return rec, err
}

// ReadLeveled serves a client read at replica id under the consistency
// level opt selects, returning the versioned value so callers (session
// caches, invariant oracles) can order what they observed. A nil opt is an
// eventual read. Like Read it never takes any lock: the covered fast path
// is atomic loads plus one pass over the applied-watermark snapshot, and
// allocates nothing. Reads that must wait park on the
// cluster's freshness queue until the replica catches up, the deadline
// lapses (a typed *NotFreshError matching ErrNotFresh), or the replica
// dies.
func (c *Cluster) ReadLeveled(id NodeID, key string, opt *LeveledRead) (store.Versioned, bool, error) {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return store.Versioned{}, false, fmt.Errorf("runtime: no replica %v", id)
	}
	r := c.replicas[id]
	st := r.store.Load()
	if st == nil {
		return store.Versioned{}, false, r.deadError()
	}
	if r.meter != nil {
		r.meter.Record(time.Now())
	}
	lvl := LevelEventual
	if opt != nil {
		lvl = opt.Level
	}
	switch lvl {
	case LevelSession, LevelBounded:
		if opt.Token == nil {
			break // nothing to be consistent with: eventual semantics
		}
		// Steady-state probe, inline so the covered read pays one atomic
		// load and a pointer compare over the plain read path; the token
		// cache misses only when the replica's coverage advanced.
		if sum := r.applied.snap.Load(); sum == nil || opt.Token.covered != sum {
			var maxLag uint64
			if lvl == LevelBounded {
				maxLag = opt.MaxLag
			}
			merge := lvl == LevelSession
			if _, ok := r.applied.readCovered(opt.Token, maxLag, merge); !ok {
				if err := c.waitFresh(r, &opt.Token.sum, vclock.Timestamp{}, maxLag, opt.Deadline, lvl); err != nil {
					return store.Versioned{}, false, err
				}
				// Caught up (or a racing restart reset coverage — re-check).
				if _, ok := r.applied.readCovered(opt.Token, maxLag, merge); !ok {
					return store.Versioned{}, false, c.notFresh(r, lvl, &opt.Token.sum, maxLag)
				}
			}
		}
	case LevelStrong:
		if opt.Token != nil {
			// Strong subsumes session: a token-carrying strong read also
			// honors the session floor. Without this, a dead replica holding
			// the only copy of a session-observed version would let the
			// freshest-live answer regress below the floor; instead the read
			// sheds until the origin returns.
			if _, ok := r.applied.readCovered(opt.Token, 0, true); !ok {
				if err := c.waitFresh(r, &opt.Token.sum, vclock.Timestamp{}, 0, opt.Deadline, lvl); err != nil {
					return store.Versioned{}, false, err
				}
				if _, ok := r.applied.readCovered(opt.Token, 0, true); !ok {
					return store.Versioned{}, false, c.notFresh(r, lvl, &opt.Token.sum, 0)
				}
			}
		}
		want, found := c.freshestVersion(key)
		if found && !r.applied.covers(want.TS) {
			if err := c.waitFresh(r, nil, want.TS, 0, opt.Deadline, lvl); err != nil {
				return store.Versioned{}, false, err
			}
			if !r.applied.covers(want.TS) {
				return store.Versioned{}, false, c.notFresh(r, lvl, nil, 0)
			}
		}
		st2 := r.store.Load()
		if st2 == nil {
			return store.Versioned{}, false, r.deadError()
		}
		c.countRead(lvl)
		v, ok := st2.GetVersion(key)
		if ok && opt.Token != nil {
			// Strong reads join the session's monotonic floor.
			opt.Token.ObserveWrite(v.TS)
		}
		return v, ok, nil
	}
	c.countRead(lvl)
	v, ok := st.GetVersion(key)
	return v, ok, nil
}

// notFresh builds the typed freshness rejection (re-probing the lag for
// the error detail) and counts the shed.
func (c *Cluster) notFresh(r *replica, lvl Level, want *vclock.Summary, maxLag uint64) error {
	if r.store.Load() == nil {
		return r.deadError()
	}
	var lag uint64 = 1
	if want != nil {
		lag = r.applied.lagBehind(want)
		if lag <= maxLag {
			lag = maxLag + 1 // raced back under the bound; still report a shed
		}
	}
	if co := c.opts.obs; co != nil {
		co.NotFresh.Inc()
	}
	return &NotFreshError{Replica: r.id, Level: lvl, Lag: lag, RetryAfter: c.freshRetryAfter()}
}

// freshRetryAfter derives the backoff hint for a freshness shed: half the
// mean anti-entropy session interval — the expected time to the next
// absorb — clamped to [1ms, 1s] like the admission plane's hint.
func (c *Cluster) freshRetryAfter() time.Duration {
	d := c.opts.sessionMean / 2
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// countRead bumps the per-level read counter when observability is on.
func (c *Cluster) countRead(lvl Level) {
	co := c.opts.obs
	if co == nil {
		return
	}
	switch lvl {
	case LevelEventual:
		co.ReadsEventual.Inc()
	case LevelSession:
		co.ReadsSession.Inc()
	case LevelBounded:
		co.ReadsBounded.Inc()
	case LevelStrong:
		co.ReadsStrong.Inc()
	}
}

// freshestVersion pins the LWW-freshest version of key across all live
// replicas — the strong read's convergence target. found is false when no
// live replica holds the key.
func (c *Cluster) freshestVersion(key string) (store.Versioned, bool) {
	var want store.Versioned
	found := false
	for _, rp := range c.replicas {
		stp := rp.store.Load()
		if stp == nil {
			continue
		}
		v, ok := stp.GetVersion(key)
		if !ok {
			continue
		}
		if !found || strongerVersion(v, want) {
			want, found = v, true
		}
	}
	return want, found
}

// strongerVersion mirrors the store's LWW order: higher Lamport clock
// wins, ties broken by the timestamp total order.
func strongerVersion(v, cur store.Versioned) bool {
	if v.Clock != cur.Clock {
		return v.Clock > cur.Clock
	}
	return v.TS.Compare(cur.TS) > 0
}

// TokenCovered reports whether replica id's applied coverage already
// dominates tok — the shard router's routing probe, taken without any
// lock (two atomic loads plus one summary pass). A nil token
// is covered everywhere; a dead replica covers nothing.
func (c *Cluster) TokenCovered(id NodeID, tok *Token) bool {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return false
	}
	r := c.replicas[id]
	if r.store.Load() == nil {
		return false
	}
	if tok == nil {
		return true
	}
	return r.applied.lagBehind(&tok.sum) == 0
}

// Session binds a token to a cluster with per-session wait parameters — the
// convenience surface over WriteSession/ReadLeveled. Not safe for
// concurrent use; one session is one logical client.
type Session struct {
	c *Cluster
	// MaxLag is the staleness bound LevelBounded reads enforce.
	MaxLag uint64
	// Deadline bounds every freshness wait; 0 selects DefaultFreshWait.
	Deadline time.Duration

	tok Token
	opt LeveledRead
}

// NewSession starts an empty session against the cluster.
func (c *Cluster) NewSession() *Session { return &Session{c: c} }

// Token exposes the session's live token (e.g. to persist it across
// processes via its binary encoding). The pointer stays valid for the
// session's lifetime.
func (s *Session) Token() *Token { return &s.tok }

// Write performs a session write at replica id: the acknowledged position
// joins the token.
func (s *Session) Write(id NodeID, key string, value []byte) (WriteReceipt, error) {
	return s.c.WriteSession(id, key, value, &s.tok)
}

// Read serves a session-level read at replica id (read-your-writes +
// monotonic reads).
func (s *Session) Read(id NodeID, key string) (store.Versioned, bool, error) {
	return s.ReadLevel(id, key, LevelSession)
}

// ReadLevel serves a read at replica id under an explicit level, carrying
// the session's token and wait parameters.
func (s *Session) ReadLevel(id NodeID, key string, lvl Level) (store.Versioned, bool, error) {
	s.opt = LeveledRead{Level: lvl, Token: &s.tok, MaxLag: s.MaxLag, Deadline: s.Deadline}
	return s.c.ReadLeveled(id, key, &s.opt)
}

// appliedMark is a replica's applied-coverage watermark: the log summary
// as of the last mutation whose store apply completed, maintained by the
// runtime because the node advances the log summary BEFORE applying
// entries to the store (probing the live log could show coverage whose
// values the store lacks). publish/reset run under the replica lock at the
// end of mutating critical sections and swap in a fresh immutable
// snapshot; read-side probes are one atomic load plus a pass over the
// snapshot — no lock at all on the covered session-read fast path, the
// same shape as the lock-free store pointer. A nil snapshot (before the
// first publish) reads as empty coverage.
type appliedMark struct {
	snap atomic.Pointer[vclock.Summary]
}

// publish folds the log's current summary into a widened copy of the
// watermark and swaps it in (monotonic within an incarnation). Called
// under the replica lock after every store apply completes, which
// serializes it with reset; the clone-per-apply cost rides the write path,
// keeping every read probe allocation-free.
func (m *appliedMark) publish(lg *wlog.Log) {
	next := m.snap.Load().Clone()
	lg.MergeSummaryInto(next)
	m.snap.Store(next)
}

// reset REPLACES the watermark with the log's current summary — the
// restart path, where a new incarnation's coverage may be behind the old
// one's and a stale watermark would overstate what the new store holds.
func (m *appliedMark) reset(lg *wlog.Log) {
	m.snap.Store(lg.Summary())
}

// readCovered is the session-read fast path probe. A token whose cache
// pins the current snapshot is covered by one pointer compare; otherwise
// one pass over the snapshot returns the watermark's lag behind the token
// and whether it is within maxLag. When covered exactly (lag 0) and merge
// is set, the snapshot is folded into the token (the monotonic-reads
// update) and the cache re-pins, so a session parked on one replica pays
// the pass only when the replica's coverage advances.
func (m *appliedMark) readCovered(tok *Token, maxLag uint64, merge bool) (lag uint64, ok bool) {
	sum := m.snap.Load()
	if sum != nil && tok.covered == sum {
		return 0, true
	}
	lag, gains := sum.LagDelta(&tok.sum)
	ok = lag <= maxLag
	if ok && merge {
		if gains {
			tok.sum.Merge(sum)
		}
		if lag == 0 {
			tok.covered = sum
		}
	}
	return lag, ok
}

// lagBehind returns how many writes want covers that the watermark does
// not.
func (m *appliedMark) lagBehind(want *vclock.Summary) uint64 {
	return m.snap.Load().LagBehind(want)
}

// covers reports whether the watermark covers the single write ts.
func (m *appliedMark) covers(ts vclock.Timestamp) bool {
	return m.snap.Load().Covers(ts)
}

// freshWaiter is one leveled read parked until a replica's applied
// coverage reaches its target: a summary watermark within maxLag
// (session/bounded) or a single write (strong). ch closes when satisfied.
// want is only dereferenced while the waiter is registered, during which
// the owning reader is parked — so the token's summary is never read and
// written concurrently.
type freshWaiter struct {
	id     NodeID
	want   *vclock.Summary
	ts     vclock.Timestamp
	maxLag uint64
	ch     chan struct{}
}

// satisfied probes the waiter's target against a replica's watermark.
func (w *freshWaiter) satisfied(m *appliedMark) bool {
	if w.want != nil {
		return m.lagBehind(w.want) <= w.maxLag
	}
	return m.covers(w.ts)
}

// freshQueue is the cluster's set of parked leveled reads. count mirrors
// len(waiters) so the per-advance signal is one atomic load when no read
// is waiting — the same fast-path shape as propagation watches.
type freshQueue struct {
	mu      sync.Mutex
	waiters []*freshWaiter
	count   atomic.Int32
}

// signalFresh wakes every waiter on replica id whose target the replica's
// applied coverage now satisfies. Called from every point that advances a
// replica's coverage (via checkWatches) and from the restart paths.
func (c *Cluster) signalFresh(id NodeID) {
	q := &c.fresh
	if q.count.Load() == 0 {
		return
	}
	r := c.replicas[id]
	q.mu.Lock()
	n := 0
	for _, w := range q.waiters {
		if w.id == id && w.satisfied(&r.applied) {
			close(w.ch)
			q.count.Add(-1)
			continue
		}
		q.waiters[n] = w
		n++
	}
	for i := n; i < len(q.waiters); i++ {
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:n]
	q.mu.Unlock()
}

// remove unregisters w (deadline path), reporting false when a signal
// already fired it.
func (q *freshQueue) remove(w *freshWaiter) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, cw := range q.waiters {
		if cw == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			q.count.Add(-1)
			return true
		}
	}
	return false
}

// waitFresh parks the calling read until replica r's applied coverage
// satisfies the target (want within maxLag, or the single write ts when
// want is nil), the deadline lapses, or the replica dies. Runs only on the
// miss path — the covered fast path never calls it.
func (c *Cluster) waitFresh(r *replica, want *vclock.Summary, ts vclock.Timestamp, maxLag uint64, deadline time.Duration, lvl Level) error {
	if deadline <= 0 {
		deadline = DefaultFreshWait
	}
	w := &freshWaiter{id: r.id, want: want, ts: ts, maxLag: maxLag, ch: make(chan struct{})}
	q := &c.fresh
	q.mu.Lock()
	// Re-check under the queue lock: the covering advance may have landed
	// (and signalled) between the fast-path probe and registration.
	if w.satisfied(&r.applied) {
		q.mu.Unlock()
		return nil
	}
	q.waiters = append(q.waiters, w)
	q.count.Add(1)
	q.mu.Unlock()

	var waitStart time.Time
	co := c.opts.obs
	if co != nil {
		waitStart = time.Now()
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case <-w.ch:
		if co != nil {
			co.FreshWaitSeconds.Observe(time.Since(waitStart).Seconds())
		}
		return nil
	case <-timer.C:
		if !q.remove(w) {
			// A signal fired between the timeout and the removal: the
			// coverage arrived in time after all.
			if co != nil {
				co.FreshWaitSeconds.Observe(time.Since(waitStart).Seconds())
			}
			return nil
		}
		if r.store.Load() == nil {
			return r.deadError()
		}
		return c.notFresh(r, lvl, want, maxLag)
	}
}
