package runtime

import (
	"sync"
	"time"

	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/wal"
)

// This file implements the third stage of the pipelined durable commit
// protocol: ordered ack release.
//
// The group-commit leader (groupcommit.go) appends and publishes a batch
// under the replica lock, then hands the batch to this stage instead of
// fsyncing inline. The WAL's background sync stage (wal.StartPipeline)
// retires the fsync outside the lock, and the per-replica ack worker below
// releases client acks strictly in batch order once each batch's covering
// sync completes (wal.WaitDurable). The replica lock is free during the
// disk wait, so the next batches append and publish while earlier ones are
// still syncing — multiple batches in flight, one fsync shared by all of
// them when the disk is the bottleneck.
//
// Invariants the stage preserves:
//
//   - Durable before visible, per session: no client ack and no commit
//     fan-out escapes before the batch's covering sync completes.
//   - Order: acks release in exactly the order batches committed; batch
//     N+1's acks never precede batch N's.
//   - Fail-stop: if a covering sync fails, NO ack it covers escapes — the
//     worker fails the batch's waiters and fail-stops the replica, exactly
//     like an inline sync failure did.

// ackRelease is one committed batch waiting for its covering sync: the
// parked writers to complete, the fan-out to send, and the WAL record the
// durability watermark must reach first. It captures the wal and endpoint
// of the incarnation that committed it, so a concurrent Kill/restart
// swapping r.wal or r.ep cannot redirect a stale release.
type ackRelease struct {
	batch []*writeReq
	out   []protocol.Envelope
	rec   uint64
	wal   *wal.Log
	ep    transport.Endpoint
	id    NodeID
	// start is the commit pickup time (CommitSeconds); enq the hand-off to
	// this stage (AckReleaseSeconds). Zero when observability is off.
	start time.Time
	enq   time.Time
}

// ackQueue is the per-replica FIFO between the commit leader and the ack
// worker. Releases enter in commit order (the leader is exclusive) and
// leave in the same order. Lock ordering: r.mu may be held while taking
// q.mu (the leader pushes under the replica lock); never the reverse.
type ackQueue struct {
	mu      sync.Mutex
	cond    sync.Cond
	pending []ackRelease
	head    int
	running bool
	closing bool
	done    chan struct{}
}

// start launches the worker. Called from Cluster.Start for durable
// replicas; before it runs (or after stop), the leader's push fails and
// commits fall back to the inline sync path.
func (q *ackQueue) start(r *replica) {
	q.mu.Lock()
	if q.running {
		q.mu.Unlock()
		return
	}
	q.cond.L = &q.mu
	q.running = true
	q.closing = false
	q.done = make(chan struct{})
	q.mu.Unlock()
	go r.ackWorker()
}

// stop drains the queue — every pending release still completes, so no
// client is left parked — then retires the worker.
func (q *ackQueue) stop() {
	q.mu.Lock()
	if !q.running {
		q.mu.Unlock()
		return
	}
	q.closing = true
	q.cond.Broadcast()
	done := q.done
	q.mu.Unlock()
	<-done
	q.mu.Lock()
	q.running = false
	q.mu.Unlock()
}

// push enqueues a release, reporting false when no worker will serve it
// (not started, or stopping) — the caller must then release inline.
func (q *ackQueue) push(rel ackRelease) bool {
	q.mu.Lock()
	if !q.running || q.closing {
		q.mu.Unlock()
		return false
	}
	q.pending = append(q.pending, rel)
	q.cond.Signal()
	q.mu.Unlock()
	return true
}

// depth returns the number of batches awaiting their covering sync — the
// pipeline's in-flight depth (scrape-time only).
func (q *ackQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending) - q.head
}

// take blocks for the next release in order, reporting ok=false when the
// queue is stopping and drained.
func (q *ackQueue) take() (ackRelease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.pending)-q.head == 0 && !q.closing {
		q.cond.Wait()
	}
	if len(q.pending)-q.head == 0 {
		return ackRelease{}, false
	}
	rel := q.pending[q.head]
	q.pending[q.head] = ackRelease{}
	q.head++
	if q.head == len(q.pending) {
		q.pending = q.pending[:0]
		q.head = 0
	}
	return rel, true
}

// ackWorker is the replica's ack-release goroutine: one per durable
// replica, alive from Start to Stop, draining releases in commit order.
func (r *replica) ackWorker() {
	q := &r.ackq
	defer close(q.done)
	for {
		rel, ok := q.take()
		if !ok {
			return
		}
		r.release(rel)
	}
}

// release completes one batch: wait for the covering sync, then ack,
// observe, fire watches, and send the batch's fan-out — the exact
// post-sync tail the leader used to run inline, now off the replica lock.
func (r *replica) release(rel ackRelease) {
	c := r.cluster
	co := c.opts.obs
	coalesced := rel.wal.Durable() >= rel.rec
	if err := rel.wal.WaitDurable(rel.rec); err != nil {
		// The covering sync failed (or the WAL died first): no ack it
		// covers may escape. Fail-stop the replica FIRST — unless a Kill
		// or another fail-stop already retired this incarnation, in which
		// case the verdict is theirs — and only then fail the waiting
		// clients, so a client that observes the error finds the replica
		// already fully stopped, exactly as with an inline sync failure.
		r.mu.Lock()
		if r.dead || r.wal != rel.wal {
			r.mu.Unlock()
		} else {
			r.failStop(err)
		}
		// When a fail-stop (ours or a concurrent one) retired the replica,
		// reject with the typed fail-stop error so clients learn the
		// reason; an administrative Kill keeps the raw sync error.
		rejection := err
		if r.failCause.Load() != nil {
			rejection = r.deadError()
		}
		if co != nil {
			co.WriteErrors.Add(uint64(len(rel.batch)))
		}
		for _, req := range rel.batch {
			req.err = rejection
			req.done <- struct{}{}
		}
		r.wq.recycle(rel.batch)
		return
	}
	r.observeSojourn(co, rel.batch[0].arrival)
	for _, req := range rel.batch {
		req.done <- struct{}{}
	}
	if co != nil {
		co.WritesAcked.Add(uint64(len(rel.batch)))
		co.WriteBatches.Inc()
		co.BatchSize.Observe(float64(len(rel.batch)))
		co.CommitSeconds.Observe(time.Since(rel.start).Seconds())
		co.AckReleaseSeconds.Observe(time.Since(rel.enq).Seconds())
		if coalesced {
			co.CoalescedSyncs.Inc()
		}
		c.goodput.RecordN(time.Now(), len(rel.batch))
	}
	c.checkWatches(rel.id)
	r.sendAllVia(rel.ep, rel.out)
	r.wq.recycle(rel.batch)
}

// carriesEntries reports whether any envelope carries write-log entries or
// store content — the envelopes the durability gate must hold until the
// records behind them are on disk. Offers and summaries carry only ids and
// version vectors; a crash after they escape is harmless (the peer simply
// never receives the payload and re-learns through anti-entropy).
func carriesEntries(envs []protocol.Envelope) bool {
	for _, env := range envs {
		switch m := env.Msg.(type) {
		case protocol.UpdateBatch:
			if len(m.Entries) > 0 {
				return true
			}
		case protocol.FastPayload:
			if len(m.Entries) > 0 {
				return true
			}
		case protocol.Snapshot:
			return true
		}
	}
	return false
}
