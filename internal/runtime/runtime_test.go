package runtime

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/policy"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/transport"
)

func startCluster(t *testing.T, g *topology.Graph, field demand.Field, opts ...Option) *Cluster {
	t.Helper()
	c := New(g, field, opts...)
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestClusterConvergesSingleWrite(t *testing.T) {
	g := topology.Ring(8)
	field := demand.Uniform(8, 1, 10, randSource(1))
	c := startCluster(t, g, field, WithSeed(2))

	ts, err := c.Write(0, "greeting", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("cluster did not converge")
	}
	for id := NodeID(0); id < 8; id++ {
		if !c.Covers(id, ts) {
			t.Errorf("replica %v missing the write", id)
		}
		v, ok, err := c.Read(id, "greeting")
		if err != nil || !ok || string(v) != "hello" {
			t.Errorf("Read(%v) = (%q, %t, %v)", id, v, ok, err)
		}
	}
	// All stores identical.
	d0 := c.Digest(0)
	for id := NodeID(1); id < 8; id++ {
		if c.Digest(id) != d0 {
			t.Errorf("replica %v digest differs", id)
		}
	}
}

func TestClusterConcurrentWriters(t *testing.T) {
	g := topology.BarabasiAlbert(12, 2, randSource(3))
	field := demand.Uniform(12, 1, 50, randSource(4))
	c := startCluster(t, g, field, WithSeed(5))

	for i := 0; i < 12; i++ {
		if _, err := c.Write(NodeID(i), "key", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("cluster did not converge after concurrent writes")
	}
	// LWW must agree everywhere.
	d0 := c.Digest(0)
	for id := NodeID(1); id < 12; id++ {
		if c.Digest(id) != d0 {
			t.Fatalf("replica %v store diverged", id)
		}
	}
}

func TestWatchRecordsPropagationOrder(t *testing.T) {
	// Line with demand increasing toward node 4: fast push must deliver to
	// the high-demand end fast; the watch records every replica.
	g := topology.Line(5)
	field := demand.Static{1, 2, 3, 4, 5}
	c := startCluster(t, g, field, WithSeed(7),
		WithSessionInterval(40*time.Millisecond),
		WithAdvertInterval(5*time.Millisecond))

	// Give adverts a moment to populate tables.
	time.Sleep(30 * time.Millisecond)

	ts, err := c.Write(0, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	w := c.Watch(ts)
	select {
	case <-w.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("watch never completed")
	}
	times := w.Times()
	if len(times) != 5 {
		t.Fatalf("recorded %d replicas, want 5", len(times))
	}
	if d, _ := w.TimeOf(0); d > 5*time.Millisecond {
		t.Errorf("origin time = %v, want ~0 (recorded at watch creation)", d)
	}
	// The fast chain should beat a full session interval to the valley.
	if d := times[4]; d > 40*time.Millisecond {
		t.Logf("valley node took %v (> one session interval) — chain may have missed; times=%v", d, times)
	}
}

func TestWatchExistingCoverage(t *testing.T) {
	g := topology.Line(2)
	c := startCluster(t, g, demand.Static{1, 1}, WithSeed(9))
	ts, err := c.Write(1, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	w := c.Watch(ts)
	// The writer itself must be recorded immediately.
	if _, ok := w.TimeOf(1); !ok {
		t.Error("watch missed pre-covered replica")
	}
}

func TestClusterStopIdempotent(t *testing.T) {
	g := topology.Line(3)
	c := New(g, demand.Static{1, 1, 1})
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Stop() // second stop must not panic or hang
	if err := c.Start(context.Background()); err == nil {
		t.Error("restarting a started cluster should error")
	}
}

func TestClusterWriteBounds(t *testing.T) {
	g := topology.Line(2)
	c := startCluster(t, g, demand.Static{1, 1})
	if _, err := c.Write(99, "k", nil); err == nil {
		t.Error("Write to unknown replica should error")
	}
	if _, _, err := c.Read(99, "k"); err == nil {
		t.Error("Read from unknown replica should error")
	}
}

func TestClusterWithWeakPolicy(t *testing.T) {
	g := topology.Ring(6)
	field := demand.Uniform(6, 1, 10, randSource(11))
	c := startCluster(t, g, field,
		WithPolicy(policy.NewRandom), WithFastPush(false), WithSeed(13))
	ts, err := c.Write(2, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("weak-policy cluster did not converge")
	}
	for id := NodeID(0); id < 6; id++ {
		if !c.Covers(id, ts) {
			t.Errorf("replica %v missing write under weak policy", id)
		}
	}
	// No fast activity under weak config.
	for id := NodeID(0); id < 6; id++ {
		if st := c.Stats(id); st.FastOffersSent != 0 {
			t.Errorf("replica %v sent fast offers with FastPush off", id)
		}
	}
}

func TestClusterSurvivesMessageLoss(t *testing.T) {
	g := topology.Ring(6)
	field := demand.Uniform(6, 1, 10, randSource(17))
	c := startCluster(t, g, field, WithSeed(19),
		WithNetwork(transport.MemoryConfig{LossRate: 0.3, Seed: 23}),
		WithSessionInterval(15*time.Millisecond))
	ts, err := c.Write(0, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("cluster did not converge under 30% loss")
	}
	for id := NodeID(0); id < 6; id++ {
		if !c.Covers(id, ts) {
			t.Errorf("replica %v missing write despite anti-entropy", id)
		}
	}
}

func TestClusterTraceAttached(t *testing.T) {
	ring := trace.NewRing(1024, trace.LevelDebug)
	g := topology.Line(3)
	c := startCluster(t, g, demand.Static{1, 2, 3}, WithTrace(ring), WithSeed(29),
		WithSessionInterval(10*time.Millisecond))
	if _, err := c.Write(0, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c.WaitConverged(ctx)
	if ring.Count() == 0 {
		t.Error("trace ring recorded nothing")
	}
}

// randSource is a tiny helper so tests read naturally.
func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
