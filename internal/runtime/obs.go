package runtime

import (
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wlog"
)

// This file wires the observability plane (internal/obs) into a live
// cluster. Two mechanisms, matching the two kinds of signals:
//
//   - Polled series: everything the cluster already counts (node protocol
//     stats, store read counters, WAL stats, transport queues) is exposed as
//     CounterFunc/GaugeFunc closures evaluated only at scrape time, so an
//     unscraped cluster pays nothing and the lock-free read path stays
//     untouched.
//   - Inline instruments: genuinely new measurements — propagation lag,
//     batch size, commit and fsync latency — are recorded on the hot path
//     with the allocation-free striped instruments (see groupcommit.go and
//     propObserver below).

// WithObs attaches an observability bundle: the cluster feeds co's
// propagation tracer and commit instruments inline and registers polled
// series for its protocol, store, WAL and transport counters. Build co with
// obs.NewClusterObs over the same replica count.
func WithObs(co *obs.ClusterObs) Option {
	return func(o *options) { o.obs = co }
}

// nodeObserver returns the node.Observer for replica id: the propagation
// tracer hook when observability is on, nil otherwise.
func nodeObserver(o *options, id NodeID) node.Observer {
	if o.obs == nil {
		return nil
	}
	return propObserver{co: o.obs, id: id}
}

// propObserver adapts the propagation tracer to the node's Observer hook.
// Committed entries are stamped at their origin (this runs under the
// replica lock inside the group commit, before any fan-out can deliver the
// write elsewhere); absorbed entries record origin→here visibility lag.
// Both paths read the tracer clock once per batch.
type propObserver struct {
	co *obs.ClusterObs
	id NodeID
}

// ObserveCommitted stamps each committed write at its origin.
func (p propObserver) ObserveCommitted(entries []wlog.Entry) {
	now := p.co.Prop.Now()
	for _, e := range entries {
		p.co.Prop.Stamp(e.TS.Node, e.TS.Seq, now)
	}
}

// ObserveAbsorbed records propagation lag for each newly absorbed write.
func (p propObserver) ObserveAbsorbed(entries []wlog.Entry) {
	now := p.co.Prop.Now()
	for _, e := range entries {
		p.co.Prop.Observe(e.TS.Node, p.id, e.TS.Seq, now)
	}
}

// depth returns the number of parked client writes (scrape-time only).
func (q *writeQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// registerObs registers the cluster's polled metric series. Called once at
// construction when WithObs is set; registration is idempotent, so a driver
// that rebuilds clusters on a shared registry re-attaches cleanly. The
// closures lock briefly per scrape — never on any client or protocol path.
func (c *Cluster) registerObs() {
	co := c.opts.obs
	if co == nil {
		return
	}
	reg := co.Reg
	reg.GaugeFunc("repro_replicas",
		"Replicas configured in the cluster.",
		func() float64 { return float64(len(c.replicas)) }, co.Labels...)
	reg.GaugeFunc("repro_uptime_seconds",
		"Seconds since the cluster started (0 before Start).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if !c.started {
				return 0
			}
			return time.Since(c.start).Seconds()
		}, co.Labels...)
	reg.GaugeFunc("repro_goodput_writes_per_second",
		"Exponentially decayed rate of client writes acknowledged cluster-wide (1s window) — goodput, excluding shed and failed writes.",
		func() float64 { return c.goodput.Rate(time.Now()) }, co.Labels...)
	if tr := c.opts.tracer; tr != nil {
		reg.CounterFunc("repro_trace_events_total",
			"Events emitted into the trace ring (including overwritten).",
			func() float64 { return float64(tr.Count()) }, co.Labels...)
		reg.CounterFunc("repro_trace_overwrites_total",
			"Trace-ring events silently dropped to ring wraparound.",
			func() float64 { return float64(tr.Overwrites()) }, co.Labels...)
	}
	c.registerTransportObs()
	for i := range c.replicas {
		c.registerReplicaObs(NodeID(i))
	}
}

// registerReplicaObs registers replica id's polled series, labelled
// replica="nX" on top of the cluster's base labels.
func (c *Cluster) registerReplicaObs(id NodeID) {
	co := c.opts.obs
	reg := co.Reg
	r := c.replicas[id]
	lbl := co.With(obs.L("replica", id.String()))

	// stat polls one node.Stats field under the replica lock.
	stat := func(sel func(node.Stats) uint64) func() float64 {
		return func() float64 {
			r.mu.Lock()
			s := r.node.Stats()
			r.mu.Unlock()
			return float64(sel(s))
		}
	}
	counter := func(name, help string, sel func(node.Stats) uint64, extra ...obs.Label) {
		all := append(append([]obs.Label(nil), lbl...), extra...)
		reg.CounterFunc(name, help, stat(sel), all...)
	}

	counter("repro_node_client_writes_total",
		"Local client writes committed at the replica.",
		func(s node.Stats) uint64 { return s.ClientWrites })
	counter("repro_node_entries_absorbed_total",
		"Write-log entries gained from peers (anti-entropy and fast push).",
		func(s node.Stats) uint64 { return s.EntriesAbsorbed })
	counter("repro_node_duplicate_drops_total",
		"Received entries dropped as already-covered re-deliveries.",
		func(s node.Stats) uint64 { return s.DuplicateDrops })
	counter("repro_node_gap_drops_total",
		"Received entries dropped for arriving out of sequence order.",
		func(s node.Stats) uint64 { return s.GapDrops })
	counter("repro_node_sessions_total",
		"Anti-entropy sessions by role.",
		func(s node.Stats) uint64 { return s.SessionsInitiated }, obs.L("role", "initiator"))
	counter("repro_node_sessions_total",
		"Anti-entropy sessions by role.",
		func(s node.Stats) uint64 { return s.SessionsReceived }, obs.L("role", "responder"))
	counter("repro_node_entries_total",
		"Write-log entries exchanged in anti-entropy sessions, by direction.",
		func(s node.Stats) uint64 { return s.EntriesSent }, obs.L("dir", "sent"))
	counter("repro_node_entries_total",
		"Write-log entries exchanged in anti-entropy sessions, by direction.",
		func(s node.Stats) uint64 { return s.EntriesReceived }, obs.L("dir", "received"))
	counter("repro_node_fast_offers_total",
		"Fast-update offers by lifecycle event.",
		func(s node.Stats) uint64 { return s.FastOffersSent }, obs.L("event", "sent"))
	counter("repro_node_fast_offers_total",
		"Fast-update offers by lifecycle event.",
		func(s node.Stats) uint64 { return s.FastOffersReceived }, obs.L("event", "received"))
	counter("repro_node_fast_offers_total",
		"Fast-update offers by lifecycle event.",
		func(s node.Stats) uint64 { return s.FastOffersAccepted }, obs.L("event", "accepted"))
	counter("repro_node_fast_offers_total",
		"Fast-update offers by lifecycle event.",
		func(s node.Stats) uint64 { return s.FastOffersDeclined }, obs.L("event", "declined"))
	counter("repro_node_fast_entries_total",
		"Write-log entries moved by fast-update chains, by direction.",
		func(s node.Stats) uint64 { return s.FastEntriesSent }, obs.L("dir", "sent"))
	counter("repro_node_fast_entries_total",
		"Write-log entries moved by fast-update chains, by direction.",
		func(s node.Stats) uint64 { return s.FastEntriesGained }, obs.L("dir", "gained"))
	counter("repro_node_adverts_total",
		"Demand advertisements sent.",
		func(s node.Stats) uint64 { return s.AdvertsSent })
	counter("repro_node_messages_total",
		"Protocol envelopes handled.",
		func(s node.Stats) uint64 { return s.MessagesHandled })
	counter("repro_node_snapshots_total",
		"Full-state transfers (truncation recovery), by direction.",
		func(s node.Stats) uint64 { return s.SnapshotsSent }, obs.L("dir", "sent"))
	counter("repro_node_snapshots_total",
		"Full-state transfers (truncation recovery), by direction.",
		func(s node.Stats) uint64 { return s.SnapshotsReceived }, obs.L("dir", "received"))

	// Store series poll through the lock-free published pointer (nil while
	// the replica is dead, fresh after an empty-state restart — counters may
	// reset, which scrapers handle).
	reg.GaugeFunc("repro_store_keys",
		"Keys in the replica's content store.",
		func() float64 {
			if st := r.store.Load(); st != nil {
				return float64(st.Len())
			}
			return 0
		}, lbl...)
	reg.CounterFunc("repro_store_reads_total",
		"Client reads served by the store.",
		func() float64 {
			if st := r.store.Load(); st != nil {
				reads, _ := st.ReadStats()
				return float64(reads)
			}
			return 0
		}, lbl...)
	reg.CounterFunc("repro_store_stale_reads_total",
		"Store reads that returned a value older than the newest applied write.",
		func() float64 {
			if st := r.store.Load(); st != nil {
				_, stale := st.ReadStats()
				return float64(stale)
			}
			return 0
		}, lbl...)
	reg.GaugeFunc("repro_replica_up",
		"1 while the replica serves client operations, 0 while down.",
		func() float64 {
			if r.store.Load() != nil {
				return 1
			}
			return 0
		}, lbl...)
	reg.GaugeFunc("repro_demand",
		"The replica's own demand (configured field or measured rate).",
		func() float64 {
			now := c.now()
			r.mu.Lock()
			defer r.mu.Unlock()
			if r.dead {
				return 0
			}
			return r.node.OwnDemand(now)
		}, lbl...)
	reg.GaugeFunc("repro_summary_writes",
		"Total writes the replica's summary vector covers.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(r.node.SummaryTotal())
		}, lbl...)
	reg.GaugeFunc("repro_commit_queue_depth",
		"Client writes parked in the group-commit combining queue.",
		func() float64 { return float64(r.wq.depth()) }, lbl...)
	reg.GaugeFunc("repro_replica_overloaded",
		"1 while the replica's admission controller is shedding on sustained queue sojourn.",
		func() float64 {
			if r.adm.overloaded.Load() {
				return 1
			}
			return 0
		}, lbl...)

	if c.opts.durDir != "" {
		c.registerWALObs(r, lbl)
	}
}

// registerTransportObs registers the cluster-level TCP transport series:
// sums over every endpoint backed by a real TCP transport. The families are
// registered even for memory-backed clusters (reporting zeros), so scrape
// consumers see a stable schema regardless of transport.
func (c *Cluster) registerTransportObs() {
	co := c.opts.obs
	reg := co.Reg
	// eachTCP folds f over the live TCP endpoints (endpoint pointers swap on
	// restart, so each poll re-reads them under the replica locks).
	eachTCP := func(f func(t *transport.TCP) float64) func() float64 {
		return func() float64 {
			var total float64
			for _, r := range c.replicas {
				r.mu.Lock()
				ep := r.ep
				r.mu.Unlock()
				if t, ok := ep.(*transport.TCP); ok {
					total += f(t)
				}
			}
			return total
		}
	}
	reg.GaugeFunc("repro_tcp_send_queue_depth",
		"Envelopes parked in TCP per-peer send queues, cluster-wide (0 on the in-memory transport).",
		eachTCP(func(t *transport.TCP) float64 { return float64(t.QueueDepth()) }), co.Labels...)
	reg.CounterFunc("repro_tcp_sends_total",
		"Envelopes accepted into TCP send queues, cluster-wide.",
		eachTCP(func(t *transport.TCP) float64 { return float64(t.Sends()) }), co.Labels...)
	reg.CounterFunc("repro_tcp_flushes_total",
		"Coalesced TCP writer flushes, cluster-wide.",
		eachTCP(func(t *transport.TCP) float64 { return float64(t.Flushes()) }), co.Labels...)
	reg.CounterFunc("repro_tcp_stall_drops_total",
		"Envelopes dropped after a full TCP send queue stalled past its timeout, cluster-wide.",
		eachTCP(func(t *transport.TCP) float64 { return float64(t.StallDrops()) }), co.Labels...)
}

// registerWALObs registers replica-level durable persistence series. The
// WAL pointer swaps on restart and is nil after Kill/Abandon, so each poll
// re-reads it under the replica lock.
func (c *Cluster) registerWALObs(r *replica, lbl []obs.Label) {
	reg := c.opts.obs.Reg
	walStats := func() (st struct {
		Segments        int
		DiskBytes       int64
		Records         uint64
		DurableRecords  uint64
		SnapshotRecords uint64
		Syncs           uint64
		PipelineSyncs   uint64
		SnapshotBytes   int64
		DirSyncErrs     uint64
		LastSync        time.Duration
	}, ok bool) {
		r.mu.Lock()
		w := r.wal
		r.mu.Unlock()
		if w == nil {
			return st, false
		}
		s := w.Stats()
		st.Segments = s.Segments
		st.DiskBytes = s.DiskBytes
		st.Records = s.Records
		st.DurableRecords = s.DurableRecords
		st.SnapshotRecords = s.SnapshotRecords
		st.Syncs = s.Syncs
		st.PipelineSyncs = s.PipelineSyncs
		st.SnapshotBytes = s.SnapshotBytes
		st.DirSyncErrs = s.DirSyncErrs
		st.LastSync = s.LastSync
		return st, true
	}
	reg.GaugeFunc("repro_wal_segments",
		"On-disk WAL segments.",
		func() float64 { st, _ := walStats(); return float64(st.Segments) }, lbl...)
	reg.GaugeFunc("repro_wal_disk_bytes",
		"Bytes the WAL holds on disk across segments.",
		func() float64 { st, _ := walStats(); return float64(st.DiskBytes) }, lbl...)
	reg.CounterFunc("repro_wal_records_total",
		"Records appended to the WAL this incarnation.",
		func() float64 { st, _ := walStats(); return float64(st.Records) }, lbl...)
	reg.GaugeFunc("repro_wal_durable_records",
		"WAL durability watermark: records covered by a completed sync.",
		func() float64 { st, _ := walStats(); return float64(st.DurableRecords) }, lbl...)
	reg.CounterFunc("repro_wal_pipeline_syncs_total",
		"Syncs retired by the WAL's background sync stage this incarnation.",
		func() float64 { st, _ := walStats(); return float64(st.PipelineSyncs) }, lbl...)
	reg.GaugeFunc("repro_commit_inflight_batches",
		"Committed batches whose covering sync has not yet released their acks.",
		func() float64 { return float64(r.ackq.depth()) }, lbl...)
	reg.GaugeFunc("repro_wal_snapshot_records",
		"Records covered by the newest on-disk snapshot.",
		func() float64 { st, _ := walStats(); return float64(st.SnapshotRecords) }, lbl...)
	reg.CounterFunc("repro_wal_syncs_total",
		"WAL fsync batches this incarnation.",
		func() float64 { st, _ := walStats(); return float64(st.Syncs) }, lbl...)
	reg.CounterFunc("repro_wal_snapshot_bytes_total",
		"Bytes written as WAL snapshot images this incarnation.",
		func() float64 { st, _ := walStats(); return float64(st.SnapshotBytes) }, lbl...)
	reg.CounterFunc("repro_wal_dir_sync_errors_total",
		"WAL directory-fsync failures on platforms that support directory fsync.",
		func() float64 { st, _ := walStats(); return float64(st.DirSyncErrs) }, lbl...)
	reg.GaugeFunc("repro_wal_sync_stall_seconds",
		"Duration of the replica's most recent disk-reaching WAL fsync — the stall signal of a degrading disk.",
		func() float64 { st, _ := walStats(); return st.LastSync.Seconds() }, lbl...)
	// Pre-register the fail-stop family so /metrics shows the zero series
	// before (ideally: instead of) any replica actually dying.
	for _, reason := range []string{"io-error", "disk-full"} {
		reg.Counter("repro_replica_failstop_total", failStopHelp,
			append(append([]obs.Label(nil), lbl...), obs.L("reason", reason))...)
	}
}
