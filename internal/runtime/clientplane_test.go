package runtime

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/topology"
	"repro/internal/vclock"
)

// startClientPlaneCluster builds a small cluster with slow background
// anti-entropy so client-plane behaviour dominates the test window.
func startClientPlaneCluster(t *testing.T, n int, opts ...Option) *Cluster {
	t.Helper()
	g := topology.Ring(n)
	field := make(demand.Static, n)
	for i := range field {
		field[i] = float64(i + 1)
	}
	all := append([]Option{
		WithSeed(61),
		WithSessionInterval(30 * time.Millisecond),
		WithAdvertInterval(15 * time.Millisecond),
	}, opts...)
	c := New(g, field, all...)
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// TestReadDoesNotTakeReplicaLock is the acceptance check for the lock-free
// read path: a Read must complete while both the replica mutex and the
// cluster mutex are held by someone else. If Read ever reacquires either,
// this test deadlocks (and times out) instead of passing.
func TestReadDoesNotTakeReplicaLock(t *testing.T) {
	c := startClientPlaneCluster(t, 3)
	if _, err := c.Write(0, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	r := c.replicas[0]
	r.mu.Lock()
	defer r.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		v, ok, err := c.Read(0, "k")
		if err == nil && (!ok || string(v) != "v") {
			err = fmt.Errorf("read got %q ok=%v", v, ok)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Read blocked on a held replica/cluster lock — read path is not lock-free")
	}
}

// TestReadZeroAllocs pins the read path at zero allocations per op, with
// the demand meter (the measured-demand hot path) enabled.
func TestReadZeroAllocs(t *testing.T) {
	c := startClientPlaneCluster(t, 3, WithMeasuredDemand(time.Second))
	if _, err := c.Write(1, "hot", []byte("value")); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, _, err := c.Read(1, "hot"); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Read allocates %v objects per op, want 0", got)
	}
}

// TestReadParallelContention is the scaling regression: hammering one
// replica from many goroutines must not serialise. The test asserts
// correctness under contention (the throughput claim lives in
// BenchmarkClientPlaneReadParallel); with -race it doubles as the data-race
// check for the lock-free path against concurrent writes and restarts.
func TestReadParallelContention(t *testing.T) {
	c := startClientPlaneCluster(t, 4)
	if _, err := c.Write(2, "shared", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				v, ok, err := c.Read(2, "shared")
				if err != nil {
					errs <- err
					return
				}
				if ok && string(v) != "payload" {
					errs <- fmt.Errorf("read saw %q", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestGroupCommitTSAssignment checks the core batching semantics: N
// concurrent writes at one replica must each get a distinct, gapless
// sequence number from that origin — exactly what N serial ClientWrites
// would have produced — regardless of how they were batched.
func TestGroupCommitTSAssignment(t *testing.T) {
	c := startClientPlaneCluster(t, 3)
	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	tss := make([][]vclock.Timestamp, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				ts, err := c.Write(0, key, []byte(key))
				if err != nil {
					t.Error(err)
					return
				}
				tss[w] = append(tss[w], ts)
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[vclock.Timestamp]bool)
	var maxSeq uint64
	for w := range tss {
		for _, ts := range tss[w] {
			if ts.Node != 0 {
				t.Fatalf("write at replica 0 stamped with origin %v", ts.Node)
			}
			if seen[ts] {
				t.Fatalf("duplicate timestamp %v", ts)
			}
			seen[ts] = true
			if ts.Seq > maxSeq {
				maxSeq = ts.Seq
			}
		}
	}
	if want := uint64(writers * perWriter); maxSeq != want {
		t.Errorf("max sequence = %d, want %d (gapless assignment)", maxSeq, want)
	}
	// Writes from one client must get monotonically increasing timestamps
	// (each write completes before the client issues the next).
	for w := range tss {
		for i := 1; i < len(tss[w]); i++ {
			if tss[w][i].Seq <= tss[w][i-1].Seq {
				t.Fatalf("writer %d saw non-monotonic seqs %d then %d",
					w, tss[w][i-1].Seq, tss[w][i].Seq)
			}
		}
	}
}

// TestGroupCommitDurability reads back every concurrently written key at
// the accepting replica: group commit must not lose or cross-wire values.
func TestGroupCommitDurability(t *testing.T) {
	c := startClientPlaneCluster(t, 3)
	const writers = 6
	const perWriter = 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("d%d-k%d", w, i)
				if _, err := c.Write(1, key, []byte("val-"+key)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := fmt.Sprintf("d%d-k%d", w, i)
			v, ok, err := c.Read(1, key)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || string(v) != "val-"+key {
				t.Fatalf("key %s: got %q ok=%v", key, v, ok)
			}
		}
	}
}

// TestGroupCommitWatchFiring checks that watches see batched writes: a
// watch on a write committed inside a concurrent batch completes across the
// cluster.
func TestGroupCommitWatchFiring(t *testing.T) {
	c := startClientPlaneCluster(t, 3, WithSessionInterval(10*time.Millisecond))
	var wg sync.WaitGroup
	var watched atomic.Pointer[Watch]
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ts, err := c.Write(0, fmt.Sprintf("wf%d-%d", w, i), []byte("x"))
				if err != nil {
					t.Error(err)
					return
				}
				if w == 0 && i == 10 {
					watched.Store(c.Watch(ts))
				}
			}
		}(w)
	}
	wg.Wait()
	w := watched.Load()
	if w == nil {
		t.Fatal("watch never created")
	}
	select {
	case <-w.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("watch on a batched write never completed")
	}
	if c.watchCount.Load() != 0 {
		t.Errorf("completed watch not pruned: count=%d", c.watchCount.Load())
	}
}

// TestGroupCommitDeadReplica checks that concurrent writes against a killed
// replica all fail with the down error, including writes batched behind a
// leader that observed the kill.
func TestGroupCommitDeadReplica(t *testing.T) {
	c := startClientPlaneCluster(t, 3)
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Write(1, "k", []byte("v")); err == nil {
				t.Error("write to dead replica succeeded")
			} else if !strings.Contains(err.Error(), "down") {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if _, _, err := c.Read(1, "k"); err == nil {
		t.Error("read at dead replica succeeded")
	}
}

// TestReadAfterKillAndRestart checks the store-pointer lifecycle the
// lock-free read path depends on: published at start, retracted on Kill,
// republished on Restart.
func TestReadAfterKillAndRestart(t *testing.T) {
	c := startClientPlaneCluster(t, 3)
	if _, err := c.Write(0, "persist", []byte("before")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("no convergence before kill")
	}
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(2, "persist"); err == nil {
		t.Fatal("read served by killed replica")
	}
	if c.Serving(2) {
		t.Fatal("Serving(2) true while dead")
	}
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	if !c.Serving(2) {
		t.Fatal("Serving(2) false after restart")
	}
	v, ok, err := c.Read(2, "persist")
	if err != nil {
		t.Fatal(err)
	}
	if !ok || string(v) != "before" {
		t.Fatalf("restarted replica serves %q ok=%v, want bootstrap content", v, ok)
	}
}
