package runtime

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// These tests drive the live cluster against an injected vfs.FaultFS —
// the runtime-level half of the storage fault-injection plane. The
// wal-level crash-point checker proves recovery; these prove the
// degradation policy: fail-stop on dead disks (with the right metric
// reason), stall surfacing on slow ones, durable-before-visible throughout.

// replicaScope is the FaultFS scope string isolating one replica's WAL
// directory (walDir shapes paths as <base>/n<id>/...).
func replicaScope(id NodeID) string {
	return string(filepath.Separator) + fmt.Sprintf("n%d", id) + string(filepath.Separator)
}

// waitDead polls until replica id stops serving reads (fail-stop lands
// asynchronously from the maintenance path) or the deadline passes.
func waitDead(t *testing.T, c *Cluster, id NodeID, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if _, _, err := c.Read(id, "any"); err != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replica %v still serving %v after its disk died", id, d)
}

func TestDyingDiskFailStopsWithIOErrorReason(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 11)
	reg := obs.NewRegistry()
	c := durableCluster(t, 2, dir, WithDurabilityFS(ffs), WithObs(obs.NewClusterObs(reg, 2)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if _, err := c.Write(0, "good", []byte("synced")); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncs(replicaScope(0))
	if _, err := c.Write(0, "doomed", []byte("x")); err == nil {
		t.Fatal("write acked despite a failed WAL sync")
	}
	if _, _, err := c.Read(0, "good"); err == nil {
		t.Fatal("fail-stopped replica still serves reads")
	}
	if got := reg.Total("repro_replica_failstop_total"); got != 1 {
		t.Fatalf("repro_replica_failstop_total = %v, want 1", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `reason="io-error"`) {
		t.Fatal("fail-stop not labelled reason=io-error")
	}

	// The disk is replaced; the identity revives from the synced prefix.
	ffs.Heal(replicaScope(0))
	if err := c.RestartFromDisk(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Read(0, "good"); err != nil || !ok || string(v) != "synced" {
		t.Fatalf("synced prefix not recovered: %q %v %v", v, ok, err)
	}
}

func TestDiskFullFailStopsWithDiskFullReason(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 12)
	reg := obs.NewRegistry()
	c := durableCluster(t, 2, dir, WithDurabilityFS(ffs), WithObs(obs.NewClusterObs(reg, 2)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if _, err := c.Write(0, "fits", []byte("small")); err != nil {
		t.Fatal(err)
	}
	ffs.SetByteBudget(replicaScope(0), 64)
	// Pump writes until the budget runs out; the replica must fail-stop
	// rather than ack a write its disk never accepted.
	var failed bool
	for i := 0; i < 64 && !failed; i++ {
		_, err := c.Write(0, fmt.Sprintf("fill%02d", i), bytes.Repeat([]byte("z"), 64))
		failed = err != nil
	}
	if !failed {
		t.Fatal("no write failed despite an exhausted byte budget")
	}
	if _, _, err := c.Read(0, "fits"); err == nil {
		t.Fatal("fail-stopped replica still serves reads")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `reason="disk-full"`) {
		t.Fatal("fail-stop not labelled reason=disk-full")
	}
	// Space is freed; recovery serves everything synced before the ENOSPC.
	ffs.SetByteBudget(replicaScope(0), -1)
	if err := c.RestartFromDisk(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Read(0, "fits"); err != nil || !ok || string(v) != "small" {
		t.Fatalf("synced prefix not recovered: %q %v %v", v, ok, err)
	}
}

// TestMaintenanceSyncFailureFailStops pins the maintenance half of the
// degradation policy: a replica whose disk dies while it only LEARNS
// entries (no local client writes, so no batch-path sync) must still
// fail-stop when the periodic maintenance sync trips the sticky error —
// not linger half-alive until the next client write finds the corpse.
func TestMaintenanceSyncFailureFailStops(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 13)
	c := durableCluster(t, 2, dir, WithDurabilityFS(ffs))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ffs.FailSyncs(replicaScope(1))
	// Write at replica 0; replica 1 learns the entry from propagation,
	// journals it, and its next maintenance sync hits the dead disk.
	if _, err := c.Write(0, "learned", []byte("elsewhere")); err != nil {
		t.Fatal(err)
	}
	waitDead(t, c, 1, 5*time.Second)

	// The acked write is untouched at its origin.
	if v, ok, err := c.Read(0, "learned"); err != nil || !ok || string(v) != "elsewhere" {
		t.Fatalf("origin lost an acked write: %q %v %v", v, ok, err)
	}
	// Heal + disk recovery: the replica re-learns what it lost via
	// anti-entropy.
	ffs.Heal(replicaScope(1))
	if err := c.RestartFromDisk(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok, _ := c.Read(1, "learned"); ok && string(v) == "elsewhere" {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("recovered replica never re-learned the entry")
}

// TestSlowDiskStallsSurfaceWithoutFailStop pins the degrade half: fsync
// latency slows acks but kills nothing, durable-before-visible holds, and
// the stall surfaces through repro_wal_sync_stall_seconds.
func TestSlowDiskStallsSurfaceWithoutFailStop(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 14)
	reg := obs.NewRegistry()
	c := durableCluster(t, 2, dir, WithDurabilityFS(ffs), WithObs(obs.NewClusterObs(reg, 2)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ffs.SetSyncDelay(replicaScope(0), 30*time.Millisecond, 0, 0)
	start := time.Now()
	if _, err := c.Write(0, "slow", []byte("but-durable")); err != nil {
		t.Fatalf("slow disk killed the write: %v", err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Fatalf("ack returned in %v — before the fsync stall completed", took)
	}
	if v, ok, err := c.Read(0, "slow"); err != nil || !ok || string(v) != "but-durable" {
		t.Fatalf("write not visible after ack: %q %v %v", v, ok, err)
	}
	if got := reg.Total("repro_wal_sync_stall_seconds"); got < 0.03 {
		t.Fatalf("repro_wal_sync_stall_seconds = %v, want >= 0.03", got)
	}
	if got := reg.Total("repro_replica_failstop_total"); got != 0 {
		t.Fatalf("slow disk fail-stopped a replica (%v fail-stops)", got)
	}
}

// TestPowerCutLosesNoAckedWrite cuts power on a whole durable cluster at an
// arbitrary moment under load and proves every acked write survives disk
// recovery.
func TestPowerCutLosesNoAckedWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 15)
	c := durableCluster(t, 2, dir, WithDurabilityFS(ffs))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const writes = 200
	for i := 0; i < writes; i++ {
		if _, err := c.Write(0, fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Power cut: both replicas die instantly, then the unsynced suffix of
	// every WAL file evaporates.
	for id := 0; id < 2; id++ {
		if err := c.Kill(NodeID(id)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.Cut("")
	for id := 0; id < 2; id++ {
		if err := c.RestartFromDisk(NodeID(id)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("k%03d", i)
		v, ok, err := c.Read(0, key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("acked write %s lost to the power cut: ok=%v v=%q", key, ok, v)
		}
	}
}
