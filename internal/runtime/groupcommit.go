package runtime

import (
	"errors"
	"math"
	"sync"
	"syscall"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/vclock"
)

// This file implements the client-plane write path: group commit.
//
// Concurrent Cluster.Write calls against one replica land in a per-replica
// combining queue. The first writer to find the queue leaderless becomes the
// commit leader: it drains the queue in batches, folds each batch into the
// node under ONE replica-lock acquisition via node.ClientWriteBatch (one
// write-log lock, one merged fast-offer fan-out), completes the waiting
// writers, and keeps draining until the queue is empty, at which point
// leadership lapses. Writers that find a leader already installed just park
// on their request's done channel — they never touch the replica lock.
//
// Batches form adaptively: under light load every batch has one write and
// the path degenerates to the old lock-per-write cost; under contention the
// batch size grows toward the number of concurrent writers, amortising the
// replica lock, the log lock, and the fan-out across all of them.

// writeReq is one client write parked in a replica's combining queue.
type writeReq struct {
	key   string
	value []byte

	// arrival stamps when the write entered the queue (UnixNano); the ack
	// points derive the batch head's sojourn — the admission controller's
	// congestion signal — from it. deadline is arrival+WriteDeadline when
	// deadlines are configured (0 otherwise): a request parked past it is
	// shed by the leader before it reaches the node or the WAL.
	arrival  int64
	deadline int64

	// Filled by the commit leader before signalling done. clock is the
	// entry's Lamport clock — the LWW order's major key — carried so
	// WriteReceipted can hand session clients the full version receipt.
	ts    vclock.Timestamp
	clock uint64
	err   error

	// done is buffered so the leader never blocks completing a request.
	done chan struct{}
}

// writeReqPool recycles requests (and their channels) across writes.
var writeReqPool = sync.Pool{
	New: func() any { return &writeReq{done: make(chan struct{}, 1)} },
}

// writeQueue is the per-replica write-combining ring: pending requests plus
// the leader flag that serialises commit duty.
type writeQueue struct {
	mu      sync.Mutex
	pending []*writeReq
	spare   []*writeReq // recycled batch buffer, swapped with pending
	leader  bool
}

// enqueue parks req, honouring the admission plane's hard bound: ok is
// false (and req is NOT parked) when max writes are already pending. On
// success, leader reports whether the caller must become the commit
// leader (true exactly when no leader was installed). The bound check
// rides the queue mutex the enqueue already takes, so it is exact and
// costs nothing extra.
func (q *writeQueue) enqueue(req *writeReq, max int) (leader, ok bool) {
	q.mu.Lock()
	if len(q.pending) >= max {
		q.mu.Unlock()
		return false, false
	}
	q.pending = append(q.pending, req)
	if !q.leader {
		q.leader = true
		q.mu.Unlock()
		return true, true
	}
	q.mu.Unlock()
	return false, true
}

// take returns the next batch to commit, or nil when the queue is empty — in
// which case leadership lapses and the caller must stop committing. The
// returned batch must be handed back via recycle.
func (q *writeQueue) take() []*writeReq {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		q.leader = false
		return nil
	}
	batch := q.pending
	if q.spare != nil {
		q.pending = q.spare[:0]
		q.spare = nil
	} else {
		q.pending = nil
	}
	return batch
}

// recycle returns a drained batch buffer for reuse, dropping request refs so
// pooled requests are not pinned.
func (q *writeQueue) recycle(batch []*writeReq) {
	for i := range batch {
		batch[i] = nil
	}
	q.mu.Lock()
	if q.spare == nil || cap(batch) > cap(q.spare) {
		q.spare = batch[:0]
	}
	q.mu.Unlock()
}

// maxLeaderStint bounds how many batches one client commits before the duty
// moves off its goroutine: combining must not turn one client's write into
// unbounded work on other clients' behalf (that is pure write-tail latency),
// but leadership cannot lapse while requests are parked. The bound is a
// latency/churn dial: small values spawn background committers more often
// under sustained load; 16 batches is tens of microseconds of donated time,
// far below scheduling noise, while keeping promotions rare.
const maxLeaderStint = 16

// commitLoop is the leader's duty cycle: drain and commit batches until the
// queue goes empty or the stint budget is spent — in which case the backlog
// is promoted to a transient background committer that retires as soon as
// the queue goes idle. A solo writer commits its own batch and leaves
// without ever spawning anything.
func (r *replica) commitLoop(c *Cluster) {
	if r.drain(c, maxLeaderStint) {
		return
	}
	if co := c.opts.obs; co != nil {
		co.LeaderPromotions.Inc()
	}
	go r.drain(c, math.MaxInt)
}

// drain commits up to n batches, reporting whether leadership was released
// (queue observed empty). Leadership stays held across the n-th batch so a
// caller that stops early can hand the backlog to another drainer. It never
// yields or sleeps between batches: parked writers wait on the drainer, so
// any pause here is pure write-tail latency.
func (r *replica) drain(c *Cluster, n int) bool {
	for i := 0; i < n; i++ {
		batch := r.wq.take()
		if batch == nil {
			return true
		}
		r.commitBatch(c, batch)
	}
	return false
}

// commitBatch folds one batch into the node under a single replica-lock
// acquisition, then makes it durable and visible in one of two ways:
//
// Pipelined (durable replica, ack worker running — the steady state): the
// leader captures the batch's covering WAL record and hands the completed
// batch to the replica's ack worker (ackrelease.go) BEFORE releasing the
// replica lock, so releases enter the FIFO in commit order. The fsync
// retires in the WAL's background sync stage, the replica lock is free
// while the disk works, and the worker releases acks and fan-out only
// after the covering sync completes — durable before visible, preserved
// per session, with multiple batches in flight.
//
// Inline (no durability, or no worker — before Start, after Stop): the
// batch is fsynced (once, for the whole batch) while the replica lock is
// still held, exactly the pre-pipeline protocol.
//
// Either way a sync FAILURE fail-stops the replica (see failStop): the
// batch's entries are in the in-memory log but can never reach disk, so
// letting the replica keep serving would leak them to peers and set up a
// reissued-timestamp divergence on the eventual restart. Entry-carrying
// anti-entropy traffic cannot outrun the pipeline: the run loop's egress
// gate (handle) holds such envelopes until the WAL watermark covers them.
func (r *replica) commitBatch(c *Cluster, batch []*writeReq) {
	co := c.opts.obs
	a := &r.adm
	var commitStart time.Time
	if co != nil || a.cfg.Target > 0 || a.cfg.WriteDeadline > 0 {
		commitStart = time.Now()
	}
	if a.cfg.WriteDeadline > 0 {
		if batch = r.expireBatch(batch, commitStart.UnixNano()); len(batch) == 0 {
			return
		}
	}
	r.mu.Lock()
	if r.dead {
		r.mu.Unlock()
		err := r.deadError()
		if co != nil {
			co.WriteErrors.Add(uint64(len(batch)))
		}
		for _, req := range batch {
			req.err = err
			req.done <- struct{}{}
		}
		r.wq.recycle(batch)
		return
	}
	ops := r.opsScratch[:0]
	for _, req := range batch {
		ops = append(ops, node.WriteOp{Key: req.key, Value: req.value})
	}
	entries, out := r.node.ClientWriteBatch(c.now(), ops)
	for i, req := range batch {
		req.ts = entries[i].TS
		req.clock = entries[i].Clock
	}
	// The batch is fully applied to the store; advance the applied
	// watermark under the same lock so session reads can trust it.
	r.applied.publish(r.node.Log())
	// Drop the client value refs before stashing the scratch buffer.
	for i := range ops {
		ops[i].Value = nil
	}
	r.opsScratch = ops[:0]
	id := r.node.ID()
	ep := r.ep
	if r.wal != nil {
		// A dead log (sticky error, or closed by a crash simulation)
		// rejects journal appends without advancing Records, so the
		// watermark below would be vacuously durable. Health-check first:
		// the batch's entries are in memory but can never reach disk —
		// the fail-stop case, exactly as if the inline sync had failed.
		if err := r.wal.Err(); err != nil {
			r.failStop(err)
			rejection := r.deadError()
			if co != nil {
				co.WriteErrors.Add(uint64(len(batch)))
			}
			for _, req := range batch {
				req.err = rejection
				req.done <- struct{}{}
			}
			r.wq.recycle(batch)
			return
		}
		rel := ackRelease{
			batch: batch,
			out:   out,
			rec:   r.wal.Records(),
			wal:   r.wal,
			ep:    ep,
			id:    id,
		}
		if co != nil {
			rel.start = commitStart
			rel.enq = time.Now()
		}
		if r.ackq.push(rel) {
			r.mu.Unlock()
			return
		}
		// No worker to serve the release: sync inline under the lock, the
		// pre-pipeline protocol.
		if syncErr := r.wal.Sync(); syncErr != nil {
			r.failStop(syncErr)
			rejection := r.deadError()
			if co != nil {
				co.WriteErrors.Add(uint64(len(batch)))
			}
			for _, req := range batch {
				req.err = rejection
				req.done <- struct{}{}
			}
			r.wq.recycle(batch)
			return
		}
	}
	r.mu.Unlock()

	r.observeSojourn(co, batch[0].arrival)
	for _, req := range batch {
		req.done <- struct{}{}
	}
	if co != nil {
		co.WritesAcked.Add(uint64(len(batch)))
		co.WriteBatches.Inc()
		co.BatchSize.Observe(float64(len(batch)))
		co.CommitSeconds.Observe(time.Since(commitStart).Seconds())
		c.goodput.RecordN(time.Now(), len(batch))
	}
	c.checkWatches(id)
	r.sendAllVia(ep, out)
	r.wq.recycle(batch)
}

// observeSojourn feeds one acked batch's head sojourn — arrival to ack,
// the queue wait plus commit plus the covering sync — into the admission
// controller and the sojourn histogram. Sojourn is measured at the ack
// point, not at commit pickup, because the pipelined commit drains the
// combining queue at memory speed: under a flood or a slow disk the
// backlog stands between commit and durable ack, and pickup-time sojourn
// would report an idle queue while clients wait unboundedly. Must be
// called BEFORE the batch's done channels fire: a completed request
// returns to the pool immediately.
func (r *replica) observeSojourn(co *obs.ClusterObs, arrival int64) {
	a := &r.adm
	if a.cfg.Target <= 0 && co == nil {
		return
	}
	now := time.Now().UnixNano()
	sojourn := time.Duration(now - arrival)
	a.observe(now, sojourn)
	if co != nil {
		co.SojournSeconds.Observe(sojourn.Seconds())
	}
}

// expireBatch sheds every request whose deadline lapsed while parked,
// completing it with a deadline OverloadError BEFORE any of the batch
// reaches the node or the WAL — an expired write is visibly rejected,
// never partially applied. It returns the live remainder in arrival
// order (so ops still align with the entries ClientWriteBatch returns)
// and recycles the buffer itself when nothing survives.
func (r *replica) expireBatch(batch []*writeReq, now int64) []*writeReq {
	live := batch[:0]
	for _, req := range batch {
		if req.deadline != 0 && now > req.deadline {
			req.err = r.shed(ShedDeadline)
			req.done <- struct{}{}
			continue
		}
		live = append(live, req)
	}
	// The in-place filter leaves stale refs past len(live); clear them so
	// recycle's spare buffer never pins pooled requests.
	for i := len(live); i < len(batch); i++ {
		batch[i] = nil
	}
	if len(live) == 0 {
		r.wq.recycle(live)
	}
	return live
}

// failStop crashes a durable replica whose WAL can no longer persist
// writes (disk full, IO error): the store pointer is retracted so reads
// fail, the endpoint closes so nothing already buffered escapes and peers
// mark it unreachable, the run goroutine is cancelled AND waited for
// (matching Kill — restart paths may run the moment dead is observed, and
// the old incarnation must not still be touching r.ep/r.wal), and the WAL
// is abandoned. The in-memory log may hold entries that never reached
// disk — the whole point is that no peer ever sees them, so
// RestartFromDisk later revives the identity from the synced prefix
// without timestamp reuse. Called with r.mu held; returns with it
// released.
func (r *replica) failStop(cause error) {
	r.dead = true
	// Publish the cause before any client can observe the dead state, so
	// every subsequent rejection carries the fail-stop reason (clients
	// distinguish shed-and-retry from gone-for-good).
	r.failCause.Store(&failStopInfo{reason: failStopReason(cause), cause: cause})
	r.store.Store(nil)
	id := r.node.ID()
	cancel, done, ep, w := r.cancel, r.done, r.ep, r.wal
	r.mu.Unlock()
	ep.Close()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		// The run goroutine takes r.mu (released above) to finish any
		// in-flight envelope, then exits on the cancelled context.
		<-done
	}
	if w != nil {
		w.Abandon()
	}
	if co := r.cluster.opts.obs; co != nil {
		co.Reg.Counter("repro_replica_failstop_total", failStopHelp,
			co.With(obs.L("replica", id.String()), obs.L("reason", failStopReason(cause)))...).Inc()
	}
	r.cluster.opts.tracer.Warnf(id, "replica fail-stopped: %v", cause)
}

// failStopHelp is shared between the eager family registration (obs.go) and
// the fail-stop increment so both resolve to the same series.
const failStopHelp = "Durable replicas fail-stopped because their WAL could no longer persist writes, by reason."

// failStopReason buckets a fail-stop cause for the metric's reason label:
// operators react differently to a full disk (free space, restart) than to
// a dying one (replace it).
func failStopReason(err error) string {
	if errors.Is(err, syscall.ENOSPC) {
		return "disk-full"
	}
	return "io-error"
}
