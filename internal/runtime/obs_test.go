package runtime

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/obs"
	"repro/internal/topology"
)

// startObsCluster builds a small observed cluster over a fresh registry.
func startObsCluster(t *testing.T, n int) (*Cluster, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	g := topology.Ring(n)
	field := make(demand.Static, n)
	for i := range field {
		field[i] = float64(i + 1)
	}
	c := New(g, field,
		WithSeed(91),
		WithSessionInterval(20*time.Millisecond),
		WithAdvertInterval(10*time.Millisecond),
		WithObs(obs.NewClusterObs(reg, n)),
	)
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c, reg
}

// TestObsWriteAccounting cross-checks the inline commit instruments and the
// polled node counters against ground truth: every acked write appears
// exactly once, and every non-origin replica records each write as either a
// propagation-lag sample or an explicit miss — nothing vanishes.
func TestObsWriteAccounting(t *testing.T) {
	const n, writes = 3, 20
	c, reg := startObsCluster(t, n)
	for i := 0; i < writes; i++ {
		origin := NodeID(i % n)
		if _, err := c.Write(origin, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("cluster did not converge")
	}

	if got := reg.Total("repro_client_writes_acked_total"); got != writes {
		t.Errorf("acked writes = %v, want %d", got, writes)
	}
	if got := reg.Total("repro_node_client_writes_total"); got != writes {
		t.Errorf("node client writes = %v, want %d", got, writes)
	}
	if got := reg.Total("repro_prop_stamps_total"); got != writes {
		t.Errorf("prop stamps = %v, want %d", got, writes)
	}
	// Each write is absorbed exactly once by each of the n-1 non-origin
	// replicas, and every absorption either measured a lag or counted a miss.
	absorbed := reg.Total("repro_node_entries_absorbed_total")
	if want := float64((n - 1) * writes); absorbed != want {
		t.Errorf("entries absorbed = %v, want %v", absorbed, want)
	}
	lag := reg.Total("repro_prop_lag_seconds")
	miss := reg.Total("repro_prop_misses_total")
	if lag+miss != absorbed {
		t.Errorf("lag samples %v + misses %v != absorbed %v", lag, miss, absorbed)
	}
	if lag == 0 {
		t.Error("no propagation-lag samples recorded")
	}
	// Commit-plane instruments: every batch observed once, each with size
	// and latency.
	batches := reg.Total("repro_commit_batches_total")
	if batches == 0 || batches > writes {
		t.Errorf("commit batches = %v, want in [1, %d]", batches, writes)
	}
	if got := reg.Total("repro_commit_batch_size"); got != batches {
		t.Errorf("batch-size samples = %v, want %v", got, batches)
	}
	if got := reg.Total("repro_commit_seconds"); got != batches {
		t.Errorf("commit-latency samples = %v, want %v", got, batches)
	}
	if got := reg.Total("repro_replicas"); got != n {
		t.Errorf("repro_replicas = %v, want %d", got, n)
	}
}

// TestObsReadPathZeroAllocs pins the acceptance criterion that enabling
// observability does not put allocations (or locks) on the lock-free read
// path: the polled store counters are only evaluated at scrape time.
func TestObsReadPathZeroAllocs(t *testing.T) {
	c, _ := startObsCluster(t, 3)
	if _, err := c.Write(1, "hot", []byte("value")); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, _, err := c.Read(1, "hot"); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Read with obs enabled allocates %v objects per op, want 0", got)
	}
}

// TestObsScrapeSurvivesChurn: the polled closures read replica state through
// pointers that swap on kill/restart, so a scrape must stay correct (and not
// panic) across the whole churn cycle.
func TestObsScrapeSurvivesChurn(t *testing.T) {
	c, reg := startObsCluster(t, 3)
	if _, err := c.Write(0, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	scrape := func() string {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if out := scrape(); !strings.Contains(out, `repro_replica_up{replica="n2"} 1`) {
		t.Fatalf("live replica not reported up:\n%s", out)
	}
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	if out := scrape(); !strings.Contains(out, `repro_replica_up{replica="n2"} 0`) {
		t.Errorf("killed replica still reported up")
	}
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	if out := scrape(); !strings.Contains(out, `repro_replica_up{replica="n2"} 1`) {
		t.Errorf("restarted replica not reported up")
	}
	// Writes after the restart keep feeding the same series (registration
	// is idempotent; the restarted node carries the observer again).
	before := reg.Total("repro_client_writes_acked_total")
	if _, err := c.Write(2, "k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got := reg.Total("repro_client_writes_acked_total"); got != before+1 {
		t.Errorf("acked = %v after post-restart write, want %v", got, before+1)
	}
}
