package runtime

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/demand"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/topology"
	"repro/internal/transport"
)

// NewTCP assembles a cluster whose replicas talk over real TCP sockets on
// the loopback (or any) interface: one listener per replica, peers wired
// according to the graph's edges. It exercises the full wire codec and
// framing path end to end.
//
// The caller still drives the cluster through the normal Start/Stop/Write
// API. Addresses are chosen by the kernel (port 0) on addrHost, e.g.
// "127.0.0.1".
func NewTCP(g *topology.Graph, field demand.Field, addrHost string, opts ...Option) (*Cluster, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	c := &Cluster{
		opts:     o,
		graph:    g,
		field:    field,
		absorbed: store.New(),
		// net stays nil for TCP clusters; Stop closes endpoints directly.
	}
	topts := o.tcpOpts
	if co := o.obs; co != nil {
		c.goodput = newDemandMeter(time.Second)
		// Stalled sends feed the stall-duration histogram whether the
		// envelope squeezed in late or was dropped: the wait itself is the
		// backpressure signal a saturated peer emits.
		stallSeconds := co.Reg.Histogram("repro_tcp_send_stall_seconds",
			"Time sends spent blocked on a full TCP peer queue before enqueueing late or dropping.",
			obs.LatencyBuckets, co.Labels...)
		topts = append(append([]transport.TCPOption(nil), topts...),
			transport.WithStallObserver(func(wait time.Duration, dropped bool) {
				stallSeconds.Observe(wait.Seconds())
			}))
	}
	endpoints := make([]*transport.TCP, g.N())
	for i := 0; i < g.N(); i++ {
		ep, err := transport.ListenTCP(NodeID(i), addrHost+":0", topts...)
		if err != nil {
			for _, prev := range endpoints[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("runtime: replica %d: %w", i, err)
		}
		endpoints[i] = ep
	}
	// Wire peers along graph edges (both directions).
	for i := 0; i < g.N(); i++ {
		for _, nb := range g.Neighbors(NodeID(i)) {
			endpoints[i].AddPeer(nb, endpoints[nb].Addr())
		}
	}
	for i := 0; i < g.N(); i++ {
		id := NodeID(i)
		nbrs := g.NeighborsCopy(id)
		r := &replica{
			cluster: c,
			id:      id,
			rng:     rand.New(rand.NewSource(o.seed + int64(i)*7919)),
			ep:      endpoints[i],
			adm:     admission{cfg: o.admission},
		}
		rec := c.openReplicaWAL(r, id)
		r.node = node.New(node.Config{
			ID:        id,
			Neighbors: nbrs,
			Selector:  o.policy(id, nbrs),
			FastPush:  o.fastPush,
			FanOut:    o.fanOut,
			Demand:    demandSource(&o, r, field, id),
			Observer:  nodeObserver(&o, id),
		})
		r.finishReplicaDurability(rec)
		r.store.Store(r.node.Store())
		c.replicas = append(c.replicas, r)
	}
	if c.initErr != nil {
		for _, ep := range endpoints {
			ep.Close()
		}
		return nil, c.initErr
	}
	c.registerObs()
	return c, nil
}
