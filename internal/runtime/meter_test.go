package runtime

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/topology"
)

func TestDemandMeterSteadyRate(t *testing.T) {
	m := newDemandMeter(time.Second)
	start := time.Now()
	// 100 requests/second for 5 simulated seconds.
	for i := 0; i < 500; i++ {
		m.Record(start.Add(time.Duration(i) * 10 * time.Millisecond))
	}
	got := m.Rate(start.Add(5 * time.Second))
	if math.Abs(got-100) > 15 {
		t.Errorf("steady-state rate = %.1f, want ~100", got)
	}
}

func TestDemandMeterDecays(t *testing.T) {
	m := newDemandMeter(time.Second)
	start := time.Now()
	for i := 0; i < 100; i++ {
		m.Record(start.Add(time.Duration(i) * 10 * time.Millisecond))
	}
	busy := m.Rate(start.Add(time.Second))
	idle := m.Rate(start.Add(6 * time.Second)) // 5 tau later
	if idle > busy/50 {
		t.Errorf("rate did not decay: busy=%.1f idle=%.1f", busy, idle)
	}
}

func TestDemandMeterZeroAtStart(t *testing.T) {
	m := newDemandMeter(time.Second)
	if got := m.Rate(time.Now()); got != 0 {
		t.Errorf("fresh meter rate = %g, want 0", got)
	}
	// Defaulted tau on non-positive input.
	m2 := newDemandMeter(0)
	m2.Record(time.Now())
	if m2.Rate(time.Now()) <= 0 {
		t.Error("defaulted meter should still measure")
	}
}

func TestDemandMeterNonMonotonicClockSafe(t *testing.T) {
	m := newDemandMeter(time.Second)
	now := time.Now()
	m.Record(now)
	m.Record(now.Add(-time.Second)) // clock went backwards
	if got := m.Rate(now); got < 0 {
		t.Errorf("negative rate %g after clock skew", got)
	}
}

func TestDemandMeterClockWrap(t *testing.T) {
	// The packed 32-bit millisecond clock wraps every ~49.7 days. A gap
	// longer than half the wrap period must resolve as a full decay (the
	// meter was idle for weeks), and recording across the exact wrap point
	// must keep decaying normally — never freeze.
	m := newDemandMeter(time.Second)
	base := m.created

	// Idle for ~25 days: rate must read ~0 afterwards, not a stale burst.
	for i := 0; i < 100; i++ {
		m.Record(base.Add(time.Duration(i) * time.Millisecond))
	}
	idle := base.Add((1<<31 + 500) * time.Millisecond)
	m.Record(idle)
	if got := m.Rate(idle); got > 2.1 { // ≈ the single fresh request / tau
		t.Errorf("rate after 25-day idle = %g, want ~1 (full decay)", got)
	}

	// Cross the wrap point: walk the decay reference up to just below 2^32
	// ms in sub-half-wrap steps (as any live meter would), then record past
	// the wrap. Decay must continue with the true (small) elapsed time.
	m2 := newDemandMeter(time.Second)
	nearWrap := m2.created.Add((1<<32 - 1000) * time.Millisecond)
	for d := 10; d <= 40; d += 10 {
		m2.Record(m2.created.Add(time.Duration(d) * 24 * time.Hour))
	}
	for i := 0; i < 100; i++ {
		m2.Record(nearWrap)
	}
	afterWrap := nearWrap.Add(2 * time.Second) // ms counter wrapped past 0
	m2.Record(afterWrap)
	got := m2.Rate(afterWrap)
	want := 101*math.Exp(-2) + 1 // burst decayed 2s + 1 fresh, over tau=1
	if math.Abs(got-want) > want/2 {
		t.Errorf("rate across clock wrap = %g, want ~%g (decay continues)", got, want)
	}
}

func TestDemandMeterConcurrent(t *testing.T) {
	// 8 goroutines draw timestamps from one shared, strictly advancing
	// clock: 16000 requests spaced 1ms apart = 1000 req/s over 16s. The
	// CAS-based meter must land near the true rate despite every record
	// racing decay steps, and -race must stay silent.
	const (
		goroutines = 8
		perG       = 2000
		spacing    = time.Millisecond
	)
	m := newDemandMeter(time.Second)
	start := time.Now()
	var tick atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := tick.Add(1)
				m.Record(start.Add(time.Duration(k) * spacing))
			}
		}()
	}
	wg.Wait()
	end := start.Add(time.Duration(goroutines*perG) * spacing)
	got := m.Rate(end)
	want := 1.0 / spacing.Seconds()
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("concurrent rate = %.1f req/s, want %.0f ±15%%", got, want)
	}

	// Rate is a pure read: concurrent Rate calls during recording must also
	// be race-free (exercised above only sequentially).
	var wg2 sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg2.Add(1)
		go func(g int) {
			defer wg2.Done()
			for i := 0; i < 1000; i++ {
				if g%2 == 0 {
					m.Record(end.Add(time.Duration(i) * spacing))
				} else if r := m.Rate(end.Add(time.Duration(i) * spacing)); r < 0 {
					t.Errorf("negative rate %g", r)
				}
			}
		}(g)
	}
	wg2.Wait()
}

func TestMeasuredDemandDrivesTables(t *testing.T) {
	// Node 1 receives heavy client traffic; its neighbours' demand tables
	// must learn that through measured-demand advertisements, with no
	// oracle field involved (the field is flat).
	g := topology.Line(3)
	flat := demand.Static{1, 1, 1}
	c := startCluster(t, g, flat,
		WithSeed(41),
		WithMeasuredDemand(500*time.Millisecond),
		WithAdvertInterval(5*time.Millisecond),
		WithSessionInterval(50*time.Millisecond))

	// Hammer reads at replica 1.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, _, err := c.Read(1, "any"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	// Replica 0's table should now rate replica 1 well above zero.
	got := c.replicas[0].node.Table().Demand(1)
	if got < 10 {
		t.Errorf("advertised measured demand = %.1f req/s, want > 10", got)
	}
}

func TestMeasuredDemandRoutesUpdates(t *testing.T) {
	// Star topology: centre 0, leaves 1..4. Leaf 3 gets all the client
	// traffic; a write at leaf 1 should fast-push through the centre to
	// leaf 3 before the other (idle) leaves on average.
	adjStar := topology.Star(5)
	flat := demand.Static{1, 1, 1, 1, 1}
	c := startCluster(t, adjStar, flat,
		WithSeed(43),
		WithMeasuredDemand(time.Second),
		WithAdvertInterval(5*time.Millisecond),
		WithSessionInterval(60*time.Millisecond))

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				c.Read(3, "any")
				time.Sleep(time.Millisecond)
			}
		}
	}()
	time.Sleep(60 * time.Millisecond) // let adverts propagate the hot spot

	ts, err := c.Write(1, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	w := c.Watch(ts)
	select {
	case <-w.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("watch never completed")
	}
	close(stop)
	<-done

	t3, _ := w.TimeOf(3)
	t2, ok2 := w.TimeOf(2)
	t4, ok4 := w.TimeOf(4)
	if !ok2 || !ok4 {
		t.Fatal("watch missing leaves")
	}
	if t3 > t2 && t3 > t4 {
		t.Errorf("hot leaf arrived last: hot=%v idle=%v,%v", t3, t2, t4)
	}
}
