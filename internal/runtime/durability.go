package runtime

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/node"
	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/wal"
	"repro/internal/wlog"
)

// This file wires the durable persistence plane (internal/wal) into the
// live cluster.
//
// With WithDurability(dir) every replica keeps a segmented write-ahead log
// plus snapshot under dir/n<id>. The flow:
//
//   - Every mutation of the replica's write log and store is journaled
//     through the node.Journal hook, under the replica lock, so the WAL
//     sees mutations in exactly the order the replica applied them.
//
//   - Client writes become durable before they become visible: the
//     group-commit leader fsyncs the batch (one fsync per batch, not per
//     write) while still holding the replica lock, so no anti-entropy
//     session can serve an entry that could still be lost in a crash, and
//     every acknowledged write is on disk before its client unblocks.
//
//   - Entries learned from peers are journaled buffered and reach disk
//     with the next batch fsync or the periodic maintenance sync; losing
//     the tail in a crash is safe because anti-entropy re-fetches it (the
//     recovered summary regresses only for *remote* origins, never for the
//     replica's own writes).
//
//   - A maintenance ticker per replica syncs the buffer, and — when enough
//     log has accumulated (wal.Options.SnapshotBytes) — captures a
//     consistent (summary, store, clock) image under the replica lock,
//     saves it as the new snapshot, and lets the WAL compact sealed
//     segments the snapshot subsumes. The persisted snapshot also becomes
//     the in-memory write log's truncation floor (wlog.LimitTruncation):
//     in-memory compaction can never drop entries newer than what the
//     snapshot persists, so disk recovery is always complete.
//
//   - Kill abandons the WAL without flushing (the SIGKILL simulation);
//     RestartFromDisk reopens it, replays snapshot + surviving records
//     into a fresh node, and the replica re-enters propagation without a
//     full peer bootstrap. Stop closes WALs cleanly (flush + fsync).

// WithDurability enables the durable persistence plane: every replica
// keeps a segmented on-disk WAL and snapshot under dir/n<id>, client
// writes are acknowledged only after their group-committed batch is
// fsynced, and replicas recover their state from disk — at construction
// (cold start over an existing dir) or via Cluster.RestartFromDisk after a
// Kill. With durability off (the default) nothing touches disk.
func WithDurability(dir string) Option {
	return func(o *options) { o.durDir = dir }
}

// WithDurabilityTuning overrides the WAL configuration for durable
// clusters: geometry (segment size, snapshot cadence) and the pipelined
// sync stage's knobs (segment preallocation, fsync-coalescing window,
// O_DSYNC). It replaces the runtime's defaults wholesale — including the
// default-on segment preallocation — so pass exactly the configuration you
// want. Only meaningful alongside WithDurability.
func WithDurabilityTuning(opts wal.Options) Option {
	return func(o *options) { o.walOpts = opts }
}

// WithDurabilityFS runs every replica's WAL on fsys instead of the real
// filesystem. The chaos harness and tests inject a vfs.FaultFS here to
// model slow, lying, and dying disks; production clusters omit it (vfs.OS).
//
// The degradation policy under injected (or real) disk faults:
//
//   - Slow disk (fsync stalls): acks slow down — durable-before-visible is
//     never relaxed — and the stall surfaces as repro_wal_sync_stall_seconds.
//   - Failed sync, batch path: the group-commit leader fail-stops the
//     replica before any ack or fan-out (see commitBatch).
//   - Failed sync, maintenance path: the WAL error is sticky, so the
//     replica fail-stops immediately rather than waiting for the next
//     client batch to trip over it (see walMaintain).
func WithDurabilityFS(fsys vfs.FS) Option {
	return func(o *options) { o.walFS = fsys }
}

// walMaintenanceInterval is how often each durable replica syncs its WAL
// buffer (bounding the at-risk window for peer-learned entries) and checks
// whether a snapshot is due.
const walMaintenanceInterval = 250 * time.Millisecond

// walDir returns replica id's WAL directory under the cluster data dir.
func walDir(base string, id NodeID) string {
	return filepath.Join(base, fmt.Sprintf("n%d", id))
}

// walJournal adapts a wal.Log to the node.Journal hook. Append errors are
// sticky inside the wal and surface at the next Sync — the ack path — so
// the hook itself stays error-free, as node requires.
type walJournal struct{ w *wal.Log }

func (j walJournal) JournalEntries(entries []wlog.Entry) { _ = j.w.Append(entries) }

func (j walJournal) JournalAdopt(summary *vclock.Summary, items []store.Item, clock uint64) {
	_ = j.w.AppendAdopt(summary, items, clock)
}

// openReplicaWAL opens (or recovers) replica id's WAL during cluster
// construction. On success r.wal is set and the recovery is returned for
// the caller to replay once the node exists. On failure the error is
// recorded on the cluster and surfaced by Start.
func (c *Cluster) openReplicaWAL(r *replica, id NodeID) *wal.Recovery {
	if c.opts.durDir == "" || c.initErr != nil {
		return nil
	}
	w, rec, err := wal.Open(walDir(c.opts.durDir, id), c.opts.walOptions())
	if err != nil {
		c.initErr = fmt.Errorf("runtime: replica %v durability: %w", id, err)
		return nil
	}
	w.StartPipeline()
	r.wal = w
	return rec
}

// finishReplicaDurability replays a recovery into the freshly built node
// (journal still detached, so nothing is re-journaled), then attaches the
// journal and pins the in-memory log's truncation floor to the persisted
// snapshot.
func (r *replica) finishReplicaDurability(rec *wal.Recovery) {
	if r.wal == nil {
		return
	}
	if !rec.Empty() {
		replayRecovery(r.node, rec)
	}
	r.node.AttachJournal(walJournal{r.wal})
	r.node.Log().LimitTruncation(rec.Snapshot)
}

// replayRecovery folds a WAL recovery into a fresh node, in disk order:
// snapshot image first, then every surviving record.
func replayRecovery(n *node.Node, rec *wal.Recovery) {
	n.Bootstrap(rec.Snapshot, rec.Items, rec.Clock)
	for _, step := range rec.Steps {
		if step.Adopt != nil {
			n.Bootstrap(step.Adopt.Summary, step.Adopt.Items, step.Adopt.Clock)
			continue
		}
		n.Replay(step.Entries)
	}
}

// RestartFromDisk brings a killed durable replica back from its on-disk
// state: the WAL is reopened, the snapshot and every surviving record
// replay into a fresh node under the same identity, and the replica
// rejoins propagation owing its peers only the entries that arrived while
// it was down — no full peer bootstrap. Acknowledged client writes were
// fsynced before their ack and before any peer could see them, so they
// always survive this path; peer-learned entries buffered but not yet
// synced at the crash re-arrive through normal anti-entropy.
//
// It requires a durable, memory-backed cluster and a replica killed by
// Kill (or found dead).
func (c *Cluster) RestartFromDisk(id NodeID) error {
	if int(id) < 0 || int(id) >= len(c.replicas) {
		return fmt.Errorf("runtime: no replica %v", id)
	}
	if c.opts.durDir == "" {
		return fmt.Errorf("runtime: replica %v has no durability (use WithDurability)", id)
	}
	if c.net == nil {
		return fmt.Errorf("runtime: restart unsupported on TCP clusters")
	}
	c.mu.Lock()
	started, stopped := c.started, c.stopped
	ctx := c.ctx
	c.mu.Unlock()
	if !started || stopped {
		return fmt.Errorf("runtime: cluster not running")
	}
	r := c.replicas[id]
	// The whole revival — including wal.Open, which creates (and would
	// truncate) the next active segment file — runs under r.mu after the
	// dead-check, so a racing restart can never have this path touch the
	// files of a replica that is already alive again.
	r.mu.Lock()
	if !r.dead {
		r.mu.Unlock()
		return fmt.Errorf("runtime: replica %v is alive", id)
	}
	w, rec, err := wal.Open(walDir(c.opts.durDir, id), c.opts.walOptions())
	if err != nil {
		r.mu.Unlock()
		return fmt.Errorf("runtime: replica %v recovery: %w", id, err)
	}
	w.StartPipeline()
	nbrs := c.graph.NeighborsCopy(id)
	n := node.New(node.Config{
		ID:        id,
		Neighbors: nbrs,
		Selector:  c.opts.policy(id, nbrs),
		FastPush:  c.opts.fastPush,
		FanOut:    c.opts.fanOut,
		Demand:    demandSource(&c.opts, r, c.field, id),
		Observer:  nodeObserver(&c.opts, id),
	})
	replayRecovery(n, rec)
	n.AttachJournal(walJournal{w})
	n.Log().LimitTruncation(rec.Snapshot)
	// Content handed in via ApplySnapshot while this replica was down lives
	// in no WAL record of ours; re-absorb (and journal) it now.
	if items := c.absorbed.Snapshot(); len(items) > 0 {
		n.AbsorbItems(items)
	}
	r.node = n
	r.wal = w
	r.ep = c.net.Attach(id)
	r.dead = false
	// Re-seed the applied watermark from the recovered log before the
	// store is published (see the replica.applied field doc).
	r.applied.reset(r.node.Log())
	r.store.Store(r.node.Store())
	r.mu.Unlock()
	r.spawn(ctx, &c.wg)
	// Leveled reads parked on this replica may already be satisfied by the
	// recovered coverage.
	c.signalFresh(id)
	return nil
}

// walMaintain is the durable replica's periodic housekeeping: sync the WAL
// buffer, and when enough log has accumulated, capture a consistent state
// image and roll it into a new snapshot (which compacts sealed segments
// and advances the in-memory truncation floor).
func (r *replica) walMaintain() {
	w := r.wal
	if w == nil {
		return
	}
	if err := w.Sync(); err != nil {
		// The WAL error is sticky: nothing this replica buffers can ever
		// reach disk again, so fail-stop now instead of letting the next
		// client batch trip over it. walMaintain runs ON the replica's run
		// goroutine and failStop joins that goroutine, so the crash must be
		// delivered from outside it. The dead-check re-runs under r.mu in
		// case a batch-path fail-stop (or Kill) won the race.
		go func() {
			r.mu.Lock()
			if r.dead {
				r.mu.Unlock()
				return
			}
			r.failStop(err)
		}()
		return
	}
	if !w.SnapshotDue() {
		return
	}
	r.mu.Lock()
	if r.dead {
		r.mu.Unlock()
		return
	}
	// Everything journaled so far happened under this lock, so the record
	// index and the state image are a consistent pair.
	upTo := w.Records()
	sum := r.node.Summary()
	items := r.node.Store().Snapshot()
	clk := r.node.Clock()
	lg := r.node.Log()
	r.mu.Unlock()
	if err := w.SaveSnapshot(upTo, sum, items, clk); err != nil {
		return
	}
	lg.LimitTruncation(sum)
}
