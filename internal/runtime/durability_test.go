package runtime

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/topology"
	"repro/internal/wal"
)

// durableCluster builds a small durable complete-graph cluster over dir.
func durableCluster(t *testing.T, n int, dir string, extra ...Option) *Cluster {
	t.Helper()
	opts := append([]Option{
		WithDurability(dir),
		WithSessionInterval(10 * time.Millisecond),
		WithAdvertInterval(5 * time.Millisecond),
		WithSeed(7),
	}, extra...)
	return New(topology.Complete(n), demand.Static{1, 1, 1}[:n], opts...)
}

func TestAckedWritesSurviveKillAndRestartFromDisk(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, 3, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	const writes = 64
	for i := 0; i < writes; i++ {
		if _, err := c.Write(0, fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Kill every replica: recovery can only come from replica 0's disk.
	for id := 0; id < 3; id++ {
		if err := c.Kill(NodeID(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RestartFromDisk(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("k%02d", i)
		v, ok, err := c.Read(0, key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("acked write %s lost across crash: ok=%v v=%q", key, ok, v)
		}
	}
}

func TestRestartFromDiskRejoinsPropagation(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, 3, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if _, err := c.Write(1, "before", []byte("x")); err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if !c.WaitConverged(wctx) {
		t.Fatal("did not converge before kill")
	}
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	// Writes replica 1 misses while down.
	ts, err := c.Write(0, "while-down", []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestartFromDisk(1); err != nil {
		t.Fatal(err)
	}
	// The recovered replica still has its pre-crash converged state...
	if v, ok, err := c.Read(1, "before"); err != nil || !ok || string(v) != "x" {
		t.Fatalf("pre-crash state not recovered: %q %v %v", v, ok, err)
	}
	// ...and catches up on what it missed through normal anti-entropy, not
	// a full-state bootstrap.
	w := c.Watch(ts)
	select {
	case <-w.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("recovered replica did not catch up on missed writes")
	}
	if st := c.Stats(1); st.SnapshotsReceived != 0 {
		t.Fatalf("recovery fell back to a full-state transfer (%d snapshots)", st.SnapshotsReceived)
	}
}

func TestColdStartRecoversFromDisk(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	c := durableCluster(t, 2, dir)
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(0, "persistent", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	if !c.WaitConverged(wctx) {
		t.Fatal("no convergence")
	}
	wcancel()
	c.Stop() // clean shutdown: WALs flushed and closed

	// A brand-new cluster over the same directory recovers at construction:
	// reads serve even before Start.
	c2 := durableCluster(t, 2, dir)
	defer c2.Stop()
	for id := 0; id < 2; id++ {
		v, ok, err := c2.Read(NodeID(id), "persistent")
		if err != nil || !ok || string(v) != "yes" {
			t.Fatalf("replica %d cold-start recovery: %q %v %v", id, v, ok, err)
		}
	}
}

func TestRestartFromDiskErrors(t *testing.T) {
	// Not durable.
	c := New(topology.Complete(2), demand.Static{1, 1})
	if err := c.RestartFromDisk(0); err == nil {
		t.Fatal("RestartFromDisk on a non-durable cluster succeeded")
	}
	// Durable but alive.
	dir := t.TempDir()
	cd := durableCluster(t, 2, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cd.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cd.Stop()
	if err := cd.RestartFromDisk(0); err == nil {
		t.Fatal("RestartFromDisk on a live replica succeeded")
	}
	if err := cd.RestartFromDisk(9); err == nil {
		t.Fatal("RestartFromDisk on an unknown replica succeeded")
	}
}

func TestEmptyStateRestartWipesDisk(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, 3, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if _, err := c.Write(0, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	conv := c.WaitConverged(wctx)
	wcancel()
	if !conv {
		t.Fatal("no convergence")
	}
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	// Empty-state restart is a real state loss: the old WAL is removed and
	// the peer-bootstrap image becomes the new disk baseline.
	if err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Read(0, "k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("peer bootstrap did not restore content: %q %v %v", v, ok, err)
	}
	// The new baseline must survive a subsequent crash+disk recovery.
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartFromDisk(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Read(0, "k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("bootstrap baseline lost across crash: %q %v %v", v, ok, err)
	}
}

func TestDurableRestartPreservingBridgesDisk(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, 2, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if _, err := c.Write(0, "kept", []byte("ram")); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartPreserving(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Read(0, "kept"); err != nil || !ok || string(v) != "ram" {
		t.Fatalf("preserved state missing: %q %v %v", v, ok, err)
	}
	// And the preserved state was re-journaled: crash again, recover from
	// disk alone.
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartFromDisk(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Read(0, "kept"); err != nil || !ok || string(v) != "ram" {
		t.Fatalf("preserved state not on disk: %q %v %v", v, ok, err)
	}
}

func TestSnapshotRolloverAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny geometry so the maintenance ticker rolls snapshots quickly.
	c := durableCluster(t, 2, dir, WithDurabilityTuning(wal.Options{
		SegmentBytes:  4 << 10,
		SnapshotBytes: 8 << 10,
	}))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	val := make([]byte, 256)
	for i := 0; i < 200; i++ {
		if _, err := c.Write(0, fmt.Sprintf("key%03d", i%32), val); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for at least one maintenance pass to save a snapshot.
	deadline := time.Now().Add(5 * time.Second)
	snapPath := filepath.Join(walDir(dir, 0), "snapshot.wal")
	for {
		if _, err := os.Stat(snapPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("maintenance never saved a snapshot")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Crash and recover: snapshot + surviving segments must reproduce all
	// acked writes.
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartFromDisk(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, ok, err := c.Read(0, fmt.Sprintf("key%03d", i)); err != nil || !ok {
			t.Fatalf("key%03d lost across snapshot-compacted recovery (%v)", i, err)
		}
	}
}

func TestDurabilityOpenErrorSurfacesAtStart(t *testing.T) {
	// A file where the data dir should be makes wal.Open fail.
	base := t.TempDir()
	bad := filepath.Join(base, "data")
	if err := os.WriteFile(bad, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(topology.Complete(2), demand.Static{1, 1}, WithDurability(bad))
	if err := c.Start(context.Background()); err == nil {
		c.Stop()
		t.Fatal("Start succeeded over an unusable data dir")
	}
}

// TestRestartAliveDoesNotTouchDisk pins the guard order: restart paths
// must refuse an alive replica BEFORE any destructive disk work, so a
// lost race (or an operator slip) can never wipe a live replica's WAL.
func TestRestartAliveDoesNotTouchDisk(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, 2, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, err := c.Write(0, "precious", []byte("state")); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(0); err == nil {
		t.Fatal("Restart on an alive replica succeeded")
	}
	if err := c.RestartFromDisk(0); err == nil {
		t.Fatal("RestartFromDisk on an alive replica succeeded")
	}
	// The live replica's durable state must be fully intact: crash every
	// replica and recover 0 from disk alone.
	for id := 0; id < 2; id++ {
		if err := c.Kill(NodeID(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RestartFromDisk(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Read(0, "precious"); err != nil || !ok || string(v) != "state" {
		t.Fatalf("durable state damaged by refused restart: %q %v %v", v, ok, err)
	}
}

// TestSyncFailureFailStops pins the fail-stop contract: when a durable
// replica's WAL can no longer persist (simulated by abandoning it out of
// band — the moral equivalent of a dead disk), a write must fail, the
// replica must stop serving entirely, and the unsynced write must never
// reach a peer — so a later disk recovery cannot set up timestamp reuse.
func TestSyncFailureFailStops(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, 2, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if _, err := c.Write(0, "good", []byte("synced")); err != nil {
		t.Fatal(err)
	}
	// The disk dies under replica 0.
	c.replicas[0].wal.Abandon()
	if _, err := c.Write(0, "doomed", []byte("never-durable")); err == nil {
		t.Fatal("write acked despite a failed WAL sync")
	}
	// Fail-stop: reads at the replica now fail, like a crash.
	if _, _, err := c.Read(0, "good"); err == nil {
		t.Fatal("fail-stopped replica still serves reads")
	}
	// The doomed write never escaped to the peer.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok, _ := c.Read(1, "doomed"); ok {
			t.Fatal("unsynced write leaked to a peer after a failed sync")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Disk recovery revives the identity from the synced prefix.
	if err := c.RestartFromDisk(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Read(0, "good"); err != nil || !ok || string(v) != "synced" {
		t.Fatalf("synced prefix not recovered: %q %v %v", v, ok, err)
	}
	if _, err := c.Write(0, "after", []byte("recovered")); err != nil {
		t.Fatalf("recovered replica rejects writes: %v", err)
	}
}
