package runtime

import (
	"context"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/topology"
)

func TestKillAndRestartRecoversState(t *testing.T) {
	g := topology.Ring(5)
	field := demand.Uniform(5, 1, 20, randSource(51))
	c := startCluster(t, g, field,
		WithSeed(53), WithSessionInterval(15*time.Millisecond),
		WithAdvertInterval(5*time.Millisecond))

	// Seed some content and converge.
	for i := 0; i < 4; i++ {
		if _, err := c.Write(0, "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("initial convergence failed")
	}

	// Crash replica 2.
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	if c.Alive(2) {
		t.Fatal("killed replica reports alive")
	}
	if _, err := c.Write(2, "k", nil); err == nil {
		t.Error("write to dead replica should error")
	}
	if err := c.Kill(2); err == nil {
		t.Error("double kill should error")
	}

	// The remaining replicas keep making progress without it.
	ts, err := c.Write(0, "during-outage", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel2()
	if !c.WaitConverged(ctx2) {
		t.Fatal("live replicas did not converge during the outage")
	}

	// Restart empty; anti-entropy must refill it, including the write made
	// during the outage.
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(2); err == nil {
		t.Error("restart of a live replica should error")
	}
	deadline := time.Now().Add(20 * time.Second)
	for !c.Covers(2, ts) {
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Digest(2) != c.Digest(0) {
		t.Error("restarted replica's store differs")
	}
}

func TestRestartAfterTruncationUsesSnapshot(t *testing.T) {
	g := topology.Ring(4)
	field := demand.Uniform(4, 1, 20, randSource(57))
	c := startCluster(t, g, field,
		WithSeed(59), WithSessionInterval(10*time.Millisecond),
		WithAdvertInterval(5*time.Millisecond))

	for i := 0; i < 8; i++ {
		if _, err := c.Write(0, "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("initial convergence failed")
	}

	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	// Survivors truncate aggressively: entry replay to an empty node is now
	// impossible; recovery must use a snapshot.
	if got := c.TruncateLogs(1); got == 0 {
		t.Fatal("truncation discarded nothing")
	}
	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for c.Digest(1) != c.Digest(0) {
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never recovered via snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Stats(1).SnapshotsReceived; got == 0 {
		t.Error("recovery did not use the snapshot path")
	}
}

func TestKillValidation(t *testing.T) {
	g := topology.Line(2)
	c := New(g, demand.Static{1, 1})
	if err := c.Kill(0); err == nil {
		t.Error("Kill before Start should error")
	}
	if err := c.Kill(99); err == nil {
		t.Error("Kill of unknown replica should error")
	}
	if err := c.Restart(0); err == nil {
		t.Error("Restart before Start should error")
	}
	if c.Alive(99) {
		t.Error("unknown replica reports alive")
	}
}
