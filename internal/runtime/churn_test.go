package runtime

import (
	"context"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/topology"
)

func TestKillAndRestartRecoversState(t *testing.T) {
	g := topology.Ring(5)
	field := demand.Uniform(5, 1, 20, randSource(51))
	c := startCluster(t, g, field,
		WithSeed(53), WithSessionInterval(15*time.Millisecond),
		WithAdvertInterval(5*time.Millisecond))

	// Seed some content and converge.
	for i := 0; i < 4; i++ {
		if _, err := c.Write(0, "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("initial convergence failed")
	}

	// Crash replica 2.
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	if c.Alive(2) {
		t.Fatal("killed replica reports alive")
	}
	if _, err := c.Write(2, "k", nil); err == nil {
		t.Error("write to dead replica should error")
	}
	if err := c.Kill(2); err == nil {
		t.Error("double kill should error")
	}

	// The remaining replicas keep making progress without it.
	ts, err := c.Write(0, "during-outage", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel2()
	if !c.WaitConverged(ctx2) {
		t.Fatal("live replicas did not converge during the outage")
	}

	// Restart empty; anti-entropy must refill it, including the write made
	// during the outage.
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(2); err == nil {
		t.Error("restart of a live replica should error")
	}
	deadline := time.Now().Add(20 * time.Second)
	for !c.Covers(2, ts) {
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Digest(2) != c.Digest(0) {
		t.Error("restarted replica's store differs")
	}
}

func TestRestartAfterTruncationBootstraps(t *testing.T) {
	g := topology.Ring(4)
	field := demand.Uniform(4, 1, 20, randSource(57))
	c := startCluster(t, g, field,
		WithSeed(59), WithSessionInterval(10*time.Millisecond),
		WithAdvertInterval(5*time.Millisecond))

	for i := 0; i < 8; i++ {
		if _, err := c.Write(0, "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("initial convergence failed")
	}

	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	// Survivors truncate aggressively: entry replay to an empty node is
	// impossible. Restart bootstraps from the peers' merged state image, so
	// the replica holds the content before it serves a single message.
	if got := c.TruncateLogs(1); got == 0 {
		t.Fatal("truncation discarded nothing")
	}
	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	if c.Digest(1) != c.Digest(0) {
		t.Error("restarted replica's bootstrap image differs from peers")
	}
}

// TestLaggardBehindTruncationUsesSnapshot pins the protocol's full-state
// recovery path: a live replica isolated by a partition while the others
// write and truncate their logs can only catch up via a Snapshot message.
func TestLaggardBehindTruncationUsesSnapshot(t *testing.T) {
	g := topology.Complete(4)
	field := demand.Uniform(4, 1, 20, randSource(61))
	c := startCluster(t, g, field,
		WithSeed(63), WithSessionInterval(10*time.Millisecond),
		WithAdvertInterval(5*time.Millisecond))

	// Isolate replica 3, then make progress it cannot see.
	c.Faults().PartitionSets([]NodeID{3}, []NodeID{0, 1, 2})
	for i := 0; i < 8; i++ {
		if _, err := c.Write(0, "k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for c.Digest(1) != c.Digest(0) || c.Digest(2) != c.Digest(0) {
		if time.Now().After(deadline) {
			t.Fatal("majority side never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.TruncateLogs(1); got == 0 {
		t.Fatal("truncation discarded nothing")
	}
	c.Faults().HealAll()

	for c.Digest(3) != c.Digest(0) {
		if time.Now().After(deadline) {
			t.Fatal("laggard never recovered via snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Stats(3).SnapshotsReceived; got == 0 {
		t.Error("recovery did not use the snapshot path")
	}
}

// TestRestartPreservingKeepsState distinguishes a durable restart from the
// bootstrap path: anti-entropy is effectively disabled (huge session
// interval, no fast push), so whatever the replica holds after rejoining is
// its own preserved state, not recovered or bootstrapped content.
func TestRestartPreservingKeepsState(t *testing.T) {
	g := topology.Ring(3)
	c := startCluster(t, g, demand.Static{1, 2, 3},
		WithSeed(71), WithFastPush(false),
		WithSessionInterval(time.Hour), WithAdvertInterval(time.Hour))

	if _, err := c.Write(2, "mine", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	// Progress elsewhere while 2 is down.
	if _, err := c.Write(0, "theirs", []byte("missed")); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartPreserving(2); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Read(2, "mine"); err != nil || !ok || string(v) != "kept" {
		t.Fatalf("preserved state lost: v=%q ok=%t err=%v", v, ok, err)
	}
	if _, ok, _ := c.Read(2, "theirs"); ok {
		t.Fatal("durable restart absorbed peer content without anti-entropy — state was not simply preserved")
	}
	if err := c.RestartPreserving(2); err == nil {
		t.Error("RestartPreserving of a live replica should error")
	}
}

func TestFaultsSurface(t *testing.T) {
	g := topology.Line(2)
	c := New(g, demand.Static{1, 1})
	if c.Faults() == nil {
		t.Fatal("memory-backed cluster exposes no fault surface")
	}
	tc, err := NewTCP(topology.Line(2), demand.Static{1, 1}, "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Stop()
	if tc.Faults() != nil {
		t.Error("TCP cluster should expose no in-memory fault surface")
	}
	if err := tc.Restart(0); err == nil {
		t.Error("Restart on a TCP cluster should error")
	}
}

func TestKillValidation(t *testing.T) {
	g := topology.Line(2)
	c := New(g, demand.Static{1, 1})
	if err := c.Kill(0); err == nil {
		t.Error("Kill before Start should error")
	}
	if err := c.Kill(99); err == nil {
		t.Error("Kill of unknown replica should error")
	}
	if err := c.Restart(0); err == nil {
		t.Error("Restart before Start should error")
	}
	if c.Alive(99) {
		t.Error("unknown replica reports alive")
	}
}
