package runtime

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// Tests for the pipelined durable commit protocol at the cluster level:
// ordered ack release across in-flight batches, and fail-stop before any
// ack covered by a failed sync can escape. The wal-level pipeline tests
// (internal/wal/pipeline_test.go) prove the sync stage; these prove the
// replica's ack-release stage on top of it.

// TestPipelineOrderedAckRelease pins the ordering invariant: with batch
// N's covering sync stalled on a slow disk, batch N+1's ack must not be
// released before batch N's — acks leave in exactly commit order, even
// though the replica lock is free and batch N+1 commits while N still
// waits on the disk.
func TestPipelineOrderedAckRelease(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 16)
	reg := obs.NewRegistry()
	c := durableCluster(t, 2, dir, WithDurabilityFS(ffs), WithObs(obs.NewClusterObs(reg, 2)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Warm up so segment creation is off the measured path.
	if _, err := c.Write(0, "warm", []byte("up")); err != nil {
		t.Fatal(err)
	}

	const stall = 60 * time.Millisecond
	ffs.SetSyncDelay(replicaScope(0), stall, 0, 0)

	var firstAcked atomic.Bool
	var orderViolated atomic.Bool
	firstDone := make(chan error, 1)
	go func() {
		_, err := c.Write(0, "first", []byte("batch-N"))
		firstAcked.Store(true)
		firstDone <- err
	}()
	// Let the first write commit and park on its stalled sync, so the
	// second write forms its own later batch.
	time.Sleep(15 * time.Millisecond)
	secondStart := time.Now()
	if _, err := c.Write(0, "second", []byte("batch-N+1")); err != nil {
		t.Fatalf("second write failed: %v", err)
	}
	if !firstAcked.Load() {
		orderViolated.Store(true)
	}
	secondTook := time.Since(secondStart)
	if err := <-firstDone; err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	if orderViolated.Load() {
		t.Fatal("batch N+1 acked before batch N — ack release is out of order")
	}
	// The second batch needed its own covering sync, serialized after the
	// first one's; with a 60ms stall per fsync its ack cannot have
	// released before the first sync completed.
	if secondTook < stall {
		t.Fatalf("second ack released in %v — before batch N's %v sync stall completed", secondTook, stall)
	}
	if v, ok, err := c.Read(0, "first"); err != nil || !ok || string(v) != "batch-N" {
		t.Fatalf("first write not visible after ack: %q %v %v", v, ok, err)
	}
	if v, ok, err := c.Read(0, "second"); err != nil || !ok || string(v) != "batch-N+1" {
		t.Fatalf("second write not visible after ack: %q %v %v", v, ok, err)
	}
	if got := reg.Total("repro_replica_failstop_total"); got != 0 {
		t.Fatalf("slow disk fail-stopped a replica (%v fail-stops)", got)
	}
	if got := reg.Total("repro_wal_pipeline_syncs_total"); got < 1 {
		t.Fatalf("repro_wal_pipeline_syncs_total = %v — the background sync stage never ran", got)
	}
}

// TestPipelineFailStopBeforeCoveredAckEscapes pins the fail-stop
// invariant under a backed-up pipeline: the disk stalls, several batches
// pile up in flight, then the disk dies mid-stream. Every write whose
// covering sync failed must return an error — never an ack — and the
// client observing that error must find the replica already fully
// stopped. After a power cut and disk recovery, exactly the acked writes
// are readable.
func TestPipelineFailStopBeforeCoveredAckEscapes(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 17)
	reg := obs.NewRegistry()
	c := durableCluster(t, 2, dir, WithDurabilityFS(ffs), WithObs(obs.NewClusterObs(reg, 2)))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if _, err := c.Write(0, "good", []byte("synced")); err != nil {
		t.Fatal(err)
	}

	// Back up the pipeline, stagger writes into it, then kill the disk
	// while batches are still in flight.
	ffs.SetSyncDelay(replicaScope(0), 40*time.Millisecond, 0, 0)
	const writers = 8
	type result struct {
		key          string
		err          error
		deadOnReturn bool
	}
	results := make([]result, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 5 * time.Millisecond)
			key := fmt.Sprintf("inflight%02d", i)
			_, err := c.Write(0, key, []byte("pipelined"))
			dead := false
			if err != nil {
				// The error must find the replica already fail-stopped:
				// store retracted, reads failing.
				_, _, rerr := c.Read(0, "good")
				dead = rerr != nil
			}
			results[i] = result{key: key, err: err, deadOnReturn: dead}
		}()
	}
	time.Sleep(12 * time.Millisecond)
	ffs.FailSyncs(replicaScope(0))
	wg.Wait()

	var failed int
	for _, res := range results {
		if res.err == nil {
			continue
		}
		failed++
		if !res.deadOnReturn {
			t.Fatalf("write %s errored but the replica was still serving reads — ack escaped before fail-stop", res.key)
		}
	}
	if failed == 0 {
		t.Fatal("no write failed despite the disk dying mid-pipeline")
	}
	if got := reg.Total("repro_replica_failstop_total"); got != 1 {
		t.Fatalf("repro_replica_failstop_total = %v, want exactly 1", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `reason="io-error"`) {
		t.Fatal("fail-stop not labelled reason=io-error")
	}

	// The egress gate must have held every non-durable entry: a write that
	// errored was never covered by a completed sync, so it may not have
	// leaked to the peer replica through fan-out or anti-entropy.
	for _, res := range results {
		if res.err == nil {
			continue
		}
		if _, ok, err := c.Read(1, res.key); err != nil {
			t.Fatal(err)
		} else if ok {
			t.Fatalf("non-durable write %s leaked to a peer before the fail-stop", res.key)
		}
	}

	// Power cut on the dead disk, then replace it: recovery must serve
	// every acked write (errored writes are indeterminate — the cut drops
	// an arbitrary suffix of the unsynced tail, so they may or may not
	// replay, but their clients were told "error", never "ack").
	ffs.Cut(replicaScope(0))
	ffs.Heal(replicaScope(0))
	if err := c.RestartFromDisk(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Read(0, "good"); err != nil || !ok || string(v) != "synced" {
		t.Fatalf("acked write lost: %q %v %v", v, ok, err)
	}
	for _, res := range results {
		if res.err != nil {
			continue
		}
		v, ok, err := c.Read(0, res.key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != "pipelined" {
			t.Fatalf("acked write %s lost to the fail-stop: ok=%v v=%q", res.key, ok, v)
		}
	}
}
