package runtime

import (
	"math"
	"sync/atomic"
	"time"
)

// demandMeter estimates a replica's demand — client requests per second —
// from the actual request stream, with exponential decay so the estimate
// tracks shifting load. This realises the paper's §2 definition ("the
// demand of a server is measured as the number of service requests by
// their clients per time unit") without an oracle: the live cluster can
// advertise *measured* demand.
//
// The estimator keeps acc = Σ exp(-(now-tᵢ)/τ) over request times tᵢ;
// the rate estimate is acc/τ, whose expectation equals the true Poisson
// rate in steady state.
//
// The meter sits on the client-plane hot path (every Read and Write records
// a request), so it is mutex-free: the whole estimator state — the decay
// reference time and the accumulator — is packed into ONE atomic word
// (high 32 bits: milliseconds since the meter was created; low 32 bits:
// float32 bits of acc) updated by CAS. Because both halves move together,
// a decay step can never be applied to requests recorded after its
// reference time: any interleaving simply retries with fresh state. Rate
// is a pure read.
//
// Approximations, all deliberate: decay granularity is 1ms (relative error
// ≤ 1ms/τ per step); the float32 accumulator saturates at 2^24, capping
// the measurable rate at 2^24/τ requests per second (16.7M/s at the
// default τ=1s — saturated replicas all read maximal demand rather than
// misordering below cooler ones); the millisecond clock wraps every ~49.7
// days, which Record and Rate detect (a reference reading more than
// meterSkewMs "in the future" cannot come from clock skew) and resolve as
// a full decay — exact for any τ ≪ the wrap period, i.e. every real
// averaging window.
type demandMeter struct {
	tau     float64 // decay constant, seconds
	created time.Time
	state   atomic.Uint64 // packed (lastMs, float32 acc); 0 = no requests yet
}

// newDemandMeter creates a meter with the given averaging window; the
// window behaves like a half-life of roughly 0.69·tau.
func newDemandMeter(tau time.Duration) *demandMeter {
	if tau <= 0 {
		tau = time.Second
	}
	return &demandMeter{tau: tau.Seconds(), created: time.Now()}
}

// quantumMs converts an absolute time to the meter's millisecond clock,
// clamping times before creation (non-monotonic callers) to 0.
func (m *demandMeter) quantumMs(t time.Time) uint32 {
	ms := t.Sub(m.created) / time.Millisecond
	if ms < 0 {
		return 0
	}
	return uint32(ms)
}

// meterSkewMs bounds how far backwards (in ms) a timestamp may read against
// the decay reference and still be treated as clock skew between concurrent
// callers. Anything further back cannot come from skew — time.Now is
// monotonic within a process and cross-goroutine capture races are
// microseconds — so it must be the 32-bit clock having lapped an idle
// meter, and resolves as a full decay.
const meterSkewMs = 60_000

func packMeter(ms uint32, acc float32) uint64 {
	return uint64(ms)<<32 | uint64(math.Float32bits(acc))
}

func unpackMeter(s uint64) (ms uint32, acc float32) {
	return uint32(s >> 32), math.Float32frombits(uint32(s))
}

// Record notes one client request at time now. Safe for concurrent use;
// never blocks on a mutex.
func (m *demandMeter) Record(now time.Time) { m.RecordN(now, 1) }

// RecordN folds n simultaneous requests in at time now — the group-commit
// leader's bulk form (one CAS for a whole acked batch instead of one per
// write).
func (m *demandMeter) RecordN(now time.Time, n int) {
	ms := m.quantumMs(now)
	for {
		old := m.state.Load()
		lastMs, acc := unpackMeter(old)
		newMs := lastMs
		// Wrap-aware elapsed time: int32(ms-lastMs) reads a modular gap as
		// "recent past" only within half the wrap period; anything further
		// back is the clock having lapped an idle meter, not skew.
		switch dt := int32(ms - lastMs); {
		case dt > 0:
			acc = float32(float64(acc) * math.Exp(-float64(dt)/1e3/m.tau))
			newMs = ms
		case dt < -meterSkewMs:
			// The reference reads more than a minute "in the future": the
			// 32-bit clock wrapped across an idle stretch (true elapsed
			// time ≥ 2^32 ms minus the skew bound), so full decay is exact
			// for any realistic τ.
			acc = 0
			newMs = ms
		}
		// Otherwise (same quantum, or bounded backwards skew): fold the
		// requests in undecayed at the existing reference.
		if m.state.CompareAndSwap(old, packMeter(newMs, acc+float32(n))) {
			return
		}
	}
}

// Rate returns the current requests-per-second estimate. It is a pure
// read: the stored accumulator decays lazily, so Rate applies the elapsed
// decay arithmetically without writing.
func (m *demandMeter) Rate(now time.Time) float64 {
	s := m.state.Load()
	if s == 0 {
		return 0
	}
	lastMs, acc := unpackMeter(s)
	rate := float64(acc)
	switch dt := int32(m.quantumMs(now) - lastMs); {
	case dt > 0:
		rate *= math.Exp(-float64(dt) / 1e3 / m.tau)
	case dt < -meterSkewMs:
		// Same wrap detection as Record: the clock lapped an idle meter,
		// so the true gap is near the full wrap period — fully decayed.
		rate = 0
	}
	return rate / m.tau
}
