package runtime

import (
	"math"
	"sync"
	"time"
)

// demandMeter estimates a replica's demand — client requests per second —
// from the actual request stream, with exponential decay so the estimate
// tracks shifting load. This realises the paper's §2 definition ("the
// demand of a server is measured as the number of service requests by
// their clients per time unit") without an oracle: the live cluster can
// advertise *measured* demand.
//
// The estimator keeps acc = Σ exp(-(now-tᵢ)/τ) over request times tᵢ;
// the rate estimate is acc/τ, whose expectation equals the true Poisson
// rate in steady state.
type demandMeter struct {
	mu   sync.Mutex
	tau  float64 // decay constant, seconds
	acc  float64
	last time.Time
}

// newDemandMeter creates a meter with the given averaging window; the
// window behaves like a half-life of roughly 0.69·tau.
func newDemandMeter(tau time.Duration) *demandMeter {
	if tau <= 0 {
		tau = time.Second
	}
	return &demandMeter{tau: tau.Seconds()}
}

// Record notes one client request at time now.
func (m *demandMeter) Record(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.decayTo(now)
	m.acc++
}

// Rate returns the current requests-per-second estimate.
func (m *demandMeter) Rate(now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.decayTo(now)
	return m.acc / m.tau
}

func (m *demandMeter) decayTo(now time.Time) {
	if m.last.IsZero() {
		m.last = now
		return
	}
	dt := now.Sub(m.last).Seconds()
	if dt <= 0 {
		return
	}
	m.acc *= math.Exp(-dt / m.tau)
	m.last = now
}
