package runtime

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/topology"
)

// TestSnapshotHandoffBetweenClusters is the shard-handoff contract at the
// runtime layer: content exported from one cluster and applied to another
// lands on every replica with versions intact (equal digests), and the
// receiving cluster's own writes still supersede the imported versions.
func TestSnapshotHandoffBetweenClusters(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ga := topology.BarabasiAlbert(6, 2, r)
	gb := topology.BarabasiAlbert(4, 2, r)
	fa := demand.Uniform(6, 1, 50, r)
	fb := demand.Uniform(4, 1, 50, r)

	src := New(ga, fa, WithSeed(1),
		WithSessionInterval(5*time.Millisecond), WithAdvertInterval(2*time.Millisecond))
	dst := New(gb, fb, WithSeed(2),
		WithSessionInterval(5*time.Millisecond), WithAdvertInterval(2*time.Millisecond))
	if err := src.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer src.Stop()
	if err := dst.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer dst.Stop()

	for i, key := range []string{"alpha", "beta", "gamma"} {
		if _, err := src.Write(NodeID(i%src.N()), key, []byte(key+"-v1")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !src.WaitConverged(ctx) {
		t.Fatal("source cluster did not converge")
	}

	items, err := src.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("snapshot has %d items, want 3", len(items))
	}
	dst.ApplySnapshot(items)

	// Every destination replica holds the content immediately, and digests
	// match the source bit-for-bit (dst had no writes of its own).
	want := src.Digest(0)
	for i := 0; i < dst.N(); i++ {
		if got := dst.Digest(NodeID(i)); got != want {
			t.Fatalf("replica %d digest %016x != source %016x", i, got, want)
		}
	}

	// A local write at the destination supersedes the imported version:
	// AbsorbItems advanced the Lamport clocks past the imported writes.
	if _, err := dst.Write(0, "alpha", []byte("alpha-v2")); err != nil {
		t.Fatal(err)
	}
	if !dst.WaitConverged(ctx) {
		t.Fatal("destination did not converge after overwrite")
	}
	for i := 0; i < dst.N(); i++ {
		v, ok, err := dst.Read(NodeID(i), "alpha")
		if err != nil || !ok {
			t.Fatalf("read at %d: ok=%t err=%v", i, ok, err)
		}
		if string(v) != "alpha-v2" {
			t.Fatalf("replica %d still serves imported version %q after local overwrite", i, v)
		}
	}

	if _, err := src.Snapshot(NodeID(99)); err == nil {
		t.Error("Snapshot of unknown replica succeeded")
	}
}
