package runtime

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/topology"
	"repro/internal/vclock"
)

func waitClusterConverged(t *testing.T, c *Cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if !c.WaitConverged(ctx) {
		t.Fatal("cluster did not converge")
	}
}

func TestLevelStringParse(t *testing.T) {
	for _, lvl := range []Level{LevelEventual, LevelSession, LevelBounded, LevelStrong} {
		got, err := ParseLevel(lvl.String())
		if err != nil || got != lvl {
			t.Errorf("ParseLevel(%q) = (%v, %v), want (%v, nil)", lvl.String(), got, err, lvl)
		}
	}
	if _, err := ParseLevel("linearizable"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestSessionReadYourWrites(t *testing.T) {
	g := topology.Ring(6)
	field := demand.Uniform(6, 1, 10, randSource(1))
	c := startCluster(t, g, field, WithSeed(2), WithSessionInterval(10*time.Millisecond))

	s := c.NewSession()
	if _, err := s.Write(0, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// The write is acked at replica 0 only; a session read at the far side
	// of the ring must wait for coverage, never serve a miss.
	v, ok, err := s.Read(3, "k")
	if err != nil {
		t.Fatalf("session read: %v", err)
	}
	if !ok || !bytes.Equal(v.Value, []byte("v1")) {
		t.Fatalf("session read = (%q, %t), want own write visible", v.Value, ok)
	}
}

func TestSessionReadsMonotonic(t *testing.T) {
	g := topology.Ring(6)
	field := demand.Uniform(6, 1, 10, randSource(3))
	c := startCluster(t, g, field, WithSeed(4), WithSessionInterval(10*time.Millisecond))

	s := c.NewSession()
	for i := 0; i < 5; i++ {
		if _, err := s.Write(0, "k", []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitClusterConverged(t, c)
	// Reading at a fresh replica folds its full coverage into the token...
	if _, _, err := s.Read(2, "k"); err != nil {
		t.Fatal(err)
	}
	// ...so a later session read anywhere can never observe an older state;
	// here every replica is converged, so each must serve the final value.
	for id := NodeID(0); id < 6; id++ {
		v, ok, err := s.Read(id, "k")
		if err != nil || !ok || v.Value[0] != 'e' {
			t.Fatalf("monotonic read at %v = (%q, %t, %v)", id, v.Value, ok, err)
		}
	}
}

func TestBoundedStalenessGate(t *testing.T) {
	g := topology.Ring(4)
	field := demand.Uniform(4, 1, 10, randSource(5))
	c := startCluster(t, g, field, WithSeed(6), WithSessionInterval(20*time.Millisecond))

	var tok Token
	rec, err := c.WriteSession(0, "k", []byte("v"), &tok)
	if err != nil {
		t.Fatal(err)
	}
	waitClusterConverged(t, c)
	// Push the token 3 writes past every replica's head: a fabricated
	// future the cluster will never cover.
	tok.ObserveWrite(vclock.Timestamp{Node: rec.TS.Node, Seq: rec.TS.Seq + 3})

	// A bound that admits the fabricated lag serves immediately.
	opt := &LeveledRead{Level: LevelBounded, Token: &tok, MaxLag: 3, Deadline: 5 * time.Second}
	if _, ok, err := c.ReadLeveled(1, "k", opt); err != nil || !ok {
		t.Fatalf("bounded read within MaxLag = (%t, %v), want served", ok, err)
	}
	// A tighter bound must shed with ErrNotFresh once the deadline lapses.
	opt = &LeveledRead{Level: LevelBounded, Token: &tok, MaxLag: 1, Deadline: 50 * time.Millisecond}
	start := time.Now()
	_, _, err = c.ReadLeveled(1, "k", opt)
	if !errors.Is(err, ErrNotFresh) {
		t.Fatalf("bounded read past MaxLag: err = %v, want ErrNotFresh", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-bounded read took %v", elapsed)
	}
	var nf *NotFreshError
	if !errors.As(err, &nf) {
		t.Fatalf("error %T is not *NotFreshError", err)
	}
	if nf.RetryAfterHint() <= 0 || nf.RetryAfterHint() > time.Second {
		t.Errorf("retry hint %v outside (0, 1s]", nf.RetryAfterHint())
	}
	if nf.Lag == 0 {
		t.Error("shed carries zero lag")
	}
}

func TestTokenAheadOfEveryReplicaDeadlines(t *testing.T) {
	g := topology.Ring(4)
	field := demand.Uniform(4, 1, 10, randSource(7))
	c := startCluster(t, g, field, WithSeed(8))

	// A token claiming coverage no live replica can ever reach — e.g.
	// deserialized from a client that outlived a cluster wipe. The read
	// must shed at the deadline, never hang.
	var tok Token
	tok.ObserveWrite(vclock.Timestamp{Node: 0, Seq: 1 << 30})
	opt := &LeveledRead{Level: LevelSession, Token: &tok, Deadline: 80 * time.Millisecond}
	start := time.Now()
	_, _, err := c.ReadLeveled(2, "k", opt)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrNotFresh) {
		t.Fatalf("ahead-of-all session read: err = %v, want ErrNotFresh", err)
	}
	if elapsed < 50*time.Millisecond || elapsed > 3*time.Second {
		t.Fatalf("deadline wait took %v, want ~80ms", elapsed)
	}
}

func TestStrongReadConverged(t *testing.T) {
	g := topology.Ring(6)
	field := demand.Uniform(6, 1, 10, randSource(9))
	c := startCluster(t, g, field, WithSeed(10), WithSessionInterval(10*time.Millisecond))

	if _, err := c.Write(0, "k", []byte("strong")); err != nil {
		t.Fatal(err)
	}
	// No token, no prior session state: the strong read pins the freshest
	// acked version cluster-wide and waits for the serving replica to
	// cover it.
	opt := &LeveledRead{Level: LevelStrong, Deadline: 10 * time.Second}
	v, ok, err := c.ReadLeveled(3, "k", opt)
	if err != nil || !ok || !bytes.Equal(v.Value, []byte("strong")) {
		t.Fatalf("strong read = (%q, %t, %v)", v.Value, ok, err)
	}
	// A strong read of an absent key is an immediate miss, not a wait.
	start := time.Now()
	if _, ok, err := c.ReadLeveled(3, "missing", opt); ok || err != nil {
		t.Fatalf("strong read of absent key = (%t, %v)", ok, err)
	}
	if time.Since(start) > time.Second {
		t.Error("strong miss waited instead of returning")
	}
}

// TestStrongReadHonorsSessionFloor pins strong-subsumes-session: when the
// only replica holding a session-observed version dies, a token-carrying
// strong read must shed not-fresh rather than serve the freshest *live*
// version — which would regress below the session's floor.
func TestStrongReadHonorsSessionFloor(t *testing.T) {
	g := topology.Ring(5)
	field := demand.Uniform(5, 1, 10, randSource(29))
	// A slow anti-entropy cadence keeps the write's propagation window open
	// long enough for the kill to usually beat it.
	c := startCluster(t, g, field, WithSeed(30), WithSessionInterval(300*time.Millisecond))

	s := c.NewSession()
	s.Deadline = 300 * time.Millisecond
	rec, err := s.Write(1, "fl", []byte("floor"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.ReadLevel(0, "fl", LevelStrong)
	switch {
	case err != nil:
		// The only legal rejection: the serving replica cannot reach the
		// token's coverage while the origin is down.
		if !errors.Is(err, ErrNotFresh) {
			t.Fatalf("strong read failed outside the freshness contract: %v", err)
		}
	case !ok:
		t.Fatal("strong read missed the session's own write (read-your-writes violation)")
	default:
		// The write propagated before the kill: fine, but the served
		// version must be at or above the session floor.
		if v.Clock < rec.Clock || (v.Clock == rec.Clock && v.TS.Compare(rec.TS) < 0) {
			t.Fatalf("strong read served (clock %d, %v) below the floor (clock %d, %v)",
				v.Clock, v.TS, rec.Clock, rec.TS)
		}
	}
}

func TestSessionReadNilTokenIsEventual(t *testing.T) {
	g := topology.Ring(4)
	field := demand.Uniform(4, 1, 10, randSource(11))
	c := startCluster(t, g, field, WithSeed(12))

	opt := &LeveledRead{Level: LevelSession}
	if _, ok, err := c.ReadLeveled(1, "absent", opt); ok || err != nil {
		t.Fatalf("nil-token session read = (%t, %v), want plain miss", ok, err)
	}
}

func TestSessionSurvivesLostIncarnation(t *testing.T) {
	g := topology.Ring(5)
	field := demand.Uniform(5, 1, 10, randSource(13))
	c := startCluster(t, g, field, WithSeed(14), WithSessionInterval(10*time.Millisecond))

	s := c.NewSession()
	s.Deadline = time.Second
	if _, err := s.Write(0, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Crash the origin and bring it back from its peers' merged state. The
	// write may or may not have replicated — empty-state restart is genuine
	// state loss — but the reborn identity carries its own write head
	// forward, so the session token stays covered: the read must resolve
	// within its deadline either way, never hang on a position the new
	// incarnation will never re-issue.
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err := s.Read(0, "k")
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, ErrNotFresh) {
		t.Fatalf("post-restart session read: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("post-restart session read took %v", elapsed)
	}
}

func TestSessionWaitResolvesOnKill(t *testing.T) {
	g := topology.Ring(4)
	field := demand.Uniform(4, 1, 10, randSource(15))
	c := startCluster(t, g, field, WithSeed(16))

	var tok Token
	tok.ObserveWrite(vclock.Timestamp{Node: 1, Seq: 1 << 20})
	opt := &LeveledRead{Level: LevelSession, Token: &tok, Deadline: 400 * time.Millisecond}
	done := make(chan error, 1)
	go func() {
		_, _, err := c.ReadLeveled(2, "k", opt)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := c.Kill(2); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		// Deadline path on a dead replica: the typed death error, not a
		// freshness shed — the replica is gone, not merely stale.
		if err == nil {
			t.Fatal("read of a killed replica succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leveled read hung across replica death")
	}
}

func TestWriteReceiptedCarriesClock(t *testing.T) {
	g := topology.Ring(3)
	field := demand.Uniform(3, 1, 10, randSource(17))
	c := startCluster(t, g, field, WithSeed(18))

	rec, err := c.WriteReceipted(0, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Clock == 0 {
		t.Error("receipt carries zero Lamport clock")
	}
	if rec.TS.Seq == 0 {
		t.Error("receipt carries zero sequence")
	}
}

func TestTokenCoveredProbe(t *testing.T) {
	g := topology.Ring(4)
	field := demand.Uniform(4, 1, 10, randSource(19))
	c := startCluster(t, g, field, WithSeed(20), WithSessionInterval(10*time.Millisecond))

	if !c.TokenCovered(1, nil) {
		t.Error("nil token must be covered by any live replica")
	}
	var tok Token
	if _, err := c.WriteSession(0, "k", []byte("v"), &tok); err != nil {
		t.Fatal(err)
	}
	if !c.TokenCovered(0, &tok) {
		t.Error("origin does not cover its own acked write")
	}
	waitClusterConverged(t, c)
	for id := NodeID(0); id < 4; id++ {
		if !c.TokenCovered(id, &tok) {
			t.Errorf("converged replica %v does not cover the token", id)
		}
	}
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	if c.TokenCovered(3, &tok) {
		t.Error("dead replica claims coverage")
	}
	if c.TokenCovered(99, &tok) {
		t.Error("out-of-range replica claims coverage")
	}
}

func TestCoveredSessionReadZeroAlloc(t *testing.T) {
	g := topology.Ring(4)
	field := demand.Uniform(4, 1, 10, randSource(21))
	c := startCluster(t, g, field, WithSeed(22), WithSessionInterval(10*time.Millisecond))

	var tok Token
	if _, err := c.WriteSession(0, "k", []byte("v"), &tok); err != nil {
		t.Fatal(err)
	}
	waitClusterConverged(t, c)
	opt := &LeveledRead{Level: LevelSession, Token: &tok}
	// Warm once: the merging probe grows the token to the replica's summary
	// width; after that the covered fast path must allocate nothing.
	if _, ok, err := c.ReadLeveled(1, "k", opt); err != nil || !ok {
		t.Fatalf("warm read = (%t, %v)", ok, err)
	}
	if avg := testing.AllocsPerRun(500, func() {
		if _, _, err := c.ReadLeveled(1, "k", opt); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("covered session read allocates %v per run, want 0", avg)
	}
	// The eventual leveled read stays allocation-free too.
	evOpt := &LeveledRead{Level: LevelEventual}
	if avg := testing.AllocsPerRun(500, func() {
		if _, _, err := c.ReadLeveled(1, "k", evOpt); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("eventual leveled read allocates %v per run, want 0", avg)
	}
}

func TestTokenCodecRoundTrip(t *testing.T) {
	var tok Token
	tok.ObserveWrite(vclock.Timestamp{Node: 0, Seq: 12})
	tok.ObserveWrite(vclock.Timestamp{Node: 3, Seq: 1})
	tok.ObserveWrite(vclock.Timestamp{Node: 700, Seq: 1 << 40})

	data, err := tok.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Token
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(&tok) {
		t.Fatalf("round trip: got %v, want %v", &back, &tok)
	}
	// Canonical: re-encoding is byte-identical.
	again, _ := back.MarshalBinary()
	if !bytes.Equal(again, data) {
		t.Error("re-encode differs from original encoding")
	}

	// Empty token round-trips too.
	var empty, emptyBack Token
	data, _ = empty.MarshalBinary()
	if err := emptyBack.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if emptyBack.Positions().Total() != 0 {
		t.Error("empty token decoded non-empty")
	}
}

func TestTokenCodecRejectsHostileInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"bad version":     {9, 0},
		"truncated count": {1},
		"huge count":      append([]byte{1}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1),
		"truncated pair":  {1, 1, 5},
		"zero seq":        {1, 1, 5, 0},
		"origin too big":  {1, 1, 0xff, 0xff, 0xff, 0xff, 0x7f, 1},
		"out of order":    {1, 2, 5, 1, 3, 1},
		"duplicate":       {1, 2, 5, 1, 5, 2},
		"trailing":        {1, 1, 5, 1, 99},
	}
	for name, data := range cases {
		var tok Token
		if err := tok.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: hostile encoding accepted", name)
		}
	}
}

func FuzzTokenCodec(f *testing.F) {
	var seedTok Token
	seedTok.ObserveWrite(vclock.Timestamp{Node: 0, Seq: 3})
	seedTok.ObserveWrite(vclock.Timestamp{Node: 2, Seq: 1})
	seed, _ := seedTok.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{1, 0})
	f.Add([]byte{1, 1, 5, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tok Token
		if err := tok.UnmarshalBinary(data); err != nil {
			return // rejected is fine; panicking is not
		}
		// Accepted input must be the canonical encoding of its contents.
		out, err := tok.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted non-canonical encoding %x (re-encodes %x)", data, out)
		}
		var back Token
		if err := back.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if !back.Equal(&tok) {
			t.Fatal("round trip changed the token")
		}
	})
}
