// Package sim is the discrete-event simulation engine the experiments run
// on — the repository's stand-in for the NS-2 simulator the paper used.
//
// The engine executes callbacks in non-decreasing simulated-time order with
// FIFO tie-breaking, so runs are fully deterministic given deterministic
// callbacks. Time is a float64 in "session units": protocol components
// schedule anti-entropy sessions at exponential intervals with mean 1, which
// makes the engine's clock directly comparable to the session axis of the
// paper's Figs. 5–6.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// EventID identifies a scheduled event for cancellation. The zero value is
// never a valid id.
type EventID uint64

type event struct {
	time float64
	seq  EventID // insertion order; breaks time ties FIFO
	fn   func()
	idx  int // heap index, -1 when popped/cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use. Engine is not safe for concurrent use: all scheduling
// happens from the driving goroutine or from within event callbacks.
type Engine struct {
	now     float64
	heap    eventHeap
	nextSeq EventID
	byID    map[EventID]*event
	steps   uint64
	// free recycles event structs: a trial schedules one event per message
	// delivery, so without reuse the scheduler would dominate allocation.
	free []*event
}

// New returns an engine at time 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Steps returns how many events have executed.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns how many events are scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn at absolute time t (>= Now) and returns its id.
func (e *Engine) At(t float64, fn func()) EventID {
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN time")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past (t=%g, now=%g)", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	e.nextSeq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		*ev = event{time: t, seq: e.nextSeq, fn: fn}
	} else {
		ev = &event{time: t, seq: e.nextSeq, fn: fn}
	}
	heap.Push(&e.heap, ev)
	if e.byID == nil {
		e.byID = make(map[EventID]*event)
	}
	e.byID[ev.seq] = ev
	return ev.seq
}

// After schedules fn d time units from now (d >= 0).
func (e *Engine) After(d float64, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already ran, was cancelled, or never existed).
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.byID[id]
	if !ok || ev.idx < 0 {
		return false
	}
	heap.Remove(&e.heap, ev.idx)
	delete(e.byID, id)
	ev.fn = nil
	e.free = append(e.free, ev)
	return true
}

// step executes the earliest event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*event)
	delete(e.byID, ev.seq)
	e.now = ev.time
	e.steps++
	fn := ev.fn
	// Recycle before running: the callback may schedule (and thus reuse the
	// struct for) new events, which is safe once fn is saved out.
	ev.fn = nil
	e.free = append(e.free, ev)
	fn()
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() float64 {
	for e.step() {
	}
	return e.now
}

// RunUntil executes events with time <= deadline, then advances the clock to
// deadline (even if no event landed exactly there). Events scheduled beyond
// the deadline remain pending.
func (e *Engine) RunUntil(deadline float64) {
	if deadline < e.now {
		panic(fmt.Sprintf("sim: RunUntil into the past (deadline=%g, now=%g)", deadline, e.now))
	}
	for len(e.heap) > 0 && e.heap[0].time <= deadline {
		e.step()
	}
	e.now = deadline
}

// RunFor advances the simulation by d time units.
func (e *Engine) RunFor(d float64) { e.RunUntil(e.now + d) }

// ExpInterval draws an exponential inter-session interval with the given
// mean using r. It is the session timer of the weak-consistency model:
// "each server from time to time chooses a neighbour" — memoryless random
// times with a common rate.
func ExpInterval(r *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("sim: non-positive mean interval %g", mean))
	}
	return r.ExpFloat64() * mean
}
