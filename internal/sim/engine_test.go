package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Errorf("final time = %g, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
	if e.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", e.Steps())
	}
}

func TestTieBrokenFIFO(t *testing.T) {
	e := New()
	var order []string
	e.At(1, func() { order = append(order, "first") })
	e.At(1, func() { order = append(order, "second") })
	e.At(1, func() { order = append(order, "third") })
	e.Run()
	if order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Errorf("tie order = %v, want FIFO", order)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	var times []float64
	e.At(1, func() {
		times = append(times, e.Now())
		e.After(0.5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 1.5 {
		t.Errorf("times = %v, want [1 1.5]", times)
	}
}

func TestSchedulingPastPanics(t *testing.T) {
	e := New()
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("At in the past should panic")
		}
	}()
	e.At(1, func() {})
}

func TestSchedulingNaNOrNilPanics(t *testing.T) {
	e := New()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("At(NaN) should panic")
			}
		}()
		e.At(math.NaN(), func() {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("At with nil fn should panic")
			}
		}()
		e.At(1, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("After with negative delay should panic")
			}
		}()
		e.After(-1, func() {})
	}()
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	id := e.At(1, func() { ran = true })
	if !e.Cancel(id) {
		t.Error("Cancel of pending event should report true")
	}
	if e.Cancel(id) {
		t.Error("second Cancel should report false")
	}
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	// Cancelling an executed event reports false.
	id2 := e.At(2, func() {})
	e.Run()
	if e.Cancel(id2) {
		t.Error("Cancel of executed event should report false")
	}
	if e.Cancel(EventID(9999)) {
		t.Error("Cancel of unknown id should report false")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var order []int
	ids := make([]EventID, 5)
	for i := 0; i < 5; i++ {
		i := i
		ids[i] = e.At(float64(i+1), func() { order = append(order, i) })
	}
	e.Cancel(ids[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var ran []float64
	for _, tm := range []float64{1, 2, 3, 4} {
		tm := tm
		e.At(tm, func() { ran = append(ran, tm) })
	}
	e.RunUntil(2.5)
	if len(ran) != 2 {
		t.Errorf("events run by 2.5 = %v, want [1 2]", ran)
	}
	if e.Now() != 2.5 {
		t.Errorf("Now = %g, want 2.5", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.RunFor(10)
	if len(ran) != 4 {
		t.Errorf("events after RunFor = %v, want all 4", ran)
	}
	if e.Now() != 12.5 {
		t.Errorf("Now = %g, want 12.5", e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("RunUntil into the past should panic")
		}
	}()
	e.RunUntil(1)
}

func TestClockNeverGoesBackward(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := New()
		last := -1.0
		ok := true
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth > 3 {
				return
			}
			e.After(r.Float64()*2, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				if r.Intn(2) == 0 {
					schedule(depth + 1)
				}
			})
		}
		for i := 0; i < 20; i++ {
			schedule(0)
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("clock monotonicity violated: %v", err)
	}
}

func TestExpInterval(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := ExpInterval(r, 2)
		if v < 0 {
			t.Fatalf("negative interval %g", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("empirical mean = %g, want ~2", mean)
	}
	defer func() {
		if recover() == nil {
			t.Error("ExpInterval with non-positive mean should panic")
		}
	}()
	ExpInterval(r, 0)
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := New()
		r := rand.New(rand.NewSource(7))
		var times []float64
		var tick func()
		tick = func() {
			times = append(times, e.Now())
			if len(times) < 50 {
				e.After(ExpInterval(r, 1), tick)
			}
		}
		e.After(ExpInterval(r, 1), tick)
		e.Run()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at step %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 100; j++ {
			e.At(float64(j%10), func() {})
		}
		e.Run()
	}
}
