// Package chaos is a seeded, deterministic fault-schedule engine for live
// clusters. It composes the repository's fault primitives — transport
// partitions/loss/latency (transport.Faults), replica crash/restart with and
// without state loss (runtime.Cluster), SIGKILL-style crashes with recovery
// from on-disk WALs (durable scenarios, runtime.RestartFromDisk), injected
// storage faults on those WALs (vfs.FaultFS: slow, dying and full disks,
// power cuts that evaporate unsynced bytes), live shard add/remove
// (shard.Router), and demand-field flips (demand.Mutable)
// — into scripted adversarial scenarios, applies background client traffic
// while the schedule runs, and checks invariants at quiesce points:
//
//  1. durability — every acknowledged write survives and converges after
//     faults heal (writes whose only copy died with a crashed replica are
//     classified at-risk, not required; see tracker.go — on durable
//     scenarios without deliberately lossy events the at-risk set must
//     additionally be empty, because acks imply fsync),
//  2. monotonicity — store versions never regress per key per replica
//     across converged checkpoints,
//  3. convergence — Converged holds after fault-free settling, with all
//     live store digests equal,
//  4. demand ordering — the paper's property: high-demand replicas reach
//     consistency before low-demand ones under identical fault pressure,
//  5. session guarantees — on session-armed scenarios (Scenario.Sessions)
//     client sessions keep read-your-writes and monotonic reads through
//     every fault, shedding visibly (not-fresh) rather than serving stale.
//
// # Seed reproducibility
//
// A Scenario's event schedule is pure data, and every built-in or randomly
// generated schedule is a deterministic function of (name, seed, scale) or
// (seed, GenConfig) alone. Running the same scenario with the same seed
// twice produces byte-identical Schedule() and — whenever the invariants
// hold, which they must — byte-identical Verdict() output. Wall-clock
// measurements (propagation times, op counts) are intentionally excluded
// from the verdict and reported separately via Observations(). To replay a
// CI failure locally, copy the seed from the logged schedule header and run
//
//	go run ./cmd/chaoscheck -scenario <name> -seed <seed>
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/demand"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/topology"
	"repro/internal/vclock"
	"repro/internal/wal"
	"repro/internal/workload"
)

// NodeID aliases the replica identifier.
type NodeID = vclock.NodeID

// EventKind enumerates the fault and checkpoint actions a schedule can take.
type EventKind int

const (
	// EvPartition severs every link between Nodes and Peers in the target
	// network (split-brain).
	EvPartition EventKind = iota
	// EvHeal restores every severed link in the target network.
	EvHeal
	// EvKill crashes the replicas in Nodes.
	EvKill
	// EvRestart restarts crashed replicas with empty state (state loss):
	// recovery happens through anti-entropy.
	EvRestart
	// EvRestartPreserve restarts crashed replicas with their protocol state
	// intact, as if recovering from durable storage.
	EvRestartPreserve
	// EvRestartDisk restarts crashed replicas from their on-disk WAL and
	// snapshot (durable scenarios only): acknowledged writes survive the
	// crash for real, so the durability invariant holds with nothing
	// reclassified at-risk.
	EvRestartDisk
	// EvSetLoss sets the per-message drop probability to Rate.
	EvSetLoss
	// EvSetLatency sets base delivery latency and jitter.
	EvSetLatency
	// EvDemandFlip inverts the demand field: hottest replicas become
	// coldest and vice versa (single-cluster scenarios only).
	EvDemandFlip
	// EvAddShard grows a sharded keyspace by one group named Shard
	// (router scenarios only).
	EvAddShard
	// EvRemoveShard shrinks a sharded keyspace, handing the named group's
	// keys off (router scenarios only).
	EvRemoveShard
	// EvQuiesce pauses traffic, waits for convergence, and checks the
	// convergence, digest-agreement and monotonicity invariants.
	EvQuiesce
	// EvProbe measures the paper's demand-ordering property: probe writes
	// are injected at the lowest-demand replica and per-replica arrival
	// times are compared across demand ranks (single-cluster only).
	EvProbe
	// EvDiskSlow stalls every fsync on the targeted replicas' WAL disks
	// (empty Nodes = the whole cluster): each sync takes Latency, growing by
	// Ramp per sync up to the Jitter cap. The degradation policy demands
	// slower acks, not fail-stops. Durable single-cluster scenarios only.
	EvDiskSlow
	// EvDiskDie makes the targeted replicas' WAL disks return I/O errors —
	// permanently, or on the next Count syncs when Count > 0. Either way the
	// first failed sync fail-stops the replica (sync errors are sticky:
	// durability is in doubt). Durable single-cluster scenarios only.
	EvDiskDie
	// EvDiskFull exhausts the targeted replicas' WAL disks after Budget more
	// bytes: the write that crosses the budget is torn at the boundary and
	// returns ENOSPC, fail-stopping the replica. Durable single-cluster
	// scenarios only.
	EvDiskFull
	// EvDiskHeal clears every injected disk fault on the targeted replicas
	// (empty Nodes = everywhere) — the disk is replaced or space is freed.
	EvDiskHeal
	// EvPowerCut kills the replicas in Nodes AND drops an injector-chosen
	// suffix of each one's unsynced WAL bytes, possibly mid-record — a crash
	// where the page cache never reached the platter. Revive with
	// EvRestartDisk; acked (= synced) writes must all survive.
	EvPowerCut
	// EvBurst switches the background traffic to the scenario's Burst
	// workload (typically open-loop at a rate far past capacity — a flash
	// crowd), interrupting the in-flight normal round so the flood starts
	// promptly. Requires Scenario.Burst. Not a lossy event: shed writes are
	// rejected before any ack, so the durability invariants stay armed.
	EvBurst
	// EvBurstStop returns the background traffic to the normal Load and
	// marks the start of the recovery window the goodput-recovery gate
	// measures.
	EvBurstStop
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvPartition:
		return "partition"
	case EvHeal:
		return "heal-all"
	case EvKill:
		return "kill"
	case EvRestart:
		return "restart"
	case EvRestartPreserve:
		return "restart-preserve"
	case EvRestartDisk:
		return "restart-disk"
	case EvSetLoss:
		return "set-loss"
	case EvSetLatency:
		return "set-latency"
	case EvDemandFlip:
		return "demand-flip"
	case EvAddShard:
		return "add-shard"
	case EvRemoveShard:
		return "remove-shard"
	case EvQuiesce:
		return "quiesce"
	case EvProbe:
		return "probe"
	case EvDiskSlow:
		return "disk-slow"
	case EvDiskDie:
		return "disk-die"
	case EvDiskFull:
		return "disk-full"
	case EvDiskHeal:
		return "disk-heal"
	case EvPowerCut:
		return "power-cut"
	case EvBurst:
		return "burst"
	case EvBurstStop:
		return "burst-stop"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one scheduled action. At is the offset from scenario start; if
// the preceding event overran (a quiesce waiting for convergence), the
// event fires immediately after it.
type Event struct {
	At      time.Duration
	Kind    EventKind
	Shard   string        // target group for node-level events in router scenarios; spec name for add/remove
	Nodes   []NodeID      // kill/restart/disk-fault targets, or partition side A
	Peers   []NodeID      // partition side B
	Rate    float64       // loss probability for EvSetLoss
	Latency time.Duration // base delay for EvSetLatency; base fsync stall for EvDiskSlow
	Jitter  time.Duration // jitter bound for EvSetLatency; fsync stall cap for EvDiskSlow
	Ramp    time.Duration // per-sync stall growth for EvDiskSlow
	Count   int           // EvDiskDie: fail the next Count syncs (0 = permanently)
	Budget  int64         // EvDiskFull: bytes accepted before ENOSPC
}

// String renders the event deterministically (schedule contract).
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "+%-8v %s", e.At, e.Kind)
	if e.Shard != "" {
		fmt.Fprintf(&b, " %s", e.Shard)
	}
	switch e.Kind {
	case EvPartition:
		fmt.Fprintf(&b, " %v | %v", e.Nodes, e.Peers)
	case EvKill, EvRestart, EvRestartPreserve, EvRestartDisk:
		fmt.Fprintf(&b, " %v", e.Nodes)
	case EvSetLoss:
		fmt.Fprintf(&b, " %g", e.Rate)
	case EvSetLatency:
		fmt.Fprintf(&b, " %v jitter %v", e.Latency, e.Jitter)
	case EvDiskSlow:
		fmt.Fprintf(&b, " %v ramp %v cap %v %s", e.Latency, e.Ramp, e.Jitter, diskTargets(e.Nodes))
	case EvDiskDie:
		if e.Count > 0 {
			fmt.Fprintf(&b, " next %d %v", e.Count, e.Nodes)
		} else {
			fmt.Fprintf(&b, " permanent %v", e.Nodes)
		}
	case EvDiskFull:
		fmt.Fprintf(&b, " budget %d %v", e.Budget, e.Nodes)
	case EvDiskHeal:
		fmt.Fprintf(&b, " %s", diskTargets(e.Nodes))
	case EvPowerCut:
		fmt.Fprintf(&b, " %v", e.Nodes)
	}
	return b.String()
}

// diskTargets renders a disk-fault target list, where empty means the whole
// cluster.
func diskTargets(nodes []NodeID) string {
	if len(nodes) == 0 {
		return "all"
	}
	return fmt.Sprintf("%v", nodes)
}

// Scenario is one reproducible chaos run: a system shape, a fault schedule,
// and the workload that runs underneath it.
type Scenario struct {
	// Name labels the scenario in schedules and verdicts.
	Name string
	// Description says what the scenario stresses.
	Description string
	// Seed drives every RNG involved — replica session timing, network
	// loss/jitter, workload key choice, and random schedule generation.
	Seed int64
	// Nodes is the replica count (per shard group when Shards > 1).
	Nodes int
	// Shards > 1 runs the schedule against a shard.Router with that many
	// groups; otherwise a single runtime.Cluster.
	Shards int
	// Topology picks the replica graph: "ring" (default), "complete", or
	// "ba" (Barabási–Albert).
	Topology string
	// Durable runs the system with the durable persistence plane on
	// (runtime.WithDurability per cluster): client writes are fsynced
	// before their ack, EvKill becomes a SIGKILL-style crash that loses
	// only unsynced state, and EvRestartDisk recovers replicas from disk.
	// The durability invariant then demands zero at-risk writes at the
	// final check. Durable affects execution only; the schedule stays a
	// pure function of (name, seed, scale).
	Durable bool
	// DataDir roots the durable replicas' WALs; empty means a fresh
	// temporary directory per run, removed afterwards. Only meaningful
	// with Durable.
	DataDir string
	// Field fixes the per-replica demand (indexed by local id, applied to
	// every group); nil draws Uniform(1,101) demands from Seed.
	Field demand.Static
	// Events is the fault schedule, ordered by At.
	Events []Event
	// Load configures the background traffic. Seed is overridden with the
	// scenario seed. ReadFraction 0 (unset) selects a balanced 0.5 mix so
	// durability sees plenty of writes; request an all-write mix with a
	// negative value (clamped to 0 before the workload runs).
	Load workload.Config
	// SessionInterval and AdvertInterval tune the protocol (defaults 15ms
	// and 5ms — fast convergence keeps scenarios short).
	SessionInterval time.Duration
	AdvertInterval  time.Duration
	// QuiesceTimeout bounds each convergence wait and probe (default 30s).
	QuiesceTimeout time.Duration
	// Probes is the number of probe writes per EvProbe (default 8).
	Probes int
	// Obs, when non-nil, wires the observability plane into the system
	// under test (runtime.WithObs per cluster, shard.Config.Obs in router
	// mode) and adds a metrics-consistency check at the final quiesce: the
	// acked-write counter scraped from the registry must equal the
	// tracker's independent count. Like Durable it affects execution only —
	// the schedule stays a pure function of (name, seed, scale).
	Obs *obs.Registry
	// WALTuning, when non-nil, overrides the durable replicas' WAL
	// configuration (runtime.WithDurabilityTuning) — scenarios use it to
	// stress the pipelined sync stage under specific knobs, e.g. an fsync
	// coalescing window that keeps more batches in flight when power is
	// cut. It replaces the runtime's defaults wholesale. Execution-only,
	// like Durable and Obs; only meaningful on durable single-cluster
	// scenarios.
	WALTuning *wal.Options
	// Admission, when non-nil, arms the replicas' admission plane
	// (runtime.WithAdmission per cluster) and adds the overload gates at
	// the final check: shedding visibly engaged, combining-queue sojourn
	// p99 bounded, and goodput recovered after the burst. The engine wires
	// an observability registry automatically (the gates scrape it) when
	// Obs is nil. Execution-only, like Durable and Obs.
	Admission *runtime.AdmissionConfig
	// Burst is the workload EvBurst switches the background traffic to —
	// typically open-loop at a rate far past capacity. Unset fields default
	// to a 256-worker all-write open-loop flood over the Load keyspace.
	// Execution-only; EvBurst events require it.
	Burst *workload.Config
	// Sessions arms the session-guarantee oracle: every workload worker
	// drives its traffic through a real client session at a mixed
	// consistency-level read mix (Load's session fractions default to
	// 25/10/5 percent session/bounded/strong when all are unset), and each
	// successful session- or strong-level read is checked op-by-op for
	// read-your-writes and monotonic reads against the session's floor. The
	// final check then gates on zero violations (freshness sheds are not
	// violations — they ARE the contract under faults). Session-armed
	// schedules must not contain EvRestart: empty-state restarts
	// deliberately lose acked session state. Execution-only, like Durable.
	Sessions bool
}

func (s Scenario) withDefaults() Scenario {
	if s.Name == "" {
		s.Name = "unnamed"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Nodes <= 0 {
		s.Nodes = 8
	}
	if s.Shards <= 0 {
		s.Shards = 1
	}
	if s.Topology == "" {
		s.Topology = "ring"
	}
	if s.SessionInterval <= 0 {
		s.SessionInterval = 15 * time.Millisecond
	}
	if s.AdvertInterval <= 0 {
		s.AdvertInterval = 5 * time.Millisecond
	}
	if s.QuiesceTimeout <= 0 {
		s.QuiesceTimeout = 30 * time.Second
	}
	if s.Probes <= 0 {
		s.Probes = 8
	}
	if s.Load.Workers <= 0 {
		s.Load.Workers = 6
	}
	if s.Load.Ops <= 0 {
		s.Load.Ops = 4000 // per background round; rounds repeat until the run ends
	}
	if s.Load.Keys <= 0 {
		s.Load.Keys = 256
	}
	switch {
	case s.Load.ReadFraction == 0:
		s.Load.ReadFraction = 0.5 // balanced mix: durability needs writes
	case s.Load.ReadFraction < 0:
		s.Load.ReadFraction = 0 // explicit all-write request
	case s.Load.ReadFraction > 1:
		s.Load.ReadFraction = 1
	}
	if s.Load.ValueBytes <= 0 {
		s.Load.ValueBytes = 32
	}
	if s.Sessions && s.Load.SessionReads == 0 && s.Load.BoundedReads == 0 && s.Load.StrongReads == 0 {
		s.Load.SessionReads, s.Load.BoundedReads, s.Load.StrongReads = 0.25, 0.10, 0.05
	}
	s.Load.Seed = s.Seed
	if s.Burst != nil {
		b := *s.Burst
		if b.Workers <= 0 {
			b.Workers = 256
		}
		if b.Ops <= 0 {
			b.Ops = 8000
		}
		if b.Keys <= 0 {
			b.Keys = s.Load.Keys
		}
		switch {
		case b.ReadFraction < 0:
			b.ReadFraction = 0 // explicit all-write request, like Load
		case b.ReadFraction > 1:
			b.ReadFraction = 1
		}
		if b.ValueBytes <= 0 {
			b.ValueBytes = s.Load.ValueBytes
		}
		if b.ArrivalRate <= 0 {
			b.ArrivalRate = 50000
		}
		// A distinct seed keeps the burst's key stream decorrelated from the
		// normal load's without touching the scenario's reproducibility.
		b.Seed = s.Seed ^ 0x9e3779b9
		s.Burst = &b
	}
	return s
}

// Validate checks the schedule against the system shape.
func (s Scenario) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("chaos: need at least 2 replicas, have %d", s.Nodes)
	}
	switch s.Topology {
	case "ring", "complete", "ba":
	default:
		return fmt.Errorf("chaos: unknown topology %q", s.Topology)
	}
	if s.Field != nil && len(s.Field) != s.Nodes {
		return fmt.Errorf("chaos: demand field has %d entries for %d nodes", len(s.Field), s.Nodes)
	}
	sharded := s.Shards > 1
	var prev time.Duration
	for i, e := range s.Events {
		if e.At < prev {
			return fmt.Errorf("chaos: event %d (%v) out of order", i, e)
		}
		prev = e.At
		switch e.Kind {
		case EvPartition:
			if len(e.Nodes) == 0 || len(e.Peers) == 0 {
				return fmt.Errorf("chaos: event %d: partition needs two non-empty sides", i)
			}
		case EvKill, EvRestart, EvRestartPreserve, EvRestartDisk:
			if len(e.Nodes) == 0 {
				return fmt.Errorf("chaos: event %d: %v needs targets", i, e.Kind)
			}
			if sharded && e.Shard == "" {
				return fmt.Errorf("chaos: event %d: %v needs a target shard in a sharded scenario", i, e.Kind)
			}
			if e.Kind == EvRestartDisk && !s.Durable {
				return fmt.Errorf("chaos: event %d: %v needs a durable scenario", i, e.Kind)
			}
			if e.Kind == EvRestart && s.Sessions {
				return fmt.Errorf("chaos: event %d: empty-state restart in a session-armed scenario (it deliberately loses acked session state)", i)
			}
		case EvSetLoss:
			if e.Rate < 0 || e.Rate >= 1 {
				return fmt.Errorf("chaos: event %d: loss rate %g outside [0,1)", i, e.Rate)
			}
		case EvDemandFlip, EvProbe:
			if sharded {
				return fmt.Errorf("chaos: event %d: %v is single-cluster only", i, e.Kind)
			}
		case EvDiskSlow, EvDiskDie, EvDiskFull, EvDiskHeal, EvPowerCut:
			if !s.Durable {
				return fmt.Errorf("chaos: event %d: %v needs a durable scenario", i, e.Kind)
			}
			if sharded {
				return fmt.Errorf("chaos: event %d: %v is single-cluster only", i, e.Kind)
			}
			switch e.Kind {
			case EvDiskDie, EvDiskFull, EvPowerCut:
				if len(e.Nodes) == 0 {
					return fmt.Errorf("chaos: event %d: %v needs targets", i, e.Kind)
				}
			}
			if e.Kind == EvDiskFull && e.Budget < 0 {
				return fmt.Errorf("chaos: event %d: disk-full budget %d is negative", i, e.Budget)
			}
		case EvAddShard, EvRemoveShard:
			if !sharded {
				return fmt.Errorf("chaos: event %d: %v needs a sharded scenario", i, e.Kind)
			}
			if e.Shard == "" {
				return fmt.Errorf("chaos: event %d: %v needs a shard name", i, e.Kind)
			}
		case EvBurst, EvBurstStop:
			if s.Burst == nil {
				return fmt.Errorf("chaos: event %d: %v needs Scenario.Burst", i, e.Kind)
			}
		}
		if e.Shard != "" && !sharded {
			switch e.Kind {
			case EvAddShard, EvRemoveShard:
			default:
				return fmt.Errorf("chaos: event %d targets shard %q in a single-cluster scenario", i, e.Shard)
			}
		}
		for _, id := range append(append([]NodeID(nil), e.Nodes...), e.Peers...) {
			if int(id) < 0 || int(id) >= s.Nodes {
				return fmt.Errorf("chaos: event %d targets replica %v outside [0,%d)", i, id, s.Nodes)
			}
		}
	}
	return nil
}

// hasLossyEvents reports whether the schedule contains events that are
// *documented* to put acknowledged writes at risk even under durability:
// empty-state restarts (deliberate state loss) and reshards (the handoff
// window is non-linearizable against racing writes).
func (s Scenario) hasLossyEvents() bool {
	for _, e := range s.Events {
		switch e.Kind {
		case EvRestart, EvAddShard, EvRemoveShard:
			return true
		}
	}
	return false
}

// Schedule renders the full event schedule. The output is a deterministic
// function of the scenario value — the reproducibility contract.
func (s Scenario) Schedule() string {
	s = s.withDefaults()
	var b strings.Builder
	durable := ""
	if s.Durable {
		durable = " durable=true"
	}
	fmt.Fprintf(&b, "scenario %s seed=%d nodes=%d shards=%d topo=%s%s events=%d\n",
		s.Name, s.Seed, s.Nodes, s.Shards, s.Topology, durable, len(s.Events))
	for i, e := range s.Events {
		fmt.Fprintf(&b, "  %2d %s\n", i, e)
	}
	return b.String()
}

// buildGraph constructs the scenario's replica topology. Shapes that need
// more replicas than the scenario has fall back to the complete graph
// (identical for n <= 3 anyway).
func buildGraph(topo string, n int, rng *rand.Rand) *topology.Graph {
	switch {
	case topo == "ba" && n >= 3:
		return topology.BarabasiAlbert(n, 2, rng)
	case topo == "ring" && n >= 3:
		return topology.Ring(n)
	default:
		return topology.Complete(n)
	}
}

// sortEvents orders a generated schedule by offset, keeping generation
// order for ties.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
}
