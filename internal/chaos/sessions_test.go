package chaos

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/vclock"
	"repro/internal/workload"
)

func TestSessionScenariosArmed(t *testing.T) {
	armed := map[string]bool{"split-brain": true, "crash-recover-disk": true, "flash-crowd": true}
	for _, name := range Names() {
		sc, err := Named(name, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Sessions != armed[name] {
			t.Errorf("%s: Sessions = %t, want %t", name, sc.Sessions, armed[name])
		}
		if sc.Sessions {
			load := sc.withDefaults().Load
			if load.SessionReads <= 0 {
				t.Errorf("%s: session-armed scenario has no session read mix", name)
			}
		}
	}
}

func TestValidateRejectsSessionEmptyRestart(t *testing.T) {
	sc := Scenario{
		Nodes:    4,
		Topology: "ring",
		Sessions: true,
		Events: []Event{
			{At: 0, Kind: EvKill, Nodes: []NodeID{1}},
			{At: time.Second, Kind: EvRestart, Nodes: []NodeID{1}},
		},
	}
	if err := sc.Validate(); err == nil {
		t.Fatal("empty-state restart accepted in a session-armed scenario")
	}
	// The durable recovery path stays legal.
	sc.Durable = true
	sc.Events[1].Kind = EvRestartDisk
	if err := sc.Validate(); err != nil {
		t.Fatalf("restart-disk rejected in a session-armed scenario: %v", err)
	}
}

// scriptedSess is a sysSession whose reads replay a scripted version
// sequence — the fixture proving the oracle actually catches violations.
type scriptedSess struct {
	clock uint64
	reads []func() ([]byte, verKey, bool, error)
}

type scriptedSys struct{ sess *scriptedSess }

func (s scriptedSys) write(string, []byte) (ackLoc, error) { return ackLoc{}, nil }
func (s scriptedSys) read(string) ([]byte, bool, error)    { return nil, false, nil }
func (s scriptedSys) newSession() sysSession               { return s.sess }

func (s *scriptedSess) write(string, []byte) (ackLoc, verKey, error) {
	s.clock++
	return ackLoc{node: 0}, verKey{clock: s.clock, ts: vclock.Timestamp{Node: 0, Seq: s.clock}}, nil
}

func (s *scriptedSess) read(string, workload.Level) ([]byte, verKey, bool, error) {
	next := s.reads[0]
	s.reads = s.reads[1:]
	return next()
}

func TestSessionOracleDetectsViolations(t *testing.T) {
	served := func(clock uint64) func() ([]byte, verKey, bool, error) {
		return func() ([]byte, verKey, bool, error) {
			return []byte("v"), verKey{clock: clock, ts: vclock.Timestamp{Node: 1, Seq: clock}}, true, nil
		}
	}
	miss := func() ([]byte, verKey, bool, error) { return nil, verKey{}, false, nil }

	sess := &scriptedSess{reads: []func() ([]byte, verKey, bool, error){
		served(1), // fresh: establishes the floor at the write's clock anyway
		miss,      // read-your-writes violation: the session wrote the key
		served(0), // monotonic-reads violation: below the floor
		served(5), // recovery: at/above floor, ratchets it
	}}
	tr := newTracker(scriptedSys{sess: sess})
	tr.oracle = newSessionOracle()

	ws := tr.NewSession()
	if ws == nil {
		t.Fatal("armed tracker refused to open a session")
	}
	if err := ws.Write("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := ws.Read("k", workload.LevelSession); err != nil {
			t.Fatal(err)
		}
	}
	_, reads, violations, samples := tr.oracle.stats()
	if reads != 4 {
		t.Errorf("oracle checked %d reads, want 4", reads)
	}
	if violations != 2 {
		t.Fatalf("oracle counted %d violations, want 2 (%v)", violations, samples)
	}
	if !strings.Contains(samples[0], "read-your-writes") || !strings.Contains(samples[1], "monotonic-reads") {
		t.Errorf("violation details miss their guarantee names: %v", samples)
	}
}

func TestSessionOracleIgnoresUncheckedLevels(t *testing.T) {
	// Bounded and eventual reads may serve stale by contract: a regressed
	// version at those levels must not count.
	sess := &scriptedSess{reads: []func() ([]byte, verKey, bool, error){
		func() ([]byte, verKey, bool, error) { return nil, verKey{}, false, nil },
		func() ([]byte, verKey, bool, error) { return nil, verKey{}, false, nil },
	}}
	tr := newTracker(scriptedSys{sess: sess})
	tr.oracle = newSessionOracle()
	ws := tr.NewSession()
	if err := ws.Write("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []workload.Level{workload.LevelEventual, workload.LevelBounded} {
		if _, _, err := ws.Read("k", lvl); err != nil {
			t.Fatal(err)
		}
	}
	if _, reads, violations, _ := tr.oracle.stats(); reads != 0 || violations != 0 {
		t.Errorf("unchecked levels entered the oracle: %d reads, %d violations", reads, violations)
	}
}

func TestTrackerSessionsDisarmedByDefault(t *testing.T) {
	// Without the oracle armed — and on systems that cannot open sessions —
	// NewSession degrades to nil so the workload falls back to plain reads.
	if s := newTracker(scriptedSys{sess: &scriptedSess{}}).NewSession(); s != nil {
		t.Error("unarmed tracker opened a session")
	}
	tr := newTracker(&fakeSys{})
	tr.oracle = newSessionOracle()
	if s := tr.NewSession(); s != nil {
		t.Error("sessionless system under test opened a session")
	}
}

func TestRunSessionScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos runs in -short mode")
	}
	sc, err := Named("split-brain", 21, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Passed() {
		t.Fatalf("session-armed scenario failed:\n%s%s", rep.Verdict(), rep.Observations())
	}
	if !strings.Contains(rep.Verdict(), "final/session-guarantees") {
		t.Errorf("verdict missing the session gate:\n%s", rep.Verdict())
	}
}
