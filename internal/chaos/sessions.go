package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/workload"
)

// This file is the session-guarantee oracle: when Scenario.Sessions is set,
// background workload workers drive mixed-consistency traffic through real
// client sessions, and every successful session- or strong-level read is
// checked op-by-op against the session's floor — the freshest version
// (Lamport clock major, timestamp tiebreak: the store's LWW order) the
// session has written or read per key. A read below the floor is a
// monotonic-reads violation; a miss on a key the session wrote is a
// read-your-writes violation. Freshness sheds (ErrNotFresh after the
// deadline) and outage errors are NOT violations — refusing to serve stale
// is exactly the freshness contract under faults — so the oracle stays
// armed through partitions, crash/recover cycles, and floods.
//
// Scope mirrors the client surface's documented guarantees: floors reset
// when a reshard moves key ownership (shard.Session carries tokens per
// group), and empty-state restarts — which deliberately lose acked state —
// are not scheduled in session-armed scenarios.

// sessionFreshDeadline bounds every session read's freshness wait in chaos
// runs: short enough that a partition-stranded read sheds and the worker
// moves on, long enough that healthy replication always makes it.
const sessionFreshDeadline = 400 * time.Millisecond

// levelOf maps the workload's consistency levels onto the runtime's.
func levelOf(lvl workload.Level) runtime.Level {
	switch lvl {
	case workload.LevelSession:
		return runtime.LevelSession
	case workload.LevelBounded:
		return runtime.LevelBounded
	case workload.LevelStrong:
		return runtime.LevelStrong
	}
	return runtime.LevelEventual
}

// sysSession is one logical client session against the system under test:
// leveled ops that also return the served version, so the oracle can place
// each observation in LWW order.
type sysSession interface {
	write(key string, value []byte) (ackLoc, verKey, error)
	read(key string, lvl workload.Level) ([]byte, verKey, bool, error)
}

// sessionSys is a sysTarget that can open client sessions.
type sessionSys interface {
	sysTarget
	newSession() sysSession
}

// newSession opens a failover-capable cluster session: ops round-robin over
// replicas like the plain clusterSys paths, retrying elsewhere when a
// replica is down or cannot serve fresh — the session token makes any
// replica a valid server for the same guarantees.
func (s *clusterSys) newSession() sysSession {
	sess := s.c.NewSession()
	sess.Deadline = sessionFreshDeadline
	return &clusterSession{sys: s, sess: sess}
}

type clusterSession struct {
	sys  *clusterSys
	sess *runtime.Session
}

func (s *clusterSession) write(key string, value []byte) (ackLoc, verKey, error) {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		id := NodeID(s.sys.next.Add(1) % uint64(s.sys.n))
		rec, werr := s.sess.Write(id, key, value)
		if werr == nil {
			return ackLoc{node: id}, verKey{clock: rec.Clock, ts: rec.TS}, nil
		}
		err = werr
	}
	return ackLoc{}, verKey{}, err
}

func (s *clusterSession) read(key string, lvl workload.Level) ([]byte, verKey, bool, error) {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		id := NodeID(s.sys.next.Add(1) % uint64(s.sys.n))
		v, ok, rerr := s.sess.ReadLevel(id, key, levelOf(lvl))
		if rerr == nil {
			return v.Value, verKey{clock: v.Clock, ts: v.TS}, ok, nil
		}
		err = rerr
	}
	return nil, verKey{}, false, err
}

// newSession opens a sharded session: the router's own token-aware routing
// picks the serving replica, so no failover loop is needed here.
func (s routerSys) newSession() sysSession {
	sess := s.r.NewSession()
	sess.Deadline = sessionFreshDeadline
	return routerSession{sess: sess}
}

type routerSession struct{ sess *shard.Session }

func (s routerSession) write(key string, value []byte) (ackLoc, verKey, error) {
	rc, err := s.sess.Write(key, value)
	if err != nil {
		return ackLoc{}, verKey{}, err
	}
	return ackLoc{shard: rc.Shard, node: rc.Node}, verKey{clock: rc.Clock, ts: rc.TS}, nil
}

func (s routerSession) read(key string, lvl workload.Level) ([]byte, verKey, bool, error) {
	v, ok, err := s.sess.ReadVersioned(key, levelOf(lvl))
	if err != nil {
		return nil, verKey{}, false, err
	}
	return v.Value, verKey{clock: v.Clock, ts: v.TS}, ok, nil
}

// sessionOracle aggregates verdict state across every checked session.
type sessionOracle struct {
	mu         sync.Mutex
	sessions   int
	reads      int // successful session/strong-level reads checked
	violations int
	samples    []string // first few violation details for the report
}

func newSessionOracle() *sessionOracle { return &sessionOracle{} }

// open starts one checked session over a live system session.
func (o *sessionOracle) open(t *tracker, sys sysSession) *oracleSession {
	o.mu.Lock()
	o.sessions++
	id := o.sessions
	o.mu.Unlock()
	return &oracleSession{t: t, sys: sys, oracle: o, id: id, floors: make(map[string]*sessFloor)}
}

func (o *sessionOracle) read() {
	o.mu.Lock()
	o.reads++
	o.mu.Unlock()
}

func (o *sessionOracle) violation(detail string) {
	o.mu.Lock()
	o.violations++
	if len(o.samples) < 4 {
		o.samples = append(o.samples, detail)
	}
	o.mu.Unlock()
}

func (o *sessionOracle) stats() (sessions, reads, violations int, samples []string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sessions, o.reads, o.violations, append([]string(nil), o.samples...)
}

// sessFloor is one session's reference state for one key.
type sessFloor struct {
	ver   verKey
	wrote bool // the session wrote the key: session reads must find it
}

// oracleSession implements workload.Session: every op flows through the
// tracker's gate (so Pause still drains all traffic) and acked writes join
// the durability books exactly like plain writes; session/strong reads are
// additionally checked against the session's floors.
type oracleSession struct {
	t      *tracker
	sys    sysSession
	oracle *sessionOracle
	id     int
	gen    int // reshard generation the floors were built under
	floors map[string]*sessFloor
}

func (s *oracleSession) floor(key string) *sessFloor {
	f := s.floors[key]
	if f == nil {
		f = &sessFloor{}
		s.floors[key] = f
	}
	return f
}

// syncGen drops the floors when key ownership may have moved, returning
// whether a reshard is in flight right now (checks are suspended while one
// is — the handoff window is documented non-linearizable).
func (s *oracleSession) syncGen() bool {
	active, gen := s.t.reshardState()
	if gen != s.gen {
		s.gen = gen
		s.floors = make(map[string]*sessFloor)
	}
	return active
}

func (s *oracleSession) Write(key string, value []byte) error {
	s.t.gate.RLock()
	defer s.t.gate.RUnlock()
	loc, ver, err := s.sys.write(key, value)
	if err != nil {
		return err
	}
	s.t.recordAck(key, value, loc)
	if s.syncGen() {
		return nil // mid-reshard acks are at-risk; keep them off the floors
	}
	f := s.floor(key)
	if f.ver.regressedFrom(ver) {
		f.ver = ver
	}
	f.wrote = true
	return nil
}

func (s *oracleSession) Read(key string, lvl workload.Level) ([]byte, bool, error) {
	s.t.gate.RLock()
	defer s.t.gate.RUnlock()
	v, ver, ok, err := s.sys.read(key, lvl)
	if err != nil {
		// Sheds (not-fresh after the deadline) and outages are the
		// workload's business; refusing to serve stale is the contract.
		return nil, false, err
	}
	if lvl != workload.LevelSession && lvl != workload.LevelStrong {
		return v, ok, nil // eventual/bounded reads carry no per-session floor
	}
	if s.syncGen() {
		return v, ok, nil
	}
	f := s.floor(key)
	s.oracle.read()
	switch {
	case !ok && f.wrote:
		s.oracle.violation(fmt.Sprintf(
			"session %d: %v read of %q missed the session's own write (floor clock %d) — read-your-writes violation",
			s.id, lvl, key, f.ver.clock))
	case ok && ver.regressedFrom(f.ver):
		s.oracle.violation(fmt.Sprintf(
			"session %d: %v read of %q served clock %d (%v) below floor clock %d (%v) — monotonic-reads violation",
			s.id, lvl, key, ver.clock, ver.ts, f.ver.clock, f.ver.ts))
	case ok && f.ver.regressedFrom(ver):
		f.ver = ver
	}
	return v, ok, nil
}

// sessionChecks turns the oracle's verdict into the final gate: zero
// violations, over a schedule that actually exercised sessioned reads.
func (e *engine) sessionChecks() {
	sessions, reads, violations, samples := e.tracker.oracle.stats()
	res := CheckResult{
		Name: "final/session-guarantees",
		Pass: violations == 0 && reads > 0,
		Obs:  fmt.Sprintf("%d sessioned reads over %d sessions, 0 violations", reads, sessions),
	}
	switch {
	case violations > 0:
		res.Obs = ""
		res.Detail = fmt.Sprintf("%d session-guarantee violations (first %d: %v)",
			violations, len(samples), samples)
	case reads == 0:
		res.Obs = ""
		res.Detail = "session oracle armed but no session-level read ever succeeded"
	}
	e.rep.add(res)
}
