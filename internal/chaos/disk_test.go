package chaos

import (
	"context"
	"strings"
	"testing"
	"time"
)

// Tests for the storage fault-injection half of the chaos plane: disk event
// validation and rendering, plus live runs of the disk scenarios proving the
// degradation policy end to end — fail-stop on dying/full disks, degrade on
// slow ones, zero at-risk acked writes throughout.

func TestDiskEventsValidate(t *testing.T) {
	durable := Scenario{Nodes: 4, Topology: "ring", Seed: 1, Durable: true}
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"disk-slow without durable", func(s *Scenario) {
			s.Durable = false
			s.Events = []Event{{Kind: EvDiskSlow, Latency: time.Millisecond}}
		}},
		{"power-cut without durable", func(s *Scenario) {
			s.Durable = false
			s.Events = []Event{{Kind: EvPowerCut, Nodes: []NodeID{0}}}
		}},
		{"disk-die on sharded", func(s *Scenario) {
			s.Shards = 2
			s.Events = []Event{{Kind: EvDiskDie, Nodes: []NodeID{0}}}
		}},
		{"disk-die without targets", func(s *Scenario) {
			s.Events = []Event{{Kind: EvDiskDie}}
		}},
		{"disk-full without targets", func(s *Scenario) {
			s.Events = []Event{{Kind: EvDiskFull, Budget: 64}}
		}},
		{"power-cut without targets", func(s *Scenario) {
			s.Events = []Event{{Kind: EvPowerCut}}
		}},
		{"negative budget", func(s *Scenario) {
			s.Events = []Event{{Kind: EvDiskFull, Nodes: []NodeID{0}, Budget: -1}}
		}},
		{"disk target out of range", func(s *Scenario) {
			s.Events = []Event{{Kind: EvDiskDie, Nodes: []NodeID{9}}}
		}},
	}
	for _, tc := range cases {
		sc := durable
		tc.mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", tc.name)
		}
	}

	// The legal shapes: cluster-wide slow/heal need no targets, the rest do.
	sc := durable
	sc.Events = []Event{
		{Kind: EvDiskSlow, Latency: time.Millisecond, Ramp: time.Millisecond, Jitter: 5 * time.Millisecond},
		{Kind: EvDiskDie, Nodes: []NodeID{1}, Count: 2},
		{Kind: EvDiskFull, Nodes: []NodeID{2}, Budget: 1 << 10},
		{Kind: EvDiskHeal},
		{Kind: EvPowerCut, Nodes: []NodeID{3}},
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("valid disk schedule rejected: %v", err)
	}
}

// TestDiskEventsAreNotLossy pins the headline property: disk faults never
// excuse a lost ack, so schedules built from them keep the no-at-risk check
// armed.
func TestDiskEventsAreNotLossy(t *testing.T) {
	for _, name := range []string{"slow-disk", "dying-disk", "disk-full", "power-cut-matrix"} {
		sc, err := Named(name, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !sc.Durable {
			t.Errorf("%s is not durable", name)
		}
		if sc.hasLossyEvents() {
			t.Errorf("%s counts as lossy — the no-at-risk check would be skipped", name)
		}
	}
}

func TestEventStringDiskFormats(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{At: 200 * time.Millisecond, Kind: EvDiskSlow, Latency: time.Millisecond,
			Ramp: 500 * time.Microsecond, Jitter: 10 * time.Millisecond},
			"+200ms    disk-slow 1ms ramp 500µs cap 10ms all"},
		{Event{At: time.Second, Kind: EvDiskSlow, Nodes: []NodeID{2}, Latency: 5 * time.Millisecond,
			Ramp: time.Millisecond, Jitter: 25 * time.Millisecond},
			"+1s       disk-slow 5ms ramp 1ms cap 25ms [n2]"},
		{Event{At: time.Second, Kind: EvDiskDie, Nodes: []NodeID{3}}, "+1s       disk-die permanent [n3]"},
		{Event{At: time.Second, Kind: EvDiskDie, Nodes: []NodeID{6}, Count: 4}, "+1s       disk-die next 4 [n6]"},
		{Event{At: time.Second, Kind: EvDiskFull, Nodes: []NodeID{2}, Budget: 8192},
			"+1s       disk-full budget 8192 [n2]"},
		{Event{At: time.Second, Kind: EvDiskHeal}, "+1s       disk-heal all"},
		{Event{At: time.Second, Kind: EvDiskHeal, Nodes: []NodeID{5}}, "+1s       disk-heal [n5]"},
		{Event{At: 2 * time.Second, Kind: EvPowerCut, Nodes: []NodeID{0, 4}}, "+2s       power-cut [n0 n4]"},
	}
	for _, tc := range cases {
		if got := tc.ev.String(); got != tc.want {
			t.Errorf("Event.String() = %q, want %q", got, tc.want)
		}
	}
}

// TestRunDiskScenarios runs every storage-fault scenario live at reduced
// scale: all invariants must hold, and — because acks imply fsync and disk
// faults are never an excuse — the at-risk classification must be empty.
func TestRunDiskScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos runs in -short mode")
	}
	cases := []struct {
		name  string
		seed  int64
		scale float64
	}{
		{"slow-disk", 31, 0.4},
		{"dying-disk", 32, 0.4},
		{"disk-full", 33, 0.4},
		{"power-cut-matrix", 34, 0.4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sc, err := Named(tc.name, tc.seed, tc.scale)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
			defer cancel()
			rep, err := Run(ctx, sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !rep.Passed() {
				t.Fatalf("invariants failed:\n%s%s", rep.Verdict(), rep.Observations())
			}
			if !strings.Contains(rep.Verdict(), "final/no-at-risk") {
				t.Fatalf("verdict missing the no-at-risk check:\n%s", rep.Verdict())
			}
			if rep.AtRisk != 0 {
				t.Fatalf("%d acked writes classified at-risk under disk faults", rep.AtRisk)
			}
		})
	}
}
