package chaos

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestNamedScenariosValidate(t *testing.T) {
	for _, name := range Names() {
		for _, scale := range []float64{1, 0.5} {
			sc, err := Named(name, 42, scale)
			if err != nil {
				t.Fatalf("Named(%s, scale %g): %v", name, scale, err)
			}
			if err := sc.withDefaults().Validate(); err != nil {
				t.Errorf("%s (scale %g) does not validate: %v", name, scale, err)
			}
			if sc.Description == "" {
				t.Errorf("%s has no description", name)
			}
		}
	}
	if _, err := Named("no-such-scenario", 1, 1); err == nil {
		t.Error("unknown scenario name should error")
	}
}

func TestNamedScheduleDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, _ := Named(name, 42, 0.5)
		b, _ := Named(name, 42, 0.5)
		if a.Schedule() != b.Schedule() {
			t.Errorf("%s: same (seed, scale) produced different schedules", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Nodes: 6, Duration: 2 * time.Second, Quiesces: 2, Faults: 5}
	a := Generate(77, cfg)
	b := Generate(77, cfg)
	if a.Schedule() != b.Schedule() {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a.Schedule(), b.Schedule())
	}
	c := Generate(78, cfg)
	if a.Schedule() == c.Schedule() {
		t.Error("different seeds produced identical schedules")
	}
}

func TestGenerateValidates(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		sc := Generate(seed, GenConfig{Nodes: 6, Faults: 6, Quiesces: 2})
		if err := sc.withDefaults().Validate(); err != nil {
			t.Errorf("cluster seed %d: generated scenario invalid: %v\n%s", seed, err, sc.Schedule())
		}
		sc = Generate(seed, GenConfig{Nodes: 4, Shards: 3, Faults: 6, Quiesces: 2})
		if err := sc.withDefaults().Validate(); err != nil {
			t.Errorf("sharded seed %d: generated scenario invalid: %v\n%s", seed, err, sc.Schedule())
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := Scenario{Nodes: 4, Shards: 1, Topology: "ring", Seed: 1}
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"out-of-order events", func(s *Scenario) {
			s.Events = []Event{{At: time.Second, Kind: EvHeal}, {At: 0, Kind: EvHeal}}
		}},
		{"empty partition side", func(s *Scenario) {
			s.Events = []Event{{Kind: EvPartition, Nodes: []NodeID{0}}}
		}},
		{"kill without targets", func(s *Scenario) {
			s.Events = []Event{{Kind: EvKill}}
		}},
		{"loss rate 1", func(s *Scenario) {
			s.Events = []Event{{Kind: EvSetLoss, Rate: 1}}
		}},
		{"probe on sharded", func(s *Scenario) {
			s.Shards = 2
			s.Events = []Event{{Kind: EvProbe}}
		}},
		{"add-shard on cluster", func(s *Scenario) {
			s.Events = []Event{{Kind: EvAddShard, Shard: "x"}}
		}},
		{"sharded kill without shard", func(s *Scenario) {
			s.Shards = 2
			s.Events = []Event{{Kind: EvKill, Nodes: []NodeID{0}}}
		}},
		{"replica out of range", func(s *Scenario) {
			s.Events = []Event{{Kind: EvKill, Nodes: []NodeID{9}}}
		}},
		{"bad topology", func(s *Scenario) { s.Topology = "hypercube" }},
		{"field size mismatch", func(s *Scenario) { s.Field = []float64{1, 2} }},
	}
	for _, tc := range cases {
		sc := base
		tc.mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", tc.name)
		}
	}
}

// fakeSys acknowledges every op at a fixed location.
type fakeSys struct {
	mu   sync.Mutex
	loc  ackLoc
	fail bool
}

func (f *fakeSys) write(string, []byte) (ackLoc, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return ackLoc{}, errors.New("down")
	}
	return f.loc, nil
}

func (f *fakeSys) read(string) ([]byte, bool, error) { return nil, false, nil }

func (f *fakeSys) setLoc(loc ackLoc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loc = loc
}

func TestTrackerDurabilityClassification(t *testing.T) {
	sys := &fakeSys{loc: ackLoc{node: 0}}
	tr := newTracker(sys)

	// k1 acked at n0 and sealed at a converged quiesce: loss is a bug.
	if err := tr.Write("k1", []byte("a")); err != nil {
		t.Fatal(err)
	}
	tr.seal(nil)

	// k2 acked at n1, which then lost state: at-risk, presence optional.
	sys.setLoc(ackLoc{node: 1})
	if err := tr.Write("k2", []byte("b")); err != nil {
		t.Fatal(err)
	}
	tr.markLost(ackLoc{node: 1})

	// k3 acked during a reshard window: at-risk.
	tr.beginReshard()
	if err := tr.Write("k3", []byte("c")); err != nil {
		t.Fatal(err)
	}
	tr.endReshard()

	// k4 acked at a live replica, unsealed: still required (no state loss).
	sys.setLoc(ackLoc{node: 2})
	if err := tr.Write("k4", []byte("d")); err != nil {
		t.Fatal(err)
	}

	present := map[string]uint64{
		"k1": hashBytes([]byte("a")),
		"k4": hashBytes([]byte("d")),
		// k2, k3 lost — allowed, both at-risk.
	}
	lookup := func(key string) (uint64, bool) {
		h, ok := present[key]
		return h, ok
	}
	d := tr.checkDurability(lookup)
	if !d.ok() {
		t.Fatalf("expected clean durability, got %+v", d)
	}
	if d.required != 2 || d.atRiskOnly != 2 {
		t.Errorf("required=%d atRiskOnly=%d, want 2 and 2", d.required, d.atRiskOnly)
	}

	// Losing the sealed key is a violation.
	delete(present, "k1")
	if d := tr.checkDurability(lookup); d.missing != 1 {
		t.Errorf("missing=%d after dropping sealed key, want 1", d.missing)
	}

	// Converging to a value nobody acked is a violation.
	present["k1"] = hashBytes([]byte("never-acked"))
	if d := tr.checkDurability(lookup); d.wrongValue != 1 {
		t.Errorf("wrongValue=%d for fabricated value, want 1", d.wrongValue)
	}
}

func TestTrackerSealSkipsDeadAckers(t *testing.T) {
	sys := &fakeSys{loc: ackLoc{node: 3}}
	tr := newTracker(sys)
	if err := tr.Write("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// n3 is dead at the quiesce: convergence among the living says nothing
	// about its unreplicated acks, so the write must stay pending...
	tr.seal(map[ackLoc]bool{{node: 3}: true})
	tr.markLost(ackLoc{node: 3})
	d := tr.checkDurability(func(string) (uint64, bool) { return 0, false })
	if !d.ok() || d.atRiskOnly != 1 {
		t.Errorf("write sealed despite dead acker: %+v", d)
	}
	// ...whereas with the acker alive it seals.
	tr2 := newTracker(sys)
	if err := tr2.Write("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	tr2.seal(nil)
	tr2.markLost(ackLoc{node: 3})
	if d := tr2.checkDurability(func(string) (uint64, bool) { return 0, false }); d.missing != 1 {
		t.Errorf("sealed write not required after acker death: %+v", d)
	}
}

func TestTrackerPauseDrainsAndBlocks(t *testing.T) {
	sys := &fakeSys{}
	tr := newTracker(sys)
	tr.Pause()
	done := make(chan struct{})
	go func() {
		tr.Write("k", []byte("v"))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("write proceeded while paused")
	case <-time.After(20 * time.Millisecond):
	}
	tr.Resume()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("write never resumed")
	}
}

func TestErrorsOnUnknownShard(t *testing.T) {
	sc := Scenario{
		Nodes:  4,
		Shards: 2,
		Seed:   1,
		Events: []Event{{Kind: EvRemoveShard, Shard: "no-such-shard"}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := Run(ctx, sc); err == nil {
		t.Fatal("removing an unknown shard should fail the run")
	}
}

// The short end-to-end table: every run must pass all invariants, and the
// (schedule, verdict) pair must be byte-identical across repeat runs.
func TestRunScenariosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos runs in -short mode")
	}
	cases := []struct {
		name  string
		seed  int64
		scale float64
	}{
		{"split-brain", 11, 0.3},
		{"rolling-restart", 12, 0.3},
		{"reshard-under-fire", 13, 0.4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sc, err := Named(tc.name, tc.seed, tc.scale)
			if err != nil {
				t.Fatal(err)
			}
			out := func() string {
				ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
				defer cancel()
				rep, err := Run(ctx, sc)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if !rep.Passed() {
					t.Fatalf("invariants failed:\n%s%s", rep.Verdict(), rep.Observations())
				}
				return sc.Schedule() + rep.Verdict()
			}
			first, second := out(), out()
			if first != second {
				t.Errorf("same seed produced different schedule+verdict:\n%s\nvs\n%s", first, second)
			}
			if !strings.Contains(first, "final/durability") {
				t.Errorf("verdict missing durability check:\n%s", first)
			}
		})
	}
}

func TestRunGeneratedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos runs in -short mode")
	}
	sc := Generate(5, GenConfig{Nodes: 6, Duration: 1500 * time.Millisecond, Faults: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sc.Schedule())
	}
	if !rep.Passed() {
		t.Fatalf("generated scenario failed invariants:\n%s%s%s", sc.Schedule(), rep.Verdict(), rep.Observations())
	}
}

func TestEventStringFormats(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{At: 300 * time.Millisecond, Kind: EvPartition, Nodes: []NodeID{0, 1}, Peers: []NodeID{2, 3}},
			"+300ms    partition [n0 n1] | [n2 n3]"},
		{Event{At: time.Second, Kind: EvSetLoss, Rate: 0.25}, "+1s       set-loss 0.25"},
		{Event{At: time.Second, Kind: EvSetLatency, Latency: time.Millisecond, Jitter: 4 * time.Millisecond},
			"+1s       set-latency 1ms jitter 4ms"},
		{Event{At: 2 * time.Second, Kind: EvKill, Shard: "shard1", Nodes: []NodeID{3}},
			"+2s       kill shard1 [n3]"},
		{Event{At: 0, Kind: EvDemandFlip}, "+0s       demand-flip"},
	}
	for _, tc := range cases {
		if got := tc.ev.String(); got != tc.want {
			t.Errorf("Event.String() = %q, want %q", got, tc.want)
		}
	}
}

func TestRunCrashRecoverDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos runs in -short mode")
	}
	sc, err := Named("crash-recover-disk", 21, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Durable {
		t.Fatal("crash-recover-disk must be durable")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := Run(ctx, sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Passed() {
		t.Fatalf("invariants failed:\n%s%s", rep.Verdict(), rep.Observations())
	}
	// The durable scenario's headline claim: the at-risk classification is
	// empty — every acked write truly survived the crashes.
	if !strings.Contains(rep.Verdict(), "final/no-at-risk") {
		t.Fatalf("verdict missing the no-at-risk check:\n%s", rep.Verdict())
	}
	if rep.AtRisk != 0 {
		t.Fatalf("%d acked writes classified at-risk on a durable run", rep.AtRisk)
	}
}

func TestGenerateDurable(t *testing.T) {
	sc := Generate(9, GenConfig{Nodes: 6, Durable: true})
	if !sc.Durable {
		t.Fatal("generated scenario not durable")
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	sawDisk := false
	for _, e := range sc.Events {
		switch e.Kind {
		case EvRestart, EvRestartPreserve:
			t.Fatalf("durable schedule contains %v", e.Kind)
		case EvRestartDisk:
			sawDisk = true
		}
	}
	if !sawDisk {
		t.Skip("schedule drew no restarts for this seed")
	}
}

func TestRestartDiskRequiresDurable(t *testing.T) {
	sc := Scenario{
		Nodes: 4,
		Events: []Event{
			{Kind: EvKill, Nodes: []NodeID{0}},
			{Kind: EvRestartDisk, Nodes: []NodeID{0}},
		},
	}
	if err := sc.withDefaults().Validate(); err == nil {
		t.Fatal("restart-disk validated without Durable")
	}
	sc.Durable = true
	if err := sc.withDefaults().Validate(); err != nil {
		t.Fatalf("durable restart-disk rejected: %v", err)
	}
}

// TestMetricsConsistencyFaultFree is the satellite acceptance check: on a
// fault-free schedule the /metrics acked-write counter must equal the
// tracker's independent count exactly.
func TestMetricsConsistencyFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos runs in -short mode")
	}
	sc := Scenario{
		Name:  "obs-fault-free",
		Seed:  21,
		Nodes: 5,
		Events: []Event{
			{At: 200 * time.Millisecond, Kind: EvQuiesce},
		},
		Obs: obs.NewRegistry(),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Run(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("fault-free obs scenario failed:\n%s%s", rep.Verdict(), rep.Observations())
	}
	if !strings.Contains(rep.Verdict(), "final/metrics-consistency") {
		t.Fatalf("verdict missing the metrics-consistency check:\n%s", rep.Verdict())
	}
	// The scraped registry is live after the run: writes happened, so the
	// headline counter cannot be zero.
	if sc.Obs.Total("repro_client_writes_acked_total") == 0 {
		t.Error("registry recorded no acked writes")
	}
}

// TestMetricsConsistencyUnderFaults runs the same cross-check through a
// schedule with partitions and retries: client-plane retries must not
// double-count acks on either side of the comparison.
func TestMetricsConsistencyUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos runs in -short mode")
	}
	sc, err := Named("split-brain", 33, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sc.Obs = obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := Run(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("split-brain obs scenario failed:\n%s%s", rep.Verdict(), rep.Observations())
	}
	if !strings.Contains(rep.Verdict(), "final/metrics-consistency") {
		t.Fatalf("verdict missing the metrics-consistency check:\n%s", rep.Verdict())
	}
}
