package chaos

import (
	"hash/fnv"
	"sync"

	"repro/internal/workload"
)

// ackLoc identifies where a write was acknowledged: the shard group ("" in
// single-cluster scenarios) and the serving replica.
type ackLoc struct {
	shard string
	node  NodeID
}

// sysTarget adapts the system under test (cluster or router) for the
// tracker: writes return where they were acknowledged.
type sysTarget interface {
	write(key string, value []byte) (ackLoc, error)
	read(key string) ([]byte, bool, error)
}

// writeRec records that some acknowledged write at a location is not yet
// sealed (value identity lives in keyRec.hashes).
type writeRec struct {
	at     ackLoc
	atRisk bool
}

// keyRec accumulates everything acknowledged for one key.
type keyRec struct {
	// hashes holds every value ever acknowledged for the key; under LWW
	// the converged value must be one of them.
	hashes map[uint64]struct{}
	// sealed is set once any write to the key survived a converged
	// quiesce: from then on the key must exist on every live replica.
	sealed bool
	// pending are acked writes not yet sealed.
	pending []writeRec
}

// tracker wraps the system under test as a workload.Target, recording every
// acknowledged write so the durability invariant can be checked later.
//
// Durability classification mirrors what the protocol actually guarantees:
// an acked write becomes *sealed* (loss is a bug) once the system converges
// at a quiesce point while its acking replica is alive — convergence means
// every live replica holds it. A write is *at-risk* (loss is allowed, the
// documented weakness) when its acking replica lost state (empty-state
// restart, or still dead at the final check) before the write was sealed,
// or when it was acked while a shard handoff was in flight (resharding is
// documented non-linearizable against racing writes).
type tracker struct {
	// gate pauses traffic: ops hold it shared, Pause takes it exclusively,
	// so Pause blocks until in-flight ops drain and stops new ones.
	gate sync.RWMutex
	sys  sysTarget

	// oracle, when non-nil, arms the session-guarantee oracle: NewSession
	// opens checked client sessions (see sessions.go).
	oracle *sessionOracle

	mu         sync.Mutex
	keys       map[string]*keyRec
	reshard    int // nesting count of in-flight reshards
	reshardGen int // total reshards ever begun: sessions reset floors on change
	acked      int
	atRisk     int
}

func newTracker(sys sysTarget) *tracker {
	return &tracker{sys: sys, keys: make(map[string]*keyRec)}
}

// Write implements workload.Target, recording the ack.
func (t *tracker) Write(key string, value []byte) error {
	t.gate.RLock()
	defer t.gate.RUnlock()
	loc, err := t.sys.write(key, value)
	if err != nil {
		return err
	}
	t.recordAck(key, value, loc)
	return nil
}

// recordAck books one acknowledged write for the durability invariant.
// Callers hold the gate shared.
func (t *tracker) recordAck(key string, value []byte, loc ackLoc) {
	h := hashBytes(value)
	t.mu.Lock()
	defer t.mu.Unlock()
	kr := t.keys[key]
	if kr == nil {
		kr = &keyRec{hashes: make(map[uint64]struct{}, 2)}
		t.keys[key] = kr
	}
	kr.hashes[h] = struct{}{}
	rec := writeRec{at: loc, atRisk: t.reshard > 0}
	if rec.atRisk {
		t.atRisk++
	}
	// Pending records exist to answer "is there an unsealed write acked at
	// loc (safe/at-risk)?" — dedupe on that, so the list stays bounded by
	// replicas × 2 per key no matter how many writes a round applies.
	dup := false
	for _, w := range kr.pending {
		if w.at == loc && w.atRisk == rec.atRisk {
			dup = true
			break
		}
	}
	if !dup {
		kr.pending = append(kr.pending, rec)
	}
	t.acked++
}

// Read implements workload.Target.
func (t *tracker) Read(key string) ([]byte, bool, error) {
	t.gate.RLock()
	defer t.gate.RUnlock()
	return t.sys.read(key)
}

// Pause blocks until in-flight ops drain, then stops new ops until Resume.
func (t *tracker) Pause() { t.gate.Lock() }

// Resume lets traffic flow again.
func (t *tracker) Resume() { t.gate.Unlock() }

// NewSession implements workload.SessionTarget: when the scenario armed the
// session oracle and the system under test can open client sessions, every
// workload worker gets one checked session. Otherwise it returns nil and
// the workload silently degrades its leveled read mix to eventual reads.
func (t *tracker) NewSession() workload.Session {
	ss, ok := t.sys.(sessionSys)
	if !ok || t.oracle == nil {
		return nil
	}
	return t.oracle.open(t, ss.newSession())
}

// beginReshard marks subsequent acks at-risk until endReshard.
func (t *tracker) beginReshard() {
	t.mu.Lock()
	t.reshard++
	t.reshardGen++
	t.mu.Unlock()
}

// reshardState reports whether a reshard is in flight and how many have
// ever begun — sessions drop their floors when the generation moves (key
// ownership may have changed; the handoff window is documented
// non-linearizable).
func (t *tracker) reshardState() (active bool, gen int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reshard > 0, t.reshardGen
}

func (t *tracker) endReshard() {
	t.mu.Lock()
	t.reshard--
	t.mu.Unlock()
}

// markLost flags pending writes acked at loc as at-risk: the replica's
// un-replicated state is gone.
func (t *tracker) markLost(loc ackLoc) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, kr := range t.keys {
		for i := range kr.pending {
			w := &kr.pending[i]
			if !w.atRisk && w.at == loc {
				w.atRisk = true
				t.atRisk++
			}
		}
	}
}

// seal promotes pending writes to sealed after a converged quiesce.
// Convergence covers live replicas only, so writes acked at a currently
// dead replica stay pending — they may exist nowhere else.
func (t *tracker) seal(dead map[ackLoc]bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, kr := range t.keys {
		kept := kr.pending[:0]
		for _, w := range kr.pending {
			if w.atRisk || dead[w.at] {
				kept = append(kept, w)
				continue
			}
			kr.sealed = true
		}
		kr.pending = kept
	}
}

// counts reports tracked totals for observations.
func (t *tracker) counts() (acked, keys, atRisk int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.acked, len(t.keys), t.atRisk
}

// durability summarises the final check.
type durability struct {
	required   int // keys that must exist on the converged system
	missing    int // required keys absent
	wrongValue int // keys whose converged value was never acknowledged
	atRiskOnly int // keys whose every write was at-risk (presence optional)
}

func (d durability) ok() bool { return d.missing == 0 && d.wrongValue == 0 }

// checkDurability verifies every tracked key against the converged system:
// lookup returns the converged value hash for a key, or false when absent.
// Call only at a converged checkpoint.
func (t *tracker) checkDurability(lookup func(key string) (uint64, bool)) durability {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d durability
	for key, kr := range t.keys {
		required := kr.sealed
		if !required {
			for _, w := range kr.pending {
				if !w.atRisk {
					required = true
					break
				}
			}
		}
		h, present := lookup(key)
		if required {
			d.required++
			if !present {
				d.missing++
				continue
			}
		} else {
			d.atRiskOnly++
		}
		if present {
			if _, known := kr.hashes[h]; !known {
				d.wrongValue++
			}
		}
	}
	return d
}

// hashBytes is FNV-1a over the value — cheap identity for acked payloads.
func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
