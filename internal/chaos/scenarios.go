package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/demand"
	"repro/internal/runtime"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Names returns the built-in scenario names in a fixed order.
func Names() []string {
	return []string{
		"split-brain",
		"rolling-restart",
		"flaky-network",
		"reshard-under-fire",
		"demand-inversion",
		"crash-recover-disk",
		"slow-disk",
		"dying-disk",
		"disk-full",
		"power-cut-matrix",
		"power-cut-pipeline",
		"flash-crowd",
		"hot-shard-skew",
		"slow-disk-backlog",
	}
}

// Describe returns the one-line description of a built-in scenario.
func Describe(name string) string {
	sc, err := Named(name, 1, 1)
	if err != nil {
		return ""
	}
	return sc.Description
}

// Named builds a built-in scenario. The schedule is a pure function of
// (name, seed, scale): the same triple always yields a byte-identical
// Schedule. scale stretches every event offset — 1 is the full run, the CI
// smoke tier uses 0.5.
func Named(name string, seed int64, scale float64) (Scenario, error) {
	if scale <= 0 {
		scale = 1
	}
	at := func(ms int) time.Duration {
		return time.Duration(float64(ms)*scale) * time.Millisecond
	}
	// linear demand: strongly separated ranks make ordering probes crisp.
	linear := func(n int) demand.Static {
		f := make(demand.Static, n)
		for i := range f {
			f[i] = float64(10*i + 5)
		}
		return f
	}
	switch name {
	case "split-brain":
		return Scenario{
			Name:        name,
			Description: "two network splits with writes landing on both sides, healed and checked",
			Seed:        seed,
			Nodes:       10,
			Topology:    "ring",
			Sessions:    true,
			Events: []Event{
				{At: at(300), Kind: EvPartition, Nodes: []NodeID{0, 1, 2, 3, 4}, Peers: []NodeID{5, 6, 7, 8, 9}},
				{At: at(2000), Kind: EvHeal},
				{At: at(2100), Kind: EvQuiesce},
				{At: at(2300), Kind: EvPartition, Nodes: []NodeID{0, 1, 2, 6, 7}, Peers: []NodeID{3, 4, 5, 8, 9}},
				{At: at(4000), Kind: EvHeal},
			},
		}, nil
	case "rolling-restart":
		return Scenario{
			Name:        name,
			Description: "replicas crash and rejoin one after another, alternating durable and empty restarts",
			Seed:        seed,
			Nodes:       9,
			Topology:    "ring",
			Events: []Event{
				{At: at(300), Kind: EvKill, Nodes: []NodeID{0}},
				{At: at(900), Kind: EvRestartPreserve, Nodes: []NodeID{0}},
				{At: at(1200), Kind: EvKill, Nodes: []NodeID{1}},
				{At: at(1800), Kind: EvRestart, Nodes: []NodeID{1}},
				{At: at(2100), Kind: EvKill, Nodes: []NodeID{2}},
				{At: at(2700), Kind: EvRestartPreserve, Nodes: []NodeID{2}},
				{At: at(2900), Kind: EvQuiesce},
				{At: at(3100), Kind: EvKill, Nodes: []NodeID{3, 4}},
				// Durable restart first: an empty-state restart with another
				// replica still down would strand that replica's unique
				// content (see runtime.Restart).
				{At: at(3800), Kind: EvRestartPreserve, Nodes: []NodeID{4}},
				{At: at(3900), Kind: EvRestart, Nodes: []NodeID{3}},
			},
		}, nil
	case "flaky-network":
		return Scenario{
			Name:        name,
			Description: "loss and jitter ramp up and back down; demand ordering is probed under residual loss",
			Seed:        seed,
			Nodes:       9,
			Topology:    "complete",
			Field:       linear(9),
			Events: []Event{
				{At: at(200), Kind: EvSetLoss, Rate: 0.15},
				{At: at(250), Kind: EvSetLatency, Latency: time.Millisecond, Jitter: 4 * time.Millisecond},
				{At: at(1300), Kind: EvSetLoss, Rate: 0.30},
				{At: at(2400), Kind: EvSetLoss, Rate: 0.10},
				{At: at(2600), Kind: EvProbe},
				{At: at(2700), Kind: EvQuiesce},
			},
		}, nil
	case "reshard-under-fire":
		return Scenario{
			Name:        name,
			Description: "shards join and leave a lossy keyspace while a replica crashes and recovers",
			Seed:        seed,
			Nodes:       4,
			Shards:      3,
			Topology:    "ring",
			Events: []Event{
				{At: at(300), Kind: EvSetLoss, Rate: 0.08},
				{At: at(800), Kind: EvAddShard, Shard: "extra0"},
				{At: at(1600), Kind: EvKill, Shard: "shard0", Nodes: []NodeID{1}},
				{At: at(2400), Kind: EvRemoveShard, Shard: "shard1"},
				{At: at(3200), Kind: EvRestart, Shard: "shard0", Nodes: []NodeID{1}},
				{At: at(3600), Kind: EvSetLoss, Rate: 0},
				{At: at(3800), Kind: EvQuiesce},
			},
		}, nil
	case "crash-recover-disk":
		return Scenario{
			Name: name,
			Description: "durable replicas are SIGKILLed mid-load and recover from their on-disk WAL; " +
				"acked writes must survive with zero at-risk",
			Seed:     seed,
			Nodes:    9,
			Topology: "ring",
			Durable:  true,
			Sessions: true,
			Events: []Event{
				{At: at(300), Kind: EvKill, Nodes: []NodeID{1}},
				{At: at(1000), Kind: EvRestartDisk, Nodes: []NodeID{1}},
				{At: at(1300), Kind: EvQuiesce},
				// Overlapping crashes: disk recovery needs no live-peer
				// bootstrap, so simultaneous failures are fine.
				{At: at(1600), Kind: EvKill, Nodes: []NodeID{2, 3}},
				{At: at(2400), Kind: EvRestartDisk, Nodes: []NodeID{2, 3}},
				{At: at(2600), Kind: EvQuiesce},
				// Crash under partition pressure: the victim recovers from
				// disk while the network is still split, then everything
				// heals.
				{At: at(2800), Kind: EvPartition, Nodes: []NodeID{0, 1, 2, 3}, Peers: []NodeID{4, 5, 6, 7, 8}},
				{At: at(3100), Kind: EvKill, Nodes: []NodeID{5}},
				{At: at(3700), Kind: EvRestartDisk, Nodes: []NodeID{5}},
				{At: at(4000), Kind: EvHeal},
			},
		}, nil
	case "slow-disk":
		return Scenario{
			Name: name,
			Description: "fsync latency ramps up cluster-wide and spikes on one replica; acks slow " +
				"down but nothing fail-stops and nothing acked is lost",
			Seed:     seed,
			Nodes:    8,
			Topology: "ring",
			Durable:  true,
			Events: []Event{
				// Mild cluster-wide degradation: every sync a little slower
				// than the last, capped well below ack timeouts.
				{At: at(200), Kind: EvDiskSlow, Latency: 500 * time.Microsecond,
					Ramp: 100 * time.Microsecond, Jitter: 4 * time.Millisecond},
				// One replica's device is much worse — the cluster must keep
				// converging around its stalls.
				{At: at(800), Kind: EvDiskSlow, Nodes: []NodeID{2}, Latency: 5 * time.Millisecond,
					Ramp: time.Millisecond, Jitter: 25 * time.Millisecond},
				{At: at(1600), Kind: EvQuiesce},
				{At: at(1800), Kind: EvDiskHeal},
				// The formerly slow replica crashes; recovery must replay the
				// prefix synced through all that stalling.
				{At: at(2000), Kind: EvKill, Nodes: []NodeID{2}},
				{At: at(2600), Kind: EvRestartDisk, Nodes: []NodeID{2}},
			},
		}, nil
	case "dying-disk":
		return Scenario{
			Name: name,
			Description: "disks start returning I/O errors mid-load; victims fail-stop before acking " +
				"anything unsynced and revive once the disk is replaced",
			Seed:     seed,
			Nodes:    9,
			Topology: "ring",
			Durable:  true,
			Events: []Event{
				// Permanent controller death: the replica fail-stops on its
				// next sync and stays down until the disk is swapped.
				{At: at(400), Kind: EvDiskDie, Nodes: []NodeID{3}},
				{At: at(1400), Kind: EvDiskHeal, Nodes: []NodeID{3}},
				{At: at(1600), Kind: EvRestartDisk, Nodes: []NodeID{3}},
				{At: at(1900), Kind: EvQuiesce},
				// Transient hiccup: a single failed sync still fail-stops
				// (sync errors are sticky — durability is in doubt), but the
				// device self-heals, so recovery needs no disk-heal first.
				{At: at(2200), Kind: EvDiskDie, Nodes: []NodeID{6}, Count: 1},
				{At: at(2900), Kind: EvRestartDisk, Nodes: []NodeID{6}},
			},
		}, nil
	case "disk-full":
		return Scenario{
			Name: name,
			Description: "replicas run out of disk mid-load and fail-stop on ENOSPC rather than ack " +
				"writes the device never accepted, then recover once space is freed",
			Seed:     seed,
			Nodes:    8,
			Topology: "ring",
			Durable:  true,
			Events: []Event{
				// ~8 KiB of headroom left: a few more batches fit, then the
				// crossing write is torn at the boundary and rejected.
				{At: at(400), Kind: EvDiskFull, Nodes: []NodeID{2}, Budget: 8 << 10},
				{At: at(1400), Kind: EvDiskHeal, Nodes: []NodeID{2}},
				{At: at(1600), Kind: EvRestartDisk, Nodes: []NodeID{2}},
				{At: at(1900), Kind: EvQuiesce},
				// A second device fills with zero headroom: the very next
				// flushed write dies.
				{At: at(2200), Kind: EvDiskFull, Nodes: []NodeID{5}, Budget: 0},
				{At: at(2700), Kind: EvDiskHeal, Nodes: []NodeID{5}},
				{At: at(2900), Kind: EvRestartDisk, Nodes: []NodeID{5}},
			},
		}, nil
	case "power-cut-matrix":
		return Scenario{
			Name: name,
			Description: "power cuts of growing width — one, two, then three replicas lose power at " +
				"once, each cut evaporating unsynced WAL tails; every acked write must survive",
			Seed:     seed,
			Nodes:    9,
			Topology: "ring",
			Durable:  true,
			Events: []Event{
				{At: at(300), Kind: EvPowerCut, Nodes: []NodeID{1}},
				{At: at(900), Kind: EvRestartDisk, Nodes: []NodeID{1}},
				{At: at(1200), Kind: EvQuiesce},
				{At: at(1500), Kind: EvPowerCut, Nodes: []NodeID{2, 3}},
				{At: at(2100), Kind: EvRestartDisk, Nodes: []NodeID{2, 3}},
				{At: at(2400), Kind: EvQuiesce},
				{At: at(2700), Kind: EvPowerCut, Nodes: []NodeID{0, 4, 5}},
				{At: at(3300), Kind: EvRestartDisk, Nodes: []NodeID{0, 4, 5}},
			},
		}, nil
	case "power-cut-pipeline":
		return Scenario{
			Name: name,
			Description: "power cuts strike while the pipelined sync stage holds batches in flight " +
				"behind a coalescing window and fsync stalls; every acked write must survive the " +
				"evaporated unsynced tails",
			Seed:     seed,
			Nodes:    8,
			Topology: "ring",
			Durable:  true,
			// A coalescing window plus preallocation keeps the pipeline deep:
			// more committed-but-unsynced batches in flight at any instant,
			// so each cut has the largest possible at-risk tail to evaporate.
			WALTuning: &wal.Options{Preallocate: true, CoalesceWindow: 500 * time.Microsecond},
			// All writes: maximal pressure on the ack-release stage.
			Load: workload.Config{ReadFraction: -1},
			Events: []Event{
				// Stall every fsync so batches pile up behind the sync stage,
				// then cut power mid-flight — exactly the window where the
				// unsynced tail is largest and ordered ack release is doing
				// real work.
				{At: at(200), Kind: EvDiskSlow, Latency: 2 * time.Millisecond, Jitter: 8 * time.Millisecond},
				{At: at(700), Kind: EvPowerCut, Nodes: []NodeID{1, 2}},
				{At: at(1300), Kind: EvRestartDisk, Nodes: []NodeID{1, 2}},
				{At: at(1500), Kind: EvDiskHeal},
				{At: at(1700), Kind: EvQuiesce},
				// Second round: one replica's device degrades much harder, and
				// power fails while its pipeline is at its deepest.
				{At: at(2000), Kind: EvDiskSlow, Nodes: []NodeID{4}, Latency: 5 * time.Millisecond,
					Ramp: time.Millisecond, Jitter: 20 * time.Millisecond},
				{At: at(2500), Kind: EvPowerCut, Nodes: []NodeID{4}},
				{At: at(3100), Kind: EvRestartDisk, Nodes: []NodeID{4}},
				{At: at(3300), Kind: EvDiskHeal},
			},
		}, nil
	case "flash-crowd", "hot-shard-skew", "slow-disk-backlog":
		return overloadScenario(name, seed, at)
	case "demand-inversion":
		return Scenario{
			Name:        name,
			Description: "demand ordering is probed, the demand field is inverted, and ordering must follow",
			Seed:        seed,
			Nodes:       9,
			Topology:    "complete",
			Field:       linear(9),
			Events: []Event{
				{At: at(800), Kind: EvProbe},
				{At: at(3000), Kind: EvDemandFlip},
				{At: at(5500), Kind: EvProbe},
			},
		}, nil
	}
	return Scenario{}, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, Names())
}

// overloadScenario builds the admission-plane scenarios: a flood of
// open-loop write traffic far past capacity, with the admission controller
// armed so the flood is shed — visibly, before the WAL — instead of
// queueing without bound. Every one ends with the overload gates
// (shedding engaged, sojourn p99 bounded, goodput recovered) on top of the
// usual convergence/durability invariants; none of the events is lossy,
// so the zero-at-risk check stays armed on the durable ones.
func overloadScenario(name string, seed int64, at func(ms int) time.Duration) (Scenario, error) {
	// A tight queue bound against a several-hundred-worker flood makes
	// shedding deterministic: the instantaneous arrival concurrency alone
	// overruns the queue between leader drains. CoDel and the parked-write
	// deadline then keep the sojourn of whatever is admitted near Target.
	admission := &runtime.AdmissionConfig{
		MaxQueueDepth: 32,
		Target:        2 * time.Millisecond,
		Interval:      25 * time.Millisecond,
		WriteDeadline: 75 * time.Millisecond,
	}
	// The flood: all writes, open-loop at a rate no configuration here can
	// serve, from enough workers to overrun the queue bound many times
	// over. The payload is sized so the offered load is disk-bandwidth
	// bound (50k/s x 1KiB = 50MB/s of WAL appends): the overload is then a
	// property of the schedule, not of how fast the host's fsync happens
	// to be. A small retry budget exercises the client-side backoff path
	// under real shedding.
	flood := &workload.Config{
		OpenLoop:     true,
		ArrivalRate:  50000,
		Workers:      384,
		ReadFraction: -1,
		ValueBytes:   1024,
		RetryBudget:  1,
	}
	switch name {
	case "flash-crowd":
		return Scenario{
			Name: name,
			Description: "a 10x open-loop write flood hits a durable cluster; the admission plane " +
				"sheds it before the WAL, sojourn stays bounded, and goodput recovers when the crowd leaves",
			Seed:      seed,
			Nodes:     8,
			Topology:  "ring",
			Durable:   true,
			Sessions:  true,
			Admission: admission,
			Burst:     flood,
			Events: []Event{
				{At: at(500), Kind: EvBurst},
				{At: at(2000), Kind: EvBurstStop},
				// Spacer: a no-op fault event holds the schedule open so the
				// recovery window after the burst is long enough to rate.
				{At: at(3200), Kind: EvSetLoss, Rate: 0},
			},
		}, nil
	case "hot-shard-skew":
		return Scenario{
			Name: name,
			Description: "an extremely skewed flood concentrates on one shard of a durable keyspace; " +
				"the hot group sheds and the router routes around saturated replicas while cold shards stay healthy",
			Seed:      seed,
			Nodes:     4,
			Shards:    3,
			Topology:  "ring",
			Durable:   true,
			Admission: admission,
			// Sharpen the skew well past the default so one shard takes the
			// brunt of the flood (10:1-style hot/cold split).
			Load: workload.Config{ZipfS: 3},
			// The skewed flood carries double-weight payloads: the hot
			// group's disks are bandwidth-saturated by schedule, not by
			// host-timing luck, while the cold shards see almost none of it.
			Burst: &workload.Config{
				OpenLoop:     true,
				ArrivalRate:  50000,
				Workers:      384,
				ReadFraction: -1,
				ValueBytes:   2048,
				RetryBudget:  1,
				ZipfS:        4,
			},
			Events: []Event{
				{At: at(500), Kind: EvBurst},
				{At: at(2500), Kind: EvBurstStop},
				{At: at(3700), Kind: EvSetLoss, Rate: 0},
			},
		}, nil
	case "slow-disk-backlog":
		return Scenario{
			Name: name,
			Description: "fsyncs stall cluster-wide while a write flood arrives; acks crawl, the " +
				"admission plane sheds the backlog before the WAL, and goodput recovers once the disks heal",
			Seed:      seed,
			Nodes:     8,
			Topology:  "ring",
			Durable:   true,
			Admission: admission,
			Burst:     flood,
			Events: []Event{
				{At: at(300), Kind: EvDiskSlow, Latency: 3 * time.Millisecond,
					Ramp: 200 * time.Microsecond, Jitter: 12 * time.Millisecond},
				{At: at(600), Kind: EvBurst},
				{At: at(1800), Kind: EvBurstStop},
				{At: at(2000), Kind: EvDiskHeal},
				{At: at(3200), Kind: EvSetLoss, Rate: 0},
			},
		}, nil
	}
	return Scenario{}, fmt.Errorf("chaos: unknown overload scenario %q", name)
}

// GenConfig shapes a randomly generated scenario.
type GenConfig struct {
	// Nodes per cluster (per group when Shards > 1). Default 8.
	Nodes int
	// Shards > 1 generates a sharded scenario with reshard events.
	Shards int
	// Duration spans the whole schedule. Default 4s.
	Duration time.Duration
	// Quiesces is the number of mid-run checkpoints. Default 1.
	Quiesces int
	// Faults is the number of fault events between checkpoints. Default 4.
	Faults int
	// Durable generates a durable scenario: replicas run with on-disk WALs
	// and crashed replicas recover via restart-disk instead of empty-state
	// restarts.
	Durable bool
}

func (g GenConfig) withDefaults() GenConfig {
	if g.Nodes <= 0 {
		g.Nodes = 8
	}
	if g.Nodes < 2 {
		g.Nodes = 2 // schedules need a peer to partition against
	}
	if g.Shards <= 0 {
		g.Shards = 1
	}
	if g.Duration <= 0 {
		g.Duration = 4 * time.Second
	}
	if g.Quiesces <= 0 {
		g.Quiesces = 1
	}
	if g.Faults <= 0 {
		g.Faults = 4
	}
	return g
}

// Generate builds a random but fully reproducible scenario: the schedule is
// a pure function of (seed, cfg). Every checkpoint (and the scenario end)
// is preceded by heal/zero-loss/restart events so the convergence invariant
// is decidable, and kills never take down more than a third of a replica
// set at once.
func Generate(seed int64, cfg GenConfig) Scenario {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	sharded := cfg.Shards > 1

	shards := []string{""}
	if sharded {
		shards = shards[:0]
		for i := 0; i < cfg.Shards; i++ {
			shards = append(shards, fmt.Sprintf("shard%d", i))
		}
	}
	dead := make(map[ackLoc]bool)
	added := 0

	var events []Event
	segments := cfg.Quiesces + 1
	segLen := cfg.Duration / time.Duration(segments)
	for seg := 0; seg < segments; seg++ {
		segStart := segLen * time.Duration(seg)
		// Random faults inside the segment's first 70%. Offsets are drawn
		// first and sorted so kill/restart legality (tracked in generation
		// order) matches execution order.
		offs := make([]time.Duration, cfg.Faults)
		for f := range offs {
			offs[f] = segStart
			if span := int64(segLen * 7 / 10); span > 0 {
				offs[f] += time.Duration(rng.Int63n(span))
			}
		}
		sort.Slice(offs, func(a, b int) bool { return offs[a] < offs[b] })
		for _, off := range offs {
			events = append(events, randomFault(rng, cfg, shards, dead, &added, off, sharded))
		}
		// Settle window: heal, clear loss/latency, resurrect the dead.
		settle := segStart + segLen*75/100
		events = append(events,
			Event{At: settle, Kind: EvHeal},
			Event{At: settle, Kind: EvSetLoss, Rate: 0},
			Event{At: settle, Kind: EvSetLatency})
		locs := make([]ackLoc, 0, len(dead))
		for loc := range dead {
			locs = append(locs, loc)
		}
		sort.Slice(locs, func(a, b int) bool {
			if locs[a].shard != locs[b].shard {
				return locs[a].shard < locs[b].shard
			}
			return locs[a].node < locs[b].node
		})
		// Durable restarts first: an empty-state restart must only happen
		// once its group's other replicas are back, or their unique
		// content is stranded (see runtime.Restart).
		kinds := make([]EventKind, len(locs))
		for i := range kinds {
			switch {
			case cfg.Durable:
				// Durable schedules always recover from disk; the draw is
				// still consumed so durable and non-durable schedules stay
				// aligned event-for-event.
				rng.Intn(2)
				kinds[i] = EvRestartDisk
			case rng.Intn(2) == 0:
				kinds[i] = EvRestartPreserve
			default:
				kinds[i] = EvRestart
			}
		}
		for _, want := range []EventKind{EvRestartPreserve, EvRestartDisk, EvRestart} {
			for i, loc := range locs {
				if kinds[i] != want {
					continue
				}
				events = append(events, Event{At: settle, Kind: want, Shard: loc.shard, Nodes: []NodeID{loc.node}})
				delete(dead, loc)
			}
		}
		if seg < segments-1 {
			events = append(events, Event{At: segStart + segLen*85/100, Kind: EvQuiesce})
		}
	}
	sortEvents(events)
	return Scenario{
		Name:        fmt.Sprintf("random-%d", seed),
		Description: "randomly generated fault schedule (reproducible from seed)",
		Seed:        seed,
		Nodes:       cfg.Nodes,
		Shards:      cfg.Shards,
		Topology:    "ring",
		Durable:     cfg.Durable,
		Events:      events,
	}
}

// randomFault draws one fault event. dead and added track schedule state so
// generated kills/restarts/reshards stay legal.
func randomFault(rng *rand.Rand, cfg GenConfig, shards []string, dead map[ackLoc]bool, added *int, off time.Duration, sharded bool) Event {
	shard := shards[rng.Intn(len(shards))]
	deadIn := func(s string) []NodeID {
		var ids []NodeID
		for loc := range dead {
			if loc.shard == s {
				ids = append(ids, loc.node)
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		return ids
	}
	for {
		switch rng.Intn(7) {
		case 0: // partition: random split of the target replica set
			k := 1 + rng.Intn(cfg.Nodes-1)
			perm := rng.Perm(cfg.Nodes)
			left := make([]NodeID, 0, k)
			right := make([]NodeID, 0, cfg.Nodes-k)
			for i, p := range perm {
				if i < k {
					left = append(left, NodeID(p))
				} else {
					right = append(right, NodeID(p))
				}
			}
			sort.Slice(left, func(a, b int) bool { return left[a] < left[b] })
			sort.Slice(right, func(a, b int) bool { return right[a] < right[b] })
			return Event{At: off, Kind: EvPartition, Shard: shard, Nodes: left, Peers: right}
		case 1: // kill one live replica, capped at a third of the set
			if len(deadIn(shard)) >= cfg.Nodes/3 {
				continue
			}
			id := NodeID(rng.Intn(cfg.Nodes))
			loc := ackLoc{shard: shard, node: id}
			if dead[loc] {
				continue
			}
			dead[loc] = true
			return Event{At: off, Kind: EvKill, Shard: shard, Nodes: []NodeID{id}}
		case 2: // restart one dead replica
			ids := deadIn(shard)
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			// Empty-state restarts are only safe when this is the group's
			// sole dead replica (see runtime.Restart); otherwise preserve.
			// Durable schedules recover from disk, which is safe even with
			// overlapping failures (the draw is still consumed to keep
			// schedules seed-aligned).
			kind := EvRestartPreserve
			if len(ids) == 1 && rng.Intn(2) == 0 {
				kind = EvRestart
			}
			if cfg.Durable {
				kind = EvRestartDisk
			}
			delete(dead, ackLoc{shard: shard, node: id})
			return Event{At: off, Kind: kind, Shard: shard, Nodes: []NodeID{id}}
		case 3:
			return Event{At: off, Kind: EvSetLoss, Rate: float64(rng.Intn(30)) / 100}
		case 4:
			return Event{At: off, Kind: EvSetLatency,
				Latency: time.Duration(rng.Intn(3)) * time.Millisecond,
				Jitter:  time.Duration(1+rng.Intn(6)) * time.Millisecond}
		case 5:
			if sharded {
				continue
			}
			return Event{At: off, Kind: EvDemandFlip}
		case 6:
			if !sharded || *added >= 2 {
				continue
			}
			*added++
			return Event{At: off, Kind: EvAddShard, Shard: fmt.Sprintf("gen%d", *added-1)}
		}
	}
}
