package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/demand"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// CheckResult is one invariant verdict. Detail is deterministic for passing
// checks (empty); Obs carries wall-clock measurements and is excluded from
// Verdict so verdicts stay byte-identical across runs.
type CheckResult struct {
	Name   string
	Pass   bool
	Detail string
	Obs    string
}

// Report is the outcome of one scenario run.
type Report struct {
	Scenario Scenario
	Checks   []CheckResult

	// Observations (not part of the verdict).
	Acked, TrackedKeys, AtRisk int
	LoadOps, LoadErrs          int
	Elapsed                    time.Duration
}

func (r *Report) add(c CheckResult) { r.Checks = append(r.Checks, c) }

// Passed reports whether every invariant held.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Verdict renders the per-invariant results. For a passing run the output
// is a deterministic function of the scenario alone (seed contract).
func (r *Report) Verdict() string {
	var b strings.Builder
	failed := 0
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(&b, "  %s %s", status, c.Name)
		if !c.Pass && c.Detail != "" {
			fmt.Fprintf(&b, " — %s", c.Detail)
		}
		b.WriteByte('\n')
	}
	if failed == 0 {
		fmt.Fprintf(&b, "verdict: PASS (%d checks)\n", len(r.Checks))
	} else {
		fmt.Fprintf(&b, "verdict: FAIL (%d/%d checks failed)\n", failed, len(r.Checks))
	}
	return b.String()
}

// Observations renders wall-clock measurements — useful for humans, not
// reproducible byte-for-byte.
func (r *Report) Observations() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  elapsed %v, %d ops applied (%d errors), %d writes acked over %d keys (%d at-risk)\n",
		r.Elapsed.Round(time.Millisecond), r.LoadOps, r.LoadErrs, r.Acked, r.TrackedKeys, r.AtRisk)
	for _, c := range r.Checks {
		if c.Obs != "" {
			fmt.Fprintf(&b, "  %s: %s\n", c.Name, c.Obs)
		}
	}
	return b.String()
}

// verKey is a store version for monotonicity comparison.
type verKey struct {
	clock uint64
	ts    vclock.Timestamp
}

// regressedFrom reports whether cur is older than prev under LWW order.
func (cur verKey) regressedFrom(prev verKey) bool {
	if cur.clock != prev.clock {
		return cur.clock < prev.clock
	}
	return cur.ts.Compare(prev.ts) < 0
}

// clusterSys serves the single-cluster workload, spreading ops round-robin
// over replicas and retrying on a different replica when one is down — the
// client-side failover a real deployment would have.
type clusterSys struct {
	c    *runtime.Cluster
	n    int
	next atomic.Uint64
}

func (s *clusterSys) write(key string, value []byte) (ackLoc, error) {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		id := NodeID(s.next.Add(1) % uint64(s.n))
		if _, werr := s.c.Write(id, key, value); werr == nil {
			return ackLoc{node: id}, nil
		} else {
			err = werr
		}
	}
	return ackLoc{}, err
}

func (s *clusterSys) read(key string) ([]byte, bool, error) {
	var (
		err error
		v   []byte
		ok  bool
	)
	for attempt := 0; attempt < 3; attempt++ {
		id := NodeID(s.next.Add(1) % uint64(s.n))
		if v, ok, err = s.c.Read(id, key); err == nil {
			return v, ok, nil
		}
	}
	return nil, false, err
}

// routerSys serves the sharded workload through the router.
type routerSys struct{ r *shard.Router }

func (s routerSys) write(key string, value []byte) (ackLoc, error) {
	rc, err := s.r.Write(key, value)
	if err != nil {
		return ackLoc{}, err
	}
	return ackLoc{shard: rc.Shard, node: rc.Node}, nil
}

func (s routerSys) read(key string) ([]byte, bool, error) { return s.r.Read(key) }

// engine executes one scenario. Events run on a single goroutine; only the
// tracker and the system under test are shared with workload goroutines.
type engine struct {
	sc      Scenario
	rep     *Report
	tracker *tracker
	start   time.Time

	// Single-cluster mode.
	cluster *runtime.Cluster
	mfield  *demand.Mutable
	base    demand.Static
	flipped bool
	// ffs is the storage fault injector under every durable single-cluster
	// WAL; disk events (EvDiskSlow, EvDiskDie, EvDiskFull, EvDiskHeal,
	// EvPowerCut) arm it. Fault-free it is a pure passthrough.
	ffs *vfs.FaultFS

	// Router mode.
	router *shard.Router

	// dataDir roots durable replicas' WALs; ownDataDir marks a temporary
	// directory the engine created (and removes after the run).
	dataDir    string
	ownDataDir bool

	dead     map[ackLoc]bool
	prevVers map[ackLoc]map[string]verKey

	// probeWrites counts successful probe writes, which go straight to the
	// cluster and bypass the tracker — the metrics-consistency check needs
	// them to reconcile the scraped acked-write counter against the
	// tracker's count. Only the single events goroutine touches it.
	probeWrites int

	// Overload mode (sc.Admission != nil). bursting selects which workload
	// loadLoop's next round runs; roundCancel interrupts the in-flight
	// round so burst transitions take effect promptly. The marks bracket
	// the burst for the goodput-recovery gate: acked-write counts and times
	// at burst start / burst stop (events goroutine only).
	bursting    atomic.Bool
	roundCancel atomic.Pointer[context.CancelFunc]
	burstMark   struct {
		started, stopped      bool
		startAcked, stopAcked int
		startAt, stopAt       time.Time
	}

	// Written by loadLoop before it signals done; read only after.
	loadOps, loadErrs int
}

// Run executes the scenario against a freshly built live system and reports
// every invariant check. The returned error covers engine failures
// (malformed schedules, replicas that refuse to restart); invariant
// violations are reported through the Report, not the error.
func Run(ctx context.Context, sc Scenario) (*Report, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Admission != nil && sc.Obs == nil {
		// The overload gates scrape shed counters and sojourn histograms, so
		// an admission-armed scenario always runs with the observability
		// plane wired in (execution-only; the schedule is unaffected).
		sc.Obs = obs.NewRegistry()
	}
	e := &engine{
		sc:       sc,
		rep:      &Report{Scenario: sc},
		dead:     make(map[ackLoc]bool),
		prevVers: make(map[ackLoc]map[string]verKey),
	}
	return e.run(ctx)
}

func (e *engine) run(ctx context.Context) (*Report, error) {
	rng := rand.New(rand.NewSource(e.sc.Seed))
	runCtx, stopAll := context.WithCancel(ctx)
	defer stopAll()
	if e.sc.Durable {
		e.dataDir = e.sc.DataDir
		if e.dataDir == "" {
			dir, err := os.MkdirTemp("", "chaos-wal-")
			if err != nil {
				return nil, fmt.Errorf("chaos: durable data dir: %w", err)
			}
			e.dataDir, e.ownDataDir = dir, true
		}
		defer func() {
			if e.ownDataDir {
				os.RemoveAll(e.dataDir)
			}
		}()
	}
	if e.sc.Shards > 1 {
		if err := e.buildRouter(runCtx, rng); err != nil {
			return nil, err
		}
		defer e.router.Stop()
	} else {
		if err := e.buildCluster(runCtx, rng); err != nil {
			return nil, err
		}
		defer e.cluster.Stop()
	}

	loadCtx, stopLoad := context.WithCancel(runCtx)
	loadDone := make(chan struct{})
	go e.loadLoop(loadCtx, loadDone)
	defer func() {
		stopLoad()
		<-loadDone
		e.rep.Elapsed = time.Since(e.start)
		e.rep.LoadOps, e.rep.LoadErrs = e.loadOps, e.loadErrs
		e.rep.Acked, e.rep.TrackedKeys, e.rep.AtRisk = e.tracker.counts()
	}()

	e.start = time.Now()
	for i, ev := range e.sc.Events {
		if d := time.Until(e.start.Add(ev.At)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return e.rep, ctx.Err()
			}
		}
		if err := e.apply(ctx, i, ev); err != nil {
			return e.rep, fmt.Errorf("event %d (%v): %w", i, ev, err)
		}
	}
	e.finalChecks(ctx)
	return e.rep, nil
}

func (e *engine) buildCluster(ctx context.Context, rng *rand.Rand) error {
	n := e.sc.Nodes
	g := buildGraph(e.sc.Topology, n, rng)
	e.base = e.sc.Field
	if e.base == nil {
		e.base = demand.Uniform(n, 1, 101, rng)
	}
	e.mfield = demand.NewMutable(e.base)
	opts := []runtime.Option{
		runtime.WithSeed(e.sc.Seed),
		runtime.WithSessionInterval(e.sc.SessionInterval),
		runtime.WithAdvertInterval(e.sc.AdvertInterval),
	}
	if e.sc.Durable {
		e.ffs = vfs.NewFaultFS(vfs.OS, e.sc.Seed)
		opts = append(opts,
			runtime.WithDurability(filepath.Join(e.dataDir, "cluster")),
			runtime.WithDurabilityFS(e.ffs))
		if e.sc.WALTuning != nil {
			opts = append(opts, runtime.WithDurabilityTuning(*e.sc.WALTuning))
		}
	}
	if e.sc.Obs != nil {
		opts = append(opts, runtime.WithObs(obs.NewClusterObs(e.sc.Obs, n)))
	}
	if e.sc.Admission != nil {
		opts = append(opts, runtime.WithAdmission(*e.sc.Admission))
	}
	e.cluster = runtime.New(g, e.mfield, opts...)
	if err := e.cluster.Start(ctx); err != nil {
		return err
	}
	e.tracker = newTracker(&clusterSys{c: e.cluster, n: n})
	if e.sc.Sessions {
		e.tracker.oracle = newSessionOracle()
	}
	return nil
}

func (e *engine) buildRouter(ctx context.Context, rng *rand.Rand) error {
	specs := make([]shard.GroupSpec, e.sc.Shards)
	for i := range specs {
		specs[i] = e.groupSpec(fmt.Sprintf("shard%d", i), rng)
	}
	cfg := shard.Config{
		Seed: e.sc.Seed,
		RuntimeOptions: []runtime.Option{
			runtime.WithSessionInterval(e.sc.SessionInterval),
			runtime.WithAdvertInterval(e.sc.AdvertInterval),
		},
	}
	if e.sc.Admission != nil {
		cfg.RuntimeOptions = append(cfg.RuntimeOptions, runtime.WithAdmission(*e.sc.Admission))
	}
	if e.sc.Durable {
		cfg.DataDir = e.dataDir
	}
	cfg.Obs = e.sc.Obs
	r, err := shard.NewRouter(specs, cfg)
	if err != nil {
		return err
	}
	if err := r.Start(ctx); err != nil {
		return err
	}
	e.router = r
	e.tracker = newTracker(routerSys{r: r})
	if e.sc.Sessions {
		e.tracker.oracle = newSessionOracle()
	}
	return nil
}

// groupSpec builds one shard group's spec deterministically from rng.
func (e *engine) groupSpec(name string, rng *rand.Rand) shard.GroupSpec {
	k := e.sc.Nodes
	field := e.sc.Field
	if field == nil {
		field = demand.Uniform(k, 1, 101, rng)
	}
	return shard.GroupSpec{Name: name, Graph: buildGraph(e.sc.Topology, k, rng), Field: field}
}

// loadLoop applies background traffic in rounds until cancelled. Each
// round runs the normal Load — or the Burst workload while an EvBurst is
// in effect — under a per-round context the events goroutine can cancel,
// so burst transitions don't wait out a long normal round.
func (e *engine) loadLoop(ctx context.Context, done chan struct{}) {
	defer close(done)
	for ctx.Err() == nil {
		roundCtx, cancel := context.WithCancel(ctx)
		e.roundCancel.Store(&cancel)
		cfg := e.sc.Load
		if e.bursting.Load() && e.sc.Burst != nil {
			cfg = *e.sc.Burst
		}
		res := workload.Run(roundCtx, cfg, e.tracker)
		cancel()
		e.loadOps += res.Ops
		e.loadErrs += res.Errors
		if res.Ops == 0 {
			// Everything failing instantly (total outage): don't spin hot.
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
}

// interruptRound cancels loadLoop's in-flight workload round (if any) so
// the next round picks up the new burst state immediately.
func (e *engine) interruptRound() {
	if cancel := e.roundCancel.Load(); cancel != nil {
		(*cancel)()
	}
}

// clustersFor resolves the clusters an event targets: the single cluster,
// one named group, or every group ("" in router mode).
func (e *engine) clustersFor(shardName string) ([]*runtime.Cluster, error) {
	if e.router == nil {
		return []*runtime.Cluster{e.cluster}, nil
	}
	if shardName == "" {
		var out []*runtime.Cluster
		for _, name := range e.router.Shards() {
			if g, ok := e.router.Group(name); ok {
				out = append(out, g.Cluster())
			}
		}
		return out, nil
	}
	g, ok := e.router.Group(shardName)
	if !ok {
		return nil, fmt.Errorf("chaos: no shard %q", shardName)
	}
	return []*runtime.Cluster{g.Cluster()}, nil
}

func (e *engine) apply(ctx context.Context, idx int, ev Event) error {
	clusters, err := e.clustersFor(ev.Shard)
	if err != nil && ev.Kind != EvAddShard {
		return err
	}
	faults := func(f func(transport.Faults)) {
		for _, c := range clusters {
			if flt := c.Faults(); flt != nil {
				f(flt)
			}
		}
	}
	switch ev.Kind {
	case EvPartition:
		faults(func(f transport.Faults) { f.PartitionSets(ev.Nodes, ev.Peers) })
	case EvHeal:
		faults(func(f transport.Faults) { f.HealAll() })
	case EvSetLoss:
		faults(func(f transport.Faults) { f.SetLoss(ev.Rate) })
	case EvSetLatency:
		faults(func(f transport.Faults) { f.SetLatency(ev.Latency, ev.Jitter) })
	case EvKill:
		for _, id := range ev.Nodes {
			if err := clusters[0].Kill(id); err != nil {
				return err
			}
			e.dead[ackLoc{shard: ev.Shard, node: id}] = true
		}
	case EvRestart:
		for _, id := range ev.Nodes {
			loc := ackLoc{shard: ev.Shard, node: id}
			// Mark before the replica is reborn: once Restart returns it
			// acks writes again, and those must stay durability-required.
			e.tracker.markLost(loc) // empty-state restart: unreplicated acks died
			if err := clusters[0].Restart(id); err != nil {
				return err
			}
			delete(e.dead, loc)
			delete(e.prevVers, loc) // fresh store: prior versions are moot
		}
	case EvRestartPreserve:
		for _, id := range ev.Nodes {
			if err := clusters[0].RestartPreserving(id); err != nil {
				return err
			}
			delete(e.dead, ackLoc{shard: ev.Shard, node: id})
		}
	case EvRestartDisk:
		// Disk recovery preserves every synced (= every acknowledged)
		// write, so unlike EvRestart nothing is reclassified at-risk.
		for _, id := range ev.Nodes {
			if err := e.restartFromDisk(ctx, clusters[0], id); err != nil {
				return err
			}
			delete(e.dead, ackLoc{shard: ev.Shard, node: id})
		}
	case EvDemandFlip:
		if e.flipped {
			e.mfield.Set(e.base)
		} else {
			e.mfield.Set(demand.Invert(e.base))
		}
		e.flipped = !e.flipped
	case EvAddShard:
		rng := rand.New(rand.NewSource(e.sc.Seed ^ int64(hashBytes([]byte(ev.Shard)))))
		spec := e.groupSpec(ev.Shard, rng)
		e.tracker.beginReshard()
		err := e.router.AddShard(spec)
		e.tracker.endReshard()
		if err != nil {
			return err
		}
	case EvRemoveShard:
		// Dead replicas leave the handoff union: their unreplicated acks
		// are lost with the group.
		for loc := range e.dead {
			if loc.shard == ev.Shard {
				e.tracker.markLost(loc)
				delete(e.dead, loc)
			}
		}
		e.tracker.beginReshard()
		err := e.router.RemoveShard(ev.Shard)
		e.tracker.endReshard()
		if err != nil {
			return err
		}
		for loc := range e.prevVers {
			if loc.shard == ev.Shard {
				delete(e.prevVers, loc)
			}
		}
	case EvQuiesce:
		e.quiesce(ctx, fmt.Sprintf("e%d", idx), false)
	case EvProbe:
		e.rep.add(e.probe(ctx, fmt.Sprintf("e%d", idx)))
	case EvDiskSlow:
		for _, scope := range diskScopes(ev.Nodes) {
			e.ffs.SetSyncDelay(scope, ev.Latency, ev.Ramp, ev.Jitter)
		}
	case EvDiskDie:
		for _, scope := range diskScopes(ev.Nodes) {
			if ev.Count > 0 {
				e.ffs.FailNextSyncs(scope, ev.Count)
			} else {
				e.ffs.FailSyncs(scope)
				e.ffs.FailWrites(scope)
			}
		}
	case EvDiskFull:
		for _, scope := range diskScopes(ev.Nodes) {
			e.ffs.SetByteBudget(scope, ev.Budget)
		}
	case EvDiskHeal:
		if len(ev.Nodes) == 0 {
			e.ffs.HealAll()
		} else {
			for _, scope := range diskScopes(ev.Nodes) {
				e.ffs.Heal(scope)
			}
		}
	case EvPowerCut:
		// The machines lose power first (SIGKILL-equivalent from the
		// replica's view), then the unsynced suffix of their WAL bytes
		// evaporates. Victims are tracked dead exactly like EvKill; revival
		// is EvRestartDisk.
		for _, id := range ev.Nodes {
			if err := clusters[0].Kill(id); err != nil {
				return err
			}
			e.dead[ackLoc{shard: ev.Shard, node: id}] = true
		}
		for _, scope := range diskScopes(ev.Nodes) {
			e.ffs.Cut(scope)
		}
	case EvBurst:
		if !e.burstMark.started {
			acked, _, _ := e.tracker.counts()
			e.burstMark.started = true
			e.burstMark.startAcked, e.burstMark.startAt = acked, time.Now()
		}
		e.bursting.Store(true)
		e.interruptRound()
	case EvBurstStop:
		e.bursting.Store(false)
		e.interruptRound()
		acked, _, _ := e.tracker.counts()
		e.burstMark.stopped = true
		e.burstMark.stopAcked, e.burstMark.stopAt = acked, time.Now()
	}
	return nil
}

// diskScopes resolves a disk event's FaultFS scopes: one per targeted
// replica's WAL directory (runtime shapes them as <base>/n<id>/...), or the
// whole tree when Nodes is empty.
func diskScopes(nodes []NodeID) []string {
	if len(nodes) == 0 {
		return []string{""}
	}
	out := make([]string, len(nodes))
	for i, id := range nodes {
		out[i] = fmt.Sprintf("%cn%d%c", filepath.Separator, id, filepath.Separator)
	}
	return out
}

// restartFromDisk revives one replica from its WAL. Disk-death fail-stops
// land asynchronously (the maintenance sync trips the sticky error some
// milliseconds after the fault is armed), so if the victim is still up the
// engine waits out its collapse first; Kill-style schedules find it already
// dead and don't wait.
func (e *engine) restartFromDisk(ctx context.Context, c *runtime.Cluster, id NodeID) error {
	deadline := time.Now().Add(10 * time.Second)
	for c.Alive(id) && time.Now().Before(deadline) && ctx.Err() == nil {
		time.Sleep(2 * time.Millisecond)
	}
	return c.RestartFromDisk(id)
}

// clearFaults returns every network to a fault-free state (partitions
// healed, zero loss and latency) ahead of the final settling.
func (e *engine) clearFaults() {
	clusters, _ := e.clustersFor("")
	for _, c := range clusters {
		if f := c.Faults(); f != nil {
			f.HealAll()
			f.SetLoss(0)
			f.SetLatency(0, 0)
		}
	}
}

// finalChecks heals everything, settles, and verifies all invariants
// including durability. Replicas still dead stay dead — their unreplicated
// acks are reclassified at-risk first.
func (e *engine) finalChecks(ctx context.Context) {
	// Capture the recovery end mark before quiesce pauses traffic: the
	// goodput-recovery gate rates the burst-stop → here window, which is
	// live load time only.
	var endAcked int
	var endAt time.Time
	if e.sc.Admission != nil && e.burstMark.stopped {
		endAcked, _, _ = e.tracker.counts()
		endAt = time.Now()
	}
	e.clearFaults()
	for loc := range e.dead {
		e.tracker.markLost(loc)
	}
	e.quiesce(ctx, "final", true)
	if e.sc.Admission != nil {
		e.overloadChecks(endAcked, endAt)
	}
	if e.sc.Sessions {
		e.sessionChecks()
	}
}

// overloadChecks verifies the admission plane's contract after an
// overload scenario: shedding visibly engaged, combining-queue sojourn
// stayed bounded, and goodput recovered once the burst ended. Runs only
// when sc.Admission is set (and therefore sc.Obs is wired).
func (e *engine) overloadChecks(endAcked int, endAt time.Time) {
	shed := int(e.sc.Obs.Total("repro_admission_shed_total"))
	sres := CheckResult{
		Name: "final/overload-shedding",
		Pass: shed > 0,
		Obs:  fmt.Sprintf("%d writes shed", shed),
	}
	if shed == 0 {
		sres.Obs = ""
		sres.Detail = "admission plane never shed a write despite the overload schedule"
	}
	e.rep.add(sres)

	// Sojourn bound: the controller's whole point is that queue delay stays
	// near Target even at 10x offered load. The bound is generous — an
	// unbounded queue under a flood overshoots it by orders of magnitude.
	const sojournBound = 500 * time.Millisecond
	var merged obs.HistSnapshot
	for _, h := range e.sc.Obs.Histograms("repro_commit_queue_sojourn_seconds") {
		merged.Merge(h.Snapshot())
	}
	p99 := time.Duration(merged.Quantile(0.99) * float64(time.Second))
	bres := CheckResult{
		Name: "final/bounded-sojourn",
		Pass: merged.Count > 0 && p99 <= sojournBound,
		Obs: fmt.Sprintf("sojourn p50=%v p99=%v over %d batches",
			time.Duration(merged.Quantile(0.50)*float64(time.Second)).Round(time.Microsecond),
			p99.Round(time.Microsecond), merged.Count),
	}
	if !bres.Pass {
		bres.Obs = ""
		if merged.Count == 0 {
			bres.Detail = "no batch sojourns observed"
		} else {
			bres.Detail = fmt.Sprintf("sojourn p99 %v exceeds %v", p99.Round(time.Millisecond), sojournBound)
		}
	}
	e.rep.add(bres)

	if !e.burstMark.started || !e.burstMark.stopped {
		return
	}
	// Goodput recovery: the acked-write rate after the burst ends must come
	// back to a healthy fraction of the pre-burst rate — shedding is
	// graceful only if the system actually recovers when the flood stops.
	preWin := e.burstMark.startAt.Sub(e.start)
	recWin := endAt.Sub(e.burstMark.stopAt)
	gres := CheckResult{Name: "final/goodput-recovery"}
	if preWin <= 0 || recWin <= 0 || e.burstMark.startAcked == 0 {
		gres.Detail = "no measurable pre-burst or recovery window"
		e.rep.add(gres)
		return
	}
	preRate := float64(e.burstMark.startAcked) / preWin.Seconds()
	recRate := float64(endAcked-e.burstMark.stopAcked) / recWin.Seconds()
	gres.Pass = recRate >= 0.3*preRate
	gres.Obs = fmt.Sprintf("pre-burst %.0f acked writes/s, post-burst %.0f over %v",
		preRate, recRate, recWin.Round(time.Millisecond))
	if !gres.Pass {
		gres.Obs = ""
		gres.Detail = fmt.Sprintf("post-burst goodput %.0f writes/s never recovered toward the pre-burst %.0f",
			recRate, preRate)
	}
	e.rep.add(gres)
}

// quiesce pauses traffic, waits for convergence, and checks invariants.
func (e *engine) quiesce(ctx context.Context, label string, final bool) {
	e.tracker.Pause()
	defer e.tracker.Resume()

	cctx, cancel := context.WithTimeout(ctx, e.sc.QuiesceTimeout)
	waited := time.Now()
	conv := e.waitConverged(cctx)
	cancel()
	res := CheckResult{
		Name: label + "/converged",
		Pass: conv,
		Obs:  fmt.Sprintf("settled in %v", time.Since(waited).Round(time.Millisecond)),
	}
	if !conv {
		res.Detail = fmt.Sprintf("not converged within %v of fault-free settling", e.sc.QuiesceTimeout)
		res.Obs = ""
	}
	e.rep.add(res)
	if !conv {
		// Downstream checks assume a converged system; report them as
		// failed-by-implication rather than misleading passes.
		e.rep.add(CheckResult{Name: label + "/digest-agreement", Pass: false, Detail: "skipped: not converged"})
		e.rep.add(CheckResult{Name: label + "/monotone-versions", Pass: false, Detail: "skipped: not converged"})
		if final {
			e.rep.add(CheckResult{Name: label + "/durability", Pass: false, Detail: "skipped: not converged"})
		}
		return
	}

	pass, detail := e.digestsAgree()
	e.rep.add(CheckResult{Name: label + "/digest-agreement", Pass: pass, Detail: detail})

	violations := e.monotoneCheck()
	mres := CheckResult{Name: label + "/monotone-versions", Pass: violations == 0}
	if violations > 0 {
		mres.Detail = fmt.Sprintf("%d key versions regressed", violations)
	}
	e.rep.add(mres)

	if final {
		d := e.tracker.checkDurability(e.lookup())
		dres := CheckResult{
			Name: label + "/durability",
			Pass: d.ok(),
			Obs:  fmt.Sprintf("%d keys required and present, %d at-risk-only", d.required, d.atRiskOnly),
		}
		if !d.ok() {
			dres.Detail = fmt.Sprintf("%d acked keys missing, %d converged to never-acked values", d.missing, d.wrongValue)
		}
		e.rep.add(dres)
		if e.sc.Durable && !e.sc.hasLossyEvents() {
			// With real persistence the at-risk classification must stay
			// empty: every acknowledged write was fsynced before its ack,
			// so no crash in the schedule may have cost one. (Schedules
			// with intentionally lossy events — empty-state restarts,
			// reshards — keep their documented at-risk windows and skip
			// this check.)
			_, _, atRisk := e.tracker.counts()
			ares := CheckResult{Name: label + "/no-at-risk", Pass: atRisk == 0}
			if atRisk > 0 {
				ares.Detail = fmt.Sprintf("%d acked writes were classified at-risk despite durability", atRisk)
			}
			e.rep.add(ares)
		}
		if e.sc.Obs != nil {
			// The observability plane's acked-write counter must agree with
			// the tracker's independent count (plus probe writes, which
			// bypass the tracker). Both sides count exactly the successful
			// Cluster.Write acks, so the equality holds under kills,
			// partitions and reshards alike — traffic is paused here, so
			// neither side is moving.
			acked, _, _ := e.tracker.counts()
			obsAcked := int(e.sc.Obs.Total("repro_client_writes_acked_total"))
			want := acked + e.probeWrites
			cres := CheckResult{
				Name: label + "/metrics-consistency",
				Pass: obsAcked == want,
				Obs:  fmt.Sprintf("%d acked writes in /metrics", obsAcked),
			}
			if obsAcked != want {
				cres.Obs = ""
				cres.Detail = fmt.Sprintf("metrics counted %d acked writes, expected %d (%d tracked + %d probes)",
					obsAcked, want, acked, e.probeWrites)
			}
			e.rep.add(cres)
		}
	}
	e.tracker.seal(e.dead)
}

func (e *engine) waitConverged(ctx context.Context) bool {
	if e.router != nil {
		return e.router.WaitConverged(ctx)
	}
	return e.cluster.WaitConverged(ctx)
}

// liveReplica returns one live replica of c, or -1.
func liveReplica(c *runtime.Cluster) NodeID {
	for i := 0; i < c.N(); i++ {
		if c.Alive(NodeID(i)) {
			return NodeID(i)
		}
	}
	return -1
}

// digestsAgree verifies all live replicas of every cluster hold identical
// store digests — content-level agreement beyond summary equality.
func (e *engine) digestsAgree() (bool, string) {
	clusters, _ := e.clustersFor("")
	names := e.clusterNames()
	for ci, c := range clusters {
		var ref uint64
		first := true
		for i := 0; i < c.N(); i++ {
			id := NodeID(i)
			if !c.Alive(id) {
				continue
			}
			d := c.Digest(id)
			if first {
				ref, first = d, false
				continue
			}
			if d != ref {
				return false, fmt.Sprintf("%s: store digests disagree between live replicas", names[ci])
			}
		}
	}
	return true, ""
}

// clusterNames parallels clustersFor("") for diagnostics.
func (e *engine) clusterNames() []string {
	if e.router == nil {
		return []string{"cluster"}
	}
	return e.router.Shards()
}

// monotoneCheck snapshots every live replica's per-key versions and checks
// them against the previous converged checkpoint: versions must never
// regress. Returns the number of regressions found.
func (e *engine) monotoneCheck() int {
	clusters, _ := e.clustersFor("")
	names := e.clusterNames()
	violations := 0
	for ci, c := range clusters {
		shardName := ""
		if e.router != nil {
			shardName = names[ci]
		}
		for i := 0; i < c.N(); i++ {
			id := NodeID(i)
			if !c.Alive(id) {
				continue
			}
			items, err := c.Snapshot(id)
			if err != nil {
				continue
			}
			cur := make(map[string]verKey, len(items))
			for _, it := range items {
				cur[it.Key] = verKey{clock: it.Clock, ts: it.TS}
			}
			loc := ackLoc{shard: shardName, node: id}
			if prev, ok := e.prevVers[loc]; ok {
				for key, pv := range prev {
					cv, present := cur[key]
					if !present || cv.regressedFrom(pv) {
						violations++
					}
				}
			}
			e.prevVers[loc] = cur
		}
	}
	return violations
}

// lookup builds the durability resolver from the converged system: key →
// converged value hash. In router mode each key resolves through its owning
// group.
func (e *engine) lookup() func(key string) (uint64, bool) {
	if e.router == nil {
		m := snapshotHashes(e.cluster)
		return func(key string) (uint64, bool) {
			h, ok := m[key]
			return h, ok
		}
	}
	byShard := make(map[string]map[string]uint64)
	for _, name := range e.router.Shards() {
		if g, ok := e.router.Group(name); ok {
			byShard[name] = snapshotHashes(g.Cluster())
		}
	}
	return func(key string) (uint64, bool) {
		owner, ok := e.router.OwnerOf(key)
		if !ok {
			return 0, false
		}
		h, ok := byShard[owner][key]
		return h, ok
	}
}

// snapshotHashes maps each key to its value hash at one live replica (the
// system is converged, so any live replica is representative).
func snapshotHashes(c *runtime.Cluster) map[string]uint64 {
	id := liveReplica(c)
	if id < 0 {
		return nil
	}
	items, err := c.Snapshot(id)
	if err != nil {
		return nil
	}
	m := make(map[string]uint64, len(items))
	for _, it := range items {
		m[it.Key] = hashBytes(it.Value)
	}
	return m
}

// probe measures the paper's demand-ordering property on the live cluster:
// writes injected at the lowest-demand replica must reach high-demand
// replicas before low-demand ones, on average, under whatever fault
// pressure is currently applied.
func (e *engine) probe(ctx context.Context, label string) CheckResult {
	e.tracker.Pause()
	defer e.tracker.Resume()
	name := label + "/demand-ordering"

	n := e.sc.Nodes
	now := time.Since(e.start).Seconds()
	demands := make([]float64, n)
	origin := NodeID(0)
	for i := 0; i < n; i++ {
		demands[i] = e.mfield.At(NodeID(i), now)
		if demands[i] < demands[origin] {
			origin = NodeID(i)
		}
	}

	totals := make([]time.Duration, n)
	for p := 0; p < e.sc.Probes; p++ {
		key := fmt.Sprintf("chaos.probe.%s.%d", label, p)
		ts, err := e.cluster.Write(origin, key, []byte{byte(p)})
		if err != nil {
			return CheckResult{Name: name, Pass: false, Detail: "probe write failed"}
		}
		e.probeWrites++
		w := e.cluster.Watch(ts)
		select {
		case <-w.Done():
		case <-time.After(e.sc.QuiesceTimeout):
			e.cluster.Unwatch(w)
			return CheckResult{Name: name, Pass: false,
				Detail: fmt.Sprintf("probe write did not propagate within %v", e.sc.QuiesceTimeout)}
		case <-ctx.Done():
			e.cluster.Unwatch(w)
			return CheckResult{Name: name, Pass: false, Detail: "cancelled"}
		}
		for id, d := range w.Times() {
			totals[id] += d
		}
	}

	// Rank non-origin replicas by demand, descending; compare top third
	// against bottom third mean arrival.
	ids := make([]NodeID, 0, n-1)
	for i := 0; i < n; i++ {
		if NodeID(i) != origin {
			ids = append(ids, NodeID(i))
		}
	}
	sort.Slice(ids, func(a, b int) bool { return demands[ids[a]] > demands[ids[b]] })
	k := len(ids) / 3
	if k < 1 {
		k = 1
	}
	mean := func(group []NodeID) time.Duration {
		var sum time.Duration
		for _, id := range group {
			sum += totals[id]
		}
		return sum / time.Duration(len(group)*e.sc.Probes)
	}
	top, bottom := mean(ids[:k]), mean(ids[len(ids)-k:])

	// Slack absorbs scheduler noise: the paper's effect is a large
	// separation, and a true inversion overshoots this bound at once.
	pass := top <= bottom+bottom/4+2*time.Millisecond
	res := CheckResult{
		Name: name,
		Pass: pass,
		Obs: fmt.Sprintf("origin %v, top-third mean %v, bottom-third mean %v",
			origin, top.Round(time.Microsecond), bottom.Round(time.Microsecond)),
	}
	if !pass {
		res.Detail = "high-demand replicas converged slower than low-demand ones"
	}
	return res
}
