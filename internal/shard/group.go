package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/demand"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/topology"
	"repro/internal/vclock"
)

// NodeID aliases the replica identifier.
type NodeID = vclock.NodeID

// RoutePolicy selects which replica of the owning group serves an op.
type RoutePolicy int

const (
	// RouteLowestDemand sends the op to the replica with the lowest
	// current demand — the least-loaded server, the router's default.
	RouteLowestDemand RoutePolicy = iota
	// RouteHighestDemand sends the op to the replica with the highest
	// current demand. Under the paper's algorithm that replica receives
	// updates first, so reads there see the freshest content.
	RouteHighestDemand
	// RouteRandom picks a uniformly random replica.
	RouteRandom
)

// String names the policy.
func (p RoutePolicy) String() string {
	switch p {
	case RouteLowestDemand:
		return "lowest-demand"
	case RouteHighestDemand:
		return "highest-demand"
	case RouteRandom:
		return "random"
	}
	return fmt.Sprintf("RoutePolicy(%d)", int(p))
}

// Group is one shard's replica set: a live fast-consistency cluster over
// its own sub-topology, serving the slice of the keyspace the ring assigns
// to it. All replicas in a group hold the shard's full content (the paper's
// fully-replicated model applies per shard).
type Group struct {
	name    string
	graph   *topology.Graph
	field   demand.Field
	cluster *runtime.Cluster

	// startNs is the routing time base (unix nanos; 0 = not started),
	// atomic so the per-op route/pick path never takes a group lock — every
	// client read and write of the shard passes through pick.
	startNs atomic.Int64
	// clock is the router's shared coarse clock (nil for a standalone
	// group): demand-based routing reads it instead of calling time.Now
	// per op. Millisecond staleness is invisible to demand fields that
	// change over seconds.
	clock *coarseClock

	mu  sync.Mutex // guards rng (RouteRandom only)
	rng *rand.Rand

	// Per-shard routed-op instruments, set by the router when it carries an
	// observability registry (nil otherwise — the op path nil-checks).
	obsWrites   *obs.Counter
	obsReads    *obs.Counter
	obsWriteErr *obs.Counter
	obsReadErr  *obs.Counter
	obsHandoff  *obs.Counter
}

// coarseClock is a wall clock updated by a background ticker (see
// Router.clockLoop): one atomic load per routed op instead of a vDSO call.
// Before the ticker runs (or after it stops) readers fall back to the real
// clock.
type coarseClock struct{ ns atomic.Int64 }

func (c *coarseClock) now() int64 {
	if c != nil {
		if ns := c.ns.Load(); ns != 0 {
			return ns
		}
	}
	return time.Now().UnixNano()
}

// newGroup assembles (without starting) one shard group. clock may be nil
// (standalone groups route on the real clock).
func newGroup(spec GroupSpec, seed int64, opts []runtime.Option, clock *coarseClock) (*Group, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("shard: group with empty name")
	}
	if spec.Graph == nil || spec.Graph.N() == 0 {
		return nil, fmt.Errorf("shard: group %q has no topology", spec.Name)
	}
	if !spec.Graph.IsConnected() {
		return nil, fmt.Errorf("shard: group %q topology %v is not connected", spec.Name, spec.Graph)
	}
	if spec.Field == nil {
		return nil, fmt.Errorf("shard: group %q has no demand field", spec.Name)
	}
	// The per-group seed goes last so it wins over any blanket
	// runtime.WithSeed in opts: groups must draw distinct RNG streams or
	// their session timing is identically correlated. Callers control
	// determinism through Config.Seed, which this seed derives from.
	all := append(append([]runtime.Option(nil), opts...), runtime.WithSeed(seed))
	return &Group{
		name:    spec.Name,
		graph:   spec.Graph,
		field:   spec.Field,
		cluster: runtime.New(spec.Graph, spec.Field, all...),
		clock:   clock,
		rng:     rand.New(rand.NewSource(seed ^ 0x5bd1e995)),
	}, nil
}

// Name returns the group's ring name.
func (g *Group) Name() string { return g.name }

// N returns the number of replicas in the group.
func (g *Group) N() int { return g.cluster.N() }

// Cluster exposes the underlying live cluster (stats, watches, faults).
func (g *Group) Cluster() *runtime.Cluster { return g.cluster }

// markStarted records the routing time base; the router calls it right
// after the group's cluster starts.
func (g *Group) markStarted() {
	g.startNs.Store(time.Now().UnixNano())
}

// now returns seconds since the group started — the time base for demand
// evaluation during routing. Lock-free: it is on every routed op's path.
func (g *Group) now() float64 {
	start := g.startNs.Load()
	if start == 0 {
		return 0
	}
	now := g.clock.now()
	if now <= start {
		return 0
	}
	return float64(now-start) / float64(time.Second)
}

// pick chooses the replica that should serve the next op under the policy.
func (g *Group) pick(p RoutePolicy) NodeID {
	n := g.cluster.N()
	if n == 1 {
		return 0
	}
	switch p {
	case RouteRandom:
		g.mu.Lock()
		defer g.mu.Unlock()
		return NodeID(g.rng.Intn(n))
	case RouteHighestDemand:
		return g.argDemand(true)
	default:
		return g.argDemand(false)
	}
}

// argDemand returns the live replica with extreme demand (max when highest,
// else min). Dead replicas are skipped so routing survives faults, and
// replicas whose admission controller is currently shedding are avoided so
// new ops reroute around saturation — unless every live replica is
// shedding, in which case load spreads across them as before (rerouting
// everything onto one "least bad" replica would only deepen its queue).
// It runs on every routed op, so both probes are the cluster's lock-free
// ones (Serving, Overloaded), not Alive (which takes the replica lock).
func (g *Group) argDemand(highest bool) NodeID {
	now := g.now()
	started := g.started()
	best := NodeID(-1)
	bestD := 0.0
	fallback, fallbackD := NodeID(0), 0.0
	haveFallback := false
	for i := 0; i < g.cluster.N(); i++ {
		id := NodeID(i)
		if started && !g.cluster.Serving(id) {
			continue
		}
		d := g.field.At(id, now)
		if !haveFallback || (highest && d > fallbackD) || (!highest && d < fallbackD) {
			fallback, fallbackD, haveFallback = id, d, true
		}
		if g.cluster.Overloaded(id) {
			continue
		}
		if best < 0 || (highest && d > bestD) || (!highest && d < bestD) {
			best, bestD = id, d
		}
	}
	if best >= 0 {
		return best
	}
	return fallback
}

// Health snapshots the group's per-replica client-plane health.
func (g *Group) Health() GroupHealth {
	h := GroupHealth{Replicas: make([]runtime.ReplicaHealth, g.cluster.N())}
	for i := range h.Replicas {
		rh := g.cluster.Health(NodeID(i))
		h.Replicas[i] = rh
		if rh.Serving {
			h.Serving++
		}
		if rh.Overloaded {
			h.Overloaded++
		}
		h.QueueDepth += rh.QueueDepth
		h.Shed += rh.Shed
	}
	return h
}

// GroupHealth aggregates one shard group's client-plane health — the
// router's reroute/fast-fail signal.
type GroupHealth struct {
	// Replicas holds each replica's health snapshot, indexed by NodeID.
	Replicas []runtime.ReplicaHealth
	// Serving counts replicas currently accepting client operations;
	// Overloaded those currently shedding.
	Serving, Overloaded int
	// QueueDepth is the parked client writes summed across replicas; Shed
	// the writes shed since construction, all replicas and reasons.
	QueueDepth int
	Shed       uint64
}

// Saturated reports whether every serving replica of the group is
// currently shedding — the group as a whole is past its capacity, so
// callers should back off rather than hunt for a healthy replica in it.
func (h GroupHealth) Saturated() bool {
	return h.Serving > 0 && h.Overloaded == h.Serving
}

func (g *Group) started() bool {
	return g.startNs.Load() != 0
}

// Converged reports whether the group's live replicas hold equal summaries.
func (g *Group) Converged() bool { return g.cluster.Converged() }

// Digest returns the group's common store digest, or false when replicas
// disagree (content still propagating).
func (g *Group) Digest() (uint64, bool) {
	var ref uint64
	first := true
	for i := 0; i < g.cluster.N(); i++ {
		id := NodeID(i)
		if !g.cluster.Alive(id) && g.started() {
			continue
		}
		d := g.cluster.Digest(id)
		if first {
			ref, first = d, false
			continue
		}
		if d != ref {
			return 0, false
		}
	}
	return ref, !first
}

// snapshotUnion merges every live replica's store image via LWW, so the
// result covers writes that have not finished propagating inside the group.
// This is the source side of a shard handoff. Item values are read-only
// views shared with the source replicas' stores (immutability contract), so
// a handoff moves versions without copying payload bytes.
func (g *Group) snapshotUnion() []store.Item {
	merged := store.New()
	for i := 0; i < g.cluster.N(); i++ {
		id := NodeID(i)
		if !g.cluster.Alive(id) && g.started() {
			continue
		}
		items, err := g.cluster.Snapshot(id)
		if err != nil {
			continue
		}
		merged.ApplySnapshot(items)
	}
	return merged.Snapshot()
}

// Stats sums protocol counters over the group's replicas.
func (g *Group) Stats() node.Stats {
	var total node.Stats
	for i := 0; i < g.cluster.N(); i++ {
		addStats(&total, g.cluster.Stats(NodeID(i)))
	}
	return total
}

// addStats accumulates b into a field-by-field.
func addStats(a *node.Stats, b node.Stats) {
	a.SessionsInitiated += b.SessionsInitiated
	a.SessionsReceived += b.SessionsReceived
	a.EntriesSent += b.EntriesSent
	a.EntriesReceived += b.EntriesReceived
	a.FastOffersSent += b.FastOffersSent
	a.FastOffersReceived += b.FastOffersReceived
	a.FastOffersAccepted += b.FastOffersAccepted
	a.FastOffersDeclined += b.FastOffersDeclined
	a.FastEntriesSent += b.FastEntriesSent
	a.FastEntriesGained += b.FastEntriesGained
	a.GapDrops += b.GapDrops
	a.AdvertsSent += b.AdvertsSent
	a.MessagesHandled += b.MessagesHandled
	a.SnapshotsSent += b.SnapshotsSent
	a.SnapshotsReceived += b.SnapshotsReceived
	a.ClientWrites += b.ClientWrites
	a.EntriesAbsorbed += b.EntriesAbsorbed
	a.DuplicateDrops += b.DuplicateDrops
}
