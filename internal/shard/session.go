package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/runtime"
	"repro/internal/store"
)

// This file is the sharded face of the consistency plane: a Session that
// carries one freshness token per shard group (summary watermarks are only
// comparable within a group — NodeIDs are dense per group), routes leveled
// reads token-aware, and serialises to a compact binary form so a client
// can carry its guarantees across processes.
//
// Guarantee scope: a session's watermark names positions in its group's
// replica-id space. Resharding moves *content* between groups, not log
// positions, so a key that changes owners mid-session re-enters that
// session with a fresh (empty) floor for the new group — read-your-writes
// and monotonic reads hold per key only while its owner is stable. The
// same caveat as the reshard handoff itself (AddShard's non-linearizable
// window) applies.

// Session is a sharded client session: per-group freshness tokens plus the
// wait parameters every leveled read uses. Obtain one from
// Router.NewSession. Like runtime.Session it is one logical client and is
// NOT safe for concurrent use; concurrent clients each carry their own.
type Session struct {
	r *Router
	// MaxLag is the staleness bound runtime.LevelBounded reads enforce.
	MaxLag uint64
	// Deadline bounds every freshness wait; 0 selects
	// runtime.DefaultFreshWait.
	Deadline time.Duration

	tokens map[string]*runtime.Token
	opt    runtime.LeveledRead
}

// NewSession starts an empty session against the router.
func (r *Router) NewSession() *Session {
	return &Session{r: r, tokens: make(map[string]*runtime.Token)}
}

// token returns the session's token for one shard, creating it on first
// touch.
func (s *Session) token(shard string) *runtime.Token {
	tok := s.tokens[shard]
	if tok == nil {
		tok = &runtime.Token{}
		s.tokens[shard] = tok
	}
	return tok
}

// Write routes a session write: the acknowledged position joins the owning
// shard's token, so later session reads of any key in that shard observe
// it.
func (s *Session) Write(key string, value []byte) (Receipt, error) {
	g, err := s.r.route(key)
	if err != nil {
		return Receipt{}, err
	}
	id := g.pick(s.r.cfg.Routing)
	rec, err := g.cluster.WriteSession(id, key, value, s.token(g.name))
	if err != nil {
		if g.obsWriteErr != nil {
			g.obsWriteErr.Inc()
		}
		return Receipt{}, fmt.Errorf("shard: write to %s: %w", g.name, err)
	}
	if g.obsWrites != nil {
		g.obsWrites.Inc()
	}
	return Receipt{Shard: g.name, Node: id, TS: rec.TS, Clock: rec.Clock}, nil
}

// Read serves a session-level read (read-your-writes + monotonic reads).
func (s *Session) Read(key string) ([]byte, bool, error) {
	v, ok, err := s.ReadVersioned(key, runtime.LevelSession)
	return v.Value, ok, err
}

// ReadLevel serves a read at an explicit consistency level.
func (s *Session) ReadLevel(key string, lvl runtime.Level) ([]byte, bool, error) {
	v, ok, err := s.ReadVersioned(key, lvl)
	return v.Value, ok, err
}

// ReadVersioned serves a leveled read returning the full version, routed
// token-aware: among the owning group's healthy replicas, one already
// covering the session's token is preferred, so session reads land where
// they need no freshness wait whenever such a replica exists.
func (s *Session) ReadVersioned(key string, lvl runtime.Level) (store.Versioned, bool, error) {
	g, err := s.r.route(key)
	if err != nil {
		return store.Versioned{}, false, err
	}
	tok := s.token(g.name)
	var id NodeID
	if lvl == runtime.LevelEventual {
		id = g.pick(s.r.cfg.Routing)
	} else {
		// Session, bounded and strong reads all gate on the token (strong
		// subsumes session), so a covering replica is the cheaper server.
		id = g.pickToken(s.r.cfg.Routing, tok)
	}
	s.opt = runtime.LeveledRead{Level: lvl, Token: tok, MaxLag: s.MaxLag, Deadline: s.Deadline}
	v, ok, err := g.cluster.ReadLeveled(id, key, &s.opt)
	switch {
	case err != nil && g.obsReadErr != nil:
		g.obsReadErr.Inc()
	case err == nil && g.obsReads != nil:
		g.obsReads.Inc()
	}
	return v, ok, err
}

// sessionCodecVersion tags the session wire encoding: the version byte, a
// uvarint shard count, then per shard (sorted by name, so the encoding is
// canonical) a length-prefixed name and a length-prefixed token encoding.
const sessionCodecVersion = 1

// maxSessionShards bounds the shard count a decoded session may carry, so
// a hostile encoding cannot force unbounded allocation.
const maxSessionShards = 1 << 16

// Export serialises the session's tokens (wait parameters are client
// config, not state, and are not carried). The encoding is canonical:
// exporting an imported session reproduces it byte-for-byte.
func (s *Session) Export() ([]byte, error) {
	names := make([]string, 0, len(s.tokens))
	for name, tok := range s.tokens {
		if tok.Positions().Total() == 0 {
			continue // empty tokens carry no guarantee; keep the form canonical
		}
		names = append(names, name)
	}
	sort.Strings(names)
	out := []byte{sessionCodecVersion}
	out = binary.AppendUvarint(out, uint64(len(names)))
	for _, name := range names {
		out = binary.AppendUvarint(out, uint64(len(name)))
		out = append(out, name...)
		tb := s.tokens[name].AppendBinary(nil)
		out = binary.AppendUvarint(out, uint64(len(tb)))
		out = append(out, tb...)
	}
	return out, nil
}

// Import replaces the session's tokens with a previously Exported image.
// Guarantees resume exactly where the exporting process left them.
func (s *Session) Import(data []byte) error {
	if len(data) == 0 {
		return errors.New("shard: empty session encoding")
	}
	if data[0] != sessionCodecVersion {
		return fmt.Errorf("shard: unknown session version %d", data[0])
	}
	rest := data[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return errors.New("shard: truncated session shard count")
	}
	rest = rest[n:]
	if count > maxSessionShards {
		return fmt.Errorf("shard: session shard count %d too large", count)
	}
	tokens := make(map[string]*runtime.Token, count)
	prev := ""
	for i := uint64(0); i < count; i++ {
		nameLen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest[n:])) < nameLen {
			return errors.New("shard: truncated session shard name")
		}
		rest = rest[n:]
		name := string(rest[:nameLen])
		rest = rest[nameLen:]
		if i > 0 && name <= prev {
			return fmt.Errorf("shard: session shards out of order at %q", name)
		}
		prev = name
		tokLen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest[n:])) < tokLen {
			return errors.New("shard: truncated session token")
		}
		rest = rest[n:]
		tok := &runtime.Token{}
		if err := tok.UnmarshalBinary(rest[:tokLen]); err != nil {
			return fmt.Errorf("shard: session token for %q: %w", name, err)
		}
		rest = rest[tokLen:]
		tokens[name] = tok
	}
	if len(rest) != 0 {
		return fmt.Errorf("shard: %d trailing bytes after session", len(rest))
	}
	s.tokens = tokens
	return nil
}

// pickToken chooses the serving replica for a token-carrying read: among
// serving, non-overloaded replicas those already covering the token are
// preferred (their reads need no freshness wait), demand breaking ties
// under the configured policy; when none covers, routing falls back to the
// plain pick so the read parks at the normally-chosen replica.
func (g *Group) pickToken(p RoutePolicy, tok *runtime.Token) NodeID {
	n := g.cluster.N()
	if n == 1 || tok == nil {
		return g.pick(p)
	}
	highest := p == RouteHighestDemand
	now := g.now()
	started := g.started()
	best := NodeID(-1)
	bestD := 0.0
	for i := 0; i < n; i++ {
		id := NodeID(i)
		if started && !g.cluster.Serving(id) {
			continue
		}
		if g.cluster.Overloaded(id) {
			continue
		}
		if !g.cluster.TokenCovered(id, tok) {
			continue
		}
		d := g.field.At(id, now)
		if best < 0 || (highest && d > bestD) || (!highest && d < bestD) {
			best, bestD = id, d
		}
	}
	if best >= 0 {
		return best
	}
	return g.pick(p)
}
