package shard

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/runtime"
)

func TestSessionReadYourWritesAcrossShards(t *testing.T) {
	router := startRouter(t, carved(t, 15, 3), Config{Seed: 11})

	s := router.NewSession()
	// Spread writes over enough keys to hit every shard, then read each
	// back at session level immediately — no convergence wait. The router
	// may serve any replica of the owning group; the session guarantee
	// makes every one of them wait for the write.
	const nKeys = 30
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("sess-%03d", i)
		if _, err := s.Write(key, []byte(key+"-v")); err != nil {
			t.Fatalf("Write(%s): %v", key, err)
		}
		v, ok, err := s.Read(key)
		if err != nil {
			t.Fatalf("Read(%s): %v", key, err)
		}
		if !ok || !bytes.Equal(v, []byte(key+"-v")) {
			t.Fatalf("Read(%s) = (%q, %t), want own write", key, v, ok)
		}
	}
	// The session holds one token per touched shard.
	if len(s.tokens) == 0 || len(s.tokens) > len(router.Shards()) {
		t.Fatalf("session carries %d tokens over %d shards", len(s.tokens), len(router.Shards()))
	}
}

func TestSessionExportImport(t *testing.T) {
	router := startRouter(t, carved(t, 12, 3), Config{Seed: 13})

	s := router.NewSession()
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("xp-%03d", i)
		if _, err := s.Write(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	img, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}

	// A new session (a new process picking up the client's cookie) resumes
	// the guarantees: reads of the first session's keys cannot miss.
	s2 := router.NewSession()
	if err := s2.Import(img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("xp-%03d", i)
		v, ok, err := s2.Read(key)
		if err != nil || !ok || !bytes.Equal(v, []byte("v")) {
			t.Fatalf("imported session Read(%s) = (%q, %t, %v)", key, v, ok, err)
		}
	}
	// Canonical: re-export reproduces the image byte-for-byte.
	img2, err := s2.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, img2) {
		t.Error("re-export differs from original image")
	}
}

func TestSessionImportRejectsHostileInput(t *testing.T) {
	router := startRouter(t, carved(t, 8, 2), Config{Seed: 17})
	s := router.NewSession()
	cases := map[string][]byte{
		"empty":            {},
		"bad version":      {9},
		"truncated count":  {1},
		"huge count":       append([]byte{1}, 0xff, 0xff, 0xff, 0xff, 1),
		"truncated name":   {1, 1, 10, 'a'},
		"truncated token":  {1, 1, 1, 'a', 10, 1},
		"bad token":        {1, 1, 1, 'a', 1, 99},
		"unsorted shards":  {1, 2, 1, 'b', 2, 1, 0, 1, 'a', 2, 1, 0},
		"duplicate shards": {1, 2, 1, 'a', 2, 1, 0, 1, 'a', 2, 1, 0},
	}
	for name, data := range cases {
		if err := s.Import(data); err == nil {
			t.Errorf("%s: hostile session encoding accepted", name)
		}
	}
}

func TestSessionLeveledReads(t *testing.T) {
	router := startRouter(t, carved(t, 12, 2), Config{Seed: 19})

	s := router.NewSession()
	if _, err := s.Write("lv-key", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []runtime.Level{runtime.LevelEventual, runtime.LevelSession, runtime.LevelBounded, runtime.LevelStrong} {
		v, ok, err := s.ReadLevel("lv-key", lvl)
		if err != nil {
			t.Fatalf("%v read: %v", lvl, err)
		}
		// Eventual and bounded reads may legitimately miss right after the
		// write (bounded: the token floor is this session's own write, so
		// within MaxLag 0 it cannot miss — but leave only the guaranteed
		// levels strict).
		if lvl == runtime.LevelSession || lvl == runtime.LevelStrong {
			if !ok || !bytes.Equal(v, []byte("v")) {
				t.Fatalf("%v read = (%q, %t), want the write visible", lvl, v, ok)
			}
		}
	}
}

func TestPickTokenPrefersCoveringReplica(t *testing.T) {
	router := startRouter(t, carved(t, 10, 1), Config{Seed: 23})
	g, ok := router.Group(router.Shards()[0])
	if !ok {
		t.Fatal("missing group")
	}

	tok := &runtime.Token{}
	rec, err := g.Cluster().WriteSession(0, "pk", []byte("v"), tok)
	if err != nil {
		t.Fatal(err)
	}
	_ = rec
	// Immediately after the ack, replica 0 is (at least) one covering
	// replica; pickToken must choose a covering one, whatever demand says.
	id := g.pickToken(RouteLowestDemand, tok)
	if !g.Cluster().TokenCovered(id, tok) {
		t.Fatalf("pickToken chose non-covering replica %v", id)
	}
	// A nil token routes exactly like pick.
	if id := g.pickToken(RouteLowestDemand, nil); int(id) < 0 || int(id) >= g.N() {
		t.Fatalf("nil-token pick out of range: %v", id)
	}
	// A token nobody covers falls back to the plain policy pick.
	far := &runtime.Token{}
	far.ObserveWrite(rec.TS)
	farTS := rec.TS
	farTS.Seq += 1 << 20
	far.ObserveWrite(farTS)
	if id := g.pickToken(RouteLowestDemand, far); int(id) < 0 || int(id) >= g.N() {
		t.Fatalf("uncovered-token pick out of range: %v", id)
	}
}
