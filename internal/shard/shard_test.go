package shard

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/policy"
	"repro/internal/runtime"
	"repro/internal/topology"
	"repro/internal/vclock"
)

// carved builds specs over a shared BA substrate.
func carved(t *testing.T, totalNodes, nShards int) []GroupSpec {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	g := topology.BarabasiAlbert(totalNodes, 2, r)
	f := demand.Uniform(totalNodes, 1, 101, r)
	specs, err := Carve(g, f, nShards)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func TestCarveShapes(t *testing.T) {
	specs := carved(t, 40, 5)
	if len(specs) != 5 {
		t.Fatalf("got %d specs, want 5", len(specs))
	}
	total := 0
	for i, spec := range specs {
		if spec.Name == "" {
			t.Errorf("spec %d has empty name", i)
		}
		if !spec.Graph.IsConnected() {
			t.Errorf("%s sub-topology %v is disconnected", spec.Name, spec.Graph)
		}
		if err := spec.Graph.Validate(); err != nil {
			t.Errorf("%s sub-topology invalid: %v", spec.Name, err)
		}
		if spec.Field.At(0, 0) <= 0 {
			t.Errorf("%s demand field returned non-positive demand", spec.Name)
		}
		total += spec.Graph.N()
	}
	if total != 40 {
		t.Errorf("carved node counts sum to %d, want 40", total)
	}
}

func TestCarveDeterministic(t *testing.T) {
	a, b := carved(t, 30, 3), carved(t, 30, 3)
	for i := range a {
		ea, eb := a[i].Graph.Edges(), b[i].Graph.Edges()
		if fmt.Sprint(ea) != fmt.Sprint(eb) {
			t.Fatalf("carve not deterministic for %s:\n%v\nvs\n%v", a[i].Name, ea, eb)
		}
	}
}

func TestCarveErrors(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := topology.BarabasiAlbert(10, 2, r)
	f := demand.Uniform(10, 1, 10, r)
	for _, tc := range []struct {
		name   string
		g      *topology.Graph
		f      demand.Field
		shards int
	}{
		{"nil graph", nil, f, 2},
		{"nil field", g, nil, 2},
		{"zero shards", g, f, 0},
		{"more shards than nodes", g, f, 11},
	} {
		if _, err := Carve(tc.g, tc.f, tc.shards); err == nil {
			t.Errorf("%s: Carve succeeded", tc.name)
		}
	}
}

// startRouter builds and starts a router over the specs with fast test
// timings, registering cleanup.
func startRouter(t *testing.T, specs []GroupSpec, cfg Config) *Router {
	t.Helper()
	if cfg.RuntimeOptions == nil {
		cfg.RuntimeOptions = []runtime.Option{
			runtime.WithSessionInterval(5 * time.Millisecond),
			runtime.WithAdvertInterval(2 * time.Millisecond),
		}
	}
	router, err := NewRouter(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Stop)
	return router
}

func TestRouterEndToEnd(t *testing.T) {
	router := startRouter(t, carved(t, 15, 3), Config{Seed: 3})
	if router.N() != 15 {
		t.Fatalf("router.N = %d, want 15", router.N())
	}

	// Write a keyspace through the router and remember what went where.
	const nKeys = 60
	receipts := make(map[string]Receipt, nKeys)
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("k%03d", i)
		rc, err := router.Write(key, []byte(key+"-v"))
		if err != nil {
			t.Fatalf("Write(%s): %v", key, err)
		}
		if owner, _ := router.OwnerOf(key); owner != rc.Shard {
			t.Fatalf("receipt shard %q != ring owner %q", rc.Shard, owner)
		}
		receipts[key] = rc
	}

	// Every shard should own part of the keyspace.
	perShard := make(map[string]int)
	for _, rc := range receipts {
		perShard[rc.Shard]++
	}
	for _, name := range router.Shards() {
		if perShard[name] == 0 {
			t.Errorf("shard %q received no writes", name)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !router.WaitConverged(ctx) {
		t.Fatal("router did not converge")
	}
	for key := range receipts {
		got, ok, err := router.Read(key)
		if err != nil || !ok {
			t.Fatalf("Read(%s) after convergence: ok=%t err=%v", key, ok, err)
		}
		if string(got) != key+"-v" {
			t.Fatalf("Read(%s) = %q", key, got)
		}
	}
	for _, name := range router.Shards() {
		g, _ := router.Group(name)
		if _, ok := g.Digest(); !ok {
			t.Errorf("%s: store digests disagree after convergence", name)
		}
	}
	if st := router.Stats(); st.SessionsInitiated == 0 {
		t.Error("aggregate stats report zero sessions")
	}
	if len(router.GroupStats()) != 3 {
		t.Errorf("GroupStats has %d entries, want 3", len(router.GroupStats()))
	}
}

func TestRouterWatchCoversOwningGroup(t *testing.T) {
	router := startRouter(t, carved(t, 12, 2), Config{Seed: 5})
	rc, err := router.Write("watched-key", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := router.Watch(rc)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-w.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("watch did not complete")
	}
	g, _ := router.Group(rc.Shard)
	if got := len(w.Times()); got != g.N() {
		t.Errorf("watch recorded %d replicas, want the owning group's %d", got, g.N())
	}
	if _, err := router.Watch(Receipt{Shard: "ghost"}); err == nil {
		t.Error("Watch on unknown shard succeeded")
	}
}

// TestConvergedWithStalledGroup: a write lands in one group whose
// anti-entropy is effectively frozen (hour-long sessions, no fast push), so
// that group cannot converge — and the router must report the whole
// keyspace unconverged while the untouched group stays converged.
func TestConvergedWithStalledGroup(t *testing.T) {
	specs := carved(t, 12, 2)
	router := startRouter(t, specs, Config{Seed: 9, RuntimeOptions: []runtime.Option{
		runtime.WithSessionInterval(time.Hour),
		runtime.WithAdvertInterval(time.Hour),
		runtime.WithFastPush(false),
		runtime.WithPolicy(policy.NewRandom),
	}})
	if !router.Converged() {
		t.Fatal("empty router not converged")
	}
	rc, err := router.Write("stall-key", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	stalled, _ := router.Group(rc.Shard)
	if stalled.Converged() {
		t.Fatal("written group converged instantly despite frozen anti-entropy")
	}
	for _, name := range router.Shards() {
		if name == rc.Shard {
			continue
		}
		g, _ := router.Group(name)
		if !g.Converged() {
			t.Errorf("untouched group %q not converged", name)
		}
	}
	if router.Converged() {
		t.Error("router converged despite one stalled group")
	}
}

// TestAddShardHandoffPreservesVersions: growing the ring moves keys onto
// the new shard with their versions intact, so the new group's stores agree
// digest-wise and every moved key keeps its exact (TS, Clock, Value).
func TestAddShardHandoffPreservesVersions(t *testing.T) {
	router := startRouter(t, carved(t, 12, 2), Config{Seed: 11})
	const nKeys = 80
	for i := 0; i < nKeys; i++ {
		if _, err := router.Write(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !router.WaitConverged(ctx) {
		t.Fatal("router did not converge before handoff")
	}

	// Record every key's version from its pre-add owner.
	type version struct {
		ts    vclock.Timestamp
		clock uint64
		value string
	}
	before := make(map[string]version, nKeys)
	for _, name := range router.Shards() {
		g, _ := router.Group(name)
		items, err := g.Cluster().Snapshot(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, item := range items {
			before[item.Key] = version{item.TS, item.Clock, string(item.Value)}
		}
	}
	if len(before) != nKeys {
		t.Fatalf("recorded %d keys pre-add, want %d", len(before), nKeys)
	}

	// Grow: one fresh 5-replica group joins the ring.
	r := rand.New(rand.NewSource(21))
	newSpec := GroupSpec{
		Name:  "grown",
		Graph: topology.BarabasiAlbert(5, 2, r),
		Field: demand.Uniform(5, 1, 101, r),
	}
	if err := router.AddShard(newSpec); err != nil {
		t.Fatal(err)
	}
	grown, ok := router.Group("grown")
	if !ok {
		t.Fatal("grown group missing after AddShard")
	}

	// The handoff is synchronous: every replica of the new group must hold
	// all moved keys at their original versions immediately.
	movedKeys := 0
	for key, want := range before {
		owner, _ := router.OwnerOf(key)
		if owner != "grown" {
			continue
		}
		movedKeys++
		for id := 0; id < grown.N(); id++ {
			v, ok := grown.Cluster().Snapshot(NodeID(id))
			if ok != nil {
				t.Fatal(ok)
			}
			found := false
			for _, item := range v {
				if item.Key != key {
					continue
				}
				found = true
				if item.TS != want.ts || item.Clock != want.clock || string(item.Value) != want.value {
					t.Fatalf("key %q version changed in handoff: (%v,%d,%q) -> (%v,%d,%q)",
						key, want.ts, want.clock, want.value, item.TS, item.Clock, item.Value)
				}
			}
			if !found {
				t.Fatalf("replica %d of grown group missing handed-off key %q", id, key)
			}
		}
	}
	if movedKeys == 0 {
		t.Fatal("ring moved no keys to the new shard")
	}
	if _, ok := grown.Digest(); !ok {
		t.Error("grown group replicas disagree on store digest after handoff")
	}
	// The full keyspace still reads back through the router.
	for key, want := range before {
		got, ok, err := router.Read(key)
		if err != nil || !ok || string(got) != want.value {
			t.Fatalf("Read(%s) after add: %q ok=%t err=%v", key, got, ok, err)
		}
	}
	if err := router.AddShard(newSpec); err == nil {
		t.Error("duplicate AddShard succeeded")
	}
}

func TestRemoveShardRedistributesKeys(t *testing.T) {
	router := startRouter(t, carved(t, 18, 3), Config{Seed: 13})
	const nKeys = 90
	values := make(map[string]string, nKeys)
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("k%03d", i)
		values[key] = fmt.Sprintf("v%03d", i)
		if _, err := router.Write(key, []byte(values[key])); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !router.WaitConverged(ctx) {
		t.Fatal("router did not converge before removal")
	}
	victim := router.Shards()[0]
	if err := router.RemoveShard(victim); err != nil {
		t.Fatal(err)
	}
	if _, ok := router.Group(victim); ok {
		t.Fatalf("group %q still present after removal", victim)
	}
	for key, want := range values {
		owner, _ := router.OwnerOf(key)
		if owner == victim {
			t.Fatalf("key %q still owned by removed shard", key)
		}
		got, ok, err := router.Read(key)
		if err != nil || !ok || string(got) != want {
			t.Fatalf("Read(%s) after removal: %q ok=%t err=%v", key, got, ok, err)
		}
	}
	// The last shards cannot be removed down to zero.
	for _, name := range router.Shards()[1:] {
		if err := router.RemoveShard(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := router.RemoveShard(router.Shards()[0]); err == nil {
		t.Error("removing the last shard succeeded")
	}
	if err := router.RemoveShard("ghost"); err == nil {
		t.Error("removing unknown shard succeeded")
	}
}

// TestConcurrentRemoveShardKeepsLastShard: with two shards, two racing
// removals must not empty the router — the last-shard guard holds under
// concurrency, exactly one removal wins, and the keyspace stays served.
func TestConcurrentRemoveShardKeepsLastShard(t *testing.T) {
	for round := 0; round < 20; round++ {
		router := startRouter(t, carved(t, 8, 2), Config{Seed: int64(round)})
		if _, err := router.Write("race-key", []byte("v")); err != nil {
			t.Fatal(err)
		}
		names := router.Shards()
		errs := make(chan error, 2)
		for _, name := range names {
			go func(name string) { errs <- router.RemoveShard(name) }(name)
		}
		failed := 0
		for range names {
			if err := <-errs; err != nil {
				failed++
			}
		}
		if failed != 1 {
			t.Fatalf("round %d: %d of 2 racing removals failed, want exactly 1", round, failed)
		}
		if got := len(router.Shards()); got != 1 {
			t.Fatalf("round %d: %d shards survive, want 1", round, got)
		}
		if v, ok, err := router.Read("race-key"); err != nil || !ok || string(v) != "v" {
			t.Fatalf("round %d: key lost in racing removals: %q ok=%t err=%v", round, v, ok, err)
		}
		router.Stop()
	}
}

// TestHandoffSurvivesReplicaRestart: a replica dead during a handoff must
// re-absorb the handed-off content on restart — it exists in no write log,
// so anti-entropy alone cannot recover it.
func TestHandoffSurvivesReplicaRestart(t *testing.T) {
	router := startRouter(t, carved(t, 8, 2), Config{Seed: 17})
	for i := 0; i < 40; i++ {
		if _, err := router.Write(fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if !router.WaitConverged(ctx) {
		t.Fatal("router did not converge")
	}

	// Kill a replica in a survivor group, then remove the other shard so
	// its keys hand off while the replica is down.
	names := router.Shards()
	survivor, _ := router.Group(names[0])
	if err := survivor.Cluster().Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := router.RemoveShard(names[1]); err != nil {
		t.Fatal(err)
	}
	if err := survivor.Cluster().Restart(1); err != nil {
		t.Fatal(err)
	}
	if !survivor.Cluster().WaitConverged(ctx) {
		t.Fatal("survivor group did not converge after restart")
	}
	// Digest agreement requires the restarted replica to hold the
	// handed-off keys too, not just the logged ones.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, ok := survivor.Digest(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never reached digest agreement — handed-off content lost")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRouterErrors(t *testing.T) {
	if _, err := NewRouter(nil, Config{}); err == nil {
		t.Error("router with no groups accepted")
	}
	specs := carved(t, 8, 2)
	dup := []GroupSpec{specs[0], specs[0]}
	if _, err := NewRouter(dup, Config{}); err == nil {
		t.Error("duplicate group names accepted")
	}
	bad := []GroupSpec{{Name: "x", Graph: nil, Field: specs[0].Field}}
	if _, err := NewRouter(bad, Config{}); err == nil {
		t.Error("nil group topology accepted")
	}
}

// TestGroupHealthSaturated pins the group-saturation predicate the router
// and chaos gates rely on: a group is saturated only when EVERY serving
// replica is shedding — one healthy replica means reroute, not back off.
func TestGroupHealthSaturated(t *testing.T) {
	cases := []struct {
		serving, overloaded int
		want                bool
	}{
		{3, 0, false},
		{3, 2, false},
		{3, 3, true},
		{1, 1, true},
		{0, 0, false}, // a fully dead group is down, not saturated
	}
	for _, c := range cases {
		h := GroupHealth{Serving: c.serving, Overloaded: c.overloaded}
		if got := h.Saturated(); got != c.want {
			t.Errorf("Saturated() with %d/%d overloaded/serving = %v, want %v",
				c.overloaded, c.serving, got, c.want)
		}
	}
}

// TestRouterHealthSnapshot checks the Health plumbing end to end: every
// group reports one snapshot per replica, all serving and none shedding
// on a healthy router, and the admission plane's counters surface through
// it when armed.
func TestRouterHealthSnapshot(t *testing.T) {
	router := startRouter(t, carved(t, 12, 3), Config{Seed: 21, RuntimeOptions: []runtime.Option{
		runtime.WithAdmission(runtime.AdmissionConfig{}),
	}})
	for i := 0; i < 32; i++ {
		if _, err := router.Write(fmt.Sprintf("key-%d", i), []byte("v")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	health := router.Health()
	if len(health) != len(router.Shards()) {
		t.Fatalf("Health reports %d groups, want %d", len(health), len(router.Shards()))
	}
	for name, h := range health {
		if len(h.Replicas) == 0 {
			t.Fatalf("%s: empty health snapshot", name)
		}
		if h.Serving != len(h.Replicas) {
			t.Errorf("%s: %d/%d replicas serving on a healthy router", name, h.Serving, len(h.Replicas))
		}
		if h.Overloaded != 0 || h.Shed != 0 || h.Saturated() {
			t.Errorf("%s: healthy group reports overloaded=%d shed=%d saturated=%v",
				name, h.Overloaded, h.Shed, h.Saturated())
		}
		for i, rh := range h.Replicas {
			if !rh.Serving {
				t.Errorf("%s: replica %d not serving", name, i)
			}
		}
	}
}
