package shard

import (
	"fmt"

	"repro/internal/demand"
	"repro/internal/topology"
)

// GroupSpec describes one shard's replica group before it is built: a name
// for the ring, a sub-topology, and the demand field its replicas see.
type GroupSpec struct {
	Name  string
	Graph *topology.Graph
	Field demand.Field
}

// mappedField exposes a slice of a shared demand field to a shard whose
// local node ids 0..k-1 correspond to global ids global[0..k-1].
type mappedField struct {
	base   demand.Field
	global []topology.NodeID
}

func (m mappedField) At(n demand.NodeID, t float64) float64 {
	return m.base.At(m.global[n], t)
}

// Carve partitions a shared topology into nShards contiguous node blocks
// and returns one GroupSpec per block: the induced subgraph relabelled to
// local ids 0..k-1, and a view of the shared demand field restricted to the
// block. Induced subgraphs can come out disconnected (the shared graph's
// edges may all leave the block), so Carve deterministically bridges the
// components with extra edges — every returned sub-topology is connected
// and usable as a replica group.
func Carve(g *topology.Graph, field demand.Field, nShards int) ([]GroupSpec, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: nil topology")
	}
	if field == nil {
		return nil, fmt.Errorf("shard: nil demand field")
	}
	if nShards <= 0 {
		return nil, fmt.Errorf("shard: non-positive shard count %d", nShards)
	}
	if g.N() < nShards {
		return nil, fmt.Errorf("shard: cannot carve %d shards from %d nodes", nShards, g.N())
	}
	specs := make([]GroupSpec, 0, nShards)
	for i := 0; i < nShards; i++ {
		lo := i * g.N() / nShards
		hi := (i + 1) * g.N() / nShards
		global := make([]topology.NodeID, 0, hi-lo)
		for u := lo; u < hi; u++ {
			global = append(global, topology.NodeID(u))
		}
		sub := induce(g, global, fmt.Sprintf("%s/shard%d", g.Name(), i))
		specs = append(specs, GroupSpec{
			Name:  fmt.Sprintf("shard%d", i),
			Graph: sub,
			Field: mappedField{base: field, global: global},
		})
	}
	return specs, nil
}

// induce builds the subgraph of g over the given global nodes, relabelled to
// 0..len-1, then bridges disconnected components so the result is connected.
func induce(g *topology.Graph, global []topology.NodeID, name string) *topology.Graph {
	local := make(map[topology.NodeID]topology.NodeID, len(global))
	for i, u := range global {
		local[u] = topology.NodeID(i)
	}
	sub := topology.New(len(global), name)
	for i, u := range global {
		if p, ok := g.Pos(u); ok {
			sub.SetPos(topology.NodeID(i), p)
		}
		for _, v := range g.Neighbors(u) {
			lv, in := local[v]
			if !in || topology.NodeID(i) >= lv {
				continue // edge leaves the block, or already added from v's side
			}
			if err := sub.AddEdge(topology.NodeID(i), lv); err != nil {
				panic(err) // unreachable: induced edges are unique and in range
			}
		}
	}
	// Bridge components: connect each component's smallest node to the
	// first component's smallest node. Components() is deterministic, so
	// carving is reproducible across runs.
	comps := sub.Components()
	for _, comp := range comps[1:] {
		if err := sub.AddEdge(comps[0][0], comp[0]); err != nil {
			panic(err) // unreachable: distinct components share no edges
		}
	}
	sub.SortAdjacency()
	return sub
}
