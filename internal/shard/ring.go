// Package shard scales the fast-consistency system horizontally: instead of
// one replica group holding the entire keyspace, a consistent-hash ring
// partitions keys across many independent groups, each running the paper's
// full anti-entropy protocol over its own sub-topology. Clients talk to a
// Router, which owns the ring and forwards every operation to a replica of
// the owning group — the sharded analogue of the paper's "clients contact
// the nearest replica".
//
// The package has three layers:
//
//	Ring    deterministic consistent hashing with virtual nodes
//	Group   one runtime.Cluster serving one shard of the keyspace
//	Router  the client surface: Write/Read/Watch/Converged across shards,
//	        plus shard add/remove with content handoff
package shard

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-shard virtual-node count used when a Ring
// (or Router) is built with vnodes <= 0. 64 points per shard keeps the
// owned-keyspace imbalance between shards within a few percent.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring mapping keys to shard names. Each shard
// contributes a fixed number of virtual nodes (hash points); a key belongs
// to the shard owning the first point clockwise from the key's hash. The
// mapping is deterministic in the set of shards: adding a shard moves keys
// only onto the new shard, removing one moves only its keys elsewhere —
// the bounded-movement property resharding relies on.
//
// Ring is safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []uint64            // sorted vnode hashes
	owner  map[uint64]string   // vnode hash -> shard
	shards map[string][]uint64 // shard -> its vnode hashes
}

// NewRing returns an empty ring with the given virtual-node count per shard
// (DefaultVirtualNodes when vnodes <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{
		vnodes: vnodes,
		owner:  make(map[uint64]string),
		shards: make(map[string][]uint64),
	}
}

// ringHash hashes s with 64-bit FNV-1a followed by a murmur-style
// finalizer. The finalizer matters: sequential strings ("key-000041",
// "key-000042", ...) hash to near-arithmetic progressions under plain
// FNV-1a, which clumps them onto a handful of ring arcs and destroys
// balance. Deterministic across processes, so key placement is stable
// between runs and between router instances.
func ringHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a shard's virtual nodes. It fails if the shard is already
// present or its name is empty.
func (r *Ring) Add(shard string) error {
	if shard == "" {
		return fmt.Errorf("shard: empty shard name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.shards[shard]; ok {
		return fmt.Errorf("shard: %q already on ring", shard)
	}
	hashes := make([]uint64, 0, r.vnodes)
	for i := 0; i < r.vnodes; i++ {
		h := ringHash(fmt.Sprintf("%s#%d", shard, i))
		// On the (astronomically rare) 64-bit collision, probe forward so
		// every virtual node lands on a distinct point.
		for probe := 0; ; probe++ {
			if _, taken := r.owner[h]; !taken {
				break
			}
			h = ringHash(fmt.Sprintf("%s#%d#%d", shard, i, probe))
		}
		r.owner[h] = shard
		hashes = append(hashes, h)
	}
	r.shards[shard] = hashes
	r.points = append(r.points, hashes...)
	sort.Slice(r.points, func(i, j int) bool { return r.points[i] < r.points[j] })
	return nil
}

// Remove deletes a shard's virtual nodes; keys it owned fall through to
// their clockwise successors.
func (r *Ring) Remove(shard string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	hashes, ok := r.shards[shard]
	if !ok {
		return fmt.Errorf("shard: %q not on ring", shard)
	}
	delete(r.shards, shard)
	for _, h := range hashes {
		delete(r.owner, h)
	}
	kept := r.points[:0]
	for _, p := range r.points {
		if _, alive := r.owner[p]; alive {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Owner returns the shard owning key, or false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if idx == len(r.points) {
		idx = 0 // wrap: the ring is circular
	}
	return r.owner[r.points[idx]], true
}

// Has reports whether the shard is on the ring.
func (r *Ring) Has(shard string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.shards[shard]
	return ok
}

// Shards returns the shard names in ascending order.
func (r *Ring) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.shards))
	for name := range r.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of shards on the ring.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.shards)
}
