package shard

import (
	"fmt"
	"testing"
)

func ringWith(t *testing.T, vnodes int, shards ...string) *Ring {
	t.Helper()
	r := NewRing(vnodes)
	for _, s := range shards {
		if err := r.Add(s); err != nil {
			t.Fatalf("Add(%q): %v", s, err)
		}
	}
	return r
}

func owners(t *testing.T, r *Ring, nKeys int) map[string]string {
	t.Helper()
	out := make(map[string]string, nKeys)
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("key-%06d", i)
		owner, ok := r.Owner(key)
		if !ok {
			t.Fatalf("Owner(%q) on non-empty ring returned !ok", key)
		}
		out[key] = owner
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	a := ringWith(t, 0, "a", "b", "c", "d")
	b := ringWith(t, 0, "a", "b", "c", "d")
	oa, ob := owners(t, a, 2000), owners(t, b, 2000)
	for k, want := range oa {
		if ob[k] != want {
			t.Fatalf("ring not deterministic: key %q -> %q vs %q", k, want, ob[k])
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := ringWith(t, 0, "a", "b", "c", "d")
	counts := make(map[string]int)
	for _, owner := range owners(t, r, 8000) {
		counts[owner]++
	}
	for _, s := range r.Shards() {
		if counts[s] < 8000/4/3 {
			t.Errorf("shard %q owns only %d of 8000 keys — badly unbalanced", s, counts[s])
		}
	}
}

// TestRingAddMovesKeysOnlyToNewShard asserts consistent hashing's bounded
// movement: growing the ring relocates keys exclusively onto the new shard,
// and roughly the fair share of them.
func TestRingAddMovesKeysOnlyToNewShard(t *testing.T) {
	r := ringWith(t, 0, "a", "b", "c", "d")
	const nKeys = 8000
	before := owners(t, r, nKeys)
	if err := r.Add("e"); err != nil {
		t.Fatal(err)
	}
	after := owners(t, r, nKeys)
	moved := 0
	for k, was := range before {
		now := after[k]
		if now == was {
			continue
		}
		if now != "e" {
			t.Fatalf("key %q moved %q -> %q, not onto the new shard", k, was, now)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new shard")
	}
	// Fair share is 1/5; allow generous hashing slack either way.
	if frac := float64(moved) / nKeys; frac > 2.0/5 {
		t.Errorf("add moved %.1f%% of keys; want roughly the 20%% fair share", frac*100)
	}
}

// TestRingRemoveMovesOnlyRemovedShardsKeys is the shrink-side bound: keys
// not owned by the removed shard keep their owner exactly.
func TestRingRemoveMovesOnlyRemovedShardsKeys(t *testing.T) {
	r := ringWith(t, 0, "a", "b", "c", "d")
	const nKeys = 8000
	before := owners(t, r, nKeys)
	if err := r.Remove("c"); err != nil {
		t.Fatal(err)
	}
	after := owners(t, r, nKeys)
	for k, was := range before {
		now := after[k]
		if was == "c" {
			if now == "c" {
				t.Fatalf("key %q still owned by removed shard", k)
			}
			continue
		}
		if now != was {
			t.Fatalf("key %q moved %q -> %q though its owner stayed on the ring", k, was, now)
		}
	}
}

// TestRingAddRemoveRoundTrips pairs the two: add then remove restores the
// original mapping bit-for-bit.
func TestRingAddRemoveRoundTrips(t *testing.T) {
	r := ringWith(t, 0, "a", "b", "c")
	before := owners(t, r, 3000)
	if err := r.Add("d"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("d"); err != nil {
		t.Fatal(err)
	}
	after := owners(t, r, 3000)
	for k, was := range before {
		if after[k] != was {
			t.Fatalf("key %q: %q -> %q after add+remove round trip", k, was, after[k])
		}
	}
}

func TestRingErrors(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("k"); ok {
		t.Error("empty ring claimed an owner")
	}
	if err := r.Add(""); err == nil {
		t.Error("empty shard name accepted")
	}
	if err := r.Add("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("a"); err == nil {
		t.Error("duplicate shard accepted")
	}
	if err := r.Remove("ghost"); err == nil {
		t.Error("removing unknown shard succeeded")
	}
	if !r.Has("a") || r.Has("ghost") {
		t.Error("Has misreports membership")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}
