package shard

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/runtime"
)

// durableRouter builds a started durable router over tmp per-shard dirs.
func durableRouter(t *testing.T, ctx context.Context, shards int, dir string) *Router {
	t.Helper()
	specs := carved(t, 4*shards, shards)
	r, err := NewRouter(specs, Config{
		Seed:    3,
		DataDir: dir,
		RuntimeOptions: []runtime.Option{
			runtime.WithSessionInterval(10 * time.Millisecond),
			runtime.WithAdvertInterval(5 * time.Millisecond),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(ctx); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDurableShardSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := durableRouter(t, ctx, 2, dir)
	defer r.Stop()

	keys := make(map[string]string)
	for i := 0; i < 40; i++ {
		k, v := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i)
		if _, err := r.Write(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		keys[k] = v
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	conv := r.WaitConverged(wctx)
	wcancel()
	if !conv {
		t.Fatal("router did not converge")
	}
	// Crash every replica of every group, then bring them all back from
	// disk alone. Each acked write is guaranteed on its acking replica's
	// disk; anti-entropy re-spreads it to peers whose buffered copy died
	// with the crash, so the groups re-converge to the full content.
	for _, name := range r.Shards() {
		g, _ := r.Group(name)
		c := g.Cluster()
		for i := 0; i < c.N(); i++ {
			if err := c.Kill(NodeID(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < c.N(); i++ {
			if err := c.RestartFromDisk(NodeID(i)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	wctx, wcancel = context.WithTimeout(ctx, 10*time.Second)
	conv = r.WaitConverged(wctx)
	wcancel()
	if !conv {
		t.Fatal("groups did not re-converge after disk recovery")
	}
	for k, v := range keys {
		got, ok, err := r.Read(k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("key %s lost across group crashes: %q %v %v", k, got, ok, err)
		}
	}
}

func TestHandoffSnapshotsPersisted(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := durableRouter(t, ctx, 2, dir)
	defer r.Stop()

	keys := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("hand-%03d", i)
		if _, err := r.Write(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	// Grow the keyspace: keys moving onto the new shard arrive via a
	// content-level handoff that exists in no write log — only the journal
	// keeps it crash-safe.
	spec := carved(t, 12, 3)[2]
	spec.Name = "joined"
	if err := r.AddShard(spec); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		if owner, _ := r.OwnerOf(k); owner == "joined" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the joined shard; test proves nothing")
	}
	r.Stop()

	// Rebuild the same shard set cold over the same data dirs: every group
	// recovers from disk alone (no in-process state survives), including
	// the handed-off content on the joined shard.
	specs := carved(t, 8, 2)
	specs = append(specs, spec)
	r2, err := NewRouter(specs, Config{Seed: 3, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer r2.Stop()
	for _, k := range keys {
		owner, _ := r2.OwnerOf(k)
		if owner != "joined" {
			continue
		}
		got, ok, err := r2.Read(k)
		if err != nil || !ok || string(got) != "v" {
			t.Fatalf("handed-off key %s lost across cold restart: %q %v %v", k, got, ok, err)
		}
	}
}
