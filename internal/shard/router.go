package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/vclock"
)

// Config tunes a Router.
type Config struct {
	// VirtualNodes per shard on the hash ring (DefaultVirtualNodes if 0).
	VirtualNodes int
	// Routing picks the serving replica within the owning group
	// (RouteLowestDemand by default).
	Routing RoutePolicy
	// Seed makes replica RNGs and random routing deterministic.
	Seed int64
	// DataDir, when non-empty, enables the durable persistence plane for
	// every group: group g's replicas keep their WALs and snapshots under
	// DataDir/<group-name>/n<id> (runtime.WithDurability per group), so
	// handoff snapshots and client writes survive crashes, and a router
	// rebuilt over the same DataDir recovers every shard from disk.
	DataDir string
	// RuntimeOptions apply to every group's cluster (session interval,
	// policy, fast push, network faults, ...).
	RuntimeOptions []runtime.Option
	// Obs, when non-nil, enables the observability plane: every group's
	// cluster feeds the registry (with a shard=<name> label distinguishing
	// its series), and the router adds per-shard routed-op and handoff
	// counters on top.
	Obs *obs.Registry
}

// Receipt identifies a routed write: which shard accepted it, at which
// replica, and the write's timestamp within that group. Pass it to Watch to
// observe the write's propagation across the owning group.
type Receipt struct {
	Shard string
	Node  NodeID
	TS    vclock.Timestamp
	// Clock is the write's Lamport clock within its group — its position in
	// the store's LWW version order (clock major, TS tiebreak).
	Clock uint64
}

// String renders the receipt.
func (rc Receipt) String() string {
	return fmt.Sprintf("%s/%v@%v", rc.Shard, rc.Node, rc.TS)
}

// Router serves one sharded keyspace: a consistent-hash ring over replica
// groups, each running the fast-consistency protocol independently. The
// router exposes the familiar cluster surface — Write, Read, Watch,
// Converged, Stats — and resolves the owning group per key, so callers
// never see shard boundaries except through receipts.
//
// Router is safe for concurrent use; Write/Read may be called from many
// client goroutines at once.
type Router struct {
	cfg  Config
	ring *Ring

	// clock is the shared coarse routing clock: one background ticker
	// serves every group's per-op demand evaluation (see Group.now).
	clock coarseClock
	stopC chan struct{}

	mu      sync.RWMutex
	groups  map[string]*Group
	started bool
	stopped bool
	ctx     context.Context

	// reshardMu serialises AddShard/RemoveShard end to end: the shard set
	// and ring only change under it, which keeps the handoff and the
	// last-shard guard atomic with respect to concurrent resharding.
	reshardMu sync.Mutex
}

// groupOptions returns the runtime options for one group's cluster,
// appending per-group durability when DataDir is set and the per-group
// observability bundle when Obs is set.
func (cfg Config) groupOptions(spec GroupSpec) []runtime.Option {
	if cfg.DataDir == "" && cfg.Obs == nil {
		return cfg.RuntimeOptions
	}
	opts := append([]runtime.Option(nil), cfg.RuntimeOptions...)
	if cfg.DataDir != "" {
		opts = append(opts, runtime.WithDurability(filepath.Join(cfg.DataDir, spec.Name)))
	}
	if cfg.Obs != nil {
		co := obs.NewClusterObs(cfg.Obs, spec.Graph.N(), obs.L("shard", spec.Name))
		opts = append(opts, runtime.WithObs(co))
	}
	return opts
}

// registerGroupObs attaches the router-level per-shard counters to a fresh
// group. Registration is idempotent, so a router rebuilt on a shared
// registry (or a shard re-added) re-attaches to its series.
func (r *Router) registerGroupObs(g *Group) {
	reg := r.cfg.Obs
	if reg == nil {
		return
	}
	shard := obs.L("shard", g.name)
	g.obsWrites = reg.Counter("repro_shard_ops_total",
		"Client operations routed to the shard, by op.", shard, obs.L("op", "write"))
	g.obsReads = reg.Counter("repro_shard_ops_total",
		"Client operations routed to the shard, by op.", shard, obs.L("op", "read"))
	g.obsWriteErr = reg.Counter("repro_shard_op_errors_total",
		"Routed client operations that failed at the shard, by op.", shard, obs.L("op", "write"))
	g.obsReadErr = reg.Counter("repro_shard_op_errors_total",
		"Routed client operations that failed at the shard, by op.", shard, obs.L("op", "read"))
	g.obsHandoff = reg.Counter("repro_shard_handoff_keys_total",
		"Keys the shard received through resharding handoffs.", shard)
}

// NewRouter assembles a router over the given shard groups. Use Carve to
// derive specs from one shared topology, or hand-build specs for
// heterogeneous shards. Call Start to launch the clusters.
func NewRouter(specs []GroupSpec, cfg Config) (*Router, error) {
	if len(specs) == 0 {
		return nil, errors.New("shard: router needs at least one group")
	}
	r := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.VirtualNodes),
		groups: make(map[string]*Group, len(specs)),
	}
	for i, spec := range specs {
		if _, dup := r.groups[spec.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate group %q", spec.Name)
		}
		g, err := newGroup(spec, cfg.Seed+int64(i)*104729, cfg.groupOptions(spec), &r.clock)
		if err != nil {
			return nil, err
		}
		if err := r.ring.Add(spec.Name); err != nil {
			return nil, err
		}
		r.registerGroupObs(g)
		r.groups[spec.Name] = g
	}
	return r, nil
}

// Start launches every group's cluster. The router stops when ctx is
// cancelled or Stop is called.
func (r *Router) Start(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return errors.New("shard: router already started")
	}
	r.started = true
	r.ctx = ctx
	r.stopC = make(chan struct{})
	for _, g := range r.groups {
		if err := g.cluster.Start(ctx); err != nil {
			return err
		}
		g.markStarted()
	}
	// The clock starts only once every group is up, so a failed Start leaks
	// no ticker goroutine; until the first tick (and again after Stop),
	// coarseClock.now falls back to the real clock.
	r.clock.ns.Store(time.Now().UnixNano())
	go r.clockLoop(ctx, r.stopC)
	return nil
}

// clockLoop drives the shared coarse routing clock: a millisecond tick is
// far finer than any demand field's rate of change, and it converts every
// routed op's time.Now into one atomic load.
func (r *Router) clockLoop(ctx context.Context, stop <-chan struct{}) {
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	// On exit, clear the cached time so coarseClock.now falls back to the
	// real clock instead of freezing at the last tick (Router reads keep
	// working after Stop).
	defer r.clock.ns.Store(0)
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		case t := <-ticker.C:
			r.clock.ns.Store(t.UnixNano())
		}
	}
}

// Stop shuts every group down. Safe to call more than once.
func (r *Router) Stop() {
	r.mu.Lock()
	if !r.started || r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	close(r.stopC)
	groups := make([]*Group, 0, len(r.groups))
	for _, g := range r.groups {
		groups = append(groups, g)
	}
	r.mu.Unlock()
	for _, g := range groups {
		g.cluster.Stop()
	}
}

// route resolves key to its owning group.
func (r *Router) route(key string) (*Group, error) {
	owner, ok := r.ring.Owner(key)
	if !ok {
		return nil, errors.New("shard: empty ring")
	}
	r.mu.RLock()
	g := r.groups[owner]
	r.mu.RUnlock()
	if g == nil {
		return nil, fmt.Errorf("shard: ring owner %q has no group", owner)
	}
	return g, nil
}

// OwnerOf returns the shard that owns key.
func (r *Router) OwnerOf(key string) (string, bool) { return r.ring.Owner(key) }

// Write routes a client write to the owning group's serving replica.
func (r *Router) Write(key string, value []byte) (Receipt, error) {
	g, err := r.route(key)
	if err != nil {
		return Receipt{}, err
	}
	id := g.pick(r.cfg.Routing)
	rec, err := g.cluster.WriteReceipted(id, key, value)
	if err != nil {
		if g.obsWriteErr != nil {
			g.obsWriteErr.Inc()
		}
		return Receipt{}, fmt.Errorf("shard: write to %s: %w", g.name, err)
	}
	if g.obsWrites != nil {
		g.obsWrites.Inc()
	}
	return Receipt{Shard: g.name, Node: id, TS: rec.TS, Clock: rec.Clock}, nil
}

// Read routes a client read to the owning group's serving replica. The
// returned slice is a read-only view of replicated content (store
// immutability contract); callers that need a mutable buffer copy it.
func (r *Router) Read(key string) ([]byte, bool, error) {
	g, err := r.route(key)
	if err != nil {
		return nil, false, err
	}
	v, ok, err := g.cluster.Read(g.pick(r.cfg.Routing), key)
	switch {
	case err != nil && g.obsReadErr != nil:
		g.obsReadErr.Inc()
	case err == nil && g.obsReads != nil:
		g.obsReads.Inc()
	}
	return v, ok, err
}

// Watch observes a routed write propagating across its owning group (a
// write only ever reaches its own shard's replicas).
func (r *Router) Watch(rc Receipt) (*runtime.Watch, error) {
	r.mu.RLock()
	g := r.groups[rc.Shard]
	r.mu.RUnlock()
	if g == nil {
		return nil, fmt.Errorf("shard: no group %q", rc.Shard)
	}
	return g.cluster.Watch(rc.TS), nil
}

// Shards returns the shard names in ring order (ascending).
func (r *Router) Shards() []string { return r.ring.Shards() }

// Group returns a shard's group for direct inspection (stats, faults).
func (r *Router) Group(name string) (*Group, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.groups[name]
	return g, ok
}

// Converged reports whether every group's live replicas hold equal
// summaries — the sharded analogue of Cluster.Converged. One stalled group
// makes the whole keyspace unconverged.
func (r *Router) Converged() bool {
	r.mu.RLock()
	groups := make([]*Group, 0, len(r.groups))
	for _, g := range r.groups {
		groups = append(groups, g)
	}
	r.mu.RUnlock()
	for _, g := range groups {
		if !g.Converged() {
			return false
		}
	}
	return true
}

// WaitConverged polls until every group converges or ctx expires.
func (r *Router) WaitConverged(ctx context.Context) bool {
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		if r.Converged() {
			return true
		}
		select {
		case <-ctx.Done():
			return r.Converged()
		case <-ticker.C:
		}
	}
}

// Stats sums protocol counters across every replica of every group.
func (r *Router) Stats() node.Stats {
	r.mu.RLock()
	groups := make([]*Group, 0, len(r.groups))
	for _, g := range r.groups {
		groups = append(groups, g)
	}
	r.mu.RUnlock()
	var total node.Stats
	for _, g := range groups {
		addStats(&total, g.Stats())
	}
	return total
}

// Health snapshots every shard's client-plane health, keyed by shard
// name — queue depths, overload state, shed totals and fail-stop reasons
// per replica (see GroupHealth). Routing already consumes the same
// signals per op (saturated and dead replicas are skipped by pick);
// Health exposes them to operators, rebalancers and tests.
func (r *Router) Health() map[string]GroupHealth {
	r.mu.RLock()
	groups := make([]*Group, 0, len(r.groups))
	for _, g := range r.groups {
		groups = append(groups, g)
	}
	r.mu.RUnlock()
	out := make(map[string]GroupHealth, len(groups))
	for _, g := range groups {
		out[g.name] = g.Health()
	}
	return out
}

// GroupStats returns per-shard protocol counters keyed by shard name.
func (r *Router) GroupStats() map[string]node.Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]node.Stats, len(r.groups))
	for name, g := range r.groups {
		out[name] = g.Stats()
	}
	return out
}

// N returns the total replica count across groups.
func (r *Router) N() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := 0
	for _, g := range r.groups {
		total += g.N()
	}
	return total
}

// AddShard grows the keyspace: a new group is built (and started, when the
// router runs), every key the grown ring will assign to it is handed off
// from the group that held it, and only then does the new shard join the
// live ring — so a concurrently routed read never lands on an empty group,
// and the absorbed versions advance the new group's clocks before any
// client write can race them. The handoff is a content-level store
// transfer preserving each key's version bit-for-bit, so store digests
// over moved keys are identical on both sides. Handed-off keys remain on
// the old owners as inert residue (the ring never routes to them again);
// the paper's per-group anti-entropy is untouched.
//
// Resharding is not linearizable against concurrent writes to moving keys:
// a write landing on the old owner after its image is captured stays
// there, invisible to the new owner. Quiesce writers (or re-run AddShard's
// handoff) when that window matters.
func (r *Router) AddShard(spec GroupSpec) error {
	r.reshardMu.Lock()
	defer r.reshardMu.Unlock()
	r.mu.Lock()
	if _, dup := r.groups[spec.Name]; dup {
		r.mu.Unlock()
		return fmt.Errorf("shard: group %q already present", spec.Name)
	}
	seed := r.cfg.Seed + int64(len(r.groups))*104729
	g, err := newGroup(spec, seed, r.cfg.groupOptions(spec), &r.clock)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	r.registerGroupObs(g)
	if r.started && !r.stopped {
		if err := g.cluster.Start(r.ctx); err != nil {
			r.mu.Unlock()
			return err
		}
		g.markStarted()
	}
	donors := make([]*Group, 0, len(r.groups))
	for _, old := range r.groups {
		donors = append(donors, old)
	}
	r.mu.Unlock()

	// Handoff against a preview of the grown ring, before routing flips.
	// Consistent hashing guarantees keys move only *onto* the new shard,
	// so donors never receive anything.
	preview := NewRing(r.cfg.VirtualNodes)
	for _, name := range r.ring.Shards() {
		if err := preview.Add(name); err != nil {
			g.cluster.Stop()
			return err
		}
	}
	if err := preview.Add(spec.Name); err != nil {
		g.cluster.Stop()
		return err
	}
	var moved []store.Item
	for _, donor := range donors {
		for _, item := range donor.snapshotUnion() {
			if owner, ok := preview.Owner(item.Key); ok && owner == spec.Name {
				moved = append(moved, item)
			}
		}
	}
	if len(moved) > 0 {
		g.cluster.ApplySnapshot(moved)
		if g.obsHandoff != nil {
			g.obsHandoff.Add(uint64(len(moved)))
		}
	}

	// Flip routing: register the group, then its ring points.
	r.mu.Lock()
	r.groups[spec.Name] = g
	r.mu.Unlock()
	if err := r.ring.Add(spec.Name); err != nil {
		r.mu.Lock()
		delete(r.groups, spec.Name)
		r.mu.Unlock()
		g.cluster.Stop()
		return err
	}
	return nil
}

// Target adapts the router to op-stream drivers (it satisfies
// workload.Target structurally): write receipts are discarded.
type Target struct{ Router *Router }

// Write routes a write, discarding the receipt.
func (t Target) Write(key string, value []byte) error {
	_, err := t.Router.Write(key, value)
	return err
}

// Read routes a read.
func (t Target) Read(key string) ([]byte, bool, error) { return t.Router.Read(key) }

// RemoveShard shrinks the keyspace: every key the shard held is handed off
// to its post-removal ring owner (the same version-preserving content
// transfer as AddShard, against a preview of the shrunk ring), then the
// shard leaves the live ring and its cluster stops. The same
// non-linearizability caveat as AddShard applies to writes racing the
// handoff.
func (r *Router) RemoveShard(name string) error {
	r.reshardMu.Lock()
	defer r.reshardMu.Unlock()
	r.mu.Lock()
	g := r.groups[name]
	if g == nil {
		r.mu.Unlock()
		return fmt.Errorf("shard: no group %q", name)
	}
	// Sound under reshardMu: only resharding changes the group set.
	if len(r.groups) == 1 {
		r.mu.Unlock()
		return errors.New("shard: cannot remove the last shard")
	}
	started := r.started
	r.mu.Unlock()

	// Handoff before routing flips: redistribute the departing shard's
	// image to the owners a shrunk ring will choose.
	preview := NewRing(r.cfg.VirtualNodes)
	for _, s := range r.ring.Shards() {
		if s == name {
			continue
		}
		if err := preview.Add(s); err != nil {
			return err
		}
	}
	perOwner := make(map[string][]store.Item)
	for _, item := range g.snapshotUnion() {
		owner, ok := preview.Owner(item.Key)
		if !ok {
			continue
		}
		perOwner[owner] = append(perOwner[owner], item)
	}
	r.mu.RLock()
	for owner, items := range perOwner {
		if dst := r.groups[owner]; dst != nil {
			dst.cluster.ApplySnapshot(items)
			if dst.obsHandoff != nil {
				dst.obsHandoff.Add(uint64(len(items)))
			}
		}
	}
	r.mu.RUnlock()

	if err := r.ring.Remove(name); err != nil {
		return err
	}
	r.mu.Lock()
	delete(r.groups, name)
	r.mu.Unlock()
	if started {
		g.cluster.Stop()
	}
	return nil
}
