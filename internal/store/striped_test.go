package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/vclock"
	"repro/internal/wlog"
)

// randomEntries builds a randomized entry set over a small key pool so LWW
// conflicts are frequent: duplicate clocks, clock ties broken by timestamp,
// several writes per key.
func randomEntries(rng *rand.Rand, n, keyPool int) []wlog.Entry {
	entries := make([]wlog.Entry, n)
	for i := range entries {
		ts := vclock.Timestamp{Node: vclock.NodeID(rng.Intn(7)), Seq: uint64(rng.Intn(50) + 1)}
		clock := uint64(rng.Intn(20))
		entries[i] = wlog.Entry{
			TS:  ts,
			Key: fmt.Sprintf("k%02d", rng.Intn(keyPool)),
			// The value is a function of the write identity (TS, Clock), so
			// two generated entries that tie completely also carry the same
			// value — the winner is order-independent, as it must be for the
			// permutation equivalence below.
			Value: []byte(fmt.Sprintf("v%d.%d.%d", ts.Node, ts.Seq, clock)),
			Clock: clock,
		}
	}
	return entries
}

// referenceLWW folds entries into a plain map with the same wins rule — the
// unstriped model the striped store must match exactly.
func referenceLWW(entries []wlog.Entry) map[string]Versioned {
	ref := make(map[string]Versioned)
	for _, e := range entries {
		cur, ok := ref[e.Key]
		if ok && !wins(e, cur) {
			continue
		}
		ref[e.Key] = Versioned{Value: e.Value, TS: e.TS, Clock: e.Clock}
	}
	return ref
}

// TestStripedLWWEquivalence applies a randomized entry set in many
// permutations: every permutation must converge to the reference model's
// content and to identical digests — the order-independence the protocol's
// convergence argument rests on, now across hash-striped segments.
func TestStripedLWWEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	entries := randomEntries(rng, 400, 24)
	ref := referenceLWW(entries)

	var firstDigest uint64
	for perm := 0; perm < 8; perm++ {
		shuffled := append([]wlog.Entry(nil), entries...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		s := New()
		for _, e := range shuffled {
			s.Apply(e)
		}
		if s.Len() != len(ref) {
			t.Fatalf("perm %d: %d keys, want %d", perm, s.Len(), len(ref))
		}
		for k, want := range ref {
			got, ok := s.GetVersion(k)
			if !ok {
				t.Fatalf("perm %d: key %s missing", perm, k)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("perm %d: key %s = %+v, want %+v", perm, k, got, want)
			}
		}
		d := s.Digest()
		if perm == 0 {
			firstDigest = d
		} else if d != firstDigest {
			t.Fatalf("perm %d: digest %x, want %x", perm, d, firstDigest)
		}
	}
}

// TestStripedConcurrentApplyEquivalence applies one entry set concurrently
// from many goroutines: the result must equal the sequential fold (Apply is
// commutative and the stripes must not lose updates). Run with -race.
func TestStripedConcurrentApplyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	entries := randomEntries(rng, 2000, 32)

	seq := New()
	for _, e := range entries {
		seq.Apply(e)
	}

	conc := New()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(entries); i += workers {
				conc.Apply(entries[i])
			}
		}(w)
	}
	wg.Wait()

	if got, want := conc.Digest(), seq.Digest(); got != want {
		t.Fatalf("concurrent digest %x != sequential %x", got, want)
	}
	if got, want := conc.Applied(), seq.Applied(); got != want {
		t.Fatalf("concurrent applied %d != sequential %d", got, want)
	}
	if !reflect.DeepEqual(conc.Snapshot(), seq.Snapshot()) {
		t.Fatal("concurrent snapshot differs from sequential")
	}
}

// TestStripedConcurrentReadsDuringWrites hammers Get/ReadAsOf from readers
// while writers apply: values observed must always be complete (a key maps
// to one of its written values, never a torn mix), and the read counters
// must account every read.
func TestStripedConcurrentReadsDuringWrites(t *testing.T) {
	s := New()
	const keys = 64
	valid := make(map[string]map[string]bool) // key -> acceptable values
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("rk%02d", k)
		valid[key] = map[string]bool{"": true}
		for v := 0; v < 4; v++ {
			valid[key][fmt.Sprintf("val-%d", v)] = true
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := 0; v < 4; v++ {
				for k := 0; k < keys; k++ {
					s.Apply(wlog.Entry{
						TS:    vclock.Timestamp{Node: vclock.NodeID(w), Seq: uint64(v*keys + k + 1)},
						Key:   fmt.Sprintf("rk%02d", k),
						Value: []byte(fmt.Sprintf("val-%d", v)),
						Clock: uint64(v + 1),
					})
				}
			}
		}(w)
	}
	const readers = 4
	const readsPer = 2000
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < readsPer; i++ {
				key := fmt.Sprintf("rk%02d", rng.Intn(keys))
				v, ok := s.Get(key)
				got := ""
				if ok {
					got = string(v)
				}
				if !valid[key][got] {
					t.Errorf("key %s: torn/unknown value %q", key, got)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	reads, stale := s.ReadStats()
	if reads != readers*readsPer {
		t.Errorf("ReadStats reads = %d, want %d", reads, readers*readsPer)
	}
	if stale != 0 {
		t.Errorf("ReadStats stale = %d, want 0 (no ReadAsOf issued)", stale)
	}
}

// TestStripedGetZeroAllocs pins the striped Get at zero allocations — the
// foundation of the lock-free client read path's alloc guarantee.
func TestStripedGetZeroAllocs(t *testing.T) {
	s := New()
	s.Apply(wlog.Entry{TS: vclock.Timestamp{Node: 1, Seq: 1}, Key: "k", Value: []byte("v"), Clock: 1})
	if got := testing.AllocsPerRun(200, func() {
		if _, ok := s.Get("k"); !ok {
			t.Fatal("key missing")
		}
	}); got != 0 {
		t.Errorf("Get allocates %v objects per op, want 0", got)
	}
}
