// Package store implements the replicated key-value content store each
// replica serves to its clients.
//
// The paper's model (§2) is a fully replicated system: every node must
// eventually hold exactly the same content. Writes arrive as wlog entries;
// the store applies them with last-writer-wins resolution on the entry's
// Lamport clock (ties broken by origin id), which is deterministic and
// order-independent, so any two replicas that have applied the same set of
// entries hold identical content — the convergence property anti-entropy
// relies on.
//
// The store also tracks read statistics: how many client reads were served
// and how many of those were served with *stale* content relative to a
// reference version. This is the paper's headline metric — "number of
// requests satisfied with consistent content" (Fig. 3).
//
// Values follow the wlog immutability contract: entry values are never
// mutated after insertion into a log, so the store aliases them rather than
// copying — Apply retains the entry's value slice, and Get/GetVersion/
// Snapshot return views that callers must treat as read-only.
//
// # Concurrency
//
// The store is the client-plane hot spot: every client read lands here while
// anti-entropy applies entries concurrently. Keys are hash-striped across
// fixed segments, each with its own RWMutex, so concurrent Get/Apply on
// different keys take disjoint locks and concurrent reads of the same
// segment share a read lock; the read/applied counters are atomics, so a
// Get never takes an exclusive lock. Whole-store views (Keys, Snapshot,
// Digest) visit segments one at a time: each segment is internally
// consistent, but the view is not a point-in-time snapshot across segments
// under concurrent writes — callers compare digests or hand off snapshots at
// quiesce points, where the distinction vanishes.
package store

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/vclock"
	"repro/internal/wlog"
)

// Versioned is a stored value together with the write that produced it.
type Versioned struct {
	Value []byte
	TS    vclock.Timestamp
	Clock uint64
}

// segments is the stripe count — a power of two so the hash folds with a
// mask. 16 keeps cross-CPU collisions on independent keys unlikely at
// realistic client concurrency while keeping the (padded) segment array
// cheap enough that simulation workloads can still build thousands of
// short-lived stores per second.
const segments = 16

// segment is one stripe: a map guarded by its own lock, plus the stripe's
// share of the read counters — counting on the segment the reader already
// owns keeps the hot-key read path off any store-global cache line. The
// struct is padded to a cache line so neighbouring stripes never false-share.
type segment struct {
	mu         sync.RWMutex
	kv         map[string]Versioned
	reads      atomic.Uint64
	staleReads atomic.Uint64
	_          [16]byte // pad to a full cache line (mutex 24 + map 8 + counters 16)
}

// Store is a convergent replicated KV store. The zero value is ready to use.
// Store is safe for concurrent use.
type Store struct {
	segs [segments]segment

	applied atomic.Int64
}

// New returns an empty store.
func New() *Store { return &Store{} }

// seg returns the segment owning key (FNV-1a over the key bytes).
func (s *Store) seg(key string) *segment {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * prime32
	}
	return &s.segs[h&(segments-1)]
}

// Apply folds one write into the store. Apply is idempotent for a given
// entry and commutative across distinct entries: the final state depends
// only on the set of entries applied.
func (s *Store) Apply(e wlog.Entry) {
	s.applied.Add(1)
	sg := s.seg(e.Key)
	sg.mu.Lock()
	defer sg.mu.Unlock()
	if sg.kv == nil {
		sg.kv = make(map[string]Versioned)
	}
	cur, ok := sg.kv[e.Key]
	if ok && !wins(e, cur) {
		return
	}
	// The value is aliased, not copied: entries are immutable once logged.
	sg.kv[e.Key] = Versioned{Value: e.Value, TS: e.TS, Clock: e.Clock}
}

// wins reports whether entry e supersedes the current versioned value under
// last-writer-wins: higher Lamport clock wins, ties broken by the total
// order on timestamps.
func wins(e wlog.Entry, cur Versioned) bool {
	if e.Clock != cur.Clock {
		return e.Clock > cur.Clock
	}
	return e.TS.Compare(cur.TS) > 0
}

// Get returns the current value for key and whether it exists. It counts as
// a client read. The returned slice is a read-only view of the stored value;
// callers must not mutate it. Get takes only a shared segment lock, so
// concurrent reads never serialise against each other.
func (s *Store) Get(key string) ([]byte, bool) {
	sg := s.seg(key)
	sg.reads.Add(1)
	sg.mu.RLock()
	v, ok := sg.kv[key]
	sg.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return v.Value, true
}

// GetVersion returns the version metadata for key without counting a read.
// The returned value slice is a read-only view.
func (s *Store) GetVersion(key string) (Versioned, bool) {
	sg := s.seg(key)
	sg.mu.RLock()
	defer sg.mu.RUnlock()
	v, ok := sg.kv[key]
	if !ok {
		return Versioned{}, false
	}
	return v, true
}

// ReadAsOf serves a client read of key and records whether the served
// version is at least want (the reference write). A read is stale when the
// key is absent or its version's write is neither want itself nor a
// later-clocked write. This implements the paper's "requests satisfied with
// consistent (updated) content" counter.
func (s *Store) ReadAsOf(key string, want vclock.Timestamp, wantClock uint64) (fresh bool) {
	sg := s.seg(key)
	sg.reads.Add(1)
	sg.mu.RLock()
	v, ok := sg.kv[key]
	sg.mu.RUnlock()
	fresh = ok && (v.TS == want || v.Clock > wantClock ||
		(v.Clock == wantClock && v.TS.Compare(want) >= 0))
	if !fresh {
		sg.staleReads.Add(1)
	}
	return fresh
}

// Keys returns all keys in ascending order.
func (s *Store) Keys() []string {
	keys := make([]string, 0, s.Len())
	for i := range s.segs {
		sg := &s.segs[i]
		sg.mu.RLock()
		for k := range sg.kv {
			keys = append(keys, k)
		}
		sg.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.segs {
		sg := &s.segs[i]
		sg.mu.RLock()
		n += len(sg.kv)
		sg.mu.RUnlock()
	}
	return n
}

// Applied returns how many entries have been applied (including no-ops that
// lost LWW resolution).
func (s *Store) Applied() int {
	return int(s.applied.Load())
}

// ReadStats returns the total reads served and how many were stale.
func (s *Store) ReadStats() (reads, stale uint64) {
	for i := range s.segs {
		reads += s.segs[i].reads.Load()
		stale += s.segs[i].staleReads.Load()
	}
	return reads, stale
}

// Item is one key's versioned state, the unit of full-state snapshots.
type Item struct {
	Key   string
	Value []byte
	TS    vclock.Timestamp
	Clock uint64
}

// Snapshot exports the store's current contents in ascending key order. The
// item values are read-only views of the stored values (immutability
// contract), so exporting copies no payload bytes. Under concurrent writes
// the image is consistent per key (and per segment) but not across segments;
// see the package comment.
func (s *Store) Snapshot() []Item {
	items := make([]Item, 0, s.Len())
	for i := range s.segs {
		sg := &s.segs[i]
		sg.mu.RLock()
		for k, v := range sg.kv {
			items = append(items, Item{Key: k, Value: v.Value, TS: v.TS, Clock: v.Clock})
		}
		sg.mu.RUnlock()
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Key < items[j].Key })
	return items
}

// ApplySnapshot merges a full-state snapshot using the same LWW resolution
// as Apply, so it is safe regardless of interleaving with entry-wise
// updates.
func (s *Store) ApplySnapshot(items []Item) {
	for _, item := range items {
		s.Apply(wlog.Entry{TS: item.TS, Key: item.Key, Value: item.Value, Clock: item.Clock})
	}
}

// Digest returns a deterministic fingerprint of the store content, usable to
// check that two replicas converged to identical state. It is an FNV-1a hash
// over sorted key/value/version triples.
func (s *Store) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	items := s.Snapshot()
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for _, it := range items {
		for i := 0; i < len(it.Key); i++ {
			mix(it.Key[i])
		}
		mix(0)
		for _, b := range it.Value {
			mix(b)
		}
		mix(0)
		for i := 0; i < 8; i++ {
			mix(byte(it.Clock >> (8 * i)))
		}
		for i := 0; i < 4; i++ {
			mix(byte(uint32(it.TS.Node) >> (8 * i)))
		}
		for i := 0; i < 8; i++ {
			mix(byte(it.TS.Seq >> (8 * i)))
		}
	}
	return h
}
