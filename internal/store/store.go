// Package store implements the replicated key-value content store each
// replica serves to its clients.
//
// The paper's model (§2) is a fully replicated system: every node must
// eventually hold exactly the same content. Writes arrive as wlog entries;
// the store applies them with last-writer-wins resolution on the entry's
// Lamport clock (ties broken by origin id), which is deterministic and
// order-independent, so any two replicas that have applied the same set of
// entries hold identical content — the convergence property anti-entropy
// relies on.
//
// The store also tracks read statistics: how many client reads were served
// and how many of those were served with *stale* content relative to a
// reference version. This is the paper's headline metric — "number of
// requests satisfied with consistent content" (Fig. 3).
//
// Values follow the wlog immutability contract: entry values are never
// mutated after insertion into a log, so the store aliases them rather than
// copying — Apply retains the entry's value slice, and Get/GetVersion/
// Snapshot return views that callers must treat as read-only.
package store

import (
	"sort"
	"sync"

	"repro/internal/vclock"
	"repro/internal/wlog"
)

// Versioned is a stored value together with the write that produced it.
type Versioned struct {
	Value []byte
	TS    vclock.Timestamp
	Clock uint64
}

// Store is a convergent replicated KV store. The zero value is ready to use.
// Store is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	kv      map[string]Versioned
	applied int

	reads      uint64
	staleReads uint64
}

// New returns an empty store.
func New() *Store { return &Store{} }

// Apply folds one write into the store. Apply is idempotent for a given
// entry and commutative across distinct entries: the final state depends
// only on the set of entries applied.
func (s *Store) Apply(e wlog.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kv == nil {
		s.kv = make(map[string]Versioned)
	}
	s.applied++
	cur, ok := s.kv[e.Key]
	if ok && !wins(e, cur) {
		return
	}
	// The value is aliased, not copied: entries are immutable once logged.
	s.kv[e.Key] = Versioned{Value: e.Value, TS: e.TS, Clock: e.Clock}
}

// wins reports whether entry e supersedes the current versioned value under
// last-writer-wins: higher Lamport clock wins, ties broken by the total
// order on timestamps.
func wins(e wlog.Entry, cur Versioned) bool {
	if e.Clock != cur.Clock {
		return e.Clock > cur.Clock
	}
	return e.TS.Compare(cur.TS) > 0
}

// Get returns the current value for key and whether it exists. It counts as
// a client read. The returned slice is a read-only view of the stored value;
// callers must not mutate it.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	v, ok := s.kv[key]
	if !ok {
		return nil, false
	}
	return v.Value, true
}

// GetVersion returns the version metadata for key without counting a read.
// The returned value slice is a read-only view.
func (s *Store) GetVersion(key string) (Versioned, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.kv[key]
	if !ok {
		return Versioned{}, false
	}
	return v, true
}

// ReadAsOf serves a client read of key and records whether the served
// version is at least want (the reference write). A read is stale when the
// key is absent or its version's write is neither want itself nor a
// later-clocked write. This implements the paper's "requests satisfied with
// consistent (updated) content" counter.
func (s *Store) ReadAsOf(key string, want vclock.Timestamp, wantClock uint64) (fresh bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	v, ok := s.kv[key]
	fresh = ok && (v.TS == want || v.Clock > wantClock ||
		(v.Clock == wantClock && v.TS.Compare(want) >= 0))
	if !fresh {
		s.staleReads++
	}
	return fresh
}

// Keys returns all keys in ascending order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.kv))
	for k := range s.kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.kv)
}

// Applied returns how many entries have been applied (including no-ops that
// lost LWW resolution).
func (s *Store) Applied() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// ReadStats returns the total reads served and how many were stale.
func (s *Store) ReadStats() (reads, stale uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reads, s.staleReads
}

// Item is one key's versioned state, the unit of full-state snapshots.
type Item struct {
	Key   string
	Value []byte
	TS    vclock.Timestamp
	Clock uint64
}

// Snapshot exports the store's current contents in ascending key order. The
// item values are read-only views of the stored values (immutability
// contract), so exporting copies no payload bytes.
func (s *Store) Snapshot() []Item {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.kv))
	for k := range s.kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	items := make([]Item, 0, len(keys))
	for _, k := range keys {
		v := s.kv[k]
		items = append(items, Item{Key: k, Value: v.Value, TS: v.TS, Clock: v.Clock})
	}
	return items
}

// ApplySnapshot merges a full-state snapshot using the same LWW resolution
// as Apply, so it is safe regardless of interleaving with entry-wise
// updates.
func (s *Store) ApplySnapshot(items []Item) {
	for _, item := range items {
		s.Apply(wlog.Entry{TS: item.TS, Key: item.Key, Value: item.Value, Clock: item.Clock})
	}
}

// Digest returns a deterministic fingerprint of the store content, usable to
// check that two replicas converged to identical state. It is an FNV-1a hash
// over sorted key/value/version triples.
func (s *Store) Digest() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	keys := make([]string, 0, len(s.kv))
	for k := range s.kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			mix(k[i])
		}
		mix(0)
		v := s.kv[k]
		for _, b := range v.Value {
			mix(b)
		}
		mix(0)
		for i := 0; i < 8; i++ {
			mix(byte(v.Clock >> (8 * i)))
		}
		for i := 0; i < 4; i++ {
			mix(byte(uint32(v.TS.Node) >> (8 * i)))
		}
		for i := 0; i < 8; i++ {
			mix(byte(v.TS.Seq >> (8 * i)))
		}
	}
	return h
}
